// Package vfs defines the file-system interface shared by the study's
// persistent-memory file systems (novafs, daxfs) and consumed by the
// FIO-style benchmark.
package vfs

import "optanestudy/internal/platform"

// FS is a mounted file system instance.
type FS interface {
	// Create makes (or truncates) a file and opens it.
	Create(ctx *platform.MemCtx, name string) (File, error)
	// Open opens an existing file.
	Open(ctx *platform.MemCtx, name string) (File, error)
	// Name identifies the file system variant (for reports).
	Name() string
}

// File is an open file handle.
type File interface {
	// WriteAt writes data at the byte offset.
	WriteAt(ctx *platform.MemCtx, off int64, data []byte) error
	// ReadAt fills buf from the byte offset.
	ReadAt(ctx *platform.MemCtx, off int64, buf []byte) error
	// Sync makes previous writes durable (fsync).
	Sync(ctx *platform.MemCtx) error
	// Size returns the current file size.
	Size() int64
}
