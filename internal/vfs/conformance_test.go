package vfs_test

import (
	"bytes"
	"testing"

	"optanestudy/internal/daxfs"
	"optanestudy/internal/novafs"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/vfs"
)

// Conformance suite: every file system implementing vfs.FS must pass the
// same behavioral contract.

type impl struct {
	name  string
	mount func(p *platform.Platform) (vfs.FS, error)
}

func impls() []impl {
	return []impl{
		{"novafs-cow", func(p *platform.Platform) (vfs.FS, error) {
			ns, err := p.Optane("fs", 0, 64<<20)
			if err != nil {
				return nil, err
			}
			return novafs.Mount([]*platform.Namespace{ns}, novafs.DefaultOptions(novafs.COW))
		}},
		{"novafs-datalog", func(p *platform.Platform) (vfs.FS, error) {
			ns, err := p.Optane("fs", 0, 64<<20)
			if err != nil {
				return nil, err
			}
			return novafs.Mount([]*platform.Namespace{ns}, novafs.DefaultOptions(novafs.Datalog))
		}},
		{"ext4-dax", func(p *platform.Platform) (vfs.FS, error) {
			ns, err := p.Optane("fs", 0, 64<<20)
			if err != nil {
				return nil, err
			}
			return daxfs.Mount(ns, daxfs.DefaultConfig(daxfs.Ext4))
		}},
		{"xfs-dax", func(p *platform.Platform) (vfs.FS, error) {
			ns, err := p.Optane("fs", 0, 64<<20)
			if err != nil {
				return nil, err
			}
			return daxfs.Mount(ns, daxfs.DefaultConfig(daxfs.XFS))
		}},
	}
}

func eachFS(t *testing.T, fn func(t *testing.T, p *platform.Platform, fs vfs.FS)) {
	for _, im := range impls() {
		im := im
		t.Run(im.name, func(t *testing.T) {
			cfg := platform.DefaultConfig()
			cfg.TrackData = true
			cfg.XP.Wear.Enabled = false
			p := platform.MustNew(cfg)
			fs, err := im.mount(p)
			if err != nil {
				t.Fatal(err)
			}
			fn(t, p, fs)
		})
	}
}

func TestConformanceWriteRead(t *testing.T) {
	eachFS(t, func(t *testing.T, p *platform.Platform, fs vfs.FS) {
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			f, err := fs.Create(ctx, "a")
			if err != nil {
				t.Fatal(err)
			}
			data := bytes.Repeat([]byte{0x5C}, 9000)
			if err := f.WriteAt(ctx, 100, data); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if err := f.ReadAt(ctx, 100, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Error("roundtrip failed")
			}
			if f.Size() != 100+9000 {
				t.Errorf("size = %d", f.Size())
			}
		})
		p.Run()
	})
}

func TestConformanceOverwriteVisibility(t *testing.T) {
	eachFS(t, func(t *testing.T, p *platform.Platform, fs vfs.FS) {
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			f, _ := fs.Create(ctx, "a")
			f.WriteAt(ctx, 0, bytes.Repeat([]byte{1}, 8192))
			f.WriteAt(ctx, 4090, []byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}) // page straddle
			got := make([]byte, 16)
			f.ReadAt(ctx, 4088, got)
			want := []byte{1, 1, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 1, 1}
			if !bytes.Equal(got, want) {
				t.Errorf("straddling overwrite: got %v want %v", got, want)
			}
		})
		p.Run()
	})
}

func TestConformanceOpenExisting(t *testing.T) {
	eachFS(t, func(t *testing.T, p *platform.Platform, fs vfs.FS) {
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			f, _ := fs.Create(ctx, "a")
			f.WriteAt(ctx, 0, []byte("persisted"))
			f.Sync(ctx)
			f2, err := fs.Open(ctx, "a")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 9)
			f2.ReadAt(ctx, 0, got)
			if string(got) != "persisted" {
				t.Errorf("open-existing read %q", got)
			}
			if _, err := fs.Open(ctx, "missing"); err == nil {
				t.Error("opening a missing file succeeded")
			}
		})
		p.Run()
	})
}

func TestConformanceSyncIsIdempotent(t *testing.T) {
	eachFS(t, func(t *testing.T, p *platform.Platform, fs vfs.FS) {
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			f, _ := fs.Create(ctx, "a")
			f.WriteAt(ctx, 0, []byte("x"))
			for i := 0; i < 3; i++ {
				if err := f.Sync(ctx); err != nil {
					t.Fatal(err)
				}
			}
		})
		p.Run()
	})
}

func TestConformanceManyFiles(t *testing.T) {
	eachFS(t, func(t *testing.T, p *platform.Platform, fs vfs.FS) {
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			names := []string{"x", "y", "z"}
			for i, n := range names {
				f, err := fs.Create(ctx, n)
				if err != nil {
					t.Fatal(err)
				}
				f.WriteAt(ctx, 0, []byte{byte(i + 1)})
				f.Sync(ctx)
			}
			for i, n := range names {
				f, _ := fs.Open(ctx, n)
				got := make([]byte, 1)
				f.ReadAt(ctx, 0, got)
				if got[0] != byte(i+1) {
					t.Errorf("file %s contaminated: %d", n, got[0])
				}
			}
		})
		p.Run()
	})
}

// TestDAXSyncCostProfile pins the Figure 12 cost asymmetry: DAX fsync is
// dominated by the journal, and Ext4's journal is costlier than XFS's.
func TestDAXSyncCostProfile(t *testing.T) {
	syncCost := func(v daxfs.Variant) float64 {
		cfg := platform.DefaultConfig()
		cfg.TrackData = true
		cfg.XP.Wear.Enabled = false
		p := platform.MustNew(cfg)
		ns, _ := p.Optane("fs", 0, 64<<20)
		fs, err := daxfs.Mount(ns, daxfs.DefaultConfig(v))
		if err != nil {
			t.Fatal(err)
		}
		var total sim.Time
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			f, _ := fs.Create(ctx, "a")
			for i := 0; i < 20; i++ {
				f.WriteAt(ctx, int64(i*64), make([]byte, 64))
				start := ctx.Proc().Now()
				f.Sync(ctx)
				total += ctx.Proc().Now() - start
			}
		})
		p.Run()
		return total.Microseconds() / 20
	}
	ext4 := syncCost(daxfs.Ext4)
	xfs := syncCost(daxfs.XFS)
	if ext4 < 40 || ext4 > 70 {
		t.Errorf("ext4 fsync = %.1f us, paper ~57", ext4)
	}
	if xfs < 25 || xfs > 50 {
		t.Errorf("xfs fsync = %.1f us, paper ~40", xfs)
	}
	if xfs >= ext4 {
		t.Errorf("xfs (%.1f) should sync faster than ext4 (%.1f)", xfs, ext4)
	}
}

// TestDAXNoDataConsistency documents the contract difference from NOVA:
// unsynced DAX writes are lost on crash.
func TestDAXNoDataConsistency(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	ns, _ := p.Optane("fs", 0, 64<<20)
	fs, _ := daxfs.Mount(ns, daxfs.DefaultConfig(daxfs.Ext4))
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		f, _ := fs.Create(ctx, "a")
		f.WriteAt(ctx, 0, []byte("synced"))
		f.Sync(ctx)
		f.WriteAt(ctx, 4096, []byte("unsynced"))
	})
	p.Run()
	p.Crash()
	// Peek at durable bytes under the file's extent: synced data is there.
	// (The daxfs reserves a 64 KB metadata region before the first file.)
	buf := make([]byte, 8)
	ns.ReadDurable(64<<10, buf)
	if string(buf[:6]) != "synced" {
		t.Errorf("synced data lost: %q", buf)
	}
	ns.ReadDurable(64<<10+4096, buf)
	if string(buf) == "unsynced" {
		t.Error("unsynced in-place write survived a crash (should be volatile)")
	}
}
