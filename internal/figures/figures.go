// Package figures regenerates every data figure of the paper's evaluation
// (Figures 2–19; Figures 1 and 11 are diagrams). Each runner builds fresh
// simulated platforms, executes the paper's experiment, and returns the
// series as stats.Figure values that cmd/figures renders and EXPERIMENTS.md
// records.
package figures

import (
	"optanestudy/internal/lattester"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
)

// Quality trades fidelity for run time.
type Quality int

// Quality levels: Quick for tests, Full for the benchmark harness.
const (
	Quick Quality = iota
	Full
)

func (q Quality) dur(full sim.Time) sim.Time {
	if q == Quick {
		return full / 4
	}
	return full
}

func (q Quality) ops(full int) int {
	if q == Quick {
		return full / 5
	}
	return full
}

// Runner couples a figure id with its generator.
type Runner struct {
	ID    string
	Title string
	Run   func(q Quality) []stats.Figure
}

// All returns every figure runner in paper order.
func All() []Runner {
	return []Runner{
		{"fig2", "Best-case latency", Fig2},
		{"fig3", "Tail latency vs hotspot size", Fig3},
		{"fig4", "Bandwidth vs thread count", Fig4},
		{"fig5", "Bandwidth vs access size", Fig5},
		{"fig6", "Latency under load", Fig6},
		{"fig7", "Microbenchmarks under emulation", Fig7},
		{"fig8", "Migrating RocksDB to 3D XPoint memory", Fig8},
		{"fig9", "EWR vs throughput on a single DIMM", Fig9},
		{"fig10", "Inferring XPBuffer capacity", Fig10},
		{"fig12", "File IO latency", Fig12},
		{"fig13", "Performance of persistence instructions", Fig13},
		{"fig14", "Bandwidth over sfence intervals", Fig14},
		{"fig15", "Persistence instructions for micro-buffering", Fig15},
		{"fig16", "iMC contention", Fig16},
		{"fig17", "Multi-DIMM NOVA", Fig17},
		{"fig18", "Bandwidth on Optane and Optane-Remote by R/W mix", Fig18},
		{"fig19", "NUMA degradation for PMemKV", Fig19},
	}
}

// Lookup returns the runner with the given id, or nil.
func Lookup(id string) *Runner {
	for _, r := range All() {
		if r.ID == id {
			r := r
			return &r
		}
	}
	return nil
}

// testbed builds a fresh calibrated platform. Wear-leveling outliers are
// disabled except where a figure needs them (Figure 3), since rare 50 µs
// stalls add noise to mean-bandwidth figures.
func testbed(wear bool) *platform.Platform {
	cfg := platform.DefaultConfig()
	cfg.XP.Wear.Enabled = wear
	return platform.MustNew(cfg)
}

// mustNS panics on namespace-creation failure (static specs in runners).
func mustNS(ns *platform.Namespace, err error) *platform.Namespace {
	if err != nil {
		panic(err)
	}
	return ns
}

// nsT aliases the namespace type for brevity in runner signatures.
type nsT = platform.Namespace

// Pattern shorthands.
const (
	patSeq  = lattester.Sequential
	patRand = lattester.Random
)

func patLabel(p lattester.PatternKind) string {
	if p == patSeq {
		return "Seq"
	}
	return "Rand"
}

// nsFor creates the standard namespace for a system label on a fresh
// platform: "DRAM" or "Optane" (interleaved), or "Optane-NI".
func nsFor(p *platform.Platform, system string) *platform.Namespace {
	switch system {
	case "DRAM":
		return mustNS(p.DRAM("dram", 0, 1<<30))
	case "Optane":
		return mustNS(p.Optane("optane", 0, 2<<30))
	case "Optane-NI":
		return mustNS(p.OptaneNI("optane-ni", 0, 0, 1<<30))
	default:
		panic("figures: unknown system " + system)
	}
}

func pmepPlatform() *platform.Platform {
	return platform.MustNew(platform.PMEPConfig())
}
