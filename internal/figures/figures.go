// Package figures regenerates every data figure of the paper's evaluation
// (Figures 2–19; Figures 1 and 11 are diagrams). Each runner builds fresh
// simulated platforms, executes the paper's experiment, and returns the
// series as stats.Figure values that cmd/figures renders and EXPERIMENTS.md
// records.
package figures

import (
	"strconv"
	"strings"
	"sync/atomic"

	"optanestudy/internal/harness"
	"optanestudy/internal/lattester"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
)

// Quality trades fidelity for run time.
type Quality int

// Quality levels: Quick for tests, Full for the benchmark harness.
const (
	Quick Quality = iota
	Full
)

func (q Quality) dur(full sim.Time) sim.Time {
	if q == Quick {
		return full / 4
	}
	return full
}

func (q Quality) ops(full int) int {
	if q == Quick {
		return full / 5
	}
	return full
}

// Runner couples a figure id with its generator.
type Runner struct {
	ID    string
	Title string
	Run   func(q Quality) []stats.Figure
}

// All returns every figure runner in paper order.
func All() []Runner {
	return []Runner{
		{"fig2", "Best-case latency", Fig2},
		{"fig3", "Tail latency vs hotspot size", Fig3},
		{"fig4", "Bandwidth vs thread count", Fig4},
		{"fig5", "Bandwidth vs access size", Fig5},
		{"fig6", "Latency under load", Fig6},
		{"fig7", "Microbenchmarks under emulation", Fig7},
		{"fig8", "Migrating RocksDB to 3D XPoint memory", Fig8},
		{"fig9", "EWR vs throughput on a single DIMM", Fig9},
		{"fig10", "Inferring XPBuffer capacity", Fig10},
		{"fig12", "File IO latency", Fig12},
		{"fig13", "Performance of persistence instructions", Fig13},
		{"fig14", "Bandwidth over sfence intervals", Fig14},
		{"fig15", "Persistence instructions for micro-buffering", Fig15},
		{"fig16", "iMC contention", Fig16},
		{"fig17", "Multi-DIMM NOVA", Fig17},
		{"fig18", "Bandwidth on Optane and Optane-Remote by R/W mix", Fig18},
		{"fig19", "NUMA degradation for PMemKV", Fig19},
	}
}

// Lookup returns the runner with the given id, or nil.
func Lookup(id string) *Runner {
	for _, r := range All() {
		if r.ID == id {
			r := r
			return &r
		}
	}
	return nil
}

// Pattern shorthands.
const (
	patSeq  = lattester.Sequential
	patRand = lattester.Random
)

func patLabel(p lattester.PatternKind) string {
	if p == patSeq {
		return "Seq"
	}
	return "Rand"
}

// batchParallel is the worker-pool width figure datapoint batches run at.
// The figures/* scenario wrapper stamps it with the enclosing driver's
// effective width (harness.Spec.Parallel) so a -parallel 1 sweep stays
// serial end to end; 0 (direct generator calls, e.g. from tests) means
// GOMAXPROCS. Configuration only — the datapoints are byte-identical at
// any width — and every concurrent writer within one process carries the
// same CLI-chosen value, so the atomic is just for race-freedom.
var batchParallel atomic.Int64

// batchWidth returns the current nested-batch pool width.
func batchWidth() int { return int(batchParallel.Load()) }

// trials runs a batch of datapoint specs through the parallel driver — one
// independent job per spec, fanned across batchWidth workers — and returns
// the trials in input order. Seeds derive from each resolved spec, so a
// figure built from a batch is identical to one built point by point.
func trials(specs []harness.Spec) []harness.Trial {
	out := make([]harness.Trial, len(specs))
	for i, sr := range harness.RunSpecs(specs, batchWidth()) {
		if sr.Err != nil {
			panic("figures: " + sr.Err.Error())
		}
		out[i] = sr.Result.Trials[0]
	}
	return out
}

// kernel builds the harness spec for one lattester/kernel datapoint against
// a system label ("DRAM", "Optane", "Optane-NI" — nsFor's vocabulary).
func kernel(system string, op lattester.Op, pat lattester.PatternKind, size int) harness.Spec {
	return harness.Spec{
		Scenario: "lattester/kernel",
		Params: map[string]string{
			"system":  strings.ToLower(system),
			"op":      op.String(),
			"pattern": pat.String(),
			"size":    strconv.Itoa(size),
		},
	}
}

// mustNS panics on namespace-creation failure (static specs in runners).
func mustNS(ns *platform.Namespace, err error) *platform.Namespace {
	if err != nil {
		panic(err)
	}
	return ns
}
