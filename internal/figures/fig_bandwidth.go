package figures

import (
	"fmt"

	"optanestudy/internal/lattester"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/workload"
)

var threeOps = []lattester.Op{lattester.OpRead, lattester.OpNTStore, lattester.OpStoreCLWB}

func opLabel(op lattester.Op) string {
	switch op {
	case lattester.OpRead:
		return "Read"
	case lattester.OpNTStore:
		return "Write(ntstore)"
	case lattester.OpStoreCLWB:
		return "Write(clwb)"
	default:
		return op.String()
	}
}

// Fig4 reproduces "Bandwidth vs. thread count": sequential 256 B accesses
// on DRAM, Optane-NI and Optane as thread count rises.
func Fig4(q Quality) []stats.Figure {
	threads := []int{1, 2, 4, 8, 12, 16, 20, 24}
	if q == Quick {
		threads = []int{1, 2, 4, 8, 16, 24}
	}
	var out []stats.Figure
	for _, system := range []string{"DRAM", "Optane-NI", "Optane"} {
		fig := stats.Figure{
			ID:     "fig4-" + system,
			Title:  fmt.Sprintf("Bandwidth vs thread count (%s)", system),
			XLabel: "threads",
			YLabel: "bandwidth (GB/s)",
		}
		for _, op := range threeOps {
			s := stats.Series{Name: opLabel(op)}
			for _, th := range threads {
				ns := nsFor(testbed(false), system)
				res := lattester.Run(lattester.Spec{
					NS: ns, Op: op, Pattern: patSeq, AccessSize: 256,
					Threads: th, Duration: q.dur(200 * sim.Microsecond),
				})
				s.Add(float64(th), res.GBs)
			}
			fig.Series = append(fig.Series, s)
		}
		out = append(out, fig)
	}
	return out
}

// Fig5 reproduces "Bandwidth over access size": random accesses at the
// paper's best-performing thread counts per system
// (DRAM 24/24/24, Optane-NI 4/1/2, Optane 16/4/12).
func Fig5(q Quality) []stats.Figure {
	sizes := []int{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 2 << 20}
	if q == Quick {
		sizes = []int{64, 256, 4 << 10, 64 << 10}
	}
	bestThreads := map[string][3]int{
		"DRAM":      {24, 24, 24},
		"Optane-NI": {4, 1, 2},
		"Optane":    {16, 4, 12},
	}
	var out []stats.Figure
	for _, system := range []string{"DRAM", "Optane-NI", "Optane"} {
		tc := bestThreads[system]
		fig := stats.Figure{
			ID:     "fig5-" + system,
			Title:  fmt.Sprintf("Bandwidth over access size (%s %d/%d/%d)", system, tc[0], tc[1], tc[2]),
			XLabel: "access size (bytes)",
			YLabel: "bandwidth (GB/s)",
		}
		for i, op := range threeOps {
			s := stats.Series{Name: opLabel(op)}
			for _, size := range sizes {
				ns := nsFor(testbed(false), system)
				res := lattester.Run(lattester.Spec{
					NS: ns, Op: op, Pattern: patRand, AccessSize: size,
					Threads: tc[i], Duration: q.dur(200 * sim.Microsecond),
				})
				s.Add(float64(size), res.GBs)
			}
			fig.Series = append(fig.Series, s)
		}
		out = append(out, fig)
	}
	return out
}

// Fig9 reproduces "Relationship between EWR and throughput on a single
// DIMM": the systematic sweep's scatter with per-instruction least-squares
// fits.
func Fig9(q Quality) []stats.Figure {
	sc := lattester.DefaultSweepConfig()
	if q == Quick {
		sc.AccessSizes = []int{64, 256, 1024}
		sc.Threads = []int{1, 4, 8}
		sc.Duration = 60 * sim.Microsecond
	}
	points := lattester.Sweep(sc)
	fig := stats.Figure{
		ID:     "fig9",
		Title:  "EWR vs device bandwidth (single DIMM)",
		XLabel: "EWR",
		YLabel: "bandwidth (GB/s)",
	}
	notes := ""
	for _, op := range []lattester.Op{lattester.OpNTStore, lattester.OpStore, lattester.OpStoreCLWB} {
		s := stats.Series{Name: op.String()}
		for _, pt := range points {
			if pt.Op == op {
				s.Add(pt.EWR, pt.GBs)
			}
		}
		fit := lattester.CorrelateEWR(points, op)
		notes += fmt.Sprintf("%s: r2=%.2f slope=%.2f; ", op, fit.R2(), fit.Slope())
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = notes
	return []stats.Figure{fig}
}

// Fig10 reproduces "Inferring XPBuffer capacity": write amplification of
// the two-pass half-line workload versus region size.
func Fig10(q Quality) []stats.Figure {
	regions := []int64{64, 512, 4 << 10, 8 << 10, 16 << 10, 24 << 10, 32 << 10, 256 << 10, 2 << 20}
	if q == Quick {
		regions = []int64{4 << 10, 16 << 10, 32 << 10, 256 << 10}
	}
	fig := stats.Figure{
		ID:     "fig10",
		Title:  "XPBuffer capacity probe",
		XLabel: "region size (bytes)",
		YLabel: "write amplification",
		Series: []stats.Series{{Name: "WA"}},
	}
	for _, region := range regions {
		lines := region / 256
		if lines < 1 {
			lines = 1
		}
		_, ns := lattester.NewNIPlatform(false)
		wa := lattester.RegionProbe(ns, lines, 3)
		fig.Series[0].Add(float64(region), wa)
	}
	return []stats.Figure{fig}
}

// Fig13 reproduces "Performance achievable with persistence instructions":
// sequential-write bandwidth (6 threads) and single-thread latency across
// access sizes for ntstore, store+clwb and bare store.
func Fig13(q Quality) []stats.Figure {
	sizes := []int{64, 128, 256, 512, 1 << 10, 2 << 10, 4 << 10}
	if q == Quick {
		sizes = []int{64, 256, 1 << 10, 4 << 10}
	}
	bw := stats.Figure{
		ID: "fig13-bw", Title: "Bandwidth (6 threads, sequential)",
		XLabel: "access size (bytes)", YLabel: "bandwidth (GB/s)",
	}
	for _, op := range []lattester.Op{lattester.OpNTStore, lattester.OpStoreCLWB, lattester.OpStore} {
		s := stats.Series{Name: op.String()}
		for _, size := range sizes {
			ns := nsFor(testbed(false), "Optane")
			res := lattester.Run(lattester.Spec{
				NS: ns, Op: op, Pattern: patSeq, AccessSize: size, Threads: 6,
				FencePerLine: op == lattester.OpStoreCLWB,
				Duration:     q.dur(200 * sim.Microsecond),
			})
			s.Add(float64(size), res.GBs)
		}
		bw.Series = append(bw.Series, s)
	}

	lat := stats.Figure{
		ID: "fig13-lat", Title: "Latency of persistence instructions",
		XLabel: "access size (bytes)", YLabel: "latency (ns)",
	}
	for _, op := range []lattester.Op{lattester.OpNTStore, lattester.OpStoreCLWB} {
		s := stats.Series{Name: op.String()}
		for _, size := range sizes {
			ns := nsFor(testbed(false), "Optane")
			res := lattester.Run(lattester.Spec{
				NS: ns, Op: op, Pattern: patSeq, AccessSize: size, Threads: 1,
				RecordLatency: true, Duration: q.dur(100 * sim.Microsecond),
			})
			s.Add(float64(size), res.Latency.Mean())
		}
		lat.Series = append(lat.Series, s)
	}
	return []stats.Figure{bw, lat}
}

// Fig14 reproduces "Bandwidth over sfence intervals" on a single DIMM.
func Fig14(q Quality) []stats.Figure {
	sizes := []int{64, 256, 1 << 10, 4 << 10, 64 << 10, 256 << 10, 1 << 20, 16 << 20}
	if q == Quick {
		sizes = []int{64, 256, 4 << 10, 256 << 10}
	}
	fig := stats.Figure{
		ID:     "fig14",
		Title:  "Bandwidth over sfence interval (single DIMM, 1 thread)",
		XLabel: "sfence interval / write size (bytes)",
		YLabel: "bandwidth (GB/s)",
	}
	for _, mode := range []lattester.SfenceMode{lattester.CLWBEveryLine, lattester.CLWBAfterWrite, lattester.NTStoreMode} {
		s := stats.Series{Name: mode.String()}
		for _, size := range sizes {
			_, ns := lattester.NewNIPlatform(false)
			total := int64(12 << 20)
			if q == Quick {
				total = 4 << 20
			}
			if total < int64(size)*2 {
				total = int64(size) * 2
			}
			gbs := lattester.SfenceInterval(lattester.SfenceIntervalSpec{
				NS: ns, WriteSize: size, Mode: mode, Total: total,
			})
			s.Add(float64(size), gbs)
		}
		fig.Series = append(fig.Series, s)
	}
	return []stats.Figure{fig}
}

// Fig16 reproduces "Plotting iMC contention": a fixed thread pool spreads
// accesses over N DIMMs each; bandwidth falls as N rises.
func Fig16(q Quality) []stats.Figure {
	sizes := []int{64, 256, 1 << 10, 4 << 10}
	spreads := []int{1, 2, 3, 6}
	read := stats.Figure{
		ID: "fig16-read", Title: "iMC contention: read (24 threads)",
		XLabel: "access size (bytes)", YLabel: "bandwidth (GB/s)",
	}
	write := stats.Figure{
		ID: "fig16-write", Title: "iMC contention: ntstore (6 threads)",
		XLabel: "access size (bytes)", YLabel: "bandwidth (GB/s)",
	}
	for _, n := range spreads {
		rs := stats.Series{Name: fmt.Sprintf("%d Threads", n)}
		ws := stats.Series{Name: fmt.Sprintf("%d Threads", n)}
		for _, size := range sizes {
			{
				ns := nsFor(testbed(false), "Optane")
				gbs := lattester.Spread(lattester.SpreadSpec{
					NS: ns, Threads: 24, DIMMsEach: n, AccessSize: size,
					Write: false, Duration: q.dur(200 * sim.Microsecond), Seed: 11,
				})
				rs.Add(float64(size), gbs)
			}
			{
				ns := nsFor(testbed(false), "Optane")
				gbs := lattester.Spread(lattester.SpreadSpec{
					NS: ns, Threads: 6, DIMMsEach: n, AccessSize: size,
					Write: true, Duration: q.dur(200 * sim.Microsecond), Seed: 13,
				})
				ws.Add(float64(size), gbs)
			}
		}
		read.Series = append(read.Series, rs)
		write.Series = append(write.Series, ws)
	}
	return []stats.Figure{read, write}
}

// Fig18 reproduces "Memory bandwidth on Optane and Optane-Remote" across
// read/write mixes for one and four threads.
func Fig18(q Quality) []stats.Figure {
	mixes := []*workload.Mix{
		workload.NewMix(1, 0), workload.NewMix(4, 1), workload.NewMix(3, 1),
		workload.NewMix(2, 1), workload.NewMix(1, 1), workload.NewMix(0, 1),
	}
	fig := stats.Figure{
		ID:     "fig18",
		Title:  "Bandwidth by R/W mix, local vs remote Optane",
		XLabel: "mix index (R, 4:1, 3:1, 2:1, 1:1, W)",
		YLabel: "bandwidth (GB/s)",
	}
	for _, conf := range []struct {
		name    string
		socket  int
		threads int
	}{
		{"Optane-1", 0, 1},
		{"Optane-Remote-1", 1, 1},
		{"Optane-4", 0, 4},
		{"Optane-Remote-4", 1, 4},
	} {
		s := stats.Series{Name: conf.name}
		for i, m := range mixes {
			ns := nsFor(testbed(false), "Optane")
			res := lattester.Run(lattester.Spec{
				NS: ns, Socket: conf.socket, Pattern: patSeq, AccessSize: 256,
				Threads: conf.threads, Mix: m,
				Duration: q.dur(150 * sim.Microsecond),
			})
			s.Add(float64(i), res.GBs)
		}
		fig.Series = append(fig.Series, s)
	}
	return []stats.Figure{fig}
}
