package figures

import (
	"fmt"
	"strconv"

	"optanestudy/internal/harness"
	"optanestudy/internal/lattester"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
)

var threeOps = []lattester.Op{lattester.OpRead, lattester.OpNTStore, lattester.OpStoreCLWB}

func opLabel(op lattester.Op) string {
	switch op {
	case lattester.OpRead:
		return "Read"
	case lattester.OpNTStore:
		return "Write(ntstore)"
	case lattester.OpStoreCLWB:
		return "Write(clwb)"
	default:
		return op.String()
	}
}

// Fig4 reproduces "Bandwidth vs. thread count": sequential 256 B accesses
// on DRAM, Optane-NI and Optane as thread count rises.
func Fig4(q Quality) []stats.Figure {
	threads := []int{1, 2, 4, 8, 12, 16, 20, 24}
	if q == Quick {
		threads = []int{1, 2, 4, 8, 16, 24}
	}
	systems := []string{"DRAM", "Optane-NI", "Optane"}
	var specs []harness.Spec
	for _, system := range systems {
		for _, op := range threeOps {
			for _, th := range threads {
				spec := kernel(system, op, patSeq, 256)
				spec.Threads = th
				spec.Duration = q.dur(200 * sim.Microsecond)
				specs = append(specs, spec)
			}
		}
	}
	trs := trials(specs)
	var out []stats.Figure
	k := 0
	for _, system := range systems {
		fig := stats.Figure{
			ID:     "fig4-" + system,
			Title:  fmt.Sprintf("Bandwidth vs thread count (%s)", system),
			XLabel: "threads",
			YLabel: "bandwidth (GB/s)",
		}
		for _, op := range threeOps {
			s := stats.Series{Name: opLabel(op)}
			for _, th := range threads {
				s.Add(float64(th), trs[k].GBs)
				k++
			}
			fig.Series = append(fig.Series, s)
		}
		out = append(out, fig)
	}
	return out
}

// Fig5 reproduces "Bandwidth over access size": random accesses at the
// paper's best-performing thread counts per system
// (DRAM 24/24/24, Optane-NI 4/1/2, Optane 16/4/12).
func Fig5(q Quality) []stats.Figure {
	sizes := []int{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 2 << 20}
	if q == Quick {
		sizes = []int{64, 256, 4 << 10, 64 << 10}
	}
	bestThreads := map[string][3]int{
		"DRAM":      {24, 24, 24},
		"Optane-NI": {4, 1, 2},
		"Optane":    {16, 4, 12},
	}
	systems := []string{"DRAM", "Optane-NI", "Optane"}
	var specs []harness.Spec
	for _, system := range systems {
		tc := bestThreads[system]
		for i, op := range threeOps {
			for _, size := range sizes {
				spec := kernel(system, op, patRand, size)
				spec.Threads = tc[i]
				spec.Duration = q.dur(200 * sim.Microsecond)
				specs = append(specs, spec)
			}
		}
	}
	trs := trials(specs)
	var out []stats.Figure
	k := 0
	for _, system := range systems {
		tc := bestThreads[system]
		fig := stats.Figure{
			ID:     "fig5-" + system,
			Title:  fmt.Sprintf("Bandwidth over access size (%s %d/%d/%d)", system, tc[0], tc[1], tc[2]),
			XLabel: "access size (bytes)",
			YLabel: "bandwidth (GB/s)",
		}
		for _, op := range threeOps {
			s := stats.Series{Name: opLabel(op)}
			for _, size := range sizes {
				s.Add(float64(size), trs[k].GBs)
				k++
			}
			fig.Series = append(fig.Series, s)
		}
		out = append(out, fig)
	}
	return out
}

// Fig9 reproduces "Relationship between EWR and throughput on a single
// DIMM": the systematic sweep's scatter with per-instruction least-squares
// fits. Every sweep point is itself a harness trial of lattester/kernel.
func Fig9(q Quality) []stats.Figure {
	sc := lattester.DefaultSweepConfig()
	sc.Parallel = batchWidth()
	if q == Quick {
		sc.AccessSizes = []int{64, 256, 1024}
		sc.Threads = []int{1, 4, 8}
		sc.Duration = 60 * sim.Microsecond
	}
	points := lattester.Sweep(sc)
	fig := stats.Figure{
		ID:     "fig9",
		Title:  "EWR vs device bandwidth (single DIMM)",
		XLabel: "EWR",
		YLabel: "bandwidth (GB/s)",
	}
	notes := ""
	for _, op := range []lattester.Op{lattester.OpNTStore, lattester.OpStore, lattester.OpStoreCLWB} {
		s := stats.Series{Name: op.String()}
		for _, pt := range points {
			if pt.Op == op {
				s.Add(pt.EWR, pt.GBs)
			}
		}
		fit := lattester.CorrelateEWR(points, op)
		notes += fmt.Sprintf("%s: r2=%.2f slope=%.2f; ", op, fit.R2(), fit.Slope())
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = notes
	return []stats.Figure{fig}
}

// Fig10 reproduces "Inferring XPBuffer capacity": write amplification of
// the two-pass half-line workload versus region size.
func Fig10(q Quality) []stats.Figure {
	regions := []int64{64, 512, 4 << 10, 8 << 10, 16 << 10, 24 << 10, 32 << 10, 256 << 10, 2 << 20}
	if q == Quick {
		regions = []int64{4 << 10, 16 << 10, 32 << 10, 256 << 10}
	}
	fig := stats.Figure{
		ID:     "fig10",
		Title:  "XPBuffer capacity probe",
		XLabel: "region size (bytes)",
		YLabel: "write amplification",
		Series: []stats.Series{{Name: "WA"}},
	}
	var specs []harness.Spec
	for _, region := range regions {
		lines := region / 256
		if lines < 1 {
			lines = 1
		}
		specs = append(specs, harness.Spec{
			Scenario: "lattester/xpbuffer-probe",
			Params: map[string]string{
				"lines":  strconv.FormatInt(lines, 10),
				"rounds": "3",
			},
		})
	}
	for i, tr := range trials(specs) {
		fig.Series[0].Add(float64(regions[i]), tr.Metrics["wa"])
	}
	return []stats.Figure{fig}
}

// Fig13 reproduces "Performance achievable with persistence instructions":
// sequential-write bandwidth (6 threads) and single-thread latency across
// access sizes for ntstore, store+clwb and bare store.
func Fig13(q Quality) []stats.Figure {
	sizes := []int{64, 128, 256, 512, 1 << 10, 2 << 10, 4 << 10}
	if q == Quick {
		sizes = []int{64, 256, 1 << 10, 4 << 10}
	}
	bwOps := []lattester.Op{lattester.OpNTStore, lattester.OpStoreCLWB, lattester.OpStore}
	latOps := []lattester.Op{lattester.OpNTStore, lattester.OpStoreCLWB}
	var specs []harness.Spec
	for _, op := range bwOps {
		for _, size := range sizes {
			spec := kernel("Optane", op, patSeq, size)
			spec.Threads = 6
			spec.Duration = q.dur(200 * sim.Microsecond)
			if op == lattester.OpStoreCLWB {
				spec.Params["fence64"] = "true"
			}
			specs = append(specs, spec)
		}
	}
	for _, op := range latOps {
		for _, size := range sizes {
			spec := kernel("Optane", op, patSeq, size)
			spec.Threads = 1
			spec.Duration = q.dur(100 * sim.Microsecond)
			spec.Params["latency"] = "true"
			specs = append(specs, spec)
		}
	}
	trs := trials(specs)
	k := 0
	bw := stats.Figure{
		ID: "fig13-bw", Title: "Bandwidth (6 threads, sequential)",
		XLabel: "access size (bytes)", YLabel: "bandwidth (GB/s)",
	}
	for _, op := range bwOps {
		s := stats.Series{Name: op.String()}
		for _, size := range sizes {
			s.Add(float64(size), trs[k].GBs)
			k++
		}
		bw.Series = append(bw.Series, s)
	}
	lat := stats.Figure{
		ID: "fig13-lat", Title: "Latency of persistence instructions",
		XLabel: "access size (bytes)", YLabel: "latency (ns)",
	}
	for _, op := range latOps {
		s := stats.Series{Name: op.String()}
		for _, size := range sizes {
			s.Add(float64(size), trs[k].Latency.Mean())
			k++
		}
		lat.Series = append(lat.Series, s)
	}
	return []stats.Figure{bw, lat}
}

// Fig14 reproduces "Bandwidth over sfence intervals" on a single DIMM.
func Fig14(q Quality) []stats.Figure {
	sizes := []int{64, 256, 1 << 10, 4 << 10, 64 << 10, 256 << 10, 1 << 20, 16 << 20}
	if q == Quick {
		sizes = []int{64, 256, 4 << 10, 256 << 10}
	}
	fig := stats.Figure{
		ID:     "fig14",
		Title:  "Bandwidth over sfence interval (single DIMM, 1 thread)",
		XLabel: "sfence interval / write size (bytes)",
		YLabel: "bandwidth (GB/s)",
	}
	modes := []struct{ label, param string }{
		{lattester.CLWBEveryLine.String(), "clwb64"},
		{lattester.CLWBAfterWrite.String(), "clwb"},
		{lattester.NTStoreMode.String(), "ntstore"},
	}
	var specs []harness.Spec
	for _, mode := range modes {
		for _, size := range sizes {
			total := int64(12 << 20)
			if q == Quick {
				total = 4 << 20
			}
			if total < int64(size)*2 {
				total = int64(size) * 2
			}
			specs = append(specs, harness.Spec{
				Scenario: "lattester/sfence-interval",
				Params: map[string]string{
					"size":  strconv.Itoa(size),
					"mode":  mode.param,
					"total": strconv.FormatInt(total, 10),
				},
			})
		}
	}
	trs := trials(specs)
	k := 0
	for _, mode := range modes {
		s := stats.Series{Name: mode.label}
		for _, size := range sizes {
			s.Add(float64(size), trs[k].GBs)
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return []stats.Figure{fig}
}

// Fig16 reproduces "Plotting iMC contention": a fixed thread pool spreads
// accesses over N DIMMs each; bandwidth falls as N rises.
func Fig16(q Quality) []stats.Figure {
	sizes := []int{64, 256, 1 << 10, 4 << 10}
	spreads := []int{1, 2, 3, 6}
	read := stats.Figure{
		ID: "fig16-read", Title: "iMC contention: read (24 threads)",
		XLabel: "access size (bytes)", YLabel: "bandwidth (GB/s)",
	}
	write := stats.Figure{
		ID: "fig16-write", Title: "iMC contention: ntstore (6 threads)",
		XLabel: "access size (bytes)", YLabel: "bandwidth (GB/s)",
	}
	spreadSpec := func(threads, n, size int, isWrite bool, seed uint64) harness.Spec {
		return harness.Spec{
			Scenario: "lattester/spread",
			Params: map[string]string{
				"dimms_each": strconv.Itoa(n),
				"size":       strconv.Itoa(size),
				"write":      strconv.FormatBool(isWrite),
			},
			Threads:  threads,
			Duration: q.dur(200 * sim.Microsecond),
			Seed:     seed,
		}
	}
	var specs []harness.Spec
	for _, n := range spreads {
		for _, size := range sizes {
			specs = append(specs,
				spreadSpec(24, n, size, false, 11),
				spreadSpec(6, n, size, true, 13))
		}
	}
	trs := trials(specs)
	k := 0
	for _, n := range spreads {
		rs := stats.Series{Name: fmt.Sprintf("%d Threads", n)}
		ws := stats.Series{Name: fmt.Sprintf("%d Threads", n)}
		for _, size := range sizes {
			rs.Add(float64(size), trs[k].GBs)
			ws.Add(float64(size), trs[k+1].GBs)
			k += 2
		}
		read.Series = append(read.Series, rs)
		write.Series = append(write.Series, ws)
	}
	return []stats.Figure{read, write}
}

// Fig18 reproduces "Memory bandwidth on Optane and Optane-Remote" across
// read/write mixes for one and four threads.
func Fig18(q Quality) []stats.Figure {
	mixes := []string{"1:0", "4:1", "3:1", "2:1", "1:1", "0:1"}
	fig := stats.Figure{
		ID:     "fig18",
		Title:  "Bandwidth by R/W mix, local vs remote Optane",
		XLabel: "mix index (R, 4:1, 3:1, 2:1, 1:1, W)",
		YLabel: "bandwidth (GB/s)",
	}
	confs := []struct {
		name    string
		socket  int
		threads int
	}{
		{"Optane-1", 0, 1},
		{"Optane-Remote-1", 1, 1},
		{"Optane-4", 0, 4},
		{"Optane-Remote-4", 1, 4},
	}
	var specs []harness.Spec
	for _, conf := range confs {
		for _, m := range mixes {
			spec := kernel("Optane", lattester.OpRead, patSeq, 256)
			spec.Params["mix"] = m
			spec.Socket = conf.socket
			spec.Threads = conf.threads
			spec.Duration = q.dur(150 * sim.Microsecond)
			specs = append(specs, spec)
		}
	}
	trs := trials(specs)
	k := 0
	for _, conf := range confs {
		s := stats.Series{Name: conf.name}
		for i := range mixes {
			s.Add(float64(i), trs[k].GBs)
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return []stats.Figure{fig}
}
