package figures

import (
	"fmt"
	"strconv"

	"optanestudy/internal/harness"
	"optanestudy/internal/lattester"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
)

// Fig2 reproduces "Best-case latency": random and sequential 8 B read
// latency plus 64 B write latency via ntstore and store+clwb, for DRAM and
// Optane. X positions: 0=read-seq, 1=read-rand, 2=write-ntstore,
// 3=write-clwb. Standard deviations land in the Notes field (the paper's
// error bars).
func Fig2(q Quality) []stats.Figure {
	type point struct {
		op  lattester.Op
		pat lattester.PatternKind
	}
	cases := []point{
		{lattester.OpRead, lattester.Sequential},
		{lattester.OpRead, lattester.Random},
		{lattester.OpNTStore, lattester.Sequential},
		{lattester.OpStoreCLWB, lattester.Sequential},
	}
	ops := q.ops(10000)
	fig := stats.Figure{
		ID:     "fig2",
		Title:  "Best-case latency (ns)",
		XLabel: "op (0=read-seq 1=read-rand 2=ntstore 3=store+clwb)",
		YLabel: "idle latency (ns)",
	}
	systems := []string{"dram", "optane"}
	var specs []harness.Spec
	for _, system := range systems {
		for _, c := range cases {
			specs = append(specs, harness.Spec{
				Scenario: "lattester/idle-latency",
				Params: map[string]string{
					"system":  system,
					"op":      c.op.String(),
					"pattern": c.pat.String(),
				},
				Ops: ops,
			})
		}
	}
	trs := trials(specs)
	k := 0
	notes := ""
	for _, system := range systems {
		name := map[string]string{"dram": "DRAM", "optane": "Optane"}[system]
		s := stats.Series{Name: name}
		for i := range cases {
			s.Add(float64(i), trs[k].Metrics["mean_ns"])
			notes += fmt.Sprintf("%s[%d] std=%.1f ", name, i, trs[k].Metrics["std_ns"])
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = notes
	return []stats.Figure{fig}
}

// Fig3 reproduces "Tail latency": 99.99th, 99.999th and maximum write
// latency (µs) as a function of hotspot size.
func Fig3(q Quality) []stats.Figure {
	hotspots := []int64{256, 2 << 10, 16 << 10, 128 << 10, 1 << 20, 8 << 20, 64 << 20}
	ops := q.ops(1000000)
	fig := stats.Figure{
		ID:     "fig3",
		Title:  "Tail latency over hotspot size",
		XLabel: "hotspot (bytes)",
		YLabel: "latency (us)",
		Series: []stats.Series{{Name: "99.99%"}, {Name: "99.999%"}, {Name: "Max"}},
	}
	specs := make([]harness.Spec, len(hotspots))
	for i, h := range hotspots {
		specs[i] = harness.Spec{
			Scenario: "lattester/tail-latency",
			Params:   map[string]string{"hotspot": strconv.FormatInt(h, 10)},
			Ops:      ops,
		}
	}
	for i, tr := range trials(specs) {
		h := float64(hotspots[i])
		hist := tr.Latency
		fig.Series[0].Add(h, hist.Percentile(0.9999)/1000)
		fig.Series[1].Add(h, hist.Percentile(0.99999)/1000)
		fig.Series[2].Add(h, hist.Max()/1000)
	}
	return []stats.Figure{fig}
}

// Fig6 reproduces "Memory latency and bandwidth under varying load": delay
// injection sweeps load; each point is (achieved bandwidth, mean latency).
// Panel 1 is reads (16 threads), panel 2 ntstores (4 threads).
func Fig6(q Quality) []stats.Figure {
	delays := []sim.Time{0, 100 * sim.Nanosecond, 300 * sim.Nanosecond,
		sim.Microsecond, 3 * sim.Microsecond, 10 * sim.Microsecond, 80 * sim.Microsecond}
	if q == Quick {
		delays = []sim.Time{0, 300 * sim.Nanosecond, 3 * sim.Microsecond, 80 * sim.Microsecond}
	}
	read := stats.Figure{
		ID: "fig6-read", Title: "Latency under load: read",
		XLabel: "bandwidth (GB/s)", YLabel: "latency (ns)",
	}
	write := stats.Figure{
		ID: "fig6-write", Title: "Latency under load: write (ntstore)",
		XLabel: "bandwidth (GB/s)", YLabel: "latency (ns)",
	}
	loaded := func(system string, op lattester.Op, pat lattester.PatternKind, threads int, d sim.Time) harness.Spec {
		spec := kernel(system, op, pat, 64)
		spec.Threads = threads
		spec.Duration = q.dur(200 * sim.Microsecond)
		spec.Params["delay_ns"] = strconv.FormatInt(int64(d/sim.Nanosecond), 10)
		spec.Params["latency"] = "true"
		return spec
	}
	medias := []string{"DRAM", "Optane"}
	pats := []lattester.PatternKind{patRand, patSeq}
	var specs []harness.Spec
	for _, mediaName := range medias {
		for _, pat := range pats {
			for _, d := range delays {
				specs = append(specs,
					loaded(mediaName, lattester.OpRead, pat, 16, d),
					loaded(mediaName, lattester.OpNTStore, pat, 4, d))
			}
		}
	}
	trs := trials(specs)
	k := 0
	for _, mediaName := range medias {
		for _, pat := range pats {
			rs := stats.Series{Name: fmt.Sprintf("%s-%s", mediaName, patLabel(pat))}
			ws := stats.Series{Name: fmt.Sprintf("%s-%s", mediaName, patLabel(pat))}
			for range delays {
				r, w := trs[k], trs[k+1]
				rs.Add(r.GBs, r.Latency.Mean())
				ws.Add(w.GBs, w.Latency.Mean())
				k += 2
			}
			read.Series = append(read.Series, rs)
			write.Series = append(write.Series, ws)
		}
	}
	return []stats.Figure{read, write}
}

// Fig7 reproduces "Microbenchmarks under emulation": left, the sequential
// write latency/bandwidth curve for each emulation; right, bandwidth by
// read/write mix.
func Fig7(q Quality) []stats.Figure {
	systems := []string{"DRAM", "DRAM-Remote", "Optane", "PMEP"}
	curve := stats.Figure{
		ID: "fig7-latbw", Title: "Seq. write latency/BW under emulation",
		XLabel: "bandwidth (GB/s)", YLabel: "latency (ns)",
	}
	delays := []sim.Time{0, 200 * sim.Nanosecond, sim.Microsecond, 10 * sim.Microsecond}
	if q == Quick {
		delays = []sim.Time{0, sim.Microsecond}
	}
	mixes := []string{"0:1", "1:1", "1:0"}
	var specs []harness.Spec
	for _, sys := range systems {
		for _, d := range delays {
			spec := emulatedSpec(sys, lattester.OpNTStore, patSeq, 64)
			spec.Threads = 4
			spec.Duration = q.dur(150 * sim.Microsecond)
			spec.Params["delay_ns"] = strconv.FormatInt(int64(d/sim.Nanosecond), 10)
			spec.Params["latency"] = "true"
			specs = append(specs, spec)
		}
	}
	for _, sys := range systems {
		for _, m := range mixes {
			spec := emulatedSpec(sys, lattester.OpRead, patSeq, 256)
			spec.Threads = 8
			spec.Duration = q.dur(150 * sim.Microsecond)
			spec.Params["mix"] = m
			specs = append(specs, spec)
		}
	}
	trs := trials(specs)
	k := 0
	for _, sys := range systems {
		s := stats.Series{Name: sys}
		for range delays {
			s.Add(trs[k].GBs, trs[k].Latency.Mean())
			k++
		}
		curve.Series = append(curve.Series, s)
	}

	mixLabels := []string{"All Wr.", "1:1 Wr.:Rd.", "All Rd."}
	mixFig := stats.Figure{
		ID: "fig7-mix", Title: "Bandwidth by thread mix under emulation",
		XLabel: "mix (0=all-write 1=1:1 2=all-read)", YLabel: "bandwidth (GB/s)",
		Notes: fmt.Sprint(mixLabels),
	}
	for _, sys := range systems {
		s := stats.Series{Name: sys}
		for i := range mixes {
			s.Add(float64(i), trs[k].GBs)
			k++
		}
		mixFig.Series = append(mixFig.Series, s)
	}
	return []stats.Figure{curve, mixFig}
}

// emulatedSpec builds the kernel spec for one emulation methodology: DRAM
// and DRAM-Remote emulate persistent memory on a 1 GB DRAM pool (local or
// one UPI hop away), Optane is the 1 GB real-media baseline, and PMEP is
// the Persistent Memory Emulator Platform's slowed DRAM timings.
func emulatedSpec(sys string, op lattester.Op, pat lattester.PatternKind, size int) harness.Spec {
	var spec harness.Spec
	switch sys {
	case "DRAM":
		spec = kernel("dram", op, pat, size)
	case "DRAM-Remote":
		spec = kernel("dram", op, pat, size)
		spec.Socket = 1
	case "Optane":
		spec = kernel("optane", op, pat, size)
		spec.Params["nssize"] = strconv.FormatInt(1<<30, 10)
	case "PMEP":
		spec = kernel("dram", op, pat, size)
		spec.Params["platform"] = "pmep"
	default:
		panic("figures: unknown emulation " + sys)
	}
	return spec
}
