package figures

import (
	"fmt"

	"optanestudy/internal/lattester"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/workload"
)

// Fig2 reproduces "Best-case latency": random and sequential 8 B read
// latency plus 64 B write latency via ntstore and store+clwb, for DRAM and
// Optane. X positions: 0=read-seq, 1=read-rand, 2=write-ntstore,
// 3=write-clwb. Standard deviations land in the Notes field (the paper's
// error bars).
func Fig2(q Quality) []stats.Figure {
	type point struct {
		op  lattester.Op
		pat lattester.PatternKind
	}
	cases := []point{
		{lattester.OpRead, lattester.Sequential},
		{lattester.OpRead, lattester.Random},
		{lattester.OpNTStore, lattester.Sequential},
		{lattester.OpStoreCLWB, lattester.Sequential},
	}
	ops := q.ops(10000)
	fig := stats.Figure{
		ID:     "fig2",
		Title:  "Best-case latency (ns)",
		XLabel: "op (0=read-seq 1=read-rand 2=ntstore 3=store+clwb)",
		YLabel: "idle latency (ns)",
	}
	notes := ""
	for _, system := range []string{"DRAM", "Optane"} {
		s := stats.Series{Name: system}
		for i, c := range cases {
			p := testbed(false)
			var nsp = mustNS(p.Optane("pm", 0, 1<<30))
			if system == "DRAM" {
				nsp = mustNS(p.DRAM("dram", 0, 1<<30))
			}
			sum := lattester.IdleLatency(lattester.IdleLatencySpec{
				NS: nsp, Op: c.op, Pattern: c.pat, Ops: ops,
			})
			s.Add(float64(i), sum.Mean())
			notes += fmt.Sprintf("%s[%d] std=%.1f ", system, i, sum.Std())
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = notes
	return []stats.Figure{fig}
}

// Fig3 reproduces "Tail latency": 99.99th, 99.999th and maximum write
// latency (µs) as a function of hotspot size.
func Fig3(q Quality) []stats.Figure {
	hotspots := []int64{256, 2 << 10, 16 << 10, 128 << 10, 1 << 20, 8 << 20, 64 << 20}
	ops := q.ops(1000000)
	fig := stats.Figure{
		ID:     "fig3",
		Title:  "Tail latency over hotspot size",
		XLabel: "hotspot (bytes)",
		YLabel: "latency (us)",
		Series: []stats.Series{{Name: "99.99%"}, {Name: "99.999%"}, {Name: "Max"}},
	}
	for _, h := range hotspots {
		p := testbed(true) // wear-leveling outliers ON
		ns := mustNS(p.Optane("pm", 0, 1<<30))
		hist := lattester.TailLatency(lattester.TailSpec{NS: ns, Hotspot: h, Ops: ops})
		fig.Series[0].Add(float64(h), hist.Percentile(0.9999)/1000)
		fig.Series[1].Add(float64(h), hist.Percentile(0.99999)/1000)
		fig.Series[2].Add(float64(h), hist.Max()/1000)
	}
	return []stats.Figure{fig}
}

// Fig6 reproduces "Memory latency and bandwidth under varying load": delay
// injection sweeps load; each point is (achieved bandwidth, mean latency).
// Panel 1 is reads (16 threads), panel 2 ntstores (4 threads).
func Fig6(q Quality) []stats.Figure {
	delays := []sim.Time{0, 100 * sim.Nanosecond, 300 * sim.Nanosecond,
		sim.Microsecond, 3 * sim.Microsecond, 10 * sim.Microsecond, 80 * sim.Microsecond}
	if q == Quick {
		delays = []sim.Time{0, 300 * sim.Nanosecond, 3 * sim.Microsecond, 80 * sim.Microsecond}
	}
	read := stats.Figure{
		ID: "fig6-read", Title: "Latency under load: read",
		XLabel: "bandwidth (GB/s)", YLabel: "latency (ns)",
	}
	write := stats.Figure{
		ID: "fig6-write", Title: "Latency under load: write (ntstore)",
		XLabel: "bandwidth (GB/s)", YLabel: "latency (ns)",
	}
	for _, mediaName := range []string{"DRAM", "Optane"} {
		for _, pat := range []lattester.PatternKind{patRand, patSeq} {
			rs := stats.Series{Name: fmt.Sprintf("%s-%s", mediaName, patLabel(pat))}
			ws := stats.Series{Name: fmt.Sprintf("%s-%s", mediaName, patLabel(pat))}
			for _, d := range delays {
				{
					p := testbed(false)
					ns := nsFor(p, mediaName)
					res := lattester.Run(lattester.Spec{
						NS: ns, Op: lattester.OpRead, Pattern: pat, AccessSize: 64,
						Threads: 16, Delay: d, RecordLatency: true,
						Duration: q.dur(200 * sim.Microsecond),
					})
					rs.Add(res.GBs, res.Latency.Mean())
				}
				{
					p := testbed(false)
					ns := nsFor(p, mediaName)
					res := lattester.Run(lattester.Spec{
						NS: ns, Op: lattester.OpNTStore, Pattern: pat, AccessSize: 64,
						Threads: 4, Delay: d, RecordLatency: true,
						Duration: q.dur(200 * sim.Microsecond),
					})
					ws.Add(res.GBs, res.Latency.Mean())
				}
			}
			read.Series = append(read.Series, rs)
			write.Series = append(write.Series, ws)
		}
	}
	return []stats.Figure{read, write}
}

// Fig7 reproduces "Microbenchmarks under emulation": left, the sequential
// write latency/bandwidth curve for each emulation; right, bandwidth by
// read/write mix.
func Fig7(q Quality) []stats.Figure {
	systems := []string{"DRAM", "DRAM-Remote", "Optane", "PMEP"}
	curve := stats.Figure{
		ID: "fig7-latbw", Title: "Seq. write latency/BW under emulation",
		XLabel: "bandwidth (GB/s)", YLabel: "latency (ns)",
	}
	delays := []sim.Time{0, 200 * sim.Nanosecond, sim.Microsecond, 10 * sim.Microsecond}
	if q == Quick {
		delays = []sim.Time{0, sim.Microsecond}
	}
	for _, sys := range systems {
		s := stats.Series{Name: sys}
		for _, d := range delays {
			ns, socket := emulated(sys)
			res := lattester.Run(lattester.Spec{
				NS: ns, Socket: socket, Op: lattester.OpNTStore,
				Pattern: patSeq, AccessSize: 64, Threads: 4, Delay: d,
				RecordLatency: true, Duration: q.dur(150 * sim.Microsecond),
			})
			s.Add(res.GBs, res.Latency.Mean())
		}
		curve.Series = append(curve.Series, s)
	}

	mixes := []*workload.Mix{workload.NewMix(0, 1), workload.NewMix(1, 1), workload.NewMix(1, 0)}
	mixLabels := []string{"All Wr.", "1:1 Wr.:Rd.", "All Rd."}
	mixFig := stats.Figure{
		ID: "fig7-mix", Title: "Bandwidth by thread mix under emulation",
		XLabel: "mix (0=all-write 1=1:1 2=all-read)", YLabel: "bandwidth (GB/s)",
		Notes: fmt.Sprint(mixLabels),
	}
	for _, sys := range systems {
		s := stats.Series{Name: sys}
		for i, m := range mixes {
			ns, socket := emulated(sys)
			res := lattester.Run(lattester.Spec{
				NS: ns, Socket: socket, Pattern: patSeq, AccessSize: 256,
				Threads: 8, Mix: m, Duration: q.dur(150 * sim.Microsecond),
			})
			s.Add(float64(i), res.GBs)
		}
		mixFig.Series = append(mixFig.Series, s)
	}
	return []stats.Figure{curve, mixFig}
}

// emulated builds the namespace (on a fresh platform) for one emulation
// methodology, plus the socket its threads run on.
func emulated(sys string) (*nsT, int) {
	switch sys {
	case "DRAM":
		return mustNS(testbed(false).DRAM("pmem", 0, 1<<30)), 0
	case "DRAM-Remote":
		return mustNS(testbed(false).DRAM("pmem", 0, 1<<30)), 1
	case "Optane":
		return mustNS(testbed(false).Optane("pmem", 0, 1<<30)), 0
	case "PMEP":
		return mustNS(pmepPlatform().DRAM("pmem", 0, 1<<30)), 0
	default:
		panic("figures: unknown emulation " + sys)
	}
}
