package figures

import (
	"fmt"
	"strings"

	"optanestudy/internal/harness"

	// The figure runners drive their app-level datapoints through these
	// packages' registered scenarios.
	_ "optanestudy/internal/fio"
	_ "optanestudy/internal/lsmkv"
	_ "optanestudy/internal/pmemkv"
)

// Harness scenarios: every figure registers as "figures/figN". A trial
// regenerates the figure and flattens its datapoints into metrics —
// "<figID>/<series>@<x>" for each point plus "<figID>/<series>/max" per
// series — so figure data flows through the same machine-readable schema
// as every other benchmark. The TSV rendering rides along as the trial's
// text artifact for the table reporter.
func init() {
	for _, r := range All() {
		r := r
		harness.Register(harness.Scenario{
			Name: "figures/" + r.ID,
			Doc:  r.Title,
			Run: func(spec harness.Spec) (harness.Trial, error) {
				pr := harness.NewParamReader(spec.Params)
				q := Quick
				switch v := pr.Str("quality", "quick"); v {
				case "quick":
				case "full":
					q = Full
				default:
					return harness.Trial{}, fmt.Errorf("unknown quality %q", v)
				}
				if err := pr.Err(); err != nil {
					return harness.Trial{}, err
				}
				// Nested datapoint batches inherit the driver's pool
				// width, so -parallel 1 keeps the whole figure serial.
				batchParallel.Store(int64(spec.Parallel))
				tr := harness.Trial{Metrics: make(map[string]float64)}
				var text strings.Builder
				for _, fig := range r.Run(q) {
					for _, s := range fig.Series {
						_, maxY := s.MaxY()
						tr.Metrics[fig.ID+"/"+s.Name+"/max"] = maxY
						for i := range s.X {
							tr.Metrics[fmt.Sprintf("%s/%s@%g", fig.ID, s.Name, s.X[i])] = s.Y[i]
							tr.Ops++
						}
					}
					text.WriteString(fig.TSV())
					text.WriteByte('\n')
				}
				tr.Text = strings.TrimRight(text.String(), "\n")
				return tr, nil
			},
		})
	}
}
