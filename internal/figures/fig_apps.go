package figures

import (
	"strconv"

	"optanestudy/internal/daxfs"
	"optanestudy/internal/harness"
	"optanestudy/internal/novafs"
	"optanestudy/internal/platform"
	"optanestudy/internal/pmemobj"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/vfs"
)

func appPlatform(llcLines int) *platform.Platform {
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	if llcLines > 0 {
		cfg.LLC.Lines = llcLines
	}
	return platform.MustNew(cfg)
}

// Fig8 reproduces "Migrating RocksDB to 3D XPoint Memory": db_bench SET
// throughput for WAL-POSIX, WAL-FLEX and the persistent skiplist, on
// DRAM-emulated persistent memory versus (simulated) real 3D XPoint.
// X positions: 0=WAL-POSIX, 1=WAL-FLEX, 2=persistent skiplist.
func Fig8(q Quality) []stats.Figure {
	ops := q.ops(4000)
	prepop := q.ops(20000)
	// The figure's qualitative Optane ordering (WAL-FLEX above the
	// persistent memtable) only emerges once the skiplist carries a few
	// thousand entries; keep the quick-quality workload above that floor.
	if ops < 1600 {
		ops, prepop = 1600, 8000
	}
	spec := func(onDRAM bool, scenario string) harness.Spec {
		return harness.Spec{
			Scenario: scenario,
			Params: map[string]string{
				"dram":        strconv.FormatBool(onDRAM),
				"prepopulate": strconv.Itoa(prepop),
			},
			Ops: ops,
		}
	}
	modes := []string{"lsmkv/set-walposix", "lsmkv/set-walflex", "lsmkv/set-pmem-memtable"}
	dram := stats.Figure{
		ID: "fig8-dram", Title: "RocksDB SET on DRAM-emulated PM",
		XLabel: "mode (0=WAL-POSIX 1=WAL-FLEX 2=persistent-skiplist)",
		YLabel: "throughput (KOps/s)",
		Series: []stats.Series{{Name: "DRAM"}},
	}
	opt := stats.Figure{
		ID: "fig8-optane", Title: "RocksDB SET on 3D XPoint",
		XLabel: "mode (0=WAL-POSIX 1=WAL-FLEX 2=persistent-skiplist)",
		YLabel: "throughput (KOps/s)",
		Series: []stats.Series{{Name: "3DXP"}},
	}
	var specs []harness.Spec
	for _, m := range modes {
		specs = append(specs, spec(true, m), spec(false, m))
	}
	trs := trials(specs)
	for i := range modes {
		dram.Series[0].Add(float64(i), trs[2*i].Metrics["kops_per_sec"])
		opt.Series[0].Add(float64(i), trs[2*i+1].Metrics["kops_per_sec"])
	}
	return []stats.Figure{dram, opt}
}

// Fig12 reproduces "File IO latency": 64 B and 256 B random overwrites and
// 4 KB reads on XFS-DAX(±sync), Ext4-DAX(±sync), NOVA and NOVA-datalog.
func Fig12(q Quality) []stats.Figure {
	type fsCase struct {
		name string
		mk   func(p *platform.Platform) (vfs.FS, error)
		sync bool
	}
	cases := []fsCase{
		{"XFS-DAX-sync", mkDax(daxfs.XFS), true},
		{"XFS-DAX", mkDax(daxfs.XFS), false},
		{"Ext4-DAX-sync", mkDax(daxfs.Ext4), true},
		{"Ext4-DAX", mkDax(daxfs.Ext4), false},
		{"NOVA", mkNova(novafs.COW), false},
		{"NOVA-datalog", mkNova(novafs.Datalog), false},
	}
	iters := q.ops(400)
	fig := stats.Figure{
		ID:     "fig12",
		Title:  "File IO latency (us)",
		XLabel: "op (0=overwrite-64B 1=overwrite-256B 2=read-4KB)",
		YLabel: "latency (us)",
	}
	for _, c := range cases {
		s := stats.Series{Name: c.name}
		for opIdx, bs := range []int{64, 256, 4096} {
			p := appPlatform(0)
			fsys, err := c.mk(p)
			if err != nil {
				panic(err)
			}
			var total sim.Time
			p.Go("io", 0, func(ctx *platform.MemCtx) {
				f, err := fsys.Create(ctx, "bench")
				if err != nil {
					panic(err)
				}
				// Lay out a 1 MB file.
				chunk := make([]byte, 64<<10)
				for off := int64(0); off < 1<<20; off += int64(len(chunk)) {
					f.WriteAt(ctx, off, chunk)
				}
				f.Sync(ctx)
				r := sim.NewRNG(12)
				buf := make([]byte, bs)
				for i := 0; i < iters; i++ {
					off := r.Int63n((1<<20)/int64(bs)) * int64(bs)
					start := ctx.Proc().Now()
					if opIdx == 2 {
						f.ReadAt(ctx, off, buf)
					} else {
						f.WriteAt(ctx, off, buf)
						if c.sync {
							f.Sync(ctx)
						}
					}
					total += ctx.Proc().Now() - start
				}
			})
			p.Run()
			s.Add(float64(opIdx), total.Microseconds()/float64(iters))
		}
		fig.Series = append(fig.Series, s)
	}
	return []stats.Figure{fig}
}

func mkDax(v daxfs.Variant) func(p *platform.Platform) (vfs.FS, error) {
	return func(p *platform.Platform) (vfs.FS, error) {
		ns, err := p.Optane("dax", 0, 64<<20)
		if err != nil {
			return nil, err
		}
		return daxfs.Mount(ns, daxfs.DefaultConfig(v))
	}
}

func mkNova(m novafs.Mode) func(p *platform.Platform) (vfs.FS, error) {
	return func(p *platform.Platform) (vfs.FS, error) {
		ns, err := p.Optane("nova", 0, 64<<20)
		if err != nil {
			return nil, err
		}
		return novafs.Mount([]*platform.Namespace{ns}, novafs.DefaultOptions(m))
	}
}

// Fig15 reproduces "Tuning persistence instructions for micro-buffering":
// no-op transaction latency for PGL-NT vs PGL-CLWB across object sizes.
func Fig15(q Quality) []stats.Figure {
	sizes := []int{64, 128, 256, 512, 1 << 10, 2 << 10, 4 << 10, 8 << 10}
	if q == Quick {
		sizes = []int{64, 256, 1 << 10, 8 << 10}
	}
	iters := q.ops(200)
	fig := stats.Figure{
		ID:     "fig15",
		Title:  "Micro-buffering no-op transaction latency",
		XLabel: "object size (bytes)",
		YLabel: "latency (us)",
	}
	for _, mode := range []pmemobj.WriteBackMode{pmemobj.NT, pmemobj.CLWB} {
		s := stats.Series{Name: mode.String()}
		for _, size := range sizes {
			p := appPlatform(0)
			ns := mustNS(p.Optane("pool", 0, 128<<20))
			pool, err := pmemobj.Create(ns)
			if err != nil {
				panic(err)
			}
			var total sim.Time
			p.Go("tx", 0, func(ctx *platform.MemCtx) {
				for i := 0; i < iters; i++ {
					obj, err := pool.Alloc(ctx, size)
					if err != nil {
						panic(err)
					}
					ctx.Proc().Sleep(10 * sim.Microsecond)
					start := ctx.Proc().Now()
					mb := pool.OpenBuffered(ctx, obj, size)
					if err := mb.Commit(mode); err != nil {
						panic(err)
					}
					total += ctx.Proc().Now() - start
				}
			})
			p.Run()
			s.Add(float64(size), total.Microseconds()/float64(iters))
		}
		fig.Series = append(fig.Series, s)
	}
	return []stats.Figure{fig}
}

// Fig17 reproduces "Multi-DIMM NOVA": FIO bandwidth for sequential/random
// reads and writes, sync and async engines, interleaved (I) versus
// per-thread-pinned non-interleaved (NI) mounts. See EXPERIMENTS.md for the
// documented deviation on the write rows.
func Fig17(q Quality) []stats.Figure {
	threads := 24
	ops := q.ops(240) / 4
	if ops < 24 {
		ops = 24
	}
	read := stats.Figure{
		ID: "fig17-read", Title: "Multi-DIMM NOVA: FIO read",
		XLabel: "op (0=seq 1=rand)", YLabel: "bandwidth (GB/s)",
	}
	write := stats.Figure{
		ID: "fig17-write", Title: "Multi-DIMM NOVA: FIO write",
		XLabel: "op (0=seq 1=rand)", YLabel: "bandwidth (GB/s)",
	}
	confs := []struct {
		name   string
		pinned bool
		sync   bool
	}{
		{"I,sync", false, true},
		{"NI,sync", true, true},
		{"I,async", false, false},
		{"NI,async", true, false},
	}
	var specs []harness.Spec
	for _, conf := range confs {
		for _, pat := range []string{"seq", "rand"} {
			for _, rw := range []string{"read", "write"} {
				specs = append(specs, harness.Spec{
					Scenario: "fio/" + pat + "-" + rw,
					Params: map[string]string{
						"pinned": strconv.FormatBool(conf.pinned),
						"sync":   strconv.FormatBool(conf.sync),
					},
					Threads: threads,
					Ops:     ops,
				})
			}
		}
	}
	trs := trials(specs)
	k := 0
	for _, conf := range confs {
		rs := stats.Series{Name: conf.name}
		ws := stats.Series{Name: conf.name}
		for patIdx := range []string{"seq", "rand"} {
			rs.Add(float64(patIdx), trs[k].GBs)
			ws.Add(float64(patIdx), trs[k+1].GBs)
			k += 2
		}
		read.Series = append(read.Series, rs)
		write.Series = append(write.Series, ws)
	}
	return []stats.Figure{read, write}
}

// Fig19 reproduces "NUMA degradation for PMemKV": cmap overwrite bandwidth
// versus thread count for local/remote DRAM and Optane pools.
func Fig19(q Quality) []stats.Figure {
	threadCounts := []int{1, 2, 4, 8, 12}
	if q == Quick {
		threadCounts = []int{1, 4, 8}
	}
	fig := stats.Figure{
		ID:     "fig19",
		Title:  "PMemKV cmap overwrite: NUMA degradation",
		XLabel: "threads",
		YLabel: "bandwidth (GB/s)",
	}
	confs := []struct {
		name   string
		dram   bool
		socket int
	}{
		{"DRAM", true, 0},
		{"DRAM-Remote", true, 1},
		{"Optane", false, 0},
		{"Optane-Remote", false, 1},
	}
	var specs []harness.Spec
	for _, conf := range confs {
		media := "optane"
		if conf.dram {
			media = "dram"
		}
		for _, th := range threadCounts {
			specs = append(specs, harness.Spec{
				Scenario: "pmemkv/overwrite",
				Params:   map[string]string{"media": media},
				Socket:   conf.socket,
				Threads:  th,
				Duration: q.dur(300 * sim.Microsecond),
			})
		}
	}
	trs := trials(specs)
	k := 0
	for _, conf := range confs {
		s := stats.Series{Name: conf.name}
		for _, th := range threadCounts {
			s.Add(float64(th), trs[k].GBs)
			k++
		}
		fig.Series = append(fig.Series, s)
	}
	return []stats.Figure{fig}
}
