package figures

import (
	"testing"
)

// Every figure's Quick run must produce non-empty series, and key
// qualitative claims from the paper must hold in the regenerated data.

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d figures, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
	}
	if Lookup("fig9") == nil || Lookup("nope") != nil {
		t.Error("Lookup broken")
	}
}

func TestFig2Shape(t *testing.T) {
	figs := Fig2(Quick)
	f := figs[0]
	dram, opt := f.Get("DRAM"), f.Get("Optane")
	if dram == nil || opt == nil {
		t.Fatal("missing series")
	}
	// Reads: Optane 2-3x DRAM; random worse than sequential on Optane by
	// a larger factor than DRAM.
	dSeq, _ := dram.YAt(0)
	dRand, _ := dram.YAt(1)
	oSeq, _ := opt.YAt(0)
	oRand, _ := opt.YAt(1)
	if oSeq < 1.5*dSeq || oSeq > 3.5*dSeq {
		t.Errorf("Optane seq read %.0f vs DRAM %.0f: want 2-3x", oSeq, dSeq)
	}
	if oRand/oSeq < 1.4 {
		t.Errorf("Optane rand/seq = %.2f, want ~1.8", oRand/oSeq)
	}
	if dRand/dSeq > 1.5 {
		t.Errorf("DRAM rand/seq = %.2f, want ~1.2", dRand/dSeq)
	}
	// Writes commit at the ADR: similar for both media, ntstore > clwb.
	oNT, _ := opt.YAt(2)
	oCLWB, _ := opt.YAt(3)
	if oNT <= oCLWB {
		t.Errorf("ntstore (%.0f) must exceed store+clwb (%.0f)", oNT, oCLWB)
	}
}

func TestFig3Shape(t *testing.T) {
	f := Fig3(Quick)[0]
	max := f.Get("Max")
	small, _ := max.YAt(256)
	big, _ := max.YAt(64 << 20)
	if small < 10 { // µs
		t.Errorf("small-hotspot max = %.1f us, want ~20-50", small)
	}
	if big > small/3 {
		t.Errorf("64MB-hotspot max = %.1f us should be far below %.1f", big, small)
	}
}

func TestFig4Shape(t *testing.T) {
	figs := Fig4(Quick)
	if len(figs) != 3 {
		t.Fatal("want 3 panels")
	}
	// DRAM read scales monotonically to high bandwidth.
	dramRead := figs[0].Get("Read")
	_, peak := dramRead.MaxY()
	if peak < 60 {
		t.Errorf("DRAM read peak = %.1f GB/s", peak)
	}
	// Optane-NI ntstore peaks at few threads and declines.
	ni := figs[1].Get("Write(ntstore)")
	peakX, peakY := ni.MaxY()
	if peakX > 4 {
		t.Errorf("Optane-NI ntstore peaks at %d threads, want <= 4", int(peakX))
	}
	last, _ := ni.YAt(24)
	if last >= peakY {
		t.Error("Optane-NI ntstore does not decline at 24 threads")
	}
	// Interleaving lifts read bandwidth well above single-DIMM.
	_, niReadPeak := figs[1].Get("Read").MaxY()
	_, ilReadPeak := figs[2].Get("Read").MaxY()
	if ilReadPeak < 3*niReadPeak {
		t.Errorf("interleaved read peak %.1f not ~6x NI %.1f", ilReadPeak, niReadPeak)
	}
}

func TestFig9Shape(t *testing.T) {
	f := Fig9(Quick)[0]
	if len(f.Series) != 3 {
		t.Fatal("want 3 instruction series")
	}
	for _, s := range f.Series {
		if len(s.X) == 0 {
			t.Errorf("series %s empty", s.Name)
		}
	}
	if f.Notes == "" {
		t.Error("missing r2/slope notes")
	}
}

func TestFig10Shape(t *testing.T) {
	f := Fig10(Quick)[0]
	wa := f.Series[0]
	below, _ := wa.YAt(4 << 10)
	above, _ := wa.YAt(256 << 10)
	if below > 1.15 {
		t.Errorf("WA below capacity = %.2f, want ~1", below)
	}
	if above < 1.5 {
		t.Errorf("WA above capacity = %.2f, want ~2", above)
	}
}

func TestFig8Shape(t *testing.T) {
	figs := Fig8(Quick)
	dram := figs[0].Series[0]
	opt := figs[1].Series[0]
	dFlex, _ := dram.YAt(1)
	dSkip, _ := dram.YAt(2)
	oPosix, _ := opt.YAt(0)
	oFlex, _ := opt.YAt(1)
	oSkip, _ := opt.YAt(2)
	if dSkip <= dFlex {
		t.Errorf("DRAM: skiplist (%.0f) must beat FLEX (%.0f)", dSkip, dFlex)
	}
	if oFlex <= oSkip {
		t.Errorf("Optane: FLEX (%.0f) must beat skiplist (%.0f)", oFlex, oSkip)
	}
	if oPosix >= oFlex {
		t.Errorf("Optane: POSIX (%.0f) must trail FLEX (%.0f)", oPosix, oFlex)
	}
}

func TestFig12Shape(t *testing.T) {
	f := Fig12(Quick)[0]
	nova := f.Get("NOVA")
	datalog := f.Get("NOVA-datalog")
	ext4sync := f.Get("Ext4-DAX-sync")
	n64, _ := nova.YAt(0)
	d64, _ := datalog.YAt(0)
	e64, _ := ext4sync.YAt(0)
	if d64*3 > n64 {
		t.Errorf("datalog 64B overwrite (%.2f us) should be >=3x faster than NOVA (%.2f us)", d64, n64)
	}
	if e64 < 30 {
		t.Errorf("Ext4-DAX-sync 64B = %.1f us, paper ~57", e64)
	}
	// Read path: datalog slightly slower than NOVA.
	nRead, _ := nova.YAt(2)
	dRead, _ := datalog.YAt(2)
	if dRead < nRead {
		t.Errorf("datalog read (%.2f) should not beat NOVA read (%.2f)", dRead, nRead)
	}
}

func TestFig15Shape(t *testing.T) {
	f := Fig15(Quick)[0]
	nt := f.Get("PGL-NT")
	clwb := f.Get("PGL-CLWB")
	nt64, _ := nt.YAt(64)
	cl64, _ := clwb.YAt(64)
	nt8k, _ := nt.YAt(8 << 10)
	cl8k, _ := clwb.YAt(8 << 10)
	if cl64 >= nt64 {
		t.Errorf("64B: CLWB (%.2f us) must beat NT (%.2f us)", cl64, nt64)
	}
	if nt8k >= cl8k {
		t.Errorf("8KB: NT (%.2f us) must beat CLWB (%.2f us)", nt8k, cl8k)
	}
}

func TestFig16Shape(t *testing.T) {
	figs := Fig16(Quick)
	write := figs[1]
	one := write.Get("1 Threads")
	six := write.Get("6 Threads")
	p1, _ := one.YAt(1 << 10)
	p6, _ := six.YAt(1 << 10)
	if p6 >= p1 {
		t.Errorf("spreading writers (%.2f GB/s) must underperform pinning (%.2f GB/s)", p6, p1)
	}
}

func TestFig18Shape(t *testing.T) {
	f := Fig18(Quick)[0]
	local4 := f.Get("Optane-4")
	remote4 := f.Get("Optane-Remote-4")
	lMix, _ := local4.YAt(4) // 1:1 mix
	rMix, _ := remote4.YAt(4)
	if rMix > lMix/2 {
		t.Errorf("remote mixed (%.2f) must collapse vs local (%.2f)", rMix, lMix)
	}
	// Pure reads suffer far less remotely than mixed traffic.
	lR, _ := local4.YAt(0)
	rR, _ := remote4.YAt(0)
	if rR < lR/3 {
		t.Errorf("remote pure read (%.2f vs %.2f) should not collapse as hard", rR, lR)
	}
}

func TestFig19Shape(t *testing.T) {
	f := Fig19(Quick)[0]
	opt := f.Get("Optane")
	rem := f.Get("Optane-Remote")
	o8, _ := opt.YAt(8)
	r8, _ := rem.YAt(8)
	if r8 >= o8 {
		t.Errorf("remote pmemkv (%.3f) must trail local (%.3f) at 8 threads", r8, o8)
	}
	dram := f.Get("DRAM")
	dramRem := f.Get("DRAM-Remote")
	d8, _ := dram.YAt(8)
	dr8, _ := dramRem.YAt(8)
	if o8 > 0 && d8 > 0 {
		optLoss := o8 / r8
		dramLoss := d8 / dr8
		if optLoss <= dramLoss {
			t.Errorf("Optane NUMA loss (%.2fx) must exceed DRAM's (%.2fx)", optLoss, dramLoss)
		}
	}
}
