package pmemkv

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmemobj"
	"optanestudy/internal/sim"
)

func newStore(t testing.TB, buckets int) (*platform.Platform, *pmemobj.Pool, *CMap) {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	ns, err := p.Optane("kv", 0, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pmemobj.Create(ns)
	if err != nil {
		t.Fatal(err)
	}
	var m *CMap
	p.Go("create", 0, func(ctx *platform.MemCtx) {
		m, err = CreateCMap(ctx, pool, buckets)
	})
	p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return p, pool, m
}

func TestCMapPutGet(t *testing.T) {
	p, _, m := newStore(t, 64)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		if err := m.Put(ctx, []byte("alpha"), []byte("one")); err != nil {
			t.Error(err)
		}
		if err := m.Put(ctx, []byte("beta"), []byte("two")); err != nil {
			t.Error(err)
		}
		v, ok := m.Get(ctx, []byte("alpha"))
		if !ok || !bytes.Equal(v, []byte("one")) {
			t.Errorf("alpha = %q, %v", v, ok)
		}
		if _, ok := m.Get(ctx, []byte("gamma")); ok {
			t.Error("phantom key")
		}
	})
	p.Run()
}

func TestCMapOverwriteSameSize(t *testing.T) {
	p, _, m := newStore(t, 16)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		m.Put(ctx, []byte("k"), []byte("AAAA"))
		m.Put(ctx, []byte("k"), []byte("BBBB"))
		v, _ := m.Get(ctx, []byte("k"))
		if !bytes.Equal(v, []byte("BBBB")) {
			t.Errorf("got %q", v)
		}
		if n := m.Count(ctx); n != 1 {
			t.Errorf("count = %d", n)
		}
	})
	p.Run()
}

func TestCMapResizeValue(t *testing.T) {
	p, _, m := newStore(t, 16)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		m.Put(ctx, []byte("k"), []byte("short"))
		m.Put(ctx, []byte("k"), []byte("a much longer value than before"))
		v, _ := m.Get(ctx, []byte("k"))
		if string(v) != "a much longer value than before" {
			t.Errorf("got %q", v)
		}
		if n := m.Count(ctx); n != 1 {
			t.Errorf("count = %d after resize", n)
		}
	})
	p.Run()
}

func TestCMapDelete(t *testing.T) {
	p, _, m := newStore(t, 8) // few buckets: exercise chains
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		for i := 0; i < 32; i++ {
			m.Put(ctx, []byte(fmt.Sprintf("key-%02d", i)), []byte("v"))
		}
		if !m.Delete(ctx, []byte("key-07")) {
			t.Error("delete of live key failed")
		}
		if m.Delete(ctx, []byte("key-07")) {
			t.Error("double delete succeeded")
		}
		if _, ok := m.Get(ctx, []byte("key-07")); ok {
			t.Error("deleted key readable")
		}
		if n := m.Count(ctx); n != 31 {
			t.Errorf("count = %d", n)
		}
	})
	p.Run()
}

func TestCMapSurvivesCrashAndReopen(t *testing.T) {
	p, pool, m := newStore(t, 32)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		for i := 0; i < 20; i++ {
			m.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
		}
	})
	p.Run()
	p.Crash()
	re, err := pmemobj.Open(pool.NS())
	if err != nil {
		t.Fatal(err)
	}
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		m2, err := OpenCMap(ctx, re)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			v, ok := m2.Get(ctx, []byte(fmt.Sprintf("k%d", i)))
			if !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Errorf("k%d = %q, %v after crash", i, v, ok)
			}
		}
		if n := m2.Count(ctx); n != 20 {
			t.Errorf("count = %d", n)
		}
	})
	p.Run()
}

func TestCMapConcurrentWriters(t *testing.T) {
	p, _, m := newStore(t, 128)
	const perThread = 40
	for th := 0; th < 4; th++ {
		th := th
		p.Go(fmt.Sprintf("w%d", th), 0, func(ctx *platform.MemCtx) {
			for i := 0; i < perThread; i++ {
				key := []byte(fmt.Sprintf("t%d-k%d", th, i))
				if err := m.Put(ctx, key, key); err != nil {
					t.Error(err)
				}
			}
		})
	}
	p.Run()
	p.Go("check", 0, func(ctx *platform.MemCtx) {
		if n := m.Count(ctx); n != 4*perThread {
			t.Errorf("count = %d, want %d", n, 4*perThread)
		}
		for th := 0; th < 4; th++ {
			for i := 0; i < perThread; i++ {
				key := []byte(fmt.Sprintf("t%d-k%d", th, i))
				if v, ok := m.Get(ctx, key); !ok || !bytes.Equal(v, key) {
					t.Errorf("%s missing after concurrent load", key)
				}
			}
		}
	})
	p.Run()
}

// Property: the map agrees with a Go map under random operations.
func TestCMapModelProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p, _, m := newStore(t, 32)
		model := map[string]string{}
		ok := true
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			r := sim.NewRNG(seed)
			for i := 0; i < 120 && ok; i++ {
				key := fmt.Sprintf("k%d", r.Intn(25))
				switch r.Intn(3) {
				case 0:
					val := fmt.Sprintf("v%d", r.Intn(1000))
					if err := m.Put(ctx, []byte(key), []byte(val)); err != nil {
						ok = false
					}
					model[key] = val
				case 1:
					got, has := m.Get(ctx, []byte(key))
					want, wantHas := model[key]
					if has != wantHas || (has && string(got) != want) {
						ok = false
					}
				case 2:
					has := m.Delete(ctx, []byte(key))
					_, wantHas := model[key]
					if has != wantHas {
						ok = false
					}
					delete(model, key)
				}
			}
			if m.Count(ctx) != len(model) {
				ok = false
			}
		})
		p.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestOverwriteBenchRuns(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	ns, _ := p.Optane("kv", 0, 64<<20)
	res, err := RunOverwrite(OverwriteSpec{
		Platform: p, NS: ns, Socket: 0, Threads: 2, Keys: 100,
		KeySize: 16, ValSize: 64, Duration: 100 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 10 {
		t.Fatalf("only %d ops completed", res.Ops)
	}
	if res.GBs <= 0 {
		t.Fatal("no bandwidth reported")
	}
}

func TestOverwriteRemoteSlower(t *testing.T) {
	runAt := func(socket int) float64 {
		cfg := platform.DefaultConfig()
		cfg.TrackData = true
		cfg.XP.Wear.Enabled = false
		p := platform.MustNew(cfg)
		ns, _ := p.Optane("kv", 0, 64<<20)
		res, err := RunOverwrite(OverwriteSpec{
			Platform: p, NS: ns, Socket: socket, Threads: 4, Keys: 200,
			KeySize: 16, ValSize: 64, Duration: 150 * sim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GBs
	}
	local := runAt(0)
	remote := runAt(1)
	if remote >= local {
		t.Errorf("remote overwrite (%.3f GB/s) must trail local (%.3f GB/s)", remote, local)
	}
}

// TestCMapCrashDurabilityFuzz crashes the platform after a random number
// of completed operations and checks that every completed Put is durable
// and the recovered structure is consistent (each Put is synchronous:
// fully persistent on return).
func TestCMapCrashDurabilityFuzz(t *testing.T) {
	f := func(seed uint64) bool {
		p, pool, m := newStore(t, 32)
		r := sim.NewRNG(seed)
		stopAfter := 5 + r.Intn(60)
		model := map[string]string{}
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			for i := 0; i < stopAfter; i++ {
				k := fmt.Sprintf("k%d", r.Intn(20))
				v := fmt.Sprintf("v%d-%d", i, r.Intn(100))
				if len(v) > 8 {
					v = v[:8]
				}
				if err := m.Put(ctx, []byte(k), []byte(v)); err != nil {
					t.Error(err)
					return
				}
				model[k] = v
			}
		})
		p.Run()
		p.Crash()
		re, err := pmemobj.Open(pool.NS())
		if err != nil {
			return false
		}
		ok := true
		p.Go("verify", 0, func(ctx *platform.MemCtx) {
			m2, err := OpenCMap(ctx, re)
			if err != nil {
				ok = false
				return
			}
			if m2.Count(ctx) != len(model) {
				ok = false
				return
			}
			for k, want := range model {
				got, has := m2.Get(ctx, []byte(k))
				if !has || string(got) != want {
					ok = false
					return
				}
			}
		})
		p.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
