package pmemkv

import (
	"fmt"

	"optanestudy/internal/harness"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

// Harness scenarios: the Figure 19 cmap overwrite workload. The media param
// places the pool on DRAM or Optane; run with -socket 1 (or the -remote
// preset) for the NUMA-degraded arm.
func init() {
	harness.Register(harness.Scenario{
		Name:     "pmemkv/overwrite",
		Doc:      "PMemKV cmap read-modify-write, workers local to the pool",
		Defaults: overwriteDefaults(0),
		Run:      runOverwriteScenario,
	})
	harness.Register(harness.Scenario{
		Name:     "pmemkv/overwrite-remote",
		Doc:      "PMemKV cmap read-modify-write, workers one UPI hop away",
		Defaults: overwriteDefaults(1),
		Run:      runOverwriteScenario,
	})
}

func overwriteDefaults(socket int) harness.Defaults {
	return harness.Defaults{
		Threads: 8, Socket: socket,
		Duration: 300 * sim.Microsecond, Seed: 19,
	}
}

func runOverwriteScenario(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	media := r.Str("media", "optane")
	keys := r.Int("keys", 400)
	keySize := r.Int("keysize", 16)
	valSize := r.Int("valsize", 128)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}

	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	defer p.Close()
	var ns *platform.Namespace
	var err error
	switch media {
	case "dram":
		ns, err = p.DRAM("kv", 0, 128<<20)
	case "optane":
		ns, err = p.Optane("kv", 0, 128<<20)
	default:
		return harness.Trial{}, fmt.Errorf("unknown media %q", media)
	}
	if err != nil {
		return harness.Trial{}, err
	}
	res, err := RunOverwrite(OverwriteSpec{
		Platform: p, NS: ns, Socket: spec.Socket, Threads: spec.Threads,
		Keys: keys, KeySize: keySize, ValSize: valSize,
		Duration: spec.Duration, Seed: spec.Seed,
	})
	if err != nil {
		return harness.Trial{}, err
	}
	return harness.Trial{
		Bytes: res.Ops * int64(keySize+valSize),
		Ops:   res.Ops,
		Sim:   res.Elapsed,
	}, nil
}
