package pmemkv

import (
	"encoding/binary"
	"fmt"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmemobj"
	"optanestudy/internal/sim"
)

// OverwriteSpec configures the Figure 19 benchmark: a mixed
// read-modify-write ("overwrite") workload against a cmap, with the store
// either local or remote relative to the worker threads.
type OverwriteSpec struct {
	Platform *platform.Platform
	NS       *platform.Namespace
	Socket   int // socket the workers run on
	Threads  int
	Keys     int
	KeySize  int
	ValSize  int
	Duration sim.Time
	Seed     uint64
}

// OverwriteResult reports the achieved throughput.
type OverwriteResult struct {
	Ops     int64
	Elapsed sim.Time
	// GBs counts key+value bytes moved per second (the paper plots
	// bandwidth).
	GBs float64
}

// RunOverwrite loads the store and runs the overwrite phase.
func RunOverwrite(spec OverwriteSpec) (OverwriteResult, error) {
	p := spec.Platform
	pool, err := pmemobj.Create(spec.NS)
	if err != nil {
		return OverwriteResult{}, err
	}
	if spec.Duration == 0 {
		spec.Duration = 300 * sim.Microsecond
	}
	if spec.KeySize < 8 {
		spec.KeySize = 16
	}
	if spec.ValSize == 0 {
		spec.ValSize = 128
	}
	var m *CMap
	var initErr error
	p.Go("load", spec.Socket, func(ctx *platform.MemCtx) {
		m, initErr = CreateCMap(ctx, pool, spec.Keys*2)
		if initErr != nil {
			return
		}
		for i := 0; i < spec.Keys; i++ {
			if err := m.Put(ctx, benchKey(i, spec.KeySize), benchVal(i, spec.ValSize)); err != nil {
				initErr = err
				return
			}
		}
	})
	p.Run()
	if initErr != nil {
		return OverwriteResult{}, initErr
	}

	start := p.Now()
	deadline := start + spec.Duration
	var ops int64
	for th := 0; th < spec.Threads; th++ {
		th := th
		p.Go(fmt.Sprintf("ow%d", th), spec.Socket, func(ctx *platform.MemCtx) {
			r := sim.NewRNG(spec.Seed + uint64(th)*997 + 3)
			for ctx.Proc().Now() < deadline {
				k := benchKey(r.Intn(spec.Keys), spec.KeySize)
				val, ok := m.Get(ctx, k)
				if !ok {
					val = benchVal(0, spec.ValSize)
				}
				// Modify and write back: the read-modify-write mix that
				// punishes remote 3D XPoint (Section 5.4.1).
				binary.LittleEndian.PutUint64(val, r.Uint64())
				if err := m.Put(ctx, k, val); err != nil {
					return
				}
				ops++
			}
		})
	}
	end := p.Run()
	elapsed := end - start
	res := OverwriteResult{Ops: ops, Elapsed: elapsed}
	if elapsed > 0 {
		res.GBs = float64(ops) * float64(spec.KeySize+spec.ValSize) / elapsed.Seconds() / 1e9
	}
	return res, nil
}

func benchKey(i, size int) []byte {
	k := make([]byte, size)
	binary.LittleEndian.PutUint64(k, uint64(i))
	return k
}

func benchVal(i, size int) []byte {
	v := make([]byte, size)
	binary.LittleEndian.PutUint64(v, uint64(i)*2654435761)
	return v
}
