// Package pmemkv is a persistent key-value store in the style of Intel's
// PMemKV "cmap" engine (Section 5.4.1): a fixed-size bucket array of
// persistent entry chains built on the pmemobj pool, with striped locks
// for concurrency.
//
// Crash consistency: an entry is fully persisted before it is linked into
// its bucket with a single 8-byte pointer persist; in-place value updates
// go through the pool's undo log.
package pmemkv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/pmemobj"
	"optanestudy/internal/sim"
)

// Entry layout: [8B next][8B hash][4B keyLen][4B valLen][key][val].
const entryHeader = 24

// CMap is the concurrent hash map engine. Entry bodies stream with the
// non-temporal policy (fresh allocations, fully overwritten); the 8-byte
// link swaps go through the store+clwb policy (small, cache-hot pointers).
type CMap struct {
	pool     *pmemobj.Pool
	reg      pmem.Region
	entry    *pmem.Persister
	link     *pmem.Persister
	tableOff int64
	buckets  int64
	locks    []sim.Mutex
}

const cmapMagic = 0x434D4150 // "CMAP"

// CreateCMap formats a cmap with the given bucket count in the pool and
// installs it as the pool root.
func CreateCMap(ctx *platform.MemCtx, pool *pmemobj.Pool, buckets int) (*CMap, error) {
	if buckets < 1 {
		return nil, errors.New("pmemkv: bucket count must be positive")
	}
	// Table: [4B magic][4B bucket count][buckets × 8B heads].
	tableSize := 8 + buckets*8
	off, err := pool.Alloc(ctx, tableSize)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, tableSize)
	binary.LittleEndian.PutUint32(hdr[0:], cmapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(buckets))
	m := attach(pool, off, int64(buckets))
	m.entry.Persist(ctx, m.reg, off, len(hdr), hdr)
	pool.SetRoot(ctx, off)
	return m, nil
}

// OpenCMap attaches to the cmap previously installed as the pool root.
func OpenCMap(ctx *platform.MemCtx, pool *pmemobj.Pool) (*CMap, error) {
	off := pool.Root(ctx)
	if off == 0 {
		return nil, errors.New("pmemkv: pool has no root object")
	}
	var hdr [8]byte
	pool.Region().LoadInto(ctx, off, hdr[:])
	if binary.LittleEndian.Uint32(hdr[0:]) != cmapMagic {
		return nil, fmt.Errorf("pmemkv: root object is not a cmap")
	}
	buckets := int64(binary.LittleEndian.Uint32(hdr[4:]))
	return attach(pool, off, buckets), nil
}

func attach(pool *pmemobj.Pool, off, buckets int64) *CMap {
	nlocks := 64
	if int64(nlocks) > buckets {
		nlocks = int(buckets)
	}
	return &CMap{
		pool:     pool,
		reg:      pool.Region(),
		entry:    pmem.NewPersister(pmem.NTStream),
		link:     pmem.NewPersister(pmem.StoreFlush),
		tableOff: off, buckets: buckets, locks: make([]sim.Mutex, nlocks),
	}
}

func hashKey(key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (m *CMap) bucketOff(h uint64) int64 {
	return m.tableOff + 8 + int64(h%uint64(m.buckets))*8
}

func (m *CMap) lockFor(h uint64) *sim.Mutex {
	return &m.locks[h%uint64(m.buckets)%uint64(len(m.locks))]
}

func (m *CMap) readPtr(ctx *platform.MemCtx, off int64) int64 {
	var buf [8]byte
	m.reg.LoadInto(ctx, off, buf[:])
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

func (m *CMap) writePtr(ctx *platform.MemCtx, off, val int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(val))
	m.link.Persist(ctx, m.reg, off, len(buf), buf[:])
}

type entryMeta struct {
	off          int64
	next         int64
	hash         uint64
	keyLen, vLen int
}

func (m *CMap) readMeta(ctx *platform.MemCtx, off int64) entryMeta {
	var hdr [entryHeader]byte
	m.reg.LoadInto(ctx, off, hdr[:])
	return entryMeta{
		off:    off,
		next:   int64(binary.LittleEndian.Uint64(hdr[0:])),
		hash:   binary.LittleEndian.Uint64(hdr[8:]),
		keyLen: int(binary.LittleEndian.Uint32(hdr[16:])),
		vLen:   int(binary.LittleEndian.Uint32(hdr[20:])),
	}
}

// find walks the chain for key; returns the entry and the offset of the
// pointer that references it (bucket head or predecessor's next field).
func (m *CMap) find(ctx *platform.MemCtx, key []byte) (entryMeta, int64, bool) {
	h := hashKey(key)
	ptrOff := m.bucketOff(h)
	cur := m.readPtr(ctx, ptrOff)
	for cur != 0 {
		meta := m.readMeta(ctx, cur)
		if meta.hash == h && meta.keyLen == len(key) {
			// Probe keys through a stack buffer: find is on the serving hot
			// path and must not allocate per chain hop (keys longer than the
			// buffer fall back, matching the old behavior).
			var kbuf [64]byte
			var k []byte
			if meta.keyLen > len(kbuf) {
				k = make([]byte, meta.keyLen)
			} else {
				k = kbuf[:meta.keyLen]
			}
			m.reg.LoadInto(ctx, cur+entryHeader, k)
			if bytes.Equal(k, key) {
				return meta, ptrOff, true
			}
		}
		ptrOff = cur // next pointer is the first field of the entry
		cur = meta.next
	}
	return entryMeta{}, 0, false
}

// Get returns the value for key.
func (m *CMap) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	lock := m.lockFor(hashKey(key))
	lock.Lock(ctx.Proc())
	defer lock.Unlock()
	meta, _, ok := m.find(ctx, key)
	if !ok {
		return nil, false
	}
	val := make([]byte, meta.vLen)
	m.reg.LoadInto(ctx, meta.off+entryHeader+int64(meta.keyLen), val)
	return val, true
}

// GetInto is the allocation-free Get: the value is loaded into dst and its
// full length returned (ok reports presence). A value longer than dst is
// loaded through a transient buffer instead — the same bytes travel the
// memory hierarchy either way, so simulated timing is identical to Get and
// only the Go-heap behavior differs.
func (m *CMap) GetInto(ctx *platform.MemCtx, key, dst []byte) (int, bool) {
	lock := m.lockFor(hashKey(key))
	lock.Lock(ctx.Proc())
	defer lock.Unlock()
	meta, _, ok := m.find(ctx, key)
	if !ok {
		return 0, false
	}
	val := dst
	if meta.vLen > len(dst) {
		val = make([]byte, meta.vLen)
	} else {
		val = dst[:meta.vLen]
	}
	m.reg.LoadInto(ctx, meta.off+entryHeader+int64(meta.keyLen), val)
	if meta.vLen > len(dst) {
		copy(dst, val)
	}
	return meta.vLen, true
}

// Put inserts or updates key. Same-size updates happen in place through
// the undo log; size changes allocate a replacement entry and swap the
// link.
func (m *CMap) Put(ctx *platform.MemCtx, key, val []byte) error {
	h := hashKey(key)
	lock := m.lockFor(h)
	lock.Lock(ctx.Proc())
	defer lock.Unlock()

	meta, ptrOff, ok := m.find(ctx, key)
	if ok && meta.vLen == len(val) {
		tx := m.pool.Begin(ctx)
		if err := tx.Update(meta.off+entryHeader+int64(meta.keyLen), val); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}
	// Build the new entry fully, persist it, then link it.
	size := entryHeader + len(key) + len(val)
	newOff, err := m.pool.Alloc(ctx, size)
	if err != nil {
		return err
	}
	buf := make([]byte, size)
	next := int64(0)
	if ok {
		next = meta.next // replacement keeps the tail of the chain
	} else {
		next = m.readPtr(ctx, m.bucketOff(h))
	}
	binary.LittleEndian.PutUint64(buf[0:], uint64(next))
	binary.LittleEndian.PutUint64(buf[8:], h)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(val)))
	copy(buf[entryHeader:], key)
	copy(buf[entryHeader+len(key):], val)
	m.entry.Persist(ctx, m.reg, newOff, len(buf), buf)
	if ok {
		m.writePtr(ctx, ptrOff, newOff) // atomic swap unlinks the old entry
		m.pool.Free(ctx, meta.off)
	} else {
		m.writePtr(ctx, m.bucketOff(h), newOff)
	}
	return nil
}

// Delete removes key, reporting whether it existed.
func (m *CMap) Delete(ctx *platform.MemCtx, key []byte) bool {
	lock := m.lockFor(hashKey(key))
	lock.Lock(ctx.Proc())
	defer lock.Unlock()
	meta, ptrOff, ok := m.find(ctx, key)
	if !ok {
		return false
	}
	m.writePtr(ctx, ptrOff, meta.next)
	m.pool.Free(ctx, meta.off)
	return true
}

// Count walks every bucket and returns the number of entries (recovery
// check; O(n)).
func (m *CMap) Count(ctx *platform.MemCtx) int {
	n := 0
	for b := int64(0); b < m.buckets; b++ {
		cur := m.readPtr(ctx, m.tableOff+8+b*8)
		for cur != 0 {
			n++
			cur = m.readMeta(ctx, cur).next
		}
	}
	return n
}
