package harness

import (
	"fmt"
	"sort"
	"strconv"

	"optanestudy/internal/sim"
)

// Spec is one fully serializable run request: which scenario, its workload
// parameters, and the shared measurement knobs. Zero fields inherit the
// scenario's defaults when resolved by the driver.
type Spec struct {
	// Scenario is the registered scenario name (e.g. "lattester/seq-read").
	Scenario string
	// Params carries scenario-specific workload parameters as strings so
	// specs round-trip through CLIs and JSON unchanged.
	Params map[string]string
	// Threads is the worker thread count.
	Threads int
	// Socket places the worker threads (0 = local to the namespace for
	// every built-in scenario).
	Socket int
	// Duration is the measured simulated-time budget for rate-style
	// scenarios.
	Duration sim.Time
	// Ops is the operation-count budget for count-style scenarios.
	Ops int
	// Warmup is simulated time excluded from the measured window inside
	// each trial (scenarios that support in-run warmup).
	Warmup sim.Time
	// Trials is how many measured trials the driver runs (default 1).
	Trials int
	// WarmupRuns is how many whole discarded runs accompany the trials for
	// wall-clock priming; they carry a seed stream disjoint from the
	// measured trials and may execute in any order relative to them.
	WarmupRuns int
	// Seed is the base RNG seed. Each run's effective seed is derived by
	// hashing the resolved spec identity (scenario name, params, knobs,
	// Seed) with the run kind and trial index — see deriveSeed — so
	// changing Seed changes every trial's randomness, but no trial uses
	// Seed verbatim.
	Seed uint64
	// Parallel is stamped by the driver on resolved specs: the pool width
	// available to a nested batch this spec's scenario fans out (the
	// requested width divided among the batch's jobs, at least 1).
	// Scenarios that nest (e.g. figures/*) pass it through so total
	// concurrency never exceeds the outer -parallel cap and a serial
	// sweep stays serial end to end. It never participates in seed
	// derivation or reported config, and results do not depend on it.
	Parallel int
	// Trace asks scenarios that support tracing to record per-op phase
	// spans and a timeline into Trial.Trace. Like Parallel it is a
	// non-identity passthrough: deriveSeed never hashes it, so a traced
	// trial's seed — and therefore its measured results — are identical
	// to the untraced trial's. Scenarios that nest (sweeps) propagate it
	// to their point specs and merge the points' traces.
	Trace bool
}

// withDefaults fills zero fields from the scenario's defaults and merges
// default params under explicit ones.
func (s Spec) withDefaults(d Defaults) Spec {
	if s.Threads == 0 {
		s.Threads = d.Threads
	}
	if s.Socket == 0 {
		s.Socket = d.Socket
	}
	if s.Duration == 0 {
		s.Duration = d.Duration
	}
	if s.Ops == 0 {
		s.Ops = d.Ops
	}
	if s.Warmup == 0 {
		s.Warmup = d.Warmup
	}
	if s.Trials == 0 {
		s.Trials = d.Trials
	}
	if s.Trials == 0 {
		s.Trials = 1
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	if len(d.Params) > 0 {
		merged := make(map[string]string, len(d.Params)+len(s.Params))
		for k, v := range d.Params {
			merged[k] = v
		}
		for k, v := range s.Params {
			merged[k] = v
		}
		s.Params = merged
	}
	return s
}

// ParamReader gives scenarios typed access to Spec.Params with error
// accumulation: getters return the default on absence or parse failure, and
// Err reports the first problem — including params that were set but never
// read (catching CLI typos).
type ParamReader struct {
	params map[string]string
	read   map[string]bool
	err    error
}

// NewParamReader wraps a param map.
func NewParamReader(params map[string]string) *ParamReader {
	return &ParamReader{params: params, read: make(map[string]bool, len(params))}
}

func (r *ParamReader) raw(key string) (string, bool) {
	r.read[key] = true
	v, ok := r.params[key]
	return v, ok
}

func (r *ParamReader) fail(key, v, kind string) {
	if r.err == nil {
		r.err = fmt.Errorf("param %s=%q: not a valid %s", key, v, kind)
	}
}

// Str returns the string param, or def when absent.
func (r *ParamReader) Str(key, def string) string {
	if v, ok := r.raw(key); ok {
		return v
	}
	return def
}

// Int returns the integer param, or def when absent.
func (r *ParamReader) Int(key string, def int) int {
	v, ok := r.raw(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		r.fail(key, v, "integer")
		return def
	}
	return n
}

// Int64 returns the 64-bit integer param, or def when absent.
func (r *ParamReader) Int64(key string, def int64) int64 {
	v, ok := r.raw(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		r.fail(key, v, "integer")
		return def
	}
	return n
}

// Bool returns the boolean param ("1/0", "true/false", ...), or def.
func (r *ParamReader) Bool(key string, def bool) bool {
	v, ok := r.raw(key)
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		r.fail(key, v, "boolean")
		return def
	}
	return b
}

// Float returns the float param, or def when absent.
func (r *ParamReader) Float(key string, def float64) float64 {
	v, ok := r.raw(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		r.fail(key, v, "float")
		return def
	}
	return f
}

// Err returns the first parse error, or an error naming any params that
// were supplied but never read by the scenario.
func (r *ParamReader) Err() error {
	if r.err != nil {
		return r.err
	}
	var unknown []string
	for k := range r.params {
		if !r.read[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown params: %v", unknown)
	}
	return nil
}
