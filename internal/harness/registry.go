package harness

import (
	"fmt"
	"path"
	"sort"
	"sync"

	"optanestudy/internal/sim"
)

// Scenario is one runnable, registered benchmark. Run executes a single
// trial: it builds its own fresh simulated platform from the spec (so
// trials are isolated and deterministic) and returns the raw measurements;
// the driver derives rates and aggregates across trials.
type Scenario struct {
	// Name is the registry key, conventionally "family/scenario"
	// (e.g. "lattester/seq-read", "fio/rand-write").
	Name string
	// Doc is a one-line description shown by CLI -list.
	Doc string
	// Defaults supplies values for Spec fields left zero.
	Defaults Defaults
	// Run executes one trial.
	Run func(spec Spec) (Trial, error)
}

// Defaults are the scenario-provided values for unset Spec fields.
type Defaults struct {
	Threads  int
	Socket   int
	Duration sim.Time
	Warmup   sim.Time
	Ops      int
	Trials   int
	Seed     uint64
	Params   map[string]string
}

var registry = struct {
	sync.RWMutex
	scenarios map[string]Scenario
}{scenarios: make(map[string]Scenario)}

// Register adds a scenario to the global registry. It panics on an empty
// name, a nil Run, or a duplicate registration — all programmer errors at
// package init time.
func Register(sc Scenario) {
	if sc.Name == "" {
		panic("harness: Register with empty scenario name")
	}
	if sc.Run == nil {
		panic("harness: Register " + sc.Name + " with nil Run")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.scenarios[sc.Name]; dup {
		panic("harness: duplicate scenario " + sc.Name)
	}
	registry.scenarios[sc.Name] = sc
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, bool) {
	registry.RLock()
	defer registry.RUnlock()
	sc, ok := registry.scenarios[name]
	return sc, ok
}

// Names returns every registered scenario name, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.scenarios))
	for name := range registry.scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Match returns the scenarios whose names match any of the glob patterns
// (path.Match syntax; an exact name is its own match), sorted by name. A
// pattern that matches nothing is an error, as is a malformed pattern.
func Match(patterns ...string) ([]Scenario, error) {
	registry.RLock()
	defer registry.RUnlock()
	picked := make(map[string]bool)
	for _, pat := range patterns {
		found := false
		for name := range registry.scenarios {
			ok, err := path.Match(pat, name)
			if err != nil {
				return nil, fmt.Errorf("harness: bad pattern %q: %v", pat, err)
			}
			if ok || name == pat {
				picked[name] = true
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("harness: no scenario matches %q", pat)
		}
	}
	names := make([]string, 0, len(picked))
	for name := range picked {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Scenario, len(names))
	for i, name := range names {
		out[i] = registry.scenarios[name]
	}
	return out, nil
}
