package harness

// The driver is split across three files: job.go constructs and executes
// independent (spec, trial) jobs with schedule-independent seed derivation,
// sched.go fans the jobs over a bounded worker pool, and aggregate.go
// folds completed trials into per-spec Results. This file holds the
// single-spec entry point.

// Run resolves the spec against its scenario's defaults, executes the
// warmup runs and measured trials, and aggregates. It is equivalent to a
// one-spec RunSpecs batch on a single worker.
func Run(spec Spec) (*Result, error) {
	sr := RunSpecs([]Spec{spec}, 1)[0]
	return sr.Result, sr.Err
}
