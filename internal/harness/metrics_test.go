package harness

import "testing"

func TestGateMetric(t *testing.T) {
	m := map[string]float64{}
	GateMetric(m, false, "off", 1)
	GateMetric(m, true, "on", 2)
	if _, ok := m["off"]; ok {
		t.Error("closed gate still set its key")
	}
	if m["on"] != 2 {
		t.Errorf("open gate: m[on] = %g, want 2", m["on"])
	}
}

func TestGateMetrics(t *testing.T) {
	m := map[string]float64{}
	// The closed gate must not even invoke fill — producers may be nil.
	GateMetrics(m, false, func(m map[string]float64) {
		t.Error("fill called with the gate closed")
	})
	GateMetrics(m, true, func(m map[string]float64) {
		m["a"] = 1
		m["b"] = 2
	})
	if len(m) != 2 || m["a"] != 1 || m["b"] != 2 {
		t.Errorf("open gate: m = %v, want a=1 b=2", m)
	}
}
