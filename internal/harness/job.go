package harness

import (
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"time"
)

// job is one independent, deterministic unit of work: a single warmup run
// or measured trial of one fully resolved spec. A job carries everything a
// worker needs, so the set of jobs from a sweep can execute in any order —
// serially or across a pool — and produce the same per-trial results.
type job struct {
	sc   Scenario
	spec Spec // fully resolved; Seed is this run's derived seed
	// specIdx is the index of the originating spec in the batch; results
	// and errors are reported in this order no matter when jobs finish.
	specIdx int
	// run is the warmup or trial index within the spec.
	run int
	// warmup jobs execute for wall-clock priming only; their trials are
	// discarded and they carry a seed stream disjoint from measured runs.
	warmup bool
}

// deriveSeed computes the RNG seed for one run of a resolved spec by
// hashing the spec's identity — scenario name, resolved params, the
// measurement knobs, and the base seed — together with the run's kind and
// index (FNV-1a). A trial's seed therefore depends only on what is being
// measured and which trial it is, never on where in a sweep the trial
// happens to execute, so any schedule (serial, shuffled, parallel)
// reproduces the same per-trial randomness.
func deriveSeed(spec Spec, warmup bool, run int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, spec.Scenario)
	keys := make([]string, 0, len(spec.Params))
	for k := range spec.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		io.WriteString(h, "\x00p\x00"+k+"\x00"+spec.Params[k])
	}
	for _, v := range []int64{
		int64(spec.Threads), int64(spec.Socket), int64(spec.Duration),
		int64(spec.Ops), int64(spec.Warmup), int64(spec.Seed),
	} {
		io.WriteString(h, "\x00"+strconv.FormatInt(v, 10))
	}
	if warmup {
		io.WriteString(h, "\x00warmup\x00")
	} else {
		io.WriteString(h, "\x00trial\x00")
	}
	io.WriteString(h, strconv.Itoa(run))
	return h.Sum64()
}

// buildJobs expands one resolved spec (specs[specIdx] after withDefaults)
// into its warmup and trial jobs.
func buildJobs(sc Scenario, spec Spec, specIdx int) []job {
	jobs := make([]job, 0, spec.WarmupRuns+spec.Trials)
	for i := 0; i < spec.WarmupRuns; i++ {
		jspec := spec
		jspec.Seed = deriveSeed(spec, true, i)
		jobs = append(jobs, job{sc: sc, spec: jspec, specIdx: specIdx, run: i, warmup: true})
	}
	for i := 0; i < spec.Trials; i++ {
		jspec := spec
		jspec.Seed = deriveSeed(spec, false, i)
		jobs = append(jobs, job{sc: sc, spec: jspec, specIdx: specIdx, run: i, warmup: false})
	}
	return jobs
}

// execute runs the job's single trial, stamps wall time, and derives the
// standard rates. It touches no state outside the job, which is what makes
// the scheduler free to run jobs concurrently.
func (j job) execute() (Trial, error) {
	start := time.Now()
	tr, err := j.sc.Run(j.spec)
	if err != nil {
		return Trial{}, err
	}
	tr.Wall = time.Since(start)
	if tr.GBs == 0 && tr.Bytes > 0 && tr.Sim > 0 {
		tr.GBs = float64(tr.Bytes) / tr.Sim.Seconds() / 1e9
	}
	if tr.OpsPerSec == 0 && tr.Ops > 0 && tr.Sim > 0 {
		tr.OpsPerSec = float64(tr.Ops) / tr.Sim.Seconds()
	}
	return tr, nil
}
