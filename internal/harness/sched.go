package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// SpecResult pairs one input spec's aggregated outcome with its error; a
// batch run never lets one failing spec discard its siblings' results.
type SpecResult struct {
	Result *Result
	Err    error
}

// errSkipped marks a job that was not executed because a sibling job of
// the same spec had already failed.
var errSkipped = errors.New("harness: skipped after sibling failure")

// RunSpecs executes every (spec, trial) of the batch as independent jobs
// over a bounded worker pool of the given width (<= 0 means GOMAXPROCS)
// and returns one SpecResult per input spec, in input order.
//
// Output is schedule-independent: each job's RNG seed is derived from the
// resolved spec and trial index (never from run order), every trial builds
// its own platform, and trials land in their Result by index — so
// RunSpecs(specs, 1) and RunSpecs(specs, N) produce identical results, and
// deterministic reports are byte-identical. Scenarios must honor the
// statelessness contract in DESIGN.md for this to hold.
func RunSpecs(specs []Spec, parallel int) []SpecResult {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	out := make([]SpecResult, len(specs))
	var jobs []job
	// perSpec[i] collects spec i's measured trials by trial index.
	perSpec := make([][]Trial, len(specs))
	resolved := make([]Spec, len(specs))
	for i, spec := range specs {
		sc, ok := Lookup(spec.Scenario)
		if !ok {
			out[i].Err = fmt.Errorf("harness: unknown scenario %q", spec.Scenario)
			continue
		}
		spec = spec.withDefaults(sc.Defaults)
		resolved[i] = spec
		perSpec[i] = make([]Trial, spec.Trials)
		jobs = append(jobs, buildJobs(sc, spec, i)...)
	}

	workers := parallel
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Stamp each resolved spec with the width left over for a nested
	// batch: the pool's workers split the requested cap, so a scenario
	// that fans out (figures/*) never pushes total concurrency past
	// `parallel` — a lone figure job gets the whole width, a full sweep
	// runs its figures' datapoints serially inside the outer pool.
	nested := 1
	if len(jobs) > 0 && parallel/len(jobs) > 1 {
		nested = parallel / len(jobs)
	}
	for i := range resolved {
		resolved[i].Parallel = nested
	}
	for i := range jobs {
		jobs[i].spec.Parallel = nested
	}

	// Each worker writes only its own job's slots. failed lets workers
	// skip the remaining jobs of a spec that already has an error rather
	// than burn wall-clock on a doomed spec. Results stay byte-identical
	// (a failed spec reports no result at any width); only the stderr
	// error message can differ when several trials of one spec would each
	// fail with distinct errors.
	trials := make([]Trial, len(jobs))
	errs := make([]error, len(jobs))
	failed := make([]atomic.Bool, len(specs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				if failed[jobs[idx].specIdx].Load() {
					errs[idx] = errSkipped
					continue
				}
				trials[idx], errs[idx] = jobs[idx].execute()
				if errs[idx] != nil {
					failed[jobs[idx].specIdx].Store(true)
				}
			}
		}()
	}
	for idx := range jobs {
		next <- idx
	}
	close(next)
	wg.Wait()

	// Reduce in job order: the first real error of a spec (always its
	// lowest-index failure) wins, skipped siblings are ignored.
	for idx, j := range jobs {
		i := j.specIdx
		if out[i].Err != nil || errs[idx] == errSkipped {
			continue
		}
		if errs[idx] != nil {
			kind := "trial"
			if j.warmup {
				kind = "warmup run"
			}
			out[i].Err = fmt.Errorf("%s: %s %d: %w", j.sc.Name, kind, j.run, errs[idx])
			continue
		}
		if !j.warmup {
			perSpec[i][j.run] = trials[idx]
		}
	}
	for i := range out {
		if out[i].Err != nil {
			continue
		}
		res := &Result{Name: resolved[i].Scenario, Spec: resolved[i], Trials: perSpec[i]}
		res.finish()
		out[i].Result = res
	}
	return out
}
