package harness

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"optanestudy/internal/sim"
	"optanestudy/internal/telemetry"
)

// CLIOptions configures the shared command-line front end the cmd/*
// binaries are built from.
type CLIOptions struct {
	// Command is the binary name used in usage output.
	Command string
	// Doc is a one-line description printed at the top of usage.
	Doc string
	// DefaultGlobs selects the scenarios run when no positional arguments
	// are given (e.g. ["lattester/*"]).
	DefaultGlobs []string
	// Stdout and Stderr default to os.Stdout / os.Stderr.
	Stdout io.Writer
	Stderr io.Writer
}

// paramFlag accumulates repeated -p key=value flags.
type paramFlag map[string]string

func (p paramFlag) String() string { return "" }

func (p paramFlag) Set(v string) error {
	key, val, ok := strings.Cut(v, "=")
	if !ok || key == "" {
		return fmt.Errorf("want key=value, got %q", v)
	}
	p[key] = val
	return nil
}

// CLIMain runs the shared scenario CLI: list/filter scenarios by glob, run
// them through the driver, and render the results in the chosen format. It
// returns the process exit code.
func CLIMain(argv []string, opts CLIOptions) int {
	stdout, stderr := opts.Stdout, opts.Stderr
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}

	fs := flag.NewFlagSet(opts.Command, flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "%s: %s\n\n", opts.Command, opts.Doc)
		fmt.Fprintf(stderr, "usage: %s [flags] [scenario|glob ...]\n", opts.Command)
		fmt.Fprintf(stderr, "default scenarios: %s\n\nflags:\n", strings.Join(opts.DefaultGlobs, " "))
		fs.PrintDefaults()
	}

	list := fs.Bool("list", false, "list matching scenarios and exit")
	format := fs.String("format", "table", "output format: table, csv or json")
	parallel := fs.Int("parallel", 0, "max concurrent (scenario, trial) jobs (0 = GOMAXPROCS); output is identical at any width")
	trials := fs.Int("trials", 0, "measured trials per scenario (0 = scenario default)")
	warmupRuns := fs.Int("warmup-runs", 0, "discarded whole runs before measuring")
	threads := fs.Int("threads", 0, "worker threads (0 = scenario default)")
	socket := fs.Int("socket", 0, "socket the workers run on (0 = scenario default)")
	durationUS := fs.Int("duration", 0, "measured window in simulated microseconds (0 = default)")
	warmupUS := fs.Int("warmup", 0, "per-trial warmup in simulated microseconds (0 = default)")
	ops := fs.Int("ops", 0, "operation budget for count-style scenarios (0 = default)")
	seed := fs.Uint64("seed", 0, "base RNG seed (0 = scenario default); trial seeds derive from it and the resolved spec")
	det := fs.Bool("deterministic", false, "suppress wall-clock fields so repeated and parallel runs are byte-identical")
	batch := fs.Int("batch", 0, "group-commit batch depth for serving scenarios (0 = scenario default; shorthand for -p batch=N)")
	lingerNS := fs.Float64("linger", -1, "group-commit linger bound in ns for serving scenarios (negative = scenario default; shorthand for -p linger=NS)")
	cacheBytes := fs.Int64("cache", 0, "DRAM hot-tier capacity in bytes for serving scenarios (0 = scenario default; shorthand for -p cache=N)")
	quotaBytes := fs.Int64("quota", 0, "per-tenant hot-tier byte quota (0 = scenario default; shorthand for -p quota=N)")
	faultKind := fs.String("fault", "", "fault to inject in cluster failover scenarios: crash, stall, socket or churn (empty = scenario default; shorthand for -p fault=K)")
	detectNS := fs.Float64("detect", -1, "crash-detection delay in ns before promotion starts (negative = scenario default; shorthand for -p detect=NS)")
	replicate := fs.Bool("replicate", false, "pair every shard with a standby replica on the next socket (shorthand for -p replicate=1)")
	devstat := fs.Bool("devstat", false, "emit per-DIMM dev_* device-health metrics over the measured window (shorthand for -p devstat=1)")
	tracePath := fs.String("trace", "", "write per-op phase spans and timeline samples as an optanestudy-trace/v1 JSONL stream to this file (tracing is off when empty; results are unchanged either way)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	params := paramFlag{}
	fs.Var(params, "p", "scenario param as key=value (repeatable)")

	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	// The pprof flags profile the host-side runner (scenario execution,
	// the scheduler, reporting). The simulation itself is wall-clock-free,
	// so profiling never changes results.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects dominate
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
			}
		}()
	}
	// The batch flags are param shorthands: they fold into the param map
	// (and so into derived trial seeds) exactly as their -p spellings would.
	if *batch > 0 {
		params["batch"] = strconv.Itoa(*batch)
	}
	if *lingerNS >= 0 {
		params["linger"] = strconv.FormatFloat(*lingerNS, 'g', -1, 64)
	}
	if *cacheBytes > 0 {
		params["cache"] = strconv.FormatInt(*cacheBytes, 10)
	}
	if *quotaBytes > 0 {
		params["quota"] = strconv.FormatInt(*quotaBytes, 10)
	}
	if *faultKind != "" {
		params["fault"] = *faultKind
	}
	if *detectNS >= 0 {
		params["detect"] = strconv.FormatFloat(*detectNS, 'g', -1, 64)
	}
	if *replicate {
		params["replicate"] = "1"
	}
	if *devstat {
		params["devstat"] = "1"
	}

	globs := fs.Args()
	if len(globs) == 0 {
		globs = opts.DefaultGlobs
	}
	scs, err := Match(globs...)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
		return 2
	}

	if *list {
		for _, sc := range scs {
			fmt.Fprintf(stdout, "%-28s %s\n", sc.Name, sc.Doc)
		}
		return 0
	}

	rep, err := NewReporter(*format)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
		return 2
	}
	switch r := rep.(type) {
	case JSONReporter:
		r.Deterministic = *det
		rep = r
	case CSVReporter:
		r.Deterministic = *det
		rep = r
	case TableReporter:
		r.Deterministic = *det
		rep = r
	}

	// Run every matched scenario's trials as one job batch over the worker
	// pool; results and errors come back in registry order, so output is
	// identical at any -parallel width. A failure in one scenario (e.g. a
	// -p param a sibling scenario does not understand) must not discard
	// the results of the others.
	specs := make([]Spec, len(scs))
	for i, sc := range scs {
		spec := Spec{
			Scenario:   sc.Name,
			Threads:    *threads,
			Socket:     *socket,
			Duration:   sim.Time(*durationUS) * sim.Microsecond,
			Warmup:     sim.Time(*warmupUS) * sim.Microsecond,
			Ops:        *ops,
			Trials:     *trials,
			WarmupRuns: *warmupRuns,
			Seed:       *seed,
			Trace:      *tracePath != "",
		}
		if len(params) > 0 {
			spec.Params = make(map[string]string, len(params))
			for k, v := range params {
				spec.Params[k] = v
			}
		}
		specs[i] = spec
	}
	var results []*Result
	failed := 0
	for _, sr := range RunSpecs(specs, *parallel) {
		if sr.Err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", opts.Command, sr.Err)
			failed++
			continue
		}
		results = append(results, sr.Result)
	}

	if len(results) > 0 {
		if err := rep.Report(stdout, results); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
			return 1
		}
	}
	// The trace sink: one JSONL stream over every traced trial, emitted
	// in result order (input order, regardless of schedule), so the file
	// is byte-identical at any -parallel width.
	if *tracePath != "" {
		var entries []telemetry.TraceEntry
		for _, r := range results {
			for ti := range r.Trials {
				if tr := r.Trials[ti].Trace; tr != nil {
					entries = append(entries, telemetry.TraceEntry{Scenario: r.Name, Trial: ti, Trace: tr})
				}
			}
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
			return 1
		}
		if err := telemetry.WriteJSONL(f, entries); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
			f.Close()
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", opts.Command, err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
