package harness

import (
	"sort"
	"time"

	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/telemetry"
)

// Trial is the raw outcome of one scenario execution. Scenarios fill the
// fields they measure; the driver derives GBs/OpsPerSec (when computable
// from Bytes/Ops and Sim) and stamps Wall.
type Trial struct {
	// Bytes moved inside the measured window.
	Bytes int64
	// Ops completed inside the measured window.
	Ops int64
	// Sim is the measured simulated window.
	Sim sim.Time
	// Wall is host wall-clock time for the whole trial (set by the driver).
	Wall time.Duration
	// GBs is throughput in decimal GB/s; left zero, the driver derives it
	// as Bytes over Sim. Scenarios with bespoke rate definitions set it.
	GBs float64
	// OpsPerSec is the op rate; derived from Ops over Sim when zero.
	OpsPerSec float64
	// Metrics carries scenario-specific extras (e.g. "ewr", figure
	// datapoints) into reports.
	Metrics map[string]float64
	// Latency is the per-op latency distribution (ns) when recorded.
	Latency *stats.Histogram
	// Text is an optional human-readable artifact (e.g. a figure's TSV
	// table); the table reporter prints it, machine formats ignore it.
	Text string
	// Trace is the trial's phase-span and timeline recording, present
	// only when the spec asked for tracing (Spec.Trace) and the scenario
	// supports it. The standard reporters ignore it; the CLI's -trace
	// sink renders it as an optanestudy-trace/v1 JSONL stream.
	Trace *telemetry.Trace
}

// Agg summarizes one quantity across trials.
type Agg struct {
	Mean, Min, Max, Std float64
}

func aggregate(vals []float64) Agg {
	var s stats.Summary
	for _, v := range vals {
		s.Add(v)
	}
	if s.N() == 0 {
		return Agg{}
	}
	return Agg{Mean: s.Mean(), Min: s.Min(), Max: s.Max(), Std: s.Std()}
}

// Result is the driver's aggregated outcome for one Spec.
type Result struct {
	// Name is the scenario name.
	Name string
	// Spec is the fully resolved spec the trials ran with.
	Spec Spec
	// Trials are the individual measured runs, in trial-index order
	// regardless of the schedule that executed them.
	Trials []Trial
	// GBs and OpsPerSec aggregate per-trial rates.
	GBs       Agg
	OpsPerSec Agg
	// P50NS and P99NS are latency percentiles over all trials' samples
	// (zero when no trial recorded latency).
	P50NS float64
	P99NS float64
	// SimTotal and WallTotal sum the trials' windows.
	SimTotal  sim.Time
	WallTotal time.Duration
	// Metrics aggregates each scenario metric across trials.
	Metrics map[string]Agg
}

// finish derives the cross-trial aggregates once every trial is in place.
func (r *Result) finish() {
	var gbs, ops []float64
	merged := stats.NewHistogram()
	hasLat := false
	for _, tr := range r.Trials {
		gbs = append(gbs, tr.GBs)
		ops = append(ops, tr.OpsPerSec)
		r.SimTotal += tr.Sim
		r.WallTotal += tr.Wall
		if tr.Latency != nil && tr.Latency.Count() > 0 {
			merged.Merge(tr.Latency)
			hasLat = true
		}
	}
	r.GBs = aggregate(gbs)
	r.OpsPerSec = aggregate(ops)
	if hasLat {
		ps := merged.Quantiles([]float64{0.5, 0.99})
		r.P50NS, r.P99NS = ps[0], ps[1]
	}
	keys := map[string]bool{}
	for _, tr := range r.Trials {
		for k := range tr.Metrics {
			keys[k] = true
		}
	}
	if len(keys) > 0 {
		r.Metrics = make(map[string]Agg, len(keys))
		names := make([]string, 0, len(keys))
		for k := range keys {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			var vals []float64
			for _, tr := range r.Trials {
				if v, ok := tr.Metrics[k]; ok {
					vals = append(vals, v)
				}
			}
			r.Metrics[k] = aggregate(vals)
		}
	}
}
