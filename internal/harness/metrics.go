package harness

// GateMetric sets m[key] = v only when gate is true. Conditional metrics
// keep baseline scenario output byte-stable: a key appears only when its
// subsystem was actually exercised (e.g. per-tenant shed counts once the
// run sheds), and the gate must depend only on the spec and the measured
// result, never on the schedule.
func GateMetric(m map[string]float64, gate bool, key string, v float64) {
	if gate {
		m[key] = v
	}
}

// GateMetrics invokes fill(m) only when gate is true — the multi-key
// companion of GateMetric for counter blocks (pmem_*, cache_*) whose
// producers may be nil when the gate is false, which is why fill is a
// closure rather than a pre-built map.
func GateMetrics(m map[string]float64, gate bool, fill func(m map[string]float64)) {
	if gate {
		fill(m)
	}
}
