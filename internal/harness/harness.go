// Package harness is the unified benchmark runner behind every measurement
// in the repository. Packages self-register runnable scenarios
// (harness.Register), a driver expands every Spec into independent
// (spec, trial) jobs — each against a freshly constructed simulated
// platform, with its RNG seed derived from the resolved spec and trial
// index — executes them across a bounded worker pool (RunSpecs), and
// pluggable reporters render the aggregated results as a human table, CSV,
// or a stable JSON schema suitable for machine-readable perf tracking.
// Because jobs are stateless and seeds are schedule-independent, output is
// byte-identical at any parallelism.
//
// The five cmd/* binaries are thin CLIs over the registry (CLIMain), the
// figure runners in internal/figures and the LATTester sweep produce their
// datapoints through harness trials, and bench_test.go drives the same
// specs — one run/measure/report spine for the whole study, in the spirit
// of the paper's LATTester toolkit. See DESIGN.md for the architecture and
// the JSON result schema.
package harness
