// Package harness is the unified benchmark runner behind every measurement
// in the repository. Packages self-register runnable scenarios
// (harness.Register), a driver executes warmup + N trials of a Spec against
// a freshly constructed simulated platform per trial, and pluggable
// reporters render the aggregated results as a human table, CSV, or a
// stable JSON schema suitable for machine-readable perf tracking.
//
// The five cmd/* binaries are thin CLIs over the registry (CLIMain), the
// figure runners in internal/figures and the LATTester sweep produce their
// datapoints through harness trials, and bench_test.go drives the same
// specs — one run/measure/report spine for the whole study, in the spirit
// of the paper's LATTester toolkit. See DESIGN.md for the architecture and
// the JSON result schema.
package harness
