package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"text/tabwriter"

	"optanestudy/internal/sim"
)

// Reporter renders a batch of results.
type Reporter interface {
	Report(w io.Writer, results []*Result) error
}

// NewReporter returns the reporter for a format name: "table", "csv" or
// "json".
func NewReporter(format string) (Reporter, error) {
	switch format {
	case "table", "":
		return TableReporter{}, nil
	case "csv":
		return CSVReporter{}, nil
	case "json":
		return JSONReporter{}, nil
	default:
		return nil, fmt.Errorf("harness: unknown format %q (want table, csv or json)", format)
	}
}

// TableReporter renders a human-readable summary table, followed by any
// scenario metrics and text artifacts. With Deterministic set the wall
// column is suppressed, so serial and parallel runs of the same specs
// print byte-identical tables.
type TableReporter struct {
	Deterministic bool
}

// Report implements Reporter.
func (t TableReporter) Report(w io.Writer, results []*Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\tthreads\ttrials\tGB/s\tops/s\tp50(ns)\tp99(ns)\tsim\twall")
	for _, r := range results {
		wall := r.WallTotal.Round(1e6).String()
		if t.Deterministic {
			wall = "-"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.0f\t%.0f\t%.0f\t%v\t%s\n",
			r.Name, r.Spec.Threads, len(r.Trials), r.GBs.Mean, r.OpsPerSec.Mean,
			r.P50NS, r.P99NS, r.SimTotal, wall)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, r := range results {
		if len(r.Metrics) > 0 {
			names := make([]string, 0, len(r.Metrics))
			for k := range r.Metrics {
				names = append(names, k)
			}
			sort.Strings(names)
			fmt.Fprintf(w, "# %s metrics:", r.Name)
			for _, k := range names {
				fmt.Fprintf(w, " %s=%.4g", k, r.Metrics[k].Mean)
			}
			fmt.Fprintln(w)
		}
		for _, tr := range r.Trials {
			if tr.Text != "" {
				fmt.Fprintln(w, tr.Text)
			}
		}
	}
	return nil
}

// CSVReporter emits one row per result with the headline aggregates. With
// Deterministic set the wall_ns column is zeroed.
type CSVReporter struct {
	Deterministic bool
}

// Report implements Reporter.
func (c CSVReporter) Report(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"scenario", "threads", "socket", "trials", "gbs_mean", "gbs_std",
		"ops_per_sec_mean", "p50_ns", "p99_ns", "sim_ns", "wall_ns",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range results {
		wallNS := r.WallTotal.Nanoseconds()
		if c.Deterministic {
			wallNS = 0
		}
		rec := []string{
			r.Name,
			strconv.Itoa(r.Spec.Threads),
			strconv.Itoa(r.Spec.Socket),
			strconv.Itoa(len(r.Trials)),
			f(r.GBs.Mean), f(r.GBs.Std), f(r.OpsPerSec.Mean),
			f(r.P50NS), f(r.P99NS),
			strconv.FormatInt(int64(r.SimTotal/sim.Nanosecond), 10),
			strconv.FormatInt(wallNS, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SchemaVersion identifies the JSON result schema emitted by JSONReporter.
const SchemaVersion = "optanestudy-bench/v1"

// JSONReporter emits the stable machine-readable schema (see DESIGN.md).
// With Deterministic set, host wall-clock fields are zeroed so that two
// runs of the same deterministic spec produce byte-identical output.
type JSONReporter struct {
	Deterministic bool
}

type jsonEnvelope struct {
	Schema  string        `json:"schema"`
	Results []*jsonResult `json:"results"`
}

type jsonResult struct {
	Name          string             `json:"name"`
	Config        jsonConfig         `json:"config"`
	Trials        []jsonTrial        `json:"trials"`
	ThroughputGBs float64            `json:"throughput_gbs"`
	GBsStd        float64            `json:"throughput_gbs_std"`
	OpsPerSec     float64            `json:"ops_per_sec"`
	P50NS         float64            `json:"p50_ns"`
	P99NS         float64            `json:"p99_ns"`
	SimNS         int64              `json:"sim_ns"`
	WallNS        int64              `json:"wall_ns"`
	Metrics       map[string]float64 `json:"metrics,omitempty"`
}

type jsonConfig struct {
	Params     map[string]string `json:"params,omitempty"`
	Threads    int               `json:"threads"`
	Socket     int               `json:"socket"`
	DurationNS int64             `json:"duration_ns"`
	WarmupNS   int64             `json:"warmup_ns"`
	Ops        int               `json:"ops"`
	Trials     int               `json:"trials"`
	Seed       uint64            `json:"seed"`
}

type jsonTrial struct {
	Bytes     int64              `json:"bytes"`
	Ops       int64              `json:"ops"`
	SimNS     int64              `json:"sim_ns"`
	WallNS    int64              `json:"wall_ns"`
	GBs       float64            `json:"gbs"`
	OpsPerSec float64            `json:"ops_per_sec"`
	P50NS     float64            `json:"p50_ns,omitempty"`
	P99NS     float64            `json:"p99_ns,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// Report implements Reporter.
func (j JSONReporter) Report(w io.Writer, results []*Result) error {
	env := jsonEnvelope{Schema: SchemaVersion, Results: make([]*jsonResult, 0, len(results))}
	for _, r := range results {
		jr := &jsonResult{
			Name: r.Name,
			Config: jsonConfig{
				Params:     r.Spec.Params,
				Threads:    r.Spec.Threads,
				Socket:     r.Spec.Socket,
				DurationNS: int64(r.Spec.Duration / sim.Nanosecond),
				WarmupNS:   int64(r.Spec.Warmup / sim.Nanosecond),
				Ops:        r.Spec.Ops,
				Trials:     r.Spec.Trials,
				Seed:       r.Spec.Seed,
			},
			ThroughputGBs: r.GBs.Mean,
			GBsStd:        r.GBs.Std,
			OpsPerSec:     r.OpsPerSec.Mean,
			P50NS:         r.P50NS,
			P99NS:         r.P99NS,
			SimNS:         int64(r.SimTotal / sim.Nanosecond),
			WallNS:        r.WallTotal.Nanoseconds(),
		}
		if len(r.Metrics) > 0 {
			jr.Metrics = make(map[string]float64, len(r.Metrics))
			for k, agg := range r.Metrics {
				jr.Metrics[k] = agg.Mean
			}
		}
		for _, tr := range r.Trials {
			jt := jsonTrial{
				Bytes:     tr.Bytes,
				Ops:       tr.Ops,
				SimNS:     int64(tr.Sim / sim.Nanosecond),
				WallNS:    tr.Wall.Nanoseconds(),
				GBs:       tr.GBs,
				OpsPerSec: tr.OpsPerSec,
				Metrics:   tr.Metrics,
			}
			if tr.Latency != nil && tr.Latency.Count() > 0 {
				jt.P50NS = tr.Latency.Percentile(0.5)
				jt.P99NS = tr.Latency.Percentile(0.99)
			}
			if j.Deterministic {
				jt.WallNS = 0
			}
			jr.Trials = append(jr.Trials, jt)
		}
		if j.Deterministic {
			jr.WallNS = 0
		}
		env.Results = append(env.Results, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}
