package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeTrial is a deterministic scenario result used across the tests.
func fakeTrial(spec Spec) (Trial, error) {
	hist := stats.NewHistogram()
	for _, v := range []float64{100, 200, 300, 400} {
		hist.Add(v)
	}
	return Trial{
		Bytes:   1 << 20,
		Ops:     4096,
		Sim:     100 * sim.Microsecond,
		Metrics: map[string]float64{"ewr": 0.5, "seed": float64(spec.Seed)},
		Latency: hist,
	}, nil
}

func init() {
	Register(Scenario{
		Name: "test/golden",
		Doc:  "fixed-output scenario for harness tests",
		Defaults: Defaults{
			Threads: 2, Duration: 200 * sim.Microsecond, Seed: 7,
			Params: map[string]string{"knob": "default"},
		},
		Run: fakeTrial,
	})
}

func TestRegistry(t *testing.T) {
	if _, ok := Lookup("test/golden"); !ok {
		t.Fatal("registered scenario not found")
	}
	if _, ok := Lookup("test/nope"); ok {
		t.Fatal("lookup invented a scenario")
	}
	names := Names()
	found := false
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	for _, n := range names {
		if n == "test/golden" {
			found = true
		}
	}
	if !found {
		t.Error("Names misses test/golden")
	}

	scs, err := Match("test/*")
	if err != nil || len(scs) == 0 {
		t.Fatalf("Match(test/*) = %v, %v", scs, err)
	}
	if _, err := Match("nomatch/*"); err == nil {
		t.Error("Match must fail on a pattern matching nothing")
	}
	if _, err := Match("[bad"); err == nil {
		t.Error("Match must fail on a malformed pattern")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, sc Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(sc)
	}
	mustPanic("empty name", Scenario{Run: fakeTrial})
	mustPanic("nil run", Scenario{Name: "test/nil-run"})
	mustPanic("duplicate", Scenario{Name: "test/golden", Run: fakeTrial})
}

func TestDriverResolvesDefaultsAndAggregates(t *testing.T) {
	res, err := Run(Spec{Scenario: "test/golden", Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Threads != 2 || res.Spec.Duration != 200*sim.Microsecond || res.Spec.Seed != 7 {
		t.Errorf("defaults not applied: %+v", res.Spec)
	}
	if res.Spec.Params["knob"] != "default" {
		t.Errorf("default params not merged: %v", res.Spec.Params)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %d, want 3", len(res.Trials))
	}
	// Seeds derive from the resolved spec identity and trial index: every
	// trial gets a distinct seed, and rerunning the same spec reproduces
	// the same seeds exactly.
	if res.Trials[0].Metrics["seed"] == res.Trials[1].Metrics["seed"] {
		t.Error("trials 0 and 1 share a seed")
	}
	again, err := Run(Spec{Scenario: "test/golden", Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Trials {
		if res.Trials[i].Metrics["seed"] != again.Trials[i].Metrics["seed"] {
			t.Errorf("trial %d seed not reproducible across runs", i)
		}
	}
	// A different resolved identity (here: params) yields a different
	// seed stream, so sweep points never share randomness by accident.
	other, err := Run(Spec{Scenario: "test/golden", Params: map[string]string{"knob": "turned"}})
	if err != nil {
		t.Fatal(err)
	}
	if other.Trials[0].Metrics["seed"] == res.Trials[0].Metrics["seed"] {
		t.Error("different params produced the same trial seed")
	}
	// GBs derived from Bytes/Sim: 1 MiB over 100 us.
	wantGBs := float64(1<<20) / (100e-6) / 1e9
	if got := res.Trials[0].GBs; got != wantGBs {
		t.Errorf("derived GBs = %v, want %v", got, wantGBs)
	}
	if res.GBs.Mean != wantGBs || res.GBs.Std != 0 {
		t.Errorf("GBs agg = %+v", res.GBs)
	}
	if res.P50NS == 0 || res.P99NS < res.P50NS {
		t.Errorf("latency percentiles p50=%v p99=%v", res.P50NS, res.P99NS)
	}
	if res.SimTotal != 300*sim.Microsecond {
		t.Errorf("SimTotal = %v", res.SimTotal)
	}
}

func TestDriverExplicitOverridesWin(t *testing.T) {
	res, err := Run(Spec{
		Scenario: "test/golden",
		Threads:  9,
		Seed:     100,
		Params:   map[string]string{"knob": "turned"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Threads != 9 || res.Spec.Seed != 100 {
		t.Errorf("overrides lost: %+v", res.Spec)
	}
	if res.Spec.Params["knob"] != "turned" {
		t.Errorf("param override lost: %v", res.Spec.Params)
	}
	if res.Spec.Trials != 1 {
		t.Errorf("trials default = %d, want 1", res.Spec.Trials)
	}
}

func TestDriverUnknownScenario(t *testing.T) {
	if _, err := Run(Spec{Scenario: "test/absent"}); err == nil {
		t.Fatal("Run must fail on an unknown scenario")
	}
}

func TestParamReader(t *testing.T) {
	r := NewParamReader(map[string]string{
		"s": "hello", "i": "42", "b": "true", "f": "2.5",
	})
	if r.Str("s", "x") != "hello" || r.Int("i", 0) != 42 ||
		!r.Bool("b", false) || r.Float("f", 0) != 2.5 {
		t.Error("typed getters broken")
	}
	if r.Int("missing", 7) != 7 {
		t.Error("default not returned for absent key")
	}
	if err := r.Err(); err != nil {
		t.Errorf("unexpected err: %v", err)
	}

	bad := NewParamReader(map[string]string{"i": "notanumber"})
	bad.Int("i", 0)
	if bad.Err() == nil {
		t.Error("parse failure not reported")
	}

	unread := NewParamReader(map[string]string{"typo": "1"})
	if err := unread.Err(); err == nil || !strings.Contains(err.Error(), "typo") {
		t.Errorf("unread params not reported: %v", err)
	}
}

func TestJSONGolden(t *testing.T) {
	res, err := Run(Spec{Scenario: "test/golden", Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (JSONReporter{Deterministic: true}).Report(&buf, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON schema drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestReporters(t *testing.T) {
	res, err := Run(Spec{Scenario: "test/golden"})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"table", "csv", "json"} {
		rep, err := NewReporter(format)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Report(&buf, []*Result{res}); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !strings.Contains(buf.String(), "test/golden") {
			t.Errorf("%s output misses scenario name:\n%s", format, buf.String())
		}
	}
	if _, err := NewReporter("xml"); err == nil {
		t.Error("NewReporter must reject unknown formats")
	}
}
