package harness_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"optanestudy/internal/harness"
	_ "optanestudy/internal/lattester"
	_ "optanestudy/internal/lsmkv"
	_ "optanestudy/internal/pmemkv"
	"optanestudy/internal/sim"
)

// TestDeterministicJSON asserts the contract BENCH_*.json tracking relies
// on: two harness runs of the same Spec (same seed) against the simulated
// platform produce byte-identical deterministic JSON.
func TestDeterministicJSON(t *testing.T) {
	render := func() []byte {
		res, err := harness.Run(harness.Spec{
			Scenario: "lattester/seq-ntstore",
			Threads:  2,
			Duration: 30 * sim.Microsecond,
			Trials:   2,
			Seed:     42,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := (harness.JSONReporter{Deterministic: true}).Report(&buf, []*harness.Result{res}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same spec, different JSON:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !json.Valid(a) {
		t.Fatal("output is not valid JSON")
	}
}

// TestParallelByteIdentical is the parallel-pipeline contract: the full
// deterministic JSON for a mixed batch of scenarios — microbenchmark
// kernels, the LSM SET bench, and PMemKV, with multiple trials each — must
// be byte-identical between a serial run and an 8-wide worker pool.
func TestParallelByteIdentical(t *testing.T) {
	scenarios := []string{
		"lattester/seq-ntstore",
		"lattester/rand-read",
		"lsmkv/set-walflex",
		"pmemkv/overwrite",
	}
	render := func(parallel string) []byte {
		var out, errOut bytes.Buffer
		args := append([]string{
			"-format=json", "-deterministic", "-duration=20", "-ops=200",
			"-trials=2", "-parallel=" + parallel,
		}, scenarios...)
		code := harness.CLIMain(args, harness.CLIOptions{
			Command: "test", Stdout: &out, Stderr: &errOut,
		})
		if code != 0 {
			t.Fatalf("-parallel=%s: exit %d, stderr: %s", parallel, code, errOut.String())
		}
		return out.Bytes()
	}
	serial, parallel := render("1"), render("8")
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel run diverged from serial:\n--- -parallel=1 ---\n%s\n--- -parallel=8 ---\n%s",
			serial, parallel)
	}
	if !json.Valid(serial) {
		t.Fatal("output is not valid JSON")
	}
}

// TestRunSpecsMatchesRun checks the batch scheduler returns, spec by spec,
// exactly what the single-spec driver produces.
func TestRunSpecsMatchesRun(t *testing.T) {
	specs := []harness.Spec{
		{Scenario: "lattester/seq-ntstore", Threads: 2, Duration: 20 * sim.Microsecond, Trials: 2},
		{Scenario: "lattester/rand-read", Duration: 20 * sim.Microsecond},
	}
	batch := harness.RunSpecs(specs, 4)
	for i, spec := range specs {
		want, err := harness.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Err != nil {
			t.Fatalf("spec %d: %v", i, batch[i].Err)
		}
		got := batch[i].Result
		if got.Name != want.Name || len(got.Trials) != len(want.Trials) {
			t.Fatalf("spec %d: result shape differs: %+v vs %+v", i, got, want)
		}
		for j := range got.Trials {
			if got.Trials[j].Bytes != want.Trials[j].Bytes || got.Trials[j].Sim != want.Trials[j].Sim {
				t.Errorf("spec %d trial %d differs: %+v vs %+v", i, j, got.Trials[j], want.Trials[j])
			}
		}
	}
}

// TestRunSpecsIsolatesFailures checks one failing spec neither aborts the
// batch nor perturbs its siblings' positions.
func TestRunSpecsIsolatesFailures(t *testing.T) {
	specs := []harness.Spec{
		{Scenario: "lattester/seq-read", Duration: 10 * sim.Microsecond},
		{Scenario: "no/such-scenario"},
		{Scenario: "lattester/rand-read", Duration: 10 * sim.Microsecond,
			Params: map[string]string{"bogus": "1"}},
		{Scenario: "lattester/seq-ntstore", Duration: 10 * sim.Microsecond},
	}
	out := harness.RunSpecs(specs, 8)
	if out[0].Err != nil || out[0].Result == nil || out[0].Result.Name != "lattester/seq-read" {
		t.Errorf("spec 0: %+v", out[0])
	}
	if out[1].Err == nil || !strings.Contains(out[1].Err.Error(), "no/such-scenario") {
		t.Errorf("spec 1 error = %v", out[1].Err)
	}
	if out[2].Err == nil || !strings.Contains(out[2].Err.Error(), "bogus") {
		t.Errorf("spec 2 error = %v", out[2].Err)
	}
	if out[3].Err != nil || out[3].Result == nil || out[3].Result.Name != "lattester/seq-ntstore" {
		t.Errorf("spec 3: %+v", out[3])
	}
}

// TestCLIJSONRoundTrip drives the shared CLI end to end: run a scenario,
// emit JSON, parse it back, and check the schema headline fields.
func TestCLIJSONRoundTrip(t *testing.T) {
	var out, errOut bytes.Buffer
	code := harness.CLIMain(
		[]string{"-format=json", "-duration=20", "-deterministic", "lattester/seq-ntstore"},
		harness.CLIOptions{Command: "test", DefaultGlobs: []string{"lattester/*"}, Stdout: &out, Stderr: &errOut},
	)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var env struct {
		Schema  string `json:"schema"`
		Results []struct {
			Name          string  `json:"name"`
			ThroughputGBs float64 `json:"throughput_gbs"`
			SimNS         int64   `json:"sim_ns"`
			WallNS        int64   `json:"wall_ns"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatalf("CLI JSON does not parse: %v\n%s", err, out.String())
	}
	if env.Schema != harness.SchemaVersion {
		t.Errorf("schema = %q, want %q", env.Schema, harness.SchemaVersion)
	}
	if len(env.Results) != 1 || env.Results[0].Name != "lattester/seq-ntstore" {
		t.Fatalf("results = %+v", env.Results)
	}
	if env.Results[0].ThroughputGBs <= 0 || env.Results[0].SimNS <= 0 {
		t.Errorf("degenerate result: %+v", env.Results[0])
	}
	if env.Results[0].WallNS != 0 {
		t.Error("-deterministic must zero wall_ns")
	}
}

// TestCLIList checks -list output and glob filtering.
func TestCLIList(t *testing.T) {
	var out bytes.Buffer
	code := harness.CLIMain(
		[]string{"-list", "lattester/seq-*"},
		harness.CLIOptions{Command: "test", Stdout: &out},
	)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	listing := out.String()
	if !strings.Contains(listing, "lattester/seq-read") || strings.Contains(listing, "lattester/rand-read") {
		t.Errorf("glob filtering broken:\n%s", listing)
	}
}

// TestCLIBadScenario checks the error path exit code.
func TestCLIBadScenario(t *testing.T) {
	var out, errOut bytes.Buffer
	code := harness.CLIMain(
		[]string{"no/such-scenario"},
		harness.CLIOptions{Command: "test", Stdout: &out, Stderr: &errOut},
	)
	if code == 0 {
		t.Fatal("unknown scenario must not exit 0")
	}
	if !strings.Contains(errOut.String(), "no/such-scenario") {
		t.Errorf("stderr misses the offending name: %s", errOut.String())
	}
}

// TestUnknownParamRejected checks that a typo'd -p key surfaces as an
// error instead of being silently ignored.
func TestUnknownParamRejected(t *testing.T) {
	_, err := harness.Run(harness.Spec{
		Scenario: "lattester/seq-read",
		Duration: 10 * sim.Microsecond,
		Params:   map[string]string{"patern": "rand"},
	})
	if err == nil || !strings.Contains(err.Error(), "patern") {
		t.Errorf("typo'd param not rejected: %v", err)
	}
}
