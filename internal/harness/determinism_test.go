package harness_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"optanestudy/internal/harness"
	_ "optanestudy/internal/lattester"
	"optanestudy/internal/sim"
)

// TestDeterministicJSON asserts the contract BENCH_*.json tracking relies
// on: two harness runs of the same Spec (same seed) against the simulated
// platform produce byte-identical deterministic JSON.
func TestDeterministicJSON(t *testing.T) {
	render := func() []byte {
		res, err := harness.Run(harness.Spec{
			Scenario: "lattester/seq-ntstore",
			Threads:  2,
			Duration: 30 * sim.Microsecond,
			Trials:   2,
			Seed:     42,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := (harness.JSONReporter{Deterministic: true}).Report(&buf, []*harness.Result{res}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same spec, different JSON:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if !json.Valid(a) {
		t.Fatal("output is not valid JSON")
	}
}

// TestCLIJSONRoundTrip drives the shared CLI end to end: run a scenario,
// emit JSON, parse it back, and check the schema headline fields.
func TestCLIJSONRoundTrip(t *testing.T) {
	var out, errOut bytes.Buffer
	code := harness.CLIMain(
		[]string{"-format=json", "-duration=20", "-deterministic", "lattester/seq-ntstore"},
		harness.CLIOptions{Command: "test", DefaultGlobs: []string{"lattester/*"}, Stdout: &out, Stderr: &errOut},
	)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var env struct {
		Schema  string `json:"schema"`
		Results []struct {
			Name          string  `json:"name"`
			ThroughputGBs float64 `json:"throughput_gbs"`
			SimNS         int64   `json:"sim_ns"`
			WallNS        int64   `json:"wall_ns"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatalf("CLI JSON does not parse: %v\n%s", err, out.String())
	}
	if env.Schema != harness.SchemaVersion {
		t.Errorf("schema = %q, want %q", env.Schema, harness.SchemaVersion)
	}
	if len(env.Results) != 1 || env.Results[0].Name != "lattester/seq-ntstore" {
		t.Fatalf("results = %+v", env.Results)
	}
	if env.Results[0].ThroughputGBs <= 0 || env.Results[0].SimNS <= 0 {
		t.Errorf("degenerate result: %+v", env.Results[0])
	}
	if env.Results[0].WallNS != 0 {
		t.Error("-deterministic must zero wall_ns")
	}
}

// TestCLIList checks -list output and glob filtering.
func TestCLIList(t *testing.T) {
	var out bytes.Buffer
	code := harness.CLIMain(
		[]string{"-list", "lattester/seq-*"},
		harness.CLIOptions{Command: "test", Stdout: &out},
	)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	listing := out.String()
	if !strings.Contains(listing, "lattester/seq-read") || strings.Contains(listing, "lattester/rand-read") {
		t.Errorf("glob filtering broken:\n%s", listing)
	}
}

// TestCLIBadScenario checks the error path exit code.
func TestCLIBadScenario(t *testing.T) {
	var out, errOut bytes.Buffer
	code := harness.CLIMain(
		[]string{"no/such-scenario"},
		harness.CLIOptions{Command: "test", Stdout: &out, Stderr: &errOut},
	)
	if code == 0 {
		t.Fatal("unknown scenario must not exit 0")
	}
	if !strings.Contains(errOut.String(), "no/such-scenario") {
		t.Errorf("stderr misses the offending name: %s", errOut.String())
	}
}

// TestUnknownParamRejected checks that a typo'd -p key surfaces as an
// error instead of being silently ignored.
func TestUnknownParamRejected(t *testing.T) {
	_, err := harness.Run(harness.Spec{
		Scenario: "lattester/seq-read",
		Duration: 10 * sim.Microsecond,
		Params:   map[string]string{"patern": "rand"},
	})
	if err == nil || !strings.Contains(err.Error(), "patern") {
		t.Errorf("typo'd param not rejected: %v", err)
	}
}
