package lattester

import (
	"strconv"

	"optanestudy/internal/harness"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/topology"
)

// DataPoint is one configuration's outcome in the systematic sweep
// (Section 3.1: "a broad, systematic sweep over 3D XPoint configuration
// parameters").
type DataPoint struct {
	Op         Op
	Pattern    PatternKind
	AccessSize int
	Threads    int
	GBs        float64
	EWR        float64
}

// SweepConfig bounds the systematic sweep.
type SweepConfig struct {
	Ops         []Op
	Patterns    []PatternKind
	AccessSizes []int
	Threads     []int
	Duration    sim.Time
	Channel     int // DIMM used for the single-DIMM namespaces
	// Parallel is the worker-pool width the sweep's trials fan out over
	// (0 = GOMAXPROCS). The data points are identical at any width.
	Parallel int
}

// DefaultSweepConfig mirrors the paper's sweep axes at a size that runs in
// reasonable simulated time. (Wear-leveling outliers are off in the kernel
// scenario by default: they would blur bandwidth means.)
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Ops:         []Op{OpNTStore, OpStore, OpStoreCLWB},
		Patterns:    []PatternKind{Sequential, Random},
		AccessSizes: []int{64, 128, 256, 512, 1024, 4096},
		Threads:     []int{1, 2, 4, 8},
		Duration:    120 * sim.Microsecond,
	}
}

// Sweep runs every configuration against a single non-interleaved DIMM and
// returns the data points (the Figure 9 scatter) in grid order. Each point
// is one harness trial of the "lattester/kernel" scenario, so the sweep and
// the CLIs can never disagree on how a configuration is measured; the
// trials fan out across SweepConfig.Parallel workers with seeds derived
// from each point's resolved spec, so the scatter is identical at any
// pool width.
func Sweep(sc SweepConfig) []DataPoint {
	var specs []harness.Spec
	var points []DataPoint
	for _, op := range sc.Ops {
		for _, pat := range sc.Patterns {
			for _, size := range sc.AccessSizes {
				for _, threads := range sc.Threads {
					specs = append(specs, harness.Spec{
						Scenario: "lattester/kernel",
						Params: map[string]string{
							"system":  "optane-ni",
							"channel": strconv.Itoa(sc.Channel),
							"op":      op.String(),
							"pattern": pat.String(),
							"size":    strconv.Itoa(size),
						},
						Threads:  threads,
						Duration: sc.Duration,
						Seed:     uint64(size*31+threads*7) + 1,
					})
					points = append(points, DataPoint{
						Op:         op,
						Pattern:    pat,
						AccessSize: size,
						Threads:    threads,
					})
				}
			}
		}
	}
	for i, sr := range harness.RunSpecs(specs, sc.Parallel) {
		if sr.Err != nil {
			panic("lattester: sweep: " + sr.Err.Error())
		}
		tr := sr.Result.Trials[0]
		points[i].GBs = tr.GBs
		points[i].EWR = tr.Metrics["ewr"]
	}
	return points
}

// CorrelateEWR fits device bandwidth against EWR for one op across the
// sweep's points, reproducing the per-instruction fits of Figure 9.
func CorrelateEWR(points []DataPoint, op Op) *stats.LinReg {
	var fit stats.LinReg
	for _, pt := range points {
		if pt.Op == op {
			fit.Add(pt.EWR, pt.GBs)
		}
	}
	return &fit
}

// NewNIPlatform builds a fresh default platform with one non-interleaved
// Optane namespace — the sweep's and several figures' workhorse setup.
func NewNIPlatform(track bool) (*platform.Platform, *platform.Namespace) {
	cfg := platform.DefaultConfig()
	cfg.TrackData = track
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	ns, err := p.CreateNamespace(topology.Spec{
		Name: "optane-ni", Socket: 0, Media: topology.MediaXP,
		Size: 1 << 30, Channels: []int{0},
	})
	if err != nil {
		panic(err)
	}
	return p, ns
}
