package lattester

import (
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/topology"
)

// DataPoint is one configuration's outcome in the systematic sweep
// (Section 3.1: "a broad, systematic sweep over 3D XPoint configuration
// parameters").
type DataPoint struct {
	Op         Op
	Pattern    PatternKind
	AccessSize int
	Threads    int
	GBs        float64
	EWR        float64
}

// SweepConfig bounds the systematic sweep.
type SweepConfig struct {
	// PlatformConfig builds a fresh platform per point (isolating
	// counters and buffer state).
	PlatformConfig platform.Config
	Ops            []Op
	Patterns       []PatternKind
	AccessSizes    []int
	Threads        []int
	Duration       sim.Time
	Channel        int // DIMM used for the single-DIMM namespaces
}

// DefaultSweepConfig mirrors the paper's sweep axes at a size that runs in
// reasonable simulated time.
func DefaultSweepConfig() SweepConfig {
	cfg := platform.DefaultConfig()
	cfg.XP.Wear.Enabled = false // tail outliers would blur bandwidth means
	return SweepConfig{
		PlatformConfig: cfg,
		Ops:            []Op{OpNTStore, OpStore, OpStoreCLWB},
		Patterns:       []PatternKind{Sequential, Random},
		AccessSizes:    []int{64, 128, 256, 512, 1024, 4096},
		Threads:        []int{1, 2, 4, 8},
		Duration:       120 * sim.Microsecond,
	}
}

// Sweep runs every configuration against a single non-interleaved DIMM and
// returns the data points (the Figure 9 scatter).
func Sweep(sc SweepConfig) []DataPoint {
	var points []DataPoint
	for _, op := range sc.Ops {
		for _, pat := range sc.Patterns {
			for _, size := range sc.AccessSizes {
				for _, threads := range sc.Threads {
					p := platform.MustNew(sc.PlatformConfig)
					ns, err := p.OptaneNI("sweep", 0, sc.Channel, 1<<30)
					if err != nil {
						panic(err)
					}
					res := Run(Spec{
						NS:         ns,
						Op:         op,
						Pattern:    pat,
						AccessSize: size,
						Threads:    threads,
						Duration:   sc.Duration,
						Seed:       uint64(size*31+threads*7) + 1,
					})
					points = append(points, DataPoint{
						Op:         op,
						Pattern:    pat,
						AccessSize: size,
						Threads:    threads,
						GBs:        res.GBs,
						EWR:        res.EWR(),
					})
				}
			}
		}
	}
	return points
}

// CorrelateEWR fits device bandwidth against EWR for one op across the
// sweep's points, reproducing the per-instruction fits of Figure 9.
func CorrelateEWR(points []DataPoint, op Op) *stats.LinReg {
	var fit stats.LinReg
	for _, pt := range points {
		if pt.Op == op {
			fit.Add(pt.EWR, pt.GBs)
		}
	}
	return &fit
}

// NewNIPlatform builds a fresh default platform with one non-interleaved
// Optane namespace — the sweep's and several figures' workhorse setup.
func NewNIPlatform(track bool) (*platform.Platform, *platform.Namespace) {
	cfg := platform.DefaultConfig()
	cfg.TrackData = track
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	ns, err := p.CreateNamespace(topology.Spec{
		Name: "optane-ni", Socket: 0, Media: topology.MediaXP,
		Size: 1 << 30, Channels: []int{0},
	})
	if err != nil {
		panic(err)
	}
	return p, ns
}
