package lattester

import (
	"fmt"

	"optanestudy/internal/harness"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/workload"
)

// Harness scenarios. The fully parameterized "lattester/kernel" scenario is
// the measurement primitive behind the figure runners and the sweep; the
// named presets expose the paper's headline configurations to the CLIs.
func init() {
	harness.Register(harness.Scenario{
		Name: "lattester/kernel",
		Doc:  "parameterized LATTester kernel (op, pattern, size, system, mix, delay)",
		Run:  runKernel,
	})
	presets := []struct {
		name, doc string
		params    map[string]string
	}{
		{"lattester/seq-read", "sequential 256 B reads on interleaved Optane",
			map[string]string{"op": "read", "pattern": "seq"}},
		{"lattester/rand-read", "random 256 B reads on interleaved Optane",
			map[string]string{"op": "read", "pattern": "rand"}},
		{"lattester/seq-ntstore", "sequential 256 B ntstore+sfence on interleaved Optane",
			map[string]string{"op": "ntstore", "pattern": "seq"}},
		{"lattester/rand-ntstore", "random 256 B ntstore+sfence on interleaved Optane",
			map[string]string{"op": "ntstore", "pattern": "rand"}},
		{"lattester/seq-store-clwb", "sequential 256 B store+clwb+sfence on interleaved Optane",
			map[string]string{"op": "store+clwb", "pattern": "seq"}},
	}
	for _, p := range presets {
		harness.Register(harness.Scenario{
			Name:     p.name,
			Doc:      p.doc,
			Defaults: harness.Defaults{Params: p.params},
			Run:      runKernel,
		})
	}
	harness.Register(harness.Scenario{
		Name: "lattester/idle-latency",
		Doc:  "best-case per-op latency, idle machine (Figure 2)",
		Run:  runIdleLatency,
	})
	harness.Register(harness.Scenario{
		Name: "lattester/tail-latency",
		Doc:  "write tail latency over a hotspot, wear model on (Figure 3)",
		Run:  runTailLatency,
	})
	harness.Register(harness.Scenario{
		Name: "lattester/sfence-interval",
		Doc:  "single-DIMM bandwidth over sfence interval (Figure 14)",
		Run:  runSfenceInterval,
	})
	harness.Register(harness.Scenario{
		Name:     "lattester/spread",
		Doc:      "iMC contention: threads spread over N DIMMs each (Figure 16)",
		Defaults: harness.Defaults{Threads: 6},
		Run:      runSpread,
	})
	harness.Register(harness.Scenario{
		Name: "lattester/xpbuffer-probe",
		Doc:  "XPBuffer capacity probe via two-pass half-line writes (Figure 10)",
		Run:  runRegionProbe,
	})
}

// parseOp maps an op param back to the Op it stringifies as.
func parseOp(s string) (Op, error) {
	for _, op := range []Op{OpRead, OpNTStore, OpStoreCLWB, OpStore, OpStoreCLFlushOpt} {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("unknown op %q", s)
}

func parsePattern(s string) (PatternKind, error) {
	switch s {
	case "seq":
		return Sequential, nil
	case "rand":
		return Random, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", s)
	}
}

// parseMix parses "reads:writes" (e.g. "4:1"; "1:0" is all reads).
func parseMix(s string) (*workload.Mix, error) {
	var reads, writes int
	if _, err := fmt.Sscanf(s, "%d:%d", &reads, &writes); err != nil {
		return nil, fmt.Errorf("mix %q: want reads:writes", s)
	}
	return workload.NewMix(reads, writes), nil
}

// scenarioNS builds the namespace for a system label on a fresh platform,
// mirroring the paper's standard configurations: "dram" and "optane" are
// interleaved, "optane-ni" is one DIMM. The nssize param overrides the
// pool size; otherwise defSize applies when non-zero, then the standard
// size for the system (2 GB interleaved Optane, 1 GB otherwise).
func scenarioNS(r *harness.ParamReader, defSize int64) (*platform.Namespace, error) {
	system := r.Str("system", "optane")
	size := r.Int64("nssize", defSize)
	channel := r.Int("channel", 0)
	wear := r.Bool("wear", false)
	var cfg platform.Config
	if r.Str("platform", "default") == "pmep" {
		cfg = platform.PMEPConfig()
	} else {
		cfg = platform.DefaultConfig()
	}
	cfg.XP.Wear.Enabled = wear
	p := platform.MustNew(cfg)
	switch system {
	case "dram":
		if size == 0 {
			size = 1 << 30
		}
		return p.DRAM("pm", 0, size)
	case "optane":
		if size == 0 {
			size = 2 << 30
		}
		return p.Optane("pm", 0, size)
	case "optane-ni":
		if size == 0 {
			size = 1 << 30
		}
		return p.OptaneNI("pm", 0, channel, size)
	default:
		return nil, fmt.Errorf("unknown system %q", system)
	}
}

func runKernel(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	op, opErr := parseOp(r.Str("op", "read"))
	pat, patErr := parsePattern(r.Str("pattern", "seq"))
	size := r.Int("size", 256)
	region := r.Int64("region", 0)
	delay := sim.Time(r.Int64("delay_ns", 0)) * sim.Nanosecond
	fence64 := r.Bool("fence64", false)
	latency := r.Bool("latency", false)
	var mix *workload.Mix
	var mixErr error
	if m := r.Str("mix", ""); m != "" {
		mix, mixErr = parseMix(m)
	}
	ns, nsErr := scenarioNS(r, 0)
	for _, err := range []error{opErr, patErr, mixErr, nsErr, r.Err()} {
		if err != nil {
			return harness.Trial{}, err
		}
	}
	defer ns.Platform().Close()
	res := Run(Spec{
		NS: ns, Socket: spec.Socket, Op: op, Pattern: pat,
		AccessSize: size, Threads: spec.Threads, PerThreadRegion: region,
		Duration: spec.Duration, Warmup: spec.Warmup, Delay: delay,
		Mix: mix, FencePerLine: fence64, RecordLatency: latency,
		Seed: spec.Seed,
	})
	return harness.Trial{
		Bytes:   res.Bytes,
		Ops:     res.Bytes / int64(res.Spec.AccessSize),
		Sim:     res.Elapsed,
		Metrics: map[string]float64{"ewr": res.EWR()},
		Latency: res.Latency,
	}, nil
}

func runIdleLatency(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	op, opErr := parseOp(r.Str("op", "read"))
	pat, patErr := parsePattern(r.Str("pattern", "seq"))
	// Figure 2 measures on a 1 GB pool regardless of system.
	ns, nsErr := scenarioNS(r, 1<<30)
	for _, err := range []error{opErr, patErr, nsErr, r.Err()} {
		if err != nil {
			return harness.Trial{}, err
		}
	}
	defer ns.Platform().Close()
	sum := IdleLatency(IdleLatencySpec{
		NS: ns, Socket: spec.Socket, Op: op, Pattern: pat,
		Ops: spec.Ops, Seed: spec.Seed,
	})
	return harness.Trial{
		Ops: sum.N(),
		Metrics: map[string]float64{
			"mean_ns": sum.Mean(), "std_ns": sum.Std(),
			"min_ns": sum.Min(), "max_ns": sum.Max(),
		},
	}, nil
}

func runTailLatency(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	hotspot := r.Int64("hotspot", 256)
	wear := r.Bool("wear", true)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}
	cfg := platform.DefaultConfig()
	cfg.XP.Wear.Enabled = wear
	p := platform.MustNew(cfg)
	defer p.Close()
	ns, err := p.Optane("pm", 0, 1<<30)
	if err != nil {
		return harness.Trial{}, err
	}
	hist := TailLatency(TailSpec{NS: ns, Hotspot: hotspot, Ops: spec.Ops, Seed: spec.Seed})
	return harness.Trial{Ops: hist.Count(), Latency: hist}, nil
}

func runSfenceInterval(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	size := r.Int("size", 256)
	total := r.Int64("total", 0)
	var mode SfenceMode
	switch m := r.Str("mode", "clwb64"); m {
	case "clwb64":
		mode = CLWBEveryLine
	case "clwb":
		mode = CLWBAfterWrite
	case "ntstore":
		mode = NTStoreMode
	default:
		return harness.Trial{}, fmt.Errorf("unknown sfence mode %q", m)
	}
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}
	p, ns := NewNIPlatform(false)
	defer p.Close()
	gbs := SfenceInterval(SfenceIntervalSpec{NS: ns, WriteSize: size, Mode: mode, Total: total})
	return harness.Trial{GBs: gbs}, nil
}

func runSpread(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	dimms := r.Int("dimms_each", 1)
	size := r.Int("size", 1024)
	write := r.Bool("write", true)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}
	cfg := platform.DefaultConfig()
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	defer p.Close()
	ns, err := p.Optane("pm", 0, 2<<30)
	if err != nil {
		return harness.Trial{}, err
	}
	gbs := Spread(SpreadSpec{
		NS: ns, Threads: spec.Threads, DIMMsEach: dimms, AccessSize: size,
		Write: write, Duration: spec.Duration, Seed: spec.Seed,
	})
	return harness.Trial{GBs: gbs}, nil
}

func runRegionProbe(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	lines := r.Int64("lines", 256)
	rounds := r.Int("rounds", 3)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}
	p, ns := NewNIPlatform(false)
	defer p.Close()
	wa := RegionProbe(ns, lines, rounds)
	return harness.Trial{
		Ops:     lines * 2 * int64(rounds),
		Metrics: map[string]float64{"wa": wa},
	}, nil
}
