package lattester

import (
	"fmt"

	"optanestudy/internal/mem"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

// SpreadSpec configures the Figure 16 iMC-contention experiment: a fixed
// pool of threads accesses an interleaved namespace, each thread confined
// to a set of N DIMMs. As N grows, more writers target each DIMM and
// head-of-line blocking in the WPQ drags bandwidth down.
type SpreadSpec struct {
	NS         *platform.Namespace
	Threads    int
	DIMMsEach  int // N: how many DIMMs each thread touches
	AccessSize int // ≤ interleave granularity
	Write      bool
	Duration   sim.Time
	Seed       uint64
}

// Spread returns aggregate bandwidth in GB/s.
func Spread(spec SpreadSpec) float64 {
	ns := spec.NS
	p := ns.Platform()
	ways := len(ns.Channels)
	if spec.DIMMsEach < 1 || spec.DIMMsEach > ways {
		panic("lattester: DIMMsEach out of range")
	}
	if int64(spec.AccessSize) > ns.Granularity {
		panic("lattester: spread access must fit one interleave chunk")
	}
	dur := spec.Duration
	if dur == 0 {
		dur = 200 * sim.Microsecond
	}
	start := p.Now()
	warmEnd := start + dur/4
	deadline := warmEnd + dur

	stripes := ns.Size / ns.StripeSize()
	chunkAccesses := int(ns.Granularity) / spec.AccessSize

	var bytes int64
	for th := 0; th < spec.Threads; th++ {
		th := th
		p.Go(fmt.Sprintf("spread%d", th), ns.Socket, func(ctx *platform.MemCtx) {
			r := sim.NewRNG(spec.Seed + uint64(th)*131 + 7)
			for ctx.Proc().Now() < deadline {
				// Pick one of this thread's N DIMMs, then a random aligned
				// offset within a random 4 KB chunk on that DIMM.
				d := (th + r.Intn(spec.DIMMsEach)) % ways
				stripe := r.Int63n(stripes)
				off := stripe*ns.StripeSize() + int64(d)*ns.Granularity +
					int64(r.Intn(chunkAccesses)*spec.AccessSize)
				if spec.Write {
					ctx.NTStore(ns, off, spec.AccessSize, nil)
					ctx.SFence()
				} else {
					ctx.LoadStream(ns, off, spec.AccessSize)
				}
				if ctx.Proc().Now() >= warmEnd {
					bytes += int64(spec.AccessSize)
				}
			}
			if !spec.Write {
				ctx.DrainLoads()
			}
		})
	}
	end := p.Run()
	elapsed := end - warmEnd
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / elapsed.Seconds() / 1e9
}

// AccessWithinChunk asserts the invariant spread accesses rely on: an
// access of the given size starting at an aligned offset never crosses a
// 4 KB interleave boundary.
func AccessWithinChunk(off int64, size int) bool {
	return off/mem.Page == (off+int64(size)-1)/mem.Page
}
