package lattester

import (
	"testing"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/workload"
)

func newInterleaved(t testing.TB) (*platform.Platform, *platform.Namespace) {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	ns, err := p.Optane("optane", 0, 2<<30)
	if err != nil {
		t.Fatal(err)
	}
	return p, ns
}

func TestIdleLatencyMatchesPaper(t *testing.T) {
	_, ns := newInterleaved(t)
	seq := IdleLatency(IdleLatencySpec{NS: ns, Op: OpRead, Pattern: Sequential, Ops: 3000})
	if m := seq.Mean(); m < 150 || m > 190 {
		t.Errorf("seq read = %.1f ns, paper 169", m)
	}
	_, ns2 := newInterleaved(t)
	rnd := IdleLatency(IdleLatencySpec{NS: ns2, Op: OpRead, Pattern: Random, Ops: 3000})
	if m := rnd.Mean(); m < 270 || m > 340 {
		t.Errorf("rand read = %.1f ns, paper 305", m)
	}
	// Sequential reads have higher relative variance (XPLine boundary
	// misses vs hits), per Section 3.2.
	if seq.Std() <= rnd.Std() {
		t.Errorf("seq std (%.1f) should exceed rand std (%.1f)", seq.Std(), rnd.Std())
	}
}

func TestBandwidthReadVsWriteAsymmetry(t *testing.T) {
	p, ns := NewNIPlatform(false)
	_ = p
	read := Run(Spec{NS: ns, Op: OpRead, Pattern: Sequential, AccessSize: 256, Threads: 4})
	p2, ns2 := NewNIPlatform(false)
	_ = p2
	write := Run(Spec{NS: ns2, Op: OpNTStore, Pattern: Sequential, AccessSize: 256, Threads: 1})
	// Paper: single-DIMM max read 6.6 GB/s vs write 2.3 GB/s (2.9x).
	if read.GBs < 5.0 || read.GBs > 7.5 {
		t.Errorf("NI read bandwidth = %.2f GB/s, paper ~6.6", read.GBs)
	}
	if write.GBs < 1.7 || write.GBs > 2.7 {
		t.Errorf("NI write bandwidth = %.2f GB/s, paper ~2.3", write.GBs)
	}
	ratio := read.GBs / write.GBs
	if ratio < 2.0 || ratio > 4.0 {
		t.Errorf("read/write ratio = %.2f, paper 2.9", ratio)
	}
}

func TestWriteBandwidthNonMonotonicInThreads(t *testing.T) {
	bw := func(threads int) float64 {
		_, ns := NewNIPlatform(false)
		return Run(Spec{NS: ns, Op: OpNTStore, Pattern: Sequential,
			AccessSize: 256, Threads: threads}).GBs
	}
	one, eight := bw(1), bw(8)
	if eight >= one {
		t.Errorf("NI ntstore bandwidth must degrade with threads: 1T=%.2f, 8T=%.2f", one, eight)
	}
	if eight < one*0.4 {
		t.Errorf("degradation too extreme: 1T=%.2f, 8T=%.2f", one, eight)
	}
}

func TestSmallRandomAccessesArePoor(t *testing.T) {
	_, ns := NewNIPlatform(false)
	small := Run(Spec{NS: ns, Op: OpNTStore, Pattern: Random, AccessSize: 64, Threads: 1})
	_, ns2 := NewNIPlatform(false)
	atLine := Run(Spec{NS: ns2, Op: OpNTStore, Pattern: Random, AccessSize: 256, Threads: 1})
	if small.GBs > 0.6*atLine.GBs {
		t.Errorf("64B random (%.2f) should be far below 256B random (%.2f)", small.GBs, atLine.GBs)
	}
	if small.EWR() > 0.35 {
		t.Errorf("64B random EWR = %.2f, paper 0.25", small.EWR())
	}
	if atLine.EWR() < 0.9 {
		t.Errorf("256B random EWR = %.2f, paper 0.98", atLine.EWR())
	}
}

func TestStoreWithoutFlushLosesSequentiality(t *testing.T) {
	// A small LLC reaches steady-state evictions within the window.
	newNS := func() *platform.Namespace {
		cfg := platform.DefaultConfig()
		cfg.XP.Wear.Enabled = false
		cfg.LLC.Lines = (256 << 10) / 64
		p := platform.MustNew(cfg)
		ns, err := p.OptaneNI("ni", 0, 0, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		return ns
	}
	flushed := Run(Spec{NS: newNS(), Op: OpStoreCLWB, Pattern: Sequential, AccessSize: 256, Threads: 1,
		PerThreadRegion: 64 << 20, Duration: 400 * sim.Microsecond})
	plain := Run(Spec{NS: newNS(), Op: OpStore, Pattern: Sequential, AccessSize: 256, Threads: 1,
		PerThreadRegion: 64 << 20, Duration: 400 * sim.Microsecond})
	// Paper Section 5.2: flushing raises EWR from 0.26 to 0.98.
	if flushed.EWR() < 0.85 {
		t.Errorf("store+clwb EWR = %.2f, want ~0.98", flushed.EWR())
	}
	if plain.EWR() > 0.6 {
		t.Errorf("plain store EWR = %.2f, want well below flushed (paper 0.26)", plain.EWR())
	}
}

func TestLatencyUnderLoadKnee(t *testing.T) {
	// With increasing injected delay, bandwidth falls and latency recovers
	// toward idle.
	type point struct{ gbs, lat float64 }
	measure := func(delay sim.Time) point {
		_, ns := newInterleaved(t)
		res := Run(Spec{NS: ns, Op: OpRead, Pattern: Random, AccessSize: 64,
			Threads: 16, Delay: delay, RecordLatency: true})
		return point{res.GBs, res.Latency.Mean()}
	}
	loaded := measure(0)
	relaxed := measure(2 * sim.Microsecond)
	if loaded.gbs <= relaxed.gbs {
		t.Errorf("bandwidth: loaded %.2f <= relaxed %.2f", loaded.gbs, relaxed.gbs)
	}
	if loaded.lat <= relaxed.lat {
		t.Errorf("latency: loaded %.1f <= relaxed %.1f (queuing must show)", loaded.lat, relaxed.lat)
	}
}

func TestTailLatencyHotspotEffect(t *testing.T) {
	tail := func(hotspot int64) (p9999, max float64) {
		cfg := platform.DefaultConfig()
		p := platform.MustNew(cfg) // wear model ON
		ns, err := p.Optane("pm", 0, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		h := TailLatency(TailSpec{NS: ns, Hotspot: hotspot, Ops: 150000})
		return h.Percentile(0.9999), h.Max()
	}
	smallP, smallMax := tail(256)
	bigP, bigMax := tail(64 << 20)
	if smallMax < 20000 {
		t.Errorf("small hotspot max = %.0f ns, want ~50us outliers", smallMax)
	}
	if bigMax > 20000 {
		t.Errorf("64MB hotspot max = %.0f ns, want no outliers", bigMax)
	}
	if smallP <= bigP {
		t.Errorf("p99.99: small hotspot %.0f <= big hotspot %.0f", smallP, bigP)
	}
}

func TestRegionProbeFindsBufferCapacity(t *testing.T) {
	_, ns := NewNIPlatform(false)
	waSmall := RegionProbe(ns, 32, 3)
	_, ns2 := NewNIPlatform(false)
	waBig := RegionProbe(ns2, 512, 3)
	if waSmall > 1.15 {
		t.Errorf("WA(32 lines) = %.2f, want ~1", waSmall)
	}
	if waBig < 1.5 {
		t.Errorf("WA(512 lines) = %.2f, want ~2", waBig)
	}
}

func TestSfenceIntervalPeaksAt256(t *testing.T) {
	bw := func(size int, mode SfenceMode) float64 {
		_, ns := NewNIPlatform(false)
		return SfenceInterval(SfenceIntervalSpec{NS: ns, WriteSize: size, Mode: mode, Total: 8 << 20})
	}
	b64 := bw(64, CLWBEveryLine)
	b256 := bw(256, CLWBEveryLine)
	b4k := bw(4096, CLWBEveryLine)
	if b256 <= b64 {
		t.Errorf("256B interval (%.2f) must beat 64B (%.2f)", b256, b64)
	}
	if b4k < b256*0.5 {
		t.Errorf("4KB interval (%.2f) collapsed vs 256B (%.2f)", b4k, b256)
	}
}

func TestSpreadContention(t *testing.T) {
	bw := func(n int) float64 {
		_, ns := newInterleaved(t)
		return Spread(SpreadSpec{NS: ns, Threads: 6, DIMMsEach: n,
			AccessSize: 1024, Write: true, Seed: 5})
	}
	pinned := bw(1)
	spread := bw(6)
	// Figure 16: pinning threads to DIMMs maximizes bandwidth.
	if spread >= pinned {
		t.Errorf("spread (%.2f GB/s) must underperform pinned (%.2f GB/s)", spread, pinned)
	}
}

func TestMixedTrafficNUMACollapse(t *testing.T) {
	mixBW := func(socket int) float64 {
		_, ns := newInterleaved(t)
		return Run(Spec{NS: ns, Socket: socket, Pattern: Random, AccessSize: 64,
			Threads: 4, Mix: workload.NewMix(1, 1)}).GBs
	}
	local := mixBW(0)
	remote := mixBW(1)
	if remote > local/2 {
		t.Errorf("remote mixed bandwidth %.2f vs local %.2f: want >=2x collapse", remote, local)
	}
}

func TestSweepAndCorrelation(t *testing.T) {
	sc := DefaultSweepConfig()
	sc.AccessSizes = []int{64, 256, 1024}
	sc.Threads = []int{1, 4}
	sc.Duration = 60 * sim.Microsecond
	points := Sweep(sc)
	if len(points) != 3*2*3*2 {
		t.Fatalf("points = %d", len(points))
	}
	nt := CorrelateEWR(points, OpNTStore)
	// Figure 9: strong positive correlation for ntstore (r²=0.97).
	if nt.R2() < 0.5 {
		t.Errorf("ntstore EWR/BW r² = %.2f, want strong correlation", nt.R2())
	}
	if nt.Slope() <= 0 {
		t.Errorf("ntstore EWR/BW slope = %.2f, want positive", nt.Slope())
	}
}

func TestAccessWithinChunk(t *testing.T) {
	if !AccessWithinChunk(0, 4096) {
		t.Error("aligned 4KB crosses?")
	}
	if AccessWithinChunk(4095, 2) {
		t.Error("straddle not detected")
	}
}

func TestOpStrings(t *testing.T) {
	if OpRead.String() != "read" || OpNTStore.String() != "ntstore" ||
		OpStoreCLWB.String() != "store+clwb" || OpStore.String() != "store" {
		t.Error("op labels broken")
	}
	if OpRead.IsWrite() || !OpNTStore.IsWrite() {
		t.Error("IsWrite broken")
	}
	if Sequential.String() != "seq" || Random.String() != "rand" {
		t.Error("pattern labels broken")
	}
}
