// Package lattester reimplements the paper's LATTester microbenchmark
// toolkit (Section 3.1) on top of the simulated platform: idle latency,
// tail latency, bandwidth under arbitrary op/pattern/size/thread
// configurations, latency under load, EWR probes, and the systematic sweep
// used for the EWR-vs-bandwidth correlation.
//
// Like the original (which ran as a kernel module on pre-populated,
// pinned, prefetcher-disabled memory), kernels here access pre-created
// namespaces directly with explicit persistence instructions.
package lattester

import (
	"fmt"

	"optanestudy/internal/dimm"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/workload"
)

// Op selects the memory instruction sequence of a kernel.
type Op int

// Kernel operations. Writes are fenced once per access unless a spec says
// otherwise.
const (
	// OpRead issues loads.
	OpRead Op = iota
	// OpNTStore issues non-temporal stores followed by sfence.
	OpNTStore
	// OpStoreCLWB issues cached stores, clwb per line, then sfence.
	OpStoreCLWB
	// OpStore issues cached stores with no flushes or fences (persistence
	// left to cache evictions).
	OpStore
	// OpStoreCLFlushOpt issues cached stores with clflushopt + sfence.
	OpStoreCLFlushOpt
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpNTStore:
		return "ntstore"
	case OpStoreCLWB:
		return "store+clwb"
	case OpStore:
		return "store"
	case OpStoreCLFlushOpt:
		return "store+clflushopt"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// IsWrite reports whether the op writes memory.
func (o Op) IsWrite() bool { return o != OpRead }

// PatternKind selects the address pattern.
type PatternKind int

// Address patterns.
const (
	Sequential PatternKind = iota
	Random
)

func (p PatternKind) String() string {
	if p == Sequential {
		return "seq"
	}
	return "rand"
}

// Spec configures one measurement.
type Spec struct {
	NS      *platform.Namespace
	Socket  int // socket the threads run on; use NS.Socket for local
	Op      Op
	Pattern PatternKind
	// AccessSize is the bytes per access (one fence interval for writes).
	AccessSize int
	Threads    int
	// PerThreadRegion is each thread's private region (bytes); 0 picks
	// NS.Size/Threads capped at 256 MB.
	PerThreadRegion int64
	// Duration is the measured window; total run is Warmup+Duration.
	Duration sim.Time
	Warmup   sim.Time
	// Delay inserts idle time between accesses (latency-under-load).
	Delay sim.Time
	// Mix, when non-nil, interleaves reads and writes per its ratio and
	// overrides Op (reads are loads, writes ntstore+sfence).
	Mix *workload.Mix
	// FencePerLine issues clwb after every 64 B store instead of after the
	// whole access (Figure 14's "clwb every 64B" variant).
	FencePerLine bool
	// RecordLatency collects a per-access latency histogram.
	RecordLatency bool
	Seed          uint64
}

func (s *Spec) withDefaults() Spec {
	out := *s
	if out.AccessSize == 0 {
		out.AccessSize = 256
	}
	if out.Threads == 0 {
		out.Threads = 1
	}
	if out.Duration == 0 {
		out.Duration = 200 * sim.Microsecond
	}
	if out.Warmup == 0 {
		out.Warmup = out.Duration / 4
	}
	if out.PerThreadRegion == 0 {
		out.PerThreadRegion = out.NS.Size / int64(out.Threads)
		if out.PerThreadRegion > 256<<20 {
			out.PerThreadRegion = 256 << 20
		}
	}
	if out.PerThreadRegion < int64(out.AccessSize) {
		out.PerThreadRegion = int64(out.AccessSize)
	}
	if out.Seed == 0 {
		out.Seed = 0xBEEF
	}
	return out
}

// Result is the outcome of one measurement.
type Result struct {
	Spec    Spec
	Bytes   int64    // bytes accessed inside the measured window
	Elapsed sim.Time // measured window length
	// GBs is the achieved bandwidth in decimal GB/s.
	GBs float64
	// Latency is per-access latency (ns) when requested.
	Latency *stats.Histogram
	// XP is the delta of 3D XPoint counters over the whole run (including
	// warmup); EWR derives from it.
	XP dimm.Counters
}

// EWR returns the effective write ratio observed during the run.
func (r *Result) EWR() float64 { return r.XP.EWR() }

// Run executes the measurement on the namespace's platform.
func Run(spec Spec) Result {
	s := spec.withDefaults()
	p := s.NS.Platform()
	before := p.NamespaceCounters(s.NS)

	start := p.Now()
	warmEnd := start + s.Warmup
	deadline := warmEnd + s.Duration

	var bytesTotal int64
	var hist *stats.Histogram
	if s.RecordLatency {
		hist = stats.NewHistogram()
	}

	for th := 0; th < s.Threads; th++ {
		th := th
		p.Go(fmt.Sprintf("lat%d", th), s.Socket, func(ctx *platform.MemCtx) {
			base := int64(th) * s.PerThreadRegion
			if base+s.PerThreadRegion > s.NS.Size {
				base = s.NS.Size - s.PerThreadRegion
			}
			pat := newPattern(s, th)
			mix := cloneMix(s.Mix)
			for ctx.Proc().Now() < deadline {
				off := base + pat.Next()
				opStart := ctx.Proc().Now()
				doAccess(ctx, s, mix, off)
				now := ctx.Proc().Now()
				if now >= warmEnd {
					bytesTotal += int64(s.AccessSize)
					if hist != nil {
						hist.Add((now - opStart).Nanoseconds())
					}
				}
				if s.Delay > 0 {
					ctx.Proc().Sleep(s.Delay)
				}
			}
			if s.Op == OpRead || s.Mix != nil {
				ctx.DrainLoads()
			}
		})
	}
	end := p.Run()
	elapsed := end - warmEnd
	if elapsed < s.Duration {
		elapsed = s.Duration
	}
	res := Result{
		Spec:    s,
		Bytes:   bytesTotal,
		Elapsed: elapsed,
		XP:      p.NamespaceCounters(s.NS).Sub(before),
		Latency: hist,
	}
	if elapsed > 0 {
		res.GBs = float64(bytesTotal) / elapsed.Seconds() / 1e9
	}
	return res
}

func newPattern(s Spec, thread int) workload.Pattern {
	if s.Pattern == Sequential {
		return workload.NewSequential(s.PerThreadRegion, s.AccessSize)
	}
	return workload.NewRandom(s.PerThreadRegion, s.AccessSize, s.Seed+uint64(thread)*7331+1)
}

func cloneMix(m *workload.Mix) *workload.Mix {
	if m == nil {
		return nil
	}
	clone := *m
	return &clone
}

// doAccess performs one access of the spec's size at off.
func doAccess(ctx *platform.MemCtx, s Spec, mix *workload.Mix, off int64) {
	ns := s.NS
	size := s.AccessSize
	if mix != nil {
		if mix.NextIsRead() {
			if s.RecordLatency {
				ctx.Load(ns, off, size)
			} else {
				ctx.LoadStream(ns, off, size)
			}
		} else {
			ctx.NTStore(ns, off, size, nil)
			ctx.SFence()
		}
		return
	}
	switch s.Op {
	case OpRead:
		if s.RecordLatency {
			ctx.Load(ns, off, size)
		} else {
			ctx.LoadStream(ns, off, size)
		}
	case OpNTStore:
		ctx.NTStore(ns, off, size, nil)
		ctx.SFence()
	case OpStoreCLWB:
		if s.FencePerLine {
			for b := 0; b < size; b += 64 {
				n := size - b
				if n > 64 {
					n = 64
				}
				ctx.Store(ns, off+int64(b), n, nil)
				ctx.CLWB(ns, off+int64(b), n)
			}
		} else {
			ctx.Store(ns, off, size, nil)
			ctx.CLWB(ns, off, size)
		}
		ctx.SFence()
	case OpStoreCLFlushOpt:
		ctx.Store(ns, off, size, nil)
		ctx.CLFlushOpt(ns, off, size)
		ctx.SFence()
	case OpStore:
		ctx.Store(ns, off, size, nil)
	default:
		panic("lattester: unknown op")
	}
}
