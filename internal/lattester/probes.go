package lattester

import (
	"optanestudy/internal/mem"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
)

// IdleLatencySpec configures a best-case latency measurement (Figure 2):
// one thread, fenced single operations, idle machine.
type IdleLatencySpec struct {
	NS     *platform.Namespace
	Socket int
	Op     Op
	// Pattern applies to reads (sequential vs random 8 B loads at 64 B
	// stride, as in LATTester).
	Pattern PatternKind
	Ops     int
	Seed    uint64
}

// IdleLatency measures per-operation latency and returns the sample
// distribution in nanoseconds.
func IdleLatency(spec IdleLatencySpec) *stats.Summary {
	ns := spec.NS
	p := ns.Platform()
	n := spec.Ops
	if n == 0 {
		n = 4000
	}
	region := ns.Size
	if region > 512<<20 {
		region = 512 << 20
	}
	var sum stats.Summary
	p.Go("idlelat", spec.Socket, func(ctx *platform.MemCtx) {
		r := sim.NewRNG(spec.Seed + 99)
		for i := 0; i < n; i++ {
			var off int64
			if spec.Pattern == Sequential {
				off = int64(i) * mem.CacheLine % region
			} else {
				off = r.Int63n(region/mem.CacheLine) * mem.CacheLine
			}
			start := ctx.Proc().Now()
			switch spec.Op {
			case OpRead:
				ctx.Load(ns, off, 8)
			case OpNTStore:
				ctx.NTStore(ns, off, mem.CacheLine, nil)
				ctx.SFence()
			case OpStoreCLWB:
				// The paper warms the line into the cache first.
				ctx.Load(ns, off, 8)
				start = ctx.Proc().Now()
				ctx.Store(ns, off, mem.CacheLine, nil)
				ctx.CLWB(ns, off, mem.CacheLine)
				ctx.SFence()
			default:
				panic("lattester: unsupported idle-latency op")
			}
			sum.Add((ctx.Proc().Now() - start).Nanoseconds())
		}
	})
	p.Run()
	return &sum
}

// TailSpec configures the Figure 3 hotspot tail-latency experiment.
type TailSpec struct {
	NS      *platform.Namespace
	Hotspot int64 // hotspot size in bytes
	Ops     int
	Seed    uint64
}

// TailLatency sequentially overwrites a hotspot with fenced 64 B ntstores
// and returns the latency distribution (ns).
func TailLatency(spec TailSpec) *stats.Histogram {
	ns := spec.NS
	p := ns.Platform()
	n := spec.Ops
	if n == 0 {
		n = 200000
	}
	hist := stats.NewHistogram()
	p.Go("tail", ns.Socket, func(ctx *platform.MemCtx) {
		hot := spec.Hotspot
		if hot < mem.CacheLine {
			hot = mem.CacheLine
		}
		var off int64
		for i := 0; i < n; i++ {
			start := ctx.Proc().Now()
			ctx.NTStore(ns, off, mem.CacheLine, nil)
			ctx.SFence()
			hist.Add((ctx.Proc().Now() - start).Nanoseconds())
			off += mem.CacheLine
			if off >= hot {
				off = 0
			}
		}
	})
	p.Run()
	return hist
}

// RegionProbe runs the Figure 10 XPBuffer-capacity experiment on an
// (ideally non-interleaved) namespace: each round writes the first half of
// every XPLine in an N-line region, then the second half. It returns the
// observed write amplification.
func RegionProbe(ns *platform.Namespace, lines int64, rounds int) float64 {
	p := ns.Platform()
	before := p.NamespaceCounters(ns)
	p.Go("region", ns.Socket, func(ctx *platform.MemCtx) {
		for r := 0; r < rounds; r++ {
			for half := int64(0); half < 2; half++ {
				for i := int64(0); i < lines; i++ {
					off := i*mem.XPLine + half*(mem.XPLine/2)
					ctx.NTStore(ns, off, mem.XPLine/2, nil)
					ctx.SFence()
				}
			}
		}
	})
	p.Run()
	delta := p.NamespaceCounters(ns).Sub(before)
	return delta.WriteAmplification()
}

// SfenceIntervalSpec configures the Figure 14 experiment: one thread
// writing sequentially with a given write size per sfence, flushing either
// per 64 B line or once per write.
type SfenceIntervalSpec struct {
	NS        *platform.Namespace
	WriteSize int
	Mode      SfenceMode
	Total     int64 // total bytes; 0 picks a multiple of the write size
}

// SfenceMode selects the flush strategy of SfenceInterval.
type SfenceMode int

// Flush strategies for SfenceInterval.
const (
	CLWBEveryLine  SfenceMode = iota // clwb after every 64 B store
	CLWBAfterWrite                   // clwb for the whole region after the write
	NTStoreMode                      // non-temporal stores
)

func (m SfenceMode) String() string {
	switch m {
	case CLWBEveryLine:
		return "clwb(every 64B)"
	case CLWBAfterWrite:
		return "clwb(write size)"
	default:
		return "ntstore"
	}
}

// SfenceInterval returns the achieved bandwidth in GB/s.
func SfenceInterval(spec SfenceIntervalSpec) float64 {
	ns := spec.NS
	p := ns.Platform()
	size := spec.WriteSize
	total := spec.Total
	if total == 0 {
		total = 24 << 20
		if total < int64(size)*4 {
			total = int64(size) * 4
		}
	}
	if total > ns.Size {
		total = ns.Size
	}
	start := p.Now()
	p.Go("sfence", ns.Socket, func(ctx *platform.MemCtx) {
		for off := int64(0); off+int64(size) <= total; off += int64(size) {
			switch spec.Mode {
			case CLWBEveryLine:
				for b := 0; b < size; b += mem.CacheLine {
					ctx.Store(ns, off+int64(b), mem.CacheLine, nil)
					ctx.CLWB(ns, off+int64(b), mem.CacheLine)
				}
			case CLWBAfterWrite:
				ctx.Store(ns, off, size, nil)
				ctx.CLWB(ns, off, size)
			case NTStoreMode:
				ctx.NTStore(ns, off, size, nil)
			}
			ctx.SFence()
		}
	})
	end := p.Run()
	written := total / int64(size) * int64(size)
	return float64(written) / (end - start).Seconds() / 1e9
}
