// Package workload generates the access patterns and record streams used by
// the study's experiments: sequential, random, strided and hotspot address
// patterns, Zipfian key popularity, read/write mixes, and key-value records
// for the db_bench-style workloads.
package workload

import (
	"fmt"

	"optanestudy/internal/sim"
)

// Pattern produces a stream of byte offsets within a region. Offsets are
// aligned to the configured access size so each access touches a disjoint
// naturally-aligned block.
type Pattern interface {
	// Next returns the offset of the next access.
	Next() int64
	// Reset restarts the pattern from its initial state.
	Reset()
}

// Sequential walks a region front to back in accessSize steps, wrapping.
type Sequential struct {
	region int64
	step   int64
	pos    int64
}

// NewSequential returns a sequential pattern over region bytes with the
// given access size. region must be a positive multiple of accessSize.
func NewSequential(region int64, accessSize int) *Sequential {
	if accessSize <= 0 || region < int64(accessSize) {
		panic(fmt.Sprintf("workload: bad sequential region=%d size=%d", region, accessSize))
	}
	return &Sequential{region: region - region%int64(accessSize), step: int64(accessSize)}
}

// Next implements Pattern.
func (s *Sequential) Next() int64 {
	off := s.pos
	s.pos += s.step
	if s.pos >= s.region {
		s.pos = 0
	}
	return off
}

// Reset implements Pattern.
func (s *Sequential) Reset() { s.pos = 0 }

// Random produces uniformly random aligned offsets within a region.
type Random struct {
	rng    *sim.RNG
	seed   uint64
	blocks int64
	step   int64
}

// NewRandom returns a uniform random pattern over region bytes with the
// given access size.
func NewRandom(region int64, accessSize int, seed uint64) *Random {
	if accessSize <= 0 || region < int64(accessSize) {
		panic(fmt.Sprintf("workload: bad random region=%d size=%d", region, accessSize))
	}
	return &Random{
		rng:    sim.NewRNG(seed),
		seed:   seed,
		blocks: region / int64(accessSize),
		step:   int64(accessSize),
	}
}

// Next implements Pattern.
func (r *Random) Next() int64 { return r.rng.Int63n(r.blocks) * r.step }

// Reset implements Pattern.
func (r *Random) Reset() { r.rng = sim.NewRNG(r.seed) }

// Stride walks a region with a fixed stride between accesses.
type Stride struct {
	region int64
	stride int64
	pos    int64
}

// NewStride returns a strided pattern: access i touches offset
// (i*stride) mod region.
func NewStride(region, stride int64) *Stride {
	if stride <= 0 || region < stride {
		panic(fmt.Sprintf("workload: bad stride region=%d stride=%d", region, stride))
	}
	return &Stride{region: region - region%stride, stride: stride}
}

// Next implements Pattern.
func (s *Stride) Next() int64 {
	off := s.pos
	s.pos += s.stride
	if s.pos >= s.region {
		s.pos = 0
	}
	return off
}

// Reset implements Pattern.
func (s *Stride) Reset() { s.pos = 0 }

// Hotspot confines sequential accesses to a small window ("hot spot") of a
// larger region — the Figure 3 tail-latency workload.
type Hotspot struct {
	inner *Sequential
	base  int64
}

// NewHotspot returns a pattern that repeatedly sweeps a hotspotSize window
// starting at base, in accessSize steps.
func NewHotspot(base, hotspotSize int64, accessSize int) *Hotspot {
	return &Hotspot{inner: NewSequential(hotspotSize, accessSize), base: base}
}

// Next implements Pattern.
func (h *Hotspot) Next() int64 { return h.base + h.inner.Next() }

// Reset implements Pattern.
func (h *Hotspot) Reset() { h.inner.Reset() }

// Mix selects between read and write operations at a configured ratio using
// a deterministic interleaving (e.g. 3:1 issues RRRW RRRW ...), matching how
// the paper's bandwidth-mix experiments are constructed.
type Mix struct {
	reads  int
	writes int
	pos    int
}

// NewMix returns a mix issuing `reads` reads then `writes` writes per cycle.
// (1,0) is read-only; (0,1) is write-only.
func NewMix(reads, writes int) *Mix {
	if reads < 0 || writes < 0 || reads+writes == 0 {
		panic("workload: bad mix")
	}
	return &Mix{reads: reads, writes: writes}
}

// NextIsRead reports whether the next operation is a read.
func (m *Mix) NextIsRead() bool {
	isRead := m.pos < m.reads
	m.pos++
	if m.pos >= m.reads+m.writes {
		m.pos = 0
	}
	return isRead
}

// ReadFraction returns the fraction of operations that are reads.
func (m *Mix) ReadFraction() float64 {
	return float64(m.reads) / float64(m.reads+m.writes)
}

// String renders "R", "W" or "R:W (n:m)" like the paper's axis labels.
func (m *Mix) String() string {
	switch {
	case m.writes == 0:
		return "R"
	case m.reads == 0:
		return "W"
	default:
		return fmt.Sprintf("R:W (%d:%d)", m.reads, m.writes)
	}
}
