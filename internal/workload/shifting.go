package workload

import (
	"fmt"

	"optanestudy/internal/sim"
)

// ShiftingHotspot draws key ids in [0, n) with a moving popularity spike: a
// fraction hotFrac of draws lands uniformly inside a hot window of hotSize
// consecutive ids, and the window relocates to a fresh seeded-uniform base
// every period draws. The cold remainder is uniform over the whole range.
//
// This is the serving-side complement of the static Hotspot address
// pattern: under a sharded router, a window narrower than the routing block
// concentrates load on one shard at a time and the hot shard migrates as
// the window moves — the skew-vs-placement experiment the cluster sweeps
// exercise. Like every generator in this package, the stream is a pure
// function of the constructor arguments, so harness trials replay it
// identically at any scheduling width.
type ShiftingHotspot struct {
	rng     *sim.RNG
	n       int64
	hotSize int64
	period  int64
	hotFrac float64
	base    int64 // current hot-window start
	drawn   int64 // draws since the window last moved
}

// NewShiftingHotspot returns a generator over [0, n). hotSize must be in
// [1, n], hotFrac in [0, 1], and period positive.
func NewShiftingHotspot(n, hotSize, period int64, hotFrac float64, seed uint64) *ShiftingHotspot {
	if n <= 0 || hotSize < 1 || hotSize > n || period < 1 || hotFrac < 0 || hotFrac > 1 {
		panic(fmt.Sprintf("workload: bad shifting hotspot (n=%d hot=%d period=%d frac=%g)",
			n, hotSize, period, hotFrac))
	}
	s := &ShiftingHotspot{rng: sim.NewRNG(seed), n: n, hotSize: hotSize, period: period, hotFrac: hotFrac}
	s.move()
	return s
}

// move relocates the hot window to a seeded-uniform base.
func (s *ShiftingHotspot) move() {
	s.base = s.rng.Int63n(s.n - s.hotSize + 1)
	s.drawn = 0
}

// Next returns the next key id.
func (s *ShiftingHotspot) Next() int64 {
	if s.drawn == s.period {
		s.move()
	}
	s.drawn++
	if s.rng.Float64() < s.hotFrac {
		return s.base + s.rng.Int63n(s.hotSize)
	}
	return s.rng.Int63n(s.n)
}

// Base returns the current hot-window start (tests and instrumentation).
func (s *ShiftingHotspot) Base() int64 { return s.base }
