package workload

import (
	"encoding/binary"

	"optanestudy/internal/sim"
)

// Record is one key-value pair for the db_bench-style workloads.
type Record struct {
	Key   []byte
	Value []byte
}

// RecordGen produces key-value records with fixed key and value sizes, like
// RocksDB's db_bench (the paper uses 20-byte keys and 100-byte values).
type RecordGen struct {
	rng       *sim.RNG
	keySize   int
	valueSize int
	keySpace  int64
	zipf      *Zipf // nil means uniform
	seq       int64
	useSeq    bool
}

// NewRecordGen returns a generator of uniformly random keys in a key space.
func NewRecordGen(keySize, valueSize int, keySpace int64, seed uint64) *RecordGen {
	if keySize < 8 || valueSize < 0 || keySpace <= 0 {
		panic("workload: bad record generator parameters")
	}
	return &RecordGen{
		rng:       sim.NewRNG(seed),
		keySize:   keySize,
		valueSize: valueSize,
		keySpace:  keySpace,
	}
}

// NewZipfRecordGen returns a generator with Zipfian key popularity.
func NewZipfRecordGen(keySize, valueSize int, keySpace int64, theta float64, seed uint64) *RecordGen {
	g := NewRecordGen(keySize, valueSize, keySpace, seed)
	g.zipf = NewZipf(keySpace, theta, seed+1)
	return g
}

// NewSeqRecordGen returns a generator producing keys 0, 1, 2, ... — the
// fillseq-style load phase.
func NewSeqRecordGen(keySize, valueSize int, seed uint64) *RecordGen {
	g := NewRecordGen(keySize, valueSize, 1<<62, seed)
	g.useSeq = true
	return g
}

// KeySize returns the generated key length in bytes.
func (g *RecordGen) KeySize() int { return g.keySize }

// ValueSize returns the generated value length in bytes.
func (g *RecordGen) ValueSize() int { return g.valueSize }

func (g *RecordGen) nextID() int64 {
	switch {
	case g.useSeq:
		id := g.seq
		g.seq++
		return id
	case g.zipf != nil:
		return g.zipf.Next()
	default:
		return g.rng.Int63n(g.keySpace)
	}
}

// KeyFor renders the fixed-width key for id: an 8-byte big-endian id (so
// byte order matches numeric order) padded with deterministic filler.
func (g *RecordGen) KeyFor(id int64) []byte {
	key := make([]byte, g.keySize)
	binary.BigEndian.PutUint64(key, uint64(id))
	for i := 8; i < g.keySize; i++ {
		key[i] = byte('a' + (id+int64(i))%26)
	}
	return key
}

// Next produces the next record.
func (g *RecordGen) Next() Record {
	id := g.nextID()
	val := make([]byte, g.valueSize)
	fill := g.rng.Uint64()
	for i := range val {
		val[i] = byte(fill >> (8 * (uint(i) % 8)))
		if i%8 == 7 {
			fill = g.rng.Uint64()
		}
	}
	return Record{Key: g.KeyFor(id), Value: val}
}
