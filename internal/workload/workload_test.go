package workload

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSequentialWraps(t *testing.T) {
	p := NewSequential(256, 64)
	want := []int64{0, 64, 128, 192, 0, 64}
	for i, w := range want {
		if got := p.Next(); got != w {
			t.Fatalf("access %d: got %d, want %d", i, got, w)
		}
	}
	p.Reset()
	if p.Next() != 0 {
		t.Fatal("reset did not restart")
	}
}

func TestSequentialTruncatesRegion(t *testing.T) {
	p := NewSequential(300, 64) // usable region truncates to 256
	seen := map[int64]bool{}
	for i := 0; i < 8; i++ {
		seen[p.Next()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("distinct offsets = %d, want 4", len(seen))
	}
}

func TestRandomAlignedAndInRange(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewRandom(1<<20, 256, seed)
		for i := 0; i < 1000; i++ {
			off := p.Next()
			if off < 0 || off >= 1<<20 || off%256 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRandomResetReproduces(t *testing.T) {
	p := NewRandom(1<<16, 64, 99)
	var first []int64
	for i := 0; i < 50; i++ {
		first = append(first, p.Next())
	}
	p.Reset()
	for i := 0; i < 50; i++ {
		if p.Next() != first[i] {
			t.Fatal("reset stream diverged")
		}
	}
}

func TestRandomCoversRegion(t *testing.T) {
	p := NewRandom(1024, 256, 5) // 4 blocks
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		seen[p.Next()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("covered %d blocks, want 4", len(seen))
	}
}

func TestStride(t *testing.T) {
	p := NewStride(1024, 256)
	want := []int64{0, 256, 512, 768, 0}
	for i, w := range want {
		if got := p.Next(); got != w {
			t.Fatalf("access %d: got %d, want %d", i, got, w)
		}
	}
}

func TestHotspot(t *testing.T) {
	p := NewHotspot(4096, 512, 64)
	for i := 0; i < 20; i++ {
		off := p.Next()
		if off < 4096 || off >= 4096+512 {
			t.Fatalf("offset %d outside hotspot", off)
		}
	}
}

func TestMixDeterministicPattern(t *testing.T) {
	m := NewMix(3, 1)
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, m.NextIsRead())
	}
	want := []bool{true, true, true, false, true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mix pattern = %v, want %v", got, want)
		}
	}
	if m.ReadFraction() != 0.75 {
		t.Fatalf("read fraction = %v", m.ReadFraction())
	}
}

func TestMixStrings(t *testing.T) {
	if NewMix(1, 0).String() != "R" {
		t.Error("read-only label")
	}
	if NewMix(0, 1).String() != "W" {
		t.Error("write-only label")
	}
	if NewMix(2, 1).String() != "R:W (2:1)" {
		t.Errorf("mix label = %q", NewMix(2, 1).String())
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 0.99, 42)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must dominate; top-10 should hold a large share.
	if counts[0] < counts[500]*10 {
		t.Errorf("item 0 (%d) not much hotter than item 500 (%d)", counts[0], counts[500])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if float64(top10)/n < 0.3 {
		t.Errorf("top-10 share = %.3f, want >= 0.3", float64(top10)/n)
	}
}

func TestZipfLargeKeyspace(t *testing.T) {
	z := NewZipf(100_000_000, 0.99, 1)
	for i := 0; i < 1000; i++ {
		v := z.Next()
		if v < 0 || v >= 100_000_000 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

// Determinism guards: the harness byte-identical contract requires that a
// generator seeded identically produces the identical stream on every run,
// no matter the schedule that interleaves it.

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(1_000_000, 0.99, 31)
	b := NewZipf(1_000_000, 0.99, 31)
	for i := 0; i < 5000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("sample %d: %d vs %d — same seed diverged", i, x, y)
		}
	}
	c := NewZipf(1_000_000, 0.99, 32)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	// Zipf streams share hot items, so some collisions are expected — but a
	// different seed must not reproduce the stream.
	if same == 1000 {
		t.Fatal("different seeds produced an identical Zipf stream")
	}
}

func TestPatternScheduleDeterministic(t *testing.T) {
	build := func(seed uint64) []Pattern {
		return []Pattern{
			NewSequential(1<<20, 256),
			NewRandom(1<<20, 256, seed),
			NewStride(1<<20, 4096),
			NewHotspot(1<<16, 4096, 64),
		}
	}
	a, b := build(77), build(77)
	for i := 0; i < 2000; i++ {
		for j := range a {
			if x, y := a[j].Next(), b[j].Next(); x != y {
				t.Fatalf("pattern %d access %d: %d vs %d — same seed diverged", j, i, x, y)
			}
		}
	}
}

func TestShiftingHotspotDeterministic(t *testing.T) {
	a := NewShiftingHotspot(100000, 500, 1000, 0.9, 21)
	b := NewShiftingHotspot(100000, 500, 1000, 0.9, 21)
	for i := 0; i < 10000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("sample %d: %d vs %d — same seed diverged", i, x, y)
		}
	}
	c := NewShiftingHotspot(100000, 500, 1000, 0.9, 22)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced an identical hotspot stream")
	}
}

func TestShiftingHotspotSkewAndRange(t *testing.T) {
	const n, hot, period = 100000, 500, 2000
	s := NewShiftingHotspot(n, hot, period, 0.9, 7)
	base := s.Base()
	inHot, draws := 0, 0
	for i := 0; i < period; i++ {
		v := s.Next()
		if v < 0 || v >= n {
			t.Fatalf("draw %d out of range: %d", i, v)
		}
		draws++
		if v >= base && v < base+hot {
			inHot++
		}
	}
	// ~90% of draws sit inside the 0.5% hot window while it is stationary.
	if frac := float64(inHot) / float64(draws); frac < 0.8 {
		t.Errorf("hot-window share = %.3f, want >= 0.8", frac)
	}
}

func TestShiftingHotspotMoves(t *testing.T) {
	const period = 500
	s := NewShiftingHotspot(1_000_000, 100, period, 1, 3)
	bases := map[int64]bool{s.Base(): true}
	prev := s.Base()
	var moves []int
	for i := 1; i <= 8*period+1; i++ {
		s.Next()
		if b := s.Base(); b != prev {
			moves = append(moves, i)
			prev = b
			bases[b] = true
		}
	}
	// The window relocates on the first draw after each full period: calls
	// period+1, 2·period+1, ... (a move to the same base is astronomically
	// unlikely over a million ids and this seed does not hit one).
	if len(moves) != 8 {
		t.Fatalf("saw %d moves over 8 periods, want 8 (at %v)", len(moves), moves)
	}
	for j, at := range moves {
		if want := (j+1)*period + 1; at != want {
			t.Fatalf("move %d at draw %d, want %d — relocation not period-aligned", j, at, want)
		}
	}
	// Seeded-uniform bases must visit distinct windows.
	if len(bases) < 5 {
		t.Errorf("only %d distinct hot windows over 8 periods", len(bases))
	}
}

func TestRecordGenDeterministic(t *testing.T) {
	for _, mk := range []struct {
		name string
		gen  func(seed uint64) *RecordGen
	}{
		{"uniform", func(s uint64) *RecordGen { return NewRecordGen(20, 100, 1<<20, s) }},
		{"zipf", func(s uint64) *RecordGen { return NewZipfRecordGen(20, 100, 1<<20, 0.99, s) }},
		{"seq", func(s uint64) *RecordGen { return NewSeqRecordGen(20, 100, s) }},
	} {
		a, b := mk.gen(9), mk.gen(9)
		for i := 0; i < 1000; i++ {
			ra, rb := a.Next(), b.Next()
			if !bytes.Equal(ra.Key, rb.Key) || !bytes.Equal(ra.Value, rb.Value) {
				t.Fatalf("%s record %d: same seed diverged", mk.name, i)
			}
		}
	}
}

func TestRecordGenShapes(t *testing.T) {
	g := NewRecordGen(20, 100, 1<<20, 7)
	r := g.Next()
	if len(r.Key) != 20 || len(r.Value) != 100 {
		t.Fatalf("record shape = %d/%d", len(r.Key), len(r.Value))
	}
}

func TestRecordGenKeyOrdering(t *testing.T) {
	g := NewSeqRecordGen(20, 100, 7)
	prev := g.Next()
	for i := 0; i < 100; i++ {
		cur := g.Next()
		if bytes.Compare(prev.Key, cur.Key) >= 0 {
			t.Fatal("sequential keys not byte-ordered")
		}
		prev = cur
	}
}

func TestRecordGenKeyForDeterministic(t *testing.T) {
	g := NewRecordGen(20, 100, 1<<20, 7)
	if !bytes.Equal(g.KeyFor(12345), g.KeyFor(12345)) {
		t.Fatal("KeyFor not deterministic")
	}
	if bytes.Equal(g.KeyFor(1), g.KeyFor(2)) {
		t.Fatal("distinct ids collide")
	}
}
