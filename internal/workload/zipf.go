package workload

import (
	"math"

	"optanestudy/internal/sim"
)

// Zipf generates Zipfian-distributed integers in [0, n) with skew theta,
// using the Gray et al. (SIGMOD '94) rejection-free method popularized by
// YCSB. Item 0 is the most popular.
type Zipf struct {
	rng   *sim.RNG
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf returns a Zipfian generator over [0, n). theta in (0, 1);
// 0.99 matches the YCSB default.
func NewZipf(n int64, theta float64, seed uint64) *Zipf {
	if n <= 0 || theta <= 0 || theta >= 1 {
		panic("workload: bad zipf parameters")
	}
	z := &Zipf{rng: sim.NewRNG(seed), n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	// Exact for small n; for large n use the integral approximation to keep
	// construction O(1) for multi-million key spaces.
	if n <= 10000 {
		var sum float64
		for i := int64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	return zeta(10000, theta) +
		(math.Pow(float64(n), 1-theta)-math.Pow(10000, 1-theta))/(1-theta)
}

// Next returns the next Zipfian sample.
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
