// Package mem defines the basic units of the simulated memory system —
// cache lines, XPLines (the 3D XPoint internal 256 B access granularity),
// pages — and a sparse byte store used to hold the actual contents of
// simulated DIMMs.
package mem

// Fundamental granularities of the platform (Section 2.1 of the paper).
const (
	CacheLine = 64   // CPU cache line and DDR-T transfer unit
	XPLine    = 256  // 3D XPoint media access granularity
	Page      = 4096 // OS page and interleaving granularity
)

// LineAddr returns the cache-line-aligned base of addr.
func LineAddr(addr int64) int64 { return addr &^ (CacheLine - 1) }

// XPLineAddr returns the XPLine-aligned base of addr.
func XPLineAddr(addr int64) int64 { return addr &^ (XPLine - 1) }

// PageAddr returns the page-aligned base of addr.
func PageAddr(addr int64) int64 { return addr &^ (Page - 1) }

// LinesIn returns how many cache lines the byte range [addr, addr+size)
// touches.
func LinesIn(addr int64, size int) int {
	if size <= 0 {
		return 0
	}
	first := LineAddr(addr)
	last := LineAddr(addr + int64(size) - 1)
	return int((last-first)/CacheLine) + 1
}

// XPLinesIn returns how many XPLines the byte range touches.
func XPLinesIn(addr int64, size int) int {
	if size <= 0 {
		return 0
	}
	first := XPLineAddr(addr)
	last := XPLineAddr(addr + int64(size) - 1)
	return int((last-first)/XPLine) + 1
}

// DataStore is a sparse byte store over a 64-bit address space, allocating
// 4 KB pages on demand. It holds the durable contents of simulated memory.
// The zero value is ready to use.
type DataStore struct {
	pages map[int64]*[Page]byte
}

func (d *DataStore) page(addr int64, alloc bool) *[Page]byte {
	base := PageAddr(addr)
	p := d.pages[base]
	if p == nil && alloc {
		if d.pages == nil {
			d.pages = make(map[int64]*[Page]byte)
		}
		p = new([Page]byte)
		d.pages[base] = p
	}
	return p
}

// Write copies data into the store at addr.
func (d *DataStore) Write(addr int64, data []byte) {
	for len(data) > 0 {
		p := d.page(addr, true)
		off := int(addr - PageAddr(addr))
		n := copy(p[off:], data)
		data = data[n:]
		addr += int64(n)
	}
}

// Read copies len(buf) bytes at addr into buf. Unwritten bytes read as zero.
func (d *DataStore) Read(addr int64, buf []byte) {
	for len(buf) > 0 {
		off := int(addr - PageAddr(addr))
		n := Page - off
		if n > len(buf) {
			n = len(buf)
		}
		if p := d.page(addr, false); p != nil {
			copy(buf[:n], p[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		addr += int64(n)
	}
}

// Zero clears size bytes at addr.
func (d *DataStore) Zero(addr int64, size int) {
	var zeros [Page]byte
	for size > 0 {
		n := Page
		if n > size {
			n = size
		}
		d.Write(addr, zeros[:n])
		addr += int64(n)
		size -= n
	}
}

// Pages returns the number of resident pages (for tests and memory
// accounting).
func (d *DataStore) Pages() int { return len(d.pages) }
