package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"optanestudy/internal/sim"
)

func TestAlignment(t *testing.T) {
	if LineAddr(130) != 128 || LineAddr(128) != 128 || LineAddr(63) != 0 {
		t.Error("LineAddr broken")
	}
	if XPLineAddr(511) != 256 || XPLineAddr(256) != 256 {
		t.Error("XPLineAddr broken")
	}
	if PageAddr(8191) != 4096 {
		t.Error("PageAddr broken")
	}
}

func TestLinesIn(t *testing.T) {
	cases := []struct {
		addr int64
		size int
		want int
	}{
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{0, 0, 0},
		{64, 128, 2},
		{100, 1, 1},
	}
	for _, c := range cases {
		if got := LinesIn(c.addr, c.size); got != c.want {
			t.Errorf("LinesIn(%d, %d) = %d, want %d", c.addr, c.size, got, c.want)
		}
	}
	if XPLinesIn(255, 2) != 2 {
		t.Error("XPLinesIn straddle broken")
	}
	if XPLinesIn(0, 256) != 1 {
		t.Error("XPLinesIn exact broken")
	}
}

func TestDataStoreReadWrite(t *testing.T) {
	var d DataStore
	msg := []byte("hello, persistent world")
	d.Write(100, msg)
	got := make([]byte, len(msg))
	d.Read(100, got)
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestDataStoreCrossPage(t *testing.T) {
	var d DataStore
	data := make([]byte, 3*Page)
	for i := range data {
		data[i] = byte(i % 251)
	}
	d.Write(Page-100, data)
	got := make([]byte, len(data))
	d.Read(Page-100, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page roundtrip failed")
	}
	if d.Pages() != 4 {
		t.Fatalf("pages = %d, want 4", d.Pages())
	}
}

func TestDataStoreUnwrittenReadsZero(t *testing.T) {
	var d DataStore
	buf := []byte{1, 2, 3, 4}
	d.Read(1<<40, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten memory not zero")
		}
	}
}

func TestDataStoreZero(t *testing.T) {
	var d DataStore
	d.Write(0, bytes.Repeat([]byte{0xFF}, 2*Page))
	d.Zero(100, Page)
	buf := make([]byte, 2*Page)
	d.Read(0, buf)
	for i, b := range buf {
		in := i >= 100 && i < 100+Page
		if in && b != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
		if !in && b != 0xFF {
			t.Fatalf("byte %d clobbered", i)
		}
	}
}

// Property: random writes then reads round-trip, even with overlaps
// (later writes win).
func TestDataStoreQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		var d DataStore
		shadow := make(map[int64]byte)
		for i := 0; i < 200; i++ {
			addr := r.Int63n(3 * Page)
			n := 1 + r.Intn(300)
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(r.Uint64())
				shadow[addr+int64(j)] = data[j]
			}
			d.Write(addr, data)
		}
		buf := make([]byte, 1)
		for addr, want := range shadow {
			d.Read(addr, buf)
			if buf[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
