package pmemobj

import (
	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
)

// MicroBuf implements the "micro-buffering" technique (Section 5.2.1,
// after Pangolin): a transaction copies the persistent object into a DRAM
// buffer, the application mutates the buffer freely, and commit writes the
// whole object back under a pmem persist policy — non-temporal stores
// (PGL-NT), cached stores plus clwb (PGL-CLWB), or any other
// pmem.Policy via CommitPolicy, including Auto, which picks per the
// paper's 256 B guidance. The paper's Figure 15 finds the NT/CLWB
// crossover near 1 KB for this (cold-object) workload.
type MicroBuf struct {
	pool *Pool
	ctx  *platform.MemCtx
	off  int64
	buf  []byte
}

// WriteBackMode selects the commit instruction sequence (the paper's two
// named modes; CommitPolicy accepts the full policy set).
type WriteBackMode int

// Commit modes.
const (
	// NT writes the object back with non-temporal stores (PGL-NT).
	NT WriteBackMode = iota
	// CLWB writes back with cached stores + clwb (PGL-CLWB).
	CLWB
)

func (m WriteBackMode) String() string {
	if m == NT {
		return "PGL-NT"
	}
	return "PGL-CLWB"
}

// Policy maps the named mode onto the pmem policy it denotes.
func (m WriteBackMode) Policy() pmem.Policy {
	if m == NT {
		return pmem.NTStream
	}
	return pmem.StoreFlush
}

// OpenBuffered starts a micro-buffered transaction on the object at off:
// it reads the object into a volatile buffer and returns the handle.
func (p *Pool) OpenBuffered(ctx *platform.MemCtx, off int64, size int) *MicroBuf {
	mb := &MicroBuf{pool: p, ctx: ctx, off: off, buf: make([]byte, size)}
	// Bulk copy into DRAM: pipelined loads, then an untimed coherent copy
	// (the loads above already charged the transfer).
	p.reg.LoadStream(ctx, off, size)
	ctx.DrainLoads()
	p.reg.Peek(ctx, off, mb.buf)
	return mb
}

// Bytes exposes the volatile working copy.
func (mb *MicroBuf) Bytes() []byte { return mb.buf }

// Commit logs the object's old value (for atomicity) and writes the buffer
// back with the chosen mode, fencing once.
func (mb *MicroBuf) Commit(mode WriteBackMode) error {
	return mb.CommitPolicy(mode.Policy())
}

// CommitPolicy commits under an arbitrary pmem persist policy.
func (mb *MicroBuf) CommitPolicy(pol pmem.Policy) error {
	tx := mb.pool.Begin(mb.ctx)
	if err := tx.logEntry(mb.off, len(mb.buf)); err != nil {
		return err
	}
	w := pmem.NewPersister(pol)
	w.Write(mb.ctx, mb.pool.reg, mb.off, len(mb.buf), mb.buf)
	tx.done = true
	w.Fence(mb.ctx)
	var zero [8]byte
	mb.pool.meta.Persist(mb.ctx, mb.pool.reg, logOffset, len(zero), zero[:])
	return nil
}
