package pmemobj

import (
	"optanestudy/internal/platform"
)

// MicroBuf implements the "micro-buffering" technique (Section 5.2.1,
// after Pangolin): a transaction copies the persistent object into a DRAM
// buffer, the application mutates the buffer freely, and commit writes the
// whole object back — with either non-temporal stores (PGL-NT) or cached
// stores plus clwb (PGL-CLWB). The paper's Figure 15 finds the crossover
// between the two near 1 KB.
type MicroBuf struct {
	pool *Pool
	ctx  *platform.MemCtx
	off  int64
	buf  []byte
}

// WriteBackMode selects the commit instruction sequence.
type WriteBackMode int

// Commit modes.
const (
	// NT writes the object back with non-temporal stores (PGL-NT).
	NT WriteBackMode = iota
	// CLWB writes back with cached stores + clwb (PGL-CLWB).
	CLWB
)

func (m WriteBackMode) String() string {
	if m == NT {
		return "PGL-NT"
	}
	return "PGL-CLWB"
}

// OpenBuffered starts a micro-buffered transaction on the object at off:
// it reads the object into a volatile buffer and returns the handle.
func (p *Pool) OpenBuffered(ctx *platform.MemCtx, off int64, size int) *MicroBuf {
	mb := &MicroBuf{pool: p, ctx: ctx, off: off, buf: make([]byte, size)}
	// Bulk copy into DRAM: pipelined loads, then an untimed coherent copy
	// (the loads above already charged the transfer).
	ctx.LoadStream(p.ns, off, size)
	ctx.DrainLoads()
	ctx.Peek(p.ns, off, mb.buf)
	return mb
}

// Bytes exposes the volatile working copy.
func (mb *MicroBuf) Bytes() []byte { return mb.buf }

// Commit logs the object's old value (for atomicity) and writes the buffer
// back with the chosen mode, fencing once.
func (mb *MicroBuf) Commit(mode WriteBackMode) error {
	tx := mb.pool.Begin(mb.ctx)
	if err := tx.logEntry(mb.off, len(mb.buf)); err != nil {
		return err
	}
	switch mode {
	case NT:
		mb.ctx.NTStore(mb.pool.ns, mb.off, len(mb.buf), mb.buf)
	case CLWB:
		mb.ctx.Store(mb.pool.ns, mb.off, len(mb.buf), mb.buf)
		mb.ctx.CLWB(mb.pool.ns, mb.off, len(mb.buf))
	}
	tx.done = true
	mb.ctx.SFence()
	var zero [8]byte
	mb.ctx.PersistStore(mb.pool.ns, logOffset, len(zero), zero[:])
	return nil
}
