// Package pmemobj is a PMDK-libpmemobj-style persistent object library for
// the simulated platform: pools over pmem namespaces, a crash-consistent
// allocator, undo-log transactions, and the "micro-buffering" optimization
// the paper tunes in Section 5.2.1.
package pmemobj

import (
	"encoding/binary"
	"errors"
	"fmt"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
)

// Pool layout (offsets in bytes):
//
//	0    header: magic, version, root offset
//	4K   transaction log area (one per pool in this implementation)
//	64K  heap: blocks with 16-byte headers
const (
	headerSize = 4096
	logOffset  = headerSize
	logSize    = 60 * 1024
	heapOffset = logOffset + logSize

	poolMagic   = 0x504D4F424A313673 // "PMOBJ16s"
	headerRoot  = 16                 // root object offset field
	blockHeader = 16
)

// Block states in the persistent header.
const (
	blockFree  = 0xF1EE
	blockAlloc = 0xA110
)

// ErrCorrupt reports an unrecognized pool image.
var ErrCorrupt = errors.New("pmemobj: pool image corrupt")

// Pool is a persistent heap inside a namespace. Its persistence traffic
// goes through two pmem.Persister policies: meta (store+clwb — the small,
// cache-hot header/count/root updates) and log (non-temporal — the undo
// log's sequential entry stream), per the paper's instruction guidance.
type Pool struct {
	ns   *platform.Namespace
	reg  pmem.Region
	meta *pmem.Persister
	log  *pmem.Persister
	free map[int64]int64 // volatile free index: offset -> size
	head int64           // bump frontier
}

func attachPool(ns *platform.Namespace) *Pool {
	return &Pool{
		ns:   ns,
		reg:  pmem.Whole(ns),
		meta: pmem.NewPersister(pmem.StoreFlush),
		log:  pmem.NewPersister(pmem.NTStream),
		free: make(map[int64]int64),
		head: heapOffset,
	}
}

// Create formats a namespace as an empty pool. Formatting uses durable
// writes (mkfs-style, not timed).
func Create(ns *platform.Namespace) (*Pool, error) {
	if ns.Size < heapOffset+4096 {
		return nil, fmt.Errorf("pmemobj: namespace too small (%d bytes)", ns.Size)
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], poolMagic)
	binary.LittleEndian.PutUint64(hdr[8:], 1) // version
	binary.LittleEndian.PutUint64(hdr[16:], 0)
	ns.WriteDurable(0, hdr[:])
	var zero [8]byte
	ns.WriteDurable(logOffset, zero[:]) // empty undo log
	return attachPool(ns), nil
}

// Open attaches to an existing pool, running recovery: an interrupted
// transaction's undo log is rolled back, and the allocator index is rebuilt
// by scanning block headers.
func Open(ns *platform.Namespace) (*Pool, error) {
	var hdr [24]byte
	ns.ReadDurable(0, hdr[:])
	if binary.LittleEndian.Uint64(hdr[0:]) != poolMagic {
		return nil, ErrCorrupt
	}
	p := attachPool(ns)
	p.recoverLog()
	if err := p.rebuildHeap(); err != nil {
		return nil, err
	}
	return p, nil
}

// NS returns the backing namespace.
func (p *Pool) NS() *platform.Namespace { return p.ns }

// Region returns the pool's bounds-checked window (the whole namespace);
// stacks built on the pool do their own IO through it.
func (p *Pool) Region() pmem.Region { return p.reg }

// Root returns the root object offset (0 = unset).
func (p *Pool) Root(ctx *platform.MemCtx) int64 {
	var buf [8]byte
	p.reg.LoadInto(ctx, headerRoot, buf[:])
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

// SetRoot durably points the pool at its root object.
func (p *Pool) SetRoot(ctx *platform.MemCtx, off int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(off))
	p.meta.Persist(ctx, p.reg, headerRoot, len(buf), buf[:])
}

// align rounds a user size up to a multiple of 16 bytes.
func align(n int) int64 { return int64((n + 15) &^ 15) }

// Alloc obtains a block of at least size bytes, persisting its header.
// The returned offset points at the usable payload.
func (p *Pool) Alloc(ctx *platform.MemCtx, size int) (int64, error) {
	if size <= 0 {
		return 0, errors.New("pmemobj: bad allocation size")
	}
	want := align(size)
	// First fit from the volatile free index.
	for off, sz := range p.free {
		if sz >= want {
			delete(p.free, off)
			if sz > want+blockHeader+16 {
				// Split: register the remainder as a fresh free block.
				rest := off + blockHeader + want
				restSize := sz - want - blockHeader
				p.writeHeader(ctx, rest, restSize, blockFree)
				p.free[rest] = restSize
				sz = want
			}
			p.writeHeader(ctx, off, sz, blockAlloc)
			return off + blockHeader, nil
		}
	}
	// Bump allocation.
	off := p.head
	if off+blockHeader+want > p.ns.Size {
		return 0, errors.New("pmemobj: pool out of space")
	}
	p.head = off + blockHeader + want
	p.writeHeader(ctx, off, want, blockAlloc)
	return off + blockHeader, nil
}

// Free returns a block to the pool.
func (p *Pool) Free(ctx *platform.MemCtx, payload int64) {
	off := payload - blockHeader
	size, state := p.readHeaderDurable(off)
	if state != blockAlloc {
		panic(fmt.Sprintf("pmemobj: free of non-allocated block at %d", payload))
	}
	p.writeHeader(ctx, off, size, blockFree)
	p.free[off] = size
}

func (p *Pool) writeHeader(ctx *platform.MemCtx, off, size int64, state uint16) {
	var hdr [blockHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(size))
	binary.LittleEndian.PutUint16(hdr[8:], state)
	p.meta.Persist(ctx, p.reg, off, len(hdr), hdr[:])
}

func (p *Pool) readHeaderDurable(off int64) (size int64, state uint16) {
	var hdr [blockHeader]byte
	p.ns.ReadDurable(off, hdr[:])
	return int64(binary.LittleEndian.Uint64(hdr[0:])), binary.LittleEndian.Uint16(hdr[8:])
}

// rebuildHeap scans block headers to rebuild the free index and frontier.
func (p *Pool) rebuildHeap() error {
	off := int64(heapOffset)
	for off+blockHeader <= p.ns.Size {
		size, state := p.readHeaderDurable(off)
		if state == 0 && size == 0 {
			break // untouched frontier
		}
		switch state {
		case blockFree:
			p.free[off] = size
		case blockAlloc:
			// live block
		default:
			return fmt.Errorf("%w: block header at %d", ErrCorrupt, off)
		}
		if size <= 0 || off+blockHeader+size > p.ns.Size {
			return fmt.Errorf("%w: block size at %d", ErrCorrupt, off)
		}
		off += blockHeader + size
	}
	p.head = off
	return nil
}

// AllocUsable reports the bytes remaining for bump allocation (test hook).
func (p *Pool) AllocUsable() int64 { return p.ns.Size - p.head }
