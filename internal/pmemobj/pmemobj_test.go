package pmemobj

import (
	"bytes"
	"testing"
	"testing/quick"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/sim"
)

func newPool(t testing.TB) (*platform.Platform, *Pool) {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	ns, err := p.Optane("pool", 0, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := Create(ns)
	if err != nil {
		t.Fatal(err)
	}
	return p, pool
}

func run(p *platform.Platform, fn func(ctx *platform.MemCtx)) {
	p.Go("t", 0, fn)
	p.Run()
}

func TestPoolCreateOpen(t *testing.T) {
	p, pool := newPool(t)
	run(p, func(ctx *platform.MemCtx) {
		off, err := pool.Alloc(ctx, 100)
		if err != nil {
			t.Error(err)
		}
		pool.SetRoot(ctx, off)
	})
	reopened, err := Open(pool.NS())
	if err != nil {
		t.Fatal(err)
	}
	run(p, func(ctx *platform.MemCtx) {
		if reopened.Root(ctx) == 0 {
			t.Error("root lost after reopen")
		}
	})
}

func TestOpenRejectsGarbage(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	p := platform.MustNew(cfg)
	ns, _ := p.Optane("raw", 0, 1<<20)
	if _, err := Open(ns); err == nil {
		t.Fatal("opened an unformatted namespace")
	}
}

func TestAllocFreeReuse(t *testing.T) {
	p, pool := newPool(t)
	run(p, func(ctx *platform.MemCtx) {
		a, err := pool.Alloc(ctx, 256)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := pool.Alloc(ctx, 256)
		if a == b {
			t.Fatal("overlapping allocations")
		}
		pool.Free(ctx, a)
		c, _ := pool.Alloc(ctx, 200) // fits in a's block
		if c != a {
			t.Errorf("free block not reused: got %d, want %d", c, a)
		}
	})
}

func TestAllocSurvivesReopen(t *testing.T) {
	p, pool := newPool(t)
	var a, b int64
	run(p, func(ctx *platform.MemCtx) {
		a, _ = pool.Alloc(ctx, 128)
		b, _ = pool.Alloc(ctx, 128)
		pool.Free(ctx, a)
	})
	p.Crash()
	re, err := Open(pool.NS())
	if err != nil {
		t.Fatal(err)
	}
	run(p, func(ctx *platform.MemCtx) {
		// a's block is free again; a fresh alloc of the same size reuses it.
		c, _ := re.Alloc(ctx, 128)
		if c != a {
			t.Errorf("recovered allocator did not reuse freed block: %d vs %d", c, a)
		}
		d, _ := re.Alloc(ctx, 128)
		if d == b {
			t.Error("recovered allocator handed out a live block")
		}
	})
}

func TestAllocNonOverlapProperty(t *testing.T) {
	f := func(seed uint64) bool {
		pcfg := platform.DefaultConfig()
		pcfg.TrackData = true
		p := platform.MustNew(pcfg)
		ns, _ := p.Optane("pool", 0, 8<<20)
		pool, _ := Create(ns)
		ok := true
		run(p, func(ctx *platform.MemCtx) {
			r := sim.NewRNG(seed)
			type blk struct{ off, size int64 }
			var live []blk
			for i := 0; i < 150 && ok; i++ {
				if len(live) > 0 && r.Bool(0.35) {
					k := r.Intn(len(live))
					pool.Free(ctx, live[k].off)
					live = append(live[:k], live[k+1:]...)
					continue
				}
				size := 16 + r.Intn(800)
				off, err := pool.Alloc(ctx, size)
				if err != nil {
					continue
				}
				for _, l := range live {
					if off < l.off+l.size && l.off < off+int64(size) {
						ok = false
					}
				}
				live = append(live, blk{off, int64(size)})
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestTxCommitDurable(t *testing.T) {
	p, pool := newPool(t)
	var obj int64
	payload := bytes.Repeat([]byte{0x5A}, 200)
	run(p, func(ctx *platform.MemCtx) {
		obj, _ = pool.Alloc(ctx, 256)
		tx := pool.Begin(ctx)
		if err := tx.Update(obj, payload); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	p.Crash()
	got := make([]byte, len(payload))
	pool.NS().ReadDurable(obj, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("committed data lost")
	}
}

func TestTxAbortRestores(t *testing.T) {
	p, pool := newPool(t)
	before := bytes.Repeat([]byte{1}, 100)
	after := bytes.Repeat([]byte{2}, 100)
	run(p, func(ctx *platform.MemCtx) {
		obj, _ := pool.Alloc(ctx, 128)
		ctx.PersistStore(pool.NS(), obj, len(before), before)
		tx := pool.Begin(ctx)
		tx.Update(obj, after)
		tx.Abort()
		got := make([]byte, 100)
		ctx.LoadInto(pool.NS(), obj, got)
		if !bytes.Equal(got, before) {
			t.Error("abort did not restore old value")
		}
	})
}

// TestTxCrashAtomicity crashes the platform at every protocol stage —
// under every pmem persist policy for the in-place modifications — and
// checks that recovery always yields either the old or the new value,
// never a torn mix. Crash atomicity must not depend on the instruction
// sequence the data writes use.
func TestTxCrashAtomicity(t *testing.T) {
	stages := []string{"entry-logged", "count-bumped", "modified", "pre-truncate", "committed"}
	for _, pol := range pmem.Policies() {
		pol := pol
		for _, crashAt := range stages {
			crashAt := crashAt
			t.Run(pol.String()+"/"+crashAt, func(t *testing.T) {
				p, pool := newPool(t)
				oldVal := bytes.Repeat([]byte{0xAA}, 120)
				newVal := bytes.Repeat([]byte{0xBB}, 120)
				var obj int64
				run(p, func(ctx *platform.MemCtx) {
					obj, _ = pool.Alloc(ctx, 128)
					ctx.PersistStore(pool.NS(), obj, len(oldVal), oldVal)
				})
				type crashSignal struct{}
				run(p, func(ctx *platform.MemCtx) {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(crashSignal); !ok {
								panic(r)
							}
						}
					}()
					tx := pool.BeginPolicy(ctx, pol)
					tx.OnCrash = func(stage string) {
						if stage == crashAt {
							panic(crashSignal{})
						}
					}
					tx.Update(obj, newVal)
					tx.Commit()
				})
				p.Crash()
				re, err := Open(pool.NS())
				if err != nil {
					t.Fatal(err)
				}
				_ = re
				got := make([]byte, len(oldVal))
				pool.NS().ReadDurable(obj, got)
				isOld := bytes.Equal(got, oldVal)
				isNew := bytes.Equal(got, newVal)
				if !isOld && !isNew {
					t.Fatalf("torn object after crash at %q: %v", crashAt, got[:8])
				}
				if crashAt == "committed" && !isNew {
					t.Fatal("committed transaction rolled back")
				}
				if (crashAt == "entry-logged" || crashAt == "count-bumped") && !isOld {
					t.Fatal("uncommitted transaction left new data")
				}
			})
		}
	}
}

// TestTxPolicyEquivalentContents: a committed transaction leaves identical
// durable bytes no matter which persist policy carried its modifications.
func TestTxPolicyEquivalentContents(t *testing.T) {
	want := bytes.Repeat([]byte{0xC7, 0x11}, 90)
	for _, pol := range pmem.Policies() {
		p, pool := newPool(t)
		var obj int64
		run(p, func(ctx *platform.MemCtx) {
			obj, _ = pool.Alloc(ctx, 256)
			tx := pool.BeginPolicy(ctx, pol)
			if err := tx.Update(obj, want); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
		p.Crash()
		got := make([]byte, len(want))
		pool.NS().ReadDurable(obj, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: committed bytes differ", pol)
		}
	}
}

// TestMicroBufCommitPolicies: every policy-committed micro-buffer leaves
// the same durable object.
func TestMicroBufCommitPolicies(t *testing.T) {
	for _, pol := range pmem.Policies() {
		p, pool := newPool(t)
		var obj int64
		run(p, func(ctx *platform.MemCtx) {
			obj, _ = pool.Alloc(ctx, 512)
			init := bytes.Repeat([]byte{3}, 512)
			ctx.PersistStore(pool.NS(), obj, len(init), init)
			mb := pool.OpenBuffered(ctx, obj, 512)
			for i := range mb.Bytes() {
				mb.Bytes()[i] = byte(i)
			}
			if err := mb.CommitPolicy(pol); err != nil {
				t.Fatal(err)
			}
		})
		p.Crash()
		got := make([]byte, 512)
		pool.NS().ReadDurable(obj, got)
		for i, b := range got {
			if b != byte(i) {
				t.Fatalf("%s: byte %d = %d after commit", pol, i, b)
			}
		}
	}
}

// Property: multi-update transactions are all-or-nothing across random
// crash stages.
func TestTxMultiUpdateAtomicityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p, pool := newPool(t)
		r := sim.NewRNG(seed)
		const nObj = 4
		var objs [nObj]int64
		run(p, func(ctx *platform.MemCtx) {
			for i := range objs {
				objs[i], _ = pool.Alloc(ctx, 64)
				ctx.PersistStore(pool.NS(), objs[i], 8, []byte{0, 0, 0, 0, 0, 0, 0, 0})
			}
		})
		// Crash after a random number of protocol steps.
		steps := r.Intn(3*nObj + 2)
		type crashSignal struct{}
		run(p, func(ctx *platform.MemCtx) {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(crashSignal); !ok {
						panic(rec)
					}
				}
			}()
			tx := pool.Begin(ctx)
			n := 0
			tx.OnCrash = func(string) {
				n++
				if n == steps {
					panic(crashSignal{})
				}
			}
			for i := range objs {
				tx.Update(objs[i], []byte{9, 9, 9, 9, 9, 9, 9, 9})
			}
			tx.Commit()
		})
		p.Crash()
		if _, err := Open(pool.NS()); err != nil {
			return false
		}
		// All objects must agree: all old or all new.
		var states [nObj]byte
		for i := range objs {
			buf := make([]byte, 8)
			pool.NS().ReadDurable(objs[i], buf)
			states[i] = buf[0]
			if buf[0] != 0 && buf[0] != 9 {
				return false
			}
		}
		for i := 1; i < nObj; i++ {
			if states[i] != states[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestTxAllocRollsBackOnAbort(t *testing.T) {
	p, pool := newPool(t)
	run(p, func(ctx *platform.MemCtx) {
		tx := pool.Begin(ctx)
		off, err := tx.Alloc(300)
		if err != nil {
			t.Fatal(err)
		}
		tx.Abort()
		// The block is free again.
		again, _ := pool.Alloc(ctx, 300)
		if again != off {
			t.Errorf("aborted allocation not released: %d vs %d", again, off)
		}
	})
}

func TestMicroBufModes(t *testing.T) {
	p, pool := newPool(t)
	run(p, func(ctx *platform.MemCtx) {
		obj, _ := pool.Alloc(ctx, 1024)
		init := bytes.Repeat([]byte{7}, 1024)
		ctx.PersistStore(pool.NS(), obj, len(init), init)

		mb := pool.OpenBuffered(ctx, obj, 1024)
		if !bytes.Equal(mb.Bytes(), init) {
			t.Fatal("buffered copy wrong")
		}
		mb.Bytes()[10] = 42
		if err := mb.Commit(NT); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 1024)
		ctx.LoadInto(pool.NS(), obj, got)
		if got[10] != 42 {
			t.Fatal("NT commit lost update")
		}

		mb2 := pool.OpenBuffered(ctx, obj, 1024)
		mb2.Bytes()[20] = 43
		if err := mb2.Commit(CLWB); err != nil {
			t.Fatal(err)
		}
		ctx.LoadInto(pool.NS(), obj, got)
		if got[20] != 43 || got[10] != 42 {
			t.Fatal("CLWB commit lost update")
		}
	})
	p.Crash()
}

// MicroBufLatency measures the mean no-op-transaction latency for an
// object size and write-back mode: each transaction touches a fresh (cold)
// object at low load, like the paper's Figure 15 experiment.
func microBufLatency(t testing.TB, size int, mode WriteBackMode, iters int) float64 {
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	ns, err := p.Optane("pool", 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := Create(ns)
	if err != nil {
		t.Fatal(err)
	}
	var total sim.Time
	run(p, func(ctx *platform.MemCtx) {
		for i := 0; i < iters; i++ {
			obj, err := pool.Alloc(ctx, size)
			if err != nil {
				t.Fatal(err)
			}
			ctx.Proc().Sleep(10 * sim.Microsecond) // let queues drain
			start := ctx.Proc().Now()
			mb := pool.OpenBuffered(ctx, obj, size)
			if err := mb.Commit(mode); err != nil {
				t.Fatal(err)
			}
			total += ctx.Proc().Now() - start
		}
	})
	return total.Nanoseconds() / float64(iters)
}

// TestMicroBufCrossover verifies the Figure 15 claim: CLWB write-back wins
// for small objects, NT for large ones.
func TestMicroBufCrossover(t *testing.T) {
	smallNT := microBufLatency(t, 64, NT, 40)
	smallCLWB := microBufLatency(t, 64, CLWB, 40)
	bigNT := microBufLatency(t, 8192, NT, 40)
	bigCLWB := microBufLatency(t, 8192, CLWB, 40)
	if smallCLWB >= smallNT {
		t.Errorf("64B: CLWB (%.0f ns) should beat NT (%.0f ns)", smallCLWB, smallNT)
	}
	if bigNT >= bigCLWB {
		t.Errorf("8KB: NT (%.0f ns) should beat CLWB (%.0f ns)", bigNT, bigCLWB)
	}
}
