package pmemobj

import (
	"encoding/binary"
	"errors"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
)

// Undo-log transaction protocol (libpmemobj-style):
//
//  1. Before a range is modified, its old contents are appended to the
//     pool's log and persisted; then the entry count is bumped and
//     persisted (entries beyond the persisted count are garbage).
//  2. Modifications are applied in place through the transaction's data
//     persister (store+clwb by default; any pmem.Policy via BeginPolicy).
//  3. Commit persists all modifications, then zeroes the entry count.
//  4. Recovery (pool Open) applies valid undo entries newest-first and
//     zeroes the count, restoring pre-transaction state.
//
// Log layout: [8B count][entries...], entry = [8B off][8B len][old bytes,
// 16-byte aligned].
type Tx struct {
	pool *Pool
	ctx  *platform.MemCtx
	data *pmem.Persister // in-place modification policy

	logTail int64 // next free byte in the log area
	count   int64
	done    bool
	allocs  []int64 // payload offsets allocated in this tx (freed on abort)
	frees   []int64 // payload offsets freed at commit
	modMin  int64   // modified range for commit-time flush bookkeeping
	modMax  int64
	anyMods bool
	OnCrash func(stage string) // test hook: crash injection points
}

// ErrTxDone reports use of a finished transaction.
var ErrTxDone = errors.New("pmemobj: transaction already finished")

// Begin opens a transaction with the default store+clwb modification
// policy — the paper's pick for small in-place updates of cache-resident
// data. One transaction at a time per pool (the log area is
// single-streamed, like a PMDK pool per-thread lane).
func (p *Pool) Begin(ctx *platform.MemCtx) *Tx {
	return p.BeginPolicy(ctx, pmem.StoreFlush)
}

// BeginPolicy opens a transaction whose in-place modifications persist
// under the given policy. Crash atomicity holds for every policy (the undo
// log, not the modification sequence, carries it).
func (p *Pool) BeginPolicy(ctx *platform.MemCtx, pol pmem.Policy) *Tx {
	return &Tx{pool: p, ctx: ctx, data: pmem.NewPersister(pol), logTail: logOffset + 8}
}

func (t *Tx) crashPoint(stage string) {
	if t.OnCrash != nil {
		t.OnCrash(stage)
	}
}

// logEntry appends the old contents of [off, off+n) to the undo log.
func (t *Tx) logEntry(off int64, n int) error {
	need := int64(16) + align(n)
	if t.logTail+need > logOffset+logSize {
		return errors.New("pmemobj: transaction log full")
	}
	old := make([]byte, n)
	p := t.pool
	p.reg.LoadInto(t.ctx, off, old)

	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(off))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(n))
	p.log.Write(t.ctx, p.reg, t.logTail, len(hdr), hdr[:])
	p.log.Write(t.ctx, p.reg, t.logTail+16, len(old), old)
	p.log.Fence(t.ctx)
	t.crashPoint("entry-logged")

	t.logTail += need
	t.count++
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(t.count))
	p.meta.Persist(t.ctx, p.reg, logOffset, len(cnt), cnt[:])
	t.crashPoint("count-bumped")
	return nil
}

// Update transactionally overwrites [off, off+len(data)).
func (t *Tx) Update(off int64, data []byte) error {
	if t.done {
		return ErrTxDone
	}
	if err := t.logEntry(off, len(data)); err != nil {
		return err
	}
	t.data.Write(t.ctx, t.pool.reg, off, len(data), data)
	t.crashPoint("modified")
	if !t.anyMods || off < t.modMin {
		t.modMin = off
	}
	if end := off + int64(len(data)); !t.anyMods || end > t.modMax {
		t.modMax = end
	}
	t.anyMods = true
	return nil
}

// Alloc allocates inside the transaction; the block is released if the
// transaction aborts (or never commits before a crash — see Commit).
func (t *Tx) Alloc(size int) (int64, error) {
	if t.done {
		return 0, ErrTxDone
	}
	off, err := t.pool.Alloc(t.ctx, size)
	if err == nil {
		t.allocs = append(t.allocs, off)
	}
	return off, err
}

// Free schedules a block release at commit time.
func (t *Tx) Free(payload int64) error {
	if t.done {
		return ErrTxDone
	}
	t.frees = append(t.frees, payload)
	return nil
}

// Commit makes every update durable and atomic, then truncates the log.
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	// Updates were staged and flushed as they were made; one fence settles
	// them all.
	t.data.Fence(t.ctx)
	t.crashPoint("pre-truncate")
	var zero [8]byte
	t.pool.meta.Persist(t.ctx, t.pool.reg, logOffset, len(zero), zero[:])
	t.crashPoint("committed")
	for _, payload := range t.frees {
		t.pool.Free(t.ctx, payload)
	}
	return nil
}

// Abort rolls the transaction back in place.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	// Undo newest-first from the volatile view of the log.
	off := logOffset + int64(8)
	type entry struct {
		target int64
		data   []byte
	}
	var entries []entry
	for i := int64(0); i < t.count; i++ {
		var hdr [16]byte
		t.pool.reg.LoadInto(t.ctx, off, hdr[:])
		target := int64(binary.LittleEndian.Uint64(hdr[0:]))
		n := int64(binary.LittleEndian.Uint64(hdr[8:]))
		old := make([]byte, n)
		t.pool.reg.LoadInto(t.ctx, off+16, old)
		entries = append(entries, entry{target, old})
		off += 16 + align(int(n))
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		t.pool.meta.Persist(t.ctx, t.pool.reg, e.target, len(e.data), e.data)
	}
	var zero [8]byte
	t.pool.meta.Persist(t.ctx, t.pool.reg, logOffset, len(zero), zero[:])
	for _, payload := range t.allocs {
		t.pool.Free(t.ctx, payload)
	}
	return nil
}

// recoverLog rolls back an interrupted transaction using only durable
// state. Called from Open before any new activity.
func (p *Pool) recoverLog() {
	var cnt [8]byte
	p.ns.ReadDurable(logOffset, cnt[:])
	count := int64(binary.LittleEndian.Uint64(cnt[:]))
	if count == 0 {
		return
	}
	off := logOffset + int64(8)
	type entry struct {
		target int64
		data   []byte
	}
	var entries []entry
	for i := int64(0); i < count; i++ {
		var hdr [16]byte
		p.ns.ReadDurable(off, hdr[:])
		target := int64(binary.LittleEndian.Uint64(hdr[0:]))
		n := int64(binary.LittleEndian.Uint64(hdr[8:]))
		if n <= 0 || n > logSize || target < 0 || target+n > p.ns.Size {
			break // trailing garbage past the last valid entry
		}
		old := make([]byte, n)
		p.ns.ReadDurable(off+16, old)
		entries = append(entries, entry{target, old})
		off += 16 + align(int(n))
	}
	for i := len(entries) - 1; i >= 0; i-- {
		p.ns.WriteDurable(entries[i].target, entries[i].data)
	}
	var zero [8]byte
	p.ns.WriteDurable(logOffset, zero[:])
}
