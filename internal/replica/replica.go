// Package replica pairs each shard's primary with a standby on a
// distinct (socket, DIMM-set) placement and keeps the standby current by
// shipping the primary's logged PUTs onto the standby's own append log.
//
// The wire format IS the log format: a shipment is a pmem.Appender group
// commit (Begin / Add / Commit) on the standby's per-worker appenders —
// the same 4-byte frames, zero padding and 64-byte commit record the
// serving side's group commit writes, so promotion recovery and
// crash-consistency testing reuse pmem.RecoverBatches unchanged. Ship
// traffic pays real simulated cost: non-temporal writes plus a fence on
// the standby's DIMMs, remote over UPI when the shipping worker sits on
// another socket, competing with serving traffic for the same bandwidth.
//
// Replication is synchronous while the standby is synced: a logged PUT
// completes only after its shipment's fence retires. A shipment torn by
// a primary crash was therefore never acknowledged, so discarding it at
// promotion (RecoverBatches stops at the first non-verifying frame) is
// exactly the durability contract — a promoted standby serves every
// acknowledged write. Writes acknowledged while the standby was detached
// (churn) are the deliberate exception; promotion counts them as
// Stats.LostRecs.
//
// The primary also buffers every logged PUT since run start in a
// volatile DRAM arena (flat byte buffer, no per-record allocation): the
// send history. A standby that rejoins clean resumes shipping from its
// durable prefix; one that rejoins dirty (it served as primary and its
// log holds raw serving appends) is truncated — the log region is reused
// in place, never reallocated — and the whole history is reshipped in
// costed group commits. Replayed PUTs are idempotent overwrites, so
// reshipping from record zero is always consistent.
package replica

import (
	"fmt"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/service"
)

// Node is one slot of a replicated shard pair: a preloaded backend, the
// node's append log — the serving write-behind log while the node is
// primary, the shipment receive log while it is standby — and the socket
// the node's storage lives on. The pair swaps roles at promotion; no
// node is ever built mid-run.
type Node struct {
	Backend service.Backend
	Log     *service.AppendLog
	Socket  int
}

// Stats is one pair's cumulative replication outcome.
type Stats struct {
	// ShipBatches / ShipRecs / ShipBytes count everything shipped onto a
	// standby log: synchronous per-op and per-group shipments plus
	// catch-up reshipments (bytes include the 8-byte record header).
	ShipBatches, ShipRecs, ShipBytes int64
	// Failovers counts promotions. ReplayBatches / ReplayRecs are what
	// the promotion walk recovered from the shipped stream; LostRecs the
	// history records NOT recovered — writes acknowledged while the
	// standby was detached, plus any in-flight-at-crash records (never
	// acknowledged) discarded with the torn tail.
	Failovers, ReplayBatches, ReplayRecs, LostRecs int64
	// Leaves / Joins count standby churn; CatchupRecs the records
	// reshipped by Join to bring a stale or rebuilt standby current.
	Leaves, Joins, CatchupRecs int64
}

// recMeta locates one record inside the history arena: the record's
// bytes are hbuf[off:next off], split at klen, destined for worker wkr's
// log stream.
type recMeta struct {
	off  int64
	klen int32
	wkr  int32
}

// catchupBatch is how many records a Join reships per group commit: big
// enough to amortize the fence, small enough that serving traffic
// interleaves with the catch-up stream at fence granularity.
const catchupBatch = 64

// Pair is one shard's primary/standby pair. Procs run one at a time
// under the sim's cooperative scheduler, so no locking.
type Pair struct {
	shard   int
	workers int
	nodes   [2]Node
	pri     int // index of the current primary
	// attached: the standby is accepting shipments. synced: it holds the
	// full history, so logged PUTs ship synchronously inside the serving
	// op (attached && !synced means a catch-up is in flight).
	attached bool
	synced   bool
	// dirty marks a node's log as holding non-shipment-era content (raw
	// serving appends from a stint as primary); Join truncates it before
	// the node re-enters as standby.
	dirty [2]bool
	// shipped is the length of the history prefix on the current
	// standby's log.
	shipped int
	// shipTo pins worker w's open ship batch to the log it began on, so
	// a role change between BatchBegin and BatchCommit still seals the
	// batch on the log that staged it.
	shipTo []*service.AppendLog

	// history: the volatile send buffer (see package doc).
	hbuf []byte
	hrec []recMeta

	stats Stats
}

// NewPair builds a replicated shard: primary serves, standby is attached
// and synced (both start empty, so an empty history is fully shipped).
// Both nodes need a backend and at least `workers` per-worker log
// streams.
func NewPair(shard, workers int, primary, standby Node) (*Pair, error) {
	if workers < 1 {
		return nil, fmt.Errorf("replica: shard %d needs at least one worker stream", shard)
	}
	nodes := [2]Node{primary, standby}
	for i, n := range nodes {
		if n.Backend == nil || n.Log == nil {
			return nil, fmt.Errorf("replica: shard %d node %d lacks a backend or log", shard, i)
		}
		if n.Log.Workers() < workers {
			return nil, fmt.Errorf("replica: shard %d node %d has %d log streams, need %d",
				shard, i, n.Log.Workers(), workers)
		}
	}
	p := &Pair{
		shard: shard, workers: workers, nodes: nodes,
		attached: true, synced: true,
		shipTo: make([]*service.AppendLog, workers),
	}
	p.dirty[0] = true // the primary's log takes raw serving appends
	return p, nil
}

// Stats returns the pair's cumulative counters.
func (p *Pair) Stats() Stats { return p.stats }

// Primary returns the current primary's node index (0 at start).
func (p *Pair) Primary() int { return p.pri }

// Attached and Synced expose the standby's state (for tests and
// scenario assertions).
func (p *Pair) Attached() bool { return p.attached }
func (p *Pair) Synced() bool   { return p.synced }

// StandbySocket is the socket the standby slot's storage lives on —
// where promotion replay and catch-up shipping run.
func (p *Pair) StandbySocket() int { return p.nodes[1-p.pri].Socket }

// HistoryLen returns how many logged PUTs the send history holds.
func (p *Pair) HistoryLen() int { return len(p.hrec) }

func (p *Pair) standby() *Node { return &p.nodes[1-p.pri] }

// bufRecord appends one record to the history arena.
func (p *Pair) bufRecord(w int, key, val []byte) {
	p.hrec = append(p.hrec, recMeta{off: int64(len(p.hbuf)), klen: int32(len(key)), wkr: int32(w)})
	p.hbuf = append(p.hbuf, key...)
	p.hbuf = append(p.hbuf, val...)
}

// histRecord returns history record i. The slices alias the arena; they
// are only valid until the next sim-time advance lets the primary append
// (callers copy them into a volatile batch mirror first, which Add does
// without advancing time).
func (p *Pair) histRecord(i int) (w int, key, val []byte) {
	m := p.hrec[i]
	end := int64(len(p.hbuf))
	if i+1 < len(p.hrec) {
		end = p.hrec[i+1].off
	}
	rec := p.hbuf[m.off:end]
	return int(m.wkr), rec[:m.klen:m.klen], rec[m.klen:]
}

// Record mirrors one unbatched logged PUT: buffer it in the history and,
// when the standby is synced, ship it synchronously as a batch-of-one
// group commit on the standby's worker-w log stream.
func (p *Pair) Record(ctx *platform.MemCtx, w int, key, val []byte) error {
	p.bufRecord(w, key, val)
	if !p.attached || !p.synced {
		return nil
	}
	sl := p.standby().Log
	sl.Begin(w)
	if err := sl.Add(ctx, w, key, val); err != nil {
		return err
	}
	if err := sl.Commit(ctx, w); err != nil {
		return err
	}
	p.shipped++
	p.stats.ShipBatches++
	p.stats.ShipRecs++
	p.stats.ShipBytes += int64(8 + len(key) + len(val))
	return nil
}

// BatchBegin mirrors a serving group commit's Begin: when the standby is
// synced, a ship batch opens on its worker-w stream and stays pinned to
// that log until BatchCommit seals it.
func (p *Pair) BatchBegin(w int) {
	if p.attached && p.synced {
		sl := p.standby().Log
		sl.Begin(w)
		p.shipTo[w] = sl
	}
}

// BatchAdd buffers one batched logged PUT in the history and stages it
// on worker w's open ship batch (volatile — nothing reaches the
// standby's media until BatchCommit streams the group).
func (p *Pair) BatchAdd(ctx *platform.MemCtx, w int, key, val []byte) error {
	p.bufRecord(w, key, val)
	sl := p.shipTo[w]
	if sl == nil {
		return nil
	}
	if err := sl.Add(ctx, w, key, val); err != nil {
		return err
	}
	p.shipped++
	p.stats.ShipRecs++
	p.stats.ShipBytes += int64(8 + len(key) + len(val))
	return nil
}

// BatchCommit seals worker w's open ship batch with one fence on the
// standby's DIMMs. It commits on the log the batch began on even if the
// standby detached or the pair promoted mid-batch — the staged frames
// must not be left as an open batch on a live appender.
func (p *Pair) BatchCommit(ctx *platform.MemCtx, w int) error {
	sl := p.shipTo[w]
	if sl == nil {
		return nil
	}
	p.shipTo[w] = nil
	p.stats.ShipBatches++
	return sl.Commit(ctx, w)
}

// Promote fails the shard over to its standby: walk the shipped stream
// with RecoverBatches (discarding any torn — and therefore never
// acknowledged — trailing shipment), replay the recovered records into
// the standby's backend as costed Puts, swap roles, and return the new
// primary's backend and log. The dead primary becomes a dirty spare; the
// send history is rebuilt from exactly the replayed set, so future
// catch-ups ship what the new primary actually holds.
func (p *Pair) Promote(ctx *platform.MemCtx) (service.Backend, *service.AppendLog, error) {
	si := 1 - p.pri
	if p.dirty[si] {
		return nil, nil, fmt.Errorf("replica: shard %d has no viable standby (spare crashed before rejoining)", p.shard)
	}
	if p.attached && !p.synced {
		return nil, nil, fmt.Errorf("replica: shard %d crashed mid-catch-up; promotion needs a synced or cleanly detached standby", p.shard)
	}
	s := p.standby()
	var (
		nbuf []byte
		nrec []recMeta
		rerr error
	)
	for w := 0; w < p.workers; w++ {
		a := s.Log.Appender(w)
		if a.Wraps() > 0 {
			return nil, nil, fmt.Errorf("replica: shard %d ship stream wrapped on worker %d; recovery covers the unwrapped era (size the log region for the run's put volume)", p.shard, w)
		}
		b, r := pmem.RecoverBatches(a.Region(), func(rec []byte) {
			if rerr != nil {
				return
			}
			key, val, err := service.DecodeRecord(rec)
			if err != nil {
				rerr = err
				return
			}
			if err := s.Backend.Put(ctx, key, val); err != nil {
				rerr = err
				return
			}
			nrec = append(nrec, recMeta{off: int64(len(nbuf)), klen: int32(len(key)), wkr: int32(w)})
			nbuf = append(nbuf, rec[8:]...)
		})
		if rerr != nil {
			return nil, nil, rerr
		}
		p.stats.ReplayBatches += int64(b)
		p.stats.ReplayRecs += int64(r)
	}
	p.stats.LostRecs += int64(len(p.hrec) - len(nrec))
	p.hbuf, p.hrec = nbuf, nrec
	p.stats.Failovers++
	p.dirty[p.pri] = true // the dead primary's log holds raw serving appends
	p.pri = si
	p.attached, p.synced, p.shipped = false, false, 0
	return s.Backend, s.Log, nil
}

// Leave detaches the standby: shipping stops, the primary keeps
// buffering history, and acknowledged writes start accruing replication
// debt (LostRecs if the primary dies before the standby rejoins).
func (p *Pair) Leave() {
	p.attached, p.synced = false, false
	p.stats.Leaves++
}

// Join (re)attaches the standby slot and catches it up. A dirty spare is
// truncated first — every worker stream durably zeroed in place, paying
// real erase bandwidth on the standby's DIMMs — then the missing history
// suffix ships in costed group commits until the stream drains (the
// primary keeps serving meanwhile, so the loop chases the history's
// tail). Returns with the standby synced and synchronous shipping
// resumed.
func (p *Pair) Join(ctx *platform.MemCtx) error {
	if p.attached {
		return fmt.Errorf("replica: shard %d join with the standby already attached", p.shard)
	}
	si := 1 - p.pri
	s := &p.nodes[si]
	if p.dirty[si] {
		for w := 0; w < p.workers; w++ {
			if err := s.Log.Appender(w).Truncate(ctx); err != nil {
				return err
			}
		}
		p.dirty[si] = false
		p.shipped = 0
	}
	p.attached = true
	p.stats.Joins++
	opened := make([]bool, p.workers)
	for p.shipped < len(p.hrec) {
		end := p.shipped + catchupBatch
		if end > len(p.hrec) {
			end = len(p.hrec)
		}
		for i := range opened {
			opened[i] = false
		}
		for i := p.shipped; i < end; i++ {
			w, key, val := p.histRecord(i)
			if !opened[w] {
				s.Log.Begin(w)
				opened[w] = true
			}
			if err := s.Log.Add(ctx, w, key, val); err != nil {
				return err
			}
			p.stats.ShipBytes += int64(8 + len(key) + len(val))
		}
		for w, open := range opened {
			if !open {
				continue
			}
			if err := s.Log.Commit(ctx, w); err != nil {
				return err
			}
			p.stats.ShipBatches++
		}
		n := int64(end - p.shipped)
		p.stats.ShipRecs += n
		p.stats.CatchupRecs += n
		p.shipped = end
	}
	p.synced = true
	return nil
}
