package replica

import (
	"bytes"
	"testing"

	"optanestudy/internal/platform"
	"optanestudy/internal/service"
)

const (
	testKeys    = 64
	testKeySize = 16
	testValSize = 64
	testWorkers = 2
)

// testPair builds a two-node pair: node 0 (initial primary) on socket 0,
// node 1 (standby) on socket 1, each with its own backend and per-worker
// log streams.
func testPair(t *testing.T) (*platform.Platform, *Pair) {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	t.Cleanup(p.Close)
	mk := func(prefix string, socket int) Node {
		be, err := service.NewBackend(p, "pmemkv", service.BackendSpec{
			Media: "optane", Socket: socket, NamePrefix: prefix,
			Keys: testKeys, KeySize: testKeySize, ValSize: testValSize,
			PMBytes: 8 << 20, DRAMBytes: 4 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		lg, err := service.NewAppendLog(p, service.BackendSpec{
			Media: "optane", Socket: socket, NamePrefix: prefix + "l",
			PMBytes: 4 << 20,
		}, testWorkers, 256<<10)
		if err != nil {
			t.Fatal(err)
		}
		return Node{Backend: be, Log: lg, Socket: socket}
	}
	prim, stby := mk("prim", 0), mk("stby", 1)
	pair, err := NewPair(0, testWorkers, prim, stby)
	if err != nil {
		t.Fatal(err)
	}
	return p, pair
}

// record ships key id via the unbatched path with a value distinct from
// the preload, so promotion correctness is observable through Get.
func record(t *testing.T, ctx *platform.MemCtx, pair *Pair, id int64) {
	t.Helper()
	key := service.KeyFor(id, testKeySize)
	val := service.ValFor(id+1000, testValSize)
	if err := pair.Record(ctx, int(id)%testWorkers, key, val); err != nil {
		t.Error(err)
	}
}

func checkReplayed(t *testing.T, ctx *platform.MemCtx, be service.Backend, ids ...int64) {
	t.Helper()
	for _, id := range ids {
		got, ok := be.Get(ctx, service.KeyFor(id, testKeySize))
		if !ok {
			t.Fatalf("key %d missing from promoted backend", id)
		}
		if want := service.ValFor(id+1000, testValSize); !bytes.Equal(got, want) {
			t.Fatalf("key %d: promoted backend serves the preload value, not the replicated write", id)
		}
	}
}

// Synchronous shipping followed by promotion: the promoted standby must
// serve every acknowledged write, the roles must swap, and the dead
// primary must be unusable until it rejoins.
func TestShipAndPromote(t *testing.T) {
	p, pair := testPair(t)
	stby := pair.nodes[1]
	p.Go("drive", 0, func(ctx *platform.MemCtx) {
		for id := int64(0); id < 10; id++ {
			record(t, ctx, pair, id)
		}
		st := pair.Stats()
		if st.ShipRecs != 10 || st.ShipBatches != 10 || st.ShipBytes == 0 {
			t.Errorf("ship stats = %+v, want 10 recs / 10 batches", st)
		}
		be, plog, err := pair.Promote(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		if be != stby.Backend || plog != stby.Log {
			t.Error("promotion did not hand back the standby's backend and log")
		}
		if pair.Primary() != 1 || pair.Attached() || pair.Synced() {
			t.Error("post-promotion role state wrong")
		}
		st = pair.Stats()
		if st.Failovers != 1 || st.ReplayRecs != 10 || st.LostRecs != 0 {
			t.Errorf("promotion stats = %+v, want 1 failover / 10 replayed / 0 lost", st)
		}
		checkReplayed(t, ctx, be, 0, 5, 9)
		// The dead primary never rejoined: a second crash has no standby.
		if _, _, err := pair.Promote(ctx); err == nil {
			t.Error("promotion onto a dirty un-joined spare accepted")
		}
	})
	p.Run()
}

// crashSentinel unwinds the shipping thread mid-commit.
type crashSentinel struct{}

// A shipment torn mid-stream (the primary dies inside the ship commit)
// was never fenced and never acknowledged: promotion must replay exactly
// the committed shipments and count the torn batch as lost.
func TestTornShipmentDiscarded(t *testing.T) {
	p, pair := testPair(t)
	p.Go("drive", 0, func(ctx *platform.MemCtx) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashSentinel); !ok {
					panic(r)
				}
			}
		}()
		// Two clean group shipments of two records each, all on worker 0.
		for b := int64(0); b < 2; b++ {
			pair.BatchBegin(0)
			for i := int64(0); i < 2; i++ {
				id := b*2 + i
				if err := pair.BatchAdd(ctx, 0, service.KeyFor(id, testKeySize), service.ValFor(id+1000, testValSize)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := pair.BatchCommit(ctx, 0); err != nil {
				t.Error(err)
				return
			}
		}
		// Third shipment tears mid-payload-stream.
		pair.standby().Log.Appender(0).CrashHook = func(stage string) {
			if stage == "partial" {
				panic(crashSentinel{})
			}
		}
		pair.BatchBegin(0)
		for i := int64(4); i < 7; i++ {
			if err := pair.BatchAdd(ctx, 0, service.KeyFor(i, testKeySize), service.ValFor(i+1000, testValSize)); err != nil {
				t.Error(err)
				return
			}
		}
		_ = pair.BatchCommit(ctx, 0) // panics at the "partial" stage
		t.Error("crash hook never fired")
	})
	p.Run()
	pair.standby().Log.Appender(0).CrashHook = nil
	p.Go("recover", 1, func(ctx *platform.MemCtx) {
		be, _, err := pair.Promote(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		st := pair.Stats()
		if st.ReplayBatches != 2 || st.ReplayRecs != 4 || st.LostRecs != 3 {
			t.Errorf("torn-shipment stats = %+v, want 2 batches / 4 recs replayed, 3 lost", st)
		}
		checkReplayed(t, ctx, be, 0, 3)
		// The torn shipment's writes must NOT have been replayed: key 4
		// still serves its preload value.
		got, ok := be.Get(ctx, service.KeyFor(4, testKeySize))
		if !ok {
			t.Fatal("key 4 missing")
		}
		if bytes.Equal(got, service.ValFor(4+1000, testValSize)) {
			t.Error("torn (never-acknowledged) shipment was replayed")
		}
	})
	p.Run()
}

// Leave/Join churn: writes acknowledged while the standby is away buffer
// in the send history and Join reships them; after catch-up the standby
// is promotable with zero loss.
func TestLeaveJoinCatchup(t *testing.T) {
	p, pair := testPair(t)
	p.Go("drive", 0, func(ctx *platform.MemCtx) {
		for id := int64(0); id < 3; id++ {
			record(t, ctx, pair, id)
		}
		pair.Leave()
		for id := int64(3); id < 7; id++ {
			record(t, ctx, pair, id)
		}
		if st := pair.Stats(); st.ShipRecs != 3 {
			t.Errorf("detached standby still shipped (%d recs)", st.ShipRecs)
		}
		if err := pair.Join(ctx); err != nil {
			t.Error(err)
			return
		}
		st := pair.Stats()
		if st.CatchupRecs != 4 || st.ShipRecs != 7 || st.Leaves != 1 || st.Joins != 1 {
			t.Errorf("catch-up stats = %+v, want 4 catch-up / 7 shipped", st)
		}
		if !pair.Synced() {
			t.Error("standby not synced after join")
		}
		record(t, ctx, pair, 7) // synchronous shipping resumed
		if st := pair.Stats(); st.ShipRecs != 8 {
			t.Errorf("post-join record did not ship (%d recs)", st.ShipRecs)
		}
		be, _, err := pair.Promote(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		if st := pair.Stats(); st.LostRecs != 0 || st.ReplayRecs != 8 {
			t.Errorf("post-catch-up promotion stats = %+v, want 8 replayed / 0 lost", st)
		}
		checkReplayed(t, ctx, be, 0, 3, 6, 7)
	})
	p.Run()
}

// Promotion while the standby is detached loses exactly the unreplicated
// suffix — the churn-exposure story the failover scenarios measure.
func TestDetachedPromotionCountsLoss(t *testing.T) {
	p, pair := testPair(t)
	p.Go("drive", 0, func(ctx *platform.MemCtx) {
		for id := int64(0); id < 4; id++ {
			record(t, ctx, pair, id)
		}
		pair.Leave()
		for id := int64(4); id < 9; id++ {
			record(t, ctx, pair, id)
		}
		if _, _, err := pair.Promote(ctx); err != nil {
			t.Error(err)
			return
		}
		st := pair.Stats()
		if st.ReplayRecs != 4 || st.LostRecs != 5 {
			t.Errorf("detached promotion stats = %+v, want 4 replayed / 5 lost", st)
		}
		if pair.HistoryLen() != 4 {
			t.Errorf("history holds %d records, want the 4 the new primary serves", pair.HistoryLen())
		}
	})
	p.Run()
}

// A full crash → rejoin → crash-back cycle: the dirty spare's log is
// truncated in place, the whole history reships, and the pair fails back
// onto the original node with zero loss.
func TestCrashJoinCrashCycle(t *testing.T) {
	p, pair := testPair(t)
	p.Go("drive", 0, func(ctx *platform.MemCtx) {
		for id := int64(0); id < 5; id++ {
			record(t, ctx, pair, id)
		}
		if _, _, err := pair.Promote(ctx); err != nil {
			t.Error(err)
			return
		}
		// Node 1 serves; node 0 is a dirty spare. More writes accrue.
		for id := int64(5); id < 8; id++ {
			record(t, ctx, pair, id)
		}
		if err := pair.Join(ctx); err != nil {
			t.Error(err)
			return
		}
		st := pair.Stats()
		if st.CatchupRecs != 8 {
			t.Errorf("rebuilt spare caught up %d records, want the full 8-record history", st.CatchupRecs)
		}
		be, _, err := pair.Promote(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		if pair.Primary() != 0 {
			t.Errorf("failback primary = %d, want node 0", pair.Primary())
		}
		if st := pair.Stats(); st.Failovers != 2 || st.LostRecs != 0 {
			t.Errorf("cycle stats = %+v, want 2 failovers / 0 lost", st)
		}
		checkReplayed(t, ctx, be, 0, 4, 7)
		// Node 1 rejoins as standby; a second join is misuse.
		if err := pair.Join(ctx); err != nil {
			t.Error(err)
			return
		}
		if err := pair.Join(ctx); err == nil {
			t.Error("join with an attached standby accepted")
		}
	})
	p.Run()
}
