package imc

import (
	"testing"

	"optanestudy/internal/dimm"
	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
)

func newXP() *dimm.XPDIMM {
	cfg := dimm.DefaultXPConfig()
	cfg.Wear.Enabled = false
	return dimm.NewXPDIMM(cfg)
}

func TestChannelReadAddsBusTime(t *testing.T) {
	ch := NewChannel(DefaultChannelConfig())
	d := dimm.NewDRAMDIMM(dimm.DefaultDRAMConfig())
	done := ch.Read(0, d, 0)
	// Row miss 41ns + bus 3.5ns.
	if done != 44500*sim.Picosecond {
		t.Fatalf("read completion = %v", done)
	}
}

func TestChannelWriteAcceptanceIsImmediateWhenEmpty(t *testing.T) {
	ch := NewChannel(DefaultChannelConfig())
	d := newXP()
	acc, drain := ch.PostWrite(100*sim.Nanosecond, d, 0)
	if acc != 100*sim.Nanosecond {
		t.Fatalf("acceptance = %v, want immediate", acc)
	}
	if drain <= acc {
		t.Fatalf("drain %v must follow acceptance %v", drain, acc)
	}
}

func TestChannelWPQBackpressure(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.WPQEntries = 4
	ch := NewChannel(cfg)
	d := newXP()
	// Flood random 64 B writes: each is a 256 B media RMW, so the WPQ
	// fills and acceptance times fall behind the post times.
	var blocked bool
	r := sim.NewRNG(1)
	for i := 0; i < 200; i++ {
		acc, _ := ch.PostWrite(sim.Time(i)*sim.Nanosecond, d, r.Int63n(1<<30)&^63)
		if acc > sim.Time(i)*sim.Nanosecond {
			blocked = true
		}
	}
	if !blocked {
		t.Fatal("WPQ never exerted backpressure under flood")
	}
}

func TestChannelFIFODrainMonotone(t *testing.T) {
	ch := NewChannel(DefaultChannelConfig())
	d := newXP()
	var last sim.Time
	r := sim.NewRNG(2)
	for i := 0; i < 500; i++ {
		_, drain := ch.PostWrite(sim.Time(i*10)*sim.Nanosecond, d, r.Int63n(1<<28)&^63)
		if drain < last {
			t.Fatalf("drain went backwards: %v after %v", drain, last)
		}
		last = drain
	}
}

func TestChannelPerDIMMWPQs(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.WPQEntries = 2
	ch := NewChannel(cfg)
	slow := newXP()
	fast := dimm.NewDRAMDIMM(dimm.DefaultDRAMConfig())
	// Fill the slow DIMM's WPQ.
	r := sim.NewRNG(3)
	for i := 0; i < 50; i++ {
		ch.PostWrite(0, slow, r.Int63n(1<<30)&^63)
	}
	// The fast DIMM's queue must still accept promptly (separate WPQ),
	// though it shares the bus.
	acc, _ := ch.PostWrite(0, fast, 0)
	if acc > 10*sim.Microsecond {
		t.Fatalf("fast DIMM acceptance = %v; WPQs must be per-DIMM", acc)
	}
}

func TestChannelThroughputBoundedByMedia(t *testing.T) {
	ch := NewChannel(DefaultChannelConfig())
	d := newXP()
	// Sequential stream, posted as fast as acceptance allows.
	var tm sim.Time
	total := int64(4 << 20)
	for off := int64(0); off < total; off += mem.CacheLine {
		acc, _ := ch.PostWrite(tm, d, off)
		tm = acc
	}
	gbs := float64(total) / tm.Seconds() / 1e9
	// Media write ceiling is 256B/100ns = 2.56 GB/s.
	if gbs > 2.7 || gbs < 1.8 {
		t.Fatalf("sustained sequential write bandwidth = %.2f GB/s, want ~2.4", gbs)
	}
	if ewr := d.Counters().EWR(); ewr < 0.95 {
		t.Fatalf("sequential EWR through channel = %.3f", ewr)
	}
}

func TestChannelBusSharedBetweenDIMMs(t *testing.T) {
	ch := NewChannel(DefaultChannelConfig())
	a := dimm.NewDRAMDIMM(dimm.DefaultDRAMConfig())
	// Saturate the bus with back-to-back reads at the same instant; they
	// must serialize on the bus.
	t1 := ch.Read(0, a, 0)
	t2 := ch.Read(0, a, 64)
	if t2 <= t1 {
		t.Fatalf("bus must serialize responses: %v then %v", t1, t2)
	}
	if ch.BusBusy() != 7*sim.Nanosecond {
		t.Fatalf("bus busy = %v, want 7ns", ch.BusBusy())
	}
}
