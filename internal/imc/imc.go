// Package imc models the processor's integrated memory controller: one
// Channel per memory channel, each with a shared data bus and an
// ADR-protected write pending queue (WPQ).
//
// Stores become persistent the moment they are accepted into the WPQ
// (Section 2.1.1: the ADR domain includes the WPQs but not the caches), so
// Channel.PostWrite returns both the acceptance time — what sfence waits
// for — and the drain time at which the entry's slot frees.
package imc

import (
	"optanestudy/internal/dimm"
	"optanestudy/internal/sim"
)

// ChannelConfig holds per-channel timing and queue parameters.
type ChannelConfig struct {
	// BusTime is the data-bus occupancy of one 64 B transfer
	// (≈3.5 ns → ~18 GB/s per channel).
	BusTime sim.Time
	// WPQEntries is the write pending queue capacity in 64 B entries.
	WPQEntries int
}

// DefaultChannelConfig returns the calibrated channel parameters.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		BusTime:    3500 * sim.Picosecond,
		WPQEntries: 24,
	}
}

// Channel is one memory channel: a bus shared by the DIMMs on it, plus a
// WPQ per attached DIMM (the iMC maintains separate read/write pending
// queues for each DIMM).
type Channel struct {
	cfg ChannelConfig
	bus sim.Server

	wpqs      map[dimm.DIMM]*wpqState
	postCount int64
}

type wpqState struct {
	q         *sim.BoundedQueue
	lastDrain sim.Time
	stall     sim.Time
}

// NewChannel returns a channel with the given configuration.
func NewChannel(cfg ChannelConfig) *Channel {
	if cfg.WPQEntries < 1 {
		cfg.WPQEntries = 1
	}
	return &Channel{cfg: cfg, wpqs: make(map[dimm.DIMM]*wpqState)}
}

func (c *Channel) wpq(d dimm.DIMM) *wpqState {
	w := c.wpqs[d]
	if w == nil {
		w = &wpqState{q: sim.NewBoundedQueue(c.cfg.WPQEntries)}
		c.wpqs[d] = w
	}
	return w
}

// Read performs a 64 B read of the given DIMM starting at time t and
// returns the time the data arrives back at the iMC.
func (c *Channel) Read(t sim.Time, d dimm.DIMM, addr int64) sim.Time {
	ready := d.ReadLine(t, addr)
	// The response occupies the shared channel bus.
	_, end := c.bus.Acquire(ready, c.cfg.BusTime)
	return end
}

// PostWrite enqueues a 64 B write. It returns the WPQ acceptance time (the
// persistence point inside the ADR domain) and the drain time at which the
// WPQ entry frees. The WPQ drains strictly in FIFO order, so one slow entry
// head-of-line blocks everything behind it — the Section 5.3 effect.
func (c *Channel) PostWrite(t sim.Time, d dimm.DIMM, addr int64) (accepted, drained sim.Time) {
	w := c.wpq(d)
	accepted = w.q.Admit(t)
	w.stall += accepted - t
	_, busEnd := c.bus.Acquire(accepted, c.cfg.BusTime)
	drained = d.WriteLine(busEnd, addr)
	if drained < w.lastDrain {
		drained = w.lastDrain // FIFO drain: no entry passes its predecessor
	}
	w.lastDrain = drained
	w.q.Push(accepted, drained)
	c.postCount++
	return accepted, drained
}

// WPQOccupancy reports the queued entries for a DIMM at time t (test hook).
func (c *Channel) WPQOccupancy(t sim.Time, d dimm.DIMM) int {
	return c.wpq(d).q.Occupancy(t)
}

// WPQOccupancyTime reports a DIMM's cumulative WPQ entry-residency
// (utilization accounting; divide by WPQEntries × elapsed for the mean
// fill fraction).
func (c *Channel) WPQOccupancyTime(d dimm.DIMM) sim.Time {
	return c.wpq(d).q.OccupancyTime()
}

// WPQStallTime reports a DIMM's cumulative admission-stall time: how long
// posting stores sat blocked on a full WPQ before acceptance (the
// persistence point). A rising stall fraction is the earliest signal of a
// write-saturated DIMM — it appears before end-to-end latency moves.
func (c *Channel) WPQStallTime(d dimm.DIMM) sim.Time {
	return c.wpq(d).stall
}

// Posts returns the number of writes posted on this channel.
func (c *Channel) Posts() int64 { return c.postCount }

// BusBusy returns cumulative bus occupancy (utilization accounting).
func (c *Channel) BusBusy() sim.Time { return c.bus.BusyTime() }
