package stats

import (
	"math/rand"
	"testing"
)

// Merging per-worker histograms and then taking quantiles must equal the
// quantiles of one global histogram over the same values — bucket counts
// add exactly, so sharded recording (per-phase histograms filled by many
// workers, merged at Finish) cannot drift from a single-recorder run.
func TestMergeThenQuantileEqualsGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	global := NewHistogram()
	parts := []*Histogram{NewHistogram(), NewHistogram(), NewHistogram(), NewHistogram()}
	for i := 0; i < 40000; i++ {
		// A long-tailed mix: mostly fast ops, occasional 100x stragglers.
		v := rng.Float64() * 1000
		if rng.Intn(50) == 0 {
			v *= 100
		}
		global.Add(v)
		parts[i%len(parts)].Add(v)
	}
	merged := NewHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != global.Count() {
		t.Fatalf("merged count %d != global %d", merged.Count(), global.Count())
	}
	qs := []float64{0.5, 0.95, 0.99, 0.999}
	mq, gq := merged.Quantiles(qs), global.Quantiles(qs)
	for i, q := range qs {
		if mq[i] != gq[i] {
			t.Errorf("q%g: merged %g != global %g", q, mq[i], gq[i])
		}
	}
	// Quantiles and max come from integer bucket counts and are exact; the
	// mean is a float sum whose order differs, so allow rounding slack.
	if d := merged.Mean() - global.Mean(); d > 1e-6 || d < -1e-6 {
		t.Errorf("merged mean %g != global %g", merged.Mean(), global.Mean())
	}
	if merged.Max() != global.Max() {
		t.Errorf("merged max %g != global %g", merged.Max(), global.Max())
	}
}

// Averaging per-part quantiles is NOT a quantile of the union: with skewed
// parts it lands far from the true p99, which is why the recorder merges
// histograms and only then summarizes. This pins the divergence so nobody
// "simplifies" Finish into a mean-of-quantiles.
func TestQuantileThenAverageDiverges(t *testing.T) {
	fast, slow := NewHistogram(), NewHistogram()
	for i := 0; i < 9900; i++ {
		fast.Add(100)
	}
	for i := 0; i < 100; i++ {
		slow.Add(100000)
	}
	merged := NewHistogram()
	merged.Merge(fast)
	merged.Merge(slow)
	truth := merged.Percentile(0.99)
	avg := (fast.Percentile(0.99) + slow.Percentile(0.99)) / 2
	// The union's p99 sits at the fast/slow boundary; the average of the
	// two per-part p99s is dominated by the all-slow part.
	if truth >= 100000 {
		t.Fatalf("union p99 = %g, expected below the slow mode", truth)
	}
	if avg < 10*truth {
		t.Fatalf("mean-of-quantiles %g does not diverge from union p99 %g", avg, truth)
	}
}

// An empty histogram — a phase no op ever entered — reports zeros, not
// NaNs or stale values, so absent phases render cleanly in summaries.
func TestEmptyHistogramZeroes(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: count=%d mean=%g max=%g, want zeros",
			h.Count(), h.Mean(), h.Max())
	}
	for i, q := range h.Quantiles([]float64{0.5, 0.99}) {
		if q != 0 {
			t.Errorf("empty quantile[%d] = %g, want 0", i, q)
		}
	}
	if p := h.Percentile(0.99); p != 0 {
		t.Errorf("empty percentile = %g, want 0", p)
	}
}
