package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"optanestudy/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	p50 := h.Percentile(0.5)
	if p50 < 45 || p50 > 55 {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 95 || p99 > 100 {
		t.Fatalf("p99 = %v", p99)
	}
}

func TestHistogramTail(t *testing.T) {
	h := NewHistogram()
	// 99990 fast ops at ~100, 10 outliers at 50000.
	for i := 0; i < 99990; i++ {
		h.Add(100)
	}
	for i := 0; i < 10; i++ {
		h.Add(50000)
	}
	if p := h.Percentile(0.999); p > 110 {
		t.Errorf("p99.9 = %v, want ~100", p)
	}
	if p := h.Percentile(0.99995); p < 40000 {
		t.Errorf("p99.995 = %v, want ~50000", p)
	}
	if h.Max() != 50000 {
		t.Errorf("max = %v", h.Max())
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		h := NewHistogram()
		for i := 0; i < 1000; i++ {
			h.Add(r.Float64() * 1e6)
		}
		qs := []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1}
		prev := math.Inf(-1)
		for _, q := range qs {
			p := h.Percentile(q)
			if p < prev {
				return false
			}
			prev = p
		}
		return h.Percentile(0) == h.Min() && h.Percentile(1) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramAccuracy(t *testing.T) {
	// Bucketed percentile must be within ~2% of exact for a known stream.
	r := sim.NewRNG(3)
	h := NewHistogram()
	var vals []float64
	for i := 0; i < 50000; i++ {
		v := 50 + r.Float64()*1000
		h.Add(v)
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := h.Percentile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.02 {
			t.Errorf("q=%v: got %v, exact %v (rel err %.3f)", q, got, exact, rel)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Add(10)
		b.Add(1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if m := a.Mean(); math.Abs(m-505) > 1e-6 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramQuantilesMatchPercentile(t *testing.T) {
	r := sim.NewRNG(17)
	h := NewHistogram()
	for i := 0; i < 20000; i++ {
		h.Add(50 + r.Float64()*5e5)
	}
	// Unsorted, with duplicates and extremes: Quantiles must agree with
	// Percentile element for element.
	qs := []float64{0.99, 0, 0.5, 0.999, 0.5, 1, 0.95, 0.01}
	got := h.Quantiles(qs)
	for i, q := range qs {
		if want := h.Percentile(q); got[i] != want {
			t.Errorf("Quantiles[%d] (q=%v) = %v, want %v", i, q, got[i], want)
		}
	}
}

func TestHistogramQuantilesEmpty(t *testing.T) {
	h := NewHistogram()
	got := h.Quantiles([]float64{0, 0.5, 1})
	for i, v := range got {
		if v != 0 {
			t.Errorf("empty histogram Quantiles[%d] = %v, want 0", i, v)
		}
	}
	if len(h.Quantiles(nil)) != 0 {
		t.Error("nil qs must return empty slice")
	}
}

// Property: merging per-shard histograms is equivalent to recording every
// sample in one histogram — the contract per-worker latency aggregation
// relies on.
func TestHistogramMergeEquivalence(t *testing.T) {
	f := func(seed uint64, shardsRaw uint8) bool {
		shards := int(shardsRaw%7) + 2
		r := sim.NewRNG(seed)
		whole := NewHistogram()
		parts := make([]*Histogram, shards)
		for i := range parts {
			parts[i] = NewHistogram()
		}
		for i := 0; i < 2000; i++ {
			v := r.Float64() * 1e6
			whole.Add(v)
			parts[i%shards].Add(v)
		}
		merged := NewHistogram()
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.Count() != whole.Count() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			return false
		}
		if math.Abs(merged.Mean()-whole.Mean()) > 1e-6*whole.Mean() {
			return false
		}
		qs := []float64{0.5, 0.9, 0.99, 0.999}
		a, b := merged.Quantiles(qs), whole.Quantiles(qs)
		for i := range qs {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Sample std of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std()-want) > 1e-9 {
		t.Fatalf("std = %v, want %v", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestLinRegPerfectFit(t *testing.T) {
	var l LinReg
	for x := 0.0; x < 10; x++ {
		l.Add(x, 3+2*x)
	}
	if math.Abs(l.Slope()-2) > 1e-9 {
		t.Fatalf("slope = %v", l.Slope())
	}
	if math.Abs(l.Intercept()-3) > 1e-9 {
		t.Fatalf("intercept = %v", l.Intercept())
	}
	if math.Abs(l.R2()-1) > 1e-9 {
		t.Fatalf("r2 = %v", l.R2())
	}
}

func TestLinRegNoisy(t *testing.T) {
	var l LinReg
	r := sim.NewRNG(11)
	for i := 0; i < 1000; i++ {
		x := r.Float64()
		y := 1.0*x + (r.Float64()-0.5)*0.2
		l.Add(x, y)
	}
	if s := l.Slope(); s < 0.9 || s > 1.1 {
		t.Fatalf("slope = %v", s)
	}
	if r2 := l.R2(); r2 < 0.85 {
		t.Fatalf("r2 = %v", r2)
	}
}

func TestLinRegDegenerate(t *testing.T) {
	var l LinReg
	l.Add(1, 5)
	l.Add(1, 7) // vertical: zero x-variance
	if l.Slope() != 0 || l.R2() != 0 {
		t.Fatalf("degenerate fit: slope=%v r2=%v", l.Slope(), l.R2())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "read"
	s.Add(1, 10)
	s.Add(2, 30)
	s.Add(4, 20)
	if y, ok := s.YAt(2); !ok || y != 30 {
		t.Fatalf("YAt(2) = %v, %v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Fatal("YAt(3) should be absent")
	}
	x, y := s.MaxY()
	if x != 2 || y != 30 {
		t.Fatalf("MaxY = (%v, %v)", x, y)
	}
}

func TestFigureTSV(t *testing.T) {
	f := Figure{
		ID: "figX", Title: "test", XLabel: "threads",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "b", X: []float64{2}, Y: []float64{5}},
		},
	}
	got := f.TSV()
	want := "# figX: test\nthreads\ta\tb\n1\t10\t-\n2\t20\t5\n"
	if got != want {
		t.Fatalf("TSV:\n%q\nwant:\n%q", got, want)
	}
	if f.Get("b") == nil || f.Get("c") != nil {
		t.Fatal("Get lookup broken")
	}
}
