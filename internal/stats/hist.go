// Package stats provides the statistics used throughout the study:
// latency histograms with tail percentiles, summary statistics, least-squares
// regression (for the EWR/bandwidth correlation), and tabular series for
// regenerating the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram records latency-like samples with high-resolution log-linear
// buckets, supporting accurate tail percentiles without storing every
// sample. Values are arbitrary non-negative float64s (we use nanoseconds).
//
// Bucketing: values are grouped by (exponent, 1/64 mantissa slice), giving a
// worst-case relative error of ~1.6% per bucket — plenty for p99.999 work.
// Exact minimum and maximum are tracked separately.
type Histogram struct {
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets map[int32]int64
}

const histSubBits = 6 // 64 sub-buckets per power of two

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.Inf(1), max: math.Inf(-1), buckets: make(map[int32]int64)}
}

func bucketOf(v float64) int32 {
	if v <= 0 {
		return math.MinInt32
	}
	exp := math.Floor(math.Log2(v))
	frac := v/math.Exp2(exp) - 1 // in [0, 1)
	sub := int32(frac * (1 << histSubBits))
	if sub >= 1<<histSubBits {
		sub = 1<<histSubBits - 1
	}
	return int32(exp)<<histSubBits + sub
}

func bucketLow(b int32) float64 {
	if b == math.MinInt32 {
		return 0
	}
	exp := b >> histSubBits
	sub := b & (1<<histSubBits - 1)
	return math.Exp2(float64(exp)) * (1 + float64(sub)/(1<<histSubBits))
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the value at quantile q in [0, 1]. Within a bucket the
// lower bound is returned; the exact min/max are used at the extremes.
func (h *Histogram) Percentile(q float64) float64 {
	return h.Quantiles([]float64{q})[0]
}

// Quantiles returns the values at each quantile in qs (each in [0, 1], any
// order), in one pass over the buckets — cheaper than repeated Percentile
// calls, and what reporters use for p50/p95/p99/p99.9 rows. The result is
// parallel to qs.
func (h *Histogram) Quantiles(qs []float64) []float64 {
	out := make([]float64, len(qs))
	if h.count == 0 {
		return out
	}
	// Order the requested quantiles so one bucket walk answers all of them.
	order := make([]int, len(qs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return qs[order[i]] < qs[order[j]] })

	keys := make([]int32, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	ki, next := 0, 0
	var seen int64
	for _, oi := range order {
		q := qs[oi]
		switch {
		case q <= 0:
			out[oi] = h.min
			continue
		case q >= 1:
			out[oi] = h.max
			continue
		}
		rank := int64(math.Ceil(q * float64(h.count)))
		for seen < rank && ki < len(keys) {
			seen += h.buckets[keys[ki]]
			next = ki
			ki++
		}
		if seen < rank {
			out[oi] = h.max
			continue
		}
		v := bucketLow(keys[next])
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		out[oi] = v
	}
	return out
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for k, c := range other.buckets {
		h.buckets[k] += c
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f p99.99=%.1f max=%.1f",
		h.count, h.Mean(), h.Percentile(0.5), h.Percentile(0.99), h.Percentile(0.9999), h.Max())
}
