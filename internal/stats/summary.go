package stats

import "math"

// Summary accumulates streaming mean and variance (Welford's algorithm).
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance (n-1 denominator).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest sample.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample.
func (s *Summary) Max() float64 { return s.max }

// LinReg is an ordinary least-squares fit of y = a + b*x, with the
// coefficient of determination r². The paper uses this to correlate EWR with
// device bandwidth (Figure 9).
type LinReg struct {
	n                     int64
	sx, sy, sxx, sxy, syy float64
}

// Add records one (x, y) observation.
func (l *LinReg) Add(x, y float64) {
	l.n++
	l.sx += x
	l.sy += y
	l.sxx += x * x
	l.sxy += x * y
	l.syy += y * y
}

// N returns the observation count.
func (l *LinReg) N() int64 { return l.n }

// Slope returns b in y = a + b*x.
func (l *LinReg) Slope() float64 {
	n := float64(l.n)
	den := n*l.sxx - l.sx*l.sx
	if den == 0 {
		return 0
	}
	return (n*l.sxy - l.sx*l.sy) / den
}

// Intercept returns a in y = a + b*x.
func (l *LinReg) Intercept() float64 {
	if l.n == 0 {
		return 0
	}
	return (l.sy - l.Slope()*l.sx) / float64(l.n)
}

// R2 returns the coefficient of determination of the fit.
func (l *LinReg) R2() float64 {
	n := float64(l.n)
	dx := n*l.sxx - l.sx*l.sx
	dy := n*l.syy - l.sy*l.sy
	if dx == 0 || dy == 0 {
		return 0
	}
	r := (n*l.sxy - l.sx*l.sy) / math.Sqrt(dx*dy)
	return r * r
}
