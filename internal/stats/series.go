package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Series is one labeled curve in a figure: parallel X/Y vectors.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// YAt returns the Y value for the given X, or 0/false when absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// MaxY returns the largest Y value and its X, or zeros when empty.
func (s *Series) MaxY() (x, y float64) {
	for i, yv := range s.Y {
		if i == 0 || yv > y {
			x, y = s.X[i], yv
		}
	}
	return x, y
}

// Figure is the regenerated data behind one of the paper's figures.
type Figure struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

// Get returns the series with the given name, or nil.
func (f *Figure) Get(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// TSV renders the figure as a tab-separated table: one row per X value, one
// column per series. X values are the union across series, sorted.
func (f *Figure) TSV() string {
	xset := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xset[x] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\t%s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, "\t%.4g", y)
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "# %s\n", f.Notes)
	}
	return b.String()
}
