// Package devstat is the device-level observability layer: window-scoped
// snapshots of every 3D XPoint DIMM's hardware counters (plus per-channel
// WPQ occupancy/stall accounting and per-socket UPI crossing bytes),
// differenced into per-device deltas and derived health metrics — EWR,
// write amplification, buffer hit rate, early-close rate, partial-write
// fraction, remap rate, WPQ stall fraction and effective bandwidth.
//
// This is the paper's measurement methodology turned into an operator
// surface: every figure in the study is driven by exactly these counters
// (ipmctl/PCM expose them on real hardware), and the resharding and
// hybrid-media roadmap items need them as control signals. Everything a
// snapshot reads is cumulative and derived from sim time, so devstat
// output is byte-identical at any -parallel width.
package devstat

import (
	"fmt"

	"optanestudy/internal/dimm"
	"optanestudy/internal/mem"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

// DIMMState is one 3D XPoint module's cumulative state at a snapshot
// instant: its hardware counters plus the iMC-side WPQ accounting for its
// channel slot.
type DIMMState struct {
	Socket, Channel int
	Ctr             dimm.Counters
	// WPQOcc is the WPQ's cumulative entry-residency (entry·time);
	// WPQStall is the cumulative admission-stall time posts spent blocked
	// on a full queue.
	WPQOcc, WPQStall sim.Time
}

// UPIState is one socket home agent's cumulative remote-crossing bytes.
type UPIState struct {
	ReadBytes, WriteBytes int64
}

// Snapshot captures every XP DIMM, channel WPQ and home agent at one
// instant. DIMMs are ordered socket-major, channel-minor — a fixed
// geometry order, so differencing and rendering are deterministic.
type Snapshot struct {
	T     sim.Time
	DIMMs []DIMMState
	UPI   []UPIState
}

// Capture snapshots the platform's device counters at the current sim
// time. It is read-only: capturing never perturbs results.
func Capture(p *platform.Platform) Snapshot {
	geom := p.Config().Geometry
	s := Snapshot{
		T:     p.Now(),
		DIMMs: make([]DIMMState, 0, geom.Sockets*geom.ChannelsPerSocket),
		UPI:   make([]UPIState, geom.Sockets),
	}
	for sk := 0; sk < geom.Sockets; sk++ {
		for ch := 0; ch < geom.ChannelsPerSocket; ch++ {
			occ, stall := p.XPWPQStats(sk, ch)
			s.DIMMs = append(s.DIMMs, DIMMState{
				Socket: sk, Channel: ch,
				Ctr:    p.XPDIMMCounters(sk, ch),
				WPQOcc: occ, WPQStall: stall,
			})
		}
		rd, wr := p.UPIBytes(sk)
		s.UPI[sk] = UPIState{ReadBytes: rd, WriteBytes: wr}
	}
	return s
}

// DIMMWindow is one DIMM's delta over a measurement window plus the
// window length, from which every health metric derives.
type DIMMWindow struct {
	Socket, Channel  int
	Ctr              dimm.Counters
	WPQOcc, WPQStall sim.Time
	Elapsed          sim.Time
}

// Active reports whether the DIMM moved any controller-interface bytes in
// the window. Inactive DIMMs are skipped by Metrics so a two-channel
// namespace does not emit ten all-zero metric blocks.
func (w *DIMMWindow) Active() bool {
	return w.Ctr.CtrlReadBytes+w.Ctr.CtrlWriteBytes > 0
}

// EWR is the window's Effective Write Ratio (iMC write bytes over media
// write bytes; 1 when the media wrote nothing).
func (w *DIMMWindow) EWR() float64 { return w.Ctr.EWR() }

// WriteAmplification is the inverse of EWR.
func (w *DIMMWindow) WriteAmplification() float64 { return w.Ctr.WriteAmplification() }

// BufferHitRate is the XPBuffer hit fraction over the window (0 with no
// buffer lookups).
func (w *DIMMWindow) BufferHitRate() float64 {
	total := w.Ctr.BufferHits + w.Ctr.BufferMisses
	if total == 0 {
		return 0
	}
	return float64(w.Ctr.BufferHits) / float64(total)
}

// mediaWriteLines is the number of XPLines the media wrote in the window.
func (w *DIMMWindow) mediaWriteLines() int64 {
	return w.Ctr.MediaWriteBytes / mem.XPLine
}

// EarlyCloseRate is early-closed lines per media-written XPLine: how often
// write-stream pressure forced a partial line out of the XPBuffer before
// it filled (the threads-per-DIMM contention signature).
func (w *DIMMWindow) EarlyCloseRate() float64 {
	if lines := w.mediaWriteLines(); lines > 0 {
		return float64(w.Ctr.EarlyCloses) / float64(lines)
	}
	return 0
}

// PartialWriteFrac is the fraction of media-written XPLines that carried
// under one line of new data (each one paid a read-modify-write).
func (w *DIMMWindow) PartialWriteFrac() float64 {
	if lines := w.mediaWriteLines(); lines > 0 {
		return float64(w.Ctr.PartialWrites) / float64(lines)
	}
	return 0
}

// RemapRate is wear-leveling migrations per media-written XPLine.
func (w *DIMMWindow) RemapRate() float64 {
	if lines := w.mediaWriteLines(); lines > 0 {
		return float64(w.Ctr.Remaps) / float64(lines)
	}
	return 0
}

// WPQStallFrac is cumulative admission-stall time over the window length:
// the fraction of the window a posting store spent blocked on a full WPQ
// (it can exceed 1 when several threads stall concurrently).
func (w *DIMMWindow) WPQStallFrac() float64 {
	if w.Elapsed <= 0 {
		return 0
	}
	return float64(w.WPQStall) / float64(w.Elapsed)
}

// BandwidthGBs is the DIMM's effective controller-interface bandwidth over
// the window (read + write bytes per second, in GB/s).
func (w *DIMMWindow) BandwidthGBs() float64 {
	if w.Elapsed <= 0 {
		return 0
	}
	bytes := float64(w.Ctr.CtrlReadBytes + w.Ctr.CtrlWriteBytes)
	return bytes / w.Elapsed.Nanoseconds()
}

// Window is the delta between two snapshots: per-DIMM and per-socket
// deltas plus the elapsed window.
type Window struct {
	Elapsed sim.Time
	DIMMs   []DIMMWindow
	UPI     []UPIState
}

// Sub returns the window from o (earlier) to s (later), differencing every
// counter via dimm.Counters.Sub. The snapshots must come from the same
// platform (same geometry order).
func (s Snapshot) Sub(o Snapshot) Window {
	w := Window{Elapsed: s.T - o.T, DIMMs: make([]DIMMWindow, len(s.DIMMs)), UPI: make([]UPIState, len(s.UPI))}
	for i := range s.DIMMs {
		a, b := &s.DIMMs[i], &o.DIMMs[i]
		w.DIMMs[i] = DIMMWindow{
			Socket: a.Socket, Channel: a.Channel,
			Ctr:    a.Ctr.Sub(b.Ctr),
			WPQOcc: a.WPQOcc - b.WPQOcc, WPQStall: a.WPQStall - b.WPQStall,
			Elapsed: s.T - o.T,
		}
	}
	for i := range s.UPI {
		w.UPI[i] = UPIState{
			ReadBytes:  s.UPI[i].ReadBytes - o.UPI[i].ReadBytes,
			WriteBytes: s.UPI[i].WriteBytes - o.UPI[i].WriteBytes,
		}
	}
	return w
}

// Group sums the window deltas of one DIMM subset — a shard or backend's
// (socket, channel-set) placement, the namespace→DIMM-set attribution the
// cluster's BackendSpec pins. Counters are per-DIMM, so namespaces sharing
// a DIMM both see its traffic.
func (w Window) Group(socket int, channels []int) DIMMWindow {
	g := DIMMWindow{Socket: socket, Channel: -1, Elapsed: w.Elapsed}
	for i := range w.DIMMs {
		d := &w.DIMMs[i]
		if d.Socket != socket {
			continue
		}
		for _, ch := range channels {
			if d.Channel == ch {
				g.Ctr.Add(d.Ctr)
				g.WPQOcc += d.WPQOcc
				g.WPQStall += d.WPQStall
				break
			}
		}
	}
	return g
}

// metricsInto writes one DIMM (or group) window's derived health metrics
// under dev_<metric><suffix> keys.
func (w *DIMMWindow) metricsInto(m map[string]float64, suffix string) {
	m["dev_ewr"+suffix] = w.EWR()
	m["dev_wamp"+suffix] = w.WriteAmplification()
	m["dev_buffer_hit_rate"+suffix] = w.BufferHitRate()
	m["dev_early_close_rate"+suffix] = w.EarlyCloseRate()
	m["dev_partial_write_frac"+suffix] = w.PartialWriteFrac()
	m["dev_remap_rate"+suffix] = w.RemapRate()
	m["dev_wpq_stall_frac"+suffix] = w.WPQStallFrac()
	m["dev_bw_gbs"+suffix] = w.BandwidthGBs()
}

// Metrics writes the window's per-DIMM health metrics (active DIMMs only,
// keyed dev_<metric>_s<socket>c<channel>) plus the per-socket UPI crossing
// bytes into a harness metric map. Activity depends only on the measured
// deltas — never on the schedule — so the key set is deterministic.
func (w Window) Metrics(m map[string]float64) {
	for i := range w.DIMMs {
		d := &w.DIMMs[i]
		if !d.Active() {
			continue
		}
		d.metricsInto(m, fmt.Sprintf("_s%dc%d", d.Socket, d.Channel))
	}
	for s := range w.UPI {
		m[fmt.Sprintf("dev_upi_rd_bytes_s%d", s)] = float64(w.UPI[s].ReadBytes)
		m[fmt.Sprintf("dev_upi_wr_bytes_s%d", s)] = float64(w.UPI[s].WriteBytes)
	}
}

// GroupMetrics writes one attributed group's derived metrics under
// dev_<metric>_<name> keys (e.g. dev_ewr_shard0) when the group moved any
// bytes in the window.
func (w Window) GroupMetrics(m map[string]float64, name string, socket int, channels []int) {
	g := w.Group(socket, channels)
	if !g.Active() {
		return
	}
	g.metricsInto(m, "_"+name)
}

// Watcher captures the opening and closing snapshots of one measurement
// window on a dedicated read-only proc, so any scenario can bolt
// device-counter windows onto a run without the serving layer knowing.
type Watcher struct {
	open, close Snapshot
}

// Watch spawns the capture proc: the opening snapshot fires warmup after
// the platform's current time (the measured window's open) and the closing
// one duration later (its close). Call Window after the platform has run.
func Watch(p *platform.Platform, socket int, warmup, duration sim.Time) *Watcher {
	w := &Watcher{}
	openAt := p.Now() + warmup
	closeAt := openAt + duration
	p.Go("devstat-snap", socket, func(ctx *platform.MemCtx) {
		proc := ctx.Proc()
		proc.AdvanceTo(openAt)
		w.open = Capture(p)
		proc.AdvanceTo(closeAt)
		w.close = Capture(p)
	})
	return w
}

// Window returns the captured measurement window's deltas.
func (w *Watcher) Window() Window { return w.close.Sub(w.open) }
