package devstat_test

import (
	"testing"

	"optanestudy/internal/devstat"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

func newPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.XP.Wear.Enabled = false
	p, err := platform.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// window runs fn as simulated threads on socket 0 and returns the
// device-counter window covering the whole run.
func window(t *testing.T, p *platform.Platform, threads int, fn func(ctx *platform.MemCtx, id int)) devstat.Window {
	t.Helper()
	open := devstat.Capture(p)
	for k := 0; k < threads; k++ {
		id := k
		p.Go("w", 0, func(ctx *platform.MemCtx) { fn(ctx, id) })
	}
	p.Run()
	return devstat.Capture(p).Sub(open)
}

// dimm0 returns the s0c0 window (the DIMM a non-interleaved channel-0
// namespace lives on).
func dimm0(t *testing.T, w devstat.Window) devstat.DIMMWindow {
	t.Helper()
	for i := range w.DIMMs {
		if w.DIMMs[i].Socket == 0 && w.DIMMs[i].Channel == 0 {
			return w.DIMMs[i]
		}
	}
	t.Fatal("no s0c0 DIMM in window")
	return devstat.DIMMWindow{}
}

// Sequential 256 B streams assemble full XPLines in the XPBuffer, so the
// controller never pays a read-modify-write: windowed EWR sits at ~1.0
// (Section 4.3's best case).
func TestEWRSequentialStream(t *testing.T) {
	p := newPlatform(t)
	ns, err := p.OptaneNI("pm", 0, 0, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	w := window(t, p, 1, func(ctx *platform.MemCtx, _ int) {
		for i := int64(0); i < 8192; i++ {
			ctx.NTStore(ns, i*256, 256, nil)
			if i%16 == 15 {
				ctx.SFence()
			}
		}
		ctx.SFence()
	})
	d := dimm0(t, w)
	if !d.Active() {
		t.Fatal("s0c0 saw no traffic")
	}
	if ewr := d.EWR(); ewr < 0.95 || ewr > 1.05 {
		t.Errorf("sequential 256 B stream EWR = %.3f, want ~1.0", ewr)
	}
	if frac := d.PartialWriteFrac(); frac > 0.05 {
		t.Errorf("sequential stream partial-write fraction = %.3f, want ~0", frac)
	}
}

// Small random writes over a working set far beyond the 16 KB XPBuffer
// force partial-line evictions: each 64 B write turns into a 256 B
// read-modify-write and EWR collapses toward 0.25 (Figure 10's regime).
func TestEWRRandomSmallWrites(t *testing.T) {
	p := newPlatform(t)
	ns, err := p.OptaneNI("pm", 0, 0, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	w := window(t, p, 1, func(ctx *platform.MemCtx, _ int) {
		for i := 0; i < 8000; i++ {
			ctx.NTStore(ns, rng.Int63n(ns.Size)&^63, 64, nil)
			if i%8 == 7 {
				ctx.SFence()
			}
		}
		ctx.SFence()
	})
	d := dimm0(t, w)
	if !d.Active() {
		t.Fatal("s0c0 saw no traffic")
	}
	if ewr := d.EWR(); ewr >= 0.8 {
		t.Errorf("random 64 B write EWR = %.3f, want < 0.8", ewr)
	}
	if frac := d.PartialWriteFrac(); frac < 0.5 {
		t.Errorf("random 64 B partial-write fraction = %.3f, want > 0.5", frac)
	}
	if hr := d.BufferHitRate(); hr > 0.5 {
		t.Errorf("random 64 B buffer hit rate = %.3f, want < 0.5 over a >16 KB working set", hr)
	}
}

// earlyCloseRate measures s0c0's early-close rate with n concurrent
// sequential 64 B write streams into disjoint regions of one DIMM.
func earlyCloseRate(t *testing.T, n int) float64 {
	t.Helper()
	p := newPlatform(t)
	ns, err := p.OptaneNI("pm", 0, 0, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	stride := ns.Size / int64(n)
	w := window(t, p, n, func(ctx *platform.MemCtx, id int) {
		base := int64(id) * stride
		for i := int64(0); i < 4000; i++ {
			ctx.NTStore(ns, base+i*64, 64, nil)
			if i%64 == 63 {
				ctx.SFence()
			}
		}
		ctx.SFence()
	})
	d := dimm0(t, w)
	if !d.Active() {
		t.Fatal("s0c0 saw no traffic")
	}
	return d.EarlyCloseRate()
}

// More concurrent write streams than the controller's combining engines
// must drive the early-close rate up — the Section 5.3 contention
// signature the dev_early_close_rate metric exists to surface.
func TestEarlyCloseRateRisesWithStreams(t *testing.T) {
	one := earlyCloseRate(t, 1)
	eight := earlyCloseRate(t, 8)
	if one > 0.01 {
		t.Errorf("single-stream early-close rate = %.4f, want ~0", one)
	}
	if eight <= one || eight < 0.01 {
		t.Errorf("early-close rate did not rise with streams: 1 stream = %.4f, 8 streams = %.4f", one, eight)
	}
}
