package devstat

import (
	"fmt"

	"optanestudy/internal/platform"
	"optanestudy/internal/telemetry"
)

// AddProbes registers the full per-DIMM gauge set with a timeline
// recorder: for every 3D XPoint DIMM, cumulative controller read/write
// bytes, media write bytes, XPBuffer hits/misses and WPQ stall time. A
// renderer differences successive samples into per-DIMM windowed EWR,
// effective bandwidth, buffer hit rate and stall fraction — the paper's
// device signals as time series (this replaces the earlier two-gauge
// per-socket EWR probe; per-socket values are the per-DIMM sums).
// Every DIMM is probed unconditionally so timeline columns stay stable
// across samples.
func AddProbes(rec *telemetry.Recorder, p *platform.Platform) {
	geom := p.Config().Geometry
	for s := 0; s < geom.Sockets; s++ {
		for c := 0; c < geom.ChannelsPerSocket; c++ {
			s, c := s, c
			ctrlR := fmt.Sprintf("xp_ctrl_read_bytes_s%dc%d", s, c)
			ctrlW := fmt.Sprintf("xp_ctrl_write_bytes_s%dc%d", s, c)
			mediaW := fmt.Sprintf("xp_media_write_bytes_s%dc%d", s, c)
			hits := fmt.Sprintf("xp_buffer_hits_s%dc%d", s, c)
			misses := fmt.Sprintf("xp_buffer_misses_s%dc%d", s, c)
			stall := fmt.Sprintf("xp_wpq_stall_ns_s%dc%d", s, c)
			rec.AddProbe(func(add func(string, float64)) {
				ctr := p.XPDIMMCounters(s, c)
				_, st := p.XPWPQStats(s, c)
				add(ctrlR, float64(ctr.CtrlReadBytes))
				add(ctrlW, float64(ctr.CtrlWriteBytes))
				add(mediaW, float64(ctr.MediaWriteBytes))
				add(hits, float64(ctr.BufferHits))
				add(misses, float64(ctr.BufferMisses))
				add(stall, st.Nanoseconds())
			})
		}
	}
}
