// Package hottier is the DRAM hot tier the study's serving lesson calls
// for: Memory Mode hides 3D XPoint pathologies behind a near-memory DRAM
// cache (Section 6), and the app-direct analogue is an explicit,
// software-managed record cache in DRAM in front of the persistent store.
// A Tier wraps any serving backend: reads consult a DRAM namespace first
// and fall through to the backend on a miss (optionally admitting the
// record), while writes stay write-through — the backend remains the
// durability truth, the tier only invalidates — so group-commit journaling
// and crash consistency are untouched.
//
// The tier is record-granular: each cached record occupies one fixed-size,
// cache-line-padded DRAM slot. Admission is admit-on-Nth-touch (N=1 is
// admit-on-read), eviction is clock or seeded-random (deterministic from
// the job seed), and per-tenant byte quotas bound how much of the tier a
// single traffic class can own: a tenant at quota evicts its own records,
// never a neighbor's.
//
// Concurrency: simulated procs interleave only at explicit time advances,
// so all tier bookkeeping is atomic between yields and the tier takes no
// lock on the hit path. The two windows that do span a yield are handled
// explicitly: a reader validates its slot's generation after the DRAM load
// (a concurrent eviction rewrote the slot → the read is discarded and
// falls through to the backend), and a miss-fill captures the record's
// invalidation version before the backend read and publishes only if no
// write bumped it since (a racing Put can therefore never strand a stale
// record in the tier).
package hottier

import (
	"encoding/binary"
	"errors"
	"fmt"

	"optanestudy/internal/mem"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

// Backend is the store the tier fronts. It is structurally identical to
// service.Backend (the tier both wraps one and is one), declared here so
// the service package can depend on hottier without a cycle.
type Backend interface {
	Get(ctx *platform.MemCtx, key []byte) ([]byte, bool)
	Put(ctx *platform.MemCtx, key, val []byte) error
	Scan(ctx *platform.MemCtx, key []byte, n int) int
	Delete(ctx *platform.MemCtx, key []byte) error
}

// BufferGetter is the allocation-free read path a Backend may additionally
// implement (service.BufferGetter's shape): the tier prefers it on misses
// so a miss-fill lands in the caller's buffer without touching the heap.
type BufferGetter interface {
	GetInto(ctx *platform.MemCtx, key, dst []byte) (int, bool)
}

// Eviction policies.
const (
	PolicyClock  = "clock"
	PolicyRandom = "random"
)

// Config sizes and places one tier.
type Config struct {
	// Name prefixes the DRAM namespace ("<name>-hot"); empty means
	// "hottier".
	Name string
	// Socket places the DRAM namespace — the cluster layer passes the
	// shard's worker socket so hits never cross UPI.
	Socket int
	// CapacityBytes is the DRAM budget; the tier holds
	// CapacityBytes/slot-size records, where a slot is RecordBytes rounded
	// up to whole 64 B lines.
	CapacityBytes int64
	// RecordBytes is the largest value the tier caches (the serving value
	// size); longer values read through uncached.
	RecordBytes int
	// Admit is the touch count that admits a record: 1 admits on first
	// read miss, N>1 admits on the Nth miss of the same key (scan
	// resistance). 0 means 1.
	Admit int
	// Policy selects the eviction policy: PolicyClock (default) or
	// PolicyRandom.
	Policy string
	// TenantSpan is the number of consecutive key ids per tenant (the
	// serving layer's per-tenant keyspace width); 0 treats all keys as one
	// tenant. Only used for quota accounting.
	TenantSpan int64
	// QuotaBytes caps any one tenant's tier footprint; 0 is uncapped. A
	// tenant at quota evicts its own records rather than a neighbor's.
	QuotaBytes int64
	// Seed feeds the eviction RNG (derive it from the job seed so eviction
	// streams are reproducible).
	Seed uint64
}

// Counters is the tier's traffic accounting.
type Counters struct {
	Hits          int64 // reads served from DRAM
	Misses        int64 // reads that fell through to the backend
	Admits        int64 // records published into the tier
	Evictions     int64 // records displaced by admission (quota or capacity)
	Invalidations int64 // records dropped by a write to their key
}

// HitRate returns Hits / (Hits + Misses), 0 when no reads happened.
func (c Counters) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// Merge folds o into c (cross-shard aggregation).
func (c *Counters) Merge(o Counters) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Admits += o.Admits
	c.Evictions += o.Evictions
	c.Invalidations += o.Invalidations
}

// Metrics writes the harness metric keys the cache scenarios report.
func (c Counters) Metrics(m map[string]float64) {
	m["cache_hits"] = float64(c.Hits)
	m["cache_misses"] = float64(c.Misses)
	m["cache_evictions"] = float64(c.Evictions)
	m["cache_hit_rate"] = c.HitRate()
}

// Gauges streams the cumulative counters into add — the timeline
// sampler's snapshot shape. The name set is fixed so timeline columns are
// stable across samples; a renderer differences successive snapshots into
// a windowed hit rate.
func (c Counters) Gauges(add func(name string, v float64)) {
	add("cache_hits", float64(c.Hits))
	add("cache_misses", float64(c.Misses))
	add("cache_evictions", float64(c.Evictions))
}

// slot is one DRAM record frame's volatile bookkeeping.
type slot struct {
	id     int64 // cached key id, -1 when empty
	tenant int64
	vlen   int32
	tpos   int32  // position in the owning tenant's slot list
	gen    uint32 // bumped whenever the slot's bytes stop being id's value
	busy   bool   // an install's NT stream is in flight; not a victim
	ref    bool   // clock reference bit
}

type tenantState struct {
	slots []int32
	hand  int
}

// Tier is a DRAM record cache in front of a Backend. It implements the
// same interface (plus the buffered read), so service dispatch and the
// cluster layer treat it as just another backend.
type Tier struct {
	inner Backend
	bg    BufferGetter // non-nil when inner reads into caller buffers

	ns       *platform.Namespace
	slotSize int64
	slots    []slot
	free     []int32

	index   map[int64]int32 // key id → slot, published records only
	pending map[int64]bool  // key id has an install in flight
	ver     map[int64]uint32
	touches map[int64]int32

	admit      int
	random     bool
	rng        *sim.RNG
	hand       int
	tenantSpan int64
	quotaSlots int
	tenants    map[int64]*tenantState

	// scratch pads a record to whole 64 B lines for the fill's NT stream.
	// Sharing one buffer is safe: the copy into it and the NTStore call
	// run without a yield, and the platform captures the bytes before the
	// store's single time advance.
	scratch []byte

	ctr       Counters
	evictHook func(victimID int64)
}

// New builds a tier over inner, carving its DRAM namespace on the socket.
func New(p *platform.Platform, inner Backend, cfg Config) (*Tier, error) {
	if inner == nil {
		return nil, errors.New("hottier: backend required")
	}
	if cfg.CapacityBytes <= 0 || cfg.RecordBytes <= 0 {
		return nil, errors.New("hottier: capacity and record size must be positive")
	}
	slotSize := (int64(cfg.RecordBytes) + mem.CacheLine - 1) &^ (mem.CacheLine - 1)
	nslots := cfg.CapacityBytes / slotSize
	if nslots < 1 {
		return nil, fmt.Errorf("hottier: capacity %d B holds no %d B slot", cfg.CapacityBytes, slotSize)
	}
	if cfg.Admit < 1 {
		cfg.Admit = 1
	}
	random := false
	switch cfg.Policy {
	case "", PolicyClock:
	case PolicyRandom:
		random = true
	default:
		return nil, fmt.Errorf("hottier: unknown eviction policy %q (want clock or random)", cfg.Policy)
	}
	quotaSlots := 0
	if cfg.QuotaBytes > 0 {
		quotaSlots = int(cfg.QuotaBytes / slotSize)
		if quotaSlots < 1 {
			return nil, fmt.Errorf("hottier: quota %d B holds no %d B slot", cfg.QuotaBytes, slotSize)
		}
	}
	name := cfg.Name
	if name == "" {
		name = "hottier"
	}
	ns, err := p.DRAM(name+"-hot", cfg.Socket, nslots*slotSize)
	if err != nil {
		return nil, err
	}
	t := &Tier{
		inner: inner, ns: ns,
		slotSize:   slotSize,
		slots:      make([]slot, nslots),
		free:       make([]int32, nslots),
		index:      make(map[int64]int32),
		pending:    make(map[int64]bool),
		ver:        make(map[int64]uint32),
		touches:    make(map[int64]int32),
		admit:      cfg.Admit,
		random:     random,
		rng:        sim.NewRNG(cfg.Seed ^ 0xCAC4E),
		tenantSpan: cfg.TenantSpan,
		quotaSlots: quotaSlots,
		tenants:    make(map[int64]*tenantState),
		scratch:    make([]byte, slotSize),
	}
	for i := range t.slots {
		t.slots[i].id = -1
		t.free[i] = int32(int(nslots) - 1 - i) // pop order: slot 0 first
	}
	t.bg, _ = inner.(BufferGetter)
	return t, nil
}

// Counters returns a snapshot of the tier's accounting.
func (t *Tier) Counters() Counters { return t.ctr }

// Len reports the number of published records.
func (t *Tier) Len() int { return len(t.index) }

// Slots reports the tier's record capacity.
func (t *Tier) Slots() int { return len(t.slots) }

// SetEvictHook installs a test hook invoked, in deterministic simulation
// order, with each eviction victim's key id.
func (t *Tier) SetEvictHook(fn func(victimID int64)) { t.evictHook = fn }

// recordID recovers the key id the serving layer encodes in a key's first
// 8 bytes (service.KeyFor's layout); the tier indexes records by it.
func recordID(key []byte) int64 {
	return int64(binary.LittleEndian.Uint64(key))
}

func (t *Tier) tenantOf(id int64) int64 {
	if t.tenantSpan <= 0 {
		return 0
	}
	return id / t.tenantSpan
}

func (t *Tier) off(si int32) int64 { return int64(si) * t.slotSize }

// Get reads key: DRAM on a hit, the backend (plus a possible admission) on
// a miss.
func (t *Tier) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	id := recordID(key)
	if si, ok := t.index[id]; ok {
		s := &t.slots[si]
		gen := s.gen
		buf := make([]byte, s.vlen)
		ctx.LoadInto(t.ns, t.off(si), buf)
		if s.gen == gen {
			t.ctr.Hits++
			s.ref = true
			return buf, true
		}
		// The slot was reassigned or invalidated under the load; the bytes
		// are not id's value. Fall through to the backend.
	}
	t.ctr.Misses++
	v := t.ver[id]
	val, ok := t.inner.Get(ctx, key)
	if ok {
		t.fill(ctx, id, val, v)
	}
	return val, ok
}

// GetInto is Get with the value landing in dst (the zero-alloc dispatch
// path). A cached record longer than dst reads through the backend.
func (t *Tier) GetInto(ctx *platform.MemCtx, key, dst []byte) (int, bool) {
	id := recordID(key)
	if si, ok := t.index[id]; ok {
		s := &t.slots[si]
		if n := int(s.vlen); n <= len(dst) {
			gen := s.gen
			ctx.LoadInto(t.ns, t.off(si), dst[:n])
			if s.gen == gen {
				t.ctr.Hits++
				s.ref = true
				return n, true
			}
		}
	}
	t.ctr.Misses++
	v := t.ver[id]
	if t.bg != nil {
		n, ok := t.bg.GetInto(ctx, key, dst)
		if ok && n <= len(dst) {
			t.fill(ctx, id, dst[:n], v)
		}
		return n, ok
	}
	val, ok := t.inner.Get(ctx, key)
	if !ok {
		return 0, false
	}
	copy(dst, val)
	if len(val) <= len(dst) {
		t.fill(ctx, id, val, v)
	}
	return len(val), true
}

// Put writes through to the backend; the tier only invalidates. The
// second invalidation (after the backend write) is what makes the
// protocol airtight: any miss-fill that could have read the old value
// started before it, so its version check fails and it is discarded.
func (t *Tier) Put(ctx *platform.MemCtx, key, val []byte) error {
	id := recordID(key)
	t.invalidate(id)
	err := t.inner.Put(ctx, key, val)
	t.invalidate(id)
	return err
}

// Delete removes key from the backend and drops any cached copy (same
// protocol as Put).
func (t *Tier) Delete(ctx *platform.MemCtx, key []byte) error {
	id := recordID(key)
	t.invalidate(id)
	err := t.inner.Delete(ctx, key)
	t.invalidate(id)
	return err
}

// Scan streams from the backend; range reads bypass the record cache.
func (t *Tier) Scan(ctx *platform.MemCtx, key []byte, n int) int {
	return t.inner.Scan(ctx, key, n)
}

// invalidate bumps id's version (discarding in-flight fills) and drops the
// published record if one exists. Runs without yielding.
func (t *Tier) invalidate(id int64) {
	t.ver[id]++
	delete(t.touches, id)
	if si, ok := t.index[id]; ok {
		delete(t.index, id)
		t.detach(si)
		t.ctr.Invalidations++
	}
}

// detach returns a (published or abandoned) slot to the free list. The
// generation bump makes any in-flight reader of the slot discard its load.
func (t *Tier) detach(si int32) {
	s := &t.slots[si]
	ts := t.tenants[s.tenant]
	last := len(ts.slots) - 1
	ts.slots[s.tpos] = ts.slots[last]
	t.slots[ts.slots[s.tpos]].tpos = s.tpos
	ts.slots = ts.slots[:last]
	s.id = -1
	s.gen++
	s.busy = false
	t.free = append(t.free, si)
}

// evict displaces the record published in slot si (which stays attached to
// its tenant list only until the caller reassigns it).
func (t *Tier) evict(si int32) {
	s := &t.slots[si]
	if t.evictHook != nil {
		t.evictHook(s.id)
	}
	delete(t.index, s.id)
	ts := t.tenants[s.tenant]
	last := len(ts.slots) - 1
	ts.slots[s.tpos] = ts.slots[last]
	t.slots[ts.slots[s.tpos]].tpos = s.tpos
	ts.slots = ts.slots[:last]
	s.id = -1
	s.gen++
	t.ctr.Evictions++
}

// victimGlobal picks a victim over the whole tier: a clock sweep clearing
// reference bits, or a seeded-random probe. Returns -1 when every
// candidate has an install in flight (admission is skipped, not blocked).
func (t *Tier) victimGlobal() int32 {
	n := len(t.slots)
	if t.random {
		for i := 0; i < 8; i++ {
			si := int32(t.rng.Intn(n))
			if !t.slots[si].busy {
				return si
			}
		}
		return -1
	}
	for i := 0; i < 2*n+1; i++ {
		si := int32(t.hand)
		t.hand = (t.hand + 1) % n
		s := &t.slots[si]
		if s.busy {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		return si
	}
	return -1
}

// victimFrom picks a victim among one tenant's own slots (quota
// enforcement), with the same clock/random split as the global policy.
func (t *Tier) victimFrom(ts *tenantState) int32 {
	n := len(ts.slots)
	if t.random {
		for i := 0; i < 8; i++ {
			si := ts.slots[t.rng.Intn(n)]
			if !t.slots[si].busy {
				return si
			}
		}
		return -1
	}
	for i := 0; i < 2*n+1; i++ {
		si := ts.slots[ts.hand%n]
		ts.hand = (ts.hand + 1) % n
		s := &t.slots[si]
		if s.busy {
			continue
		}
		if s.ref {
			s.ref = false
			continue
		}
		return si
	}
	return -1
}

// fill tries to admit (id, val) after a miss. ver is id's invalidation
// version captured before the backend read: if a write bumped it since,
// the value may be stale and the fill is dropped. The install reserves a
// slot synchronously, streams the padded record into DRAM with whole-line
// NT stores (one yield, no write-combining residue, no heap traffic), and
// publishes the index entry only after the bytes are down.
func (t *Tier) fill(ctx *platform.MemCtx, id int64, val []byte, ver uint32) {
	if int64(len(val)) > t.slotSize {
		return // oversized record: read-through only
	}
	if _, ok := t.index[id]; ok {
		return // a sibling fill won the race
	}
	if t.pending[id] || t.ver[id] != ver {
		return
	}
	if t.admit > 1 {
		c := t.touches[id] + 1
		if int(c) < t.admit {
			t.touches[id] = c
			return
		}
		delete(t.touches, id)
	}
	tn := t.tenantOf(id)
	ts := t.tenants[tn]
	if ts == nil {
		ts = &tenantState{}
		t.tenants[tn] = ts
	}
	var si int32
	switch {
	case t.quotaSlots > 0 && len(ts.slots) >= t.quotaSlots:
		si = t.victimFrom(ts)
	case len(t.free) > 0:
		si = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
	default:
		si = t.victimGlobal()
	}
	if si < 0 {
		return
	}
	s := &t.slots[si]
	if s.id >= 0 {
		t.evict(si)
	}
	// Reserve: from here the slot is invisible to victim scans (busy) and
	// its old readers are poisoned (gen bumped by evict/detach or below).
	s.id = id
	s.tenant = tn
	s.vlen = int32(len(val))
	s.gen++
	s.busy = true
	s.ref = false
	s.tpos = int32(len(ts.slots))
	ts.slots = append(ts.slots, si)
	t.pending[id] = true

	n := copy(t.scratch, val)
	for i := n; i < len(t.scratch); i++ {
		t.scratch[i] = 0
	}
	ctx.NTStore(t.ns, t.off(si), len(t.scratch), t.scratch)

	// Publish — unless a write to id raced the install.
	delete(t.pending, id)
	s.busy = false
	if t.ver[id] != ver {
		t.detach(si)
		return
	}
	t.index[id] = si
	t.ctr.Admits++
}
