package hottier

import (
	"bytes"
	"encoding/binary"
	"testing"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

// fakeBackend is an in-memory inner store. Get snapshots the value before
// advancing simulated time, which is the adversarial shape for the tier's
// fill protocol: a Put that lands inside the read window makes the
// snapshot stale, and the tier must refuse to publish it.
type fakeBackend struct {
	vals map[string][]byte
	lat  sim.Time
	gets int
	puts int
}

func newFake() *fakeBackend { return &fakeBackend{vals: make(map[string][]byte)} }

func (b *fakeBackend) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	b.gets++
	v, ok := b.vals[string(key)]
	var out []byte
	if ok {
		out = append([]byte(nil), v...)
	}
	if b.lat > 0 {
		ctx.Proc().Advance(b.lat)
	}
	return out, ok
}

func (b *fakeBackend) Put(ctx *platform.MemCtx, key, val []byte) error {
	b.puts++
	if b.lat > 0 {
		ctx.Proc().Advance(b.lat)
	}
	b.vals[string(key)] = append([]byte(nil), val...)
	return nil
}

func (b *fakeBackend) Delete(ctx *platform.MemCtx, key []byte) error {
	if b.lat > 0 {
		ctx.Proc().Advance(b.lat)
	}
	delete(b.vals, string(key))
	return nil
}

func (b *fakeBackend) Scan(ctx *platform.MemCtx, key []byte, n int) int { return n }

// bufferFake adds the BufferGetter path.
type bufferFake struct{ fakeBackend }

func (b *bufferFake) GetInto(ctx *platform.MemCtx, key, dst []byte) (int, bool) {
	v, ok := b.fakeBackend.Get(ctx, key)
	if !ok {
		return 0, false
	}
	copy(dst, v)
	return len(v), true
}

func keyFor(id int64) []byte {
	k := make([]byte, 16)
	binary.LittleEndian.PutUint64(k, uint64(id))
	return k
}

func valFor(id int64, rev int) []byte {
	v := make([]byte, 48)
	binary.LittleEndian.PutUint64(v, uint64(id))
	binary.LittleEndian.PutUint64(v[8:], uint64(rev))
	return v
}

func newTier(t testing.TB, inner Backend, cfg Config) (*platform.Platform, *Tier) {
	t.Helper()
	pc := platform.DefaultConfig()
	pc.TrackData = true
	pc.XP.Wear.Enabled = false
	p := platform.MustNew(pc)
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = 64 << 10
	}
	if cfg.RecordBytes == 0 {
		cfg.RecordBytes = 64
	}
	tier, err := New(p, inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, tier
}

func TestTierHitAfterMiss(t *testing.T) {
	fb := newFake()
	p, tier := newTier(t, fb, Config{})
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		fb.vals[string(keyFor(7))] = valFor(7, 0)
		v1, ok := tier.Get(ctx, keyFor(7))
		if !ok || !bytes.Equal(v1, valFor(7, 0)) {
			t.Fatalf("miss read: ok=%v val=%x", ok, v1)
		}
		v2, ok := tier.Get(ctx, keyFor(7))
		if !ok || !bytes.Equal(v2, valFor(7, 0)) {
			t.Fatalf("hit read: ok=%v val=%x", ok, v2)
		}
	})
	p.Run()
	c := tier.Counters()
	if c.Misses != 1 || c.Hits != 1 || c.Admits != 1 {
		t.Errorf("counters = %+v, want 1 miss, 1 hit, 1 admit", c)
	}
	if fb.gets != 1 {
		t.Errorf("backend saw %d gets, want 1 (second read must come from DRAM)", fb.gets)
	}
}

// The hit must be served from the DRAM copy, not silently re-read from the
// backend: mutate the backend behind the tier's back and confirm the tier
// still returns the admitted bytes.
func TestTierHitServedFromDRAM(t *testing.T) {
	fb := newFake()
	p, tier := newTier(t, fb, Config{})
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		fb.vals[string(keyFor(1))] = valFor(1, 0)
		tier.Get(ctx, keyFor(1))
		fb.vals[string(keyFor(1))] = valFor(1, 99) // out-of-band mutation
		v, ok := tier.Get(ctx, keyFor(1))
		if !ok || !bytes.Equal(v, valFor(1, 0)) {
			t.Errorf("hit returned %x, want the cached rev-0 bytes", v)
		}
	})
	p.Run()
}

func TestTierGetIntoParity(t *testing.T) {
	for _, buffered := range []bool{false, true} {
		var fb *fakeBackend
		var inner Backend
		if buffered {
			b := &bufferFake{fakeBackend: *newFake()}
			fb, inner = &b.fakeBackend, b
		} else {
			fb = newFake()
			inner = fb
		}
		p, tier := newTier(t, inner, Config{})
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			fb.vals[string(keyFor(3))] = valFor(3, 0)
			dst := make([]byte, 64)
			n, ok := tier.GetInto(ctx, keyFor(3), dst)
			if !ok || n != 48 || !bytes.Equal(dst[:n], valFor(3, 0)) {
				t.Fatalf("buffered=%v miss: n=%d ok=%v", buffered, n, ok)
			}
			for i := range dst {
				dst[i] = 0xEE
			}
			n, ok = tier.GetInto(ctx, keyFor(3), dst)
			if !ok || n != 48 || !bytes.Equal(dst[:n], valFor(3, 0)) {
				t.Fatalf("buffered=%v hit: n=%d ok=%v val=%x", buffered, n, ok, dst[:n])
			}
			if _, ok := tier.GetInto(ctx, keyFor(999), dst); ok {
				t.Fatalf("buffered=%v: absent key reported present", buffered)
			}
		})
		p.Run()
		c := tier.Counters()
		if c.Hits != 1 || c.Admits != 1 {
			t.Errorf("buffered=%v counters = %+v, want 1 hit 1 admit", buffered, c)
		}
	}
}

func TestTierInvalidateOnPutAndDelete(t *testing.T) {
	fb := newFake()
	p, tier := newTier(t, fb, Config{})
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		k := keyFor(5)
		fb.vals[string(k)] = valFor(5, 0)
		tier.Get(ctx, k) // admit rev 0
		if err := tier.Put(ctx, k, valFor(5, 1)); err != nil {
			t.Fatal(err)
		}
		v, ok := tier.Get(ctx, k)
		if !ok || !bytes.Equal(v, valFor(5, 1)) {
			t.Fatalf("post-put read: ok=%v val=%x, want rev 1", ok, v)
		}
		v, ok = tier.Get(ctx, k) // rev 1 should now be cached
		if !ok || !bytes.Equal(v, valFor(5, 1)) {
			t.Fatalf("post-put hit: ok=%v val=%x", ok, v)
		}
		if err := tier.Delete(ctx, k); err != nil {
			t.Fatal(err)
		}
		if _, ok := tier.Get(ctx, k); ok {
			t.Fatal("read after delete reported present")
		}
	})
	p.Run()
	c := tier.Counters()
	if c.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2 (put + delete each dropped a cached record)", c.Invalidations)
	}
}

func TestTierAdmitOnNthTouch(t *testing.T) {
	fb := newFake()
	p, tier := newTier(t, fb, Config{Admit: 3})
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		fb.vals[string(keyFor(9))] = valFor(9, 0)
		for i := 0; i < 3; i++ {
			tier.Get(ctx, keyFor(9)) // misses 1..3; the 3rd admits
		}
		tier.Get(ctx, keyFor(9)) // hit
	})
	p.Run()
	c := tier.Counters()
	if c.Misses != 3 || c.Hits != 1 || c.Admits != 1 {
		t.Errorf("counters = %+v, want 3 misses then 1 hit with a single admit", c)
	}
}

func TestTierCapacityEviction(t *testing.T) {
	fb := newFake()
	// 4 slots of 64 B.
	p, tier := newTier(t, fb, Config{CapacityBytes: 256})
	var victims []int64
	tier.SetEvictHook(func(id int64) { victims = append(victims, id) })
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		for id := int64(0); id < 8; id++ {
			fb.vals[string(keyFor(id))] = valFor(id, 0)
			tier.Get(ctx, keyFor(id))
		}
	})
	p.Run()
	if tier.Len() != 4 || tier.Slots() != 4 {
		t.Errorf("len=%d slots=%d, want 4/4", tier.Len(), tier.Slots())
	}
	c := tier.Counters()
	if c.Evictions != 4 || int64(len(victims)) != c.Evictions {
		t.Errorf("evictions=%d victims=%v, want 4", c.Evictions, victims)
	}
}

// With the clock policy, a record referenced since the last sweep survives
// one pass; an untouched record is the victim.
func TestTierClockPrefersUnreferenced(t *testing.T) {
	fb := newFake()
	p, tier := newTier(t, fb, Config{CapacityBytes: 128}) // 2 slots
	var victims []int64
	tier.SetEvictHook(func(id int64) { victims = append(victims, id) })
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		for _, id := range []int64{1, 2} {
			fb.vals[string(keyFor(id))] = valFor(id, 0)
			tier.Get(ctx, keyFor(id))
		}
		tier.Get(ctx, keyFor(1)) // hit: sets 1's reference bit
		fb.vals[string(keyFor(3))] = valFor(3, 0)
		tier.Get(ctx, keyFor(3)) // must evict 2, not the referenced 1
	})
	p.Run()
	if len(victims) != 1 || victims[0] != 2 {
		t.Errorf("victims = %v, want [2]", victims)
	}
}

func TestTierTenantQuota(t *testing.T) {
	fb := newFake()
	// 8 slots total; each tenant owns 100 ids and at most 2 slots.
	p, tier := newTier(t, fb, Config{CapacityBytes: 512, TenantSpan: 100, QuotaBytes: 128})
	var victims []int64
	tier.SetEvictHook(func(id int64) { victims = append(victims, id) })
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		for _, id := range []int64{100, 101} { // tenant 1 settles in first
			fb.vals[string(keyFor(id))] = valFor(id, 0)
			tier.Get(ctx, keyFor(id))
		}
		for id := int64(0); id < 10; id++ { // tenant 0 churns through 10 keys
			fb.vals[string(keyFor(id))] = valFor(id, 0)
			tier.Get(ctx, keyFor(id))
		}
		// Tenant 1's records must have survived tenant 0's churn.
		tier.Get(ctx, keyFor(100))
		tier.Get(ctx, keyFor(101))
	})
	p.Run()
	c := tier.Counters()
	if c.Hits != 2 {
		t.Errorf("tenant-1 re-reads: hits=%d, want 2 (quota must shield the neighbor)", c.Hits)
	}
	for _, v := range victims {
		if v >= 100 {
			t.Errorf("tenant-1 record %d was evicted by tenant-0 churn", v)
		}
	}
	if c.Evictions != 8 {
		t.Errorf("evictions=%d, want 8 (10 tenant-0 admits through 2 quota slots)", c.Evictions)
	}
}

// Same seed, same workload → identical eviction victim streams, for both
// policies.
func TestTierEvictionDeterministic(t *testing.T) {
	for _, policy := range []string{PolicyClock, PolicyRandom} {
		run := func() []int64 {
			fb := newFake()
			p, tier := newTier(t, fb, Config{CapacityBytes: 256, Policy: policy, Seed: 42})
			var victims []int64
			tier.SetEvictHook(func(id int64) { victims = append(victims, id) })
			p.Go("t", 0, func(ctx *platform.MemCtx) {
				rng := sim.NewRNG(7)
				for i := 0; i < 200; i++ {
					id := int64(rng.Intn(32))
					k := keyFor(id)
					if _, ok := fb.vals[string(k)]; !ok {
						fb.vals[string(k)] = valFor(id, 0)
					}
					tier.Get(ctx, k)
				}
			})
			p.Run()
			return victims
		}
		a, b := run(), run()
		if len(a) == 0 {
			t.Fatalf("%s: workload produced no evictions", policy)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: victim stream lengths differ: %d vs %d", policy, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: victim streams diverge at %d: %d vs %d", policy, i, a[i], b[i])
			}
		}
	}
}

func TestTierOversizeReadsThrough(t *testing.T) {
	fb := newFake()
	p, tier := newTier(t, fb, Config{RecordBytes: 64})
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		big := make([]byte, 200) // larger than the 64 B slot
		fb.vals[string(keyFor(1))] = big
		for i := 0; i < 3; i++ {
			v, ok := tier.Get(ctx, keyFor(1))
			if !ok || len(v) != 200 {
				t.Fatalf("oversize read %d: ok=%v len=%d", i, ok, len(v))
			}
		}
	})
	p.Run()
	c := tier.Counters()
	if c.Hits != 0 || c.Admits != 0 || c.Misses != 3 {
		t.Errorf("counters = %+v, want pure read-through", c)
	}
}

// A Put racing a concurrent miss-fill must never strand the old value in
// the tier: after both procs finish, a fresh read returns the last write.
func TestTierWriteRaceNeverServesStale(t *testing.T) {
	fb := newFake()
	fb.lat = 200 // open a wide window between backend snapshot and fill publish
	p, tier := newTier(t, fb, Config{})
	k := keyFor(11)
	const rounds = 50
	p.Go("writer", 0, func(ctx *platform.MemCtx) {
		for rev := 1; rev <= rounds; rev++ {
			tier.Put(ctx, k, valFor(11, rev))
		}
	})
	p.Go("reader", 0, func(ctx *platform.MemCtx) {
		for i := 0; i < rounds*3; i++ {
			if v, ok := tier.Get(ctx, k); ok && len(v) != 48 {
				t.Errorf("read %d returned %d bytes", i, len(v))
			}
		}
	})
	p.Run()

	p2 := p // both procs are done; reuse the platform for the final check
	p2.Go("check", 0, func(ctx *platform.MemCtx) {
		v, ok := tier.Get(ctx, k)
		if !ok || !bytes.Equal(v, valFor(11, rounds)) {
			t.Errorf("final read: ok=%v rev=%d, want rev %d (stale fill published?)",
				ok, binary.LittleEndian.Uint64(v[8:]), rounds)
		}
		v, ok = tier.Get(ctx, k) // and whatever is cached now must also be final
		if !ok || !bytes.Equal(v, valFor(11, rounds)) {
			t.Errorf("final cached read: ok=%v, want rev %d", ok, rounds)
		}
	})
	p2.Run()
}

func TestTierConfigValidation(t *testing.T) {
	pc := platform.DefaultConfig()
	p := platform.MustNew(pc)
	fb := newFake()
	if _, err := New(p, nil, Config{CapacityBytes: 1024, RecordBytes: 64}); err == nil {
		t.Error("nil backend accepted")
	}
	if _, err := New(p, fb, Config{CapacityBytes: 32, RecordBytes: 64}); err == nil {
		t.Error("capacity below one slot accepted")
	}
	if _, err := New(p, fb, Config{CapacityBytes: 1024, RecordBytes: 64, Policy: "lru"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(p, fb, Config{CapacityBytes: 1024, RecordBytes: 64, QuotaBytes: 32}); err == nil {
		t.Error("quota below one slot accepted")
	}
	if _, err := New(p, fb, Config{CapacityBytes: 1024, RecordBytes: 64}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
