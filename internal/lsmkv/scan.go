package lsmkv

import (
	"bytes"
	"sort"

	"optanestudy/internal/platform"
)

// cursor is one source of sorted records for the merge scan.
type cursor interface {
	// peek returns the current record without advancing; ok is false when
	// the source is exhausted.
	peek(ctx *platform.MemCtx) (key, val []byte, tomb, ok bool)
	advance(ctx *platform.MemCtx)
}

// memCursor walks a skiplist's level-0 chain from a start key.
type memCursor struct {
	s   *Skiplist
	cur nodeRef
	// loaded caches the current node's key/val to avoid re-reading on
	// repeated peeks.
	key, val []byte
	tomb     bool
	done     bool
	primed   bool
}

func newMemCursor(ctx *platform.MemCtx, s *Skiplist, start []byte) *memCursor {
	preds := s.findPredecessors(ctx, start)
	return &memCursor{s: s, cur: preds[0]}
}

func (c *memCursor) step(ctx *platform.MemCtx) {
	nextOff := c.s.loadNext(ctx, c.cur, 0)
	if nextOff == 0 {
		c.done = true
		return
	}
	c.cur = c.s.loadNode(ctx, nextOff)
	c.key = c.s.nodeKey(ctx, c.cur)
	c.val = c.s.nodeVal(ctx, c.cur)
	c.tomb = c.cur.tomb
}

func (c *memCursor) peek(ctx *platform.MemCtx) ([]byte, []byte, bool, bool) {
	if !c.primed {
		c.primed = true
		c.step(ctx)
	}
	if c.done {
		return nil, nil, false, false
	}
	return c.key, c.val, c.tomb, true
}

func (c *memCursor) advance(ctx *platform.MemCtx) {
	if c.primed && !c.done {
		c.step(ctx)
	}
}

// sstCursor walks one table's index from the first key ≥ start.
type sstCursor struct {
	t        *sst
	db       *DB
	i        int
	key, val []byte
	tomb     bool
	loaded   bool
}

func newSSTCursor(t *sst, db *DB, start []byte) *sstCursor {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, start) >= 0
	})
	return &sstCursor{t: t, db: db, i: i}
}

func (c *sstCursor) peek(ctx *platform.MemCtx) ([]byte, []byte, bool, bool) {
	if c.i >= len(c.t.index) {
		return nil, nil, false, false
	}
	if !c.loaded {
		k, v, tomb, err := c.t.read(ctx, c.db.pmReg, c.t.index[c.i])
		if err != nil {
			c.i = len(c.t.index)
			return nil, nil, false, false
		}
		c.key, c.val, c.tomb, c.loaded = k, v, tomb, true
	}
	return c.key, c.val, c.tomb, true
}

func (c *sstCursor) advance(*platform.MemCtx) {
	c.i++
	c.loaded = false
}

// Scan streams up to n live records with key ≥ start through fn in
// ascending key order, merging the memtable with every SST — the native
// sorted-range scan (an LSM range read), as opposed to synthesizing a
// range as n point lookups. For duplicate keys the newest source wins and
// tombstones shadow older versions (and are not counted). Returns the
// number of records emitted; fn returning false stops early.
func (db *DB) Scan(ctx *platform.MemCtx, start []byte, n int, fn func(key, val []byte) bool) int {
	db.mu.Lock(ctx.Proc())
	defer db.mu.Unlock()
	// Cursors in newest-first precedence order: memtable, then SSTs from
	// newest to oldest.
	cursors := make([]cursor, 0, 1+len(db.ssts))
	cursors = append(cursors, newMemCursor(ctx, db.mem, start))
	for i := len(db.ssts) - 1; i >= 0; i-- {
		cursors = append(cursors, newSSTCursor(db.ssts[i], db, start))
	}
	emitted := 0
	for emitted < n {
		// Find the smallest current key; precedence order breaks ties.
		var minKey []byte
		winner := -1
		var winVal []byte
		var winTomb bool
		for i, c := range cursors {
			k, v, tomb, ok := c.peek(ctx)
			if !ok {
				continue
			}
			if winner == -1 || bytes.Compare(k, minKey) < 0 {
				minKey, winner, winVal, winTomb = k, i, v, tomb
			}
		}
		if winner == -1 {
			break // every source exhausted
		}
		// Consume this key from every source (duplicates in the memtable
		// sit adjacent, newest first — the first peek already won).
		for _, c := range cursors {
			for {
				k, _, _, ok := c.peek(ctx)
				if !ok || !bytes.Equal(k, minKey) {
					break
				}
				c.advance(ctx)
			}
		}
		if winTomb {
			continue
		}
		emitted++
		if !fn(minKey, winVal) {
			break
		}
	}
	return emitted
}
