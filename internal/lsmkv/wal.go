package lsmkv

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

// WALMode selects how the write-ahead log reaches persistence.
type WALMode int

// Log modes from the Section 4.2 study.
const (
	// WALPOSIX models a log file on a DAX file system: write() copies
	// into the file with cached stores and fsync() flushes the range and
	// commits a metadata journal transaction, all behind syscall costs.
	WALPOSIX WALMode = iota
	// WALFLEX models the FLEX userspace technique: records append
	// directly with non-temporal stores and a single fence; metadata
	// updates happen only when the log crosses an allocation unit.
	WALFLEX
)

func (m WALMode) String() string {
	if m == WALPOSIX {
		return "WAL-POSIX"
	}
	return "WAL-FLEX"
}

// Costs of the logging paths (CPU-side, per call).
const (
	posixWriteCost = 400 * sim.Nanosecond // syscall + VFS + page lookup
	posixFsyncCost = 600 * sim.Nanosecond // syscall + journal machinery
	recordCPUCost  = 60 * sim.Nanosecond  // record assembly + checksum
	flexAllocUnit  = 4096                 // metadata persist per 4 KB crossed
)

// WAL header layout: [8B head]. Records: [4B len][4B crc][payload].
const walHeaderSize = 64

// WAL is an append-only persistent log in a namespace region.
type WAL struct {
	ns   *platform.Namespace
	base int64
	size int64
	mode WALMode
	head int64 // volatile copy of the durable head
}

// NewWAL initializes an empty log at [base, base+size).
func NewWAL(ctx *platform.MemCtx, ns *platform.Namespace, base, size int64, mode WALMode) *WAL {
	w := &WAL{ns: ns, base: base, size: size, mode: mode}
	var hdr [8]byte
	ctx.PersistStore(ns, base, len(hdr), hdr[:])
	return w
}

// ErrWALFull reports log-space exhaustion.
var ErrWALFull = errors.New("lsmkv: WAL full")

// Append durably adds one record (the Set path syncs every operation, as
// in the paper's db_bench configuration).
func (w *WAL) Append(ctx *platform.MemCtx, payload []byte) error {
	recSize := int64(8 + len(payload))
	if walHeaderSize+w.head+recSize > w.size {
		return ErrWALFull
	}
	off := w.base + walHeaderSize + w.head
	rec := make([]byte, recSize)
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	copy(rec[8:], payload)

	ctx.Proc().Sleep(recordCPUCost)
	switch w.mode {
	case WALPOSIX:
		ctx.Proc().Sleep(posixWriteCost)
		ctx.Store(w.ns, off, len(rec), rec)
		// fsync: flush the data range, then commit the file-system
		// journal (two metadata blocks and a commit record).
		ctx.Proc().Sleep(posixFsyncCost)
		ctx.CLWB(w.ns, off, len(rec))
		ctx.SFence()
		w.journalCommit(ctx)
	case WALFLEX:
		ctx.NTStore(w.ns, off, len(rec), rec)
		ctx.SFence()
		if (w.head+recSize)/flexAllocUnit != w.head/flexAllocUnit {
			// Crossed an allocation unit: persist the file size.
			var sz [8]byte
			binary.LittleEndian.PutUint64(sz[:], uint64(w.head+recSize))
			ctx.PersistStore(w.ns, w.base, len(sz), sz[:])
		}
	}
	w.head += recSize
	return nil
}

// journalCommit models an ext4-style journaled metadata commit: two
// metadata blocks plus a commit block, each persisted in order.
func (w *WAL) journalCommit(ctx *platform.MemCtx) {
	// The journal lives in the tail of the WAL region.
	jbase := w.base + w.size - 4096
	for b := 0; b < 2; b++ {
		ctx.NTStore(w.ns, jbase+int64(b)*256, 256, nil)
	}
	ctx.SFence()
	ctx.NTStore(w.ns, jbase+1024, 64, nil)
	ctx.SFence()
}

// Truncate durably resets the log (after a memtable flush).
func (w *WAL) Truncate(ctx *platform.MemCtx) {
	var hdr [8]byte
	ctx.PersistStore(w.ns, w.base, len(hdr), hdr[:])
	w.head = 0
}

// Bytes returns the bytes currently in the log.
func (w *WAL) Bytes() int64 { return w.head }

// Replay iterates the durable records (recovery path, untimed).
func (w *WAL) Replay(fn func(payload []byte) bool) error {
	off := w.base + walHeaderSize
	end := w.base + w.size
	for off+8 <= end {
		var hdr [8]byte
		w.ns.ReadDurable(off, hdr[:])
		n := int64(binary.LittleEndian.Uint32(hdr[0:]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || off+8+n > end {
			return nil // end of log
		}
		payload := make([]byte, n)
		w.ns.ReadDurable(off+8, payload)
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // torn tail record: stop replay
		}
		if !fn(payload) {
			return nil
		}
		off += 8 + n
	}
	return nil
}
