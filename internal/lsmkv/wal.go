package lsmkv

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/sim"
)

// WALMode selects how the write-ahead log reaches persistence.
type WALMode int

// Log modes from the Section 4.2 study.
const (
	// WALPOSIX models a log file on a DAX file system: write() copies
	// into the file with cached stores and fsync() flushes the range and
	// commits a metadata journal transaction, all behind syscall costs.
	WALPOSIX WALMode = iota
	// WALFLEX models the FLEX userspace technique: records append
	// directly through the record persister (non-temporal stores and a
	// single fence by default); metadata updates happen only when the log
	// crosses an allocation unit.
	WALFLEX
)

func (m WALMode) String() string {
	if m == WALPOSIX {
		return "WAL-POSIX"
	}
	return "WAL-FLEX"
}

// Costs of the logging paths (CPU-side, per call).
const (
	posixWriteCost = 400 * sim.Nanosecond // syscall + VFS + page lookup
	posixFsyncCost = 600 * sim.Nanosecond // syscall + journal machinery
	recordCPUCost  = 60 * sim.Nanosecond  // record assembly + checksum
	flexAllocUnit  = 4096                 // metadata persist per 4 KB crossed
)

// WAL header layout: [8B head]. Records: [4B len][4B crc][payload].
const walHeaderSize = 64

// WAL is an append-only persistent log in a namespace region. Its record
// stream goes through the rec persister (non-temporal by default — a FLEX
// append is a sequential stream of fresh bytes) and its small metadata
// persists through the meta persister (store+clwb).
type WAL struct {
	reg  pmem.Region
	mode WALMode
	head int64 // volatile copy of the durable head
	rec  *pmem.Persister
	meta *pmem.Persister
	// jnl streams the POSIX-mode journal blocks; pinned to NTStream so the
	// modeled ext4 commit is independent of the record policy.
	jnl *pmem.Persister
}

// NewWAL initializes an empty log at [base, base+size) with the default
// record-persist policy.
func NewWAL(ctx *platform.MemCtx, ns *platform.Namespace, base, size int64, mode WALMode) *WAL {
	return NewWALPolicy(ctx, ns, base, size, mode, pmem.NTStream)
}

// NewWALPolicy initializes an empty log whose FLEX record stream persists
// under the given pmem policy (the WAL-recovery suites re-run under every
// policy; WAL-POSIX ignores it — its write path is cached stores by
// construction).
func NewWALPolicy(ctx *platform.MemCtx, ns *platform.Namespace, base, size int64, mode WALMode, pol pmem.Policy) *WAL {
	reg, err := pmem.NewRegion(ns, base, size)
	if err != nil {
		panic(err)
	}
	w := &WAL{
		reg:  reg,
		mode: mode,
		rec:  pmem.NewPersister(pol),
		meta: pmem.NewPersister(pmem.StoreFlush),
		jnl:  pmem.NewPersister(pmem.NTStream),
	}
	var hdr [8]byte
	w.meta.Persist(ctx, w.reg, 0, len(hdr), hdr[:])
	return w
}

// ErrWALFull reports log-space exhaustion.
var ErrWALFull = errors.New("lsmkv: WAL full")

// Append durably adds one record (the Set path syncs every operation, as
// in the paper's db_bench configuration).
func (w *WAL) Append(ctx *platform.MemCtx, payload []byte) error {
	recSize := int64(8 + len(payload))
	if walHeaderSize+w.head+recSize > w.reg.Size() {
		return ErrWALFull
	}
	off := walHeaderSize + w.head
	rec := make([]byte, recSize)
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	copy(rec[8:], payload)

	ctx.Proc().Sleep(recordCPUCost)
	switch w.mode {
	case WALPOSIX:
		ctx.Proc().Sleep(posixWriteCost)
		w.reg.Store(ctx, off, len(rec), rec)
		// fsync: flush the data range, then commit the file-system
		// journal (two metadata blocks and a commit record).
		ctx.Proc().Sleep(posixFsyncCost)
		w.meta.Flush(ctx, w.reg, off, len(rec))
		w.meta.Fence(ctx)
		w.journalCommit(ctx)
	case WALFLEX:
		w.rec.Persist(ctx, w.reg, off, len(rec), rec)
		if (w.head+recSize)/flexAllocUnit != w.head/flexAllocUnit {
			// Crossed an allocation unit: persist the file size.
			var sz [8]byte
			binary.LittleEndian.PutUint64(sz[:], uint64(w.head+recSize))
			w.meta.Persist(ctx, w.reg, 0, len(sz), sz[:])
		}
	}
	w.head += recSize
	return nil
}

// journalCommit models an ext4-style journaled metadata commit: two
// metadata blocks plus a commit record, each persisted in order.
func (w *WAL) journalCommit(ctx *platform.MemCtx) {
	// The journal lives in the tail of the WAL region.
	jbase := w.reg.Size() - 4096
	for b := 0; b < 2; b++ {
		w.jnl.Write(ctx, w.reg, jbase+int64(b)*256, 256, nil)
	}
	w.jnl.Fence(ctx)
	w.jnl.Persist(ctx, w.reg, jbase+1024, 64, nil)
}

// Truncate durably resets the log (after a memtable flush).
func (w *WAL) Truncate(ctx *platform.MemCtx) {
	var hdr [8]byte
	w.meta.Persist(ctx, w.reg, 0, len(hdr), hdr[:])
	w.head = 0
}

// Bytes returns the bytes currently in the log.
func (w *WAL) Bytes() int64 { return w.head }

// Replay iterates the durable records (recovery path, untimed).
func (w *WAL) Replay(fn func(payload []byte) bool) error {
	off := int64(walHeaderSize)
	end := w.reg.Size()
	for off+8 <= end {
		var hdr [8]byte
		w.reg.ReadDurable(off, hdr[:])
		n := int64(binary.LittleEndian.Uint32(hdr[0:]))
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || off+8+n > end {
			return nil // end of log
		}
		payload := make([]byte, n)
		w.reg.ReadDurable(off+8, payload)
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // torn tail record: stop replay
		}
		if !fn(payload) {
			return nil
		}
		off += 8 + n
	}
	return nil
}
