package lsmkv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/sim"
)

// Mode selects the persistence strategy under study (Section 4.2).
type Mode int

// Persistence strategies.
const (
	// ModeWALPOSIX: volatile memtable + file-style WAL.
	ModeWALPOSIX Mode = iota
	// ModeWALFLEX: volatile memtable + FLEX userspace WAL.
	ModeWALFLEX
	// ModePersistentMemtable: skiplist directly in persistent memory, no
	// WAL (fine-grained persistence).
	ModePersistentMemtable
)

func (m Mode) String() string {
	switch m {
	case ModeWALPOSIX:
		return "WAL-POSIX"
	case ModeWALFLEX:
		return "WAL-FLEX"
	default:
		return "Persistent-skiplist"
	}
}

// Options configures a DB.
type Options struct {
	Mode Mode
	// PM is the persistent namespace (WAL / persistent memtable / SSTs).
	PM *platform.Namespace
	// DRAM backs the volatile memtable in the WAL modes.
	DRAM *platform.Namespace
	// MemtableBytes bounds the memtable before a flush (default 1 MB).
	MemtableBytes int64
	Seed          uint64
	// WALPolicy overrides the FLEX record-persist policy (default
	// NTStream); the WAL-recovery suite re-runs under every policy.
	WALPolicy *pmem.Policy
}

// Region layout inside PM: [WAL | memtable (if persistent) | SST area].
const (
	walRegion = 4 << 20
)

// DB is the LSM store.
type DB struct {
	opt  Options
	mu   sim.Mutex
	mem  *Skiplist
	wal  *WAL
	ssts []*sst

	// pmReg spans the PM namespace; sstCopier streams SST installs through
	// the non-temporal policy (bulk sequential writes, the access pattern
	// 3D XPoint likes).
	pmReg     pmem.Region
	sstCopier *pmem.Copier

	// getScratch stages SST record loads for GetInto; grown on demand, it
	// amortizes to zero allocation on the serving read path. Guarded by mu.
	getScratch []byte

	memNS       *platform.Namespace
	memBase     int64
	sstBase     int64
	sstNext     int64
	flushes     int
	compactions int
	sets        int64
	dels        int64
	replayed    int
}

// sst is one immutable sorted table with a volatile sparse index.
type sst struct {
	base  int64
	size  int64
	index []sstIndexEntry // every entry indexed (tables are small)
}

type sstIndexEntry struct {
	key []byte
	off int64
}

// Open creates a fresh DB (use Recover to reattach after a crash).
func Open(ctx *platform.MemCtx, opt Options) (*DB, error) {
	if opt.PM == nil {
		return nil, errors.New("lsmkv: PM namespace required")
	}
	if opt.Mode != ModePersistentMemtable && opt.DRAM == nil {
		return nil, errors.New("lsmkv: DRAM namespace required for WAL modes")
	}
	if opt.MemtableBytes == 0 {
		opt.MemtableBytes = 1 << 20
	}
	db := &DB{opt: opt}
	db.attachPM()
	switch opt.Mode {
	case ModePersistentMemtable:
		db.memNS = opt.PM
		db.memBase = walRegion
		db.mem = NewSkiplist(ctx, opt.PM, db.memBase, opt.MemtableBytes, true, opt.Seed)
	default:
		db.wal = newWAL(ctx, opt)
		db.memNS = opt.DRAM
		db.memBase = 0
		db.mem = NewSkiplist(ctx, opt.DRAM, 0, opt.MemtableBytes, false, opt.Seed)
	}
	db.sstBase = walRegion + opt.MemtableBytes
	db.sstNext = db.sstBase
	return db, nil
}

func (db *DB) attachPM() {
	db.pmReg = pmem.Whole(db.opt.PM)
	db.sstCopier = pmem.NewCopier(pmem.NewPersister(pmem.NTStream), 0)
}

func newWAL(ctx *platform.MemCtx, opt Options) *WAL {
	pol := pmem.NTStream
	if opt.WALPolicy != nil {
		pol = *opt.WALPolicy
	}
	return NewWALPolicy(ctx, opt.PM, 0, walRegion, walMode(opt.Mode), pol)
}

func walMode(m Mode) WALMode {
	if m == ModeWALPOSIX {
		return WALPOSIX
	}
	return WALFLEX
}

// Set durably inserts a key-value pair (sync per operation, like the
// paper's db_bench configuration). Values must stay below the 64 KB
// tombstone sentinel.
func (db *DB) Set(ctx *platform.MemCtx, key, val []byte) error {
	if len(val) >= tombstoneLen {
		return fmt.Errorf("lsmkv: %d-byte value collides with the tombstone sentinel (max %d)", len(val), tombstoneLen-1)
	}
	db.mu.Lock(ctx.Proc())
	defer db.mu.Unlock()
	if err := db.applyLocked(ctx, key, val, false); err != nil {
		return err
	}
	db.sets++
	return nil
}

// Delete durably removes key by writing a tombstone (RocksDB-style blind
// delete: no read of the prior value on the latency path).
func (db *DB) Delete(ctx *platform.MemCtx, key []byte) error {
	db.mu.Lock(ctx.Proc())
	defer db.mu.Unlock()
	if err := db.applyLocked(ctx, key, nil, true); err != nil {
		return err
	}
	db.dels++
	return nil
}

// applyLocked journals and applies one mutation, flushing the memtable and
// retrying once on exhaustion.
func (db *DB) applyLocked(ctx *platform.MemCtx, key, val []byte, tomb bool) error {
	if db.wal != nil {
		rec := encodeAny(key, val, tomb)
		if err := db.wal.Append(ctx, rec); err != nil {
			if err == ErrWALFull {
				if ferr := db.flushLocked(ctx); ferr != nil {
					return ferr
				}
				err = db.wal.Append(ctx, rec)
			}
			if err != nil {
				return err
			}
		}
	}
	insert := func() error {
		if tomb {
			return db.mem.Delete(ctx, key)
		}
		return db.mem.Insert(ctx, key, val)
	}
	if err := insert(); err != nil {
		if err != ErrFull {
			return err
		}
		if err := db.flushLocked(ctx); err != nil {
			return err
		}
		if err := insert(); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the newest value for key. A tombstone anywhere above an
// older version hides it.
func (db *DB) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	db.mu.Lock(ctx.Proc())
	defer db.mu.Unlock()
	if v, ok, tomb := db.mem.Find(ctx, key); ok || tomb {
		return v, ok
	}
	for i := len(db.ssts) - 1; i >= 0; i-- {
		if v, ok, tomb := db.ssts[i].find(ctx, db.pmReg, key); ok || tomb {
			return v, ok
		}
	}
	return nil, false
}

// GetInto is the allocation-free Get: the newest value for key lands in
// dst and its full length is returned (ok reports presence). The lookup
// issues exactly the loads Get issues — memtable first, then tables
// newest-first — so simulated timing is identical and only the Go-heap
// behavior differs (GetInto parity with pmemkv's CMap).
func (db *DB) GetInto(ctx *platform.MemCtx, key, dst []byte) (int, bool) {
	db.mu.Lock(ctx.Proc())
	defer db.mu.Unlock()
	if n, ok, tomb := db.mem.FindInto(ctx, key, dst); ok || tomb {
		return n, ok
	}
	for i := len(db.ssts) - 1; i >= 0; i-- {
		if n, ok, tomb := db.ssts[i].findInto(ctx, db.pmReg, key, dst, &db.getScratch); ok || tomb {
			return n, ok
		}
	}
	return 0, false
}

// flushLocked writes the memtable to a fresh SST (sequential non-temporal
// stream), truncates the WAL, and resets the memtable. Tombstones are
// carried into the table so they keep shadowing older versions.
func (db *DB) flushLocked(ctx *platform.MemCtx) error {
	table := &sst{base: db.sstNext}
	var buf bytes.Buffer
	seen := map[string]bool{}
	db.mem.Scan(ctx, func(key, val []byte, tomb bool) bool {
		if seen[string(key)] {
			return true // newest version already emitted
		}
		seen[string(key)] = true
		table.index = append(table.index, sstIndexEntry{
			key: append([]byte(nil), key...),
			off: int64(buf.Len()),
		})
		rec := encodeAny(key, val, tomb)
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(rec)))
		buf.Write(n[:])
		buf.Write(rec)
		return true
	})
	table.size = int64(buf.Len())
	if table.base+table.size > db.opt.PM.Size {
		return errors.New("lsmkv: SST area exhausted")
	}
	if table.size > 0 {
		db.sstCopier.Persist(ctx, db.pmReg, table.base, buf.Bytes())
		db.ssts = append(db.ssts, table)
		db.sstNext += (table.size + 4095) &^ 4095
	}
	if len(db.ssts) > compactionTrigger {
		if err := db.compactLocked(ctx); err != nil {
			return err
		}
	}
	if db.wal != nil {
		db.wal.Truncate(ctx)
		db.mem = NewSkiplist(ctx, db.memNS, db.memBase, db.opt.MemtableBytes, false, db.opt.Seed+uint64(db.flushes)+1)
	} else {
		db.mem = NewSkiplist(ctx, db.memNS, db.memBase, db.opt.MemtableBytes, true, db.opt.Seed+uint64(db.flushes)+1)
	}
	db.flushes++
	return nil
}

// Flush forces a memtable flush.
func (db *DB) Flush(ctx *platform.MemCtx) error {
	db.mu.Lock(ctx.Proc())
	defer db.mu.Unlock()
	return db.flushLocked(ctx)
}

// Flushes reports how many memtable flushes occurred.
func (db *DB) Flushes() int { return db.flushes }

// compactionTrigger is the L0 table count that starts a merge.
const compactionTrigger = 4

// compactLocked merge-sorts every SST into one (newest version of each
// key wins), writes it sequentially — the access pattern 3D XPoint likes —
// and retires the inputs. Tombstones drop out here: the merged table is
// the lowest level, so nothing older remains for them to shadow. Space
// management is generational: the merged table is appended and the old
// tables' space becomes reusable once the append frontier wraps (a full
// free-space map is future work, as in the original study's prototype).
func (db *DB) compactLocked(ctx *platform.MemCtx) error {
	if len(db.ssts) < 2 {
		return nil
	}
	merged := &sst{base: db.sstNext}
	var buf bytes.Buffer
	// Newest tables take precedence: iterate newest-first, keep first
	// occurrence of each key, then emit in sorted order.
	kept := map[string][]byte{}
	seen := map[string]bool{}
	var order []string
	for i := len(db.ssts) - 1; i >= 0; i-- {
		t := db.ssts[i]
		for _, ie := range t.index {
			k := string(ie.key)
			if seen[k] {
				continue
			}
			seen[k] = true
			_, v, tomb, err := t.read(ctx, db.pmReg, ie)
			if err != nil {
				return err
			}
			if tomb {
				continue // newest version is a delete: the key vanishes
			}
			kept[k] = append([]byte(nil), v...)
			order = append(order, k)
		}
	}
	sort.Strings(order)
	for _, k := range order {
		merged.index = append(merged.index, sstIndexEntry{
			key: []byte(k), off: int64(buf.Len()),
		})
		rec := encodeRecord([]byte(k), kept[k])
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(rec)))
		buf.Write(n[:])
		buf.Write(rec)
	}
	merged.size = int64(buf.Len())
	if merged.base+merged.size > db.opt.PM.Size {
		return errors.New("lsmkv: SST area exhausted during compaction")
	}
	if merged.size > 0 {
		db.sstCopier.Persist(ctx, db.pmReg, merged.base, buf.Bytes())
		db.sstNext += (merged.size + 4095) &^ 4095
		db.ssts = []*sst{merged}
	} else {
		db.ssts = nil
	}
	db.compactions++
	return nil
}

// Compactions reports how many SST merges occurred.
func (db *DB) Compactions() int { return db.compactions }

// Tables reports the current SST count.
func (db *DB) Tables() int { return len(db.ssts) }

// read loads and decodes the record behind one index entry.
func (t *sst) read(ctx *platform.MemCtx, pm pmem.Region, ie sstIndexEntry) (key, val []byte, tomb bool, err error) {
	var n [4]byte
	pm.LoadInto(ctx, t.base+ie.off, n[:])
	rec := make([]byte, binary.LittleEndian.Uint32(n[:]))
	pm.LoadInto(ctx, t.base+ie.off+4, rec)
	return decodeRecord(rec)
}

func (t *sst) find(ctx *platform.MemCtx, pm pmem.Region, key []byte) (val []byte, ok, tomb bool) {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, key) >= 0
	})
	if i >= len(t.index) || !bytes.Equal(t.index[i].key, key) {
		return nil, false, false
	}
	k, v, tomb, err := t.read(ctx, pm, t.index[i])
	if err != nil || !bytes.Equal(k, key) {
		return nil, false, false
	}
	if tomb {
		return nil, false, true
	}
	return v, true, false
}

// findInto is find with the record staged through scratch (grown on
// demand) and the value copied into dst: the same 4-byte length load and
// whole-record load as read, with no per-lookup allocation once scratch
// has reached the table's record size.
func (t *sst) findInto(ctx *platform.MemCtx, pm pmem.Region, key, dst []byte, scratch *[]byte) (n int, ok, tomb bool) {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, key) >= 0
	})
	if i >= len(t.index) || !bytes.Equal(t.index[i].key, key) {
		return 0, false, false
	}
	ie := t.index[i]
	var nbuf [4]byte
	pm.LoadInto(ctx, t.base+ie.off, nbuf[:])
	recLen := int(binary.LittleEndian.Uint32(nbuf[:]))
	if recLen > len(*scratch) {
		*scratch = make([]byte, recLen)
	}
	rec := (*scratch)[:recLen]
	pm.LoadInto(ctx, t.base+ie.off+4, rec)
	k, v, tomb, err := decodeRecord(rec)
	if err != nil || !bytes.Equal(k, key) {
		return 0, false, false
	}
	if tomb {
		return 0, false, true
	}
	copy(dst, v)
	return len(v), true, false
}

// tombstoneLen is the valLen sentinel marking a delete record (values are
// therefore capped one byte short of 64 KB).
const tombstoneLen = 0xFFFF

func encodeRecord(key, val []byte) []byte {
	rec := make([]byte, 4+len(key)+len(val))
	binary.LittleEndian.PutUint16(rec[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(rec[2:], uint16(len(val)))
	copy(rec[4:], key)
	copy(rec[4+len(key):], val)
	return rec
}

// encodeTombstone renders a delete marker for key.
func encodeTombstone(key []byte) []byte {
	rec := make([]byte, 4+len(key))
	binary.LittleEndian.PutUint16(rec[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(rec[2:], tombstoneLen)
	copy(rec[4:], key)
	return rec
}

func encodeAny(key, val []byte, tomb bool) []byte {
	if tomb {
		return encodeTombstone(key)
	}
	return encodeRecord(key, val)
}

func decodeRecord(rec []byte) (key, val []byte, tomb bool, err error) {
	if len(rec) < 4 {
		return nil, nil, false, fmt.Errorf("lsmkv: short record (%d bytes)", len(rec))
	}
	kl := int(binary.LittleEndian.Uint16(rec[0:]))
	vl := int(binary.LittleEndian.Uint16(rec[2:]))
	if vl == tombstoneLen {
		if 4+kl > len(rec) {
			return nil, nil, false, fmt.Errorf("lsmkv: corrupt tombstone")
		}
		return rec[4 : 4+kl], nil, true, nil
	}
	if 4+kl+vl > len(rec) {
		return nil, nil, false, fmt.Errorf("lsmkv: corrupt record")
	}
	return rec[4 : 4+kl], rec[4+kl : 4+kl+vl], false, nil
}

// RecoverWAL rebuilds a WAL-mode DB's memtable from the durable log after
// a crash, returning the recovered DB and how many records were replayed.
func RecoverWAL(ctx *platform.MemCtx, opt Options) (*DB, int, error) {
	if opt.Mode == ModePersistentMemtable {
		return nil, 0, errors.New("lsmkv: RecoverWAL is for WAL modes")
	}
	db, err := Open(ctx, opt)
	if err != nil {
		return nil, 0, err
	}
	n := 0
	err = db.wal.Replay(func(payload []byte) bool {
		k, v, tomb, derr := decodeRecord(payload)
		if derr != nil {
			return false
		}
		if tomb {
			if db.mem.Delete(ctx, k) != nil {
				return false
			}
		} else if db.mem.Insert(ctx, k, v) != nil {
			return false
		}
		db.wal.head += int64(8 + len(payload))
		n++
		return true
	})
	db.replayed = n
	return db, n, err
}

// RecoverPersistent reattaches a persistent-memtable DB after a crash.
func RecoverPersistent(ctx *platform.MemCtx, opt Options) (*DB, error) {
	if opt.Mode != ModePersistentMemtable {
		return nil, errors.New("lsmkv: RecoverPersistent needs ModePersistentMemtable")
	}
	if opt.MemtableBytes == 0 {
		opt.MemtableBytes = 1 << 20
	}
	db := &DB{opt: opt, memNS: opt.PM, memBase: walRegion}
	db.attachPM()
	db.mem = RecoverSkiplist(ctx, opt.PM, db.memBase, opt.MemtableBytes, opt.Seed)
	db.sstBase = walRegion + opt.MemtableBytes
	db.sstNext = db.sstBase
	return db, nil
}
