package lsmkv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

// Mode selects the persistence strategy under study (Section 4.2).
type Mode int

// Persistence strategies.
const (
	// ModeWALPOSIX: volatile memtable + file-style WAL.
	ModeWALPOSIX Mode = iota
	// ModeWALFLEX: volatile memtable + FLEX userspace WAL.
	ModeWALFLEX
	// ModePersistentMemtable: skiplist directly in persistent memory, no
	// WAL (fine-grained persistence).
	ModePersistentMemtable
)

func (m Mode) String() string {
	switch m {
	case ModeWALPOSIX:
		return "WAL-POSIX"
	case ModeWALFLEX:
		return "WAL-FLEX"
	default:
		return "Persistent-skiplist"
	}
}

// Options configures a DB.
type Options struct {
	Mode Mode
	// PM is the persistent namespace (WAL / persistent memtable / SSTs).
	PM *platform.Namespace
	// DRAM backs the volatile memtable in the WAL modes.
	DRAM *platform.Namespace
	// MemtableBytes bounds the memtable before a flush (default 1 MB).
	MemtableBytes int64
	Seed          uint64
}

// Region layout inside PM: [WAL | memtable (if persistent) | SST area].
const (
	walRegion = 4 << 20
)

// DB is the LSM store.
type DB struct {
	opt  Options
	mu   sim.Mutex
	mem  *Skiplist
	wal  *WAL
	ssts []*sst

	memNS       *platform.Namespace
	memBase     int64
	sstBase     int64
	sstNext     int64
	flushes     int
	compactions int
	sets        int64
	replayed    int
}

// sst is one immutable sorted table with a volatile sparse index.
type sst struct {
	base  int64
	size  int64
	index []sstIndexEntry // every entry indexed (tables are small)
}

type sstIndexEntry struct {
	key []byte
	off int64
}

// Open creates a fresh DB (use Recover to reattach after a crash).
func Open(ctx *platform.MemCtx, opt Options) (*DB, error) {
	if opt.PM == nil {
		return nil, errors.New("lsmkv: PM namespace required")
	}
	if opt.Mode != ModePersistentMemtable && opt.DRAM == nil {
		return nil, errors.New("lsmkv: DRAM namespace required for WAL modes")
	}
	if opt.MemtableBytes == 0 {
		opt.MemtableBytes = 1 << 20
	}
	db := &DB{opt: opt}
	switch opt.Mode {
	case ModePersistentMemtable:
		db.memNS = opt.PM
		db.memBase = walRegion
		db.mem = NewSkiplist(ctx, opt.PM, db.memBase, opt.MemtableBytes, true, opt.Seed)
	default:
		db.wal = NewWAL(ctx, opt.PM, 0, walRegion, walMode(opt.Mode))
		db.memNS = opt.DRAM
		db.memBase = 0
		db.mem = NewSkiplist(ctx, opt.DRAM, 0, opt.MemtableBytes, false, opt.Seed)
	}
	db.sstBase = walRegion + opt.MemtableBytes
	db.sstNext = db.sstBase
	return db, nil
}

func walMode(m Mode) WALMode {
	if m == ModeWALPOSIX {
		return WALPOSIX
	}
	return WALFLEX
}

// Set durably inserts a key-value pair (sync per operation, like the
// paper's db_bench configuration).
func (db *DB) Set(ctx *platform.MemCtx, key, val []byte) error {
	db.mu.Lock(ctx.Proc())
	defer db.mu.Unlock()
	if db.wal != nil {
		rec := encodeRecord(key, val)
		if err := db.wal.Append(ctx, rec); err != nil {
			if err == ErrWALFull {
				if ferr := db.flushLocked(ctx); ferr != nil {
					return ferr
				}
				err = db.wal.Append(ctx, rec)
			}
			if err != nil {
				return err
			}
		}
	}
	if err := db.mem.Insert(ctx, key, val); err != nil {
		if err != ErrFull {
			return err
		}
		if err := db.flushLocked(ctx); err != nil {
			return err
		}
		if err := db.mem.Insert(ctx, key, val); err != nil {
			return err
		}
	}
	db.sets++
	return nil
}

// Get returns the newest value for key.
func (db *DB) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	db.mu.Lock(ctx.Proc())
	defer db.mu.Unlock()
	if v, ok := db.mem.Get(ctx, key); ok {
		return v, true
	}
	for i := len(db.ssts) - 1; i >= 0; i-- {
		if v, ok := db.ssts[i].get(ctx, db.opt.PM, key); ok {
			return v, true
		}
	}
	return nil, false
}

// flushLocked writes the memtable to a fresh SST (sequential non-temporal
// stream), truncates the WAL, and resets the memtable.
func (db *DB) flushLocked(ctx *platform.MemCtx) error {
	table := &sst{base: db.sstNext}
	var buf bytes.Buffer
	seen := map[string]bool{}
	db.mem.Scan(ctx, func(key, val []byte) bool {
		if seen[string(key)] {
			return true // newest version already emitted
		}
		seen[string(key)] = true
		table.index = append(table.index, sstIndexEntry{
			key: append([]byte(nil), key...),
			off: int64(buf.Len()),
		})
		rec := encodeRecord(key, val)
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(rec)))
		buf.Write(n[:])
		buf.Write(rec)
		return true
	})
	table.size = int64(buf.Len())
	if table.base+table.size > db.opt.PM.Size {
		return errors.New("lsmkv: SST area exhausted")
	}
	if table.size > 0 {
		ctx.PersistNT(db.opt.PM, table.base, buf.Len(), buf.Bytes())
		db.ssts = append(db.ssts, table)
		db.sstNext += (table.size + 4095) &^ 4095
	}
	if len(db.ssts) > compactionTrigger {
		if err := db.compactLocked(ctx); err != nil {
			return err
		}
	}
	if db.wal != nil {
		db.wal.Truncate(ctx)
		db.mem = NewSkiplist(ctx, db.memNS, db.memBase, db.opt.MemtableBytes, false, db.opt.Seed+uint64(db.flushes)+1)
	} else {
		db.mem = NewSkiplist(ctx, db.memNS, db.memBase, db.opt.MemtableBytes, true, db.opt.Seed+uint64(db.flushes)+1)
	}
	db.flushes++
	return nil
}

// Flush forces a memtable flush.
func (db *DB) Flush(ctx *platform.MemCtx) error {
	db.mu.Lock(ctx.Proc())
	defer db.mu.Unlock()
	return db.flushLocked(ctx)
}

// Flushes reports how many memtable flushes occurred.
func (db *DB) Flushes() int { return db.flushes }

// compactionTrigger is the L0 table count that starts a merge.
const compactionTrigger = 4

// compactLocked merge-sorts every SST into one (newest version of each
// key wins), writes it sequentially — the access pattern 3D XPoint likes —
// and retires the inputs. Space management is generational: the merged
// table is appended and the old tables' space becomes reusable once the
// append frontier wraps (a full free-space map is future work, as in the
// original study's prototype).
func (db *DB) compactLocked(ctx *platform.MemCtx) error {
	if len(db.ssts) < 2 {
		return nil
	}
	merged := &sst{base: db.sstNext}
	var buf bytes.Buffer
	// Newest tables take precedence: iterate newest-first, keep first
	// occurrence of each key, then emit in sorted order.
	kept := map[string][]byte{}
	var order []string
	for i := len(db.ssts) - 1; i >= 0; i-- {
		t := db.ssts[i]
		for _, ie := range t.index {
			k := string(ie.key)
			if _, seen := kept[k]; seen {
				continue
			}
			var n [4]byte
			ctx.LoadInto(db.opt.PM, t.base+ie.off, n[:])
			rec := make([]byte, binary.LittleEndian.Uint32(n[:]))
			ctx.LoadInto(db.opt.PM, t.base+ie.off+4, rec)
			_, v, err := decodeRecord(rec)
			if err != nil {
				return err
			}
			kept[k] = append([]byte(nil), v...)
			order = append(order, k)
		}
	}
	sort.Strings(order)
	for _, k := range order {
		merged.index = append(merged.index, sstIndexEntry{
			key: []byte(k), off: int64(buf.Len()),
		})
		rec := encodeRecord([]byte(k), kept[k])
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(rec)))
		buf.Write(n[:])
		buf.Write(rec)
	}
	merged.size = int64(buf.Len())
	if merged.base+merged.size > db.opt.PM.Size {
		return errors.New("lsmkv: SST area exhausted during compaction")
	}
	if merged.size > 0 {
		ctx.PersistNT(db.opt.PM, merged.base, buf.Len(), buf.Bytes())
		db.sstNext += (merged.size + 4095) &^ 4095
		db.ssts = []*sst{merged}
	} else {
		db.ssts = nil
	}
	db.compactions++
	return nil
}

// Compactions reports how many SST merges occurred.
func (db *DB) Compactions() int { return db.compactions }

// Tables reports the current SST count.
func (db *DB) Tables() int { return len(db.ssts) }

func (t *sst) get(ctx *platform.MemCtx, pm *platform.Namespace, key []byte) ([]byte, bool) {
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, key) >= 0
	})
	if i >= len(t.index) || !bytes.Equal(t.index[i].key, key) {
		return nil, false
	}
	var n [4]byte
	ctx.LoadInto(pm, t.base+t.index[i].off, n[:])
	rec := make([]byte, binary.LittleEndian.Uint32(n[:]))
	ctx.LoadInto(pm, t.base+t.index[i].off+4, rec)
	k, v, err := decodeRecord(rec)
	if err != nil || !bytes.Equal(k, key) {
		return nil, false
	}
	return v, true
}

func encodeRecord(key, val []byte) []byte {
	rec := make([]byte, 4+len(key)+len(val))
	binary.LittleEndian.PutUint16(rec[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(rec[2:], uint16(len(val)))
	copy(rec[4:], key)
	copy(rec[4+len(key):], val)
	return rec
}

func decodeRecord(rec []byte) (key, val []byte, err error) {
	if len(rec) < 4 {
		return nil, nil, fmt.Errorf("lsmkv: short record (%d bytes)", len(rec))
	}
	kl := int(binary.LittleEndian.Uint16(rec[0:]))
	vl := int(binary.LittleEndian.Uint16(rec[2:]))
	if 4+kl+vl > len(rec) {
		return nil, nil, fmt.Errorf("lsmkv: corrupt record")
	}
	return rec[4 : 4+kl], rec[4+kl : 4+kl+vl], nil
}

// RecoverWAL rebuilds a WAL-mode DB's memtable from the durable log after
// a crash, returning the recovered DB and how many records were replayed.
func RecoverWAL(ctx *platform.MemCtx, opt Options) (*DB, int, error) {
	if opt.Mode == ModePersistentMemtable {
		return nil, 0, errors.New("lsmkv: RecoverWAL is for WAL modes")
	}
	db, err := Open(ctx, opt)
	if err != nil {
		return nil, 0, err
	}
	n := 0
	err = db.wal.Replay(func(payload []byte) bool {
		k, v, derr := decodeRecord(payload)
		if derr != nil {
			return false
		}
		if db.mem.Insert(ctx, k, v) != nil {
			return false
		}
		db.wal.head += int64(8 + len(payload))
		n++
		return true
	})
	db.replayed = n
	return db, n, err
}

// RecoverPersistent reattaches a persistent-memtable DB after a crash.
func RecoverPersistent(ctx *platform.MemCtx, opt Options) (*DB, error) {
	if opt.Mode != ModePersistentMemtable {
		return nil, errors.New("lsmkv: RecoverPersistent needs ModePersistentMemtable")
	}
	if opt.MemtableBytes == 0 {
		opt.MemtableBytes = 1 << 20
	}
	db := &DB{opt: opt, memNS: opt.PM, memBase: walRegion}
	db.mem = RecoverSkiplist(ctx, opt.PM, db.memBase, opt.MemtableBytes, opt.Seed)
	db.sstBase = walRegion + opt.MemtableBytes
	db.sstNext = db.sstBase
	return db, nil
}
