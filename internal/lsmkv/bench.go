package lsmkv

import (
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/workload"
)

// BenchSpec configures the db_bench-style SET experiment of Figure 8:
// random keys, 20-byte keys, 100-byte values, database synced after every
// SET.
type BenchSpec struct {
	Platform *platform.Platform
	// PMOnDRAM selects the emulation arm: the "persistent" namespace is
	// carved from DRAM instead of 3D XPoint.
	PMOnDRAM bool
	Mode     Mode
	Ops      int
	// Prepopulate inserts this many records before measurement so the
	// memtable's read path (which differs between DRAM and 3D XPoint)
	// exceeds the cache, as in the original study's gigabyte memtables.
	// Defaults to 2×Ops.
	Prepopulate int
	KeySize     int
	ValSize     int
	Seed        uint64
}

// BenchResult reports SET throughput.
type BenchResult struct {
	Ops     int64
	Elapsed sim.Time
	KOpsSec float64
	Flushes int
}

// RunSetBench executes the workload on a fresh database.
func RunSetBench(spec BenchSpec) (BenchResult, error) {
	p := spec.Platform
	if spec.Ops == 0 {
		spec.Ops = 3000
	}
	if spec.KeySize == 0 {
		spec.KeySize = 20
	}
	if spec.ValSize == 0 {
		spec.ValSize = 100
	}
	var pm *platform.Namespace
	var err error
	if spec.PMOnDRAM {
		pm, err = p.DRAM("bench-pm", 0, 256<<20)
	} else {
		pm, err = p.Optane("bench-pm", 0, 256<<20)
	}
	if err != nil {
		return BenchResult{}, err
	}
	dram, err := p.DRAM("bench-mem", 0, 64<<20)
	if err != nil {
		return BenchResult{}, err
	}

	if spec.Prepopulate == 0 {
		spec.Prepopulate = 2 * spec.Ops
	}
	var res BenchResult
	var runErr error
	var start, end sim.Time
	p.Go("dbbench", 0, func(ctx *platform.MemCtx) {
		db, err := Open(ctx, Options{
			Mode: spec.Mode, PM: pm, DRAM: dram,
			MemtableBytes: 24 << 20, Seed: spec.Seed,
		})
		if err != nil {
			runErr = err
			return
		}
		keySpace := int64(spec.Prepopulate+spec.Ops) * 4
		gen := workload.NewRecordGen(spec.KeySize, spec.ValSize, keySpace, spec.Seed+1)
		for i := 0; i < spec.Prepopulate; i++ {
			rec := gen.Next()
			if err := db.Set(ctx, rec.Key, rec.Value); err != nil {
				runErr = err
				return
			}
		}
		start = ctx.Proc().Now()
		for i := 0; i < spec.Ops; i++ {
			rec := gen.Next()
			if err := db.Set(ctx, rec.Key, rec.Value); err != nil {
				runErr = err
				return
			}
		}
		end = ctx.Proc().Now()
		res.Flushes = db.Flushes()
	})
	p.Run()
	if runErr != nil {
		return BenchResult{}, runErr
	}
	res.Ops = int64(spec.Ops)
	res.Elapsed = end - start
	if res.Elapsed > 0 {
		res.KOpsSec = float64(spec.Ops) / res.Elapsed.Seconds() / 1e3
	}
	return res, nil
}
