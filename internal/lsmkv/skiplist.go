// Package lsmkv is an LSM-tree key-value store in the style of RocksDB,
// built for the Section 4.2 / 5.1.1 experiments: a skiplist memtable that
// can live either in DRAM (volatile, paired with a write-ahead log) or in
// persistent memory (fine-grained persistence), plus sorted-table flushes,
// native sorted-range scans, tombstone deletes, and a db_bench-style SET
// workload.
package lsmkv

import (
	"bytes"
	"encoding/binary"
	"errors"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/sim"
)

const (
	maxHeight = 12
	// Node layout: [2B keyLen][2B valLen][1B height][1B flags][2B pad]
	// [height × 8B next offsets][key][val]
	nodeHeaderSize = 8
	// nodeTombstone in the flags byte marks a delete marker.
	nodeTombstone = 1
)

// Skiplist is a memtable over a namespace-backed arena. In persistent mode
// node bodies stream through the non-temporal persister (fresh
// allocations) while the level-0 link persists through the store+clwb
// persister — the fine-grained approach whose small random writes the
// paper shows to be hostile to 3D XPoint.
type Skiplist struct {
	reg        pmem.Region
	persistent bool
	body       *pmem.Persister // node bodies (NT stream)
	link       *pmem.Persister // level-0 links (store+clwb)

	head   int64 // offset of head tower (region-relative)
	arena  int64 // bump frontier
	height int
	rng    *sim.RNG
	count  int
}

// NewSkiplist initializes an empty skiplist in [base, base+size) of ns.
func NewSkiplist(ctx *platform.MemCtx, ns *platform.Namespace, base, size int64, persistent bool, seed uint64) *Skiplist {
	s := attachSkiplist(ns, base, size, persistent, seed)
	s.height = 1
	// Head tower: full-height node with zero-length key.
	headSize := int64(nodeHeaderSize + maxHeight*8)
	s.arena = headSize
	hdr := make([]byte, headSize)
	hdr[4] = maxHeight
	s.write(ctx, s.head, hdr)
	s.count = 0
	return s
}

func attachSkiplist(ns *platform.Namespace, base, size int64, persistent bool, seed uint64) *Skiplist {
	reg, err := pmem.NewRegion(ns, base, size)
	if err != nil {
		panic(err)
	}
	return &Skiplist{
		reg: reg, persistent: persistent,
		body: pmem.NewPersister(pmem.NTStream),
		link: pmem.NewPersister(pmem.StoreFlush),
		head: 0, rng: sim.NewRNG(seed),
	}
}

func (s *Skiplist) write(ctx *platform.MemCtx, off int64, data []byte) {
	if s.persistent {
		s.link.Persist(ctx, s.reg, off, len(data), data)
	} else {
		s.reg.Store(ctx, off, len(data), data)
	}
}

// Count returns the number of entries (tombstones included).
func (s *Skiplist) Count() int { return s.count }

// Bytes returns the arena bytes consumed.
func (s *Skiplist) Bytes() int64 { return s.arena }

func (s *Skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Bool(0.25) {
		h++
	}
	return h
}

type nodeRef struct {
	off    int64
	keyLen int
	valLen int
	height int
	tomb   bool
}

func (s *Skiplist) loadNode(ctx *platform.MemCtx, off int64) nodeRef {
	var hdr [nodeHeaderSize]byte
	s.reg.LoadInto(ctx, off, hdr[:])
	return nodeRef{
		off:    off,
		keyLen: int(binary.LittleEndian.Uint16(hdr[0:])),
		valLen: int(binary.LittleEndian.Uint16(hdr[2:])),
		height: int(hdr[4]),
		tomb:   hdr[5]&nodeTombstone != 0,
	}
}

func (s *Skiplist) nextOff(n nodeRef, level int) int64 {
	return n.off + nodeHeaderSize + int64(level)*8
}

func (s *Skiplist) loadNext(ctx *platform.MemCtx, n nodeRef, level int) int64 {
	var buf [8]byte
	s.reg.LoadInto(ctx, s.nextOff(n, level), buf[:])
	return int64(binary.LittleEndian.Uint64(buf[:]))
}

func (s *Skiplist) nodeKey(ctx *platform.MemCtx, n nodeRef) []byte {
	key := make([]byte, n.keyLen)
	s.reg.LoadInto(ctx, n.off+nodeHeaderSize+int64(n.height)*8, key)
	return key
}

// nodeKeyInto loads n's key through buf when it fits (the serving hot path
// must not allocate per chain hop, matching pmemkv's find); longer keys
// fall back to a transient buffer. The same bytes travel the memory
// hierarchy either way, so simulated timing is identical to nodeKey.
func (s *Skiplist) nodeKeyInto(ctx *platform.MemCtx, n nodeRef, buf []byte) []byte {
	var key []byte
	if n.keyLen > len(buf) {
		key = make([]byte, n.keyLen)
	} else {
		key = buf[:n.keyLen]
	}
	s.reg.LoadInto(ctx, n.off+nodeHeaderSize+int64(n.height)*8, key)
	return key
}

func (s *Skiplist) nodeVal(ctx *platform.MemCtx, n nodeRef) []byte {
	val := make([]byte, n.valLen)
	s.reg.LoadInto(ctx, n.off+nodeHeaderSize+int64(n.height)*8+int64(n.keyLen), val)
	return val
}

// findPredecessors returns, per level, the node after which key belongs.
func (s *Skiplist) findPredecessors(ctx *platform.MemCtx, key []byte) [maxHeight]nodeRef {
	var preds [maxHeight]nodeRef
	var kbuf [64]byte
	cur := s.loadNode(ctx, s.head)
	for level := s.height - 1; level >= 0; level-- {
		for {
			nextOff := s.loadNext(ctx, cur, level)
			if nextOff == 0 {
				break
			}
			next := s.loadNode(ctx, nextOff)
			if bytes.Compare(s.nodeKeyInto(ctx, next, kbuf[:]), key) >= 0 {
				break
			}
			cur = next
		}
		preds[level] = cur
	}
	return preds
}

// ErrFull reports arena exhaustion (time to flush the memtable).
var ErrFull = errors.New("lsmkv: memtable full")

// Insert adds or updates key. Updates insert a new node version at the
// front of the equal-key run (newest wins on lookup), like RocksDB's
// memtable sequence ordering.
func (s *Skiplist) Insert(ctx *platform.MemCtx, key, val []byte) error {
	return s.insert(ctx, key, val, false)
}

// Delete inserts a tombstone for key: lookups see the key as gone, and the
// marker survives flushes so older SST versions stay shadowed.
func (s *Skiplist) Delete(ctx *platform.MemCtx, key []byte) error {
	return s.insert(ctx, key, nil, true)
}

func (s *Skiplist) insert(ctx *platform.MemCtx, key, val []byte, tomb bool) error {
	preds := s.findPredecessors(ctx, key)
	h := s.randomHeight()
	nodeSize := int64(nodeHeaderSize + h*8 + len(key) + len(val))
	nodeSize = (nodeSize + 7) &^ 7
	if s.arena+nodeSize > s.reg.Size() {
		return ErrFull
	}
	off := s.arena
	s.arena += nodeSize

	// Build and persist the node body before linking.
	buf := make([]byte, nodeSize)
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(val)))
	buf[4] = byte(h)
	if tomb {
		buf[5] = nodeTombstone
	}
	for level := 0; level < h; level++ {
		var pred nodeRef
		if level < s.height {
			pred = preds[level]
		} else {
			pred = s.loadNode(ctx, s.head)
		}
		next := s.loadNext(ctx, pred, level)
		binary.LittleEndian.PutUint64(buf[nodeHeaderSize+level*8:], uint64(next))
	}
	copy(buf[nodeHeaderSize+h*8:], key)
	copy(buf[nodeHeaderSize+h*8+len(key):], val)
	if s.persistent {
		// Fresh allocation: stream the node body with non-temporal stores
		// (no ownership read of lines we fully overwrite); the fence is
		// shared with the level-0 link below.
		s.body.Write(ctx, s.reg, off, len(buf), buf)
	} else {
		s.reg.Store(ctx, off, len(buf), buf)
	}

	// Link bottom-up with 8-byte pointer updates. In persistent mode only
	// the level-0 link is persisted — upper levels are shortcuts that
	// recovery can tolerate stale (they always point at older, still
	// sorted nodes) — yet even so these are the small random writes that
	// Section 5.1 shows 3D XPoint handles poorly.
	var ptr [8]byte
	binary.LittleEndian.PutUint64(ptr[:], uint64(off))
	for level := 0; level < h; level++ {
		var pred nodeRef
		if level < s.height {
			pred = preds[level]
		} else {
			pred = s.loadNode(ctx, s.head)
		}
		if s.persistent {
			if level == 0 {
				s.link.Write(ctx, s.reg, s.nextOff(pred, 0), len(ptr), ptr[:])
			} else {
				s.reg.Store(ctx, s.nextOff(pred, level), len(ptr), ptr[:])
			}
		} else {
			s.write(ctx, s.nextOff(pred, level), ptr[:])
		}
	}
	if s.persistent {
		s.body.Fence(ctx) // settles the node body and the level-0 link together
	}
	if h > s.height {
		s.height = h
	}
	s.count++
	return nil
}

// Get returns the newest value for key. A tombstoned key reads as absent
// (use Find when the caller must distinguish deletion from absence).
func (s *Skiplist) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	val, ok, tomb := s.Find(ctx, key)
	if tomb {
		return nil, false
	}
	return val, ok
}

// Find returns the newest value for key, reporting a tombstone separately
// so a layered store can stop its lookup instead of falling through to
// older tables.
func (s *Skiplist) Find(ctx *platform.MemCtx, key []byte) (val []byte, ok, tomb bool) {
	preds := s.findPredecessors(ctx, key)
	nextOff := s.loadNext(ctx, preds[0], 0)
	if nextOff == 0 {
		return nil, false, false
	}
	n := s.loadNode(ctx, nextOff)
	if !bytes.Equal(s.nodeKey(ctx, n), key) {
		return nil, false, false
	}
	if n.tomb {
		return nil, false, true
	}
	return s.nodeVal(ctx, n), true, false
}

// FindInto is Find with the value landing in dst: the newest value's full
// length is returned (ok/tomb as in Find) and no allocation happens for
// keys and values that fit the caller's buffers. A value longer than dst
// loads through a transient buffer — identical simulated timing, only the
// Go-heap behavior differs.
func (s *Skiplist) FindInto(ctx *platform.MemCtx, key, dst []byte) (n int, ok, tomb bool) {
	preds := s.findPredecessors(ctx, key)
	nextOff := s.loadNext(ctx, preds[0], 0)
	if nextOff == 0 {
		return 0, false, false
	}
	nd := s.loadNode(ctx, nextOff)
	var kbuf [64]byte
	if !bytes.Equal(s.nodeKeyInto(ctx, nd, kbuf[:]), key) {
		return 0, false, false
	}
	if nd.tomb {
		return 0, false, true
	}
	val := dst
	if nd.valLen > len(dst) {
		val = make([]byte, nd.valLen)
	} else {
		val = dst[:nd.valLen]
	}
	s.reg.LoadInto(ctx, nd.off+nodeHeaderSize+int64(nd.height)*8+int64(nd.keyLen), val)
	if nd.valLen > len(dst) {
		copy(dst, val)
	}
	return nd.valLen, true, false
}

// Scan walks entries in key order, newest version first for duplicates,
// tombstones included (fn's tomb argument reports them).
func (s *Skiplist) Scan(ctx *platform.MemCtx, fn func(key, val []byte, tomb bool) bool) {
	cur := s.loadNode(ctx, s.head)
	for {
		nextOff := s.loadNext(ctx, cur, 0)
		if nextOff == 0 {
			return
		}
		cur = s.loadNode(ctx, nextOff)
		if !fn(s.nodeKey(ctx, cur), s.nodeVal(ctx, cur), cur.tomb) {
			return
		}
	}
}

// ScanFrom walks entries with key ≥ start in key order (newest version
// first for duplicates), tombstones included.
func (s *Skiplist) ScanFrom(ctx *platform.MemCtx, start []byte, fn func(key, val []byte, tomb bool) bool) {
	preds := s.findPredecessors(ctx, start)
	cur := preds[0]
	for {
		nextOff := s.loadNext(ctx, cur, 0)
		if nextOff == 0 {
			return
		}
		cur = s.loadNode(ctx, nextOff)
		if !fn(s.nodeKey(ctx, cur), s.nodeVal(ctx, cur), cur.tomb) {
			return
		}
	}
}

// Recover rebuilds the volatile bookkeeping of a persistent skiplist from
// durable state by walking level 0 (used after a crash).
func RecoverSkiplist(ctx *platform.MemCtx, ns *platform.Namespace, base, size int64, seed uint64) *Skiplist {
	s := attachSkiplist(ns, base, size, true, seed)
	s.height = maxHeight
	headSize := int64(nodeHeaderSize + maxHeight*8)
	frontier := headSize
	cur := s.loadNode(ctx, s.head)
	for {
		nextOff := s.loadNext(ctx, cur, 0)
		if nextOff == 0 {
			break
		}
		cur = s.loadNode(ctx, nextOff)
		s.count++
		end := nextOff + int64(nodeHeaderSize+cur.height*8+cur.keyLen+cur.valLen)
		end = (end + 7) &^ 7
		if end > frontier {
			frontier = end
		}
	}
	s.arena = frontier
	return s
}
