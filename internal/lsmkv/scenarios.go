package lsmkv

import (
	"fmt"

	"optanestudy/internal/harness"
	"optanestudy/internal/platform"
)

// Harness scenarios: the Figure 8 db_bench-style SET workload across the
// three persistence strategies. The dram param selects the DRAM-emulation
// arm; Spec.Ops is the measured SET count.
func init() {
	presets := []struct {
		name, doc, mode string
	}{
		{"lsmkv/set-walposix", "LSM SET via volatile memtable + POSIX-style WAL", "wal-posix"},
		{"lsmkv/set-walflex", "LSM SET via volatile memtable + FLEX userspace WAL", "wal-flex"},
		{"lsmkv/set-pmem-memtable", "LSM SET via persistent skiplist memtable, no WAL", "pmem-memtable"},
	}
	for _, p := range presets {
		harness.Register(harness.Scenario{
			Name: p.name,
			Doc:  p.doc,
			Defaults: harness.Defaults{
				Ops: 4000, Seed: 8,
				Params: map[string]string{"mode": p.mode},
			},
			Run: runSet,
		})
	}
}

func runSet(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	var mode Mode
	switch m := r.Str("mode", "wal-flex"); m {
	case "wal-posix":
		mode = ModeWALPOSIX
	case "wal-flex":
		mode = ModeWALFLEX
	case "pmem-memtable":
		mode = ModePersistentMemtable
	default:
		return harness.Trial{}, fmt.Errorf("unknown mode %q", m)
	}
	onDRAM := r.Bool("dram", false)
	llcLines := r.Int("llc_lines", (512<<10)/64) // scaled-down LLC:memtable ratio
	prepop := r.Int("prepopulate", 5*spec.Ops)
	keySize := r.Int("keysize", 20)
	valSize := r.Int("valsize", 100)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}

	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	if llcLines > 0 {
		cfg.LLC.Lines = llcLines
	}
	p := platform.MustNew(cfg)
	defer p.Close()
	res, err := RunSetBench(BenchSpec{
		Platform: p, PMOnDRAM: onDRAM, Mode: mode,
		Ops: spec.Ops, Prepopulate: prepop,
		KeySize: keySize, ValSize: valSize, Seed: spec.Seed,
	})
	if err != nil {
		return harness.Trial{}, err
	}
	return harness.Trial{
		Bytes: res.Ops * int64(keySize+valSize),
		Ops:   res.Ops,
		Sim:   res.Elapsed,
		Metrics: map[string]float64{
			"kops_per_sec": res.KOpsSec,
			"flushes":      float64(res.Flushes),
		},
	}, nil
}
