package lsmkv

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/sim"
)

func newDBPlatform(t testing.TB) (*platform.Platform, *platform.Namespace, *platform.Namespace) {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	pm, err := p.Optane("pm", 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := p.DRAM("mem", 0, 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	return p, pm, dram
}

func TestSkiplistBasic(t *testing.T) {
	p, pm, _ := newDBPlatform(t)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		s := NewSkiplist(ctx, pm, 0, 1<<20, true, 1)
		for i := 0; i < 100; i++ {
			key := []byte(fmt.Sprintf("key-%03d", i*7%100))
			if err := s.Insert(ctx, key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if s.Count() != 100 {
			t.Errorf("count = %d", s.Count())
		}
		v, ok := s.Get(ctx, []byte("key-042"))
		if !ok || !bytes.HasPrefix(v, []byte("val-")) {
			t.Errorf("get = %q, %v", v, ok)
		}
		if _, ok := s.Get(ctx, []byte("key-999")); ok {
			t.Error("phantom key")
		}
		// Scan order is sorted.
		var prev []byte
		s.Scan(ctx, func(k, _ []byte, _ bool) bool {
			if prev != nil && bytes.Compare(prev, k) > 0 {
				t.Error("scan out of order")
			}
			prev = append(prev[:0], k...)
			return true
		})
	})
	p.Run()
}

func TestSkiplistUpdateNewestWins(t *testing.T) {
	p, pm, _ := newDBPlatform(t)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		s := NewSkiplist(ctx, pm, 0, 1<<20, true, 2)
		s.Insert(ctx, []byte("k"), []byte("old"))
		s.Insert(ctx, []byte("k"), []byte("new"))
		v, ok := s.Get(ctx, []byte("k"))
		if !ok || string(v) != "new" {
			t.Errorf("got %q", v)
		}
	})
	p.Run()
}

func TestSkiplistSortedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p, pm, _ := newDBPlatform(t)
		ok := true
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			s := NewSkiplist(ctx, pm, 0, 1<<20, false, seed)
			r := sim.NewRNG(seed)
			model := map[string]string{}
			for i := 0; i < 80; i++ {
				k := fmt.Sprintf("k%04d", r.Intn(500))
				v := fmt.Sprintf("v%d", i)
				if s.Insert(ctx, []byte(k), []byte(v)) != nil {
					ok = false
					return
				}
				model[k] = v
			}
			for k, want := range model {
				got, has := s.Get(ctx, []byte(k))
				if !has || string(got) != want {
					ok = false
					return
				}
			}
			var prev []byte
			s.Scan(ctx, func(k, _ []byte, _ bool) bool {
				if prev != nil && bytes.Compare(prev, k) > 0 {
					ok = false
					return false
				}
				prev = append(prev[:0], k...)
				return true
			})
		})
		p.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func TestPersistentSkiplistSurvivesCrash(t *testing.T) {
	p, pm, _ := newDBPlatform(t)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		s := NewSkiplist(ctx, pm, 0, 1<<20, true, 3)
		for i := 0; i < 50; i++ {
			s.Insert(ctx, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
		}
	})
	p.Run()
	p.Crash()
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		s := RecoverSkiplist(ctx, pm, 0, 1<<20, 3)
		if s.Count() != 50 {
			t.Errorf("recovered count = %d", s.Count())
		}
		for i := 0; i < 50; i++ {
			v, ok := s.Get(ctx, []byte(fmt.Sprintf("k%02d", i)))
			if !ok || string(v) != fmt.Sprintf("v%02d", i) {
				t.Errorf("k%02d lost in crash: %q %v", i, v, ok)
			}
		}
		// And it keeps working: the recovered arena must not overlap.
		if err := s.Insert(ctx, []byte("post-crash"), []byte("x")); err != nil {
			t.Error(err)
		}
		if v, ok := s.Get(ctx, []byte("k25")); !ok || string(v) != "v25" {
			t.Errorf("k25 clobbered by post-crash insert: %q", v)
		}
	})
	p.Run()
}

func TestWALAppendReplay(t *testing.T) {
	p, pm, _ := newDBPlatform(t)
	var w *WAL
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		w = NewWAL(ctx, pm, 0, 1<<20, WALFLEX)
		for i := 0; i < 20; i++ {
			if err := w.Append(ctx, []byte(fmt.Sprintf("record-%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
	})
	p.Run()
	p.Crash()
	var got []string
	w.Replay(func(payload []byte) bool {
		got = append(got, string(payload))
		return true
	})
	if len(got) != 20 {
		t.Fatalf("replayed %d records, want 20", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("record-%02d", i) {
			t.Fatalf("record %d = %q", i, s)
		}
	}
}

func TestWALTruncate(t *testing.T) {
	p, pm, _ := newDBPlatform(t)
	var w *WAL
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		w = NewWAL(ctx, pm, 0, 1<<20, WALPOSIX)
		w.Append(ctx, []byte("gone"))
		w.Truncate(ctx)
		w.Append(ctx, []byte("kept"))
	})
	p.Run()
	var got []string
	w.Replay(func(payload []byte) bool {
		got = append(got, string(payload))
		return true
	})
	if len(got) != 1 || got[0] != "kept" {
		t.Fatalf("after truncate: %v", got)
	}
}

func TestDBSetGetAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeWALPOSIX, ModeWALFLEX, ModePersistentMemtable} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			p, pm, dram := newDBPlatform(t)
			p.Go("t", 0, func(ctx *platform.MemCtx) {
				db, err := Open(ctx, Options{Mode: mode, PM: pm, DRAM: dram, Seed: 4})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 60; i++ {
					k := []byte(fmt.Sprintf("key-%03d", i))
					if err := db.Set(ctx, k, []byte(fmt.Sprintf("value-%03d", i))); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 60; i++ {
					k := []byte(fmt.Sprintf("key-%03d", i))
					v, ok := db.Get(ctx, k)
					if !ok || string(v) != fmt.Sprintf("value-%03d", i) {
						t.Errorf("%s = %q, %v", k, v, ok)
					}
				}
			})
			p.Run()
		})
	}
}

func TestDBFlushAndReadBack(t *testing.T) {
	p, pm, dram := newDBPlatform(t)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		db, err := Open(ctx, Options{Mode: ModeWALFLEX, PM: pm, DRAM: dram,
			MemtableBytes: 16 << 10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			k := []byte(fmt.Sprintf("key-%04d", i))
			if err := db.Set(ctx, k, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
				t.Fatal(err)
			}
		}
		if db.Flushes() == 0 {
			t.Fatal("memtable never flushed despite tiny cap")
		}
		// Keys from flushed memtables must come back from SSTs.
		for _, i := range []int{0, 57, 123, 299} {
			k := []byte(fmt.Sprintf("key-%04d", i))
			v, ok := db.Get(ctx, k)
			if !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 100)) {
				t.Errorf("%s wrong after flush", k)
			}
		}
	})
	p.Run()
}

// TestDBWALRecovery re-runs the WAL crash-recovery suite under every pmem
// persist policy for the record stream: whichever instruction sequence
// carried the append, the fenced records must replay in full — including
// tombstones, which must keep their keys dead across the crash.
func TestDBWALRecovery(t *testing.T) {
	for _, pol := range pmem.Policies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			p, pm, dram := newDBPlatform(t)
			opt := Options{Mode: ModeWALFLEX, PM: pm, DRAM: dram, Seed: 6, WALPolicy: &pol}
			p.Go("t", 0, func(ctx *platform.MemCtx) {
				db, _ := Open(ctx, opt)
				for i := 0; i < 40; i++ {
					db.Set(ctx, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
				}
				db.Delete(ctx, []byte("k07"))
				db.Delete(ctx, []byte("k31"))
			})
			p.Run()
			p.Crash() // volatile memtable gone; WAL survives
			p.Go("t", 0, func(ctx *platform.MemCtx) {
				db, n, err := RecoverWAL(ctx, opt)
				if err != nil {
					t.Error(err)
					return
				}
				if n != 42 {
					t.Errorf("replayed %d records, want 42", n)
				}
				for i := 0; i < 40; i++ {
					v, ok := db.Get(ctx, []byte(fmt.Sprintf("k%02d", i)))
					if i == 7 || i == 31 {
						if ok {
							t.Errorf("deleted k%02d resurrected: %q", i, v)
						}
						continue
					}
					if !ok || string(v) != fmt.Sprintf("v%02d", i) {
						t.Errorf("k%02d lost: %q %v", i, v, ok)
					}
				}
			})
			p.Run()
		})
	}
}

func TestDBDeleteTombstones(t *testing.T) {
	p, pm, dram := newDBPlatform(t)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		db, err := Open(ctx, Options{Mode: ModeWALFLEX, PM: pm, DRAM: dram,
			MemtableBytes: 8 << 10, Seed: 13})
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 50; i++ {
			db.Set(ctx, []byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%03d", i)))
		}
		// Push the first versions into SSTs, then delete some keys.
		if err := db.Flush(ctx); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 50; i += 5 {
			if err := db.Delete(ctx, []byte(fmt.Sprintf("key-%03d", i))); err != nil {
				t.Error(err)
				return
			}
		}
		check := func(when string) {
			for i := 0; i < 50; i++ {
				v, ok := db.Get(ctx, []byte(fmt.Sprintf("key-%03d", i)))
				if i%5 == 0 {
					if ok {
						t.Errorf("%s: deleted key-%03d returned %q", when, i, v)
					}
				} else if !ok || string(v) != fmt.Sprintf("val-%03d", i) {
					t.Errorf("%s: key-%03d = %q, %v", when, i, v, ok)
				}
			}
		}
		check("in-memtable")
		// Tombstones must survive a flush (shadowing the SST versions)...
		if err := db.Flush(ctx); err != nil {
			t.Error(err)
			return
		}
		check("flushed")
		// ...and deleted keys must stay gone through compaction.
		for db.Compactions() == 0 {
			for i := 100; i < 160; i++ {
				db.Set(ctx, []byte(fmt.Sprintf("key-%03d", i)), []byte("fill"))
			}
			if err := db.Flush(ctx); err != nil {
				t.Error(err)
				return
			}
		}
		check("compacted")
	})
	p.Run()
}

// A value whose length equals the tombstone sentinel must be refused, not
// silently re-read as a delete after a flush or WAL replay.
func TestDBRejectsSentinelLengthValue(t *testing.T) {
	p, pm, dram := newDBPlatform(t)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		db, err := Open(ctx, Options{Mode: ModeWALFLEX, PM: pm, DRAM: dram, Seed: 15})
		if err != nil {
			t.Error(err)
			return
		}
		if err := db.Set(ctx, []byte("k"), make([]byte, 0xFFFF)); err == nil {
			t.Error("sentinel-length value accepted")
		}
		if err := db.Set(ctx, []byte("k"), make([]byte, 0xFFFE)); err != nil {
			t.Errorf("max legal value refused: %v", err)
		}
	})
	p.Run()
}

func TestDBNativeScan(t *testing.T) {
	p, pm, dram := newDBPlatform(t)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		db, err := Open(ctx, Options{Mode: ModeWALFLEX, PM: pm, DRAM: dram,
			MemtableBytes: 16 << 10, Seed: 14})
		if err != nil {
			t.Error(err)
			return
		}
		// Interleave versions across SSTs and the memtable: first a stale
		// full load, flush, then fresh overwrites of half the keys.
		for i := 0; i < 120; i++ {
			db.Set(ctx, []byte(fmt.Sprintf("key-%03d", i)), []byte("stale"))
		}
		if err := db.Flush(ctx); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 120; i += 2 {
			db.Set(ctx, []byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("fresh-%03d", i)))
		}
		db.Delete(ctx, []byte("key-050"))
		db.Delete(ctx, []byte("key-051"))

		var keys, vals []string
		n := db.Scan(ctx, []byte("key-040"), 20, func(k, v []byte) bool {
			keys = append(keys, string(k))
			vals = append(vals, string(v))
			return true
		})
		if n != 20 || len(keys) != 20 {
			t.Errorf("scan returned %d records, want 20", n)
		}
		if keys[0] != "key-040" {
			t.Errorf("scan starts at %q", keys[0])
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Errorf("scan out of order: %q then %q", keys[i-1], keys[i])
			}
		}
		for i, k := range keys {
			if k == "key-050" || k == "key-051" {
				t.Errorf("scan emitted deleted key %q", k)
			}
			var id int
			fmt.Sscanf(k, "key-%d", &id)
			want := "stale"
			if id%2 == 0 {
				want = fmt.Sprintf("fresh-%03d", id)
			}
			if vals[i] != want {
				t.Errorf("%s = %q, want %q (newest version must win)", k, vals[i], want)
			}
		}
		// The 20 records skip the two tombstones: the run must extend two
		// keys further than a dense range would.
		if keys[len(keys)-1] != "key-061" {
			t.Errorf("scan ended at %q, want key-061 (tombstones skipped, not counted)", keys[len(keys)-1])
		}
		// Early termination.
		count := 0
		if got := db.Scan(ctx, []byte("key-000"), 50, func(_, _ []byte) bool {
			count++
			return count < 5
		}); got != 5 || count != 5 {
			t.Errorf("early-stop scan: emitted %d, callback saw %d", got, count)
		}
	})
	p.Run()
}

func TestDBPersistentMemtableRecovery(t *testing.T) {
	p, pm, _ := newDBPlatform(t)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		db, _ := Open(ctx, Options{Mode: ModePersistentMemtable, PM: pm, Seed: 7})
		for i := 0; i < 30; i++ {
			db.Set(ctx, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
		}
	})
	p.Run()
	p.Crash()
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		db, err := RecoverPersistent(ctx, Options{Mode: ModePersistentMemtable, PM: pm, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			v, ok := db.Get(ctx, []byte(fmt.Sprintf("k%02d", i)))
			if !ok || string(v) != fmt.Sprintf("v%02d", i) {
				t.Errorf("k%02d lost: %q %v", i, v, ok)
			}
		}
	})
	p.Run()
}

// TestFig8Inversion is the paper's headline RocksDB result: on emulated
// (DRAM) persistent memory the persistent memtable beats the FLEX WAL, but
// on real 3D XPoint the conclusion reverses.
func TestFig8Inversion(t *testing.T) {
	runMode := func(onDRAM bool, mode Mode) float64 {
		cfg := platform.DefaultConfig()
		cfg.TrackData = true
		cfg.XP.Wear.Enabled = false
		// A small LLC lets a modest prepopulated memtable exceed the
		// cache, standing in for the study's gigabyte memtables.
		cfg.LLC.Lines = (512 << 10) / 64
		p := platform.MustNew(cfg)
		res, err := RunSetBench(BenchSpec{
			Platform: p, PMOnDRAM: onDRAM, Mode: mode,
			Ops: 1200, Prepopulate: 5000, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.KOpsSec
	}
	dramFlex := runMode(true, ModeWALFLEX)
	dramSkip := runMode(true, ModePersistentMemtable)
	optFlex := runMode(false, ModeWALFLEX)
	optSkip := runMode(false, ModePersistentMemtable)
	optPosix := runMode(false, ModeWALPOSIX)

	if dramSkip <= dramFlex {
		t.Errorf("DRAM: persistent skiplist (%.0f) must beat FLEX (%.0f) KOps/s", dramSkip, dramFlex)
	}
	if optFlex <= optSkip {
		t.Errorf("Optane: FLEX (%.0f) must beat persistent skiplist (%.0f) KOps/s", optFlex, optSkip)
	}
	if optPosix >= optFlex {
		t.Errorf("Optane: POSIX WAL (%.0f) must trail FLEX (%.0f) KOps/s", optPosix, optFlex)
	}
}

func TestDBCompaction(t *testing.T) {
	p, pm, dram := newDBPlatform(t)
	// NOTE: t.Fatal inside a proc goroutine would Goexit without yielding
	// back to the engine and deadlock the simulation; use t.Error+return.
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		db, err := Open(ctx, Options{Mode: ModeWALFLEX, PM: pm, DRAM: dram,
			MemtableBytes: 8 << 10, Seed: 11})
		if err != nil {
			t.Error(err)
			return
		}
		// Insert with heavy overwrites across many tiny memtable flushes.
		for i := 0; i < 1800; i++ {
			k := []byte(fmt.Sprintf("key-%03d", i%80))
			if err := db.Set(ctx, k, []byte(fmt.Sprintf("val-%04d", i))); err != nil {
				t.Errorf("set %d: %v", i, err)
				return
			}
		}
		if db.Compactions() == 0 {
			t.Error("no compactions despite many flushes")
			return
		}
		if db.Tables() > compactionTrigger+1 {
			t.Errorf("tables = %d, compaction not bounding L0", db.Tables())
			return
		}
		// Every key returns its newest value after merges.
		latest := map[string]string{}
		for i := 0; i < 1800; i++ {
			latest[fmt.Sprintf("key-%03d", i%80)] = fmt.Sprintf("val-%04d", i)
		}
		for k, want := range latest {
			v, ok := db.Get(ctx, []byte(k))
			if !ok || string(v) != want {
				t.Errorf("%s = %q (%v), want %q", k, v, ok, want)
			}
		}
	})
	p.Run()
}
