package cluster

import (
	"testing"

	"optanestudy/internal/harness"
	"optanestudy/internal/sim"
)

// The hotspot scenario's timeline must actually show the pathology the
// aggregate metrics compress away: a shifting hot shard carrying an
// outsized share of completions while the fabric sheds load over time.
func TestHotspotTimeline(t *testing.T) {
	srs := harness.RunSpecs([]harness.Spec{{
		Scenario: "cluster/hotspot",
		Duration: 300 * sim.Microsecond,
		Trace:    true,
	}}, 1)
	if srs[0].Err != nil {
		t.Fatal(srs[0].Err)
	}
	tr := srs[0].Result.Trials[0].Trace
	if tr == nil || len(tr.Runs) != 1 {
		t.Fatalf("traced hotspot trial carries %+v, want one run", tr)
	}
	run := tr.Runs[0]
	if len(run.Samples) < 10 {
		t.Fatalf("timeline has %d samples, want >= 10", len(run.Samples))
	}
	last := run.Samples[len(run.Samples)-1]
	if len(last.Shards) != 4 {
		t.Fatalf("sample carries %d shards, want 4", len(last.Shards))
	}
	// Cumulative counters never step backwards, and the run sheds.
	var prevDropped, prevCompleted int64
	for i, s := range run.Samples {
		if s.Dropped < prevDropped || s.Completed < prevCompleted {
			t.Fatalf("sample %d: cumulative counters regressed (%d/%d after %d/%d)",
				i, s.Dropped, s.Completed, prevDropped, prevCompleted)
		}
		prevDropped, prevCompleted = s.Dropped, s.Completed
	}
	if last.Dropped == 0 {
		t.Error("hotspot overload shed nothing over the whole window")
	}
	if run.Sheds != last.Dropped {
		t.Errorf("recorder sheds %d != final sample dropped %d", run.Sheds, last.Dropped)
	}
	// The hot shard's share: some interval must concentrate well above the
	// fair 1/4 split.
	maxShare := 0.0
	prev := run.Samples[0]
	for _, s := range run.Samples[1:] {
		dTotal := float64(s.Completed - prev.Completed)
		if dTotal > 0 {
			for i := range s.Shards {
				share := float64(s.Shards[i].Completed-prev.Shards[i].Completed) / dTotal
				if share > maxShare {
					maxShare = share
				}
			}
		}
		prev = s
	}
	if maxShare < 0.3 {
		t.Errorf("max per-interval shard share = %g, want > 0.3 (hotspot should concentrate)", maxShare)
	}
}
