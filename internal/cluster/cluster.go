package cluster

import (
	"fmt"

	"optanestudy/internal/hottier"
	"optanestudy/internal/platform"
	"optanestudy/internal/replica"
	"optanestudy/internal/service"
)

// Config assembles a cluster on one platform: a placement policy resolved
// over the machine's geometry, one preloaded backend replica per shard on
// its placement, and the router that partitions traffic.
type Config struct {
	// Policy / Shards / Workers / DIMMs / CapPerDIMM / ClientSocket feed
	// the placement (see PlaceConfig).
	Policy       string
	Shards       int
	Workers      int
	DIMMs        int
	CapPerDIMM   int
	ClientSocket int
	// Span is the router's block width in key ids (default 1).
	Span int64
	// QueueCap bounds each shard's admission queue (default 32×workers).
	QueueCap int
	// Backend is "pmemkv" or "lsmkv"; Spec carries the preload geometry
	// (Keys is the full global keyspace — every shard holds a replica, the
	// router partitions traffic, not data). Spec's placement fields
	// (Socket, Channels, NamePrefix, Media "optane-ni") are owned by the
	// cluster and must be left zero; Media chooses "optane" or "dram".
	Backend string
	Spec    service.BackendSpec
	// PutLog switches PUTs to write-behind logging on per-worker appenders
	// carved from each shard's own DIMM set; LogRegion is the per-worker
	// log size (default 2 MiB).
	PutLog    bool
	LogRegion int64
	// Replicate pairs every shard's primary with a standby replica — a
	// second preloaded backend plus ship log on the NEXT socket (same
	// channel set, so the pair occupies a distinct (socket, DIMM-set)
	// placement) — and wires a replica.Pair into the shard so logged PUTs
	// ship synchronously and fault events can fail the shard over.
	// Requires PutLog (replication ships the log), at least two sockets,
	// and no cache tier (a promoted backend would bypass the tier's
	// coherence).
	Replicate bool
	// CacheBytes > 0 fronts every shard's backend with a DRAM hot tier of
	// that size, placed on the shard's *worker* socket (data DIMMs may sit
	// elsewhere under numa-blind placement; hits must not cross UPI).
	// CacheQuota / CacheAdmit / CacheEvict configure per-tenant quotas,
	// the admission touch count and the eviction policy; CacheTenantSpan
	// is the per-tenant key-id width quotas account against; CacheSeed
	// feeds the per-shard eviction RNGs (derive it from the job seed).
	CacheBytes      int64
	CacheQuota      int64
	CacheAdmit      int
	CacheEvict      string
	CacheTenantSpan int64
	CacheSeed       uint64
}

// Cluster is the assembled serving fabric: hand Shards and Route to
// service.Serve.
type Cluster struct {
	Placement *Placement
	Router    *Router
	// Shards are the dispatch targets, one per placement slot.
	Shards []service.Shard
	// Tiers are the per-shard DRAM hot tiers (nil entries when CacheBytes
	// is 0); callers aggregate their counters after a run.
	Tiers []*hottier.Tier
	// Pairs are the per-shard replica pairs (nil when Replicate is off);
	// callers read their Stats after a run.
	Pairs []*replica.Pair
}

// ReplStats merges every shard pair's replication counters.
func (c *Cluster) ReplStats() replica.Stats {
	var sum replica.Stats
	for _, pr := range c.Pairs {
		if pr == nil {
			continue
		}
		st := pr.Stats()
		sum.ShipBatches += st.ShipBatches
		sum.ShipRecs += st.ShipRecs
		sum.ShipBytes += st.ShipBytes
		sum.Failovers += st.Failovers
		sum.ReplayBatches += st.ReplayBatches
		sum.ReplayRecs += st.ReplayRecs
		sum.LostRecs += st.LostRecs
		sum.Leaves += st.Leaves
		sum.Joins += st.Joins
		sum.CatchupRecs += st.CatchupRecs
	}
	return sum
}

// CacheCounters merges every shard tier's accounting.
func (c *Cluster) CacheCounters() hottier.Counters {
	var sum hottier.Counters
	for _, t := range c.Tiers {
		if t != nil {
			sum.Merge(t.Counters())
		}
	}
	return sum
}

// Route maps a global key id to its shard (the service dispatch hook).
func (c *Cluster) Route(key int64) int { return c.Router.Shard(key) }

// TotalWorkers sums the shard pools (after any per-DIMM cap).
func (c *Cluster) TotalWorkers() int {
	n := 0
	for _, sh := range c.Shards {
		n += sh.Workers
	}
	return n
}

// New places and builds the cluster on the platform: for each shard, a
// preloaded backend replica (and optionally a per-worker append log) on
// the shard's (socket, DIMM-set), wired into a service.Shard with the
// policy's worker pool.
func New(p *platform.Platform, cfg Config) (*Cluster, error) {
	if cfg.Spec.Socket != 0 || cfg.Spec.Channels != nil || cfg.Spec.NamePrefix != "" {
		return nil, fmt.Errorf("cluster: BackendSpec placement fields are cluster-owned")
	}
	if cfg.Spec.Media == "optane-ni" {
		return nil, fmt.Errorf("cluster: use media optane with a DIMMs=1 placement instead of optane-ni")
	}
	pl, err := Place(PlaceConfig{
		Policy: cfg.Policy, Geom: p.Config().Geometry,
		ClientSocket: cfg.ClientSocket,
		Shards:       cfg.Shards, Workers: cfg.Workers,
		DIMMs: cfg.DIMMs, CapPerDIMM: cfg.CapPerDIMM,
	})
	if err != nil {
		return nil, err
	}
	span := cfg.Span
	if span == 0 {
		span = 1
	}
	router, err := NewRouter(cfg.Shards, span)
	if err != nil {
		return nil, err
	}
	logRegion := cfg.LogRegion
	if logRegion == 0 {
		logRegion = 2 << 20
	}
	if cfg.CacheBytes > 0 && cfg.Spec.ValSize <= 0 {
		return nil, fmt.Errorf("cluster: a cache tier needs the record size (Spec.ValSize), got %d", cfg.Spec.ValSize)
	}
	sockets := p.Config().Geometry.Sockets
	if cfg.Replicate {
		if !cfg.PutLog {
			return nil, fmt.Errorf("cluster: replication ships the write-behind log; set PutLog")
		}
		if cfg.CacheBytes > 0 {
			return nil, fmt.Errorf("cluster: replication does not compose with a cache tier (a promoted backend would bypass it)")
		}
		if sockets < 2 {
			return nil, fmt.Errorf("cluster: replication needs a standby socket (%d socket geometry)", sockets)
		}
	}
	c := &Cluster{
		Placement: pl, Router: router,
		Shards: make([]service.Shard, cfg.Shards),
		Tiers:  make([]*hottier.Tier, cfg.Shards),
	}
	if cfg.Replicate {
		c.Pairs = make([]*replica.Pair, cfg.Shards)
	}
	for i, sp := range pl.Shards {
		bs := cfg.Spec
		bs.Socket = sp.DataSocket
		bs.Channels = sp.Channels
		bs.NamePrefix = fmt.Sprintf("shard%d", i)
		be, err := service.NewBackend(p, cfg.Backend, bs)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		if cfg.CacheBytes > 0 {
			tier, err := hottier.New(p, be, hottier.Config{
				Name:          fmt.Sprintf("shard%dcache", i),
				Socket:        sp.WorkerSocket,
				CapacityBytes: cfg.CacheBytes, RecordBytes: cfg.Spec.ValSize,
				Admit: cfg.CacheAdmit, Policy: cfg.CacheEvict,
				TenantSpan: cfg.CacheTenantSpan, QuotaBytes: cfg.CacheQuota,
				Seed: cfg.CacheSeed + uint64(i)*0x9E3779B97F4A7C15,
			})
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d cache: %w", i, err)
			}
			c.Tiers[i] = tier
			be = tier
		}
		var plog *service.AppendLog
		if cfg.PutLog {
			ls := bs
			ls.NamePrefix = fmt.Sprintf("shard%dlog", i)
			plog, err = service.NewAppendLog(p, ls, sp.Workers, logRegion)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d log: %w", i, err)
			}
		}
		c.Shards[i] = service.Shard{
			Backend: be, Workers: sp.Workers, QueueCap: cfg.QueueCap,
			Socket: sp.WorkerSocket, PutLog: plog,
		}
		if cfg.Replicate {
			// The standby lives one socket over, on the same channel set:
			// a distinct (socket, DIMM-set) placement, so a socket loss or
			// DIMM failure never takes both replicas, and shipping pays
			// the real UPI crossing.
			rsock := (sp.DataSocket + 1) % sockets
			rs := cfg.Spec
			rs.Socket = rsock
			rs.Channels = sp.Channels
			rs.NamePrefix = fmt.Sprintf("shard%dr", i)
			rbe, err := service.NewBackend(p, cfg.Backend, rs)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d standby: %w", i, err)
			}
			ss := rs
			ss.NamePrefix = fmt.Sprintf("shard%dship", i)
			ship, err := service.NewAppendLog(p, ss, sp.Workers, logRegion)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d ship log: %w", i, err)
			}
			pair, err := replica.NewPair(i, sp.Workers,
				replica.Node{Backend: be, Log: plog, Socket: sp.DataSocket},
				replica.Node{Backend: rbe, Log: ship, Socket: rsock})
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d pair: %w", i, err)
			}
			c.Pairs[i] = pair
			c.Shards[i].Repl = pair
		}
	}
	return c, nil
}
