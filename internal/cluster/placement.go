// Package cluster is the topology-aware sharded serving layer: it routes
// the open-loop traffic of internal/service through a deterministic hash
// router onto N shard replicas, where each shard is a service.Backend
// pinned to a concrete (socket, DIMM-set) placement drawn from
// internal/topology, with a per-shard bounded admission queue and worker
// pool.
//
// The paper's best practices are fundamentally placement rules — limit the
// threads contending for a DIMM (§5.3), avoid NUMA-remote Optane accesses
// (§5.4), exploit interleaving (§2.3) — and the placement policies here
// compose them into the system-level question: how do you lay a sharded
// store out across sockets and DIMMs to serve heavy multi-tenant traffic?
// Load sweeps per policy emit throughput-latency curves whose knees make
// the rules quantitative.
package cluster

import (
	"fmt"

	"optanestudy/internal/topology"
)

// Placement policies.
const (
	// PolicyLocalPacked puts every shard on the client socket and
	// partitions that socket's DIMMs among the shards (disjoint DIMM sets,
	// all accesses local).
	PolicyLocalPacked = "local-packed"
	// PolicyInterleaved stripes every shard across all DIMMs of the client
	// socket (namespaces stack; the iMC spreads each shard's traffic over
	// all six channels).
	PolicyInterleaved = "interleaved"
	// PolicyNUMABlind round-robins shard data across both sockets while
	// the worker threads stay wherever the client frontend runs — the
	// allocation a NUMA-unaware allocator produces. Shards homed on the
	// far socket pay the UPI remote penalty on every access (fig. 18/19).
	PolicyNUMABlind = "numa-blind"
	// PolicyCapped is local-packed plus a threads-per-DIMM cap on each
	// shard's worker pool (the paper's §5.3 limit): a shard on d DIMMs
	// gets at most CapPerDIMM×d workers no matter how many are requested.
	PolicyCapped = "capped"
)

// Policies lists the implemented placement policies.
func Policies() []string {
	return []string{PolicyLocalPacked, PolicyInterleaved, PolicyNUMABlind, PolicyCapped}
}

// ShardPlacement pins one shard: the socket and DIMM set backing its data,
// the socket its workers run on, and its worker-pool size after any
// per-DIMM cap.
type ShardPlacement struct {
	DataSocket   int
	Channels     []int
	WorkerSocket int
	Workers      int
}

// Remote reports whether the shard's workers access its data across the
// UPI link.
func (sp ShardPlacement) Remote(g topology.Geometry) bool {
	return g.Remote(sp.WorkerSocket, sp.DataSocket)
}

// Placement is a policy resolved against a concrete geometry.
type Placement struct {
	Policy string
	Geom   topology.Geometry
	Shards []ShardPlacement
}

// RemoteShards counts shards whose data is remote from their workers.
func (pl *Placement) RemoteShards() int {
	n := 0
	for _, sp := range pl.Shards {
		if sp.Remote(pl.Geom) {
			n++
		}
	}
	return n
}

// TotalWorkers sums the per-shard pools.
func (pl *Placement) TotalWorkers() int {
	n := 0
	for _, sp := range pl.Shards {
		n += sp.Workers
	}
	return n
}

// PlaceConfig parameterizes a placement.
type PlaceConfig struct {
	Policy string
	Geom   topology.Geometry
	// ClientSocket is where the frontend (dispatcher) and, policy
	// permitting, the workers run.
	ClientSocket int
	// Shards is the shard count; Workers the requested per-shard pool.
	Shards  int
	Workers int
	// DIMMs, when positive, forces every shard onto exactly that many
	// consecutive channels (wrapping round-robin, so shards may share
	// DIMMs once Shards×DIMMs exceeds the socket's channels) — the knob
	// that builds single-DIMM-heavy layouts. 0 partitions each socket's
	// channels evenly among the shards homed there.
	DIMMs int
	// CapPerDIMM bounds workers per DIMM under PolicyCapped (default 4,
	// the paper's contention limit).
	CapPerDIMM int
}

// partition splits channels into n contiguous blocks whose sizes differ by
// at most one; with n > len(channels) the blocks wrap round-robin so every
// shard still gets a DIMM.
func partition(channels []int, n int) [][]int {
	out := make([][]int, n)
	if n > len(channels) {
		for i := range out {
			out[i] = []int{channels[i%len(channels)]}
		}
		return out
	}
	base, extra := len(channels)/n, len(channels)%n
	at := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = channels[at : at+size]
		at += size
	}
	return out
}

// window returns d consecutive channels starting at start, wrapping.
func window(channels []int, start, d int) []int {
	out := make([]int, d)
	for i := range out {
		out[i] = channels[(start+i)%len(channels)]
	}
	return out
}

// Place resolves the policy into per-shard (socket, DIMM-set, workers)
// placements. It is pure: the same config always yields the same
// placement, which is what lets cluster trials rebuild identical platforms
// at any scheduling width.
func Place(pc PlaceConfig) (*Placement, error) {
	if err := pc.Geom.Validate(); err != nil {
		return nil, err
	}
	if pc.ClientSocket < 0 || pc.ClientSocket >= pc.Geom.Sockets {
		return nil, fmt.Errorf("cluster: client socket %d outside the geometry", pc.ClientSocket)
	}
	if pc.Shards < 1 || pc.Workers < 1 {
		return nil, fmt.Errorf("cluster: need at least one shard and one worker (got %d, %d)", pc.Shards, pc.Workers)
	}
	if pc.DIMMs < 0 || pc.DIMMs > pc.Geom.ChannelsPerSocket {
		return nil, fmt.Errorf("cluster: %d DIMMs per shard outside the socket's %d channels", pc.DIMMs, pc.Geom.ChannelsPerSocket)
	}
	if pc.CapPerDIMM == 0 {
		pc.CapPerDIMM = 4
	}
	if pc.CapPerDIMM < 1 {
		return nil, fmt.Errorf("cluster: bad threads-per-DIMM cap %d", pc.CapPerDIMM)
	}
	chans := pc.Geom.ChannelIDs()
	pl := &Placement{Policy: pc.Policy, Geom: pc.Geom, Shards: make([]ShardPlacement, pc.Shards)}

	// dimmSets lays the shards of one socket out over its channels.
	dimmSets := func(n int) [][]int {
		if pc.DIMMs > 0 {
			sets := make([][]int, n)
			for i := range sets {
				sets[i] = window(chans, i*pc.DIMMs, pc.DIMMs)
			}
			return sets
		}
		return partition(chans, n)
	}

	switch pc.Policy {
	case PolicyLocalPacked, PolicyCapped:
		sets := dimmSets(pc.Shards)
		for i := range pl.Shards {
			w := pc.Workers
			if pc.Policy == PolicyCapped {
				if limit := pc.CapPerDIMM * len(sets[i]); w > limit {
					w = limit
				}
			}
			pl.Shards[i] = ShardPlacement{
				DataSocket: pc.ClientSocket, Channels: sets[i],
				WorkerSocket: pc.ClientSocket, Workers: w,
			}
		}
	case PolicyInterleaved:
		for i := range pl.Shards {
			pl.Shards[i] = ShardPlacement{
				DataSocket: pc.ClientSocket, Channels: append([]int(nil), chans...),
				WorkerSocket: pc.ClientSocket, Workers: pc.Workers,
			}
		}
	case PolicyNUMABlind:
		// Data lands round-robin across sockets; the shards homed on one
		// socket partition its channels exactly as local-packed would.
		// Workers are left on the client socket — the placement is blind,
		// so shards on the far socket are served entirely across UPI.
		perSocket := make([]int, pc.Geom.Sockets)
		for i := 0; i < pc.Shards; i++ {
			perSocket[i%pc.Geom.Sockets]++
		}
		sets := make([][][]int, pc.Geom.Sockets)
		for s, n := range perSocket {
			if n > 0 {
				sets[s] = dimmSets(n)
			}
		}
		slot := make([]int, pc.Geom.Sockets)
		for i := range pl.Shards {
			s := i % pc.Geom.Sockets
			pl.Shards[i] = ShardPlacement{
				DataSocket: s, Channels: sets[s][slot[s]],
				WorkerSocket: pc.ClientSocket, Workers: pc.Workers,
			}
			slot[s]++
		}
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %q (want %v)", pc.Policy, Policies())
	}
	return pl, nil
}
