package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"optanestudy/internal/harness"
	"optanestudy/internal/sim"
)

func devstatSpec() harness.Spec {
	return harness.Spec{
		Scenario: "cluster/failover/point",
		Duration: 200 * sim.Microsecond,
		Params:   map[string]string{"devstat": "1"},
	}
}

// With devstat on, the failover scenario must expose the per-DIMM device
// health metrics plus the per-shard attributed groups, and the whole
// metric map must be byte-identical at any -parallel width.
func TestFailoverDevstatMetrics(t *testing.T) {
	srs := harness.RunSpecs([]harness.Spec{devstatSpec()}, 1)
	if srs[0].Err != nil {
		t.Fatal(srs[0].Err)
	}
	m := srs[0].Result.Trials[0].Metrics
	// At least one per-DIMM block: the primary shard serves on socket 0.
	for _, key := range []string{
		"dev_ewr_s0c0", "dev_wpq_stall_frac_s0c0", "dev_buffer_hit_rate_s0c0",
		"dev_bw_gbs_s0c0", "dev_early_close_rate_s0c0",
		"dev_ewr_shard0", "dev_upi_rd_bytes_s0", "dev_upi_wr_bytes_s1",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("devstat failover run missing metric %q", key)
		}
	}
	if ewr := m["dev_ewr_shard0"]; ewr <= 0 || ewr > 1.5 {
		t.Errorf("dev_ewr_shard0 = %g, want a plausible EWR", ewr)
	}
	if bw := m["dev_bw_gbs_s0c0"]; bw <= 0 {
		t.Errorf("dev_bw_gbs_s0c0 = %g, want > 0", bw)
	}
}

// Without the devstat param the metric map must not change: no dev_* keys
// may appear, keeping the results-neutrality baseline intact.
func TestFailoverDevstatGatedOff(t *testing.T) {
	spec := devstatSpec()
	spec.Params = nil
	srs := harness.RunSpecs([]harness.Spec{spec}, 1)
	if srs[0].Err != nil {
		t.Fatal(srs[0].Err)
	}
	for k := range srs[0].Result.Trials[0].Metrics {
		if len(k) >= 4 && k[:4] == "dev_" {
			t.Errorf("devstat-off run leaked device metric %q", k)
		}
	}
}

// The devstat capture proc rides inside the deterministic engine, so the
// full metric map (per-DIMM keys included) is identical serial vs parallel.
func TestFailoverDevstatParallelByteIdentical(t *testing.T) {
	render := func(parallel int) string {
		srs := harness.RunSpecs([]harness.Spec{devstatSpec()}, parallel)
		if srs[0].Err != nil {
			t.Fatal(srs[0].Err)
		}
		return fmt.Sprintf("%v", srs[0].Result.Trials[0].Metrics)
	}
	serial := harness.RunSpecs([]harness.Spec{devstatSpec()}, 1)
	wide := harness.RunSpecs([]harness.Spec{devstatSpec()}, 8)
	if serial[0].Err != nil || wide[0].Err != nil {
		t.Fatal(serial[0].Err, wide[0].Err)
	}
	if !reflect.DeepEqual(serial[0].Result.Trials[0].Metrics, wide[0].Result.Trials[0].Metrics) {
		t.Errorf("devstat metrics differ serial vs parallel:\n%s\nvs\n%s", render(1), render(8))
	}
}
