package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"optanestudy/internal/harness"
	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/service"
	"optanestudy/internal/sim"
	"optanestudy/internal/telemetry"
)

// Harness scenarios. "cluster/point" measures one load level through the
// sharded fabric (spec.Threads is the requested per-shard pool); the
// "cluster/sweep-*" presets step offered load per placement policy and
// emit the throughput-latency curve, knee and saturation — local-packed,
// interleaved and numa-blind on the common two-shard layout, and
// sweep-capped racing the §5.3 worker cap against an uncapped pool on a
// single-DIMM-heavy layout. "cluster/hotspot" drives a shifting hot range
// through block routing so load piles onto one shard at a time.
func init() {
	harness.Register(harness.Scenario{
		Name: "cluster/point",
		Doc:  "one open-loop load level through the sharded, placement-pinned serving fabric",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 51,
			Params: map[string]string{"policy": PolicyLocalPacked, "offered": "8000"},
		},
		Run: runClusterPoint,
	})
	harness.Register(harness.Scenario{
		Name: "cluster/hotspot",
		Doc:  "shifting-hotspot skew under block routing: load concentrates on one shard at a time",
		Defaults: harness.Defaults{
			Threads: 2, Duration: 400 * sim.Microsecond, Seed: 57,
			Params: map[string]string{
				"policy": PolicyLocalPacked, "shards": "4", "span": "500",
				"tenants": "2", "keys": "2000", "mix": "hotsplit",
				"hotkeys": "150", "hotperiod": "4000", "hotfrac": "0.95",
				"offered": "9000", "qcap": "24",
			},
		},
		Run: runClusterPoint,
	})
	sweepDefaults := func(policy string, seed uint64) harness.Defaults {
		return harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: seed,
			Params: map[string]string{
				"policy": policy, "shards": "2",
				"get": "0.5", "put": "0.5", "scan": "0",
				"minkops": "2000", "maxkops": "34000", "points": "7",
			},
		}
	}
	harness.Register(harness.Scenario{
		Name:     "cluster/sweep-local-packed",
		Doc:      "throughput-latency curve: shards packed on the client socket, DIMMs partitioned",
		Defaults: sweepDefaults(PolicyLocalPacked, 52),
		Run:      runClusterSweep,
	})
	harness.Register(harness.Scenario{
		Name:     "cluster/sweep-interleaved",
		Doc:      "throughput-latency curve: every shard striped across all client-socket DIMMs",
		Defaults: sweepDefaults(PolicyInterleaved, 53),
		Run:      runClusterSweep,
	})
	harness.Register(harness.Scenario{
		Name:     "cluster/sweep-numa-blind",
		Doc:      "throughput-latency curve: shard data round-robined across sockets, workers unpinned",
		Defaults: sweepDefaults(PolicyNUMABlind, 54),
		Run:      runClusterSweep,
	})
	// The capped preset builds the single-DIMM-heavy layout of the §5.3
	// experiment — every shard on one DIMM, 16 write-behind log streams
	// requested per shard — and races the capped policy against the same
	// layout uncapped.
	harness.Register(harness.Scenario{
		Name: "cluster/sweep-capped",
		Doc:  "threads-per-DIMM cap vs uncapped 16-worker pools on single-DIMM shards",
		Defaults: harness.Defaults{
			Threads: 16, Duration: 300 * sim.Microsecond, Seed: 55,
			Params: map[string]string{
				"policygrid": PolicyCapped + "," + PolicyLocalPacked,
				"shards":     "2", "dimms": "1", "capdimm": "4",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"minkops": "6000", "maxkops": "42000", "points": "7",
			},
		},
		Run: runClusterSweep,
	})
	// The batch preset repeats the capped single-DIMM layout at group-commit
	// depths 1/8/32: the depth-1 leg reproduces the unbatched curve
	// byte-identically (no batch params are injected for it, so its point
	// specs and seeds are unchanged), while the deeper legs amortize the
	// per-PUT fence across the drained group — fences/op drops toward
	// 1/depth and the saturation knee moves to higher offered load, at the
	// price of up to `batchlinger` ns of added latency at light load.
	harness.Register(harness.Scenario{
		Name: "cluster/sweep-batch",
		Doc:  "group-commit depth sweep (1/8/32) on the capped single-DIMM layout",
		Defaults: harness.Defaults{
			Threads: 16, Duration: 300 * sim.Microsecond, Seed: 55,
			Params: map[string]string{
				"policy": PolicyCapped,
				"shards": "2", "dimms": "1", "capdimm": "4",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"minkops": "6000", "maxkops": "42000", "points": "7",
				"batchgrid": "1,8,32", "batchlinger": "1000",
			},
		},
		Run: runClusterSweep,
	})
	// The cache preset fronts each shard's replica with a per-shard DRAM hot
	// tier on the shard's worker socket and repeats a read-heavy Zipf sweep
	// with the tier off and on. The cache-0 leg injects no cache params, so
	// its point specs and seeds reproduce the uncached curve byte-identically;
	// the cached leg serves repeat GETs from DRAM and moves the knee to
	// higher offered load. llckb shrinks the simulated LLC so the small
	// keyspace is not already LLC-resident (which would hide the tier).
	harness.Register(harness.Scenario{
		Name: "cluster/sweep-cache",
		Doc:  "per-shard DRAM hot tier off/on over a read-heavy Zipf sweep",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 300 * sim.Microsecond, Seed: 56,
			Params: map[string]string{
				"policy": PolicyLocalPacked, "shards": "2",
				"tenants": "2", "keys": "2000", "valsize": "128",
				"mix": "zipf", "llckb": "16",
				"get": "0.95", "put": "0.05", "scan": "0",
				"minkops": "4000", "maxkops": "28000", "points": "7",
				"cachegrid": "0,524288",
			},
		},
		Run: runClusterSweep,
	})
}

// runClusterPoint measures one open-loop load level through the cluster.
func runClusterPoint(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	policy := r.Str("policy", PolicyLocalPacked)
	shards := r.Int("shards", 2)
	dimms := r.Int("dimms", 0)
	capDIMM := r.Int("capdimm", 4)
	span := r.Int64("span", 1)
	backend := r.Str("backend", "pmemkv")
	media := r.Str("media", "optane")
	mode := r.Str("mode", "wal-flex")
	arrival := r.Str("arrival", "poisson")
	offered := r.Float("offered", 8000) // kops, cluster-wide
	cycleUS := r.Float("cycle", 20)
	onFrac := r.Float("onfrac", 0.25)
	tenants := r.Int("tenants", 2)
	theta := r.Float("theta", 0.99)
	mix := r.Str("mix", "split")
	hotFrac := r.Float("hotfrac", 0.9)
	hotKeys := r.Int64("hotkeys", 0)
	hotPeriod := r.Int64("hotperiod", 2000)
	keys := r.Int64("keys", 200)
	keySize := r.Int("keysize", 16)
	valSize := r.Int("valsize", 128)
	getFrac := r.Float("get", 0.75)
	putFrac := r.Float("put", 0.2)
	scanFrac := r.Float("scan", 0.05)
	delFrac := r.Float("del", 0)
	scanLen := r.Int("scanlen", 16)
	scanMode := r.Str("scanmode", "emulate")
	putlog := r.Bool("putlog", false)
	qcap := r.Int("qcap", 0)
	pollNS := r.Float("poll", 200)
	batch := r.Int("batch", 1)
	lingerNS := r.Float("linger", 0)
	pmBytes := r.Int64("pmbytes", 0)
	dramBytes := r.Int64("drambytes", 0)
	cacheBytes := r.Int64("cache", 0)
	quotaBytes := r.Int64("quota", 0)
	admit := r.Int("admit", 1)
	evict := r.Str("evict", "clock")
	tierKind := r.Str("tier", "")
	llcKB := r.Int64("llckb", 0)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}
	switch tierKind {
	case "":
	case "hot":
		if cacheBytes <= 0 {
			return harness.Trial{}, fmt.Errorf("cluster: tier=hot needs a positive cache size, got %d", cacheBytes)
		}
	case "memmode":
		return harness.Trial{}, fmt.Errorf("cluster: tier=memmode is a single-node axis (service/cache/memmode)")
	default:
		return harness.Trial{}, fmt.Errorf("cluster: unknown tier %q (want hot)", tierKind)
	}
	if llcKB < 0 {
		return harness.Trial{}, fmt.Errorf("cluster: llckb must be >= 0, got %d", llcKB)
	}
	if batch < 1 {
		return harness.Trial{}, fmt.Errorf("cluster: batch size must be >= 1, got %d", batch)
	}
	if lingerNS < 0 {
		return harness.Trial{}, fmt.Errorf("cluster: linger must be >= 0 ns, got %g", lingerNS)
	}
	var nativeScan bool
	switch scanMode {
	case "native":
		nativeScan = true
	case "emulate":
	default:
		return harness.Trial{}, fmt.Errorf("cluster: unknown scanmode %q (want emulate or native)", scanMode)
	}
	if offered <= 0 {
		return harness.Trial{}, fmt.Errorf("cluster: offered load must be positive, got %g", offered)
	}
	if tenants < 1 {
		return harness.Trial{}, fmt.Errorf("cluster: need at least one tenant, got %d", tenants)
	}
	if hotKeys == 0 {
		hotKeys = keys/20 + 1
	}
	tens := make([]service.Tenant, tenants)
	for i := range tens {
		tens[i] = service.Tenant{Name: fmt.Sprintf("t%d", i)}
		switch mix {
		case "zipf":
			tens[i].Theta = theta
		case "uniform":
		case "split":
			if i%2 == 0 {
				tens[i].Theta = theta
			}
		case "hotspot":
			tens[i].HotFrac = hotFrac
			tens[i].HotKeys = hotKeys
			tens[i].HotPeriod = hotPeriod
		case "hotsplit":
			// Tenant 0 is the skewed hot-range tenant; the rest stay
			// uniform, so shed accounting shows who a hot shard drops.
			if i == 0 {
				tens[i].HotFrac = hotFrac
				tens[i].HotKeys = hotKeys
				tens[i].HotPeriod = hotPeriod
			}
		default:
			return harness.Trial{}, fmt.Errorf("cluster: unknown key mix %q (want zipf, uniform, split, hotspot or hotsplit)", mix)
		}
	}

	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	if llcKB > 0 {
		// See runPoint: cache scenarios shrink the LLC so the working set
		// actually reaches the memory tiers.
		cfg.LLC.Lines = int(llcKB << 10 / 64)
	}
	p := platform.MustNew(cfg)
	defer p.Close()

	cl, err := New(p, Config{
		Policy: policy, Shards: shards, Workers: spec.Threads,
		DIMMs: dimms, CapPerDIMM: capDIMM, ClientSocket: spec.Socket,
		Span: span, QueueCap: qcap,
		Backend: backend,
		Spec: service.BackendSpec{
			Media: media, Mode: mode,
			Keys: int64(tenants) * keys, KeySize: keySize, ValSize: valSize,
			PMBytes: pmBytes, DRAMBytes: dramBytes,
			ScanSpan: keys, NativeScan: nativeScan,
		},
		PutLog:     putlog,
		CacheBytes: cacheBytes, CacheQuota: quotaBytes,
		CacheAdmit: admit, CacheEvict: evict,
		CacheTenantSpan: keys, CacheSeed: spec.Seed ^ 0x407C,
	})
	if err != nil {
		return harness.Trial{}, err
	}
	arr, err := service.NewArrival(arrival, offered*1e3, sim.Micros(cycleUS), onFrac, spec.Seed^0x5A17)
	if err != nil {
		return harness.Trial{}, err
	}
	// Tracing mirrors the single-node point scenario: a recorder keyed off
	// the spec's Trace flag (never a param, so seeds and results are
	// untouched), with cluster-wide probes merged across the shard fabric.
	var rec *telemetry.Recorder
	var cacheStats func() (int64, int64)
	if spec.Trace {
		rec = telemetry.NewRecorder(service.TraceInterval(spec.Duration), 0)
		if putlog {
			rec.AddProbe(func(add func(string, float64)) {
				var c pmem.Counters
				for i := range cl.Shards {
					if pl := cl.Shards[i].PutLog; pl != nil {
						cc := pl.Counters()
						c.Merge(&cc)
					}
				}
				c.Gauges(add)
			})
		}
		service.AddEWRProbe(rec, p)
		if cacheBytes > 0 {
			rec.AddProbe(func(add func(string, float64)) { cl.CacheCounters().Gauges(add) })
			cacheStats = func() (int64, int64) {
				c := cl.CacheCounters()
				return c.Hits, c.Misses
			}
		}
	}
	res, err := service.Serve(service.Config{
		Platform: p, Socket: spec.Socket,
		Shards: cl.Shards, Route: cl.Route,
		Arrival: arr, Tenants: tens,
		Keys: keys, KeySize: keySize, ValSize: valSize,
		GetFrac: getFrac, PutFrac: putFrac, ScanFrac: scanFrac, DelFrac: delFrac,
		ScanLen:  scanLen,
		Duration: spec.Duration, Warmup: spec.Warmup,
		Poll: sim.Nanos(pollNS), Seed: spec.Seed,
		BatchSize: batch, BatchLinger: sim.Nanos(lingerNS),
		Recorder: rec, CacheStats: cacheStats,
	})
	if err != nil {
		return harness.Trial{}, err
	}

	workers := cl.TotalWorkers()
	qs := res.Latency.Quantiles([]float64{0.5, 0.95, 0.99, 0.999})
	m := map[string]float64{
		"offered_kops":  res.OfferedRate / 1e3,
		"achieved_kops": res.AchievedRate / 1e3,
		"drop_frac":     dropFrac(res.Dropped, res.Offered),
		"p50_ns":        qs[0],
		"p95_ns":        qs[1],
		"p99_ns":        qs[2],
		"p999_ns":       qs[3],
		"util":          res.Utilization(workers),
		"qmax":          float64(res.MaxQueueLen),
		"workers":       float64(workers),
		"remote_shards": float64(cl.Placement.RemoteShards()),
	}
	maxShare := 0.0
	for i := range res.Shards {
		sh := &res.Shards[i]
		share := 0.0
		if res.Completed > 0 {
			share = float64(sh.Completed) / float64(res.Completed)
		}
		if share > maxShare {
			maxShare = share
		}
		m[fmt.Sprintf("s%d_share", i)] = share
		m[fmt.Sprintf("s%d_p99_ns", i)] = sh.Latency.Percentile(0.99)
		m[fmt.Sprintf("s%d_drop_frac", i)] = dropFrac(sh.Dropped, sh.Offered)
		m[fmt.Sprintf("s%d_qmax", i)] = float64(sh.MaxQueueLen)
	}
	m["max_shard_share"] = maxShare
	for i := range res.Tenants {
		t := &res.Tenants[i]
		m[fmt.Sprintf("t%d_p99_ns", i)] = t.Latency.Percentile(0.99)
		m[fmt.Sprintf("t%d_drop_frac", i)] = dropFrac(t.Dropped, t.Offered)
		harness.GateMetric(m, res.Dropped > 0, fmt.Sprintf("t%d_shed_ops", i), float64(t.Dropped))
	}
	// Fence-amortization readout across every shard's append logs, gated
	// on the batch path being on (batch=1 keeps pre-batching scenario
	// output byte-stable).
	harness.GateMetrics(m, batch > 1 && putlog, func(m map[string]float64) {
		var c pmem.Counters
		for i := range cl.Shards {
			if pl := cl.Shards[i].PutLog; pl != nil {
				cc := pl.Counters()
				c.Merge(&cc)
			}
		}
		c.Metrics(m)
	})
	// Cache-tier readout merged across shards, gated on the tier being on
	// (cache-less runs stay byte-stable).
	harness.GateMetrics(m, cacheBytes > 0, func(m map[string]float64) {
		cl.CacheCounters().Metrics(m)
	})
	tr := harness.Trial{
		Ops:     res.Completed,
		Sim:     res.Window,
		Latency: res.Latency,
		Metrics: m,
	}
	if rec != nil {
		run := rec.Finish("")
		run.Metrics(m)
		tr.Trace = &telemetry.Trace{Runs: []*telemetry.Run{run}}
	}
	return tr, nil
}

func dropFrac(dropped, offered int64) float64 {
	if offered == 0 {
		return 0
	}
	return float64(dropped) / float64(offered)
}

// runClusterSweep fans a load grid out over nested cluster/point trials,
// once per policy in the policygrid (default: the single policy param).
// Grid params are consumed here; everything else passes through to the
// point scenario verbatim, whose reader catches typos.
func runClusterSweep(spec harness.Spec) (harness.Trial, error) {
	rest := make(map[string]string, len(spec.Params))
	for k, v := range spec.Params {
		rest[k] = v
	}
	minKops, maxKops, pointsF, err := service.GridParams(rest, 2000, 34000, 7)
	if err != nil {
		return harness.Trial{}, err
	}
	policies := []string{rest["policy"]}
	if policies[0] == "" {
		policies[0] = PolicyLocalPacked
	}
	if pg, ok := rest["policygrid"]; ok {
		delete(rest, "policygrid")
		policies = policies[:0]
		for _, s := range strings.Split(pg, ",") {
			policies = append(policies, strings.TrimSpace(s))
		}
	}
	batchGrid, linger, err := service.BatchGridParams(rest)
	if err != nil {
		return harness.Trial{}, err
	}
	cacheGrid, cacheExtras, err := service.CacheGridParams(rest)
	if err != nil {
		return harness.Trial{}, err
	}

	tr := harness.Trial{Metrics: make(map[string]float64)}
	var trace *telemetry.Trace
	var text strings.Builder
	for _, policy := range policies {
		for _, batch := range batchGrid {
			for _, cache := range cacheGrid {
				leg := service.CacheLegParams(service.BatchLegParams(rest, batch, linger), cache, cacheExtras)
				params := make(map[string]string, len(leg)+1)
				for k, v := range leg {
					params[k] = v
				}
				params["policy"] = policy
				curve, err := RunSweep(SweepConfig{
					Params:  params,
					Threads: spec.Threads, Duration: spec.Duration, Warmup: spec.Warmup,
					Seed:    spec.Seed,
					MinKops: minKops, MaxKops: maxKops, Points: int(pointsF),
					Parallel: spec.Parallel,
					Trace:    spec.Trace,
				})
				if err != nil {
					return harness.Trial{}, err
				}
				suffix := ""
				if len(policies) > 1 {
					suffix = "@" + policy
				}
				if len(batchGrid) > 1 {
					suffix += fmt.Sprintf("@b%d", batch)
				}
				if len(cacheGrid) > 1 {
					suffix += fmt.Sprintf("@c%d", cache)
				}
				trace = service.MergeCurveTrace(trace, curve, suffix)
				service.EmitCurve(&tr, curve, suffix)
				// Fence amortization at the deepest grid point, present on the
				// group-commit legs only.
				if f, ok := curve[len(curve)-1].Metrics["pmem_fence_per_op"]; ok {
					tr.Metrics["fence_per_op_deep"+suffix] = f
				}
				// Tier hit rate at the deepest grid point, present on the
				// cached legs only (same gating as the point metrics).
				if f, ok := curve[len(curve)-1].Metrics["cache_hit_rate"]; ok {
					tr.Metrics["cache_hit_rate_deep"+suffix] = f
				}
				// Deep-overload shed accounting: who gets dropped at the top of
				// the grid (per-tenant keys appear only once the point sheds).
				deep := curve[len(curve)-1].Metrics
				var shedKeys []string
				for k := range deep {
					if strings.HasSuffix(k, "_shed_ops") {
						shedKeys = append(shedKeys, k)
					}
				}
				sort.Strings(shedKeys)
				for _, k := range shedKeys {
					tr.Metrics[k+suffix] = deep[k]
				}
				title := fmt.Sprintf("cluster sweep: policy %s, %d shards, %s workers/shard",
					policy, atoiOr(rest["shards"], 2), workersLabel(spec.Threads))
				if len(batchGrid) > 1 {
					title += fmt.Sprintf(", batch %d", batch)
				}
				if len(cacheGrid) > 1 {
					title += fmt.Sprintf(", cache %d B", cache)
				}
				text.WriteString(curve.TSV(title))
				text.WriteByte('\n')
			}
		}
	}
	tr.Text = strings.TrimRight(text.String(), "\n")
	tr.Trace = trace
	return tr, nil
}

func atoiOr(s string, def int) int {
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	return def
}

func workersLabel(threads int) string {
	if threads <= 0 {
		return "default"
	}
	return strconv.Itoa(threads)
}

// SweepConfig configures a per-policy cluster load sweep (a thin wrapper
// over service.RunSweep pointed at cluster/point).
type SweepConfig struct {
	// Params are cluster/point params (policy, shards, mix, ...).
	Params map[string]string
	// Threads is the requested per-shard worker pool at every point.
	Threads          int
	Duration         sim.Time
	Warmup           sim.Time
	Seed             uint64
	MinKops, MaxKops float64
	Points           int
	Parallel         int
	// Trace asks every point trial to record spans and a timeline
	// (non-identity, like Parallel; see service.SweepConfig.Trace).
	Trace bool
}

// RunSweep measures one policy's throughput-latency curve.
func RunSweep(sc SweepConfig) (service.Curve, error) {
	return service.RunSweep(service.SweepConfig{
		Scenario: "cluster/point",
		Params:   sc.Params,
		Threads:  sc.Threads, Duration: sc.Duration, Warmup: sc.Warmup,
		Seed:    sc.Seed,
		MinKops: sc.MinKops, MaxKops: sc.MaxKops, Points: sc.Points,
		Parallel: sc.Parallel,
		Trace:    sc.Trace,
	})
}
