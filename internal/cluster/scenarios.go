package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"optanestudy/internal/devstat"
	"optanestudy/internal/fault"
	"optanestudy/internal/harness"
	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/service"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/telemetry"
)

// Harness scenarios. "cluster/point" measures one load level through the
// sharded fabric (spec.Threads is the requested per-shard pool); the
// "cluster/sweep-*" presets step offered load per placement policy and
// emit the throughput-latency curve, knee and saturation — local-packed,
// interleaved and numa-blind on the common two-shard layout, and
// sweep-capped racing the §5.3 worker cap against an uncapped pool on a
// single-DIMM-heavy layout. "cluster/hotspot" drives a shifting hot range
// through block routing so load piles onto one shard at a time.
func init() {
	harness.Register(harness.Scenario{
		Name: "cluster/point",
		Doc:  "one open-loop load level through the sharded, placement-pinned serving fabric",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 51,
			Params: map[string]string{"policy": PolicyLocalPacked, "offered": "8000"},
		},
		Run: runClusterPoint,
	})
	harness.Register(harness.Scenario{
		Name: "cluster/hotspot",
		Doc:  "shifting-hotspot skew under block routing: load concentrates on one shard at a time",
		Defaults: harness.Defaults{
			Threads: 2, Duration: 400 * sim.Microsecond, Seed: 57,
			Params: map[string]string{
				"policy": PolicyLocalPacked, "shards": "4", "span": "500",
				"tenants": "2", "keys": "2000", "mix": "hotsplit",
				"hotkeys": "150", "hotperiod": "4000", "hotfrac": "0.95",
				"offered": "9000", "qcap": "24",
			},
		},
		Run: runClusterPoint,
	})
	sweepDefaults := func(policy string, seed uint64) harness.Defaults {
		return harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: seed,
			Params: map[string]string{
				"policy": policy, "shards": "2",
				"get": "0.5", "put": "0.5", "scan": "0",
				"minkops": "2000", "maxkops": "34000", "points": "7",
			},
		}
	}
	harness.Register(harness.Scenario{
		Name:     "cluster/sweep-local-packed",
		Doc:      "throughput-latency curve: shards packed on the client socket, DIMMs partitioned",
		Defaults: sweepDefaults(PolicyLocalPacked, 52),
		Run:      runClusterSweep,
	})
	harness.Register(harness.Scenario{
		Name:     "cluster/sweep-interleaved",
		Doc:      "throughput-latency curve: every shard striped across all client-socket DIMMs",
		Defaults: sweepDefaults(PolicyInterleaved, 53),
		Run:      runClusterSweep,
	})
	harness.Register(harness.Scenario{
		Name:     "cluster/sweep-numa-blind",
		Doc:      "throughput-latency curve: shard data round-robined across sockets, workers unpinned",
		Defaults: sweepDefaults(PolicyNUMABlind, 54),
		Run:      runClusterSweep,
	})
	// The capped preset builds the single-DIMM-heavy layout of the §5.3
	// experiment — every shard on one DIMM, 16 write-behind log streams
	// requested per shard — and races the capped policy against the same
	// layout uncapped.
	harness.Register(harness.Scenario{
		Name: "cluster/sweep-capped",
		Doc:  "threads-per-DIMM cap vs uncapped 16-worker pools on single-DIMM shards",
		Defaults: harness.Defaults{
			Threads: 16, Duration: 300 * sim.Microsecond, Seed: 55,
			Params: map[string]string{
				"policygrid": PolicyCapped + "," + PolicyLocalPacked,
				"shards":     "2", "dimms": "1", "capdimm": "4",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"minkops": "6000", "maxkops": "42000", "points": "7",
			},
		},
		Run: runClusterSweep,
	})
	// The batch preset repeats the capped single-DIMM layout at group-commit
	// depths 1/8/32: the depth-1 leg reproduces the unbatched curve
	// byte-identically (no batch params are injected for it, so its point
	// specs and seeds are unchanged), while the deeper legs amortize the
	// per-PUT fence across the drained group — fences/op drops toward
	// 1/depth and the saturation knee moves to higher offered load, at the
	// price of up to `batchlinger` ns of added latency at light load.
	harness.Register(harness.Scenario{
		Name: "cluster/sweep-batch",
		Doc:  "group-commit depth sweep (1/8/32) on the capped single-DIMM layout",
		Defaults: harness.Defaults{
			Threads: 16, Duration: 300 * sim.Microsecond, Seed: 55,
			Params: map[string]string{
				"policy": PolicyCapped,
				"shards": "2", "dimms": "1", "capdimm": "4",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"minkops": "6000", "maxkops": "42000", "points": "7",
				"batchgrid": "1,8,32", "batchlinger": "1000",
			},
		},
		Run: runClusterSweep,
	})
	// The cache preset fronts each shard's replica with a per-shard DRAM hot
	// tier on the shard's worker socket and repeats a read-heavy Zipf sweep
	// with the tier off and on. The cache-0 leg injects no cache params, so
	// its point specs and seeds reproduce the uncached curve byte-identically;
	// the cached leg serves repeat GETs from DRAM and moves the knee to
	// higher offered load. llckb shrinks the simulated LLC so the small
	// keyspace is not already LLC-resident (which would hide the tier).
	harness.Register(harness.Scenario{
		Name: "cluster/sweep-cache",
		Doc:  "per-shard DRAM hot tier off/on over a read-heavy Zipf sweep",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 300 * sim.Microsecond, Seed: 56,
			Params: map[string]string{
				"policy": PolicyLocalPacked, "shards": "2",
				"tenants": "2", "keys": "2000", "valsize": "128",
				"mix": "zipf", "llckb": "16",
				"get": "0.95", "put": "0.05", "scan": "0",
				"minkops": "4000", "maxkops": "28000", "points": "7",
				"cachegrid": "0,524288",
			},
		},
		Run: runClusterSweep,
	})
	// The failover family replicates every shard (standby backend + ship
	// log on the next socket) and injects deterministic faults mid-window.
	// The point preset crashes one primary and measures the failover
	// (detect → promote-from-shipped-log → drain); the sweep races the
	// fault-free curve against the crash-injected one (the none leg
	// injects no fault params, so it reproduces an uninjected replicated-
	// less sweep byte-identically); churn cycles standby leave/join and
	// measures the exposure (records a promotion would lose).
	harness.Register(harness.Scenario{
		Name: "cluster/failover/point",
		Doc:  "mid-window primary crash on a replicated shard: detect, promote from the shipped log, drain",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 58,
			Params: map[string]string{
				"policy": PolicyLocalPacked, "shards": "2", "putlog": "1",
				"replicate": "1", "fault": "crash",
				"faultshard": "0", "faultat": "0.4", "detect": "2000",
				"get": "0.5", "put": "0.5", "scan": "0",
				"offered": "8000", "qcap": "64",
			},
		},
		Run: runClusterPoint,
	})
	harness.Register(harness.Scenario{
		Name: "cluster/failover/sweep",
		Doc:  "recovery under load: fault-free vs crash-injected curves with recovery time and failover-window p99 per load level",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 58,
			Params: map[string]string{
				"policy": PolicyLocalPacked, "shards": "2", "putlog": "1",
				"get": "0.5", "put": "0.5", "scan": "0",
				"minkops": "2000", "maxkops": "26000", "points": "5",
				"faultgrid": "none,crash",
				"faultshard": "0", "faultat": "0.4", "detect": "2000",
			},
		},
		Run: runClusterSweep,
	})
	harness.Register(harness.Scenario{
		Name: "cluster/failover/churn",
		Doc:  "standby leave/join churn: catch-up traffic and the unreplicated-write exposure a promotion would lose",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 400 * sim.Microsecond, Seed: 59,
			Params: map[string]string{
				"policy": PolicyLocalPacked, "shards": "2", "putlog": "1",
				"replicate": "1", "fault": "churn", "faultat": "0",
				"churnperiod": "80", "churndown": "0.3", "churnjitter": "0.2",
				"get": "0.5", "put": "0.5", "scan": "0",
				"offered": "8000",
			},
		},
		Run: runClusterPoint,
	})
}

// runClusterPoint measures one open-loop load level through the cluster.
func runClusterPoint(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	policy := r.Str("policy", PolicyLocalPacked)
	shards := r.Int("shards", 2)
	dimms := r.Int("dimms", 0)
	capDIMM := r.Int("capdimm", 4)
	span := r.Int64("span", 1)
	backend := r.Str("backend", "pmemkv")
	media := r.Str("media", "optane")
	mode := r.Str("mode", "wal-flex")
	arrival := r.Str("arrival", "poisson")
	offered := r.Float("offered", 8000) // kops, cluster-wide
	cycleUS := r.Float("cycle", 20)
	onFrac := r.Float("onfrac", 0.25)
	tenants := r.Int("tenants", 2)
	theta := r.Float("theta", 0.99)
	mix := r.Str("mix", "split")
	hotFrac := r.Float("hotfrac", 0.9)
	hotKeys := r.Int64("hotkeys", 0)
	hotPeriod := r.Int64("hotperiod", 2000)
	keys := r.Int64("keys", 200)
	keySize := r.Int("keysize", 16)
	valSize := r.Int("valsize", 128)
	getFrac := r.Float("get", 0.75)
	putFrac := r.Float("put", 0.2)
	scanFrac := r.Float("scan", 0.05)
	delFrac := r.Float("del", 0)
	scanLen := r.Int("scanlen", 16)
	scanMode := r.Str("scanmode", "emulate")
	putlog := r.Bool("putlog", false)
	replicate := r.Bool("replicate", false)
	faultKind := r.Str("fault", "")
	faultShard := r.Int("faultshard", 0)
	faultAt := r.Float("faultat", 0.4)
	faultDurNS := r.Float("faultdur", 20000)
	detectNS := r.Float("detect", 2000)
	faultSocket := r.Int("faultsocket", 0)
	churnPeriodUS := r.Float("churnperiod", 80)
	churnDown := r.Float("churndown", 0.3)
	churnJitter := r.Float("churnjitter", 0.2)
	qcap := r.Int("qcap", 0)
	pollNS := r.Float("poll", 200)
	batch := r.Int("batch", 1)
	lingerNS := r.Float("linger", 0)
	pmBytes := r.Int64("pmbytes", 0)
	dramBytes := r.Int64("drambytes", 0)
	cacheBytes := r.Int64("cache", 0)
	quotaBytes := r.Int64("quota", 0)
	admit := r.Int("admit", 1)
	evict := r.Str("evict", "clock")
	tierKind := r.Str("tier", "")
	llcKB := r.Int64("llckb", 0)
	devOn := r.Bool("devstat", false)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}
	switch tierKind {
	case "":
	case "hot":
		if cacheBytes <= 0 {
			return harness.Trial{}, fmt.Errorf("cluster: tier=hot needs a positive cache size, got %d", cacheBytes)
		}
	case "memmode":
		return harness.Trial{}, fmt.Errorf("cluster: tier=memmode is a single-node axis (service/cache/memmode)")
	default:
		return harness.Trial{}, fmt.Errorf("cluster: unknown tier %q (want hot)", tierKind)
	}
	if llcKB < 0 {
		return harness.Trial{}, fmt.Errorf("cluster: llckb must be >= 0, got %d", llcKB)
	}
	if batch < 1 {
		return harness.Trial{}, fmt.Errorf("cluster: batch size must be >= 1, got %d", batch)
	}
	if lingerNS < 0 {
		return harness.Trial{}, fmt.Errorf("cluster: linger must be >= 0 ns, got %g", lingerNS)
	}
	switch faultKind {
	case "", "crash", "stall", "socket", "churn":
	default:
		return harness.Trial{}, fmt.Errorf("cluster: unknown fault %q (want crash, stall, socket or churn)", faultKind)
	}
	if faultKind != "" && faultKind != "stall" && !replicate {
		return harness.Trial{}, fmt.Errorf("cluster: fault=%s needs a standby to fail over to; set replicate", faultKind)
	}
	if faultAt < 0 || faultAt > 1 {
		return harness.Trial{}, fmt.Errorf("cluster: faultat is a fraction of the measured window, got %g", faultAt)
	}
	if detectNS < 0 {
		return harness.Trial{}, fmt.Errorf("cluster: detect must be >= 0 ns, got %g", detectNS)
	}
	var nativeScan bool
	switch scanMode {
	case "native":
		nativeScan = true
	case "emulate":
	default:
		return harness.Trial{}, fmt.Errorf("cluster: unknown scanmode %q (want emulate or native)", scanMode)
	}
	if offered <= 0 {
		return harness.Trial{}, fmt.Errorf("cluster: offered load must be positive, got %g", offered)
	}
	if tenants < 1 {
		return harness.Trial{}, fmt.Errorf("cluster: need at least one tenant, got %d", tenants)
	}
	if hotKeys == 0 {
		hotKeys = keys/20 + 1
	}
	tens := make([]service.Tenant, tenants)
	for i := range tens {
		tens[i] = service.Tenant{Name: fmt.Sprintf("t%d", i)}
		switch mix {
		case "zipf":
			tens[i].Theta = theta
		case "uniform":
		case "split":
			if i%2 == 0 {
				tens[i].Theta = theta
			}
		case "hotspot":
			tens[i].HotFrac = hotFrac
			tens[i].HotKeys = hotKeys
			tens[i].HotPeriod = hotPeriod
		case "hotsplit":
			// Tenant 0 is the skewed hot-range tenant; the rest stay
			// uniform, so shed accounting shows who a hot shard drops.
			if i == 0 {
				tens[i].HotFrac = hotFrac
				tens[i].HotKeys = hotKeys
				tens[i].HotPeriod = hotPeriod
			}
		default:
			return harness.Trial{}, fmt.Errorf("cluster: unknown key mix %q (want zipf, uniform, split, hotspot or hotsplit)", mix)
		}
	}

	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	if llcKB > 0 {
		// See runPoint: cache scenarios shrink the LLC so the working set
		// actually reaches the memory tiers.
		cfg.LLC.Lines = int(llcKB << 10 / 64)
	}
	p := platform.MustNew(cfg)
	defer p.Close()

	cl, err := New(p, Config{
		Policy: policy, Shards: shards, Workers: spec.Threads,
		DIMMs: dimms, CapPerDIMM: capDIMM, ClientSocket: spec.Socket,
		Span: span, QueueCap: qcap,
		Backend: backend,
		Spec: service.BackendSpec{
			Media: media, Mode: mode,
			Keys: int64(tenants) * keys, KeySize: keySize, ValSize: valSize,
			PMBytes: pmBytes, DRAMBytes: dramBytes,
			ScanSpan: keys, NativeScan: nativeScan,
		},
		PutLog: putlog, Replicate: replicate,
		CacheBytes: cacheBytes, CacheQuota: quotaBytes,
		CacheAdmit: admit, CacheEvict: evict,
		CacheTenantSpan: keys, CacheSeed: spec.Seed ^ 0x407C,
	})
	if err != nil {
		return harness.Trial{}, err
	}
	arr, err := service.NewArrival(arrival, offered*1e3, sim.Micros(cycleUS), onFrac, spec.Seed^0x5A17)
	if err != nil {
		return harness.Trial{}, err
	}
	// The fault schedule is a pure function of the point spec (seed, window,
	// fault params), built on the serving clock: event time 0 is serving
	// start, so faultat=f fires f of the way into the measured window.
	var faults []fault.Event
	if faultKind != "" {
		at := spec.Warmup + sim.Time(faultAt*float64(spec.Duration))
		switch faultKind {
		case "crash":
			faults = fault.Point(fault.Crash, faultShard, at, 0)
		case "stall":
			faults = fault.Point(fault.Stall, faultShard, at, sim.Nanos(faultDurNS))
		case "socket":
			// A whole-socket loss crashes every shard whose data lives on the
			// lost socket — the placement resolves which ones those are.
			var lost []int
			for i, sp := range cl.Placement.Shards {
				if sp.DataSocket == faultSocket {
					lost = append(lost, i)
				}
			}
			if len(lost) == 0 {
				return harness.Trial{}, fmt.Errorf("cluster: no shard's data lives on socket %d", faultSocket)
			}
			faults = fault.SocketLoss(lost, at)
		case "churn":
			faults, err = fault.Churn(fault.ChurnConfig{
				Seed:   spec.Seed ^ 0xFA01,
				Shards: shards,
				Start:  at, End: spec.Warmup + spec.Duration,
				Period:   sim.Micros(churnPeriodUS),
				DownFrac: churnDown, Jitter: churnJitter,
			})
			if err != nil {
				return harness.Trial{}, err
			}
		}
	}
	// Tracing mirrors the single-node point scenario: a recorder keyed off
	// the spec's Trace flag (never a param, so seeds and results are
	// untouched), with cluster-wide probes merged across the shard fabric.
	var rec *telemetry.Recorder
	var cacheStats func() (int64, int64)
	if spec.Trace {
		rec = telemetry.NewRecorder(service.TraceInterval(spec.Duration), 0)
		if putlog {
			rec.AddProbe(func(add func(string, float64)) {
				var c pmem.Counters
				for i := range cl.Shards {
					if pl := cl.Shards[i].PutLog; pl != nil {
						cc := pl.Counters()
						c.Merge(&cc)
					}
				}
				c.Gauges(add)
			})
		}
		service.AddDeviceProbes(rec, p)
		if cacheBytes > 0 {
			rec.AddProbe(func(add func(string, float64)) { cl.CacheCounters().Gauges(add) })
			cacheStats = func() (int64, int64) {
				c := cl.CacheCounters()
				return c.Hits, c.Misses
			}
		}
	}
	// The devstat watcher captures device-counter snapshots at the measured
	// window's boundaries on its own read-only proc; see runPoint.
	var dw *devstat.Watcher
	if devOn {
		dw = devstat.Watch(p, spec.Socket, spec.Warmup, spec.Duration)
	}
	res, err := service.Serve(service.Config{
		Platform: p, Socket: spec.Socket,
		Shards: cl.Shards, Route: cl.Route,
		Arrival: arr, Tenants: tens,
		Keys: keys, KeySize: keySize, ValSize: valSize,
		GetFrac: getFrac, PutFrac: putFrac, ScanFrac: scanFrac, DelFrac: delFrac,
		ScanLen:  scanLen,
		Duration: spec.Duration, Warmup: spec.Warmup,
		Poll: sim.Nanos(pollNS), Seed: spec.Seed,
		BatchSize: batch, BatchLinger: sim.Nanos(lingerNS),
		Faults: faults, Detect: sim.Nanos(detectNS),
		Recorder: rec, CacheStats: cacheStats,
	})
	if err != nil {
		return harness.Trial{}, err
	}

	workers := cl.TotalWorkers()
	qs := res.Latency.Quantiles([]float64{0.5, 0.95, 0.99, 0.999})
	m := map[string]float64{
		"offered_kops":  res.OfferedRate / 1e3,
		"achieved_kops": res.AchievedRate / 1e3,
		"drop_frac":     dropFrac(res.Dropped, res.Offered),
		"p50_ns":        qs[0],
		"p95_ns":        qs[1],
		"p99_ns":        qs[2],
		"p999_ns":       qs[3],
		"util":          res.Utilization(workers),
		"qmax":          float64(res.MaxQueueLen),
		"workers":       float64(workers),
		"remote_shards": float64(cl.Placement.RemoteShards()),
	}
	maxShare := 0.0
	for i := range res.Shards {
		sh := &res.Shards[i]
		share := 0.0
		if res.Completed > 0 {
			share = float64(sh.Completed) / float64(res.Completed)
		}
		if share > maxShare {
			maxShare = share
		}
		m[fmt.Sprintf("s%d_share", i)] = share
		m[fmt.Sprintf("s%d_p99_ns", i)] = sh.Latency.Percentile(0.99)
		m[fmt.Sprintf("s%d_drop_frac", i)] = dropFrac(sh.Dropped, sh.Offered)
		m[fmt.Sprintf("s%d_qmax", i)] = float64(sh.MaxQueueLen)
	}
	m["max_shard_share"] = maxShare
	for i := range res.Tenants {
		t := &res.Tenants[i]
		m[fmt.Sprintf("t%d_p99_ns", i)] = t.Latency.Percentile(0.99)
		m[fmt.Sprintf("t%d_drop_frac", i)] = dropFrac(t.Dropped, t.Offered)
		harness.GateMetric(m, res.Dropped > 0, fmt.Sprintf("t%d_shed_ops", i), float64(t.Dropped))
	}
	// Fence-amortization readout across every shard's append logs, gated
	// on the batch path being on (batch=1 keeps pre-batching scenario
	// output byte-stable).
	harness.GateMetrics(m, batch > 1 && putlog, func(m map[string]float64) {
		var c pmem.Counters
		for i := range cl.Shards {
			if pl := cl.Shards[i].PutLog; pl != nil {
				cc := pl.Counters()
				c.Merge(&cc)
			}
		}
		c.Metrics(m)
	})
	// Cache-tier readout merged across shards, gated on the tier being on
	// (cache-less runs stay byte-stable).
	harness.GateMetrics(m, cacheBytes > 0, func(m map[string]float64) {
		cl.CacheCounters().Metrics(m)
	})
	// Device-health readout, gated on the devstat param (absent ⇒ zero
	// dev_* keys, so pre-existing scenario output stays byte-identical):
	// per-DIMM health metrics plus per-shard attribution through the
	// placement's (socket, channel-set) — the namespace→DIMM-set mapping
	// the cluster pinned when it carved each shard's backend.
	harness.GateMetrics(m, dw != nil, func(m map[string]float64) {
		w := dw.Window()
		w.Metrics(m)
		for i, sp := range cl.Placement.Shards {
			w.GroupMetrics(m, fmt.Sprintf("shard%d", i), sp.DataSocket, sp.Channels)
		}
	})
	// Replication shipping/replay readout, gated on the pairs existing
	// (unreplicated runs stay byte-stable).
	harness.GateMetrics(m, replicate, func(m map[string]float64) {
		rs := cl.ReplStats()
		m["ship_batches"] = float64(rs.ShipBatches)
		m["ship_recs"] = float64(rs.ShipRecs)
		m["ship_bytes"] = float64(rs.ShipBytes)
		m["failovers"] = float64(rs.Failovers)
		m["replay_batches"] = float64(rs.ReplayBatches)
		m["replay_recs"] = float64(rs.ReplayRecs)
		m["lost_recs"] = float64(rs.LostRecs)
		m["repl_leaves"] = float64(rs.Leaves)
		m["repl_joins"] = float64(rs.Joins)
		m["catchup_recs"] = float64(rs.CatchupRecs)
	})
	// Failover outcome readout, gated on faults actually being scheduled.
	// Worst-case promote/recovery latencies across shards, plus the
	// during-failover-window latency distribution and shed count.
	harness.GateMetrics(m, len(faults) > 0, func(m map[string]float64) {
		var crashes, wops, shed int64
		var promote, recovery float64
		wl := stats.NewHistogram()
		for i := range res.Failover {
			fs := &res.Failover[i]
			crashes += fs.Crashes
			wops += fs.WindowOps
			shed += fs.ShedWindow
			if fs.PromoteNS > promote {
				promote = fs.PromoteNS
			}
			if fs.RecoveryNS > recovery {
				recovery = fs.RecoveryNS
			}
			if fs.WindowLatency != nil {
				wl.Merge(fs.WindowLatency)
			}
		}
		m["crashes"] = float64(crashes)
		m["promote_ns"] = promote
		m["recovery_ns"] = recovery
		m["failover_window_ops"] = float64(wops)
		m["failover_p99_ns"] = wl.Percentile(0.99)
		m["failover_shed_ops"] = float64(shed)
	})
	tr := harness.Trial{
		Ops:     res.Completed,
		Sim:     res.Window,
		Latency: res.Latency,
		Metrics: m,
	}
	if rec != nil {
		run := rec.Finish("")
		run.Metrics(m)
		tr.Trace = &telemetry.Trace{Runs: []*telemetry.Run{run}}
	}
	return tr, nil
}

func dropFrac(dropped, offered int64) float64 {
	if offered == 0 {
		return 0
	}
	return float64(dropped) / float64(offered)
}

// runClusterSweep fans a load grid out over nested cluster/point trials,
// once per policy in the policygrid (default: the single policy param).
// Grid params are consumed here; everything else passes through to the
// point scenario verbatim, whose reader catches typos.
func runClusterSweep(spec harness.Spec) (harness.Trial, error) {
	rest := make(map[string]string, len(spec.Params))
	for k, v := range spec.Params {
		rest[k] = v
	}
	minKops, maxKops, pointsF, err := service.GridParams(rest, 2000, 34000, 7)
	if err != nil {
		return harness.Trial{}, err
	}
	policies := []string{rest["policy"]}
	if policies[0] == "" {
		policies[0] = PolicyLocalPacked
	}
	if pg, ok := rest["policygrid"]; ok {
		delete(rest, "policygrid")
		policies = policies[:0]
		for _, s := range strings.Split(pg, ",") {
			policies = append(policies, strings.TrimSpace(s))
		}
	}
	batchGrid, linger, err := service.BatchGridParams(rest)
	if err != nil {
		return harness.Trial{}, err
	}
	cacheGrid, cacheExtras, err := service.CacheGridParams(rest)
	if err != nil {
		return harness.Trial{}, err
	}
	faultGrid, faultExtras, err := faultGridParams(rest)
	if err != nil {
		return harness.Trial{}, err
	}

	tr := harness.Trial{Metrics: make(map[string]float64)}
	var trace *telemetry.Trace
	var text strings.Builder
	for _, policy := range policies {
		for _, batch := range batchGrid {
			for _, cache := range cacheGrid {
				for _, flt := range faultGrid {
					leg := faultLegParams(service.CacheLegParams(service.BatchLegParams(rest, batch, linger), cache, cacheExtras), flt, faultExtras)
					params := make(map[string]string, len(leg)+1)
					for k, v := range leg {
						params[k] = v
					}
					params["policy"] = policy
					curve, err := RunSweep(SweepConfig{
						Params:  params,
						Threads: spec.Threads, Duration: spec.Duration, Warmup: spec.Warmup,
						Seed:    spec.Seed,
						MinKops: minKops, MaxKops: maxKops, Points: int(pointsF),
						Parallel: spec.Parallel,
						Trace:    spec.Trace,
					})
					if err != nil {
						return harness.Trial{}, err
					}
					suffix := ""
					if len(policies) > 1 {
						suffix = "@" + policy
					}
					if len(batchGrid) > 1 {
						suffix += fmt.Sprintf("@b%d", batch)
					}
					if len(cacheGrid) > 1 {
						suffix += fmt.Sprintf("@c%d", cache)
					}
					if len(faultGrid) > 1 {
						suffix += "@f" + flt
					}
					trace = service.MergeCurveTrace(trace, curve, suffix)
					service.EmitCurve(&tr, curve, suffix)
					// Fence amortization at the deepest grid point, present on the
					// group-commit legs only.
					if f, ok := curve[len(curve)-1].Metrics["pmem_fence_per_op"]; ok {
						tr.Metrics["fence_per_op_deep"+suffix] = f
					}
					// Tier hit rate at the deepest grid point, present on the
					// cached legs only (same gating as the point metrics).
					if f, ok := curve[len(curve)-1].Metrics["cache_hit_rate"]; ok {
						tr.Metrics["cache_hit_rate_deep"+suffix] = f
					}
					// Recovery-under-load curve: per-point failover readouts,
					// present only on the fault-injected legs (each point crashes
					// and recovers under its own offered load).
					for _, key := range []string{"recovery_ns", "promote_ns", "failover_p99_ns", "lost_recs"} {
						for _, pt := range curve {
							if f, ok := pt.Metrics[key]; ok {
								tr.Metrics[fmt.Sprintf("%s@%g%s", key, pt.OfferedKops, suffix)] = f
							}
						}
					}
					// Deep-overload shed accounting: who gets dropped at the top of
					// the grid (per-tenant keys appear only once the point sheds).
					deep := curve[len(curve)-1].Metrics
					var shedKeys []string
					for k := range deep {
						if strings.HasSuffix(k, "_shed_ops") {
							shedKeys = append(shedKeys, k)
						}
					}
					sort.Strings(shedKeys)
					for _, k := range shedKeys {
						tr.Metrics[k+suffix] = deep[k]
					}
					title := fmt.Sprintf("cluster sweep: policy %s, %d shards, %s workers/shard",
						policy, atoiOr(rest["shards"], 2), workersLabel(spec.Threads))
					if len(batchGrid) > 1 {
						title += fmt.Sprintf(", batch %d", batch)
					}
					if len(cacheGrid) > 1 {
						title += fmt.Sprintf(", cache %d B", cache)
					}
					if len(faultGrid) > 1 {
						title += ", fault " + flt
					}
					text.WriteString(curve.TSV(title))
					text.WriteByte('\n')
				}
			}
		}
	}
	tr.Text = strings.TrimRight(text.String(), "\n")
	tr.Trace = trace
	return tr, nil
}

// faultGridParams consumes the failover sweep params: "faultgrid" (a
// comma-separated list of fault kinds; "none" is the fault-free leg, and
// the default grid is just that) plus the companions that reach only the
// injected legs — faultshard/faultat/faultdur/detect/faultsocket and the
// churn knobs. Mirrors BatchGridParams/CacheGridParams: the fault-free
// leg's point specs carry no fault keys at all, so its curve reproduces
// an uninjected sweep's byte-identically.
func faultGridParams(params map[string]string) (grid []string, extras map[string]string, err error) {
	grid = []string{"none"}
	if fg, ok := params["faultgrid"]; ok {
		delete(params, "faultgrid")
		grid = grid[:0]
		for _, s := range strings.Split(fg, ",") {
			name := strings.TrimSpace(s)
			switch name {
			case "none", "crash", "stall", "socket", "churn":
			default:
				return nil, nil, fmt.Errorf("param faultgrid=%q: want comma-separated kinds from none, crash, stall, socket, churn", fg)
			}
			grid = append(grid, name)
		}
	}
	for _, key := range []string{
		"faultshard", "faultat", "faultdur", "detect", "faultsocket",
		"churnperiod", "churndown", "churnjitter",
	} {
		if v, ok := params[key]; ok {
			delete(params, key)
			if extras == nil {
				extras = make(map[string]string)
			}
			extras[key] = v
		}
	}
	return grid, extras, nil
}

// faultLegParams renders one fault-grid leg's point params: "none" passes
// base through untouched (no fault keys — the spec must stay byte-identical
// to an uninjected sweep's), injected legs copy base and add the fault kind,
// its companions and — for kinds that fail over — the replicated topology.
func faultLegParams(base map[string]string, name string, extras map[string]string) map[string]string {
	if name == "none" {
		return base
	}
	params := make(map[string]string, len(base)+2+len(extras))
	for k, v := range base {
		params[k] = v
	}
	params["fault"] = name
	if name != "stall" {
		params["replicate"] = "1"
	}
	for k, v := range extras {
		params[k] = v
	}
	return params
}

func atoiOr(s string, def int) int {
	if n, err := strconv.Atoi(s); err == nil {
		return n
	}
	return def
}

func workersLabel(threads int) string {
	if threads <= 0 {
		return "default"
	}
	return strconv.Itoa(threads)
}

// SweepConfig configures a per-policy cluster load sweep (a thin wrapper
// over service.RunSweep pointed at cluster/point).
type SweepConfig struct {
	// Params are cluster/point params (policy, shards, mix, ...).
	Params map[string]string
	// Threads is the requested per-shard worker pool at every point.
	Threads          int
	Duration         sim.Time
	Warmup           sim.Time
	Seed             uint64
	MinKops, MaxKops float64
	Points           int
	Parallel         int
	// Trace asks every point trial to record spans and a timeline
	// (non-identity, like Parallel; see service.SweepConfig.Trace).
	Trace bool
}

// RunSweep measures one policy's throughput-latency curve.
func RunSweep(sc SweepConfig) (service.Curve, error) {
	return service.RunSweep(service.SweepConfig{
		Scenario: "cluster/point",
		Params:   sc.Params,
		Threads:  sc.Threads, Duration: sc.Duration, Warmup: sc.Warmup,
		Seed:    sc.Seed,
		MinKops: sc.MinKops, MaxKops: sc.MaxKops, Points: sc.Points,
		Parallel: sc.Parallel,
		Trace:    sc.Trace,
	})
}
