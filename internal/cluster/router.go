package cluster

import "fmt"

// Router deterministically maps global key ids onto shards by hashing the
// id's routing block with FNV-1a. Span is the routing-block width in key
// ids: 1 hashes every key independently (uniform scatter, the default),
// while a larger span keeps runs of Span consecutive ids on one shard —
// which is what lets a shifting hot range concentrate on one shard at a
// time instead of dissolving into the hash.
//
// The router is pure state: the same (shards, span, key) always yields the
// same shard, on any machine, at any scheduling width.
type Router struct {
	shards int
	span   int64
}

// NewRouter returns a router over the shard count.
func NewRouter(shards int, span int64) (*Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: router needs at least one shard, got %d", shards)
	}
	if span < 1 {
		return nil, fmt.Errorf("cluster: routing span must be positive, got %d", span)
	}
	return &Router{shards: shards, span: span}, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.shards }

// Span returns the routing-block width.
func (r *Router) Span() int64 { return r.span }

// Shard maps a global key id to its shard.
func (r *Router) Shard(key int64) int {
	block := uint64(key)
	if r.span > 1 {
		block = uint64(key / r.span)
	}
	// FNV-1a over the block's eight little-endian bytes.
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= (block >> (8 * uint(i))) & 0xFF
		h *= 1099511628211
	}
	return int(h % uint64(r.shards))
}
