package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"optanestudy/internal/harness"
	"optanestudy/internal/service"
	"optanestudy/internal/sim"
)

// failoverPointParams is the cluster/failover/point preset, spelled out so
// the tests control every key regardless of how spec defaults merge.
func failoverPointParams() map[string]string {
	return map[string]string{
		"policy": PolicyLocalPacked, "shards": "2", "putlog": "1",
		"replicate": "1", "fault": "crash",
		"faultshard": "0", "faultat": "0.4", "detect": "2000",
		"get": "0.5", "put": "0.5", "scan": "0",
		"offered": "8000", "qcap": "64",
	}
}

// TestFailoverShapeAndRecovery pins the failover story's shape: the crash
// shows up as exactly one failover with a real recovery window (promotion
// takes at least the detection delay, catch-up finishes inside the run),
// the p99 measured inside that window dwarfs the steady-state p99 of the
// same replicated fabric, and synchronous shipping means the promotion
// loses nothing — every acked write replays from the shipped log.
func TestFailoverShapeAndRecovery(t *testing.T) {
	const durUS = 150
	run := func(params map[string]string) map[string]float64 {
		res, err := harness.Run(harness.Spec{
			Scenario: "cluster/failover/point",
			Threads:  4, Duration: durUS * sim.Microsecond, Seed: 58,
			Params: params,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trials[0].Metrics
	}
	faulted := run(failoverPointParams())
	steady := failoverPointParams()
	steady["fault"] = "" // same replicated fabric, no crash
	base := run(steady)

	if got := faulted["crashes"]; got != 1 {
		t.Fatalf("crashes = %g, want exactly 1", got)
	}
	if got := faulted["failovers"]; got != 1 {
		t.Errorf("failovers = %g, want 1", got)
	}
	if p := faulted["promote_ns"]; p < 2000 {
		t.Errorf("promote_ns = %g, want at least the 2000 ns detection delay", p)
	}
	// Bounded catch-up: the window closes (recovery_ns set) and does so
	// inside the run — an unrecovered crash would leave it at 0.
	if r := faulted["recovery_ns"]; r <= faulted["promote_ns"] || r >= durUS*1000 {
		t.Errorf("recovery_ns = %g, want inside (promote_ns=%g, run=%d ns)",
			r, faulted["promote_ns"], durUS*1000)
	}
	// The during-failover tail must dwarf the steady-state tail of the
	// identical replicated topology.
	if fp, sp := faulted["failover_p99_ns"], base["p99_ns"]; fp < 10*sp || faulted["failover_window_ops"] == 0 {
		t.Errorf("failover-window p99 %g ns over %g ops should dwarf steady-state p99 %g ns",
			fp, faulted["failover_window_ops"], sp)
	}
	// Synchronous shipping: the promotion replays acked writes and loses
	// none of them.
	if faulted["replay_recs"] == 0 || faulted["lost_recs"] != 0 {
		t.Errorf("replayed %g / lost %g records, want a real replay with zero loss",
			faulted["replay_recs"], faulted["lost_recs"])
	}
	// The steady run must not leak fault metrics (the gate contract).
	for _, k := range []string{"crashes", "recovery_ns", "failover_p99_ns", "failover_shed_ops"} {
		if _, ok := base[k]; ok {
			t.Errorf("fault-free run emitted %s", k)
		}
	}
}

// TestFailoverSweepFaultFreeLegNeutral pins the grid-leg identity
// contract, mirroring the batch/cache leg tests: the "none" leg of a
// faultgrid sweep injects no fault params, so its curve must reproduce a
// sweep that never heard of faults — same derived seeds, same numbers —
// while the crash leg is a genuinely different recovery-under-load curve.
func TestFailoverSweepFaultFreeLegNeutral(t *testing.T) {
	base := map[string]string{
		"policy": PolicyLocalPacked, "shards": "2", "putlog": "1",
		"get": "0.5", "put": "0.5", "scan": "0",
	}
	run := func(params map[string]string) service.Curve {
		curve, err := RunSweep(SweepConfig{
			Params:  params,
			Threads: 4, Duration: 150 * sim.Microsecond, Seed: 58,
			MinKops: 4000, MaxKops: 16000, Points: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return curve
	}
	grid, extras, err := faultGridParams(map[string]string{
		"faultgrid":  "none,crash",
		"faultshard": "0", "faultat": "0.4", "detect": "2000",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || grid[0] != "none" || grid[1] != "crash" || len(extras) != 3 {
		t.Fatalf("fault grid parsed as %v / extras %v", grid, extras)
	}
	// The none leg must BE the uninjected params map — not a near-copy
	// with fault keys set.
	if leg := faultLegParams(base, "none", extras); !reflect.DeepEqual(leg, base) {
		t.Fatalf("none leg params %v differ from the uninjected base %v", leg, base)
	}
	uninjected := run(base)
	none := run(faultLegParams(base, "none", extras))
	if !reflect.DeepEqual(none, uninjected) {
		t.Fatal("fault-free leg curve differs from the uninjected sweep")
	}
	// The uninjected curve must not leak fault metrics (the gate contract).
	for _, pt := range uninjected {
		for _, k := range []string{"crashes", "recovery_ns", "failover_p99_ns", "ship_recs"} {
			if _, ok := pt.Metrics[k]; ok {
				t.Errorf("uninjected point at %g kops emitted %s", pt.OfferedKops, k)
			}
		}
	}
	// The crash leg recovers under every load level, with a tail far above
	// the fault-free one.
	crash := run(faultLegParams(base, "crash", extras))
	for i, pt := range crash {
		if pt.Metrics["crashes"] != 1 || pt.Metrics["recovery_ns"] <= 0 {
			t.Errorf("crash leg at %g kops: crashes=%g recovery_ns=%g, want one recovered crash",
				pt.OfferedKops, pt.Metrics["crashes"], pt.Metrics["recovery_ns"])
		}
		if pt.P99 <= uninjected[i].P99 {
			t.Errorf("crash leg p99 %g ns at %g kops, want above the fault-free %g ns",
				pt.P99, pt.OfferedKops, uninjected[i].P99)
		}
	}
}

// TestFailoverChurnExposure pins the churn story: leave/join cycles stop
// shipping while detached, Join reships the missed history (catch-up
// traffic), and with no crash in the schedule nothing is ever promoted or
// lost.
func TestFailoverChurnExposure(t *testing.T) {
	res, err := harness.Run(harness.Spec{
		Scenario: "cluster/failover/churn",
		Duration: 150 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Trials[0].Metrics
	if m["repl_leaves"] == 0 || m["repl_joins"] != m["repl_leaves"] {
		t.Errorf("churn cycles: %g leaves / %g joins, want a nonzero matched set", m["repl_leaves"], m["repl_joins"])
	}
	if m["catchup_recs"] == 0 {
		t.Error("joins reshipped nothing; churn never created exposure")
	}
	if m["crashes"] != 0 || m["failovers"] != 0 || m["lost_recs"] != 0 {
		t.Errorf("churn-only run recorded crashes=%g failovers=%g lost=%g, want zeros",
			m["crashes"], m["failovers"], m["lost_recs"])
	}
	if m["ship_recs"] == 0 || m["ship_batches"] == 0 {
		t.Error("no synchronous shipping happened between churn cycles")
	}
}

// TestFailoverParallelByteIdentical is the acceptance contract: the
// fault-injected family's clusterbench output is byte-identical between
// -parallel 1 and -parallel 8 in -deterministic mode.
func TestFailoverParallelByteIdentical(t *testing.T) {
	render := func(parallel string) []byte {
		var out, errOut bytes.Buffer
		code := harness.CLIMain([]string{
			"-format=json", "-deterministic", "-duration=100", "-parallel=" + parallel,
			"cluster/failover/point", "cluster/failover/sweep", "cluster/failover/churn",
		}, harness.CLIOptions{Command: "test", Stdout: &out, Stderr: &errOut})
		if code != 0 {
			t.Fatalf("-parallel=%s: exit %d, stderr: %s", parallel, code, errOut.String())
		}
		return out.Bytes()
	}
	serial, parallel := render("1"), render("8")
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel run diverged from serial:\n--- -parallel=1 ---\n%s\n--- -parallel=8 ---\n%s",
			serial, parallel)
	}
	if !json.Valid(serial) {
		t.Fatal("output is not valid JSON")
	}
}
