package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"optanestudy/internal/harness"
	"optanestudy/internal/sim"
	"optanestudy/internal/topology"
)

// ---- Placement ----

func place(t *testing.T, pc PlaceConfig) *Placement {
	t.Helper()
	if pc.Geom.Sockets == 0 {
		pc.Geom = topology.DefaultGeometry()
	}
	pl, err := Place(pc)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestLocalPackedPartitionsClientSocket(t *testing.T) {
	pl := place(t, PlaceConfig{Policy: PolicyLocalPacked, Shards: 2, Workers: 4})
	seen := map[int]int{}
	for i, sp := range pl.Shards {
		if sp.DataSocket != 0 || sp.WorkerSocket != 0 {
			t.Errorf("shard %d placed on sockets (%d, %d), want client socket 0", i, sp.DataSocket, sp.WorkerSocket)
		}
		if sp.Workers != 4 {
			t.Errorf("shard %d has %d workers, want the requested 4", i, sp.Workers)
		}
		if len(sp.Channels) != 3 {
			t.Errorf("shard %d holds %d channels, want an even 3-way split of 6", i, len(sp.Channels))
		}
		for _, c := range sp.Channels {
			seen[c]++
		}
	}
	if len(seen) != 6 {
		t.Errorf("partition covers %d channels, want all 6", len(seen))
	}
	for c, n := range seen {
		if n != 1 {
			t.Errorf("channel %d assigned to %d shards, want disjoint sets", c, n)
		}
	}
	if pl.RemoteShards() != 0 {
		t.Error("local-packed must have no remote shards")
	}
}

func TestInterleavedStripesEveryShard(t *testing.T) {
	pl := place(t, PlaceConfig{Policy: PolicyInterleaved, Shards: 3, Workers: 2})
	for i, sp := range pl.Shards {
		if len(sp.Channels) != 6 {
			t.Errorf("shard %d striped over %d channels, want all 6", i, len(sp.Channels))
		}
		if sp.DataSocket != 0 || sp.Remote(pl.Geom) {
			t.Errorf("shard %d not local to the client socket", i)
		}
	}
}

func TestNUMABlindRoundRobinsData(t *testing.T) {
	pl := place(t, PlaceConfig{Policy: PolicyNUMABlind, Shards: 4, Workers: 2})
	for i, sp := range pl.Shards {
		if want := i % 2; sp.DataSocket != want {
			t.Errorf("shard %d data on socket %d, want round-robin %d", i, sp.DataSocket, want)
		}
		if sp.WorkerSocket != 0 {
			t.Errorf("shard %d workers on socket %d, want the (blind) client socket 0", i, sp.WorkerSocket)
		}
	}
	if got := pl.RemoteShards(); got != 2 {
		t.Errorf("RemoteShards() = %d, want 2 of 4 across UPI", got)
	}
	// The shards homed on one socket still partition its channels.
	s0 := map[int]bool{}
	for i, sp := range pl.Shards {
		if sp.DataSocket != 0 {
			continue
		}
		for _, c := range sp.Channels {
			if s0[c] {
				t.Errorf("shard %d shares channel %d on socket 0", i, c)
			}
			s0[c] = true
		}
	}
}

func TestCappedLimitsWorkersPerDIMM(t *testing.T) {
	capped := place(t, PlaceConfig{Policy: PolicyCapped, Shards: 2, Workers: 16, DIMMs: 1, CapPerDIMM: 4})
	uncapped := place(t, PlaceConfig{Policy: PolicyLocalPacked, Shards: 2, Workers: 16, DIMMs: 1})
	for i := range capped.Shards {
		if got := capped.Shards[i].Workers; got != 4 {
			t.Errorf("capped shard %d has %d workers, want 4 (1 DIMM × cap 4)", i, got)
		}
		if got := uncapped.Shards[i].Workers; got != 16 {
			t.Errorf("uncapped shard %d has %d workers, want the requested 16", i, got)
		}
		if !reflect.DeepEqual(capped.Shards[i].Channels, uncapped.Shards[i].Channels) {
			t.Errorf("shard %d: capped and uncapped layouts diverge", i)
		}
	}
	// A multi-DIMM shard scales the cap with its DIMM count.
	wide := place(t, PlaceConfig{Policy: PolicyCapped, Shards: 2, Workers: 16, CapPerDIMM: 4})
	for i, sp := range wide.Shards {
		if want := 4 * len(sp.Channels); sp.Workers != want {
			t.Errorf("shard %d: %d workers on %d DIMMs, want cap %d", i, sp.Workers, len(sp.Channels), want)
		}
	}
}

func TestPlacementWrapsWhenShardsExceedChannels(t *testing.T) {
	pl := place(t, PlaceConfig{Policy: PolicyLocalPacked, Shards: 8, Workers: 1})
	for i, sp := range pl.Shards {
		if len(sp.Channels) != 1 {
			t.Fatalf("shard %d has %d channels, want 1 when shards exceed channels", i, len(sp.Channels))
		}
		if want := i % 6; sp.Channels[0] != want {
			t.Errorf("shard %d on channel %d, want wrap %d", i, sp.Channels[0], want)
		}
	}
}

func TestPlacementDeterministicAndValidated(t *testing.T) {
	pc := PlaceConfig{Policy: PolicyNUMABlind, Geom: topology.DefaultGeometry(), Shards: 3, Workers: 5, DIMMs: 2}
	a, err := Place(pc)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Place(pc)
	if !reflect.DeepEqual(a, b) {
		t.Error("same config produced different placements")
	}
	geom := topology.DefaultGeometry()
	for _, bad := range []PlaceConfig{
		{Policy: "bogus", Geom: geom, Shards: 2, Workers: 1},
		{Policy: PolicyLocalPacked, Geom: geom, Shards: 0, Workers: 1},
		{Policy: PolicyLocalPacked, Geom: geom, Shards: 2, Workers: 0},
		{Policy: PolicyLocalPacked, Geom: geom, Shards: 2, Workers: 1, DIMMs: 7},
		{Policy: PolicyLocalPacked, Geom: geom, Shards: 2, Workers: 1, ClientSocket: 2},
		{Policy: PolicyCapped, Geom: geom, Shards: 2, Workers: 1, CapPerDIMM: -1},
	} {
		if _, err := Place(bad); err == nil {
			t.Errorf("Place(%+v) accepted a bad config", bad)
		}
	}
}

// ---- Router ----

func TestRouterDeterministicAndBalanced(t *testing.T) {
	r, err := NewRouter(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for id := int64(0); id < 10000; id++ {
		s := r.Shard(id)
		if s != r.Shard(id) {
			t.Fatalf("key %d routed twice to different shards", id)
		}
		if s < 0 || s >= 4 {
			t.Fatalf("key %d routed to shard %d", id, s)
		}
		counts[s]++
	}
	for s, n := range counts {
		if n < 2000 || n > 3000 {
			t.Errorf("shard %d holds %d of 10000 uniform keys, want a near-even split", s, n)
		}
	}
}

func TestRouterSpanKeepsBlocksTogether(t *testing.T) {
	r, err := NewRouter(4, 500)
	if err != nil {
		t.Fatal(err)
	}
	shards := map[int]bool{}
	for block := int64(0); block < 8; block++ {
		want := r.Shard(block * 500)
		shards[want] = true
		for _, off := range []int64{1, 250, 499} {
			if got := r.Shard(block*500 + off); got != want {
				t.Fatalf("block %d split: id %d on shard %d, block start on %d", block, block*500+off, got, want)
			}
		}
	}
	if len(shards) < 2 {
		t.Error("eight blocks all landed on one shard")
	}
	if _, err := NewRouter(0, 1); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewRouter(2, 0); err == nil {
		t.Error("zero span accepted")
	}
}

// ---- Shape tests: the paper's placement predictions ----

// policySweep mirrors the cluster/sweep-* presets' common layout.
func policySweep(t *testing.T, policy string, params map[string]string, threads int, minKops, maxKops float64) (knee, sat float64, curve []float64, p99 []float64) {
	t.Helper()
	ps := map[string]string{"policy": policy, "shards": "2", "get": "0.5", "put": "0.5", "scan": "0"}
	for k, v := range params {
		ps[k] = v
	}
	c, err := RunSweep(SweepConfig{
		Params:  ps,
		Threads: threads, Duration: 300 * sim.Microsecond, Seed: 52,
		MinKops: minKops, MaxKops: maxKops, Points: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range c {
		curve = append(curve, pt.AchievedKops)
		p99 = append(p99, pt.P99)
	}
	return c[c.KneeIndex()].OfferedKops, c.SaturationKops(), curve, p99
}

// TestNUMABlindSaturatesEarlier pins the fig. 18/19 remote penalty as a
// serving outcome: round-robining shard data across sockets while the
// workers stay on the client socket saturates at a lower offered load,
// with a lower ceiling and far worse tails, than packing the shards
// locally.
func TestNUMABlindSaturatesEarlier(t *testing.T) {
	lkKnee, lkSat, _, lkP99 := policySweep(t, PolicyLocalPacked, nil, 4, 2000, 34000)
	nbKnee, nbSat, _, nbP99 := policySweep(t, PolicyNUMABlind, nil, 4, 2000, 34000)

	if lkKnee <= nbKnee {
		t.Errorf("local-packed knee (%.0f kops) must exceed numa-blind knee (%.0f kops)", lkKnee, nbKnee)
	}
	if lkSat < 1.15*nbSat {
		t.Errorf("local-packed saturation (%.0f kops) must clearly exceed numa-blind (%.0f kops)", lkSat, nbSat)
	}
	// Past the blind layout's knee the remote shards are already queueing
	// hard: at every grid point from the second on, its p99 dwarfs the
	// local layout's.
	for i := 1; i < len(nbP99); i++ {
		if nbP99[i] < 3*lkP99[i] {
			t.Errorf("grid point %d: numa-blind p99 %.0f ns should dwarf local-packed %.0f ns", i, nbP99[i], lkP99[i])
		}
	}
}

// TestCappedBeatsUncappedOnSingleDIMMHeavyLayout pins the §5.3
// threads-per-DIMM limit at cluster level: with every shard on one DIMM
// and 16 write-behind log streams requested per shard, capping each pool
// at 4 workers per DIMM raises the knee and the ceiling, and keeps tails
// flat where the uncapped layout collapses.
func TestCappedBeatsUncappedOnSingleDIMMHeavyLayout(t *testing.T) {
	params := map[string]string{
		"dimms": "1", "putlog": "1", "keysize": "8", "valsize": "112",
		"get": "0.3", "put": "0.7",
	}
	cpKnee, cpSat, _, cpP99 := policySweep(t, PolicyCapped, params, 16, 6000, 42000)
	unKnee, unSat, _, unP99 := policySweep(t, PolicyLocalPacked, params, 16, 6000, 42000)

	if cpKnee < unKnee {
		t.Errorf("capped knee (%.0f kops) must be at least the uncapped knee (%.0f kops)", cpKnee, unKnee)
	}
	if cpSat < 1.15*unSat {
		t.Errorf("capped saturation (%.0f kops) must clearly exceed uncapped (%.0f kops)", cpSat, unSat)
	}
	if last := len(cpP99) - 1; cpP99[last]*2 > unP99[last] {
		t.Errorf("deep-overload p99: uncapped %.0f ns should collapse past capped %.0f ns", unP99[last], cpP99[last])
	}
}

// TestHotspotConcentratesOnOneShard pins the skew story: a shifting hot
// range under block routing piles onto one shard, which sheds while its
// siblings idle, and the skewed tenant absorbs the drops.
func TestHotspotConcentratesOnOneShard(t *testing.T) {
	res, err := harness.Run(harness.Spec{Scenario: "cluster/hotspot"})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Trials[0].Metrics
	const shards = 4
	if got := m["max_shard_share"]; got < 1.6/shards {
		t.Errorf("max shard share %.3f, want well above the fair %.3f", got, 1.0/shards)
	}
	shedding := 0
	for i := 0; i < shards; i++ {
		if m[fmt.Sprintf("s%d_drop_frac", i)] > 0 {
			shedding++
		}
	}
	if shedding == 0 || shedding > 2 {
		t.Errorf("%d shards shed load, want the hot one (or two while the window straddles a block)", shedding)
	}
	if hot, uni := m["t0_shed_ops"], m["t1_shed_ops"]; hot < 2*uni || hot == 0 {
		t.Errorf("hot tenant shed %.0f ops vs uniform tenant %.0f, want the skewed tenant to absorb the drops", hot, uni)
	}
}

// TestClusterParallelByteIdentical is the acceptance contract: clusterbench
// output for the cluster family is byte-identical between -parallel 1 and
// -parallel 8 in -deterministic mode.
func TestClusterParallelByteIdentical(t *testing.T) {
	render := func(parallel string) []byte {
		var out, errOut bytes.Buffer
		code := harness.CLIMain([]string{
			"-format=json", "-deterministic", "-duration=100", "-parallel=" + parallel,
			"cluster/sweep-local-packed", "cluster/point", "cluster/hotspot",
		}, harness.CLIOptions{Command: "test", Stdout: &out, Stderr: &errOut})
		if code != 0 {
			t.Fatalf("-parallel=%s: exit %d, stderr: %s", parallel, code, errOut.String())
		}
		return out.Bytes()
	}
	serial, parallel := render("1"), render("8")
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel run diverged from serial:\n--- -parallel=1 ---\n%s\n--- -parallel=8 ---\n%s",
			serial, parallel)
	}
	if !json.Valid(serial) {
		t.Fatal("output is not valid JSON")
	}
}
