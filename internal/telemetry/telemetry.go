// Package telemetry is the study's deterministic tracing layer: per-op
// phase spans and fixed-interval timeline samples, keyed entirely off sim
// time and job-derived seeds so traced output is byte-identical at any
// -parallel width.
//
// The paper's PM pathologies (EWR collapse, WPQ pressure, threads-per-DIMM
// contention) are phase-local — they live in one segment of a request's
// life — yet end-to-end aggregates (knee, sat, p99) fold every segment
// together. A Recorder splits each served request into sim-time edges
// (queue-wait → batch-wait → service → persist) aggregated into per-phase
// stats.Histograms, keeps the top-K slowest ops with full attribution
// (tenant, shard, worker, batch, cache hit), and samples a timeline of
// cumulative counters plus caller-registered gauges at a fixed sim-time
// interval.
//
// Tracing defaults OFF with zero overhead: every Recorder method is
// nil-receiver-safe, serving hot paths guard span construction behind a
// single nil check, and the nil fast path is pinned at 0 allocs/op by
// TestNilRecorderZeroAllocs.
package telemetry

import (
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
)

// Phase identifies one segment of a request's life. The segments tile the
// interval from arrival to completion exactly: absent segments (a phase a
// request never entered) contribute nothing to that phase's histogram
// rather than a zero — an op shed before admission, for example, must not
// pollute queue-wait.
type Phase int

// Span phases.
const (
	// PhaseQueueWait is admission to worker drain: time spent in the
	// shard's bounded queue.
	PhaseQueueWait Phase = iota
	// PhaseBatchWait is worker drain to execution start: group-commit
	// linger plus in-batch serialization behind earlier ops. Absent on the
	// unbatched path.
	PhaseBatchWait
	// PhaseService is the op's own backend execution.
	PhaseService
	// PhasePersist is execution end to durability: the group commit's
	// fence wait, or the whole write-behind append on the unbatched logged
	// path (where service and persist are one fused instruction sequence).
	PhasePersist
	// PhaseTotal is arrival to completion (the end-to-end latency the
	// serving histograms already record; kept here so one trace is
	// self-contained).
	PhaseTotal
	// NumPhases counts the phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseQueueWait: "queue_wait",
	PhaseBatchWait: "batch_wait",
	PhaseService:   "service",
	PhasePersist:   "persist",
	PhaseTotal:     "total",
}

func (p Phase) String() string {
	if p >= 0 && p < NumPhases {
		return phaseNames[p]
	}
	return "phase(?)"
}

// OpSpan is one request's recorded life. The serving path fills the edges
// it observed and leaves the rest absent (Has* false); Arrival and End
// bound the span, and QueueWait + BatchWait + Service + Persist (counting
// absent segments as zero) equals End − Arrival.
type OpSpan struct {
	// Op is the request kind ("GET", "PUT", ...).
	Op string
	// Tenant, Shard and Worker attribute the span to its traffic class and
	// dispatch target.
	Tenant, Shard, Worker int
	// Key is the global key id; Batch is the group-commit batch the op
	// rode in (0 = unbatched).
	Key, Batch int64
	// CacheHit is the DRAM-tier outcome of a GET: 1 hit, 0 miss, -1
	// unknown (no tier, or not a GET).
	CacheHit int8
	// Arrival and End bound the span in sim time.
	Arrival, End sim.Time
	// The phase segments; absent ones are zero with Has* false
	// (QueueWait is always present — every admitted op waited, possibly
	// zero time).
	QueueWait, BatchWait, Service, Persist sim.Time
	HasBatchWait, HasService, HasPersist   bool
}

// Total returns the end-to-end span length.
func (s *OpSpan) Total() sim.Time { return s.End - s.Arrival }

// Gauge is one named timeline value. Samples carry gauges as an ordered
// slice (probe registration order), never a map, so the JSONL stream is
// byte-stable.
type Gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"v"`
}

// ShardSample is one dispatch target's cumulative counters at a sample
// instant.
type ShardSample struct {
	Offered   int64 `json:"offered"`
	Dropped   int64 `json:"dropped"`
	Completed int64 `json:"completed"`
	// QDepth is the instantaneous queue depth; QOccNS is the occupancy
	// integral (entry·ns) up to the sample instant, so successive samples
	// difference into mean depth per interval.
	QDepth int     `json:"qdepth"`
	QOccNS float64 `json:"qocc_ns"`
}

// Sample is one timeline instant: cumulative measured-window counters, so
// a renderer differences successive samples into rates without the
// recorder ever guessing at windows.
type Sample struct {
	// TNS is sim time since the measured window opened, in ns.
	TNS int64 `json:"t_ns"`
	// Offered/Dropped/Completed are cumulative measured totals.
	Offered   int64 `json:"offered"`
	Dropped   int64 `json:"dropped"`
	Completed int64 `json:"completed"`
	// Shards is the per-dispatch-target breakdown (hot-shard share over
	// time lives here).
	Shards []ShardSample `json:"shards,omitempty"`
	// Gauges are the registered probes' values, in registration order.
	Gauges []Gauge `json:"gauges,omitempty"`
}

// Event is one fault/failover/catch-up marker on the timeline: a named
// instant attributed to a shard. TNS is sim time relative to the
// measured window (negative for warmup events), matching Sample.TNS so
// renderers can interleave markers with timeline intervals.
type Event struct {
	TNS   int64  `json:"t_ns"`
	Name  string `json:"name"`
	Shard int    `json:"shard"`
}

// slowEntry tracks one top-K candidate: the span plus its admission
// sequence for deterministic tie-breaks.
type slowEntry struct {
	span OpSpan
	seq  int64
}

// Recorder accumulates one run's spans and timeline. All methods are safe
// on a nil receiver and do nothing — the zero-overhead OFF path — so the
// serving hot paths carry a single nil check, not a feature flag.
//
// A Recorder belongs to exactly one simulated run (procs of one engine
// hand off only at time advances, so no locking), and everything it
// records derives from sim time: two runs of the same seeded spec produce
// identical recordings regardless of host scheduling.
type Recorder struct {
	interval sim.Time
	topK     int

	phases [NumPhases]*stats.Histogram
	ops    int64
	sheds  int64

	batchSeq int64
	slow     []slowEntry
	slowMin  int // index of the smallest-total slow entry once full

	probes  []func(add func(name string, v float64))
	samples []Sample
	events  []Event
}

// DefaultTopK is how many slowest ops a Recorder keeps when the caller
// passes topK <= 0.
const DefaultTopK = 8

// NewRecorder returns a live Recorder sampling the timeline every
// interval of sim time (<= 0 disables the timeline) and keeping the topK
// slowest ops.
func NewRecorder(interval sim.Time, topK int) *Recorder {
	if topK <= 0 {
		topK = DefaultTopK
	}
	r := &Recorder{interval: interval, topK: topK}
	for i := range r.phases {
		r.phases[i] = stats.NewHistogram()
	}
	return r
}

// Interval returns the timeline sampling interval (0 on a nil recorder).
func (r *Recorder) Interval() sim.Time {
	if r == nil {
		return 0
	}
	return r.interval
}

// NextBatch issues the next group-commit batch id (ids start at 1; 0
// means unbatched). Returns 0 on a nil recorder.
func (r *Recorder) NextBatch() int64 {
	if r == nil {
		return 0
	}
	r.batchSeq++
	return r.batchSeq
}

// RecordOp books one completed request's span.
func (r *Recorder) RecordOp(s *OpSpan) {
	if r == nil {
		return
	}
	r.ops++
	r.phases[PhaseQueueWait].Add(s.QueueWait.Nanoseconds())
	if s.HasBatchWait {
		r.phases[PhaseBatchWait].Add(s.BatchWait.Nanoseconds())
	}
	if s.HasService {
		r.phases[PhaseService].Add(s.Service.Nanoseconds())
	}
	if s.HasPersist {
		r.phases[PhasePersist].Add(s.Persist.Nanoseconds())
	}
	r.phases[PhaseTotal].Add(s.Total().Nanoseconds())
	r.noteSlow(s)
}

// noteSlow keeps the top-K spans by total latency. Ties keep the earlier
// op (strictly-greater replaces), so the table is deterministic.
func (r *Recorder) noteSlow(s *OpSpan) {
	if len(r.slow) < r.topK {
		r.slow = append(r.slow, slowEntry{span: *s, seq: r.ops})
		if len(r.slow) == r.topK {
			r.reslowMin()
		}
		return
	}
	if s.Total() <= r.slow[r.slowMin].span.Total() {
		return
	}
	r.slow[r.slowMin] = slowEntry{span: *s, seq: r.ops}
	r.reslowMin()
}

func (r *Recorder) reslowMin() {
	r.slowMin = 0
	for i := 1; i < len(r.slow); i++ {
		si, sm := &r.slow[i], &r.slow[r.slowMin]
		if t := si.span.Total(); t < sm.span.Total() || (t == sm.span.Total() && si.seq > sm.seq) {
			r.slowMin = i
		}
	}
}

// RecordShed books one request shed at admission. Shed ops enter no phase
// histogram — they never waited in the queue they were refused from.
func (r *Recorder) RecordShed(tenant, shard int) {
	if r == nil {
		return
	}
	r.sheds++
}

// RecordEvent books one fault/failover/catch-up marker at tNS (sim time
// relative to the measured window, Sample.TNS's clock). Events are kept
// in recording order — procs record them in sim-time order, so the
// stream is deterministic.
func (r *Recorder) RecordEvent(name string, shard int, tNS int64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{TNS: tNS, Name: name, Shard: shard})
}

// AddProbe registers a gauge source the timeline sampler reads at every
// sample instant. Probes must add the same gauge names on every call
// (unconditionally), in a fixed order, so timeline columns are stable
// across samples.
func (r *Recorder) AddProbe(fn func(add func(name string, v float64))) {
	if r == nil {
		return
	}
	r.probes = append(r.probes, fn)
}

// Sample appends one timeline instant: the caller-built counter snapshot
// plus every registered probe's gauges.
func (r *Recorder) Sample(s Sample) {
	if r == nil {
		return
	}
	for _, probe := range r.probes {
		probe(func(name string, v float64) {
			s.Gauges = append(s.Gauges, Gauge{Name: name, Value: v})
		})
	}
	r.samples = append(r.samples, s)
}

// Finish summarizes the recording into a Run and detaches it. Nil-safe:
// returns nil when tracing is off.
func (r *Recorder) Finish(label string) *Run {
	if r == nil {
		return nil
	}
	run := &Run{
		Label: label,
		Ops:   r.ops,
		Sheds: r.sheds,
	}
	qs := []float64{0.5, 0.99}
	for p := Phase(0); p < NumPhases; p++ {
		h := r.phases[p]
		ps := PhaseSummary{Phase: p.String(), Count: h.Count()}
		if h.Count() > 0 {
			q := h.Quantiles(qs)
			ps.MeanNS, ps.P50NS, ps.P99NS, ps.MaxNS = h.Mean(), q[0], q[1], h.Max()
		}
		run.Phases = append(run.Phases, ps)
	}
	// Rank the kept spans slowest-first; equal totals rank earlier ops
	// first (insertion sort over <= topK entries).
	slow := append([]slowEntry(nil), r.slow...)
	for i := 1; i < len(slow); i++ {
		for j := i; j > 0; j-- {
			a, b := &slow[j-1], &slow[j]
			if a.span.Total() > b.span.Total() ||
				(a.span.Total() == b.span.Total() && a.seq < b.seq) {
				break
			}
			slow[j-1], slow[j] = slow[j], slow[j-1]
		}
	}
	for i := range slow {
		s := &slow[i].span
		run.Slowest = append(run.Slowest, SlowOp{
			Rank: i + 1, Op: s.Op,
			Tenant: s.Tenant, Shard: s.Shard, Worker: s.Worker,
			Key: s.Key, Batch: s.Batch, CacheHit: s.CacheHit,
			ArrivalNS: s.Arrival.Nanoseconds(), TotalNS: s.Total().Nanoseconds(),
			QueueNS: s.QueueWait.Nanoseconds(), BatchNS: s.BatchWait.Nanoseconds(),
			ServiceNS: s.Service.Nanoseconds(), PersistNS: s.Persist.Nanoseconds(),
		})
	}
	run.Samples = r.samples
	r.samples = nil
	run.Events = r.events
	r.events = nil
	return run
}
