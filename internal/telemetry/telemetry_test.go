package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"optanestudy/internal/sim"
)

func span(arrival, queue, batch, svc, persist sim.Time) OpSpan {
	s := OpSpan{
		Op: "PUT", Arrival: arrival, CacheHit: -1,
		QueueWait: queue,
	}
	if batch > 0 {
		s.BatchWait, s.HasBatchWait = batch, true
	}
	if svc > 0 {
		s.Service, s.HasService = svc, true
	}
	if persist > 0 {
		s.Persist, s.HasPersist = persist, true
	}
	s.End = arrival + queue + batch + svc + persist
	return s
}

func TestRecorderPhases(t *testing.T) {
	r := NewRecorder(0, 4)
	// An unbatched GET: queue + service only.
	s1 := span(0, 100*sim.Nanosecond, 0, 300*sim.Nanosecond, 0)
	r.RecordOp(&s1)
	// A batched logged PUT: all four segments.
	s2 := span(sim.Microsecond, 50*sim.Nanosecond, 200*sim.Nanosecond, 100*sim.Nanosecond, 400*sim.Nanosecond)
	r.RecordOp(&s2)
	run := r.Finish("x")
	if run.Label != "x" || run.Ops != 2 || run.Sheds != 0 {
		t.Fatalf("run header = %q/%d/%d, want x/2/0", run.Label, run.Ops, run.Sheds)
	}
	want := map[string]int64{"queue_wait": 2, "batch_wait": 1, "service": 2, "persist": 1, "total": 2}
	for name, n := range want {
		ps := run.Phase(name)
		if ps == nil || ps.Count != n {
			t.Errorf("phase %s count = %+v, want %d", name, ps, n)
		}
	}
	if got := run.Phase("total").MaxNS; got != 750 {
		t.Errorf("total max = %g ns, want 750", got)
	}
	if got := run.Phase("persist").MeanNS; got != 400 {
		t.Errorf("persist mean = %g ns, want 400", got)
	}
}

// A shed request never entered a queue: it must count as a shed but
// contribute to no phase histogram, so queue-wait quantiles reflect only
// admitted ops.
func TestShedsEnterNoPhase(t *testing.T) {
	r := NewRecorder(0, 4)
	r.RecordShed(1, 2)
	r.RecordShed(0, 0)
	run := r.Finish("")
	if run.Sheds != 2 || run.Ops != 0 {
		t.Fatalf("sheds/ops = %d/%d, want 2/0", run.Sheds, run.Ops)
	}
	for _, ps := range run.Phases {
		if ps.Count != 0 || ps.P99NS != 0 || ps.MeanNS != 0 {
			t.Errorf("phase %s polluted by sheds: %+v", ps.Phase, ps)
		}
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	r := NewRecorder(0, 3)
	totals := []sim.Time{500, 100, 900, 500, 700, 50}
	for i, tot := range totals {
		s := span(sim.Time(i)*sim.Microsecond, tot*sim.Nanosecond, 0, 0, 0)
		s.Key = int64(i)
		r.RecordOp(&s)
	}
	run := r.Finish("")
	if len(run.Slowest) != 3 {
		t.Fatalf("kept %d slow ops, want 3", len(run.Slowest))
	}
	// 900 then 700 then the tie at 500 — the earlier op (key 0) wins the
	// last slot over the later arrival (key 3).
	wantKeys := []int64{2, 4, 0}
	for i, s := range run.Slowest {
		if s.Rank != i+1 || s.Key != wantKeys[i] {
			t.Errorf("slow[%d] = rank %d key %d, want rank %d key %d",
				i, s.Rank, s.Key, i+1, wantKeys[i])
		}
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Interval() != 0 || r.NextBatch() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	s := span(0, sim.Nanosecond, 0, 0, 0)
	r.RecordOp(&s)
	r.RecordShed(0, 0)
	r.RecordEvent("crash", 0, 100)
	r.AddProbe(func(add func(string, float64)) { add("x", 1) })
	r.Sample(Sample{})
	if run := r.Finish(""); run != nil {
		t.Fatalf("nil Finish = %+v, want nil", run)
	}
}

// The OFF path is the serving hot path: every per-op recorder call on a
// nil receiver must stay allocation-free.
func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	s := span(0, sim.Nanosecond, 0, sim.Nanosecond, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		r.RecordOp(&s)
		r.RecordShed(0, 1)
		_ = r.NextBatch()
		_ = r.Interval()
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder ops allocate %g allocs/op, want 0", allocs)
	}
}

func TestBatchIDs(t *testing.T) {
	r := NewRecorder(0, 1)
	if a, b := r.NextBatch(), r.NextBatch(); a != 1 || b != 2 {
		t.Fatalf("batch ids = %d,%d, want 1,2", a, b)
	}
}

func TestSampleGauges(t *testing.T) {
	r := NewRecorder(sim.Microsecond, 1)
	r.AddProbe(func(add func(string, float64)) { add("a", 1); add("b", 2) })
	r.AddProbe(func(add func(string, float64)) { add("c", 3) })
	r.Sample(Sample{TNS: 1000, Completed: 7})
	run := r.Finish("")
	if len(run.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(run.Samples))
	}
	want := []Gauge{{"a", 1}, {"b", 2}, {"c", 3}}
	if !reflect.DeepEqual(run.Samples[0].Gauges, want) {
		t.Fatalf("gauges = %+v, want %+v (registration order)", run.Samples[0].Gauges, want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(sim.Microsecond, 2)
	s1 := span(0, 100*sim.Nanosecond, 0, 300*sim.Nanosecond, 0)
	s1.Op, s1.Tenant, s1.Shard, s1.CacheHit = "GET", 1, 2, 1
	r.RecordOp(&s1)
	r.RecordShed(0, 2)
	r.RecordEvent("crash", 1, 500)
	r.RecordEvent("promoted", 1, 800)
	r.Sample(Sample{TNS: 1000, Offered: 3, Completed: 1, Dropped: 1,
		Shards: []ShardSample{{Offered: 3, Completed: 1, QDepth: 2, QOccNS: 150}}})
	run := r.Finish("offered=9000")
	if want := []Event{{TNS: 500, Name: "crash", Shard: 1}, {TNS: 800, Name: "promoted", Shard: 1}}; !reflect.DeepEqual(run.Events, want) {
		t.Fatalf("events = %+v, want %+v", run.Events, want)
	}

	in := []TraceEntry{{Scenario: "cluster/hotspot", Trial: 0, Trace: &Trace{Runs: []*Run{run}}}}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"schema":"optanestudy-trace/v1"}`) {
		t.Fatalf("stream missing schema header: %q", buf.String()[:40])
	}
	out, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in[0].Trace.Runs[0], out[0].Trace.Runs[0])
	}
	// The stream is append-stable: re-encoding the decoded entries must
	// reproduce the bytes (the serial-vs-parallel CI cmp relies on this).
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-encoding decoded entries changed the bytes")
	}
}

func TestJSONLRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"schema":"other/v9"}` + "\n")); err == nil {
		t.Fatal("unknown schema accepted")
	}
	orphan := `{"schema":"optanestudy-trace/v1"}` + "\n" + `{"type":"phase","label":"x"}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(orphan)); err == nil {
		t.Fatal("member line before run line accepted")
	}
}
