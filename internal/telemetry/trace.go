package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// TraceSchema identifies the JSONL trace stream format.
const TraceSchema = "optanestudy-trace/v1"

// PhaseSummary is one phase's aggregated distribution over a run.
type PhaseSummary struct {
	Phase string `json:"phase"`
	// Count is how many ops entered the phase: absent phases (e.g.
	// batch_wait on an unbatched run) report 0 and zero quantiles.
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P99NS  float64 `json:"p99_ns"`
	MaxNS  float64 `json:"max_ns"`
}

// SlowOp is one row of the top-K slowest-ops table, ranked 1 = slowest.
type SlowOp struct {
	Rank      int     `json:"rank"`
	Op        string  `json:"op"`
	Tenant    int     `json:"tenant"`
	Shard     int     `json:"shard"`
	Worker    int     `json:"worker"`
	Key       int64   `json:"key"`
	Batch     int64   `json:"batch"`
	CacheHit  int8    `json:"cache_hit"`
	ArrivalNS float64 `json:"arrival_ns"`
	TotalNS   float64 `json:"total_ns"`
	QueueNS   float64 `json:"queue_ns"`
	BatchNS   float64 `json:"batch_wait_ns"`
	ServiceNS float64 `json:"service_ns"`
	PersistNS float64 `json:"persist_ns"`
}

// Run is one serving run's finished recording. A point scenario produces
// one unlabeled Run; a sweep scenario relabels its points' runs by grid
// coordinate ("offered=9000@b8") and concatenates them.
type Run struct {
	Label   string         `json:"label,omitempty"`
	Ops     int64          `json:"ops"`
	Sheds   int64          `json:"sheds"`
	Phases  []PhaseSummary `json:"phases"`
	Slowest []SlowOp       `json:"slowest,omitempty"`
	// Events are the run's fault/failover/catch-up markers, in sim-time
	// order on the same clock as Samples.
	Events  []Event  `json:"events,omitempty"`
	Samples []Sample `json:"samples,omitempty"`
}

// Metrics writes the run's phase breakdown into a harness metric map as
// phase_<name>_{mean,p50,p99}_ns, skipping phases no op entered.
func (r *Run) Metrics(m map[string]float64) {
	for _, ps := range r.Phases {
		if ps.Count == 0 {
			continue
		}
		m["phase_"+ps.Phase+"_mean_ns"] = ps.MeanNS
		m["phase_"+ps.Phase+"_p50_ns"] = ps.P50NS
		m["phase_"+ps.Phase+"_p99_ns"] = ps.P99NS
	}
}

// Phase returns the named phase summary, or nil.
func (r *Run) Phase(name string) *PhaseSummary {
	for i := range r.Phases {
		if r.Phases[i].Phase == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// Trace is one trial's recordings (one run for a point scenario, one per
// grid coordinate for a sweep).
type Trace struct {
	Runs []*Run `json:"runs"`
}

// TraceEntry attributes one trial's trace for the JSONL stream.
type TraceEntry struct {
	Scenario string
	Trial    int
	Trace    *Trace
}

// line is the single JSONL record shape: a header line carries only
// Schema; every other line carries Type plus that type's fields. One flat
// struct keeps encode/decode trivially symmetric and the key order fixed.
type line struct {
	Schema   string `json:"schema,omitempty"`
	Type     string `json:"type,omitempty"`
	Scenario string `json:"scenario,omitempty"`
	Trial    int    `json:"trial,omitempty"`
	Label    string `json:"label,omitempty"`

	// type=run
	Ops     *int64 `json:"ops,omitempty"`
	Sheds   *int64 `json:"sheds,omitempty"`
	Samples *int   `json:"samples,omitempty"`

	// type=phase
	Phase *PhaseSummary `json:"phase,omitempty"`

	// type=slow
	Slow *SlowOp `json:"slow,omitempty"`

	// type=event
	Event *Event `json:"event,omitempty"`

	// type=sample
	Sample *Sample `json:"sample,omitempty"`
}

// WriteJSONL renders the entries as one optanestudy-trace/v1 stream: a
// schema header, then for each run a "run" line followed by its "phase",
// "slow" and "sample" lines. Everything derives from sim time, so the
// bytes are identical at any -parallel width as long as entries arrive in
// a schedule-independent order (the harness emits them in result order).
func WriteJSONL(w io.Writer, entries []TraceEntry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(line{Schema: TraceSchema}); err != nil {
		return err
	}
	for _, e := range entries {
		if e.Trace == nil {
			continue
		}
		for _, run := range e.Trace.Runs {
			ops, sheds, ns := run.Ops, run.Sheds, len(run.Samples)
			hdr := line{
				Type: "run", Scenario: e.Scenario, Trial: e.Trial, Label: run.Label,
				Ops: &ops, Sheds: &sheds, Samples: &ns,
			}
			if err := enc.Encode(hdr); err != nil {
				return err
			}
			for i := range run.Phases {
				if err := enc.Encode(line{
					Type: "phase", Scenario: e.Scenario, Trial: e.Trial, Label: run.Label,
					Phase: &run.Phases[i],
				}); err != nil {
					return err
				}
			}
			for i := range run.Slowest {
				if err := enc.Encode(line{
					Type: "slow", Scenario: e.Scenario, Trial: e.Trial, Label: run.Label,
					Slow: &run.Slowest[i],
				}); err != nil {
					return err
				}
			}
			for i := range run.Events {
				if err := enc.Encode(line{
					Type: "event", Scenario: e.Scenario, Trial: e.Trial, Label: run.Label,
					Event: &run.Events[i],
				}); err != nil {
					return err
				}
			}
			for i := range run.Samples {
				if err := enc.Encode(line{
					Type: "sample", Scenario: e.Scenario, Trial: e.Trial, Label: run.Label,
					Sample: &run.Samples[i],
				}); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a stream written by WriteJSONL back into entries, in
// first-seen order.
func ReadJSONL(r io.Reader) ([]TraceEntry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var entries []TraceEntry
	byKey := map[string]int{}
	var cur *Run
	curKey := ""
	first := true
	for sc.Scan() {
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(text, &l); err != nil {
			return nil, fmt.Errorf("telemetry: bad trace line: %w", err)
		}
		if first {
			if l.Schema != TraceSchema {
				return nil, fmt.Errorf("telemetry: unknown trace schema %q (want %s)", l.Schema, TraceSchema)
			}
			first = false
			continue
		}
		key := fmt.Sprintf("%s\x00%d", l.Scenario, l.Trial)
		ei, ok := byKey[key]
		if !ok {
			ei = len(entries)
			byKey[key] = ei
			entries = append(entries, TraceEntry{Scenario: l.Scenario, Trial: l.Trial, Trace: &Trace{}})
		}
		tr := entries[ei].Trace
		runKey := key + "\x00" + l.Label
		switch l.Type {
		case "run":
			cur = &Run{Label: l.Label}
			if l.Ops != nil {
				cur.Ops = *l.Ops
			}
			if l.Sheds != nil {
				cur.Sheds = *l.Sheds
			}
			curKey = runKey
			tr.Runs = append(tr.Runs, cur)
		case "phase", "slow", "event", "sample":
			if cur == nil || curKey != runKey {
				return nil, fmt.Errorf("telemetry: %s line for unknown run %q", l.Type, l.Label)
			}
			switch l.Type {
			case "phase":
				if l.Phase != nil {
					cur.Phases = append(cur.Phases, *l.Phase)
				}
			case "slow":
				if l.Slow != nil {
					cur.Slowest = append(cur.Slowest, *l.Slow)
				}
			case "event":
				if l.Event != nil {
					cur.Events = append(cur.Events, *l.Event)
				}
			case "sample":
				if l.Sample != nil {
					cur.Samples = append(cur.Samples, *l.Sample)
				}
			}
		default:
			return nil, fmt.Errorf("telemetry: unknown trace line type %q", l.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}
