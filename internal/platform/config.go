// Package platform assembles the full simulated machine — sockets, LLCs,
// iMCs, channels, DRAM and 3D XPoint DIMMs, and the UPI cross-socket link —
// and exposes per-thread memory contexts implementing the persistence ISA
// the paper studies: load, store, ntstore, clwb, clflush, clflushopt and
// sfence.
//
// The simulator is functional as well as timed: namespaces hold real bytes,
// volatile state (dirty cache lines, write-combining buffers) is separate
// from the ADR-protected durable state, and Crash discards exactly the
// volatile part, so software stacks built on top can be crash-tested.
package platform

import (
	"optanestudy/internal/cache"
	"optanestudy/internal/dimm"
	"optanestudy/internal/imc"
	"optanestudy/internal/sim"
	"optanestudy/internal/topology"
)

// Config holds every knob of the simulated machine. DefaultConfig is
// calibrated to the paper's testbed (see DESIGN.md for the derivation).
type Config struct {
	Geometry topology.Geometry
	XP       dimm.XPConfig
	DRAM     dimm.DRAMConfig
	Channel  imc.ChannelConfig
	LLC      cache.Config
	UPI      UPIConfig

	// LoadOverhead is the on-chip interconnect + iMC round trip added to
	// every load that misses the LLC.
	LoadOverhead sim.Time
	// StoreIssue is the core cost of retiring one cached store.
	StoreIssue sim.Time
	// NTStoreIssue is the core cost of one non-temporal store.
	NTStoreIssue sim.Time
	// FlushIssue is the core cost of clwb/clflushopt.
	FlushIssue sim.Time
	// CLFlushIssue is the core cost of the (more serializing) clflush.
	CLFlushIssue sim.Time
	// FenceBase is the fixed cost of sfence/mfence.
	FenceBase sim.Time
	// AcceptAckDRAM / AcceptAckXP is the time for the iMC's WPQ-acceptance
	// acknowledgment to reach the core, per DIMM kind (DDR-T handshakes
	// are slightly slower).
	AcceptAckDRAM sim.Time
	AcceptAckXP   sim.Time
	// NTPostDelay is the write-combining buffer drain time from core to
	// iMC for non-temporal stores.
	NTPostDelay sim.Time
	// ChunkIssue is the pipelined per-64 B issue cost inside large
	// accesses.
	ChunkIssue sim.Time
	// MLP is the number of outstanding loads a thread sustains
	// (memory-level parallelism).
	MLP int
	// StoreWindow is the per-thread, per-DIMM limit of un-drained WPQ
	// entries; the paper observes the WPQ holds at most 256 B (4 lines)
	// per thread (Section 5.3).
	StoreWindow int

	// TrackData enables byte-accurate contents. Microbenchmarks turn it
	// off; software stacks need it on.
	TrackData bool
	// EADR extends the persistence domain to the caches (the Section 6
	// proposal [43, 67]): on Crash, dirty cache lines are flushed rather
	// than lost, so software no longer needs clwb/clflush for
	// durability — only fences for ordering. Write-combining buffers
	// remain outside the domain.
	EADR bool
	// Seed feeds per-component RNGs.
	Seed uint64
}

// UPIConfig models the cross-socket interconnect.
type UPIConfig struct {
	// HopLatency is added per direction for a remote access.
	HopLatency sim.Time
	// ReadService / WriteService is the home-agent/link occupancy of one
	// remote 64 B read or write.
	ReadService  sim.Time
	WriteService sim.Time
	// TurnaroundXP is the home-agent penalty when remote traffic to a
	// 3D XPoint DIMM alternates between reads and writes; DDR-T's
	// non-deterministic timing makes cross-socket scheduling expensive
	// (the Section 5.4 mixed-traffic collapse). TurnaroundDRAM is its
	// (small) DRAM counterpart.
	TurnaroundXP   sim.Time
	TurnaroundDRAM sim.Time
	// WriteOwnership is the extra latency to obtain ownership for a
	// remote write.
	WriteOwnership sim.Time
}

// DefaultConfig returns the calibrated model of the paper's two-socket
// Cascade Lake testbed with six 256 GB Optane DIMMs and six 32 GB DRAM
// DIMMs per socket.
func DefaultConfig() Config {
	return Config{
		Geometry: topology.DefaultGeometry(),
		XP:       dimm.DefaultXPConfig(),
		DRAM:     dimm.DefaultDRAMConfig(),
		Channel:  imc.DefaultChannelConfig(),
		LLC:      cache.DefaultConfig(),
		UPI: UPIConfig{
			HopLatency:     55 * sim.Nanosecond,
			ReadService:    3200 * sim.Picosecond,
			WriteService:   8 * sim.Nanosecond,
			TurnaroundXP:   250 * sim.Nanosecond,
			TurnaroundDRAM: 4 * sim.Nanosecond,
			WriteOwnership: 20 * sim.Nanosecond,
		},
		LoadOverhead:  57 * sim.Nanosecond,
		StoreIssue:    1 * sim.Nanosecond,
		NTStoreIssue:  2 * sim.Nanosecond,
		FlushIssue:    4 * sim.Nanosecond,
		CLFlushIssue:  12 * sim.Nanosecond,
		FenceBase:     8 * sim.Nanosecond,
		AcceptAckDRAM: 44 * sim.Nanosecond,
		AcceptAckXP:   49 * sim.Nanosecond,
		NTPostDelay:   30 * sim.Nanosecond,
		ChunkIssue:    1 * sim.Nanosecond,
		MLP:           10,
		StoreWindow:   4,
		TrackData:     false,
		Seed:          0x5EED,
	}
}

// PMEPConfig returns a platform emulating Intel's Persistent Memory
// Emulator Platform: DRAM with +300 ns loads and write bandwidth throttled
// to 1/8, the standard configuration of prior work (Section 4.1). The
// "persistent" namespaces of a PMEP platform live on its (modified) DRAM.
func PMEPConfig() Config {
	cfg := DefaultConfig()
	cfg.DRAM = dimm.PMEPDRAMConfig()
	return cfg
}
