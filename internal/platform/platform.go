package platform

import (
	"fmt"
	"sort"

	"optanestudy/internal/cache"
	"optanestudy/internal/dimm"
	"optanestudy/internal/imc"
	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
	"optanestudy/internal/topology"
)

// Platform is one simulated machine. It owns its simulation engine: all
// simulated threads must be spawned through Go (or built on Context with
// procs of the same engine) so that every component shares one timeline.
// It is not safe for concurrent use — the engine serializes procs.
type Platform struct {
	cfg    Config
	eng    *sim.Engine
	layout *topology.Layout

	channels [][]*imc.Channel // [socket][channel]
	drams    [][]*dimm.DRAMDIMM
	xps      [][]*dimm.XPDIMM
	llcs     []*cache.LLC
	home     []*homeAgent // per home socket, serving remote requests

	persist    mem.DataStore
	namespaces []*Namespace // sorted by Base
	ctxs       []*MemCtx
	ringPool   []*drainRing // recycled per-DIMM WPQ windows
}

// getRing hands out a pooled drainRing, or a fresh one when none is free.
func (p *Platform) getRing() *drainRing {
	if n := len(p.ringPool); n > 0 {
		r := p.ringPool[n-1]
		p.ringPool = p.ringPool[:n-1]
		return r
	}
	return &drainRing{}
}

// Namespace is a platform-attached pmem namespace.
type Namespace struct {
	*topology.Namespace
	p *Platform
}

// New assembles a platform.
func New(cfg Config) (*Platform, error) {
	layout, err := topology.NewLayout(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	p := &Platform{cfg: cfg, eng: sim.NewEngine(), layout: layout}
	for s := 0; s < cfg.Geometry.Sockets; s++ {
		var chs []*imc.Channel
		var drams []*dimm.DRAMDIMM
		var xps []*dimm.XPDIMM
		for c := 0; c < cfg.Geometry.ChannelsPerSocket; c++ {
			chs = append(chs, imc.NewChannel(cfg.Channel))
			drams = append(drams, dimm.NewDRAMDIMM(cfg.DRAM))
			xpCfg := cfg.XP
			xpCfg.Seed = cfg.Seed ^ uint64(s*251+c*17+1)
			xps = append(xps, dimm.NewXPDIMM(xpCfg))
		}
		p.channels = append(p.channels, chs)
		p.drams = append(p.drams, drams)
		p.xps = append(p.xps, xps)
		llcCfg := cfg.LLC
		llcCfg.Seed = cfg.Seed ^ uint64(s*977+5)
		p.llcs = append(p.llcs, cache.New(llcCfg))
		p.home = append(p.home, newHomeAgent(cfg.UPI))
	}
	return p, nil
}

// MustNew is New, panicking on error (for tests and examples with static
// configs).
func MustNew(cfg Config) *Platform {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the platform's configuration.
func (p *Platform) Config() Config { return p.cfg }

// Engine returns the platform's simulation engine.
func (p *Platform) Engine() *sim.Engine { return p.eng }

// Now returns the current simulated time.
func (p *Platform) Now() sim.Time { return p.eng.Now() }

// Go spawns a simulated thread on the given socket, starting at the
// engine's current time, and hands it a fresh memory context.
func (p *Platform) Go(name string, socket int, fn func(ctx *MemCtx)) {
	p.eng.Go(name, p.eng.Now(), func(proc *sim.Proc) {
		ctx := p.Context(proc, socket)
		fn(ctx)
		ctx.recycle()
	})
}

// Run executes the simulation until all spawned threads finish and returns
// the simulated time. It may be called repeatedly; time keeps advancing on
// one timeline.
func (p *Platform) Run() sim.Time { return p.eng.Run() }

// Close tears the platform down, reaping any simulated threads that were
// spawned but never run to completion (e.g. when a scenario bails out with
// an error between Go and Run). It is idempotent, a no-op after a normal
// Run, and required by the harness statelessness contract so that
// platform-per-trial construction stays goroutine-leak-free under parallel
// sweeps. The platform must not be used afterwards.
func (p *Platform) Close() { p.eng.Stop() }

// CreateNamespace allocates a namespace per the spec.
func (p *Platform) CreateNamespace(spec topology.Spec) (*Namespace, error) {
	tns, err := p.layout.Create(spec)
	if err != nil {
		return nil, err
	}
	ns := &Namespace{Namespace: tns, p: p}
	p.namespaces = append(p.namespaces, ns)
	sort.Slice(p.namespaces, func(i, j int) bool {
		return p.namespaces[i].Base < p.namespaces[j].Base
	})
	return ns, nil
}

// Convenience constructors for the paper's standard configurations
// (Section 2.3).

// Optane creates an interleaved 3D XPoint namespace on the socket.
func (p *Platform) Optane(name string, socket int, size int64) (*Namespace, error) {
	return p.CreateNamespace(topology.Spec{Name: name, Socket: socket, Media: topology.MediaXP, Size: size})
}

// OptaneNI creates a non-interleaved (single-DIMM) 3D XPoint namespace.
func (p *Platform) OptaneNI(name string, socket, channel int, size int64) (*Namespace, error) {
	return p.CreateNamespace(topology.Spec{
		Name: name, Socket: socket, Media: topology.MediaXP, Size: size,
		Channels: []int{channel},
	})
}

// DRAM creates an interleaved DRAM namespace (emulated pmem on DRAM).
func (p *Platform) DRAM(name string, socket int, size int64) (*Namespace, error) {
	return p.CreateNamespace(topology.Spec{Name: name, Socket: socket, Media: topology.MediaDRAM, Size: size})
}

func (p *Platform) resolveGlobal(gaddr int64) *Namespace {
	i := sort.Search(len(p.namespaces), func(i int) bool {
		return p.namespaces[i].Base > gaddr
	})
	if i == 0 {
		return nil
	}
	ns := p.namespaces[i-1]
	if gaddr >= ns.Base+ns.Size {
		return nil
	}
	return ns
}

func (p *Platform) dimmOf(ns *Namespace, chanPos int) dimm.DIMM {
	ch := ns.Channels[chanPos]
	if ns.Media == topology.MediaXP {
		return p.xps[ns.Socket][ch]
	}
	return p.drams[ns.Socket][ch]
}

func (p *Platform) channelOf(ns *Namespace, chanPos int) *imc.Channel {
	return p.channels[ns.Socket][ns.Channels[chanPos]]
}

// Context creates a memory context for a simulated thread running on the
// given socket.
func (p *Platform) Context(proc *sim.Proc, socket int) *MemCtx {
	if socket < 0 || socket >= p.cfg.Geometry.Sockets {
		panic(fmt.Sprintf("platform: socket %d out of range", socket))
	}
	ctx := &MemCtx{
		p:      p,
		proc:   proc,
		socket: socket,
		wc:     cache.NewWCBuffer(),
		rng:    sim.NewRNG(p.cfg.Seed ^ uint64(proc.ID()*7919+13)),
	}
	p.ctxs = append(p.ctxs, ctx)
	return ctx
}

// Crash simulates a power failure: every LLC dirty line and every pending
// write-combining buffer is discarded; data already posted to the WPQs and
// media (the ADR domain) survives. With EADR configured, dirty cache lines
// drain to durable storage instead of being lost. It returns how many
// dirty cache lines were lost (always 0 lines under eADR; WC buffers are
// outside even the eADR domain and still count).
func (p *Platform) Crash() int {
	lost := 0
	for _, llc := range p.llcs {
		if p.cfg.EADR {
			llc.FlushAll(func(addr int64, data []byte, mask uint64) {
				if p.cfg.TrackData {
					persistMaskedTo(&p.persist, addr, data, mask)
				}
			})
		} else {
			lost += llc.DropAll()
		}
	}
	for _, ctx := range p.ctxs {
		lost += ctx.wc.Drop()
		ctx.resetPending()
	}
	return lost
}

// XPCounters sums the 3D XPoint DIMM counters on a socket.
func (p *Platform) XPCounters(socket int) dimm.Counters {
	var total dimm.Counters
	for _, d := range p.xps[socket] {
		total.Add(*d.Counters())
	}
	return total
}

// XPDIMMCounters snapshots the 3D XPoint DIMM counters on one
// (socket, channel) slot — the per-device readout the devstat layer
// attributes windows and health metrics from.
func (p *Platform) XPDIMMCounters(socket, channel int) dimm.Counters {
	return *p.xps[socket][channel].Counters()
}

// XPWPQStats reports the channel's WPQ accounting for its 3D XPoint DIMM:
// cumulative entry-residency (occupancy integral) and cumulative
// admission-stall time. Both are monotone cumulative values; successive
// snapshots difference into per-window utilization and stall fractions.
func (p *Platform) XPWPQStats(socket, channel int) (occupancy, stall sim.Time) {
	ch := p.channels[socket][channel]
	d := p.xps[socket][channel]
	return ch.WPQOccupancyTime(d), ch.WPQStallTime(d)
}

// UPIBytes reports the socket home agent's cumulative remote-crossing
// traffic: bytes read from and written to this socket's memory by threads
// running on another socket (every crossing is one 64 B line through the
// home agent).
func (p *Platform) UPIBytes(socket int) (read, write int64) {
	h := p.home[socket]
	return h.readBytes, h.writeBytes
}

// NamespaceCounters sums the counters of the DIMMs backing a namespace.
// Note that counters are per-DIMM: if namespaces share DIMMs, traffic is
// attributed to all of them.
func (p *Platform) NamespaceCounters(ns *Namespace) dimm.Counters {
	var total dimm.Counters
	for pos := range ns.Channels {
		total.Add(*p.dimmOf(ns, pos).Counters())
	}
	return total
}

// ReadDurable reads the namespace's durable bytes (what survives a crash),
// without simulation cost. Recovery code uses it before re-attaching timed
// contexts.
func (ns *Namespace) ReadDurable(off int64, buf []byte) {
	ns.p.persist.Read(ns.GlobalAddr(off), buf)
}

// WriteDurable installs bytes directly into durable storage with no
// simulation cost (formatting / mkfs-style initialization).
func (ns *Namespace) WriteDurable(off int64, data []byte) {
	ns.p.persist.Write(ns.GlobalAddr(off), data)
}

// Platform returns the owning platform.
func (ns *Namespace) Platform() *Platform { return ns.p }

// homeAgent orders remote traffic entering a socket (UPI + caching agent).
// Alternating reads and writes toward DDR-T pay a scheduling turnaround —
// the calibrated mechanism behind the paper's NUMA mixed-traffic collapse.
type homeAgent struct {
	cfg     UPIConfig
	srv     sim.Server
	lastOp  int // 0 none, 1 read, 2 write
	lastXP  bool
	started bool

	// Cumulative crossing traffic, one 64 B line per acquire — the
	// UPI-utilization counters the devstat layer reads.
	readBytes  int64
	writeBytes int64
}

func newHomeAgent(cfg UPIConfig) *homeAgent {
	return &homeAgent{cfg: cfg}
}

func (h *homeAgent) acquire(t sim.Time, write, xp bool) (sim.Time, sim.Time) {
	svc := h.cfg.ReadService
	op := 1
	if write {
		svc = h.cfg.WriteService
		op = 2
		h.writeBytes += 64
	} else {
		h.readBytes += 64
	}
	if h.started && h.lastOp != op {
		if xp || h.lastXP {
			svc += h.cfg.TurnaroundXP
		} else {
			svc += h.cfg.TurnaroundDRAM
		}
	}
	h.started = true
	h.lastOp = op
	h.lastXP = xp
	return h.srv.Acquire(t, svc)
}
