package platform

import (
	"bytes"
	"testing"

	"optanestudy/internal/sim"
)

// run1 executes fn as a single simulated thread on the socket and returns
// the elapsed simulated time.
func run1(p *Platform, socket int, fn func(ctx *MemCtx)) sim.Time {
	start := p.Now()
	p.Go("t0", socket, fn)
	return p.Run() - start
}

func newPlatform(t testing.TB, track bool) *Platform {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TrackData = track
	cfg.XP.Wear.Enabled = false
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// avgLatency measures the mean per-op latency of n fenced operations.
func avgLatency(p *Platform, ns *Namespace, n int, op func(ctx *MemCtx, i int)) float64 {
	var total sim.Time
	run1(p, ns.Socket, func(ctx *MemCtx) {
		for i := 0; i < n; i++ {
			start := ctx.Proc().Now()
			op(ctx, i)
			total += ctx.Proc().Now() - start
		}
	})
	return total.Nanoseconds() / float64(n)
}

func TestLatencyOptaneRandomRead(t *testing.T) {
	p := newPlatform(t, false)
	ns, _ := p.Optane("pm", 0, 1<<30)
	r := sim.NewRNG(7)
	lat := avgLatency(p, ns, 2000, func(ctx *MemCtx, i int) {
		ctx.Load(ns, r.Int63n(ns.Size)&^63, 8)
	})
	if lat < 270 || lat > 340 {
		t.Errorf("Optane random read latency = %.1f ns, paper: 305", lat)
	}
}

func TestLatencyOptaneSequentialRead(t *testing.T) {
	p := newPlatform(t, false)
	ns, _ := p.Optane("pm", 0, 1<<30)
	lat := avgLatency(p, ns, 4000, func(ctx *MemCtx, i int) {
		ctx.Load(ns, int64(i)*64, 8)
	})
	if lat < 150 || lat > 190 {
		t.Errorf("Optane sequential read latency = %.1f ns, paper: 169", lat)
	}
}

func TestLatencyDRAMReads(t *testing.T) {
	p := newPlatform(t, false)
	ns, _ := p.DRAM("dram", 0, 1<<30)
	r := sim.NewRNG(9)
	rand := avgLatency(p, ns, 2000, func(ctx *MemCtx, i int) {
		ctx.Load(ns, r.Int63n(ns.Size)&^63, 8)
	})
	seq := avgLatency(p, ns, 2000, func(ctx *MemCtx, i int) {
		ctx.Load(ns, int64(i)*64, 8)
	})
	if seq < 70 || seq > 92 {
		t.Errorf("DRAM sequential read latency = %.1f ns, paper: 81", seq)
	}
	if rand < 90 || rand > 112 {
		t.Errorf("DRAM random read latency = %.1f ns, paper: 101", rand)
	}
	if rand <= seq {
		t.Errorf("random (%.1f) must exceed sequential (%.1f)", rand, seq)
	}
}

func TestLatencyWriteInstructions(t *testing.T) {
	p := newPlatform(t, false)
	pm, _ := p.Optane("pm", 0, 1<<26)
	dram, _ := p.DRAM("dram", 0, 1<<26)

	measure := func(ns *Namespace, nt bool) float64 {
		return avgLatency(p, ns, 1000, func(ctx *MemCtx, i int) {
			off := int64(i%1024) * 64
			if nt {
				ctx.NTStore(ns, off, 64, nil)
				ctx.SFence()
			} else {
				ctx.Store(ns, off, 64, nil)
				ctx.CLWB(ns, off, 64)
				ctx.SFence()
			}
		})
	}
	// Warm the cache so store+clwb measures the paper's "line already
	// cached" case.
	run1(p, 0, func(ctx *MemCtx) {
		for i := int64(0); i < 1024; i++ {
			ctx.Load(pm, i*64, 64)
			ctx.Load(dram, i*64, 64)
		}
	})

	clwbXP := measure(pm, false)
	ntXP := measure(pm, true)
	clwbDRAM := measure(dram, false)
	ntDRAM := measure(dram, true)

	if clwbXP < 50 || clwbXP > 80 {
		t.Errorf("Optane store+clwb latency = %.1f ns, paper: 62", clwbXP)
	}
	if ntXP < 75 || ntXP > 105 {
		t.Errorf("Optane ntstore latency = %.1f ns, paper: 90", ntXP)
	}
	if clwbDRAM < 45 || clwbDRAM > 70 {
		t.Errorf("DRAM store+clwb latency = %.1f ns, paper: 57", clwbDRAM)
	}
	if ntDRAM < 70 || ntDRAM > 100 {
		t.Errorf("DRAM ntstore latency = %.1f ns, paper: 86", ntDRAM)
	}
	if ntXP < clwbXP {
		t.Error("ntstore must cost more than store+clwb for 64B")
	}
}

func TestRemoteLatencyHigher(t *testing.T) {
	p := newPlatform(t, false)
	ns, _ := p.Optane("pm", 0, 1<<28)
	r := sim.NewRNG(3)
	local := avgLatency(p, ns, 1000, func(ctx *MemCtx, i int) {
		ctx.Load(ns, r.Int63n(ns.Size)&^63, 8)
	})
	p2 := newPlatform(t, false)
	ns2, _ := p2.Optane("pm", 0, 1<<28)
	r2 := sim.NewRNG(3)
	var total sim.Time
	run1(p2, 1, func(ctx *MemCtx) {
		for i := 0; i < 1000; i++ {
			start := ctx.Proc().Now()
			ctx.Load(ns2, r2.Int63n(ns2.Size)&^63, 8)
			total += ctx.Proc().Now() - start
		}
	})
	remote := total.Nanoseconds() / 1000
	ratio := remote / local
	if ratio < 1.15 || ratio > 1.9 {
		t.Errorf("remote/local random read ratio = %.2f (%.0f/%.0f ns), paper: 1.2-1.8",
			ratio, remote, local)
	}
}

func TestSequentialNTStoreBandwidthNI(t *testing.T) {
	p := newPlatform(t, false)
	ns, _ := p.OptaneNI("ni", 0, 0, 1<<28)
	const total = 12 << 20
	end := run1(p, 0, func(ctx *MemCtx) {
		for off := int64(0); off < total; off += 256 {
			ctx.NTStore(ns, off, 256, nil)
		}
		ctx.SFence()
	})
	gbs := float64(total) / end.Seconds() / 1e9
	if gbs < 1.7 || gbs > 2.7 {
		t.Errorf("single-DIMM seq ntstore bandwidth = %.2f GB/s, paper: ~2.3", gbs)
	}
	c := p.XPCounters(0)
	if c.EWR() < 0.95 {
		t.Errorf("sequential EWR = %.3f", c.EWR())
	}
}

func TestInterleavingScalesWriteBandwidth(t *testing.T) {
	bw := func(interleaved bool, threads int) float64 {
		p := newPlatform(t, false)
		var ns *Namespace
		if interleaved {
			ns, _ = p.Optane("pm", 0, 1<<30)
		} else {
			ns, _ = p.OptaneNI("pm", 0, 0, 1<<30)
		}
		const per = 3 << 20
		for th := 0; th < threads; th++ {
			th := th
			p.Go("w", 0, func(ctx *MemCtx) {
				base := int64(th) * (ns.Size / int64(threads))
				for off := int64(0); off < per; off += 256 {
					ctx.NTStore(ns, base+off, 256, nil)
				}
				ctx.SFence()
			})
		}
		end := p.Run()
		return float64(per*int64(threads)) / end.Seconds() / 1e9
	}
	ni := bw(false, 1)
	il := bw(true, 6)
	if il < 3.5*ni {
		t.Errorf("interleaving speedup = %.1fx (%.2f vs %.2f GB/s), paper: ~5.6x",
			il/ni, il, ni)
	}
}

func TestDRAMReadBandwidthScales(t *testing.T) {
	p := newPlatform(t, false)
	ns, _ := p.DRAM("dram", 0, 1<<30)
	const per = 4 << 20
	threads := 24
	for th := 0; th < threads; th++ {
		th := th
		p.Go("r", 0, func(ctx *MemCtx) {
			base := int64(th) * (ns.Size / int64(threads))
			for off := int64(0); off < per; off += 256 {
				ctx.LoadStream(ns, base+off, 256)
			}
			ctx.DrainLoads()
		})
	}
	end := p.Run()
	gbs := float64(per*int64(threads)) / end.Seconds() / 1e9
	if gbs < 70 || gbs > 130 {
		t.Errorf("DRAM 24-thread read bandwidth = %.1f GB/s, paper: ~105", gbs)
	}
}

func TestDataRoundTrip(t *testing.T) {
	p := newPlatform(t, true)
	ns, _ := p.Optane("pm", 0, 1<<20)
	msg := []byte("persistent memory is not just slow DRAM")
	run1(p, 0, func(ctx *MemCtx) {
		ctx.Store(ns, 1000, len(msg), msg)
		got := make([]byte, len(msg))
		ctx.LoadInto(ns, 1000, got)
		if !bytes.Equal(got, msg) {
			t.Error("cached store not visible to load")
		}
	})
	// Unflushed: durable copy must NOT have it yet.
	durable := make([]byte, len(msg))
	ns.ReadDurable(1000, durable)
	if bytes.Equal(durable, msg) {
		t.Error("unflushed store already durable")
	}
	run1(p, 0, func(ctx *MemCtx) {
		ctx.CLWB(ns, 1000, len(msg))
		ctx.SFence()
	})
	ns.ReadDurable(1000, durable)
	if !bytes.Equal(durable, msg) {
		t.Error("flushed store not durable")
	}
}

func TestCrashSemantics(t *testing.T) {
	p := newPlatform(t, true)
	ns, _ := p.Optane("pm", 0, 1<<20)
	flushed := []byte("flushed-data-xx")
	dirty := []byte("dirty-data-yyyy")
	nt := []byte("ntstore-data-zz")
	ntPartial := []byte("partial")
	run1(p, 0, func(ctx *MemCtx) {
		ctx.Store(ns, 0, len(flushed), flushed)
		ctx.CLWB(ns, 0, len(flushed))
		ctx.SFence()
		ctx.Store(ns, 4096, len(dirty), dirty) // never flushed
		ctx.NTStore(ns, 8192, 64, append(nt, make([]byte, 64-len(nt))...))
		ctx.SFence()
		ctx.NTStore(ns, 12288, len(ntPartial), ntPartial) // partial WC line, no fence
	})
	lost := p.Crash()
	if lost == 0 {
		t.Error("crash lost nothing despite dirty lines and WC partials")
	}
	buf := make([]byte, 64)
	ns.ReadDurable(0, buf)
	if !bytes.Equal(buf[:len(flushed)], flushed) {
		t.Error("flushed data lost in crash")
	}
	ns.ReadDurable(4096, buf)
	if bytes.Equal(buf[:len(dirty)], dirty) {
		t.Error("unflushed cached store survived crash")
	}
	ns.ReadDurable(8192, buf)
	if !bytes.Equal(buf[:len(nt)], nt) {
		t.Error("fenced ntstore lost in crash")
	}
	ns.ReadDurable(12288, buf)
	if bytes.Equal(buf[:len(ntPartial)], ntPartial) {
		t.Error("unfenced partial WC line survived crash")
	}
}

func TestEvictionMakesDirtyDataDurable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	cfg.LLC.Lines = 64 // tiny cache to force evictions
	p := MustNew(cfg)
	ns, _ := p.Optane("pm", 0, 1<<20)
	msg := bytes.Repeat([]byte{0xCD}, 64)
	run1(p, 0, func(ctx *MemCtx) {
		ctx.Store(ns, 0, 64, msg)
		// Thrash the cache until line 0 must have been evicted.
		for i := int64(1); i < 512; i++ {
			ctx.Store(ns, i*64, 64, nil)
		}
	})
	p.Crash()
	buf := make([]byte, 64)
	ns.ReadDurable(0, buf)
	if !bytes.Equal(buf, msg) {
		t.Error("evicted dirty line did not reach durable storage")
	}
}

func TestPersistIdioms(t *testing.T) {
	p := newPlatform(t, true)
	ns, _ := p.Optane("pm", 0, 1<<20)
	a := bytes.Repeat([]byte{1}, 300)
	b := bytes.Repeat([]byte{2}, 300)
	run1(p, 0, func(ctx *MemCtx) {
		ctx.PersistNT(ns, 0, len(a), a)
		ctx.PersistStore(ns, 512, len(b), b)
	})
	p.Crash()
	buf := make([]byte, 300)
	ns.ReadDurable(0, buf)
	if !bytes.Equal(buf, a) {
		t.Error("PersistNT not durable")
	}
	ns.ReadDurable(512, buf)
	if !bytes.Equal(buf, b) {
		t.Error("PersistStore not durable")
	}
}

func TestNamespaceBoundsChecked(t *testing.T) {
	p := newPlatform(t, false)
	ns, _ := p.Optane("pm", 0, 1<<20)
	caught := false
	run1(p, 0, func(ctx *MemCtx) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		ctx.Load(ns, ns.Size-4, 64)
	})
	if !caught {
		t.Error("out-of-range access not caught")
	}
}

func TestPMEPPreset(t *testing.T) {
	p := MustNew(PMEPConfig())
	ns, _ := p.DRAM("pmem", 0, 1<<26)
	r := sim.NewRNG(5)
	lat := avgLatency(p, ns, 500, func(ctx *MemCtx, i int) {
		ctx.Load(ns, r.Int63n(ns.Size)&^63, 8)
	})
	if lat < 380 || lat > 440 {
		t.Errorf("PMEP load latency = %.1f ns, want ~401 (DRAM+300)", lat)
	}
}

func TestEADRCrashKeepsDirtyCacheLines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	cfg.EADR = true
	p := MustNew(cfg)
	ns, _ := p.Optane("pm", 0, 1<<20)
	dirty := []byte("eadr keeps me")
	partial := []byte("wc-lost")
	run1(p, 0, func(ctx *MemCtx) {
		ctx.Store(ns, 0, len(dirty), dirty)          // never flushed
		ctx.NTStore(ns, 4096, len(partial), partial) // partial WC, no fence
	})
	lost := p.Crash()
	buf := make([]byte, len(dirty))
	ns.ReadDurable(0, buf)
	if !bytes.Equal(buf, dirty) {
		t.Error("eADR crash lost a dirty cache line")
	}
	// WC buffers remain outside the eADR domain.
	buf2 := make([]byte, len(partial))
	ns.ReadDurable(4096, buf2)
	if bytes.Equal(buf2, partial) {
		t.Error("unfenced WC data survived (should be outside eADR)")
	}
	if lost == 0 {
		t.Error("WC partials should still count as lost")
	}
}

func TestEADRMakesFlushesOptional(t *testing.T) {
	// The same store sequence loses data under ADR and keeps it under eADR.
	runWith := func(eadr bool) bool {
		cfg := DefaultConfig()
		cfg.TrackData = true
		cfg.XP.Wear.Enabled = false
		cfg.EADR = eadr
		p := MustNew(cfg)
		ns, _ := p.Optane("pm", 0, 1<<20)
		run1(p, 0, func(ctx *MemCtx) {
			ctx.Store(ns, 512, 4, []byte("data"))
			ctx.SFence() // ordering only; no flush
		})
		p.Crash()
		buf := make([]byte, 4)
		ns.ReadDurable(512, buf)
		return bytes.Equal(buf, []byte("data"))
	}
	if runWith(false) {
		t.Error("ADR platform kept unflushed data")
	}
	if !runWith(true) {
		t.Error("eADR platform lost unflushed data")
	}
}
