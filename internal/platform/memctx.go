package platform

import (
	"fmt"

	"optanestudy/internal/cache"
	"optanestudy/internal/dimm"
	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
	"optanestudy/internal/topology"
)

// MemCtx is one simulated thread's view of memory: it issues the
// persistence ISA (loads, stores, ntstores, flushes, fences) against
// namespaces, advancing its proc's simulated clock according to the
// platform model.
//
// Persistence semantics mirror the ADR platform: a store is durable once
// posted to a WPQ (flush or ntstore); data sitting dirty in the cache or in
// a write-combining buffer is volatile and lost on Crash.
type MemCtx struct {
	p      *Platform
	proc   *sim.Proc
	socket int
	wc     *cache.WCBuffer
	rng    *sim.RNG

	windows map[dimm.DIMM]*drainRing

	pendingAck sim.Time
	hasPending bool

	loads    []sim.Time
	loadHead int
	loadMax  sim.Time

	// rfoDone tracks when a store-miss's ownership read completes per
	// line: a write-back of that line cannot be posted earlier (the store
	// retires only once the line arrives). This is why store+clwb to cold
	// lines inherits the device's read latency (Section 5.2).
	rfoDone map[int64]sim.Time
}

// drainRing caps the number of un-drained WPQ entries a thread may have on
// one DIMM (the paper's 256 B per-thread WPQ window). It is a fixed-size
// circular buffer: the hot postLine path reuses the same backing array
// instead of reslicing-and-appending a fresh slice per tracked write.
type drainRing struct {
	times []sim.Time // circular storage, sized to the window capacity
	head  int        // index of the oldest live entry
	n     int        // live entries
}

// push appends t. When the ring already holds capacity entries, the oldest
// is evicted and returned (the drain the caller must wait for); otherwise
// zero is returned.
func (r *drainRing) push(t sim.Time, capacity int) sim.Time {
	if len(r.times) != capacity {
		r.resize(capacity)
	}
	wait := sim.Time(0)
	if r.n == capacity {
		wait = r.times[r.head]
		r.head++
		if r.head == capacity {
			r.head = 0
		}
		r.n--
	}
	i := r.head + r.n
	if i >= capacity {
		i -= capacity
	}
	r.times[i] = t
	r.n++
	return wait
}

// setLast overwrites the most recently pushed entry.
func (r *drainRing) setLast(t sim.Time) {
	i := r.head + r.n - 1
	if i >= len(r.times) {
		i -= len(r.times)
	}
	r.times[i] = t
}

// resize re-sizes the storage (the window capacity is fixed per platform
// config, so this runs once per ring in practice), preserving live entries
// in order.
func (r *drainRing) resize(capacity int) {
	fresh := make([]sim.Time, capacity)
	keep := r.n
	if keep > capacity {
		keep = capacity
	}
	for i := 0; i < keep; i++ {
		// Drop the oldest entries first when shrinking.
		j := r.head + r.n - keep + i
		if len(r.times) > 0 {
			j %= len(r.times)
		}
		fresh[i] = r.times[j]
	}
	r.times, r.head, r.n = fresh, 0, keep
}

func (r *drainRing) reset() { r.head, r.n = 0, 0 }

// Proc returns the owning simulated thread.
func (c *MemCtx) Proc() *sim.Proc { return c.proc }

// Socket returns the context's home socket.
func (c *MemCtx) Socket() int { return c.socket }

func (c *MemCtx) llc() *cache.LLC { return c.p.llcs[c.socket] }

func (c *MemCtx) remote(ns *Namespace) bool { return ns.Socket != c.socket }

func (c *MemCtx) ackTime(xp, remote bool) sim.Time {
	ack := c.p.cfg.AcceptAckDRAM
	if xp {
		ack = c.p.cfg.AcceptAckXP
	}
	if remote {
		ack += 2 * c.p.cfg.UPI.HopLatency
	}
	return ack
}

func (c *MemCtx) window(d dimm.DIMM) *drainRing {
	w := c.windows[d]
	if w == nil {
		w = c.p.getRing()
		if c.windows == nil {
			c.windows = make(map[dimm.DIMM]*drainRing)
		}
		c.windows[d] = w
	}
	return w
}

// recycle returns the context's per-DIMM windows to the platform pool once
// its thread has finished; later threads reuse the ring storage instead of
// allocating fresh windows. Safe because procs run exclusively.
func (c *MemCtx) recycle() {
	for _, w := range c.windows {
		w.reset()
		c.p.ringPool = append(c.p.ringPool, w)
	}
	c.windows = nil
}

func (c *MemCtx) resetPending() {
	c.pendingAck, c.hasPending = 0, false
	for _, w := range c.windows {
		w.reset()
	}
	c.loads = c.loads[:0]
	c.loadHead = 0
	c.loadMax = 0
}

func checkRange(ns *Namespace, off int64, size int) {
	if size < 0 || off < 0 || off+int64(size) > ns.Size {
		panic(fmt.Sprintf("platform: access [%d,+%d) outside namespace %q (size %d)",
			off, size, ns.Name, ns.Size))
	}
}

// ---- Loads ----

// loadSlot obtains an MLP slot, returning the (possibly delayed) issue time.
func (c *MemCtx) loadSlot(t sim.Time) sim.Time {
	outstanding := len(c.loads) - c.loadHead
	if outstanding >= c.p.cfg.MLP {
		oldest := c.loads[c.loadHead]
		c.loadHead++
		if c.loadHead > 1024 && c.loadHead*2 >= len(c.loads) {
			c.loads = append(c.loads[:0], c.loads[c.loadHead:]...)
			c.loadHead = 0
		}
		if oldest > t {
			t = oldest
		}
	}
	return t
}

// chunkLoad issues one 64 B load at time t; returns issue-done time and
// data-ready time.
func (c *MemCtx) chunkLoad(ns *Namespace, lineOff int64, t sim.Time) (sim.Time, sim.Time) {
	g := ns.GlobalAddr(lineOff)
	llc := c.llc()
	if llc.Present(g) {
		return t + c.p.cfg.ChunkIssue, t + llc.HitLatency()
	}
	t = c.loadSlot(t)
	pos, local := ns.Resolve(lineOff)
	ch, d := c.p.channelOf(ns, pos), c.p.dimmOf(ns, pos)
	start := t
	extra := sim.Time(0)
	if c.remote(ns) {
		_, granted := c.p.home[ns.Socket].acquire(t, false, ns.Media == topology.MediaXP)
		start = granted
		extra = 2 * c.p.cfg.UPI.HopLatency
	}
	done := ch.Read(start, d, local) + c.p.cfg.LoadOverhead + extra
	c.loads = append(c.loads, done)
	if done > c.loadMax {
		c.loadMax = done
	}
	if victim, ok := llc.Insert(g); ok && victim.Dirty {
		c.writebackVictim(t, victim)
	}
	return t + c.p.cfg.ChunkIssue, done
}

// Load performs a synchronous read of size bytes: the thread waits until
// all touched lines return (memcpy/pointer-chase semantics for single
// lines).
func (c *MemCtx) Load(ns *Namespace, off int64, size int) {
	checkRange(ns, off, size)
	t := c.proc.Now()
	var done sim.Time
	first := mem.LineAddr(off)
	for n := mem.LinesIn(off, size); n > 0; n-- {
		var d sim.Time
		t, d = c.chunkLoad(ns, first, t)
		if d > done {
			done = d
		}
		first += mem.CacheLine
	}
	if done > t {
		t = done
	}
	c.proc.AdvanceTo(t)
}

// LoadInto is Load plus a copy of the bytes into buf (overlay-coherent:
// dirty cached data wins over durable data).
func (c *MemCtx) LoadInto(ns *Namespace, off int64, buf []byte) {
	c.Load(ns, off, len(buf))
	c.Peek(ns, off, buf)
}

// Peek copies the current coherent contents (dirty cache overlay over
// durable data) without advancing simulated time. Use it when the timing
// of the copy has already been charged through Load or LoadStream.
func (c *MemCtx) Peek(ns *Namespace, off int64, buf []byte) {
	llc := c.llc()
	for i := 0; i < len(buf); {
		addr := off + int64(i)
		line := mem.LineAddr(addr)
		lo := int(addr - line)
		n := mem.CacheLine - lo
		if n > len(buf)-i {
			n = len(buf) - i
		}
		c.p.persist.Read(ns.GlobalAddr(addr), buf[i:i+n])
		if data, mask := llc.Data(ns.GlobalAddr(line)); data != nil {
			for j := 0; j < n; j++ {
				if mask&(1<<uint(lo+j)) != 0 {
					buf[i+j] = data[lo+j]
				}
			}
		}
		i += n
	}
}

// LoadStream issues reads pipelined without waiting for completion (bulk
// copy semantics); DrainLoads synchronizes.
func (c *MemCtx) LoadStream(ns *Namespace, off int64, size int) {
	checkRange(ns, off, size)
	t := c.proc.Now()
	first := mem.LineAddr(off)
	for n := mem.LinesIn(off, size); n > 0; n-- {
		t, _ = c.chunkLoad(ns, first, t)
		first += mem.CacheLine
	}
	c.proc.AdvanceTo(t)
}

// DrainLoads waits for all outstanding loads.
func (c *MemCtx) DrainLoads() {
	if c.loadMax > c.proc.Now() {
		c.proc.AdvanceTo(c.loadMax)
	}
	c.loads = c.loads[:0]
	c.loadHead = 0
}

// ---- Stores ----

// Store performs cached stores over [off, off+size). data, if non-nil,
// must be size bytes and is retained in the (volatile) cache overlay until
// flushed or evicted.
func (c *MemCtx) Store(ns *Namespace, off int64, size int, data []byte) {
	checkRange(ns, off, size)
	if data != nil && len(data) != size {
		panic("platform: Store data length mismatch")
	}
	t := c.proc.Now()
	llc := c.llc()
	for i := 0; i < size; {
		addr := off + int64(i)
		line := mem.LineAddr(addr)
		lo := int(addr - line)
		n := mem.CacheLine - lo
		if n > size-i {
			n = size - i
		}
		g := ns.GlobalAddr(line)
		if !llc.Present(g) {
			// RFO: fetch the line through the load pipeline; the thread
			// does not block on it but the read consumes device bandwidth.
			t = c.rfo(ns, line, t)
		}
		var chunk []byte
		if data != nil {
			chunk = data[i : i+n]
		}
		if victim, ok := llc.MarkDirty(g, lo, chunk); ok && victim.Dirty {
			c.writebackVictim(t, victim)
		}
		t += c.p.cfg.StoreIssue
		i += n
	}
	c.proc.AdvanceTo(t)
}

func (c *MemCtx) rfo(ns *Namespace, lineOff int64, t sim.Time) sim.Time {
	t = c.loadSlot(t)
	pos, local := ns.Resolve(lineOff)
	ch, d := c.p.channelOf(ns, pos), c.p.dimmOf(ns, pos)
	start := t
	if c.remote(ns) {
		_, start = c.p.home[ns.Socket].acquire(t, false, ns.Media == topology.MediaXP)
	}
	done := ch.Read(start, d, local) + c.p.cfg.LoadOverhead
	c.loads = append(c.loads, done)
	if done > c.loadMax {
		c.loadMax = done
	}
	if c.rfoDone == nil {
		c.rfoDone = make(map[int64]sim.Time)
	}
	if len(c.rfoDone) > 8192 {
		c.rfoDone = make(map[int64]sim.Time)
	}
	c.rfoDone[ns.GlobalAddr(lineOff)] = done
	return t
}

// writebackVictim posts a hardware eviction of a dirty line, persisting
// only the bytes the overlay actually holds.
func (c *MemCtx) writebackVictim(t sim.Time, victim cache.Victim) {
	ns := c.p.resolveGlobal(victim.Addr)
	if ns == nil {
		return
	}
	lineOff := victim.Addr - ns.Base
	c.postLine(ns, lineOff, nil, t, false)
	if c.p.cfg.TrackData && victim.Data != nil {
		c.persistMasked(victim.Addr, victim.Data, victim.Mask)
	}
}

// postLine enqueues one 64 B line write toward its DIMM. When tracked is
// true the post participates in fence ordering and the per-thread WPQ
// window (explicit flushes and ntstores); hardware evictions pass false.
// Returns the thread time after any window wait.
func (c *MemCtx) postLine(ns *Namespace, lineOff int64, data []byte, t sim.Time, tracked bool) sim.Time {
	pos, local := ns.Resolve(lineOff)
	ch, d := c.p.channelOf(ns, pos), c.p.dimmOf(ns, pos)
	xp := ns.Media == topology.MediaXP
	remote := c.remote(ns)
	if tracked {
		if wait := c.window(d).push(0, c.p.cfg.StoreWindow); wait > t {
			t = wait
		}
	}
	postT := t
	if remote {
		_, granted := c.p.home[ns.Socket].acquire(t, true, xp)
		postT = granted + c.p.cfg.UPI.WriteOwnership
	}
	acc, drain := ch.PostWrite(postT, d, local)
	if tracked {
		w := c.window(d)
		w.setLast(drain)
		ack := acc + c.ackTime(xp, remote)
		if ack > c.pendingAck {
			c.pendingAck = ack
		}
		c.hasPending = true
	}
	if c.p.cfg.TrackData && data != nil {
		c.p.persist.Write(ns.GlobalAddr(lineOff), data)
	}
	return t
}

// ---- Flushes ----

func (c *MemCtx) flushRange(ns *Namespace, off int64, size int, issue sim.Time, evictLine bool) {
	checkRange(ns, off, size)
	t := c.proc.Now()
	llc := c.llc()
	first := mem.LineAddr(off)
	for n := mem.LinesIn(off, size); n > 0; n-- {
		g := ns.GlobalAddr(first)
		var data []byte
		var mask uint64
		var wasDirty bool
		if evictLine {
			data, mask, wasDirty = llc.Evict(g)
		} else {
			data, mask, wasDirty = llc.WriteBack(g)
		}
		t += issue
		if wasDirty {
			if done, ok := c.rfoDone[g]; ok {
				if done > t {
					t = done // the write-back waits for the store's RFO
				}
				delete(c.rfoDone, g)
			}
			t = c.postLine(ns, first, nil, t, true)
			if c.p.cfg.TrackData && data != nil {
				c.persistMasked(g, data, mask)
			}
		}
		first += mem.CacheLine
	}
	c.proc.AdvanceTo(t)
}

// CLWB writes back (without evicting) every dirty line in the range.
func (c *MemCtx) CLWB(ns *Namespace, off int64, size int) {
	c.flushRange(ns, off, size, c.p.cfg.FlushIssue, false)
}

// CLFlushOpt writes back and evicts every line in the range (unordered
// flush).
func (c *MemCtx) CLFlushOpt(ns *Namespace, off int64, size int) {
	c.flushRange(ns, off, size, c.p.cfg.FlushIssue, true)
}

// CLFlush writes back and evicts with the legacy, more serializing cost.
func (c *MemCtx) CLFlush(ns *Namespace, off int64, size int) {
	c.flushRange(ns, off, size, c.p.cfg.CLFlushIssue, true)
}

// ---- Non-temporal stores ----

// NTStore bypasses the cache: full 64 B lines post directly toward the WPQ
// via write-combining buffers; partial lines linger in the WC buffer until
// completed or fenced.
func (c *MemCtx) NTStore(ns *Namespace, off int64, size int, data []byte) {
	checkRange(ns, off, size)
	if data != nil && len(data) != size {
		panic("platform: NTStore data length mismatch")
	}
	t := c.proc.Now()
	llc := c.llc()
	for i := 0; i < size; {
		addr := off + int64(i)
		line := mem.LineAddr(addr)
		lo := int(addr - line)
		n := mem.CacheLine - lo
		if n > size-i {
			n = size - i
		}
		// NT stores invalidate any cached copy; dirty lines are written
		// back first, as on real hardware.
		if g := ns.GlobalAddr(line); llc.Present(g) {
			if data, mask, wasDirty := llc.Evict(g); wasDirty {
				t = c.postLine(ns, line, nil, t, false)
				if c.p.cfg.TrackData && data != nil {
					c.persistMasked(g, data, mask)
				}
			}
		}
		var chunk []byte
		if data != nil {
			chunk = data[i : i+n]
		}
		if n == mem.CacheLine {
			t = c.postLine(ns, line, chunk, t+c.p.cfg.NTPostDelay, true) - c.p.cfg.NTPostDelay
		} else {
			wcData := chunk
			if wcData == nil {
				wcData = zeroLine[:n]
			}
			// The WC buffer is keyed by global address: SFence drains
			// leftovers through resolveGlobal, so a relative key would
			// alias another namespace's lines once more than one
			// namespace exists.
			if flushAddr, flushData, complete := c.wc.Write(ns.GlobalAddr(addr), wcData); complete {
				if data == nil {
					flushData = nil
				}
				t = c.postLine(ns, flushAddr-ns.Base, flushData, t+c.p.cfg.NTPostDelay, true) - c.p.cfg.NTPostDelay
			}
		}
		t += c.p.cfg.NTStoreIssue
		i += n
	}
	c.proc.AdvanceTo(t)
}

var zeroLine [mem.CacheLine]byte

// ---- Fences ----

// SFence drains the thread's write-combining buffers and waits until every
// tracked post since the last fence has been accepted into a WPQ (the ADR
// persistence point).
func (c *MemCtx) SFence() {
	t := c.proc.Now()
	c.wc.Flush(func(addr int64, data []byte, mask uint64) {
		ns := c.p.resolveGlobal(addr)
		if ns == nil {
			return
		}
		lineOff := addr - ns.Base
		t = c.postLine(ns, lineOff, nil, t+c.p.cfg.NTPostDelay, true) - c.p.cfg.NTPostDelay
		t += c.p.cfg.NTStoreIssue
		if c.p.cfg.TrackData {
			c.persistMasked(addr, data, mask)
		}
	})
	if c.hasPending && c.pendingAck > t {
		t = c.pendingAck
	}
	c.hasPending = false
	c.pendingAck = 0
	c.proc.AdvanceTo(t + c.p.cfg.FenceBase)
}

func (c *MemCtx) persistMasked(lineAddr int64, data []byte, mask uint64) {
	persistMaskedTo(&c.p.persist, lineAddr, data, mask)
}

// persistMaskedTo writes only the mask-covered bytes of a 64 B line into
// the durable store.
func persistMaskedTo(store *mem.DataStore, lineAddr int64, data []byte, mask uint64) {
	for i := 0; i < mem.CacheLine; {
		if mask&(1<<uint(i)) == 0 {
			i++
			continue
		}
		j := i
		for j < mem.CacheLine && mask&(1<<uint(j)) != 0 {
			j++
		}
		store.Write(lineAddr+int64(i), data[i:j])
		i = j
	}
}

// ---- Convenience persistence idioms ----

// PersistNT writes with non-temporal stores and fences (the paper's
// recommended idiom for large transfers).
func (c *MemCtx) PersistNT(ns *Namespace, off int64, size int, data []byte) {
	c.NTStore(ns, off, size, data)
	c.SFence()
}

// PersistStore writes with cached stores, flushes with clwb, and fences
// (the recommended idiom for small writes).
func (c *MemCtx) PersistStore(ns *Namespace, off int64, size int, data []byte) {
	c.Store(ns, off, size, data)
	c.CLWB(ns, off, size)
	c.SFence()
}
