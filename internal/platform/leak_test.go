package platform

import (
	"runtime"
	"testing"
	"time"
)

// TestHundredPlatformsNoGoroutineLeak is the regression test for the
// platform-per-trial lifecycle the parallel harness depends on: building
// and tearing down 100 platforms — some run to completion, some abandoned
// with spawned-but-never-run threads — must not accumulate goroutines.
func TestHundredPlatformsNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		cfg := DefaultConfig()
		cfg.XP.Wear.Enabled = false
		p := MustNew(cfg)
		ns, err := p.Optane("pm", 0, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		for th := 0; th < 4; th++ {
			p.Go("w", 0, func(ctx *MemCtx) {
				ctx.PersistNT(ns, 0, 256, nil)
			})
		}
		if i%2 == 0 {
			// The happy path: the trial runs to completion, Close is a
			// no-op.
			p.Run()
		}
		// The error path leaves the 4 threads parked; Close must reap them.
		p.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("goroutines leaked across 100 platforms: %d before, %d after", before, after)
	}
}

// TestCloseAfterPartialUse checks Close on a platform whose engine already
// ran, then had more threads spawned for a second Run that never happened.
func TestCloseAfterPartialUse(t *testing.T) {
	p := newPlatform(t, false)
	ns, err := p.Optane("pm", 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	run1(p, 0, func(ctx *MemCtx) { ctx.Load(ns, 0, 64) })
	p.Go("never-run", 0, func(ctx *MemCtx) { ctx.Load(ns, 0, 64) })
	p.Close()
	p.Close() // idempotent
}
