// Package fault generates deterministic, seeded fault-event streams for
// the serving stack: shard crashes, DIMM stalls and churn-style repeated
// standby leave/join cycles, all scheduled in sim time as a pure function
// of a seed and a window. The generators never touch wall clocks or
// global randomness, so an injected run is exactly as reproducible as a
// fault-free one — byte-identical output at any -parallel width, with
// the schedule itself folded into the job spec the trial seed derives
// from.
//
// The package is deliberately a leaf: it knows nothing about shards
// beyond their indices. Placement-level failures (losing a socket takes
// every shard homed on it) are resolved into per-shard events by the
// caller, which is the layer that knows the placement.
package fault

import (
	"fmt"
	"sort"

	"optanestudy/internal/sim"
)

// Kind is a fault event type.
type Kind int

// Event kinds.
const (
	// Crash is a fail-stop of the shard's primary storage node: serving
	// pauses, and after the detection delay the replica is promoted.
	Crash Kind = iota
	// Stall pauses the shard's execution for Dur (a DIMM that stops
	// answering — thermal throttle, media retry storm) without losing
	// state; requests queue or shed until the stall lifts.
	Stall
	// Leave detaches the shard's standby: shipping stops and the primary
	// buffers the unshipped tail until a Join.
	Leave
	// Join (re)attaches a standby, which catches up on the history it
	// missed and then resumes synchronous shipping.
	Join
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case Leave:
		return "leave"
	case Join:
		return "join"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault, targeted at a shard at an absolute sim
// time. Dur is the stall length (Stall only).
type Event struct {
	At    sim.Time
	Kind  Kind
	Shard int
	Dur   sim.Time
}

// Sort orders events by (time, shard, kind) — the deterministic
// application order the serving driver walks.
func Sort(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Kind < b.Kind
	})
}

// Validate checks every event targets a shard in [0, shards) with a
// nonnegative time, and that the slice is sorted.
func Validate(evs []Event, shards int) error {
	for i, ev := range evs {
		if ev.Shard < 0 || ev.Shard >= shards {
			return fmt.Errorf("fault: event %d targets shard %d of %d", i, ev.Shard, shards)
		}
		if ev.At < 0 || ev.Dur < 0 {
			return fmt.Errorf("fault: event %d has a negative time", i)
		}
		if i > 0 && evs[i-1].At > ev.At {
			return fmt.Errorf("fault: events out of order at %d", i)
		}
	}
	return nil
}

// Point returns a one-shot schedule: a single event of the given kind.
func Point(kind Kind, shard int, at, dur sim.Time) []Event {
	return []Event{{At: at, Kind: kind, Shard: shard, Dur: dur}}
}

// SocketLoss expands a whole-socket failure into simultaneous crashes of
// every listed shard (the caller resolves placement — which shards are
// homed on the lost socket).
func SocketLoss(shards []int, at sim.Time) []Event {
	evs := make([]Event, 0, len(shards))
	for _, s := range shards {
		evs = append(evs, Event{At: at, Kind: Crash, Shard: s})
	}
	Sort(evs)
	return evs
}

// ChurnConfig parameterizes a churn stream: repeated standby leave/join
// cycles rather than one-shot kills.
type ChurnConfig struct {
	// Seed drives the per-shard jitter streams (derive it from the job
	// seed so the schedule is part of the spec's identity).
	Seed uint64
	// Shards is how many shards churn; every one gets its own cycle
	// stream, phase-shifted so the cluster never loses all standbys at
	// once.
	Shards int
	// Start and End bound the event window (absolute sim time). Cycles
	// that would start past End are dropped; a Leave always gets its Join
	// inside the window or is dropped with it, so a churn run never ends
	// with a standby stranded by the generator.
	Start, End sim.Time
	// Period is the mean leave-to-leave cycle length per shard.
	Period sim.Time
	// DownFrac is the fraction of each cycle the standby spends departed,
	// in (0, 1).
	DownFrac float64
	// Jitter scales each interval by a factor uniform in [1-Jitter,
	// 1+Jitter]; 0 is strictly periodic.
	Jitter float64
}

// Churn generates the seeded leave/join stream: per shard, a phase-
// shifted sequence of (leave at t, join at t+down) cycles with jittered
// periods, merged and sorted. Pure: the same config always yields the
// same schedule.
func Churn(c ChurnConfig) ([]Event, error) {
	if c.Shards < 1 {
		return nil, fmt.Errorf("fault: churn needs at least one shard, got %d", c.Shards)
	}
	if c.Period <= 0 || c.End <= c.Start {
		return nil, fmt.Errorf("fault: churn needs a positive period and window")
	}
	if c.DownFrac <= 0 || c.DownFrac >= 1 {
		return nil, fmt.Errorf("fault: churn downfrac must be in (0,1), got %g", c.DownFrac)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return nil, fmt.Errorf("fault: churn jitter must be in [0,1), got %g", c.Jitter)
	}
	var evs []Event
	for s := 0; s < c.Shards; s++ {
		rng := sim.NewRNG(c.Seed + uint64(s)*0x9E3779B97F4A7C15 + 0x5A17)
		jit := func(t sim.Time) sim.Time {
			if c.Jitter == 0 {
				return t
			}
			f := 1 + c.Jitter*(2*rng.Float64()-1)
			return sim.Time(float64(t) * f)
		}
		// Phase-shift shard s by s/Shards of a period so departures
		// stagger across the cluster.
		t := c.Start + sim.Time(int64(c.Period)*int64(s)/int64(c.Shards))
		for {
			leave := t + jit(c.Period-sim.Time(float64(c.Period)*c.DownFrac))
			join := leave + jit(sim.Time(float64(c.Period)*c.DownFrac))
			if join >= c.End {
				break
			}
			evs = append(evs, Event{At: leave, Kind: Leave, Shard: s})
			evs = append(evs, Event{At: join, Kind: Join, Shard: s})
			t = join
		}
	}
	Sort(evs)
	return evs, nil
}
