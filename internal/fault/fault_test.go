package fault

import (
	"reflect"
	"testing"

	"optanestudy/internal/sim"
)

func TestChurnDeterministic(t *testing.T) {
	cfg := ChurnConfig{
		Seed: 77, Shards: 4,
		Start: 100 * sim.Microsecond, End: 700 * sim.Microsecond,
		Period: 80 * sim.Microsecond, DownFrac: 0.3, Jitter: 0.4,
	}
	a, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different schedules")
	}
	if len(a) == 0 {
		t.Fatalf("churn window produced no events")
	}
	if err := Validate(a, cfg.Shards); err != nil {
		t.Fatal(err)
	}
	c, err := Churn(ChurnConfig{
		Seed: 78, Shards: 4,
		Start: 100 * sim.Microsecond, End: 700 * sim.Microsecond,
		Period: 80 * sim.Microsecond, DownFrac: 0.3, Jitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical jittered schedules")
	}
}

// Per shard, churn must alternate strictly leave → join → leave …, start
// with a leave, and end joined (no standby stranded by the generator).
func TestChurnAlternates(t *testing.T) {
	evs, err := Churn(ChurnConfig{
		Seed: 9, Shards: 3,
		Start: 0, End: sim.Millisecond,
		Period: 60 * sim.Microsecond, DownFrac: 0.4, Jitter: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := map[int]Kind{}
	for _, ev := range evs {
		if ev.Kind != Leave && ev.Kind != Join {
			t.Fatalf("churn emitted %v", ev.Kind)
		}
		prev, seen := last[ev.Shard]
		switch {
		case !seen && ev.Kind != Leave:
			t.Fatalf("shard %d starts with %v", ev.Shard, ev.Kind)
		case seen && prev == ev.Kind:
			t.Fatalf("shard %d repeats %v", ev.Shard, ev.Kind)
		}
		last[ev.Shard] = ev.Kind
		if ev.At >= sim.Millisecond {
			t.Fatalf("event at %v past the window end", ev.At)
		}
	}
	for s, k := range last {
		if k != Join {
			t.Fatalf("shard %d ends departed", s)
		}
	}
}

func TestSocketLossAndValidate(t *testing.T) {
	evs := SocketLoss([]int{2, 0}, 50*sim.Microsecond)
	if len(evs) != 2 || evs[0].Shard != 0 || evs[1].Shard != 2 {
		t.Fatalf("socket loss events mis-sorted: %+v", evs)
	}
	for _, ev := range evs {
		if ev.Kind != Crash || ev.At != 50*sim.Microsecond {
			t.Fatalf("bad socket-loss event %+v", ev)
		}
	}
	if err := Validate(evs, 3); err != nil {
		t.Fatal(err)
	}
	if err := Validate(evs, 2); err == nil {
		t.Fatalf("out-of-range shard not caught")
	}
	if err := Validate([]Event{{At: 5}, {At: 3}}, 1); err == nil {
		t.Fatalf("unsorted events not caught")
	}
}

func TestChurnRejectsBadConfig(t *testing.T) {
	base := ChurnConfig{Seed: 1, Shards: 2, Start: 0, End: sim.Millisecond, Period: 50 * sim.Microsecond, DownFrac: 0.3}
	for name, mut := range map[string]func(*ChurnConfig){
		"no-shards":  func(c *ChurnConfig) { c.Shards = 0 },
		"no-period":  func(c *ChurnConfig) { c.Period = 0 },
		"bad-window": func(c *ChurnConfig) { c.End = 0 },
		"down-high":  func(c *ChurnConfig) { c.DownFrac = 1 },
		"down-low":   func(c *ChurnConfig) { c.DownFrac = 0 },
		"jitter":     func(c *ChurnConfig) { c.Jitter = 1 },
	} {
		c := base
		mut(&c)
		if _, err := Churn(c); err == nil {
			t.Errorf("%s: bad config accepted", name)
		}
	}
}
