package service

import (
	"bytes"
	"reflect"
	"testing"

	"optanestudy/internal/harness"
	"optanestudy/internal/sim"
	"optanestudy/internal/telemetry"
)

func runTraced(t *testing.T, spec harness.Spec, parallel int) *harness.Result {
	t.Helper()
	srs := harness.RunSpecs([]harness.Spec{spec}, parallel)
	if srs[0].Err != nil {
		t.Fatal(srs[0].Err)
	}
	return srs[0].Result
}

// Past the saturation knee the dominant p99 component must be queue-wait,
// not backend service time: the backend is pinned busy, so every extra
// offered op waits in line. This is the phase breakdown's reason to exist —
// end-to-end p99 alone cannot say which segment blew up.
func TestPhaseBreakdownPastKnee(t *testing.T) {
	spec := harness.Spec{
		Scenario: "service/kv/pmemkv",
		Params:   map[string]string{"offered": "20000", "qcap": "64"},
		Threads:  4, Duration: 200 * sim.Microsecond, Seed: 7,
		Trace: true,
	}
	res := runTraced(t, spec, 1)
	tr := res.Trials[0].Trace
	if tr == nil || len(tr.Runs) != 1 {
		t.Fatalf("traced trial carries %+v, want one run", tr)
	}
	run := tr.Runs[0]
	qw, svc, total := run.Phase("queue_wait"), run.Phase("service"), run.Phase("total")
	if qw.Count == 0 || svc.Count == 0 {
		t.Fatalf("phase counts queue=%d service=%d, want both > 0", qw.Count, svc.Count)
	}
	if qw.P99NS <= svc.P99NS {
		t.Errorf("past the knee queue_wait p99 (%g ns) should exceed service p99 (%g ns)",
			qw.P99NS, svc.P99NS)
	}
	if qw.P99NS < 0.5*total.P99NS {
		t.Errorf("queue_wait p99 (%g ns) should dominate total p99 (%g ns)",
			qw.P99NS, total.P99NS)
	}
	// Overload also means sheds, and the phase metrics surface in the
	// trial's metric map.
	if run.Sheds == 0 {
		t.Error("expected sheds past the knee")
	}
	m := res.Trials[0].Metrics
	if m["phase_queue_wait_p99_ns"] != qw.P99NS {
		t.Errorf("metric phase_queue_wait_p99_ns = %g, want %g",
			m["phase_queue_wait_p99_ns"], qw.P99NS)
	}
}

// The trace stream must be byte-identical at any -parallel width: spans
// and samples derive only from sim time, and the harness emits entries in
// input order regardless of schedule.
func TestTraceParallelByteIdentical(t *testing.T) {
	mkSpecs := func() []harness.Spec {
		return []harness.Spec{
			{Scenario: "service/batch/point", Duration: 150 * sim.Microsecond, Trace: true},
			{Scenario: "service/kv/pmemkv", Duration: 150 * sim.Microsecond, Trace: true},
			{Scenario: "service/cache/point", Duration: 150 * sim.Microsecond, Trace: true},
		}
	}
	render := func(parallel int) []byte {
		var entries []telemetry.TraceEntry
		for _, sr := range harness.RunSpecs(mkSpecs(), parallel) {
			if sr.Err != nil {
				t.Fatal(sr.Err)
			}
			for ti := range sr.Result.Trials {
				if tr := sr.Result.Trials[ti].Trace; tr != nil {
					entries = append(entries, telemetry.TraceEntry{
						Scenario: sr.Result.Name, Trial: ti, Trace: tr,
					})
				}
			}
		}
		var buf bytes.Buffer
		if err := telemetry.WriteJSONL(&buf, entries); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, wide := render(1), render(8)
	if !bytes.Equal(serial, wide) {
		t.Fatal("trace stream differs between -parallel=1 and -parallel=8")
	}
}

// Turning tracing on must not move a single untraced metric: the recorder
// only observes. Every key the untraced run emits must appear unchanged in
// the traced run (which adds phase_* keys on top).
func TestTracedResultsMatchUntraced(t *testing.T) {
	spec := harness.Spec{
		Scenario: "service/batch/point",
		Duration: 150 * sim.Microsecond,
	}
	off := runTraced(t, spec, 1)
	spec.Trace = true
	on := runTraced(t, spec, 1)
	mOff, mOn := off.Trials[0].Metrics, on.Trials[0].Metrics
	for k, v := range mOff {
		if mOn[k] != v {
			t.Errorf("metric %s moved under tracing: %g -> %g", k, v, mOn[k])
		}
	}
	if off.Trials[0].Ops != on.Trials[0].Ops {
		t.Errorf("ops moved under tracing: %d -> %d", off.Trials[0].Ops, on.Trials[0].Ops)
	}
	if !reflect.DeepEqual(off.Trials[0].Latency.Quantiles([]float64{0.5, 0.99}),
		on.Trials[0].Latency.Quantiles([]float64{0.5, 0.99})) {
		t.Error("latency distribution moved under tracing")
	}
	if on.Trials[0].Trace == nil || off.Trials[0].Trace != nil {
		t.Error("trace presence does not track the Trace flag")
	}
	// The batched run's spans must carry batch attribution and a persist
	// phase (the group-commit fence).
	run := on.Trials[0].Trace.Runs[0]
	if ps := run.Phase("batch_wait"); ps.Count == 0 {
		t.Error("batched run recorded no batch_wait phase")
	}
	if ps := run.Phase("persist"); ps.Count == 0 {
		t.Error("batched logged run recorded no persist phase")
	}
	var batched bool
	for _, s := range run.Slowest {
		if s.Batch > 0 {
			batched = true
		}
	}
	if !batched {
		t.Error("no slow op carries a batch id on the batched path")
	}
}
