package service

import (
	"fmt"
	"strconv"
	"strings"

	"optanestudy/internal/harness"
	"optanestudy/internal/sim"
	"optanestudy/internal/telemetry"
)

// SweepConfig bounds one load sweep: the point scenario to drive, the
// offered-load grid, and the knobs shared by every point. Each point is
// one harness trial of the "service/kv/<backend>" scenario, so sweeps and
// single-point CLI runs can never disagree on how a load level is
// measured, and the points fan out across Parallel workers with seeds
// derived from each point's resolved spec — the curve is identical at any
// pool width.
type SweepConfig struct {
	// Backend is "pmemkv" or "lsmkv".
	Backend string
	// Scenario is the point scenario the sweep drives; empty means
	// "service/kv/"+Backend. The cluster layer points it at its own
	// shard-aware point scenario ("cluster/point") to reuse the identical
	// grid/knee machinery.
	Scenario string
	// Params are extra point-scenario params (media, arrival, mix, ...).
	Params map[string]string
	// Threads is the worker-pool size at every point.
	Threads int
	// Duration and Warmup are the per-point measured window and warmup.
	Duration sim.Time
	Warmup   sim.Time
	Seed     uint64
	// MinKops to MaxKops in Points linear steps is the offered-load grid
	// (thousands of ops per simulated second).
	MinKops, MaxKops float64
	Points           int
	// Parallel is the worker-pool width the sweep's trials fan out over
	// (0 = GOMAXPROCS).
	Parallel int
	// Trace asks every point trial to record phase spans and a timeline;
	// each Point then carries its trial's Trace. Non-identity, like
	// Parallel: point seeds and results are unchanged.
	Trace bool
}

// Point is one load level's outcome.
type Point struct {
	// OfferedKops is the requested load (the grid coordinate); GenKops is
	// what the arrival process actually generated over the window.
	OfferedKops float64
	GenKops     float64
	// AchievedKops is the completed-request rate.
	AchievedKops float64
	// DropFrac is the shed fraction of offered requests.
	DropFrac float64
	// P50/P95/P99/P999 are end-to-end latency percentiles in ns.
	P50, P95, P99, P999 float64
	// Util is the worker pool's busy fraction.
	Util float64
	// Metrics is the point trial's full metric map (per-tenant shed
	// counts, per-shard breakdowns, ...) for callers that aggregate more
	// than the curve fields.
	Metrics map[string]float64
	// Trace is the point trial's recording, present only on traced sweeps
	// (SweepConfig.Trace).
	Trace *telemetry.Trace
}

// Curve is a throughput-latency curve, in ascending offered-load order.
type Curve []Point

// Grid returns the sweep's offered-load grid in kops.
func (sc SweepConfig) Grid() []float64 {
	n := sc.Points
	if n < 2 {
		n = 2
	}
	grid := make([]float64, n)
	step := (sc.MaxKops - sc.MinKops) / float64(n-1)
	for i := range grid {
		grid[i] = sc.MinKops + float64(i)*step
	}
	return grid
}

// RunSweep measures the curve.
func RunSweep(sc SweepConfig) (Curve, error) {
	if sc.Backend == "" {
		sc.Backend = "pmemkv"
	}
	if sc.Scenario == "" {
		sc.Scenario = "service/kv/" + sc.Backend
	}
	if sc.MinKops <= 0 || sc.MaxKops < sc.MinKops {
		return nil, fmt.Errorf("service: bad sweep grid [%g, %g]", sc.MinKops, sc.MaxKops)
	}
	grid := sc.Grid()
	specs := make([]harness.Spec, len(grid))
	for i, kops := range grid {
		params := make(map[string]string, len(sc.Params)+1)
		for k, v := range sc.Params {
			params[k] = v
		}
		params["offered"] = strconv.FormatFloat(kops, 'g', -1, 64)
		specs[i] = harness.Spec{
			Scenario: sc.Scenario,
			Params:   params,
			Threads:  sc.Threads,
			Duration: sc.Duration,
			Warmup:   sc.Warmup,
			Seed:     sc.Seed,
			Trace:    sc.Trace,
		}
	}
	curve := make(Curve, len(grid))
	for i, sr := range harness.RunSpecs(specs, sc.Parallel) {
		if sr.Err != nil {
			return nil, sr.Err
		}
		m := sr.Result.Trials[0].Metrics
		curve[i] = Point{
			OfferedKops:  grid[i],
			GenKops:      m["offered_kops"],
			AchievedKops: m["achieved_kops"],
			DropFrac:     m["drop_frac"],
			P50:          m["p50_ns"],
			P95:          m["p95_ns"],
			P99:          m["p99_ns"],
			P999:         m["p999_ns"],
			Util:         m["util"],
			Metrics:      m,
			Trace:        sr.Result.Trials[0].Trace,
		}
	}
	return curve, nil
}

// GridParams consumes the sweep grid params ("minkops", "maxkops",
// "points") from params — leaving everything else for the point scenario —
// and returns the grid bounds, falling back to the given defaults. Both
// the service and cluster sweep scenarios parse their grids through this
// one helper so they can never drift.
func GridParams(params map[string]string, defMin, defMax, defPoints float64) (minKops, maxKops, points float64, err error) {
	take := func(key string, def float64) (float64, error) {
		v, ok := params[key]
		if !ok {
			return def, nil
		}
		delete(params, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("param %s=%q: not a valid float", key, v)
		}
		return f, nil
	}
	if minKops, err = take("minkops", defMin); err != nil {
		return 0, 0, 0, err
	}
	if maxKops, err = take("maxkops", defMax); err != nil {
		return 0, 0, 0, err
	}
	if points, err = take("points", defPoints); err != nil {
		return 0, 0, 0, err
	}
	return minKops, maxKops, points, nil
}

// EmitCurve folds one measured curve into a trial: the knee and saturation
// summary plus per-point achieved/p99 metrics, all under an optional key
// suffix (used when one scenario races several grids), counting one op per
// point.
func EmitCurve(tr *harness.Trial, c Curve, suffix string) {
	knee := c.KneeIndex()
	tr.Metrics["knee_kops"+suffix] = c[knee].OfferedKops
	tr.Metrics["sat_kops"+suffix] = c.SaturationKops()
	tr.Metrics["p99_knee_ns"+suffix] = c[knee].P99
	tr.Metrics["p99_max_ns"+suffix] = c[len(c)-1].P99
	for _, pt := range c {
		tr.Metrics[fmt.Sprintf("achieved@%g%s", pt.OfferedKops, suffix)] = pt.AchievedKops
		tr.Metrics[fmt.Sprintf("p99@%g%s", pt.OfferedKops, suffix)] = pt.P99
		tr.Ops++
	}
}

// KneeIndex locates the saturation knee: the last grid point still keeping
// up with the load its arrival process actually generated (achieved ≥ 95%
// of generated — a Poisson process undershoots its nominal rate at light
// load, which must not read as saturation). Past the knee the platform
// sheds load and achieved throughput flattens while tail latency climbs.
// Returns 0 if even the first point is saturated.
func (c Curve) KneeIndex() int {
	for i, pt := range c {
		if pt.AchievedKops < 0.95*pt.GenKops {
			if i == 0 {
				return 0
			}
			return i - 1
		}
	}
	return len(c) - 1
}

// SaturationKops returns the maximum achieved throughput on the curve.
func (c Curve) SaturationKops() float64 {
	var max float64
	for _, pt := range c {
		if pt.AchievedKops > max {
			max = pt.AchievedKops
		}
	}
	return max
}

// TSV renders the curve as a figure-style table.
func (c Curve) TSV(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	b.WriteString("offered_kops\tachieved_kops\tdrop_frac\tp50_ns\tp95_ns\tp99_ns\tp999_ns\tutil\n")
	for _, pt := range c {
		fmt.Fprintf(&b, "%g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
			pt.OfferedKops, pt.AchievedKops, pt.DropFrac,
			pt.P50, pt.P95, pt.P99, pt.P999, pt.Util)
	}
	return b.String()
}
