package service

import (
	"encoding/binary"
	"fmt"

	"optanestudy/internal/lsmkv"
	"optanestudy/internal/memmode"
	"optanestudy/internal/platform"
	"optanestudy/internal/pmemkv"
	"optanestudy/internal/pmemobj"
	"optanestudy/internal/topology"
)

// Backend is the KV engine a frontend serves requests against. Both
// implementations execute against a simulated platform through a worker's
// memory context, so service time is the engine's real (simulated) memory
// cost and queueing delay composes with it into end-to-end latency.
type Backend interface {
	Get(ctx *platform.MemCtx, key []byte) ([]byte, bool)
	Put(ctx *platform.MemCtx, key, val []byte) error
	// Scan reads up to n records in key order starting at key, returning
	// how many it touched. lsmkv serves it natively (a sorted memtable +
	// SST merge walk); pmemkv has no ordered iterator and emulates it with
	// n point lookups of the successive key ids, wrapping inside the
	// preloaded keyspace shard.
	Scan(ctx *platform.MemCtx, key []byte, n int) int
	// Delete removes key (blind tombstone write for lsmkv, chain unlink
	// for pmemkv).
	Delete(ctx *platform.MemCtx, key []byte) error
}

// BufferGetter is the allocation-free read path a Backend may additionally
// implement: the value lands in the caller's buffer (its full length is
// returned) instead of a freshly allocated slice. The dispatch hot path
// prefers it — a GET against a BufferGetter backend reads into the worker's
// scratch and stays off the Go heap, which is what keeps the steady-state
// dispatch loop at zero allocations per op. The bytes moved through the
// simulated hierarchy are identical to Get, so timing does not change.
type BufferGetter interface {
	GetInto(ctx *platform.MemCtx, key, dst []byte) (int, bool)
}

// KeyFor renders the fixed-width key for a global key id, matching the
// layout the backends are preloaded with.
func KeyFor(id int64, size int) []byte {
	k := make([]byte, size)
	KeyInto(k, id)
	return k
}

// KeyInto renders the key for id into k (len(k) is the key size) without
// allocating — the dispatch hot path's variant. Backends copy key bytes
// on insert, so callers may reuse k across requests.
func KeyInto(k []byte, id int64) {
	binary.LittleEndian.PutUint64(k, uint64(id))
	for i := 8; i < len(k); i++ {
		k[i] = byte('k' + (id+int64(i))%13)
	}
}

// KeyID recovers the global key id a KeyFor key encodes.
func KeyID(key []byte) int64 {
	return int64(binary.LittleEndian.Uint64(key))
}

// ValFor renders a deterministic value for a key id.
func ValFor(id int64, size int) []byte {
	v := make([]byte, size)
	ValInto(v, id)
	return v
}

// ValInto renders the value for id into v without allocating, the
// counterpart of KeyInto.
func ValInto(v []byte, id int64) {
	binary.LittleEndian.PutUint64(v, uint64(id)*2654435761+1)
	for i := 8; i < len(v); i++ {
		v[i] = 0
	}
}

// BackendSpec configures a preloaded backend.
type BackendSpec struct {
	// Media places the store: "optane" (interleaved), "optane-ni" (a single
	// DIMM — the contention-study placement) or "dram".
	Media string
	// Socket is the socket whose DIMMs back the namespaces (and where the
	// preload thread runs). Serving threads elsewhere pay the UPI remote
	// penalty.
	Socket int
	// Channels optionally pins the store to an explicit DIMM set on Socket
	// (interleave order); nil keeps the Media-derived default (all channels
	// for "optane"/"dram", channel 0 for "optane-ni"). Cluster placement
	// policies use this to carve per-shard DIMM sets.
	Channels []int
	// NamePrefix distinguishes the backing namespaces when several backends
	// share a platform (one per shard); empty means "serve".
	NamePrefix string
	// Mode selects the lsmkv persistence strategy ("wal-posix", "wal-flex"
	// or "pmem-memtable"); ignored by pmemkv.
	Mode string
	// Keys is the number of key ids preloaded (every tenant keyspace must
	// fall inside [0, Keys)).
	Keys             int64
	KeySize, ValSize int
	// PMBytes and DRAMBytes size the backing namespaces (defaults 128 MiB
	// and 64 MiB); validated against the preloaded payload.
	PMBytes, DRAMBytes int64
	// ScanSpan is the key-id span an emulated scan wraps within (the
	// per-tenant keyspace shard); 0 means the whole [0, Keys) range.
	ScanSpan int64
	// NativeScan routes lsmkv scans through the sorted merge iterator
	// instead of the emulated point-lookup loop.
	NativeScan bool
	// NearBytes sizes the near-DRAM hardware cache of the "memmode"
	// backend (ignored by the others).
	NearBytes int64
}

// lsmkvMemtableBytes is the serving backends' memtable cap.
const lsmkvMemtableBytes = 8 << 20

// normalize fills defaults and validates the namespace budget against the
// preloaded payload.
func (bs *BackendSpec) normalize() error {
	if bs.NamePrefix == "" {
		bs.NamePrefix = "serve"
	}
	if bs.PMBytes == 0 {
		bs.PMBytes = 128 << 20
	}
	if bs.DRAMBytes == 0 {
		bs.DRAMBytes = 64 << 20
	}
	if bs.ScanSpan == 0 {
		bs.ScanSpan = bs.Keys
	}
	if bs.Keys > 0 {
		payload := bs.Keys * int64(bs.KeySize+bs.ValSize)
		if bs.PMBytes < payload {
			return fmt.Errorf("service: pm namespace (%d bytes) smaller than the %d-byte preloaded payload (%d keys × %d bytes)",
				bs.PMBytes, payload, bs.Keys, bs.KeySize+bs.ValSize)
		}
	}
	return nil
}

// namespace carves the PM namespace on the spec's (socket, DIMM-set)
// placement; callers normalize the spec first (NewAppendLog included), so
// PMBytes and NamePrefix are always set here.
func (bs BackendSpec) namespace(p *platform.Platform, suffix string) (*platform.Namespace, error) {
	spec := topology.Spec{
		Name:     bs.NamePrefix + suffix,
		Socket:   bs.Socket,
		Size:     bs.PMBytes,
		Channels: bs.Channels,
	}
	switch bs.Media {
	case "optane":
		spec.Media = topology.MediaXP
	case "optane-ni":
		spec.Media = topology.MediaXP
		if spec.Channels == nil {
			spec.Channels = []int{0}
		}
		if len(spec.Channels) != 1 {
			return nil, fmt.Errorf("service: optane-ni wants exactly one channel, got %v", spec.Channels)
		}
	case "dram":
		spec.Media = topology.MediaDRAM
	default:
		return nil, fmt.Errorf("service: unknown media %q (want optane, optane-ni or dram)", bs.Media)
	}
	return p.CreateNamespace(spec)
}

// emulateScan is the shared emulated range read: n point lookups of the
// successive key ids, wrapping inside the shard that owns the start key.
func emulateScan(ctx *platform.MemCtx, get func(*platform.MemCtx, []byte) ([]byte, bool), start []byte, n int, span int64, keySize int) int {
	id := KeyID(start)
	base := id
	if span > 0 {
		base = id / span * span
	}
	for i := 0; i < n; i++ {
		next := id + int64(i)
		if span > 0 {
			next = base + (id-base+int64(i))%span
		}
		get(ctx, KeyFor(next, keySize))
	}
	return n
}

// cmapBackend adapts pmemkv.CMap, carrying the key geometry its emulated
// scans need.
type cmapBackend struct {
	m       *pmemkv.CMap
	span    int64
	keySize int
}

func (b *cmapBackend) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	return b.m.Get(ctx, key)
}

func (b *cmapBackend) GetInto(ctx *platform.MemCtx, key, dst []byte) (int, bool) {
	return b.m.GetInto(ctx, key, dst)
}

func (b *cmapBackend) Put(ctx *platform.MemCtx, key, val []byte) error {
	return b.m.Put(ctx, key, val)
}

func (b *cmapBackend) Scan(ctx *platform.MemCtx, key []byte, n int) int {
	return emulateScan(ctx, b.m.Get, key, n, b.span, b.keySize)
}

func (b *cmapBackend) Delete(ctx *platform.MemCtx, key []byte) error {
	b.m.Delete(ctx, key)
	return nil
}

// NewPMemKV builds a pmemkv cmap on the platform and preloads every key.
// The load phase runs on its own simulated thread before serving starts.
func NewPMemKV(p *platform.Platform, bs BackendSpec) (Backend, error) {
	if err := bs.normalize(); err != nil {
		return nil, err
	}
	ns, err := bs.namespace(p, "-kv")
	if err != nil {
		return nil, err
	}
	pool, err := pmemobj.Create(ns)
	if err != nil {
		return nil, err
	}
	var m *pmemkv.CMap
	var loadErr error
	p.Go(bs.NamePrefix+"-load", bs.Socket, func(ctx *platform.MemCtx) {
		m, loadErr = pmemkv.CreateCMap(ctx, pool, int(bs.Keys)*2)
		if loadErr != nil {
			return
		}
		for id := int64(0); id < bs.Keys; id++ {
			if err := m.Put(ctx, KeyFor(id, bs.KeySize), ValFor(id, bs.ValSize)); err != nil {
				loadErr = err
				return
			}
		}
	})
	p.Run()
	if loadErr != nil {
		return nil, loadErr
	}
	return &cmapBackend{m: m, span: bs.ScanSpan, keySize: bs.KeySize}, nil
}

// lsmBackend adapts lsmkv.DB: a service PUT is a durable SET, a DELETE is
// a tombstone write, and a SCAN is either the native sorted merge walk or
// the emulated point-lookup loop.
type lsmBackend struct {
	db      *lsmkv.DB
	span    int64
	keySize int
	native  bool
}

func (b *lsmBackend) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	return b.db.Get(ctx, key)
}

func (b *lsmBackend) GetInto(ctx *platform.MemCtx, key, dst []byte) (int, bool) {
	return b.db.GetInto(ctx, key, dst)
}

func (b *lsmBackend) Put(ctx *platform.MemCtx, key, val []byte) error {
	return b.db.Set(ctx, key, val)
}

func (b *lsmBackend) Scan(ctx *platform.MemCtx, key []byte, n int) int {
	if b.native {
		return b.db.Scan(ctx, key, n, func(_, _ []byte) bool { return true })
	}
	return emulateScan(ctx, b.db.Get, key, n, b.span, b.keySize)
}

func (b *lsmBackend) Delete(ctx *platform.MemCtx, key []byte) error {
	return b.db.Delete(ctx, key)
}

// NewLSMKV builds an lsmkv database on the platform and preloads every key.
func NewLSMKV(p *platform.Platform, bs BackendSpec) (Backend, error) {
	if err := bs.normalize(); err != nil {
		return nil, err
	}
	if bs.DRAMBytes < lsmkvMemtableBytes {
		return nil, fmt.Errorf("service: dram namespace (%d bytes) smaller than the %d-byte memtable",
			bs.DRAMBytes, int64(lsmkvMemtableBytes))
	}
	var mode lsmkv.Mode
	switch bs.Mode {
	case "wal-posix":
		mode = lsmkv.ModeWALPOSIX
	case "wal-flex", "":
		mode = lsmkv.ModeWALFLEX
	case "pmem-memtable":
		mode = lsmkv.ModePersistentMemtable
	default:
		return nil, fmt.Errorf("service: unknown lsmkv mode %q", bs.Mode)
	}
	pm, err := bs.namespace(p, "-pm")
	if err != nil {
		return nil, err
	}
	dram, err := p.DRAM(bs.NamePrefix+"-mem", bs.Socket, bs.DRAMBytes)
	if err != nil {
		return nil, err
	}
	var db *lsmkv.DB
	var loadErr error
	p.Go(bs.NamePrefix+"-load", bs.Socket, func(ctx *platform.MemCtx) {
		db, loadErr = lsmkv.Open(ctx, lsmkv.Options{
			Mode: mode, PM: pm, DRAM: dram, MemtableBytes: lsmkvMemtableBytes, Seed: 5,
		})
		if loadErr != nil {
			return
		}
		for id := int64(0); id < bs.Keys; id++ {
			if err := db.Set(ctx, KeyFor(id, bs.KeySize), ValFor(id, bs.ValSize)); err != nil {
				loadErr = err
				return
			}
		}
	})
	p.Run()
	if loadErr != nil {
		return nil, loadErr
	}
	return &lsmBackend{db: db, span: bs.ScanSpan, keySize: bs.KeySize, native: bs.NativeScan}, nil
}

// memModeBackend is the Memory-Mode configuration of the serving
// experiment: the whole record store lives in one large volatile address
// space — far 3D XPoint behind the memory controller's direct-mapped
// near-DRAM cache — so DRAM caching is done by hardware at 64 B line
// granularity instead of by an explicit software hot tier, and nothing is
// durable (Section 2.1.2). Records sit flat at id × valSize; presence is
// volatile bookkeeping, mirroring a hash-index-in-main-memory design whose
// index probes are free (the axis under study is the data path).
type memModeBackend struct {
	mm      *memmode.Memory
	keys    int64
	keySize int
	valSize int
	span    int64
	present []bool
}

func (b *memModeBackend) recOff(id int64) int64 { return id * int64(b.valSize) }

func (b *memModeBackend) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	id := KeyID(key)
	if id < 0 || id >= b.keys || !b.present[id] {
		return nil, false
	}
	val := make([]byte, b.valSize)
	b.mm.Load(ctx, b.recOff(id), len(val), val)
	return val, true
}

func (b *memModeBackend) GetInto(ctx *platform.MemCtx, key, dst []byte) (int, bool) {
	id := KeyID(key)
	if id < 0 || id >= b.keys || !b.present[id] {
		return 0, false
	}
	val := dst
	if b.valSize > len(dst) {
		val = make([]byte, b.valSize)
	} else {
		val = dst[:b.valSize]
	}
	b.mm.Load(ctx, b.recOff(id), len(val), val)
	if b.valSize > len(dst) {
		copy(dst, val)
	}
	return b.valSize, true
}

func (b *memModeBackend) Put(ctx *platform.MemCtx, key, val []byte) error {
	id := KeyID(key)
	if id < 0 || id >= b.keys {
		return fmt.Errorf("service: memmode key id %d outside the preloaded [0, %d) range", id, b.keys)
	}
	if len(val) > b.valSize {
		return fmt.Errorf("service: memmode value (%d bytes) exceeds the %d-byte record", len(val), b.valSize)
	}
	b.mm.Store(ctx, b.recOff(id), len(val), val)
	b.present[id] = true
	return nil
}

func (b *memModeBackend) Scan(ctx *platform.MemCtx, key []byte, n int) int {
	return emulateScan(ctx, b.Get, key, n, b.span, b.keySize)
}

func (b *memModeBackend) Delete(ctx *platform.MemCtx, key []byte) error {
	id := KeyID(key)
	if id >= 0 && id < b.keys {
		b.present[id] = false
	}
	return nil
}

// Stats exposes the hardware cache counters for the harness metrics.
func (b *memModeBackend) Stats() *memmode.Memory { return b.mm }

// NewMemModeKV builds the Memory-Mode record store, preloaded like the
// persistent backends. bs.NearBytes sizes the near-DRAM cache; the far
// region holds the whole record payload.
func NewMemModeKV(p *platform.Platform, bs BackendSpec) (Backend, error) {
	if err := bs.normalize(); err != nil {
		return nil, err
	}
	if bs.NearBytes <= 0 {
		return nil, fmt.Errorf("service: memmode backend needs a positive near-DRAM size, got %d", bs.NearBytes)
	}
	far := bs.Keys * int64(bs.ValSize)
	if far < bs.NearBytes {
		far = bs.NearBytes // memmode requires far >= near
	}
	mm, err := memmode.New(p, bs.NamePrefix+"-mm", bs.Socket, bs.NearBytes, far)
	if err != nil {
		return nil, err
	}
	b := &memModeBackend{
		mm: mm, keys: bs.Keys, keySize: bs.KeySize, valSize: bs.ValSize,
		span: bs.ScanSpan, present: make([]bool, bs.Keys),
	}
	var loadErr error
	p.Go(bs.NamePrefix+"-load", bs.Socket, func(ctx *platform.MemCtx) {
		for id := int64(0); id < bs.Keys; id++ {
			if err := b.Put(ctx, KeyFor(id, bs.KeySize), ValFor(id, bs.ValSize)); err != nil {
				loadErr = err
				return
			}
		}
	})
	p.Run()
	if loadErr != nil {
		return nil, loadErr
	}
	return b, nil
}

// NewBackend builds the named backend ("pmemkv", "lsmkv" or "memmode"),
// preloaded.
func NewBackend(p *platform.Platform, name string, bs BackendSpec) (Backend, error) {
	switch name {
	case "pmemkv":
		return NewPMemKV(p, bs)
	case "lsmkv":
		return NewLSMKV(p, bs)
	case "memmode":
		return NewMemModeKV(p, bs)
	default:
		return nil, fmt.Errorf("service: unknown backend %q (want pmemkv, lsmkv or memmode)", name)
	}
}
