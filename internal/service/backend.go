package service

import (
	"encoding/binary"
	"fmt"

	"optanestudy/internal/lsmkv"
	"optanestudy/internal/platform"
	"optanestudy/internal/pmemkv"
	"optanestudy/internal/pmemobj"
)

// Backend is the KV engine a frontend serves requests against. Both
// implementations execute against a simulated platform through a worker's
// memory context, so service time is the engine's real (simulated) memory
// cost and queueing delay composes with it into end-to-end latency.
type Backend interface {
	Get(ctx *platform.MemCtx, key []byte) ([]byte, bool)
	Put(ctx *platform.MemCtx, key, val []byte) error
}

// KeyFor renders the fixed-width key for a global key id, matching the
// layout the backends are preloaded with.
func KeyFor(id int64, size int) []byte {
	k := make([]byte, size)
	binary.LittleEndian.PutUint64(k, uint64(id))
	for i := 8; i < size; i++ {
		k[i] = byte('k' + (id+int64(i))%13)
	}
	return k
}

// ValFor renders a deterministic value for a key id.
func ValFor(id int64, size int) []byte {
	v := make([]byte, size)
	binary.LittleEndian.PutUint64(v, uint64(id)*2654435761+1)
	return v
}

// BackendSpec configures a preloaded backend.
type BackendSpec struct {
	// Media places the store: "optane" (interleaved), "optane-ni" (a single
	// DIMM — the contention-study placement) or "dram".
	Media string
	// Mode selects the lsmkv persistence strategy ("wal-posix", "wal-flex"
	// or "pmem-memtable"); ignored by pmemkv.
	Mode string
	// Keys is the number of key ids preloaded (every tenant keyspace must
	// fall inside [0, Keys)).
	Keys             int64
	KeySize, ValSize int
}

func (bs BackendSpec) namespace(p *platform.Platform, name string) (*platform.Namespace, error) {
	switch bs.Media {
	case "optane":
		return p.Optane(name, 0, 128<<20)
	case "optane-ni":
		return p.OptaneNI(name, 0, 0, 128<<20)
	case "dram":
		return p.DRAM(name, 0, 128<<20)
	default:
		return nil, fmt.Errorf("service: unknown media %q (want optane, optane-ni or dram)", bs.Media)
	}
}

// NewPMemKV builds a pmemkv cmap on the platform and preloads every key.
// The load phase runs on its own simulated thread before serving starts.
func NewPMemKV(p *platform.Platform, bs BackendSpec) (Backend, error) {
	ns, err := bs.namespace(p, "serve-kv")
	if err != nil {
		return nil, err
	}
	pool, err := pmemobj.Create(ns)
	if err != nil {
		return nil, err
	}
	var m *pmemkv.CMap
	var loadErr error
	p.Go("serve-load", 0, func(ctx *platform.MemCtx) {
		m, loadErr = pmemkv.CreateCMap(ctx, pool, int(bs.Keys)*2)
		if loadErr != nil {
			return
		}
		for id := int64(0); id < bs.Keys; id++ {
			if err := m.Put(ctx, KeyFor(id, bs.KeySize), ValFor(id, bs.ValSize)); err != nil {
				loadErr = err
				return
			}
		}
	})
	p.Run()
	if loadErr != nil {
		return nil, loadErr
	}
	return m, nil
}

// lsmBackend adapts lsmkv.DB: a service PUT is a durable SET.
type lsmBackend struct {
	db *lsmkv.DB
}

func (b *lsmBackend) Get(ctx *platform.MemCtx, key []byte) ([]byte, bool) {
	return b.db.Get(ctx, key)
}

func (b *lsmBackend) Put(ctx *platform.MemCtx, key, val []byte) error {
	return b.db.Set(ctx, key, val)
}

// NewLSMKV builds an lsmkv database on the platform and preloads every key.
func NewLSMKV(p *platform.Platform, bs BackendSpec) (Backend, error) {
	var mode lsmkv.Mode
	switch bs.Mode {
	case "wal-posix":
		mode = lsmkv.ModeWALPOSIX
	case "wal-flex", "":
		mode = lsmkv.ModeWALFLEX
	case "pmem-memtable":
		mode = lsmkv.ModePersistentMemtable
	default:
		return nil, fmt.Errorf("service: unknown lsmkv mode %q", bs.Mode)
	}
	pm, err := bs.namespace(p, "serve-pm")
	if err != nil {
		return nil, err
	}
	dram, err := p.DRAM("serve-mem", 0, 64<<20)
	if err != nil {
		return nil, err
	}
	var db *lsmkv.DB
	var loadErr error
	p.Go("serve-load", 0, func(ctx *platform.MemCtx) {
		db, loadErr = lsmkv.Open(ctx, lsmkv.Options{
			Mode: mode, PM: pm, DRAM: dram, MemtableBytes: 8 << 20, Seed: 5,
		})
		if loadErr != nil {
			return
		}
		for id := int64(0); id < bs.Keys; id++ {
			if err := db.Set(ctx, KeyFor(id, bs.KeySize), ValFor(id, bs.ValSize)); err != nil {
				loadErr = err
				return
			}
		}
	})
	p.Run()
	if loadErr != nil {
		return nil, loadErr
	}
	return &lsmBackend{db: db}, nil
}

// NewBackend builds the named backend ("pmemkv" or "lsmkv"), preloaded.
func NewBackend(p *platform.Platform, name string, bs BackendSpec) (Backend, error) {
	switch name {
	case "pmemkv":
		return NewPMemKV(p, bs)
	case "lsmkv":
		return NewLSMKV(p, bs)
	default:
		return nil, fmt.Errorf("service: unknown backend %q (want pmemkv or lsmkv)", name)
	}
}
