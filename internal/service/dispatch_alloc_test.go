package service

import (
	"fmt"
	"testing"

	"optanestudy/internal/hottier"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
)

// dispatchHarness drives the batched worker internals — push, popN,
// executeBatch — exactly as the group-commit worker loop does, so the
// allocation behavior it measures is the steady-state dispatch path's.
type dispatchHarness struct {
	p     *platform.Platform
	cfg   Config
	shard Shard
	st    *serveState
	sh    *shardState
	sc    *opScratch
	batch []request
	n     int64
}

func newDispatchHarness(tb testing.TB, batchSize int) *dispatchHarness {
	return newDispatchHarnessOpts(tb, batchSize, "pmemkv", 0)
}

// newDispatchHarnessOpts builds the harness over a chosen backend, optionally
// fronted by a DRAM hot tier of cacheBytes (0 = uncached). cacheBytes large
// enough for the whole 400-record keyspace pins the cached-HIT path;
// smaller caches keep the tier churning and pin the miss-FILL path
// (victim scan, detach, NT slot install) instead.
func newDispatchHarnessOpts(tb testing.TB, batchSize int, backend string, cacheBytes int64) *dispatchHarness {
	tb.Helper()
	pcfg := platform.DefaultConfig()
	pcfg.TrackData = true
	pcfg.XP.Wear.Enabled = false
	p := platform.MustNew(pcfg)
	tb.Cleanup(p.Close)
	spec := BackendSpec{Media: "optane", Keys: 400, KeySize: 16, ValSize: 128, ScanSpan: 200}
	be, err := NewBackend(p, backend, spec)
	if err != nil {
		tb.Fatal(err)
	}
	if cacheBytes > 0 {
		tier, err := hottier.New(p, be, hottier.Config{
			Name: "dispatch", CapacityBytes: cacheBytes, RecordBytes: spec.ValSize,
			TenantSpan: spec.Keys, Seed: 7,
		})
		if err != nil {
			tb.Fatal(err)
		}
		be = tier
	}
	plog, err := NewAppendLog(p, BackendSpec{Media: "optane", NamePrefix: "dispatch-log"}, 1, 1<<20)
	if err != nil {
		tb.Fatal(err)
	}
	h := &dispatchHarness{
		p: p,
		cfg: Config{
			KeySize: spec.KeySize, ValSize: spec.ValSize, ScanLen: 16,
			BatchSize: batchSize,
		},
		shard: Shard{Backend: be, Workers: 1, PutLog: plog},
		st: &serveState{
			shards:  make([]shardState, 1),
			tenants: []TenantStats{{Name: "t", Latency: stats.NewHistogram()}},
		},
		sc:    newOpScratch(Config{KeySize: spec.KeySize, ValSize: spec.ValSize}),
		batch: make([]request, 0, batchSize),
	}
	h.st.shards[0] = shardState{
		occ:     sim.NewBoundedQueue(32 * batchSize),
		latency: stats.NewHistogram(),
	}
	h.sh = &h.st.shards[0]
	return h
}

// step is one worker wakeup: admit a full group (a 0.7/0.3 put/get mix over
// a rolling key window), drain it, and execute it as one group commit.
func (h *dispatchHarness) step(ctx *platform.MemCtx) error {
	proc := ctx.Proc()
	now := proc.Now()
	for i := 0; i < h.cfg.BatchSize; i++ {
		h.n++
		op := OpPut
		if h.n%10 < 3 {
			op = OpGet
		}
		h.sh.push(request{
			tenant: 0, op: op, key: h.n * 31 % 400,
			arrival: now, measured: true,
		})
	}
	h.batch = h.sh.popN(proc.Now(), h.cfg.BatchSize, h.batch[:0])
	return executeBatch(ctx, h.cfg, &h.shard, 0, h.batch, h.sc, h.sh, h.st)
}

// The steady-state batched dispatch path — admission, batch drain, key and
// value rendering, backend reads, group-commit journaling, latency
// recording — must not allocate. Warmup lets every amortized structure
// (queue rings, the appender's staging mirror, histogram buckets, load
// windows, the XPBuffer's entry pool) reach its high-water mark; after
// that, a dispatched op that touches the Go heap is a regression.
func TestDispatchZeroAlloc(t *testing.T) {
	// cached-hit: the tier holds the whole keyspace, so warmed-up GETs stay
	// in DRAM. miss-fill: the tier holds 1/4 of it, so steady state keeps
	// evicting and installing slots. lsmkv pins DB.GetInto (memtable probe
	// + SST binary search into the per-DB scratch).
	variants := []struct {
		name    string
		backend string
		cache   int64
	}{
		{"pmemkv", "pmemkv", 0},
		{"cached-hit", "pmemkv", 400 * 128},
		{"miss-fill", "pmemkv", 100 * 128},
		{"lsmkv-getinto", "lsmkv", 0},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			h := newDispatchHarnessOpts(t, 8, v.backend, v.cache)
			var avg float64
			var stepErr error
			h.p.Go("dispatch", 0, func(ctx *platform.MemCtx) {
				for i := 0; i < 400; i++ { // warmup: past the queue-ring trim cycle
					if stepErr = h.step(ctx); stepErr != nil {
						return
					}
				}
				avg = testing.AllocsPerRun(100, func() {
					if err := h.step(ctx); err != nil && stepErr == nil {
						stepErr = err
					}
				})
			})
			h.p.Run()
			if stepErr != nil {
				t.Fatal(stepErr)
			}
			if avg != 0 {
				t.Fatalf("steady-state dispatch allocates: %.2f allocs per batch, want 0", avg)
			}
			if h.sh.completed == 0 || h.st.tenants[0].Completed != h.sh.completed {
				t.Fatalf("harness recorded %d/%d completions", h.sh.completed, h.st.tenants[0].Completed)
			}
			if tier, ok := h.shard.Backend.(*hottier.Tier); ok {
				c := tier.Counters()
				if v.name == "cached-hit" && c.Hits == 0 {
					t.Fatal("cached-hit variant never hit the tier")
				}
				if v.name == "miss-fill" && c.Evictions == 0 {
					t.Fatal("miss-fill variant never evicted")
				}
			}
		})
	}
}

// BenchmarkDispatchAllocs reports the dispatch path's per-op cost and
// allocation rate at the sweep's batch depths; allocs/op must be 0.
func BenchmarkDispatchAllocs(b *testing.B) {
	for _, bk := range []struct {
		name  string
		cache int64
	}{{"uncached", 0}, {"cached", 400 * 128}} {
		for _, depth := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/batch=%d", bk.name, depth), func(b *testing.B) {
				h := newDispatchHarnessOpts(b, depth, "pmemkv", bk.cache)
				var stepErr error
				h.p.Go("dispatch", 0, func(ctx *platform.MemCtx) {
					for i := 0; i < 400; i++ {
						if stepErr = h.step(ctx); stepErr != nil {
							return
						}
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := h.step(ctx); err != nil {
							stepErr = err
							return
						}
					}
				})
				h.p.Run()
				if stepErr != nil {
					b.Fatal(stepErr)
				}
			})
		}
	}
}
