package service

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"optanestudy/internal/harness"
	"optanestudy/internal/sim"
)

// TestCacheSweepShape pins the hot-tier claims the cache sweep axis exists
// to demonstrate, mirroring the service/cache/sweep preset: the cache-0 leg
// is exactly the uncached curve (the CacheLegParams identity), the cached
// legs move the saturation knee strictly right on a read-heavy Zipf mix,
// the steady-state hit rate grows with tier size, and mid-load p50 drops
// when repeat GETs are served from DRAM instead of the PM media.
func TestCacheSweepShape(t *testing.T) {
	base := map[string]string{
		"backend": "pmemkv", "mix": "zipf",
		"keys": "2000", "valsize": "128", "llckb": "16",
		"get": "0.95", "put": "0.05", "scan": "0",
	}
	run := func(params map[string]string) Curve {
		curve, err := RunSweep(SweepConfig{
			Backend: "pmemkv", Params: params, Threads: 8,
			Duration: 300 * sim.Microsecond, Seed: 42,
			MinKops: 4000, MaxKops: 28000, Points: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return curve
	}
	grid, extras, err := CacheGridParams(map[string]string{"cachegrid": "0,65536,524288"})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3 || grid[0] != 0 || len(extras) != 0 {
		t.Fatalf("cache grid parsed as %v / extras %v", grid, extras)
	}
	curves := make(map[int64]Curve, len(grid))
	for _, cache := range grid {
		curves[cache] = run(CacheLegParams(base, cache, extras))
	}
	c0, cSmall, cBig := curves[0], curves[65536], curves[524288]

	// The cache-0 leg must BE the uncached curve — same params, same derived
	// seeds, same numbers — not a near-copy with cache keys set to zero.
	if leg := CacheLegParams(base, 0, extras); !reflect.DeepEqual(leg, base) {
		t.Fatalf("cache-0 leg params %v differ from the uncached base %v", leg, base)
	}
	if uncached := run(base); !reflect.DeepEqual(c0, uncached) {
		t.Fatal("cache-0 leg curve differs from the uncached sweep")
	}

	// The uncached leg must not emit tier counters (metric-schema gating:
	// cache-less runs stay byte-stable against the pre-tier baseline).
	for i, pt := range c0 {
		if _, ok := pt.Metrics["cache_hit_rate"]; ok {
			t.Errorf("uncached point %d emits cache_hit_rate", i)
		}
	}

	// The tier buys capacity: repeat GETs short-circuit to DRAM, so both
	// cached legs keep up with offered loads the PM-bound leg sheds at.
	k0 := c0[c0.KneeIndex()].OfferedKops
	for _, cache := range []int64{65536, 524288} {
		c := curves[cache]
		if knee := c[c.KneeIndex()].OfferedKops; knee <= k0 {
			t.Errorf("cache=%d knee at %.0f kops does not clear the uncached knee %.0f",
				cache, knee, k0)
		}
		hr := c[len(c)-1].Metrics["cache_hit_rate"]
		if hr <= 0 || hr > 1 {
			t.Errorf("cache=%d deep hit rate %v outside (0, 1]", cache, hr)
		}
	}

	// Hit rate is monotone in tier size: the bigger tier holds more of the
	// Zipf body, not just the same head.
	hrS := cSmall[len(cSmall)-1].Metrics["cache_hit_rate"]
	hrB := cBig[len(cBig)-1].Metrics["cache_hit_rate"]
	if hrB <= hrS {
		t.Errorf("hit rate not monotone in cache size: %v (512K) <= %v (64K)", hrB, hrS)
	}

	// At the load the uncached leg already saturates on, the cached legs'
	// p50 sits well below it — the median GET is a DRAM hit, not a queued
	// PM read.
	mid := c0.KneeIndex()
	for _, cache := range []int64{65536, 524288} {
		c := curves[cache]
		if c[mid].P50 >= c0[mid].P50 {
			t.Errorf("cache=%d p50 at %.0f kops is %.0f ns, not below uncached %.0f ns",
				cache, c0[mid].OfferedKops, c[mid].P50, c0[mid].P50)
		}
	}
	if sat0, satB := c0.SaturationKops(), cBig.SaturationKops(); satB < 1.1*sat0 {
		t.Errorf("cache=512K saturation %.0f kops is not clearly past uncached %.0f", satB, sat0)
	}
}

// TestCacheParallelByteIdentical is the determinism contract for the tier:
// eviction decisions derive from the job seed (never map order or wall
// clock), so cache scenario output — including the @c-suffixed sweep legs
// and every hit/eviction counter — is byte-identical between -parallel 1
// and -parallel 8.
func TestCacheParallelByteIdentical(t *testing.T) {
	render := func(parallel string) []byte {
		var out, errOut bytes.Buffer
		code := harness.CLIMain([]string{
			"-format=json", "-deterministic", "-duration=100", "-parallel=" + parallel,
			"service/cache/point", "service/cache/memmode", "service/cache/sweep",
		}, harness.CLIOptions{Command: "test", Stdout: &out, Stderr: &errOut})
		if code != 0 {
			t.Fatalf("-parallel=%s: exit %d, stderr: %s", parallel, code, errOut.String())
		}
		return out.Bytes()
	}
	serial, parallel := render("1"), render("8")
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel cache run diverged from serial:\n--- -parallel=1 ---\n%s\n--- -parallel=8 ---\n%s",
			serial, parallel)
	}
	if !json.Valid(serial) {
		t.Fatal("output is not valid JSON")
	}
}
