package service

import (
	"fmt"
	"math"

	"optanestudy/internal/sim"
)

// Arrival is an open-loop arrival process: a stream of inter-arrival gaps
// that is independent of how fast the platform serves requests. Generators
// are deterministic given their seed, so harness trials replay the exact
// same offered traffic at any scheduling width.
type Arrival interface {
	// Next returns the gap between the previous arrival and the next one.
	Next() sim.Time
}

// Deterministic issues arrivals at a fixed rate: every gap is 1/rate.
type Deterministic struct {
	gap sim.Time
}

// NewDeterministic returns a constant-rate process at rate ops per
// simulated second.
func NewDeterministic(rate float64) *Deterministic {
	if rate <= 0 {
		panic("service: arrival rate must be positive")
	}
	gap := sim.Time(math.Round(float64(sim.Second) / rate))
	if gap < 1 {
		gap = 1
	}
	return &Deterministic{gap: gap}
}

// Next implements Arrival.
func (d *Deterministic) Next() sim.Time { return d.gap }

// Poisson issues arrivals as a Poisson process: exponentially distributed
// gaps with mean 1/rate — the standard model of independent user traffic.
type Poisson struct {
	rng  *sim.RNG
	mean float64 // mean gap in simulated-time units
}

// NewPoisson returns a Poisson process at mean rate ops per simulated
// second.
func NewPoisson(rate float64, seed uint64) *Poisson {
	if rate <= 0 {
		panic("service: arrival rate must be positive")
	}
	return &Poisson{rng: sim.NewRNG(seed), mean: float64(sim.Second) / rate}
}

// Next implements Arrival.
func (p *Poisson) Next() sim.Time {
	return expGap(p.rng, p.mean)
}

func expGap(rng *sim.RNG, mean float64) sim.Time {
	// Inverse-CDF sampling; 1-U is in (0, 1] so the log is finite.
	return sim.Time(math.Round(-math.Log(1-rng.Float64()) * mean))
}

// Bursty issues on-off traffic: within each cycle, arrivals form a Poisson
// process at rate/onFrac during the leading onFrac window and are silent
// for the rest, preserving the long-run mean rate. This is the flash-crowd
// shape that stresses the admission queue hardest for a given mean load.
type Bursty struct {
	rng    *sim.RNG
	onMean float64 // mean gap during the on-window
	cycle  sim.Time
	on     sim.Time
	t      sim.Time // absolute time of the previous arrival
}

// NewBursty returns an on-off process with long-run mean rate ops per
// simulated second, cycle length cycle, and an on-window of onFrac of each
// cycle (0 < onFrac <= 1).
func NewBursty(rate float64, cycle sim.Time, onFrac float64, seed uint64) *Bursty {
	if rate <= 0 || cycle <= 0 || onFrac <= 0 || onFrac > 1 {
		panic("service: bad bursty arrival parameters")
	}
	on := sim.Time(math.Round(float64(cycle) * onFrac))
	if on < 1 {
		on = 1
	}
	return &Bursty{
		rng:    sim.NewRNG(seed),
		onMean: float64(sim.Second) / rate * onFrac,
		cycle:  cycle,
		on:     on,
	}
}

// Next implements Arrival.
func (b *Bursty) Next() sim.Time {
	prev := b.t
	t := b.t
	for {
		t += expGap(b.rng, b.onMean)
		if t%b.cycle < b.on {
			break
		}
		// Landed in the off-window: skip to the next cycle's on-window and
		// redraw (valid because exponential gaps are memoryless).
		t = (t/b.cycle + 1) * b.cycle
	}
	b.t = t
	return t - prev
}

// NewArrival builds the named arrival process ("det", "poisson" or
// "burst") at the given mean rate. cycle and onFrac configure the bursty
// process and are ignored otherwise.
func NewArrival(kind string, rate float64, cycle sim.Time, onFrac float64, seed uint64) (Arrival, error) {
	switch kind {
	case "det":
		return NewDeterministic(rate), nil
	case "poisson":
		return NewPoisson(rate, seed), nil
	case "burst":
		return NewBursty(rate, cycle, onFrac, seed), nil
	default:
		return nil, fmt.Errorf("service: unknown arrival process %q (want det, poisson or burst)", kind)
	}
}
