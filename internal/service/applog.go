package service

import (
	"encoding/binary"
	"fmt"

	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
)

// AppendLog is a set of per-worker durable append logs: write-behind
// logging, where a PUT is made durable by appending the record to the
// serving thread's private log (one pmem.Appender per worker — one
// sequential non-temporal stream each) and the index apply is deferred off
// the latency path.
//
// This is the serving-system shape of the paper's threads-per-DIMM best
// practice: W workers journaling onto the same DIMM are exactly W
// concurrent sequential write streams, and once W exceeds the XPBuffer's
// combining capacity the streams' partially-filled XPLines are closed
// early, EWR collapses, and the DIMM saturates at a *lower* load than
// with fewer workers (Section 5.3; Figure 4's non-interleaved write
// peak).
type AppendLog struct {
	region int64 // bytes per worker
	logs   []*pmem.Appender
}

// NewAppendLog carves region bytes of log per worker out of a fresh
// namespace on the spec's placement — media ("optane", "optane-ni" or
// "dram"), socket and DIMM set; the rest of the spec is ignored. Sharded
// clusters build one AppendLog per shard, pinned to the shard's DIMMs.
func NewAppendLog(p *platform.Platform, bs BackendSpec, workers int, region int64) (*AppendLog, error) {
	if workers < 1 || region < 4096 {
		return nil, fmt.Errorf("service: bad append-log shape (%d workers, %d bytes)", workers, region)
	}
	bs.Keys = 0 // the log spec carries placement only, never a payload
	if err := bs.normalize(); err != nil {
		return nil, err
	}
	ns, err := bs.namespace(p, "-log")
	if err != nil {
		return nil, err
	}
	if int64(workers)*region > ns.Size {
		return nil, fmt.Errorf("service: append log overflows namespace (%d × %d > %d)", workers, region, ns.Size)
	}
	whole := pmem.Whole(ns)
	logs := make([]*pmem.Appender, workers)
	for w := range logs {
		sub, err := whole.Sub(int64(w)*region, region)
		if err != nil {
			return nil, err
		}
		logs[w] = pmem.NewAppender(sub, pmem.NewPersister(pmem.NTStream))
	}
	return &AppendLog{region: region, logs: logs}, nil
}

// Append durably logs a key/value record on worker w's log: an 8-byte
// length header plus the payload, assembled in the appender's reused
// scratch buffer (no allocation on the PUT latency path) and streamed with
// non-temporal stores. The log is circular; a record that would straddle
// the region end wraps to the start (the stream restart is rare and costs
// one combining miss). A record larger than the per-worker region is an
// error — wrapping it would spill into the next worker's log.
func (l *AppendLog) Append(ctx *platform.MemCtx, w int, key, val []byte) error {
	n := 8 + len(key) + len(val)
	if int64(n) > l.region {
		return fmt.Errorf("service: %d-byte log record exceeds the %d-byte per-worker region", n, l.region)
	}
	a := l.logs[w]
	rec := a.Scratch(n)
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(val)))
	copy(rec[8:], key)
	copy(rec[8+len(key):], val)
	_, err := a.Append(ctx, rec)
	return err
}

// Begin opens a group commit on worker w's log: records staged with Add
// share ONE fence, issued at Commit. This is the dispatcher's batched
// PUT path — the fence cost amortizes across every logged op the worker
// drained in one wakeup.
func (l *AppendLog) Begin(w int) { l.logs[w].Begin() }

// Add stages a key/value record on worker w's open batch, assembled in
// the appender's reused scratch buffer exactly as Append does, but
// written toward durability without a fence.
func (l *AppendLog) Add(ctx *platform.MemCtx, w int, key, val []byte) error {
	n := 8 + len(key) + len(val)
	if int64(n) > l.region {
		return fmt.Errorf("service: %d-byte log record exceeds the %d-byte per-worker region", n, l.region)
	}
	a := l.logs[w]
	rec := a.Scratch(n)
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(val)))
	copy(rec[8:], key)
	copy(rec[8+len(key):], val)
	_, err := a.Add(ctx, rec)
	return err
}

// Commit seals worker w's open batch with one fence (a no-op when the
// batch staged nothing).
func (l *AppendLog) Commit(ctx *platform.MemCtx, w int) error {
	return l.logs[w].Commit(ctx)
}

// Counters folds every per-worker persister's counters into one readout
// (fences, batches, batch ops — the fence-amortization metrics).
func (l *AppendLog) Counters() pmem.Counters {
	var c pmem.Counters
	for _, a := range l.logs {
		c.Merge(&a.Persister().C)
	}
	return c
}

// Workers returns how many per-worker logs the set holds.
func (l *AppendLog) Workers() int { return len(l.logs) }

// Appender returns worker w's underlying appender. The replica layer
// reaches through it to truncate a rebuilt standby's log and to walk the
// shipped stream with pmem.RecoverBatches at promotion.
func (l *AppendLog) Appender(w int) *pmem.Appender { return l.logs[w] }

// DecodeRecord splits one logged record back into its key and value —
// the inverse of the framing Append and Add write. Replica promotion
// decodes recovered shipment records with it before replaying them into
// the standby's backend. The returned slices alias rec.
func DecodeRecord(rec []byte) (key, val []byte, err error) {
	if len(rec) < 8 {
		return nil, nil, fmt.Errorf("service: log record truncated (%d bytes)", len(rec))
	}
	kl := int(binary.LittleEndian.Uint32(rec[0:]))
	vl := int(binary.LittleEndian.Uint32(rec[4:]))
	if kl < 0 || vl < 0 || 8+kl+vl != len(rec) {
		return nil, nil, fmt.Errorf("service: log record header (%d+%d) disagrees with %d-byte record", kl, vl, len(rec))
	}
	return rec[8 : 8+kl], rec[8+kl:], nil
}
