package service

import (
	"fmt"

	"optanestudy/internal/fault"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
)

// Replicator is a shard's replication hook: the serving loop mirrors
// every write-behind-logged PUT through it, and the fault driver fails
// over through it. internal/replica implements it with a primary/standby
// pair on distinct (socket, DIMM-set) placements; service stays ignorant
// of the pairing — it only knows that logged PUTs must be shipped before
// they are acked (synchronous replication: an op completes at the SHIP
// fence, so a promoted replica serves every acked write) and that
// Promote returns the backend and log the shard serves from next.
//
// Only logged PUTs replicate — replication requires the shard to run
// write-behind logging (Shard.PutLog), and a replicated run must not mix
// in deletes (they bypass the log).
type Replicator interface {
	// Record mirrors one unbatched logged PUT: the record enters the
	// primary's volatile send history and, when the standby is attached
	// and synced, ships synchronously as a batch-of-one on the standby's
	// log (real media writes plus a fence, remote over UPI when the
	// standby is on another socket).
	Record(ctx *platform.MemCtx, w int, key, val []byte) error
	// BatchBegin / BatchAdd / BatchCommit mirror a group commit: records
	// stage volatile and the whole shipment streams with ONE fence at
	// BatchCommit, reusing the appender's Begin/Add/Commit framing
	// verbatim as the wire format.
	BatchBegin(w int)
	BatchAdd(ctx *platform.MemCtx, w int, key, val []byte) error
	BatchCommit(ctx *platform.MemCtx, w int) error
	// Promote fails the shard over to its standby: replay the shipped
	// log into the standby's backend (discarding any torn shipment),
	// swap roles, and return the backend and append log the shard serves
	// from now on. ctx runs on the standby's socket — replay bandwidth
	// is the standby DIMMs' to give.
	Promote(ctx *platform.MemCtx) (Backend, *AppendLog, error)
	// Leave detaches the standby (shipping stops; the primary keeps
	// buffering history). Join (re)attaches one and returns once it has
	// caught up on every record it missed and synchronous shipping has
	// resumed; ctx runs on the standby's socket.
	Leave()
	Join(ctx *platform.MemCtx) error
	// StandbySocket is the socket the current standby slot lives on —
	// where Serve runs recovery and catch-up procs.
	StandbySocket() int
}

// FailoverStats is one shard's fault/failover outcome over a run.
type FailoverStats struct {
	// Crashes counts primary fail-stops applied to the shard.
	Crashes int64
	// PromoteNS is the worst crash→promoted latency (detection delay
	// plus log replay); RecoveryNS the worst crash→caught-up latency
	// (promotion plus draining the backlog that piled up while down).
	PromoteNS  float64
	RecoveryNS float64
	// WindowOps counts measured completions inside failover windows
	// (crash to caught-up); WindowLatency is their end-to-end
	// distribution — the "p99 during the failover window" curve metric.
	WindowOps     int64
	WindowLatency *stats.Histogram
	// ShedWindow counts measured requests shed during failover windows
	// (shed-until-caught-up).
	ShedWindow int64
}

// failoverState is one shard's live fault state. Procs run one at a time
// under the sim's cooperative scheduler, so no locking: the fault driver
// flips down/stallUntil, workers poll them, and completions close the
// failover window.
type failoverState struct {
	repl Replicator
	// down pauses the shard's workers (primary storage fail-stopped,
	// promotion pending); stallUntil pauses them until a deadline (DIMM
	// stall).
	down       bool
	stallUntil sim.Time
	// inWindow spans crash → caught-up; promoted marks the promotion
	// inside the current window; downSince is the crash instant.
	inWindow bool
	promoted bool
	downSince sim.Time

	st FailoverStats
}

func newFailoverState(repl Replicator) *failoverState {
	return &failoverState{repl: repl, st: FailoverStats{WindowLatency: stats.NewHistogram()}}
}

// blocked reports whether the shard's workers must idle at time now.
func (fo *failoverState) blocked(now sim.Time) bool {
	return fo.down || now < fo.stallUntil
}

// noteCompletion books one completion inside the failover window and
// closes the window at the first post-promotion completion that leaves
// the queue empty (the caught-up instant). Returns true when the window
// closed at end.
func (fo *failoverState) noteCompletion(req request, end sim.Time, queueEmpty bool) bool {
	if req.measured {
		fo.st.WindowOps++
		fo.st.WindowLatency.Add((end - req.arrival).Nanoseconds())
	}
	if fo.promoted && queueEmpty {
		fo.closeWindow(end)
		return true
	}
	return false
}

// closeWindow ends the failover window at the caught-up instant.
func (fo *failoverState) closeWindow(end sim.Time) {
	fo.inWindow, fo.promoted = false, false
	if d := float64((end - fo.downSince).Nanoseconds()); d > fo.st.RecoveryNS {
		fo.st.RecoveryNS = d
	}
}

// validateFaults checks the schedule against the shard set: sorted,
// in-range, and every event that needs a replica targets a shard that
// has one.
func validateFaults(cfg *Config, shards []Shard) error {
	for i := range shards {
		if shards[i].Repl != nil && shards[i].PutLog == nil {
			return fmt.Errorf("service: shard %d replicates but has no write-behind log (replication ships the log)", i)
		}
	}
	if len(cfg.Faults) == 0 {
		return nil
	}
	if err := fault.Validate(cfg.Faults, len(shards)); err != nil {
		return err
	}
	for _, ev := range cfg.Faults {
		if ev.Kind != fault.Stall && shards[ev.Shard].Repl == nil {
			return fmt.Errorf("service: %v event targets shard %d, which has no replica", ev.Kind, ev.Shard)
		}
	}
	if cfg.DelFrac > 0 {
		for i := range shards {
			if shards[i].Repl != nil {
				return fmt.Errorf("service: deletes bypass the replicated log; use a delete-free mix")
			}
		}
	}
	return nil
}

// event books a fault/failover marker on the trace timeline (no-op when
// tracing is off).
func (st *serveState) event(name string, shard int, now sim.Time) {
	st.rec.RecordEvent(name, shard, int64((now-st.warmEnd)/sim.Nanosecond))
}

// runFaultDriver spawns the fault-driver proc: it walks the schedule in
// sim time and applies each event — flipping stall deadlines, failing
// primaries over (detect → promote on the standby's socket → drain), and
// driving standby leave/join churn. Recovery and catch-up run as spawned
// procs on the standby's socket so replay and catch-up bandwidth are
// paid where the standby's DIMMs live, and so overlapping failovers
// (socket loss = simultaneous crashes) recover concurrently.
func runFaultDriver(p *platform.Platform, cfg Config, shards []Shard, st *serveState, runErr *error) {
	p.Go("fault-driver", cfg.Socket, func(ctx *platform.MemCtx) {
		proc := ctx.Proc()
		// Event times are on the serving clock (0 = serving start, before
		// warmup), but the platform clock already advanced through preload —
		// rebase the schedule onto this proc's spawn instant, which is the
		// same Now() Serve captured as its start.
		base := proc.Now()
		for i, ev := range cfg.Faults {
			if at := base + ev.At; at > proc.Now() {
				proc.AdvanceTo(at)
			}
			if *runErr != nil {
				return
			}
			sh := &st.shards[ev.Shard]
			fo := sh.fo
			shard := &shards[ev.Shard]
			switch ev.Kind {
			case fault.Stall:
				st.event("stall", ev.Shard, proc.Now())
				if until := proc.Now() + ev.Dur; until > fo.stallUntil {
					fo.stallUntil = until
				}
			case fault.Crash:
				if fo.down {
					continue // already down; promotion pending
				}
				fo.down, fo.downSince = true, proc.Now()
				fo.inWindow, fo.promoted = true, false
				fo.st.Crashes++
				st.event("crash", ev.Shard, proc.Now())
				p.Go(fmt.Sprintf("failover-s%d-%d", ev.Shard, i), fo.repl.StandbySocket(), func(rctx *platform.MemCtx) {
					rp := rctx.Proc()
					if cfg.Detect > 0 {
						rp.Sleep(cfg.Detect)
					}
					be, plog, err := fo.repl.Promote(rctx)
					if err != nil {
						*runErr = err
						return
					}
					// The serving pool survives (the frontend lives on);
					// the shard's storage moves to the promoted standby,
					// possibly across UPI from the workers.
					shard.Backend, shard.PutLog = be, plog
					now := rp.Now()
					fo.down, fo.promoted = false, true
					if d := float64((now - fo.downSince).Nanoseconds()); d > fo.st.PromoteNS {
						fo.st.PromoteNS = d
					}
					st.event("promoted", ev.Shard, now)
					if sh.occ.Len() == 0 {
						// Nothing queued up while down: caught up at
						// promotion.
						fo.closeWindow(now)
						st.event("caught-up", ev.Shard, now)
					}
				})
			case fault.Leave:
				st.event("leave", ev.Shard, proc.Now())
				fo.repl.Leave()
			case fault.Join:
				st.event("join", ev.Shard, proc.Now())
				p.Go(fmt.Sprintf("catchup-s%d-%d", ev.Shard, i), fo.repl.StandbySocket(), func(rctx *platform.MemCtx) {
					if err := fo.repl.Join(rctx); err != nil {
						*runErr = err
						return
					}
					st.event("standby-synced", ev.Shard, rctx.Proc().Now())
				})
			}
		}
	})
}
