package service

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"optanestudy/internal/harness"
	"optanestudy/internal/sim"
)

// The shape tests pin the qualitative serving claims the subsystem exists
// to demonstrate, in the style of the figure tests: the registered sweep
// presets must show an achieved-throughput curve that rises monotonically,
// flattens at saturation while tail latency blows up past the knee, and
// saturates earlier when more threads contend for one DIMM than the
// paper's recommended limit.

func defaultSweep(t *testing.T) Curve {
	t.Helper()
	// Mirrors the service/kv/sweep-pmemkv preset.
	curve, err := RunSweep(SweepConfig{
		Backend: "pmemkv", Threads: 8,
		Duration: 300 * sim.Microsecond, Seed: 33,
		MinKops: 2000, MaxKops: 44000, Points: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return curve
}

func TestSweepCurveShape(t *testing.T) {
	curve := defaultSweep(t)
	if len(curve) != 7 {
		t.Fatalf("curve has %d points, want 7", len(curve))
	}
	knee := curve.KneeIndex()
	if knee <= 0 || knee >= len(curve)-1 {
		t.Fatalf("knee at %d: the grid must straddle saturation", knee)
	}

	// Achieved throughput is monotone non-decreasing (within noise) and
	// flattens at saturation: the last step of offered load buys almost no
	// throughput, while the grid pushes well past the saturation point.
	for i := 1; i < len(curve); i++ {
		if curve[i].AchievedKops < 0.97*curve[i-1].AchievedKops {
			t.Errorf("achieved throughput dips at point %d: %.0f after %.0f",
				i, curve[i].AchievedKops, curve[i-1].AchievedKops)
		}
	}
	last, prev := curve[len(curve)-1], curve[len(curve)-2]
	if last.AchievedKops > 1.1*prev.AchievedKops {
		t.Errorf("curve still climbing at the top of the grid: %.0f vs %.0f",
			last.AchievedKops, prev.AchievedKops)
	}
	if sat := curve.SaturationKops(); last.OfferedKops < 1.4*sat {
		t.Errorf("grid tops out at %.0f, not deep past saturation %.0f",
			last.OfferedKops, sat)
	}

	// Tail latency blows up past the knee: p50 and p99 at deep overload
	// dwarf their values at the last clearly-unsaturated point (worker
	// pool under 60% busy).
	light := 0
	for i, pt := range curve {
		if pt.Util <= 0.6 {
			light = i
		}
	}
	if light == 0 || light >= len(curve)-1 {
		t.Fatalf("grid lacks a light-load/overload split (light=%d)", light)
	}
	if last.P99 < 3*curve[light].P99 {
		t.Errorf("p99 blow-up too small: %.0f vs light-load %.0f", last.P99, curve[light].P99)
	}
	if last.P50 < 10*curve[0].P50 {
		t.Errorf("p50 blow-up too small: %.0f vs light-load %.0f", last.P50, curve[0].P50)
	}
	// The p99 climb is superlinear in offered load: its steepest step sits
	// at the saturation crossing, not in the flat light-load region.
	maxJump, maxAt := 0.0, 0
	for i := 1; i < len(curve); i++ {
		if jump := curve[i].P99 / curve[i-1].P99; jump > maxJump {
			maxJump, maxAt = jump, i
		}
	}
	if maxJump < 1.4 || maxAt <= light || maxAt > knee+1 {
		t.Errorf("steepest p99 step (%.2fx at point %d) should sit at the knee crossing (light=%d, knee=%d)",
			maxJump, maxAt, light, knee)
	}

	// Load shedding appears only as the pool saturates, and deep overload
	// sheds hard with the workers pinned busy.
	for i := 0; i <= light; i++ {
		if curve[i].DropFrac != 0 {
			t.Errorf("light-load point %d sheds %.3f of load", i, curve[i].DropFrac)
		}
	}
	if last.DropFrac < 0.1 {
		t.Errorf("deep overload sheds only %.3f", last.DropFrac)
	}
	if last.Util < 0.9 {
		t.Errorf("workers only %.2f busy at deep overload", last.Util)
	}
}

func TestContentionShape(t *testing.T) {
	// Mirrors the service/kv/sweep-contention preset: per-worker 128 B
	// append-log streams onto a single DIMM.
	params := map[string]string{
		"backend": "pmemkv", "media": "optane-ni",
		"putlog": "1", "keysize": "8", "valsize": "112",
		"get": "0.3", "put": "0.7", "scan": "0",
	}
	run := func(threads int) Curve {
		curve, err := RunSweep(SweepConfig{
			Backend: "pmemkv", Params: params, Threads: threads,
			Duration: 300 * sim.Microsecond, Seed: 35,
			MinKops: 3000, MaxKops: 21000, Points: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return curve
	}
	within := run(4) // at the paper's recommended threads-per-DIMM limit
	over := run(16)  // far past it

	// Saturation arrives earlier — at a lower offered load and a lower
	// ceiling — with 16 threads on the DIMM than with 4.
	if wk, ok := within.KneeIndex(), over.KneeIndex(); within[wk].OfferedKops <= over[ok].OfferedKops {
		t.Errorf("knee with 4 workers (%.0f kops) should exceed knee with 16 (%.0f kops)",
			within[wk].OfferedKops, over[ok].OfferedKops)
	}
	satW, satO := within.SaturationKops(), over.SaturationKops()
	if satW < 1.15*satO {
		t.Errorf("saturation with 4 workers (%.0f) should clearly exceed 16 workers (%.0f)",
			satW, satO)
	}
	// At a load the 4-worker pool still keeps up with, the oversubscribed
	// pool has already collapsed into queueing.
	mid := within.KneeIndex()
	if over[mid].P99 < 5*within[mid].P99 {
		t.Errorf("p99 at %.0f kops: 16 workers %.0f should dwarf 4 workers %.0f",
			within[mid].OfferedKops, over[mid].P99, within[mid].P99)
	}
}

// TestBatchSweepShape pins the group-commit claims the batch sweep axis
// exists to demonstrate, mirroring the service/batch/sweep preset: the
// depth-1 leg is exactly the unbatched contention curve (the BatchLegParams
// identity), deeper legs shift the saturation knee to a higher offered
// load, the deepest grid point runs well under one fence per op, and the
// light-load p50 penalty stays within the linger bound.
func TestBatchSweepShape(t *testing.T) {
	base := map[string]string{
		"backend": "pmemkv", "media": "optane-ni",
		"putlog": "1", "keysize": "8", "valsize": "112",
		"get": "0.3", "put": "0.7", "scan": "0",
	}
	run := func(params map[string]string) Curve {
		curve, err := RunSweep(SweepConfig{
			Backend: "pmemkv", Params: params, Threads: 4,
			Duration: 300 * sim.Microsecond, Seed: 35,
			MinKops: 3000, MaxKops: 21000, Points: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return curve
	}
	grid, linger, err := BatchGridParams(map[string]string{
		"batchgrid": "1,8,32", "batchlinger": "1000",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 3 || grid[0] != 1 || linger != "1000" {
		t.Fatalf("batch grid parsed as %v / linger %q", grid, linger)
	}
	curves := make(map[int]Curve, len(grid))
	for _, depth := range grid {
		curves[depth] = run(BatchLegParams(base, depth, linger))
	}
	b1, b8, b32 := curves[1], curves[8], curves[32]

	// The depth-1 leg must BE the unbatched curve — same params, same
	// derived seeds, same numbers — not a near-copy with batch keys set.
	if legs := BatchLegParams(base, 1, linger); !reflect.DeepEqual(legs, base) {
		t.Fatalf("depth-1 leg params %v differ from the unbatched base %v", legs, base)
	}
	if unbatched := run(base); !reflect.DeepEqual(b1, unbatched) {
		t.Fatal("depth-1 leg curve differs from the unbatched sweep")
	}

	// Group commit moves the saturation knee right: the fence amortization
	// buys capacity, so deeper legs keep up with offered loads the
	// one-fence-per-PUT leg already sheds at.
	k1 := b1[b1.KneeIndex()].OfferedKops
	for _, depth := range []int{8, 32} {
		c := curves[depth]
		if knee := c[c.KneeIndex()].OfferedKops; knee <= k1 {
			t.Errorf("batch=%d knee at %.0f kops does not clear the unbatched knee %.0f", depth, knee, k1)
		}
		// At the deepest grid point every wakeup drains a full batch, so
		// fences per op sit far below one (1/depth in the limit).
		deep := c[len(c)-1].Metrics["pmem_fence_per_op"]
		if deep <= 0 || deep >= 0.25 {
			t.Errorf("batch=%d fences/op at the deepest point = %v, want (0, 0.25)", depth, deep)
		}
		if b1deep := b1[len(b1)-1].Metrics["pmem_fence_per_op"]; b1deep != 0 {
			t.Errorf("unbatched leg emits group-commit counters (%v)", b1deep)
		}
		// Linger bounds the light-load latency cost: a short batch commits
		// at most `linger` past its oldest request's arrival.
		if delta := c[0].P50 - b1[0].P50; delta > 1100 {
			t.Errorf("batch=%d light-load p50 penalty %.0f ns exceeds the 1000 ns linger bound", depth, delta)
		}
	}
	if sat1, sat8 := b1.SaturationKops(), b8.SaturationKops(); sat8 < 1.1*sat1 {
		t.Errorf("batch=8 saturation %.0f kops is not clearly past unbatched %.0f", sat8, sat1)
	}
	if sat8, sat32 := b8.SaturationKops(), b32.SaturationKops(); sat32 < sat8 {
		t.Errorf("batch=32 saturation %.0f kops fell below batch=8's %.0f", sat32, sat8)
	}
}

// TestServeParallelByteIdentical is the acceptance contract: servebench
// output for the sweep scenario is byte-identical between -parallel 1 and
// -parallel 8 in -deterministic mode.
func TestServeParallelByteIdentical(t *testing.T) {
	render := func(parallel string) []byte {
		var out, errOut bytes.Buffer
		code := harness.CLIMain([]string{
			"-format=json", "-deterministic", "-duration=100", "-parallel=" + parallel,
			"service/kv/sweep-pmemkv", "service/kv/pmemkv",
		}, harness.CLIOptions{Command: "test", Stdout: &out, Stderr: &errOut})
		if code != 0 {
			t.Fatalf("-parallel=%s: exit %d, stderr: %s", parallel, code, errOut.String())
		}
		return out.Bytes()
	}
	serial, parallel := render("1"), render("8")
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel run diverged from serial:\n--- -parallel=1 ---\n%s\n--- -parallel=8 ---\n%s",
			serial, parallel)
	}
	if !json.Valid(serial) {
		t.Fatal("output is not valid JSON")
	}
}
