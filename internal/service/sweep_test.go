package service

import (
	"bytes"
	"encoding/json"
	"testing"

	"optanestudy/internal/harness"
	"optanestudy/internal/sim"
)

// The shape tests pin the qualitative serving claims the subsystem exists
// to demonstrate, in the style of the figure tests: the registered sweep
// presets must show an achieved-throughput curve that rises monotonically,
// flattens at saturation while tail latency blows up past the knee, and
// saturates earlier when more threads contend for one DIMM than the
// paper's recommended limit.

func defaultSweep(t *testing.T) Curve {
	t.Helper()
	// Mirrors the service/kv/sweep-pmemkv preset.
	curve, err := RunSweep(SweepConfig{
		Backend: "pmemkv", Threads: 8,
		Duration: 300 * sim.Microsecond, Seed: 33,
		MinKops: 2000, MaxKops: 44000, Points: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return curve
}

func TestSweepCurveShape(t *testing.T) {
	curve := defaultSweep(t)
	if len(curve) != 7 {
		t.Fatalf("curve has %d points, want 7", len(curve))
	}
	knee := curve.KneeIndex()
	if knee <= 0 || knee >= len(curve)-1 {
		t.Fatalf("knee at %d: the grid must straddle saturation", knee)
	}

	// Achieved throughput is monotone non-decreasing (within noise) and
	// flattens at saturation: the last step of offered load buys almost no
	// throughput, while the grid pushes well past the saturation point.
	for i := 1; i < len(curve); i++ {
		if curve[i].AchievedKops < 0.97*curve[i-1].AchievedKops {
			t.Errorf("achieved throughput dips at point %d: %.0f after %.0f",
				i, curve[i].AchievedKops, curve[i-1].AchievedKops)
		}
	}
	last, prev := curve[len(curve)-1], curve[len(curve)-2]
	if last.AchievedKops > 1.1*prev.AchievedKops {
		t.Errorf("curve still climbing at the top of the grid: %.0f vs %.0f",
			last.AchievedKops, prev.AchievedKops)
	}
	if sat := curve.SaturationKops(); last.OfferedKops < 1.4*sat {
		t.Errorf("grid tops out at %.0f, not deep past saturation %.0f",
			last.OfferedKops, sat)
	}

	// Tail latency blows up past the knee: p50 and p99 at deep overload
	// dwarf their values at the last clearly-unsaturated point (worker
	// pool under 60% busy).
	light := 0
	for i, pt := range curve {
		if pt.Util <= 0.6 {
			light = i
		}
	}
	if light == 0 || light >= len(curve)-1 {
		t.Fatalf("grid lacks a light-load/overload split (light=%d)", light)
	}
	if last.P99 < 3*curve[light].P99 {
		t.Errorf("p99 blow-up too small: %.0f vs light-load %.0f", last.P99, curve[light].P99)
	}
	if last.P50 < 10*curve[0].P50 {
		t.Errorf("p50 blow-up too small: %.0f vs light-load %.0f", last.P50, curve[0].P50)
	}
	// The p99 climb is superlinear in offered load: its steepest step sits
	// at the saturation crossing, not in the flat light-load region.
	maxJump, maxAt := 0.0, 0
	for i := 1; i < len(curve); i++ {
		if jump := curve[i].P99 / curve[i-1].P99; jump > maxJump {
			maxJump, maxAt = jump, i
		}
	}
	if maxJump < 1.4 || maxAt <= light || maxAt > knee+1 {
		t.Errorf("steepest p99 step (%.2fx at point %d) should sit at the knee crossing (light=%d, knee=%d)",
			maxJump, maxAt, light, knee)
	}

	// Load shedding appears only as the pool saturates, and deep overload
	// sheds hard with the workers pinned busy.
	for i := 0; i <= light; i++ {
		if curve[i].DropFrac != 0 {
			t.Errorf("light-load point %d sheds %.3f of load", i, curve[i].DropFrac)
		}
	}
	if last.DropFrac < 0.1 {
		t.Errorf("deep overload sheds only %.3f", last.DropFrac)
	}
	if last.Util < 0.9 {
		t.Errorf("workers only %.2f busy at deep overload", last.Util)
	}
}

func TestContentionShape(t *testing.T) {
	// Mirrors the service/kv/sweep-contention preset: per-worker 128 B
	// append-log streams onto a single DIMM.
	params := map[string]string{
		"backend": "pmemkv", "media": "optane-ni",
		"putlog": "1", "keysize": "8", "valsize": "112",
		"get": "0.3", "put": "0.7", "scan": "0",
	}
	run := func(threads int) Curve {
		curve, err := RunSweep(SweepConfig{
			Backend: "pmemkv", Params: params, Threads: threads,
			Duration: 300 * sim.Microsecond, Seed: 35,
			MinKops: 3000, MaxKops: 21000, Points: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return curve
	}
	within := run(4) // at the paper's recommended threads-per-DIMM limit
	over := run(16)  // far past it

	// Saturation arrives earlier — at a lower offered load and a lower
	// ceiling — with 16 threads on the DIMM than with 4.
	if wk, ok := within.KneeIndex(), over.KneeIndex(); within[wk].OfferedKops <= over[ok].OfferedKops {
		t.Errorf("knee with 4 workers (%.0f kops) should exceed knee with 16 (%.0f kops)",
			within[wk].OfferedKops, over[ok].OfferedKops)
	}
	satW, satO := within.SaturationKops(), over.SaturationKops()
	if satW < 1.15*satO {
		t.Errorf("saturation with 4 workers (%.0f) should clearly exceed 16 workers (%.0f)",
			satW, satO)
	}
	// At a load the 4-worker pool still keeps up with, the oversubscribed
	// pool has already collapsed into queueing.
	mid := within.KneeIndex()
	if over[mid].P99 < 5*within[mid].P99 {
		t.Errorf("p99 at %.0f kops: 16 workers %.0f should dwarf 4 workers %.0f",
			within[mid].OfferedKops, over[mid].P99, within[mid].P99)
	}
}

// TestServeParallelByteIdentical is the acceptance contract: servebench
// output for the sweep scenario is byte-identical between -parallel 1 and
// -parallel 8 in -deterministic mode.
func TestServeParallelByteIdentical(t *testing.T) {
	render := func(parallel string) []byte {
		var out, errOut bytes.Buffer
		code := harness.CLIMain([]string{
			"-format=json", "-deterministic", "-duration=100", "-parallel=" + parallel,
			"service/kv/sweep-pmemkv", "service/kv/pmemkv",
		}, harness.CLIOptions{Command: "test", Stdout: &out, Stderr: &errOut})
		if code != 0 {
			t.Fatalf("-parallel=%s: exit %d, stderr: %s", parallel, code, errOut.String())
		}
		return out.Bytes()
	}
	serial, parallel := render("1"), render("8")
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel run diverged from serial:\n--- -parallel=1 ---\n%s\n--- -parallel=8 ---\n%s",
			serial, parallel)
	}
	if !json.Valid(serial) {
		t.Fatal("output is not valid JSON")
	}
}
