package service

import (
	"errors"
	"math"
	"testing"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

var errOversizedAccepted = errors.New("oversized record accepted")

func testPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	t.Cleanup(p.Close)
	return p
}

func TestDeterministicArrivalRate(t *testing.T) {
	a := NewDeterministic(1e6) // 1 Mops → 1 µs gaps
	for i := 0; i < 10; i++ {
		if got := a.Next(); got != sim.Microsecond {
			t.Fatalf("gap = %v, want 1us", got)
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	a := NewPoisson(1e6, 7)
	var total sim.Time
	const n = 20000
	for i := 0; i < n; i++ {
		total += a.Next()
	}
	mean := float64(total) / n
	want := float64(sim.Microsecond)
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean gap = %.0f ps, want %.0f ± 5%%", mean, want)
	}
}

func TestBurstyOnOffStructure(t *testing.T) {
	cycle := 20 * sim.Microsecond
	a := NewBursty(1e6, cycle, 0.25, 9)
	on := 5 * sim.Microsecond
	var at sim.Time
	var total sim.Time
	const n = 5000
	for i := 0; i < n; i++ {
		gap := a.Next()
		if gap < 0 {
			t.Fatal("negative gap")
		}
		at += gap
		total += gap
		if at%cycle >= on {
			t.Fatalf("arrival %d at %v falls in the off-window (pos %v)", i, at, at%cycle)
		}
	}
	// Long-run mean rate must stay near the nominal 1 Mops.
	rate := float64(n) / total.Seconds()
	if rate < 0.8e6 || rate > 1.2e6 {
		t.Fatalf("long-run rate = %.0f ops/s, want ~1e6", rate)
	}
}

func TestArrivalDeterministic(t *testing.T) {
	for _, kind := range []string{"det", "poisson", "burst"} {
		mk := func() Arrival {
			a, err := NewArrival(kind, 2e6, 20*sim.Microsecond, 0.25, 77)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		a, b := mk(), mk()
		for i := 0; i < 2000; i++ {
			if x, y := a.Next(), b.Next(); x != y {
				t.Fatalf("%s gap %d: %v vs %v — same seed diverged", kind, i, x, y)
			}
		}
	}
	if _, err := NewArrival("nope", 1e6, 0, 0, 1); err == nil {
		t.Fatal("unknown arrival kind must error")
	}
}

func serveOnce(t *testing.T, seed uint64, offered float64, qcap int) *Result {
	t.Helper()
	p := testPlatform(t)
	be, err := NewPMemKV(p, BackendSpec{Media: "optane", Keys: 400, KeySize: 16, ValSize: 128, ScanSpan: 200})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Serve(Config{
		Platform: p, Backend: be, Workers: 4, QueueCap: qcap,
		Arrival: NewPoisson(offered, seed^0xF00D),
		Tenants: []Tenant{{Name: "zipf", Theta: 0.99}, {Name: "uni"}},
		Keys:    200, KeySize: 16, ValSize: 128,
		GetFrac: 0.75, PutFrac: 0.2, ScanFrac: 0.05,
		Duration: 200 * sim.Microsecond, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestServeBasics(t *testing.T) {
	res := serveOnce(t, 3, 2e6, 0) // 2 Mops: far below capacity
	if res.Offered == 0 {
		t.Fatal("no requests generated")
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d requests at light load", res.Dropped)
	}
	if res.Completed != res.Offered {
		t.Fatalf("completed %d of %d offered with no drops", res.Completed, res.Offered)
	}
	if got := res.Latency.Count(); got != res.Completed {
		t.Fatalf("latency samples %d != completed %d", got, res.Completed)
	}
	var offered, completed int64
	for _, ts := range res.Tenants {
		offered += ts.Offered
		completed += ts.Completed
		if ts.Offered == 0 {
			t.Fatalf("tenant %s got no traffic", ts.Name)
		}
	}
	if offered != res.Offered || completed != res.Completed {
		t.Fatal("tenant totals disagree with aggregate")
	}
	if res.Latency.Percentile(0.5) <= 0 {
		t.Fatal("zero median latency")
	}
	if u := res.Utilization(4); u <= 0 || u > 1.05 {
		t.Fatalf("utilization = %v", u)
	}
	if res.AchievedRate < 1.6e6 || res.AchievedRate > 2.4e6 {
		t.Fatalf("achieved rate %.0f far from offered 2e6", res.AchievedRate)
	}
}

func TestServeShedsAtOverload(t *testing.T) {
	res := serveOnce(t, 5, 60e6, 16) // far past capacity, tiny queue
	if res.Dropped == 0 {
		t.Fatal("overload with a tiny queue must shed")
	}
	if res.Completed >= res.Offered {
		t.Fatal("achieved should fall short of offered at overload")
	}
	if res.MaxQueueLen > 16 {
		t.Fatalf("queue grew to %d past its cap 16", res.MaxQueueLen)
	}
	if res.QueueResidency == 0 {
		t.Fatal("no queueing delay recorded at overload")
	}
}

// Same seed ⇒ identical run, trial after trial (the statelessness the
// harness byte-identical contract needs from this package).
func TestServeDeterministic(t *testing.T) {
	a, b := serveOnce(t, 11, 8e6, 0), serveOnce(t, 11, 8e6, 0)
	if a.Offered != b.Offered || a.Completed != b.Completed || a.Dropped != b.Dropped {
		t.Fatalf("counts diverged: %+v vs %+v", a, b)
	}
	qa := a.Latency.Quantiles([]float64{0.5, 0.99, 0.999})
	qb := b.Latency.Quantiles([]float64{0.5, 0.99, 0.999})
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("latency quantiles diverged: %v vs %v", qa, qb)
		}
	}
	if a.WorkerBusy != b.WorkerBusy || a.QueueResidency != b.QueueResidency {
		t.Fatal("instrumentation diverged")
	}
}

func TestAppendLog(t *testing.T) {
	p := testPlatform(t)
	l, err := NewAppendLog(p, BackendSpec{Media: "dram"}, 2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var appendErr error
	p.Go("log", 0, func(ctx *platform.MemCtx) {
		// 60 records of 128 B per worker in a 4 KB region: wraps several
		// times without panicking or touching the other worker's region.
		for i := 0; i < 60; i++ {
			for w := 0; w < 2; w++ {
				if err := l.Append(ctx, w, KeyFor(int64(i), 8), ValFor(int64(i), 112)); err != nil {
					appendErr = err
					return
				}
			}
		}
		// A record larger than the per-worker region must be refused, not
		// spilled into the neighboring worker's log.
		if err := l.Append(ctx, 0, KeyFor(0, 8), make([]byte, 8192)); err == nil {
			appendErr = errOversizedAccepted
		}
	})
	p.Run()
	if appendErr != nil {
		t.Fatal(appendErr)
	}
	if _, err := NewAppendLog(p, BackendSpec{Media: "bogus"}, 1, 4096); err == nil {
		t.Fatal("bad media must error")
	}
	if _, err := NewAppendLog(p, BackendSpec{Media: "dram"}, 1, 100); err == nil {
		t.Fatal("tiny region must error")
	}
}

// TestBackendScanDelete covers the redesigned Backend interface: pmemkv's
// explicit emulated scan wraps inside the keyspace shard, lsmkv's native
// scan walks sorted order, and Delete removes keys on both engines.
func TestBackendScanDelete(t *testing.T) {
	for _, name := range []string{"pmemkv", "lsmkv"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p := testPlatform(t)
			be, err := NewBackend(p, name, BackendSpec{
				Media: "optane", Keys: 100, KeySize: 16, ValSize: 64,
				ScanSpan: 50, NativeScan: name == "lsmkv",
			})
			if err != nil {
				t.Fatal(err)
			}
			var scanErr error
			p.Go("t", 0, func(ctx *platform.MemCtx) {
				// A scan near the shard end must touch n records (the
				// emulated path wraps at id 50; the native path keeps
				// walking sorted order).
				if n := be.Scan(ctx, KeyFor(45, 16), 10); n != 10 {
					t.Errorf("scan touched %d records, want 10", n)
				}
				if err := be.Delete(ctx, KeyFor(7, 16)); err != nil {
					scanErr = err
					return
				}
				if v, ok := be.Get(ctx, KeyFor(7, 16)); ok {
					t.Errorf("deleted key still returns %q", v)
				}
				if _, ok := be.Get(ctx, KeyFor(8, 16)); !ok {
					t.Error("neighbor key lost after delete")
				}
			})
			p.Run()
			if scanErr != nil {
				t.Fatal(scanErr)
			}
		})
	}
}

// TestNativeScanCheaper: the point of the native sorted-range scan is that
// one merge walk beats n point lookups in simulated time.
func TestNativeScanCheaper(t *testing.T) {
	scanTime := func(native bool) sim.Time {
		p := testPlatform(t)
		be, err := NewBackend(p, "lsmkv", BackendSpec{
			Media: "optane", Keys: 400, KeySize: 16, ValSize: 128,
			NativeScan: native,
		})
		if err != nil {
			t.Fatal(err)
		}
		var elapsed sim.Time
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			start := ctx.Proc().Now()
			for s := int64(0); s < 360; s += 40 {
				be.Scan(ctx, KeyFor(s, 16), 16)
			}
			elapsed = ctx.Proc().Now() - start
		})
		p.Run()
		return elapsed
	}
	emulated := scanTime(false)
	native := scanTime(true)
	if native >= emulated {
		t.Fatalf("native scan (%v) must beat %d emulated point lookups (%v)", native, 16, emulated)
	}
}

func TestBackendSpecValidation(t *testing.T) {
	p := testPlatform(t)
	// Payload larger than the PM namespace must be refused up front.
	if _, err := NewBackend(p, "pmemkv", BackendSpec{
		Media: "optane", Keys: 1000, KeySize: 64, ValSize: 4096, PMBytes: 1 << 20,
	}); err == nil {
		t.Fatal("oversized payload accepted")
	}
	// A DRAM budget below the memtable must be refused for lsmkv.
	if _, err := NewBackend(p, "lsmkv", BackendSpec{
		Media: "optane", Keys: 10, KeySize: 16, ValSize: 64, DRAMBytes: 1 << 20,
	}); err == nil {
		t.Fatal("undersized DRAM budget accepted")
	}
	// Custom (sufficient) budgets work end to end.
	p2 := testPlatform(t)
	be, err := NewBackend(p2, "pmemkv", BackendSpec{
		Media: "optane", Keys: 50, KeySize: 16, ValSize: 64,
		PMBytes: 32 << 20, DRAMBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	p2.Go("t", 0, func(ctx *platform.MemCtx) {
		if _, ok := be.Get(ctx, KeyFor(25, 16)); !ok {
			t.Error("preloaded key missing on custom-sized namespace")
		}
	})
	p2.Run()
}

func TestKneeIndex(t *testing.T) {
	c := Curve{
		{OfferedKops: 10, GenKops: 10, AchievedKops: 10},
		{OfferedKops: 20, GenKops: 20, AchievedKops: 19.8},
		{OfferedKops: 40, GenKops: 40, AchievedKops: 30},
		{OfferedKops: 80, GenKops: 80, AchievedKops: 31},
	}
	if got := c.KneeIndex(); got != 1 {
		t.Fatalf("knee = %d, want 1", got)
	}
	if got := c.SaturationKops(); got != 31 {
		t.Fatalf("saturation = %v, want 31", got)
	}
	// Poisson undershoot at light load is not saturation.
	c[0].GenKops, c[0].AchievedKops = 9, 9
	if got := c.KneeIndex(); got != 1 {
		t.Fatalf("knee with undershoot = %d, want 1", got)
	}
	all := Curve{{GenKops: 10, AchievedKops: 10}, {GenKops: 20, AchievedKops: 20}}
	if got := all.KneeIndex(); got != 1 {
		t.Fatalf("unsaturated curve knee = %d, want last", got)
	}
	sat := Curve{{GenKops: 10, AchievedKops: 5}}
	if got := sat.KneeIndex(); got != 0 {
		t.Fatalf("fully saturated knee = %d, want 0", got)
	}
}
