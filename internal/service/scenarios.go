package service

import (
	"fmt"
	"strconv"
	"strings"

	"optanestudy/internal/devstat"
	"optanestudy/internal/harness"
	"optanestudy/internal/hottier"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/telemetry"
)

// Harness scenarios. Single load points register as "service/kv/pmemkv"
// and "service/kv/lsmkv"; load sweeps ("service/kv/sweep-*") step offered
// load across a grid of point trials and emit the throughput-latency
// curve, with "sweep-contention" repeating the grid per worker count
// against a single-DIMM pool — the paper's threads-per-DIMM best practice
// as a serving experiment.
func init() {
	harness.Register(harness.Scenario{
		Name: "service/kv/pmemkv",
		Doc:  "open-loop GET/PUT/SCAN serving against the pmemkv cmap",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 400 * sim.Microsecond, Seed: 23,
			Params: map[string]string{"backend": "pmemkv"},
		},
		Run: runPoint,
	})
	harness.Register(harness.Scenario{
		Name: "service/kv/lsmkv",
		Doc:  "open-loop GET/PUT/SCAN serving against the lsmkv store",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 4 * sim.Millisecond, Seed: 24,
			Params: map[string]string{"backend": "lsmkv", "offered": "150"},
		},
		Run: runPoint,
	})
	// The scan preset exercises the redesigned Backend interface: lsmkv
	// serves SCANs natively (one sorted memtable + SST merge walk instead
	// of ScanLen point lookups) and a small DELETE fraction writes
	// tombstones through the blind-delete path.
	harness.Register(harness.Scenario{
		Name: "service/kv/lsmkv-scan",
		Doc:  "open-loop serving with native sorted-range SCANs and tombstone DELETEs on lsmkv",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 2 * sim.Millisecond, Seed: 26,
			Params: map[string]string{
				"backend": "lsmkv", "offered": "150", "scanmode": "native",
				"get": "0.5", "put": "0.2", "scan": "0.25", "del": "0.05",
			},
		},
		Run: runPoint,
	})
	harness.Register(harness.Scenario{
		Name: "service/kv/sweep-pmemkv",
		Doc:  "pmemkv throughput-vs-latency curve across an offered-load grid",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 300 * sim.Microsecond, Seed: 33,
			Params: map[string]string{
				"backend": "pmemkv",
				"minkops": "2000", "maxkops": "44000", "points": "7",
			},
		},
		Run: runSweepScenario,
	})
	harness.Register(harness.Scenario{
		Name: "service/kv/sweep-lsmkv",
		Doc:  "lsmkv throughput-vs-latency curve across an offered-load grid",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 2 * sim.Millisecond, Seed: 34,
			Params: map[string]string{
				"backend": "lsmkv",
				"minkops": "100", "maxkops": "700", "points": "5",
			},
		},
		Run: runSweepScenario,
	})
	// The contention preset journals sub-XPLine (128 B) records per worker
	// onto one DIMM: each worker is a sequential write stream whose
	// partially-filled XPLines stay open between requests, so once the
	// worker count exceeds the controller's combining capacity the streams
	// close each other's lines early, EWR collapses, and saturation
	// arrives at a lower offered load with 16 workers than with 4 — the
	// paper's threads-per-DIMM limit as a serving experiment.
	harness.Register(harness.Scenario{
		Name: "service/kv/sweep-contention",
		Doc:  "per-worker-count saturation curves on a single DIMM (threads-per-DIMM limit)",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 35,
			Params: map[string]string{
				"backend": "pmemkv", "media": "optane-ni",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"minkops": "3000", "maxkops": "21000", "points": "7",
				"threadgrid": "4,16",
			},
		},
		Run: runSweepScenario,
	})
	// The batch family turns group commit on: workers drain up to `batch`
	// admitted requests per wakeup and journal the group's PUTs through
	// ONE fence (lingering up to `linger` ns to fill short batches), the
	// write-behind shape of van Renen et al.'s buffered log primitives.
	// The point scenario reports the fence-amortization counters
	// (pmem_fence_per_op well below 1); the sweep repeats the
	// single-DIMM contention grid at depths 1/8/32, where the depth-1 leg
	// is byte-identical to an unbatched sweep and the deeper legs shift
	// the saturation knee right.
	harness.Register(harness.Scenario{
		Name: "service/batch/point",
		Doc:  "group-commit dispatch at one load level: batched drain, one fence per batch",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 36,
			Params: map[string]string{
				"backend": "pmemkv", "media": "optane-ni",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"offered": "15000", "batch": "8", "linger": "1000",
			},
		},
		Run: runPoint,
	})
	// The cache family puts the DRAM hot tier in front of the PM backend:
	// a read-heavy Zipf mix over a keyspace much larger than the
	// (deliberately shrunk) LLC, so GETs that the tier absorbs run at DRAM
	// latency while misses pay the 3D XPoint read path. The sweep repeats
	// the load grid per tier size (cachegrid, @c<N> suffixes, size-0 leg
	// byte-identical to an uncached sweep) and the memmode point runs the
	// competing configuration: the same DRAM budget spent as the memory
	// controller's near cache instead of a software record tier.
	harness.Register(harness.Scenario{
		Name: "service/cache/point",
		Doc:  "read-heavy Zipf serving with a DRAM hot tier fronting pmemkv",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 400 * sim.Microsecond, Seed: 41,
			Params: map[string]string{
				"backend": "pmemkv", "mix": "zipf",
				"keys": "2000", "valsize": "128", "llckb": "16",
				"get": "0.95", "put": "0.05", "scan": "0",
				"offered": "8000", "cache": "262144",
			},
		},
		Run: runPoint,
	})
	harness.Register(harness.Scenario{
		Name: "service/cache/memmode",
		Doc:  "the same DRAM budget as Memory-Mode: hardware near cache instead of a software hot tier",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 400 * sim.Microsecond, Seed: 41,
			Params: map[string]string{
				"tier": "memmode", "mix": "zipf",
				"keys": "2000", "valsize": "128", "llckb": "16",
				"get": "0.95", "put": "0.05", "scan": "0",
				"offered": "8000", "cache": "262144",
			},
		},
		Run: runPoint,
	})
	harness.Register(harness.Scenario{
		Name: "service/cache/sweep",
		Doc:  "saturation curves per DRAM tier size on a read-heavy Zipf mix (knee vs cache size)",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 300 * sim.Microsecond, Seed: 42,
			Params: map[string]string{
				"backend": "pmemkv", "mix": "zipf",
				"keys": "2000", "valsize": "128", "llckb": "16",
				"get": "0.95", "put": "0.05", "scan": "0",
				"minkops": "4000", "maxkops": "28000", "points": "7",
				"cachegrid": "0,65536,524288",
			},
		},
		Run: runSweepScenario,
	})
	harness.Register(harness.Scenario{
		Name: "service/cache/sweep-hotspot",
		Doc:  "tier sizes under a shifting hotspot: the moving working set churns the tier",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 300 * sim.Microsecond, Seed: 43,
			Params: map[string]string{
				"backend": "pmemkv", "mix": "hotspot",
				"hotfrac": "0.9", "hotkeys": "200", "hotperiod": "400",
				"keys": "2000", "valsize": "128", "llckb": "16",
				"get": "0.95", "put": "0.05", "scan": "0",
				"minkops": "4000", "maxkops": "28000", "points": "7",
				"cachegrid": "0,524288",
			},
		},
		Run: runSweepScenario,
	})
	harness.Register(harness.Scenario{
		Name: "service/batch/sweep",
		Doc:  "group-commit saturation curves at batch depths 1/8/32 on a single DIMM",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 35,
			Params: map[string]string{
				"backend": "pmemkv", "media": "optane-ni",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"minkops": "3000", "maxkops": "21000", "points": "7",
				"batchgrid": "1,8,32", "batchlinger": "1000",
			},
		},
		Run: runSweepScenario,
	})
}

// runPoint measures one open-loop load level.
func runPoint(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	backend := r.Str("backend", "pmemkv")
	media := r.Str("media", "optane")
	mode := r.Str("mode", "wal-flex")
	arrival := r.Str("arrival", "poisson")
	offered := r.Float("offered", 4000) // kops
	cycleUS := r.Float("cycle", 20)
	onFrac := r.Float("onfrac", 0.25)
	tenants := r.Int("tenants", 2)
	theta := r.Float("theta", 0.99)
	mix := r.Str("mix", "split")
	hotFrac := r.Float("hotfrac", 0.9)
	hotKeys := r.Int64("hotkeys", 0)
	hotPeriod := r.Int64("hotperiod", 2000)
	keys := r.Int64("keys", 200)
	keySize := r.Int("keysize", 16)
	valSize := r.Int("valsize", 128)
	getFrac := r.Float("get", 0.75)
	putFrac := r.Float("put", 0.2)
	scanFrac := r.Float("scan", 0.05)
	delFrac := r.Float("del", 0)
	scanLen := r.Int("scanlen", 16)
	scanMode := r.Str("scanmode", "emulate")
	putlog := r.Bool("putlog", false)
	qcap := r.Int("qcap", 0)
	pollNS := r.Float("poll", 200)
	batch := r.Int("batch", 1)
	lingerNS := r.Float("linger", 0)
	pmBytes := r.Int64("pmbytes", 0)
	dramBytes := r.Int64("drambytes", 0)
	cacheBytes := r.Int64("cache", 0)
	quotaBytes := r.Int64("quota", 0)
	admit := r.Int("admit", 1)
	evict := r.Str("evict", "clock")
	tierKind := r.Str("tier", "")
	llcKB := r.Int64("llckb", 0)
	devOn := r.Bool("devstat", false)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}
	switch tierKind {
	case "":
		if cacheBytes > 0 {
			tierKind = "hot"
		}
	case "hot":
		if cacheBytes <= 0 {
			return harness.Trial{}, fmt.Errorf("service: tier=hot needs a positive cache size, got %d", cacheBytes)
		}
	case "memmode":
		if cacheBytes <= 0 {
			return harness.Trial{}, fmt.Errorf("service: tier=memmode needs a positive cache (near-DRAM) size, got %d", cacheBytes)
		}
	default:
		return harness.Trial{}, fmt.Errorf("service: unknown tier %q (want hot or memmode)", tierKind)
	}
	if llcKB < 0 {
		return harness.Trial{}, fmt.Errorf("service: llckb must be >= 0, got %d", llcKB)
	}
	if batch < 1 {
		return harness.Trial{}, fmt.Errorf("service: batch size must be >= 1, got %d", batch)
	}
	if lingerNS < 0 {
		return harness.Trial{}, fmt.Errorf("service: linger must be >= 0 ns, got %g", lingerNS)
	}
	var nativeScan bool
	switch scanMode {
	case "native":
		nativeScan = true
	case "emulate":
	default:
		return harness.Trial{}, fmt.Errorf("service: unknown scanmode %q (want emulate or native)", scanMode)
	}
	if offered <= 0 {
		return harness.Trial{}, fmt.Errorf("service: offered load must be positive, got %g", offered)
	}
	if tenants < 1 {
		return harness.Trial{}, fmt.Errorf("service: need at least one tenant, got %d", tenants)
	}

	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	if llcKB > 0 {
		// Cache scenarios shrink the LLC so the working set actually lives
		// beyond it: with the calibrated 12 MB LLC, a small keyspace becomes
		// LLC-resident after warmup and a DRAM tier would measure nothing.
		cfg.LLC.Lines = int(llcKB << 10 / 64)
	}
	p := platform.MustNew(cfg)
	defer p.Close()

	bspec := BackendSpec{
		Media: media, Mode: mode,
		Keys: int64(tenants) * keys, KeySize: keySize, ValSize: valSize,
		PMBytes: pmBytes, DRAMBytes: dramBytes,
		ScanSpan: keys, NativeScan: nativeScan,
	}
	if tierKind == "memmode" {
		backend = "memmode"
		bspec.NearBytes = cacheBytes
	}
	be, err := NewBackend(p, backend, bspec)
	if err != nil {
		return harness.Trial{}, err
	}
	var hotTier *hottier.Tier
	if tierKind == "hot" {
		hotTier, err = hottier.New(p, be, hottier.Config{
			Name: "svc", Socket: spec.Socket,
			CapacityBytes: cacheBytes, RecordBytes: valSize,
			Admit: admit, Policy: evict,
			TenantSpan: keys, QuotaBytes: quotaBytes,
			Seed: spec.Seed ^ 0x407C,
		})
		if err != nil {
			return harness.Trial{}, err
		}
		be = hotTier
	}
	arr, err := NewArrival(arrival, offered*1e3, sim.Micros(cycleUS), onFrac, spec.Seed^0x5A17)
	if err != nil {
		return harness.Trial{}, err
	}
	var plog *AppendLog
	if putlog {
		region := int64(2 << 20)
		if rec := int64(8 + keySize + valSize); region < 4*rec {
			region = 4 * rec // oversized records: keep several per wrap
		}
		plog, err = NewAppendLog(p, BackendSpec{Media: media}, spec.Threads, region)
		if err != nil {
			return harness.Trial{}, err
		}
	}
	if hotKeys == 0 {
		hotKeys = keys/20 + 1
	}
	tens := make([]Tenant, tenants)
	for i := range tens {
		tens[i] = Tenant{Name: fmt.Sprintf("t%d", i)}
		switch mix {
		case "zipf":
			tens[i].Theta = theta
		case "uniform":
		case "split":
			// Even tenants are Zipf-skewed, odd tenants uniform.
			if i%2 == 0 {
				tens[i].Theta = theta
			}
		case "hotspot":
			// Every tenant draws from its own shifting hot window.
			tens[i].HotFrac = hotFrac
			tens[i].HotKeys = hotKeys
			tens[i].HotPeriod = hotPeriod
		default:
			return harness.Trial{}, fmt.Errorf("service: unknown key mix %q (want zipf, uniform, split or hotspot)", mix)
		}
	}
	mb, isMemMode := be.(*memModeBackend)
	var rec *telemetry.Recorder
	var cacheStats func() (int64, int64)
	if spec.Trace {
		rec = telemetry.NewRecorder(TraceInterval(spec.Duration), 0)
		if plog != nil {
			rec.AddProbe(func(add func(string, float64)) {
				c := plog.Counters()
				c.Gauges(add)
			})
		}
		AddDeviceProbes(rec, p)
		switch {
		case hotTier != nil:
			rec.AddProbe(func(add func(string, float64)) { hotTier.Counters().Gauges(add) })
			cacheStats = func() (int64, int64) {
				c := hotTier.Counters()
				return c.Hits, c.Misses
			}
		case isMemMode:
			rec.AddProbe(func(add func(string, float64)) {
				hits, misses, writebacks := mb.Stats().Stats()
				add("cache_hits", float64(hits))
				add("cache_misses", float64(misses))
				add("memmode_writebacks", float64(writebacks))
			})
			cacheStats = func() (int64, int64) {
				hits, misses, _ := mb.Stats().Stats()
				return hits, misses
			}
		}
	}
	// The devstat watcher captures device-counter snapshots at the measured
	// window's boundaries on its own read-only proc — it observes the run
	// without the serving layer knowing, so results are unchanged.
	var dw *devstat.Watcher
	if devOn {
		dw = devstat.Watch(p, spec.Socket, spec.Warmup, spec.Duration)
	}
	res, err := Serve(Config{
		Platform: p, Backend: be,
		Socket: spec.Socket, Workers: spec.Threads, QueueCap: qcap,
		Arrival: arr, Tenants: tens,
		Keys: keys, KeySize: keySize, ValSize: valSize,
		GetFrac: getFrac, PutFrac: putFrac, ScanFrac: scanFrac, DelFrac: delFrac,
		ScanLen:  scanLen,
		PutLog:   plog,
		Duration: spec.Duration, Warmup: spec.Warmup,
		Poll: sim.Nanos(pollNS), Seed: spec.Seed,
		BatchSize: batch, BatchLinger: sim.Nanos(lingerNS),
		Recorder:  rec, CacheStats: cacheStats,
	})
	if err != nil {
		return harness.Trial{}, err
	}

	qs := res.Latency.Quantiles([]float64{0.5, 0.95, 0.99, 0.999})
	m := map[string]float64{
		"offered_kops":  res.OfferedRate / 1e3,
		"achieved_kops": res.AchievedRate / 1e3,
		"drop_frac":     dropFrac(res.Dropped, res.Offered),
		"p50_ns":        qs[0],
		"p95_ns":        qs[1],
		"p99_ns":        qs[2],
		"p999_ns":       qs[3],
		"util":          res.Utilization(spec.Threads),
		"qmax":          float64(res.MaxQueueLen),
	}
	for i := range res.Tenants {
		t := &res.Tenants[i]
		m[fmt.Sprintf("t%d_p99_ns", i)] = t.Latency.Percentile(0.99)
		m[fmt.Sprintf("t%d_drop_frac", i)] = dropFrac(t.Dropped, t.Offered)
		// Per-tenant shed accounting appears once the run actually sheds,
		// keeping the light-load baseline scenarios' output byte-stable
		// while skewed overload runs show who gets dropped. The gate
		// depends only on the result, never on the schedule.
		harness.GateMetric(m, res.Dropped > 0, fmt.Sprintf("t%d_shed_ops", i), float64(t.Dropped))
	}
	// Fence-amortization readout, gated on the batch path actually being
	// on so the batch=1 default keeps every pre-existing scenario's output
	// byte-stable (group-commit counters would otherwise add keys).
	harness.GateMetrics(m, batch > 1 && plog != nil, func(m map[string]float64) {
		c := plog.Counters()
		c.Metrics(m)
	})
	// Cache-tier readout, gated the same way: only runs with an explicit
	// DRAM tier (software hot tier or Memory-Mode near cache) emit the
	// cache_* keys, so every pre-existing scenario stays byte-stable.
	harness.GateMetrics(m, hotTier != nil, func(m map[string]float64) {
		hotTier.Counters().Metrics(m)
	})
	// Device-health readout, gated on the devstat param: absent (the
	// default) the run emits zero dev_* keys, so every pre-existing
	// scenario's output stays byte-identical under the neutrality guard.
	harness.GateMetrics(m, dw != nil, func(m map[string]float64) {
		dw.Window().Metrics(m)
	})
	harness.GateMetrics(m, hotTier == nil && isMemMode, func(m map[string]float64) {
		hits, misses, writebacks := mb.Stats().Stats()
		m["cache_hits"] = float64(hits)
		m["cache_misses"] = float64(misses)
		m["cache_evictions"] = float64(mb.Stats().Evictions())
		if hits+misses > 0 {
			m["cache_hit_rate"] = float64(hits) / float64(hits+misses)
		} else {
			m["cache_hit_rate"] = 0
		}
		m["memmode_writebacks"] = float64(writebacks)
	})
	tr := harness.Trial{
		Ops:     res.Completed,
		Sim:     res.Window,
		Latency: res.Latency,
		Metrics: m,
	}
	if rec != nil {
		run := rec.Finish("")
		run.Metrics(m)
		tr.Trace = &telemetry.Trace{Runs: []*telemetry.Run{run}}
	}
	return tr, nil
}

func dropFrac(dropped, offered int64) float64 {
	if offered == 0 {
		return 0
	}
	return float64(dropped) / float64(offered)
}

// runSweepScenario fans a load grid (and, with threadgrid / batchgrid
// params, a worker-count or group-commit-depth grid) out over nested
// point trials. Grid params are consumed here; everything else passes
// through to the point scenario verbatim, whose reader catches typos.
//
// A batchgrid leg with depth 1 injects NO batch params at all, so its
// point specs — and therefore their derived seeds and results — are
// byte-identical to the same sweep without a batch axis: the unbatched
// curve is the baseline, not a near-copy of it. batchlinger (ns) rides
// the same rule: it reaches only the depth>1 legs.
func runSweepScenario(spec harness.Spec) (harness.Trial, error) {
	rest := make(map[string]string, len(spec.Params))
	for k, v := range spec.Params {
		rest[k] = v
	}
	minKops, maxKops, pointsF, err := GridParams(rest, 1000, 16000, 6)
	if err != nil {
		return harness.Trial{}, err
	}
	backend := rest["backend"]
	if backend == "" {
		backend = "pmemkv"
	}
	threadGrid := []int{spec.Threads}
	if tg, ok := rest["threadgrid"]; ok {
		delete(rest, "threadgrid")
		threadGrid = threadGrid[:0]
		for _, s := range strings.Split(tg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return harness.Trial{}, fmt.Errorf("param threadgrid=%q: want comma-separated positive ints", tg)
			}
			threadGrid = append(threadGrid, n)
		}
	}
	batchGrid, linger, err := BatchGridParams(rest)
	if err != nil {
		return harness.Trial{}, err
	}
	cacheGrid, cacheExtras, err := CacheGridParams(rest)
	if err != nil {
		return harness.Trial{}, err
	}

	tr := harness.Trial{Metrics: make(map[string]float64)}
	var trace *telemetry.Trace
	var text strings.Builder
	for _, threads := range threadGrid {
		for _, batch := range batchGrid {
			for _, cache := range cacheGrid {
				params := CacheLegParams(BatchLegParams(rest, batch, linger), cache, cacheExtras)
				curve, err := RunSweep(SweepConfig{
					Backend: backend, Params: params,
					Threads: threads, Duration: spec.Duration, Warmup: spec.Warmup,
					Seed:    spec.Seed,
					MinKops: minKops, MaxKops: maxKops, Points: int(pointsF),
					Parallel: spec.Parallel,
					Trace:    spec.Trace,
				})
				if err != nil {
					return harness.Trial{}, err
				}
				suffix := ""
				if len(threadGrid) > 1 {
					suffix += fmt.Sprintf("@t%d", threads)
				}
				if len(batchGrid) > 1 {
					suffix += fmt.Sprintf("@b%d", batch)
				}
				if len(cacheGrid) > 1 {
					suffix += fmt.Sprintf("@c%d", cache)
				}
				trace = MergeCurveTrace(trace, curve, suffix)
				EmitCurve(&tr, curve, suffix)
				// Cached legs add their curve-level cache readout (hit rate at
				// the deepest load, where the tier is warmest, plus the knee's
				// p50); the cache-less legs emit nothing extra, keeping them
				// byte-identical to a sweep without the cache axis.
				if cache > 0 {
					tr.Metrics["cache_hit_rate"+suffix] = curve[len(curve)-1].Metrics["cache_hit_rate"]
					tr.Metrics["p50_knee_ns"+suffix] = curve[curve.KneeIndex()].P50
				}
				title := fmt.Sprintf("service sweep: %s, %d workers", backend, threads)
				if len(batchGrid) > 1 {
					title += fmt.Sprintf(", batch %d", batch)
				}
				if len(cacheGrid) > 1 {
					title += fmt.Sprintf(", cache %d B", cache)
				}
				text.WriteString(curve.TSV(title))
				text.WriteByte('\n')
			}
		}
	}
	tr.Text = strings.TrimRight(text.String(), "\n")
	tr.Trace = trace
	return tr, nil
}

// MergeCurveTrace folds a traced curve's per-point recordings into one
// trial-level trace, relabelling each run with its grid coordinate (and
// the sweep leg's metric suffix) so a renderer can tell the points apart.
// Returns trace unchanged on untraced sweeps. Shared with the cluster
// sweep scenario.
func MergeCurveTrace(trace *telemetry.Trace, curve Curve, suffix string) *telemetry.Trace {
	for _, pt := range curve {
		if pt.Trace == nil {
			continue
		}
		if trace == nil {
			trace = &telemetry.Trace{}
		}
		for _, rn := range pt.Trace.Runs {
			rn.Label = fmt.Sprintf("offered=%g%s", pt.OfferedKops, suffix)
			trace.Runs = append(trace.Runs, rn)
		}
	}
	return trace
}

// BatchGridParams consumes the group-commit sweep params: "batchgrid" (a
// comma-separated list of batch depths; default just depth 1) and
// "batchlinger" (the linger bound in ns for the depth>1 legs). Shared by
// the service and cluster sweep scenarios.
func BatchGridParams(params map[string]string) (grid []int, linger string, err error) {
	grid = []int{1}
	if bg, ok := params["batchgrid"]; ok {
		delete(params, "batchgrid")
		grid = grid[:0]
		for _, s := range strings.Split(bg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return nil, "", fmt.Errorf("param batchgrid=%q: want comma-separated positive ints", bg)
			}
			grid = append(grid, n)
		}
	}
	if lg, ok := params["batchlinger"]; ok {
		delete(params, "batchlinger")
		linger = lg
	}
	return grid, linger, nil
}

// BatchLegParams renders one batch-grid leg's point params: depth 1
// passes base through untouched (no batch keys — the spec must stay
// byte-identical to an unbatched sweep's), deeper legs copy base and add
// batch/linger.
func BatchLegParams(base map[string]string, batch int, linger string) map[string]string {
	if batch <= 1 {
		return base
	}
	params := make(map[string]string, len(base)+2)
	for k, v := range base {
		params[k] = v
	}
	params["batch"] = strconv.Itoa(batch)
	if linger != "" {
		params["linger"] = linger
	}
	return params
}

// CacheGridParams consumes the hot-tier sweep params: "cachegrid" (a
// comma-separated list of DRAM tier sizes in bytes; 0 is the uncached
// leg, and the default grid is just that) plus the companions that reach
// only the cached legs — "cachequota", "cacheadmit", "cacheevict" and
// "cachetier" map onto the point scenario's quota/admit/evict/tier
// params. Shared by the service and cluster sweep scenarios.
func CacheGridParams(params map[string]string) (grid []int64, extras map[string]string, err error) {
	grid = []int64{0}
	if cg, ok := params["cachegrid"]; ok {
		delete(params, "cachegrid")
		grid = grid[:0]
		for _, s := range strings.Split(cg, ",") {
			n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("param cachegrid=%q: want comma-separated byte sizes >= 0", cg)
			}
			grid = append(grid, n)
		}
	}
	for param, key := range map[string]string{
		"cachequota": "quota",
		"cacheadmit": "admit",
		"cacheevict": "evict",
		"cachetier":  "tier",
	} {
		if v, ok := params[param]; ok {
			delete(params, param)
			if extras == nil {
				extras = make(map[string]string)
			}
			extras[key] = v
		}
	}
	return grid, extras, nil
}

// CacheLegParams renders one cache-grid leg's point params: size 0 passes
// base through untouched (no cache keys — the uncached leg's specs, and
// so their derived seeds and results, stay byte-identical to a sweep with
// no cache axis), larger sizes copy base and add cache plus the
// companions.
func CacheLegParams(base map[string]string, cache int64, extras map[string]string) map[string]string {
	if cache <= 0 {
		return base
	}
	params := make(map[string]string, len(base)+1+len(extras))
	for k, v := range base {
		params[k] = v
	}
	params["cache"] = strconv.FormatInt(cache, 10)
	for k, v := range extras {
		params[k] = v
	}
	return params
}
