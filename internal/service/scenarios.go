package service

import (
	"fmt"
	"strconv"
	"strings"

	"optanestudy/internal/harness"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

// Harness scenarios. Single load points register as "service/kv/pmemkv"
// and "service/kv/lsmkv"; load sweeps ("service/kv/sweep-*") step offered
// load across a grid of point trials and emit the throughput-latency
// curve, with "sweep-contention" repeating the grid per worker count
// against a single-DIMM pool — the paper's threads-per-DIMM best practice
// as a serving experiment.
func init() {
	harness.Register(harness.Scenario{
		Name: "service/kv/pmemkv",
		Doc:  "open-loop GET/PUT/SCAN serving against the pmemkv cmap",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 400 * sim.Microsecond, Seed: 23,
			Params: map[string]string{"backend": "pmemkv"},
		},
		Run: runPoint,
	})
	harness.Register(harness.Scenario{
		Name: "service/kv/lsmkv",
		Doc:  "open-loop GET/PUT/SCAN serving against the lsmkv store",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 4 * sim.Millisecond, Seed: 24,
			Params: map[string]string{"backend": "lsmkv", "offered": "150"},
		},
		Run: runPoint,
	})
	// The scan preset exercises the redesigned Backend interface: lsmkv
	// serves SCANs natively (one sorted memtable + SST merge walk instead
	// of ScanLen point lookups) and a small DELETE fraction writes
	// tombstones through the blind-delete path.
	harness.Register(harness.Scenario{
		Name: "service/kv/lsmkv-scan",
		Doc:  "open-loop serving with native sorted-range SCANs and tombstone DELETEs on lsmkv",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 2 * sim.Millisecond, Seed: 26,
			Params: map[string]string{
				"backend": "lsmkv", "offered": "150", "scanmode": "native",
				"get": "0.5", "put": "0.2", "scan": "0.25", "del": "0.05",
			},
		},
		Run: runPoint,
	})
	harness.Register(harness.Scenario{
		Name: "service/kv/sweep-pmemkv",
		Doc:  "pmemkv throughput-vs-latency curve across an offered-load grid",
		Defaults: harness.Defaults{
			Threads: 8, Duration: 300 * sim.Microsecond, Seed: 33,
			Params: map[string]string{
				"backend": "pmemkv",
				"minkops": "2000", "maxkops": "44000", "points": "7",
			},
		},
		Run: runSweepScenario,
	})
	harness.Register(harness.Scenario{
		Name: "service/kv/sweep-lsmkv",
		Doc:  "lsmkv throughput-vs-latency curve across an offered-load grid",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 2 * sim.Millisecond, Seed: 34,
			Params: map[string]string{
				"backend": "lsmkv",
				"minkops": "100", "maxkops": "700", "points": "5",
			},
		},
		Run: runSweepScenario,
	})
	// The contention preset journals sub-XPLine (128 B) records per worker
	// onto one DIMM: each worker is a sequential write stream whose
	// partially-filled XPLines stay open between requests, so once the
	// worker count exceeds the controller's combining capacity the streams
	// close each other's lines early, EWR collapses, and saturation
	// arrives at a lower offered load with 16 workers than with 4 — the
	// paper's threads-per-DIMM limit as a serving experiment.
	harness.Register(harness.Scenario{
		Name: "service/kv/sweep-contention",
		Doc:  "per-worker-count saturation curves on a single DIMM (threads-per-DIMM limit)",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 35,
			Params: map[string]string{
				"backend": "pmemkv", "media": "optane-ni",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"minkops": "3000", "maxkops": "21000", "points": "7",
				"threadgrid": "4,16",
			},
		},
		Run: runSweepScenario,
	})
	// The batch family turns group commit on: workers drain up to `batch`
	// admitted requests per wakeup and journal the group's PUTs through
	// ONE fence (lingering up to `linger` ns to fill short batches), the
	// write-behind shape of van Renen et al.'s buffered log primitives.
	// The point scenario reports the fence-amortization counters
	// (pmem_fence_per_op well below 1); the sweep repeats the
	// single-DIMM contention grid at depths 1/8/32, where the depth-1 leg
	// is byte-identical to an unbatched sweep and the deeper legs shift
	// the saturation knee right.
	harness.Register(harness.Scenario{
		Name: "service/batch/point",
		Doc:  "group-commit dispatch at one load level: batched drain, one fence per batch",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 36,
			Params: map[string]string{
				"backend": "pmemkv", "media": "optane-ni",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"offered": "15000", "batch": "8", "linger": "1000",
			},
		},
		Run: runPoint,
	})
	harness.Register(harness.Scenario{
		Name: "service/batch/sweep",
		Doc:  "group-commit saturation curves at batch depths 1/8/32 on a single DIMM",
		Defaults: harness.Defaults{
			Threads: 4, Duration: 300 * sim.Microsecond, Seed: 35,
			Params: map[string]string{
				"backend": "pmemkv", "media": "optane-ni",
				"putlog": "1", "keysize": "8", "valsize": "112",
				"get": "0.3", "put": "0.7", "scan": "0",
				"minkops": "3000", "maxkops": "21000", "points": "7",
				"batchgrid": "1,8,32", "batchlinger": "1000",
			},
		},
		Run: runSweepScenario,
	})
}

// runPoint measures one open-loop load level.
func runPoint(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	backend := r.Str("backend", "pmemkv")
	media := r.Str("media", "optane")
	mode := r.Str("mode", "wal-flex")
	arrival := r.Str("arrival", "poisson")
	offered := r.Float("offered", 4000) // kops
	cycleUS := r.Float("cycle", 20)
	onFrac := r.Float("onfrac", 0.25)
	tenants := r.Int("tenants", 2)
	theta := r.Float("theta", 0.99)
	mix := r.Str("mix", "split")
	hotFrac := r.Float("hotfrac", 0.9)
	hotKeys := r.Int64("hotkeys", 0)
	hotPeriod := r.Int64("hotperiod", 2000)
	keys := r.Int64("keys", 200)
	keySize := r.Int("keysize", 16)
	valSize := r.Int("valsize", 128)
	getFrac := r.Float("get", 0.75)
	putFrac := r.Float("put", 0.2)
	scanFrac := r.Float("scan", 0.05)
	delFrac := r.Float("del", 0)
	scanLen := r.Int("scanlen", 16)
	scanMode := r.Str("scanmode", "emulate")
	putlog := r.Bool("putlog", false)
	qcap := r.Int("qcap", 0)
	pollNS := r.Float("poll", 200)
	batch := r.Int("batch", 1)
	lingerNS := r.Float("linger", 0)
	pmBytes := r.Int64("pmbytes", 0)
	dramBytes := r.Int64("drambytes", 0)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}
	if batch < 1 {
		return harness.Trial{}, fmt.Errorf("service: batch size must be >= 1, got %d", batch)
	}
	if lingerNS < 0 {
		return harness.Trial{}, fmt.Errorf("service: linger must be >= 0 ns, got %g", lingerNS)
	}
	var nativeScan bool
	switch scanMode {
	case "native":
		nativeScan = true
	case "emulate":
	default:
		return harness.Trial{}, fmt.Errorf("service: unknown scanmode %q (want emulate or native)", scanMode)
	}
	if offered <= 0 {
		return harness.Trial{}, fmt.Errorf("service: offered load must be positive, got %g", offered)
	}
	if tenants < 1 {
		return harness.Trial{}, fmt.Errorf("service: need at least one tenant, got %d", tenants)
	}

	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	defer p.Close()

	be, err := NewBackend(p, backend, BackendSpec{
		Media: media, Mode: mode,
		Keys: int64(tenants) * keys, KeySize: keySize, ValSize: valSize,
		PMBytes: pmBytes, DRAMBytes: dramBytes,
		ScanSpan: keys, NativeScan: nativeScan,
	})
	if err != nil {
		return harness.Trial{}, err
	}
	arr, err := NewArrival(arrival, offered*1e3, sim.Micros(cycleUS), onFrac, spec.Seed^0x5A17)
	if err != nil {
		return harness.Trial{}, err
	}
	var plog *AppendLog
	if putlog {
		region := int64(2 << 20)
		if rec := int64(8 + keySize + valSize); region < 4*rec {
			region = 4 * rec // oversized records: keep several per wrap
		}
		plog, err = NewAppendLog(p, BackendSpec{Media: media}, spec.Threads, region)
		if err != nil {
			return harness.Trial{}, err
		}
	}
	if hotKeys == 0 {
		hotKeys = keys/20 + 1
	}
	tens := make([]Tenant, tenants)
	for i := range tens {
		tens[i] = Tenant{Name: fmt.Sprintf("t%d", i)}
		switch mix {
		case "zipf":
			tens[i].Theta = theta
		case "uniform":
		case "split":
			// Even tenants are Zipf-skewed, odd tenants uniform.
			if i%2 == 0 {
				tens[i].Theta = theta
			}
		case "hotspot":
			// Every tenant draws from its own shifting hot window.
			tens[i].HotFrac = hotFrac
			tens[i].HotKeys = hotKeys
			tens[i].HotPeriod = hotPeriod
		default:
			return harness.Trial{}, fmt.Errorf("service: unknown key mix %q (want zipf, uniform, split or hotspot)", mix)
		}
	}
	res, err := Serve(Config{
		Platform: p, Backend: be,
		Socket: spec.Socket, Workers: spec.Threads, QueueCap: qcap,
		Arrival: arr, Tenants: tens,
		Keys: keys, KeySize: keySize, ValSize: valSize,
		GetFrac: getFrac, PutFrac: putFrac, ScanFrac: scanFrac, DelFrac: delFrac,
		ScanLen:  scanLen,
		PutLog:   plog,
		Duration: spec.Duration, Warmup: spec.Warmup,
		Poll: sim.Nanos(pollNS), Seed: spec.Seed,
		BatchSize: batch, BatchLinger: sim.Nanos(lingerNS),
	})
	if err != nil {
		return harness.Trial{}, err
	}

	qs := res.Latency.Quantiles([]float64{0.5, 0.95, 0.99, 0.999})
	m := map[string]float64{
		"offered_kops":  res.OfferedRate / 1e3,
		"achieved_kops": res.AchievedRate / 1e3,
		"drop_frac":     dropFrac(res.Dropped, res.Offered),
		"p50_ns":        qs[0],
		"p95_ns":        qs[1],
		"p99_ns":        qs[2],
		"p999_ns":       qs[3],
		"util":          res.Utilization(spec.Threads),
		"qmax":          float64(res.MaxQueueLen),
	}
	for i := range res.Tenants {
		t := &res.Tenants[i]
		m[fmt.Sprintf("t%d_p99_ns", i)] = t.Latency.Percentile(0.99)
		m[fmt.Sprintf("t%d_drop_frac", i)] = dropFrac(t.Dropped, t.Offered)
		// Per-tenant shed accounting appears once the run actually sheds,
		// keeping the light-load baseline scenarios' output byte-stable
		// while skewed overload runs show who gets dropped. The gate
		// depends only on the result, never on the schedule.
		if res.Dropped > 0 {
			m[fmt.Sprintf("t%d_shed_ops", i)] = float64(t.Dropped)
		}
	}
	// Fence-amortization readout, gated on the batch path actually being
	// on so the batch=1 default keeps every pre-existing scenario's output
	// byte-stable (group-commit counters would otherwise add keys).
	if batch > 1 && plog != nil {
		c := plog.Counters()
		c.Metrics(m)
	}
	return harness.Trial{
		Ops:     res.Completed,
		Sim:     res.Window,
		Latency: res.Latency,
		Metrics: m,
	}, nil
}

func dropFrac(dropped, offered int64) float64 {
	if offered == 0 {
		return 0
	}
	return float64(dropped) / float64(offered)
}

// runSweepScenario fans a load grid (and, with threadgrid / batchgrid
// params, a worker-count or group-commit-depth grid) out over nested
// point trials. Grid params are consumed here; everything else passes
// through to the point scenario verbatim, whose reader catches typos.
//
// A batchgrid leg with depth 1 injects NO batch params at all, so its
// point specs — and therefore their derived seeds and results — are
// byte-identical to the same sweep without a batch axis: the unbatched
// curve is the baseline, not a near-copy of it. batchlinger (ns) rides
// the same rule: it reaches only the depth>1 legs.
func runSweepScenario(spec harness.Spec) (harness.Trial, error) {
	rest := make(map[string]string, len(spec.Params))
	for k, v := range spec.Params {
		rest[k] = v
	}
	minKops, maxKops, pointsF, err := GridParams(rest, 1000, 16000, 6)
	if err != nil {
		return harness.Trial{}, err
	}
	backend := rest["backend"]
	if backend == "" {
		backend = "pmemkv"
	}
	threadGrid := []int{spec.Threads}
	if tg, ok := rest["threadgrid"]; ok {
		delete(rest, "threadgrid")
		threadGrid = threadGrid[:0]
		for _, s := range strings.Split(tg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return harness.Trial{}, fmt.Errorf("param threadgrid=%q: want comma-separated positive ints", tg)
			}
			threadGrid = append(threadGrid, n)
		}
	}
	batchGrid, linger, err := BatchGridParams(rest)
	if err != nil {
		return harness.Trial{}, err
	}

	tr := harness.Trial{Metrics: make(map[string]float64)}
	var text strings.Builder
	for _, threads := range threadGrid {
		for _, batch := range batchGrid {
			params := BatchLegParams(rest, batch, linger)
			curve, err := RunSweep(SweepConfig{
				Backend: backend, Params: params,
				Threads: threads, Duration: spec.Duration, Warmup: spec.Warmup,
				Seed:    spec.Seed,
				MinKops: minKops, MaxKops: maxKops, Points: int(pointsF),
				Parallel: spec.Parallel,
			})
			if err != nil {
				return harness.Trial{}, err
			}
			suffix := ""
			if len(threadGrid) > 1 {
				suffix += fmt.Sprintf("@t%d", threads)
			}
			if len(batchGrid) > 1 {
				suffix += fmt.Sprintf("@b%d", batch)
			}
			EmitCurve(&tr, curve, suffix)
			title := fmt.Sprintf("service sweep: %s, %d workers", backend, threads)
			if len(batchGrid) > 1 {
				title += fmt.Sprintf(", batch %d", batch)
			}
			text.WriteString(curve.TSV(title))
			text.WriteByte('\n')
		}
	}
	tr.Text = strings.TrimRight(text.String(), "\n")
	return tr, nil
}

// BatchGridParams consumes the group-commit sweep params: "batchgrid" (a
// comma-separated list of batch depths; default just depth 1) and
// "batchlinger" (the linger bound in ns for the depth>1 legs). Shared by
// the service and cluster sweep scenarios.
func BatchGridParams(params map[string]string) (grid []int, linger string, err error) {
	grid = []int{1}
	if bg, ok := params["batchgrid"]; ok {
		delete(params, "batchgrid")
		grid = grid[:0]
		for _, s := range strings.Split(bg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return nil, "", fmt.Errorf("param batchgrid=%q: want comma-separated positive ints", bg)
			}
			grid = append(grid, n)
		}
	}
	if lg, ok := params["batchlinger"]; ok {
		delete(params, "batchlinger")
		linger = lg
	}
	return grid, linger, nil
}

// BatchLegParams renders one batch-grid leg's point params: depth 1
// passes base through untouched (no batch keys — the spec must stay
// byte-identical to an unbatched sweep's), deeper legs copy base and add
// batch/linger.
func BatchLegParams(base map[string]string, batch int, linger string) map[string]string {
	if batch <= 1 {
		return base
	}
	params := make(map[string]string, len(base)+2)
	for k, v := range base {
		params[k] = v
	}
	params["batch"] = strconv.Itoa(batch)
	if linger != "" {
		params["linger"] = linger
	}
	return params
}
