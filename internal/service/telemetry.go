package service

import (
	"fmt"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/telemetry"
)

// TraceInterval derives the timeline sampling interval from a measured
// window: ~40 samples per run, floored at 1 µs so shortened smoke windows
// sample sparsely instead of per-op. Deriving it from the spec's Duration
// (never from a param) keeps tracing entirely outside seed derivation —
// a traced trial reproduces the untraced trial's results exactly.
func TraceInterval(duration sim.Time) sim.Time {
	iv := duration / 40
	if iv < sim.Microsecond {
		iv = sim.Microsecond
	}
	return iv
}

// AddEWRProbe registers per-socket 3D XPoint write-traffic gauges: the
// controller-side write bytes (payload reaching the DIMMs) and the
// media-side write bytes (what the media actually wrote, including
// read-modify-write amplification of sub-XPLine stores). A renderer
// differences successive samples into a windowed EWR proxy — Δctrl/Δmedia
// over the interval — the paper's effective-write-ratio signal as a time
// series instead of a single end-of-run scalar. Every socket is probed
// unconditionally so timeline columns stay stable across samples.
func AddEWRProbe(rec *telemetry.Recorder, p *platform.Platform) {
	sockets := p.Config().Geometry.Sockets
	for s := 0; s < sockets; s++ {
		s := s
		ctrlName := fmt.Sprintf("xp_ctrl_write_bytes_s%d", s)
		mediaName := fmt.Sprintf("xp_media_write_bytes_s%d", s)
		rec.AddProbe(func(add func(string, float64)) {
			c := p.XPCounters(s)
			add(ctrlName, float64(c.CtrlWriteBytes))
			add(mediaName, float64(c.MediaWriteBytes))
		})
	}
}
