package service

import (
	"optanestudy/internal/devstat"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/telemetry"
)

// TraceInterval derives the timeline sampling interval from a measured
// window: ~40 samples per run, floored at 1 µs so shortened smoke windows
// sample sparsely instead of per-op. Deriving it from the spec's Duration
// (never from a param) keeps tracing entirely outside seed derivation —
// a traced trial reproduces the untraced trial's results exactly.
func TraceInterval(duration sim.Time) sim.Time {
	iv := duration / 40
	if iv < sim.Microsecond {
		iv = sim.Microsecond
	}
	return iv
}

// AddDeviceProbes registers the per-DIMM device gauge set (controller and
// media byte counters, XPBuffer hits/misses, WPQ stall time) with a trace
// recorder. It replaces the earlier two-gauge per-socket EWR probe: a
// renderer now differences per-DIMM windowed EWR, bandwidth and stall
// fraction, and recovers the per-socket series by summing DIMMs.
func AddDeviceProbes(rec *telemetry.Recorder, p *platform.Platform) {
	devstat.AddProbes(rec, p)
}
