// Package service is a simulated request-serving frontend: open-loop
// traffic generation against the repository's KV backends.
//
// Everything else in the study is closed-loop — a fixed thread count
// hammers the platform and reports mean latency or bandwidth. The paper's
// third best practice (limit the number of threads contending for a DIMM)
// is fundamentally a load-versus-tail-latency phenomenon, so this package
// models the serving side: arrival processes (deterministic-rate, Poisson,
// bursty) generate timestamped requests with per-tenant Zipf or uniform
// key mixes; a dispatcher admits them to a bounded FIFO queue (full queue
// ⇒ load shedding); a pool of simulated worker threads executes GET / PUT
// / SCAN against the backend; and per-tenant end-to-end latency — queueing
// delay plus service time — lands in stats.Histogram tail percentiles.
// Load sweeps (sweep.go) step offered load across a grid to produce the
// throughput-versus-p50/p99 curve and locate the saturation knee.
package service

import (
	"errors"
	"fmt"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/workload"
)

// Op is a request kind.
type Op int

// Request kinds.
const (
	OpGet Op = iota
	OpPut
	OpScan
	OpDel
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpScan:
		return "SCAN"
	default:
		return "DEL"
	}
}

// Tenant is one traffic class sharing the frontend. Tenants draw keys from
// disjoint key ranges so popularity skew is per-tenant.
type Tenant struct {
	Name string
	// Theta is the Zipfian skew of the tenant's key popularity, in (0, 1);
	// 0 selects uniform.
	Theta float64
}

// Config configures one open-loop serving run.
type Config struct {
	Platform *platform.Platform
	Backend  Backend
	// Socket places the worker threads.
	Socket int
	// Workers is the service thread-pool size.
	Workers int
	// QueueCap bounds the admission queue; a request arriving when the
	// queue is full is shed (counted, not served). Defaults to 32×Workers.
	QueueCap int
	// Arrival is the seeded offered-load process.
	Arrival Arrival
	// Tenants share the offered load equally (round-robin-free random
	// pick); at least one is required.
	Tenants []Tenant
	// Keys is the per-tenant key-space size; tenant i owns global ids
	// [i*Keys, (i+1)*Keys).
	Keys             int64
	KeySize, ValSize int
	// GetFrac/PutFrac/ScanFrac/DelFrac select the op mix; they must sum
	// to ~1.
	GetFrac, PutFrac, ScanFrac, DelFrac float64
	// ScanLen is the number of consecutive keys a SCAN reads.
	ScanLen int
	// PutLog, when set, switches PUT to write-behind logging: the record
	// is made durable on the worker's private append log (one sequential
	// NT stream per worker) instead of updating the backend in place —
	// the contention-study configuration. It must have at least Workers
	// per-worker logs.
	PutLog *AppendLog
	// Duration is the measured window; Warmup precedes it (requests
	// arriving during warmup are served but not recorded).
	Duration sim.Time
	Warmup   sim.Time
	// Poll is the idle worker's queue re-check interval (default 200 ns).
	Poll sim.Time
	Seed uint64
}

// TenantStats is one tenant's outcome over the measured window.
type TenantStats struct {
	Name      string
	Offered   int64 // requests generated
	Dropped   int64 // shed at the admission queue
	Completed int64 // served to completion
	// Latency is the end-to-end distribution (ns): queueing delay plus
	// backend service time.
	Latency *stats.Histogram
}

// Result is the outcome of one serving run.
type Result struct {
	Tenants []TenantStats
	// Latency merges every tenant's end-to-end histogram.
	Latency *stats.Histogram
	// Window is the measured window (= Config.Duration).
	Window sim.Time
	// Offered/Dropped/Completed aggregate the tenants.
	Offered, Dropped, Completed int64
	// OfferedRate and AchievedRate are ops per simulated second over the
	// window.
	OfferedRate, AchievedRate float64
	// WorkerBusy is cumulative in-service worker time (utilization =
	// WorkerBusy / (Workers × Window)).
	WorkerBusy sim.Time
	// QueueResidency is the integral of queue occupancy over time (the
	// aggregate queueing delay); MaxQueueLen is the high-water mark.
	QueueResidency sim.Time
	MaxQueueLen    int
}

// Utilization returns the worker pool's busy fraction over the window.
func (r *Result) Utilization(workers int) float64 {
	if workers <= 0 || r.Window <= 0 {
		return 0
	}
	return float64(r.WorkerBusy) / (float64(workers) * float64(r.Window))
}

// request is one admitted unit of work. Admission is immediate (a full
// queue sheds instead of delaying), so the arrival timestamp is also the
// enqueue timestamp.
type request struct {
	tenant   int
	op       Op
	key      int64 // global key id
	arrival  sim.Time
	measured bool
}

// keyGen draws key ids from one tenant's range.
type keyGen struct {
	base int64
	n    int64
	zipf *workload.Zipf
	rng  *sim.RNG
}

func (g *keyGen) next() int64 {
	if g.zipf != nil {
		return g.base + g.zipf.Next()
	}
	return g.base + g.rng.Int63n(g.n)
}

// serveState is the dispatcher/worker shared state. Procs run one at a
// time and only hand off at explicit time advances, so no locking.
type serveState struct {
	queue     []request
	head      int
	closed    bool
	maxLen    int
	residency sim.Time
	busy      sim.Time
	tenants   []TenantStats
}

func (s *serveState) qlen() int { return len(s.queue) - s.head }

func (s *serveState) push(r request) {
	s.queue = append(s.queue, r)
	if n := s.qlen(); n > s.maxLen {
		s.maxLen = n
	}
}

func (s *serveState) pop(now sim.Time) (request, bool) {
	if s.qlen() == 0 {
		return request{}, false
	}
	r := s.queue[s.head]
	s.head++
	if s.head > 1024 && s.head*2 >= len(s.queue) {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
	s.residency += now - r.arrival
	return r, true
}

// Serve runs one open-loop serving experiment on the platform. The
// platform must already hold the preloaded backend; Serve spawns the
// dispatcher and worker procs and runs the simulation to completion
// (admitted requests are drained past the deadline so tails are not
// truncated).
func Serve(cfg Config) (*Result, error) {
	if cfg.Platform == nil || cfg.Backend == nil {
		return nil, errors.New("service: platform and backend required")
	}
	if cfg.Arrival == nil {
		return nil, errors.New("service: arrival process required")
	}
	if cfg.Workers < 1 {
		return nil, errors.New("service: at least one worker required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("service: at least one tenant required")
	}
	if cfg.Keys < 1 || cfg.KeySize < 8 || cfg.Duration <= 0 {
		return nil, errors.New("service: bad keyspace or duration")
	}
	total := cfg.GetFrac + cfg.PutFrac + cfg.ScanFrac + cfg.DelFrac
	if total <= 0 {
		return nil, errors.New("service: op mix fractions must sum > 0")
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 32 * cfg.Workers
	}
	if cfg.ScanLen < 1 {
		cfg.ScanLen = 16
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * sim.Nanosecond
	}

	p := cfg.Platform
	st := &serveState{tenants: make([]TenantStats, len(cfg.Tenants))}
	gens := make([]*keyGen, len(cfg.Tenants))
	for i, tn := range cfg.Tenants {
		st.tenants[i] = TenantStats{Name: tn.Name, Latency: stats.NewHistogram()}
		g := &keyGen{base: int64(i) * cfg.Keys, n: cfg.Keys}
		if tn.Theta > 0 {
			g.zipf = workload.NewZipf(cfg.Keys, tn.Theta, cfg.Seed+uint64(i)*7349+11)
		} else {
			g.rng = sim.NewRNG(cfg.Seed + uint64(i)*7349 + 11)
		}
		gens[i] = g
	}

	start := p.Now()
	warmEnd := start + cfg.Warmup
	deadline := warmEnd + cfg.Duration
	getCut := cfg.GetFrac / total
	putCut := (cfg.GetFrac + cfg.PutFrac) / total
	scanCut := (cfg.GetFrac + cfg.PutFrac + cfg.ScanFrac) / total

	// Dispatcher: walks arrival timestamps, stamps each request with its
	// tenant, op and key, and either admits it or sheds it.
	p.Go("serve-arrivals", cfg.Socket, func(ctx *platform.MemCtx) {
		proc := ctx.Proc()
		pick := sim.NewRNG(cfg.Seed*0x9E37 + 0xA441)
		t := start
		for {
			t += cfg.Arrival.Next()
			if t >= deadline {
				break
			}
			proc.AdvanceTo(t)
			ti := pick.Intn(len(cfg.Tenants))
			var op Op
			switch u := pick.Float64(); {
			case u < getCut:
				op = OpGet
			case u < putCut:
				op = OpPut
			case u < scanCut || cfg.DelFrac <= 0:
				// The DelFrac guard keeps a zero delete fraction exactly
				// delete-free (scanCut can round a hair below 1.0).
				op = OpScan
			default:
				op = OpDel
			}
			measured := t >= warmEnd
			if measured {
				st.tenants[ti].Offered++
			}
			if st.qlen() >= cfg.QueueCap {
				if measured {
					st.tenants[ti].Dropped++
				}
				continue
			}
			st.push(request{
				tenant: ti, op: op, key: gens[ti].next(),
				arrival: t, measured: measured,
			})
		}
		st.closed = true
	})

	// Workers: pop-execute loops. An idle worker re-polls the queue every
	// cfg.Poll; after the dispatcher closes, workers drain the backlog so
	// admitted requests always complete.
	if cfg.PutLog != nil && cfg.PutLog.Workers() < cfg.Workers {
		return nil, errors.New("service: append log has fewer per-worker logs than workers")
	}
	var execErr error
	for w := 0; w < cfg.Workers; w++ {
		w := w
		p.Go(fmt.Sprintf("serve-worker%d", w), cfg.Socket, func(ctx *platform.MemCtx) {
			proc := ctx.Proc()
			for execErr == nil {
				req, ok := st.pop(proc.Now())
				if !ok {
					if st.closed {
						return
					}
					proc.Sleep(cfg.Poll)
					continue
				}
				t0 := proc.Now()
				if err := execute(ctx, cfg, w, req); err != nil {
					execErr = err
					return
				}
				t1 := proc.Now()
				st.busy += t1 - t0
				if req.measured {
					st.tenants[req.tenant].Latency.Add((t1 - req.arrival).Nanoseconds())
					st.tenants[req.tenant].Completed++
				}
			}
		})
	}
	p.Run()
	if execErr != nil {
		return nil, execErr
	}

	res := &Result{
		Tenants:        st.tenants,
		Latency:        stats.NewHistogram(),
		Window:         cfg.Duration,
		WorkerBusy:     st.busy,
		QueueResidency: st.residency,
		MaxQueueLen:    st.maxLen,
	}
	for i := range st.tenants {
		res.Offered += st.tenants[i].Offered
		res.Dropped += st.tenants[i].Dropped
		res.Completed += st.tenants[i].Completed
		res.Latency.Merge(st.tenants[i].Latency)
	}
	res.OfferedRate = float64(res.Offered) / cfg.Duration.Seconds()
	res.AchievedRate = float64(res.Completed) / cfg.Duration.Seconds()
	return res, nil
}

// execute runs one request against the backend. A SCAN goes through
// Backend.Scan — lsmkv's native sorted merge walk, or the emulated
// consecutive point reads wrapping inside the tenant's keyspace shard.
func execute(ctx *platform.MemCtx, cfg Config, worker int, req request) error {
	switch req.op {
	case OpGet:
		cfg.Backend.Get(ctx, KeyFor(req.key, cfg.KeySize))
		return nil
	case OpPut:
		if cfg.PutLog != nil {
			return cfg.PutLog.Append(ctx, worker, KeyFor(req.key, cfg.KeySize), ValFor(req.key+1, cfg.ValSize))
		}
		return cfg.Backend.Put(ctx, KeyFor(req.key, cfg.KeySize), ValFor(req.key+1, cfg.ValSize))
	case OpDel:
		return cfg.Backend.Delete(ctx, KeyFor(req.key, cfg.KeySize))
	default:
		cfg.Backend.Scan(ctx, KeyFor(req.key, cfg.KeySize), cfg.ScanLen)
		return nil
	}
}
