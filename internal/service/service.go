// Package service is a simulated request-serving frontend: open-loop
// traffic generation against the repository's KV backends.
//
// Everything else in the study is closed-loop — a fixed thread count
// hammers the platform and reports mean latency or bandwidth. The paper's
// third best practice (limit the number of threads contending for a DIMM)
// is fundamentally a load-versus-tail-latency phenomenon, so this package
// models the serving side: arrival processes (deterministic-rate, Poisson,
// bursty) generate timestamped requests with per-tenant Zipf or uniform
// key mixes; a dispatcher admits them to a bounded FIFO queue (full queue
// ⇒ load shedding); a pool of simulated worker threads executes GET / PUT
// / SCAN against the backend; and per-tenant end-to-end latency — queueing
// delay plus service time — lands in stats.Histogram tail percentiles.
// Load sweeps (sweep.go) step offered load across a grid to produce the
// throughput-versus-p50/p99 curve and locate the saturation knee.
package service

import (
	"errors"
	"fmt"

	"optanestudy/internal/fault"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/stats"
	"optanestudy/internal/telemetry"
	"optanestudy/internal/workload"
)

// Op is a request kind.
type Op int

// Request kinds.
const (
	OpGet Op = iota
	OpPut
	OpScan
	OpDel
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpScan:
		return "SCAN"
	default:
		return "DEL"
	}
}

// Tenant is one traffic class sharing the frontend. Tenants draw keys from
// disjoint key ranges so popularity skew is per-tenant.
type Tenant struct {
	Name string
	// Theta is the Zipfian skew of the tenant's key popularity, in (0, 1);
	// 0 selects uniform.
	Theta float64
	// HotFrac > 0 selects a shifting-hotspot key mix instead (ignoring
	// Theta): HotFrac of draws land in a window of HotKeys consecutive ids
	// that relocates every HotPeriod draws (workload.ShiftingHotspot) —
	// the moving-skew mix cluster sweeps use to drive load onto one shard
	// at a time.
	HotFrac   float64
	HotKeys   int64
	HotPeriod int64
}

// Shard is one dispatch target of a sharded serving run: its own backend,
// bounded admission queue and worker pool, with the workers placed on an
// explicit socket. The cluster layer builds one Shard per placement slot.
type Shard struct {
	Backend Backend
	// Workers is this shard's pool size.
	Workers int
	// QueueCap bounds this shard's admission queue (default 32×Workers).
	QueueCap int
	// Socket places this shard's worker threads.
	Socket int
	// PutLog, when set, switches this shard's PUTs to write-behind logging
	// on per-worker appenders (indexed by shard-local worker id).
	PutLog *AppendLog
	// Repl, when set, replicates this shard: every logged PUT is mirrored
	// through it (shipping synchronously while the standby is synced), and
	// fault events fail the shard over through it. Requires PutLog.
	Repl Replicator
}

// Config configures one open-loop serving run.
type Config struct {
	Platform *platform.Platform
	Backend  Backend
	// Socket places the worker threads.
	Socket int
	// Workers is the service thread-pool size.
	Workers int
	// QueueCap bounds the admission queue; a request arriving when the
	// queue is full is shed (counted, not served). Defaults to 32×Workers.
	QueueCap int
	// Arrival is the seeded offered-load process.
	Arrival Arrival
	// Tenants share the offered load equally (round-robin-free random
	// pick); at least one is required.
	Tenants []Tenant
	// Keys is the per-tenant key-space size; tenant i owns global ids
	// [i*Keys, (i+1)*Keys).
	Keys             int64
	KeySize, ValSize int
	// GetFrac/PutFrac/ScanFrac/DelFrac select the op mix; they must sum
	// to ~1.
	GetFrac, PutFrac, ScanFrac, DelFrac float64
	// ScanLen is the number of consecutive keys a SCAN reads.
	ScanLen int
	// PutLog, when set, switches PUT to write-behind logging: the record
	// is made durable on the worker's private append log (one sequential
	// NT stream per worker) instead of updating the backend in place —
	// the contention-study configuration. It must have at least Workers
	// per-worker logs.
	PutLog *AppendLog
	// Shards, when non-empty, serves through shard-aware dispatch: the
	// router sends each request to its shard's own bounded queue and
	// worker pool. The flat Backend/Workers/QueueCap/PutLog fields must
	// then be unset — every dispatch target is a Shard.
	Shards []Shard
	// Route maps a request's global key id to a shard index. Required when
	// len(Shards) > 1; a single shard (or the flat configuration) routes
	// everything to shard 0.
	Route func(key int64) int
	// Duration is the measured window; Warmup precedes it (requests
	// arriving during warmup are served but not recorded).
	Duration sim.Time
	Warmup   sim.Time
	// Poll is the idle worker's queue re-check interval (default 200 ns).
	Poll sim.Time
	// BatchSize, when > 1, switches workers to group-commit dispatch: a
	// worker drains up to BatchSize admitted requests per wakeup and
	// journals every logged PUT in the group through ONE fence (a
	// pmem.Appender group commit), so the fence cost amortizes across the
	// batch. 0 or 1 keeps the one-request-per-wakeup loop — and the
	// one-fence-per-PUT persists — exactly as before.
	BatchSize int
	// BatchLinger bounds the latency a partially-filled batch may add: a
	// worker that drained fewer than BatchSize requests waits at most
	// BatchLinger for stragglers before committing what it has. 0 commits
	// short batches immediately.
	BatchLinger sim.Time
	Seed        uint64
	// Faults is the run's deterministic fault schedule, sorted by time on
	// the serving clock (warmup included — an event at cfg.Warmup + t
	// fires t into the measured window). Crash, Leave and Join events
	// require the target shard to carry a Replicator; Stall only needs the
	// shard to exist. Empty (the default) keeps every fault branch off the
	// hot path's nil checks, so fault-free runs are byte-identical to
	// pre-fault builds.
	Faults []fault.Event
	// Detect is the crash-detection delay: a failover starts Detect after
	// the crash instant (default 0 — promotion starts immediately).
	Detect sim.Time
	// Recorder, when non-nil, traces every measured request's phase span
	// (queue-wait → batch-wait → service → persist) and, when its
	// sampling interval is set, spawns a read-only timeline sampler proc.
	// nil (the default) keeps the dispatch hot path branch-cheap and
	// allocation-free — span structs are only built behind the nil check.
	Recorder *telemetry.Recorder
	// CacheStats, when set alongside Recorder, snapshots the DRAM tier's
	// cumulative read hits/misses so spans attribute each GET as a tier
	// hit or miss (the counters are differenced around the GET).
	CacheStats func() (hits, misses int64)
}

// TenantStats is one tenant's outcome over the measured window.
type TenantStats struct {
	Name      string
	Offered   int64 // requests generated
	Dropped   int64 // shed at the admission queue
	Completed int64 // served to completion
	// Latency is the end-to-end distribution (ns): queueing delay plus
	// backend service time.
	Latency *stats.Histogram
}

// ShardStats is one dispatch target's outcome over the measured window.
type ShardStats struct {
	Offered, Dropped, Completed int64
	// Latency is the shard's end-to-end distribution; Result.Latency is
	// the cross-shard stats.Histogram merge.
	Latency *stats.Histogram
	// WorkerBusy is the shard pool's cumulative in-service time.
	WorkerBusy sim.Time
	// QueueResidency integrates this shard's queue occupancy over time;
	// MaxQueueLen is its high-water mark.
	QueueResidency sim.Time
	MaxQueueLen    int
}

// Result is the outcome of one serving run.
type Result struct {
	Tenants []TenantStats
	// Shards is the per-dispatch-target breakdown; a flat single-backend
	// run reports one entry.
	Shards []ShardStats
	// Latency merges every tenant's end-to-end histogram.
	Latency *stats.Histogram
	// Window is the measured window (= Config.Duration).
	Window sim.Time
	// Offered/Dropped/Completed aggregate the tenants.
	Offered, Dropped, Completed int64
	// OfferedRate and AchievedRate are ops per simulated second over the
	// window.
	OfferedRate, AchievedRate float64
	// WorkerBusy is cumulative in-service worker time (utilization =
	// WorkerBusy / (Workers × Window)).
	WorkerBusy sim.Time
	// QueueResidency is the integral of queue occupancy over time (the
	// aggregate queueing delay); MaxQueueLen is the high-water mark.
	QueueResidency sim.Time
	MaxQueueLen    int
	// Failover is the per-shard fault/failover breakdown, indexed like
	// Shards; nil when the run configured no replication and no faults.
	Failover []FailoverStats
}

// Utilization returns the worker pool's busy fraction over the window.
func (r *Result) Utilization(workers int) float64 {
	if workers <= 0 || r.Window <= 0 {
		return 0
	}
	return float64(r.WorkerBusy) / (float64(workers) * float64(r.Window))
}

// request is one admitted unit of work. Admission is immediate (a full
// queue sheds instead of delaying), so the arrival timestamp is also the
// enqueue timestamp.
type request struct {
	tenant   int
	op       Op
	key      int64 // global key id
	arrival  sim.Time
	drained  sim.Time // stamped by pop/popN: when a worker took the request
	measured bool
}

// keyGen draws key ids from one tenant's range.
type keyGen struct {
	base int64
	n    int64
	zipf *workload.Zipf
	hot  *workload.ShiftingHotspot
	rng  *sim.RNG
}

func (g *keyGen) next() int64 {
	switch {
	case g.hot != nil:
		return g.base + g.hot.Next()
	case g.zipf != nil:
		return g.base + g.zipf.Next()
	}
	return g.base + g.rng.Int63n(g.n)
}

// shardState is one shard's queue and accounting. Procs run one at a time
// and only hand off at explicit time advances, so no locking. The request
// payloads live in a local ring; admission capacity, the occupancy-time
// integral and the depth watermark are delegated to a pull-mode
// sim.BoundedQueue (PushOpen on admit, PopN on worker drain), whose
// accounting is exactly the arithmetic this struct used to inline.
type shardState struct {
	queue     []request
	head      int
	idx       int // shard index, for span attribution
	occ       *sim.BoundedQueue
	busy      sim.Time
	offered   int64
	dropped   int64
	completed int64
	latency   *stats.Histogram
	// fo is the shard's fault/failover state; nil on fault-free shards,
	// keeping the dispatch and worker hot paths one nil-check away from
	// their pre-fault form.
	fo *failoverState
}

// serveState is the dispatcher/worker shared state.
type serveState struct {
	shards  []shardState
	closed  bool
	tenants []TenantStats
	// rec is the trace recorder (nil = tracing off, the hot-path default);
	// cacheStats is the GET hit/miss attribution snapshot; warmEnd anchors
	// fault/failover event timestamps to the measured window's clock.
	rec        *telemetry.Recorder
	cacheStats func() (hits, misses int64)
	warmEnd    sim.Time
}

// full reports whether the admission queue is at capacity (the shed
// condition).
func (s *shardState) full() bool { return s.occ.Len() >= s.occ.Cap() }

func (s *shardState) push(r request) {
	if !s.occ.PushOpen(r.arrival) {
		panic("service: push on a full shard queue")
	}
	s.queue = append(s.queue, r)
}

func (s *shardState) trim() {
	if s.head > 1024 && s.head*2 >= len(s.queue) {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
}

func (s *shardState) pop(now sim.Time) (request, bool) {
	if s.occ.PopN(now, 1) == 0 {
		return request{}, false
	}
	r := s.queue[s.head]
	r.drained = now
	s.head++
	s.trim()
	return r, true
}

// popN batch-drains up to n admitted requests at time now, appending
// them to dst (which the caller sizes to its batch capacity, so the
// steady state never reallocates) and closing each one's queue
// residency exactly as single pops would.
func (s *shardState) popN(now sim.Time, n int, dst []request) []request {
	k := s.occ.PopN(now, n)
	for i := 0; i < k; i++ {
		r := s.queue[s.head]
		r.drained = now
		dst = append(dst, r)
		s.head++
	}
	s.trim()
	return dst
}

// Serve runs one open-loop serving experiment on the platform. The
// platform must already hold the preloaded backend(s); Serve spawns the
// dispatcher and worker procs and runs the simulation to completion
// (admitted requests are drained past the deadline so tails are not
// truncated).
//
// Dispatch is shard-aware: with cfg.Shards set, the dispatcher routes each
// request's key through cfg.Route to that shard's own bounded queue and
// worker pool. The flat single-backend configuration is served through the
// identical machinery as one shard — except that it draws a request's key
// only after admission (routing is not needed to pick the queue), keeping
// its per-tenant RNG streams, and therefore all pre-cluster scenario
// results, exactly as they were before shards existed.
func Serve(cfg Config) (*Result, error) {
	if cfg.Platform == nil {
		return nil, errors.New("service: platform and backend required")
	}
	sharded := len(cfg.Shards) > 0
	shards := cfg.Shards
	if sharded {
		if cfg.Backend != nil || cfg.PutLog != nil || cfg.Workers != 0 || cfg.QueueCap != 0 {
			return nil, errors.New("service: flat backend fields must be unset when Shards is given")
		}
		if len(shards) > 1 && cfg.Route == nil {
			return nil, errors.New("service: a route function is required with more than one shard")
		}
	} else {
		if cfg.Backend == nil {
			return nil, errors.New("service: platform and backend required")
		}
		if cfg.Workers < 1 {
			return nil, errors.New("service: at least one worker required")
		}
		shards = []Shard{{
			Backend: cfg.Backend, Workers: cfg.Workers, QueueCap: cfg.QueueCap,
			Socket: cfg.Socket, PutLog: cfg.PutLog,
		}}
	}
	if cfg.Arrival == nil {
		return nil, errors.New("service: arrival process required")
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("service: at least one tenant required")
	}
	if cfg.Keys < 1 || cfg.KeySize < 8 || cfg.Duration <= 0 {
		return nil, errors.New("service: bad keyspace or duration")
	}
	total := cfg.GetFrac + cfg.PutFrac + cfg.ScanFrac + cfg.DelFrac
	if total <= 0 {
		return nil, errors.New("service: op mix fractions must sum > 0")
	}
	caps := make([]int, len(shards))
	for i := range shards {
		sh := &shards[i]
		if sh.Backend == nil {
			return nil, fmt.Errorf("service: shard %d has no backend", i)
		}
		if sh.Workers < 1 {
			return nil, fmt.Errorf("service: shard %d needs at least one worker", i)
		}
		if sh.PutLog != nil && sh.PutLog.Workers() < sh.Workers {
			return nil, errors.New("service: append log has fewer per-worker logs than workers")
		}
		caps[i] = sh.QueueCap
		if caps[i] < 1 {
			caps[i] = 32 * sh.Workers
		}
	}
	if cfg.ScanLen < 1 {
		cfg.ScanLen = 16
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * sim.Nanosecond
	}
	if err := validateFaults(&cfg, shards); err != nil {
		return nil, err
	}

	p := cfg.Platform
	st := &serveState{
		shards:     make([]shardState, len(shards)),
		tenants:    make([]TenantStats, len(cfg.Tenants)),
		rec:        cfg.Recorder,
		cacheStats: cfg.CacheStats,
	}
	for i := range st.shards {
		st.shards[i].idx = i
		st.shards[i].latency = stats.NewHistogram()
		st.shards[i].occ = sim.NewBoundedQueue(caps[i])
	}
	// Fault machinery exists only on shards that need it: replicated
	// shards and stall targets. Everything else keeps a nil fo.
	hasFaults := false
	for i := range shards {
		if shards[i].Repl != nil {
			st.shards[i].fo = newFailoverState(shards[i].Repl)
			hasFaults = true
		}
	}
	for _, ev := range cfg.Faults {
		if st.shards[ev.Shard].fo == nil {
			st.shards[ev.Shard].fo = newFailoverState(nil)
			hasFaults = true
		}
	}
	gens := make([]*keyGen, len(cfg.Tenants))
	for i, tn := range cfg.Tenants {
		st.tenants[i] = TenantStats{Name: tn.Name, Latency: stats.NewHistogram()}
		g := &keyGen{base: int64(i) * cfg.Keys, n: cfg.Keys}
		seed := cfg.Seed + uint64(i)*7349 + 11
		switch {
		case tn.HotFrac > 0:
			hotKeys, period := tn.HotKeys, tn.HotPeriod
			if hotKeys < 1 || hotKeys > cfg.Keys || period < 1 || tn.HotFrac > 1 {
				return nil, fmt.Errorf("service: tenant %q has a bad hotspot mix (frac=%g keys=%d period=%d)",
					tn.Name, tn.HotFrac, hotKeys, period)
			}
			g.hot = workload.NewShiftingHotspot(cfg.Keys, hotKeys, period, tn.HotFrac, seed)
		case tn.Theta > 0:
			g.zipf = workload.NewZipf(cfg.Keys, tn.Theta, seed)
		default:
			g.rng = sim.NewRNG(seed)
		}
		gens[i] = g
	}

	start := p.Now()
	warmEnd := start + cfg.Warmup
	st.warmEnd = warmEnd
	deadline := warmEnd + cfg.Duration
	getCut := cfg.GetFrac / total
	putCut := (cfg.GetFrac + cfg.PutFrac) / total
	scanCut := (cfg.GetFrac + cfg.PutFrac + cfg.ScanFrac) / total

	// Dispatcher: walks arrival timestamps, stamps each request with its
	// tenant, op and key, routes it to a shard, and either admits it to
	// that shard's queue or sheds it.
	var runErr error
	p.Go("serve-arrivals", cfg.Socket, func(ctx *platform.MemCtx) {
		proc := ctx.Proc()
		pick := sim.NewRNG(cfg.Seed*0x9E37 + 0xA441)
		t := start
		for {
			t += cfg.Arrival.Next()
			if t >= deadline {
				break
			}
			proc.AdvanceTo(t)
			ti := pick.Intn(len(cfg.Tenants))
			var op Op
			switch u := pick.Float64(); {
			case u < getCut:
				op = OpGet
			case u < putCut:
				op = OpPut
			case u < scanCut || cfg.DelFrac <= 0:
				// The DelFrac guard keeps a zero delete fraction exactly
				// delete-free (scanCut can round a hair below 1.0).
				op = OpScan
			default:
				op = OpDel
			}
			measured := t >= warmEnd
			if measured {
				st.tenants[ti].Offered++
			}
			if sharded {
				// Routing needs the key, so sharded dispatch draws it
				// before the admission check (a shed request still
				// consumed a draw — open-loop clients do not know the
				// queue is full when they pick a key).
				key := gens[ti].next()
				si := 0
				if cfg.Route != nil {
					si = cfg.Route(key)
				}
				if si < 0 || si >= len(st.shards) {
					runErr = fmt.Errorf("service: route sent key %d to shard %d of %d", key, si, len(st.shards))
					break
				}
				sh := &st.shards[si]
				if measured {
					sh.offered++
				}
				if sh.full() {
					if measured {
						st.tenants[ti].Dropped++
						sh.dropped++
						if fo := sh.fo; fo != nil && fo.inWindow {
							fo.st.ShedWindow++
						}
						st.rec.RecordShed(ti, si)
					}
					continue
				}
				sh.push(request{tenant: ti, op: op, key: key, arrival: t, measured: measured})
				continue
			}
			sh := &st.shards[0]
			if measured {
				sh.offered++
			}
			if sh.full() {
				if measured {
					st.tenants[ti].Dropped++
					sh.dropped++
					if fo := sh.fo; fo != nil && fo.inWindow {
						fo.st.ShedWindow++
					}
					st.rec.RecordShed(ti, 0)
				}
				continue
			}
			sh.push(request{
				tenant: ti, op: op, key: gens[ti].next(),
				arrival: t, measured: measured,
			})
		}
		st.closed = true
	})

	// Workers: per-shard pop-execute loops. An idle worker re-polls its
	// shard's queue every cfg.Poll; after the dispatcher closes, workers
	// drain the backlog so admitted requests always complete. With
	// cfg.BatchSize > 1 a worker drains a whole group per wakeup and
	// journals its logged PUTs through one group commit; the default loop
	// is the original one-request-per-wakeup path, untouched.
	for si := range shards {
		si := si
		shard := &shards[si]
		sh := &st.shards[si]
		for w := 0; w < shard.Workers; w++ {
			w := w
			name := fmt.Sprintf("serve-worker%d", w)
			if sharded {
				name = fmt.Sprintf("serve-s%dw%d", si, w)
			}
			if cfg.BatchSize > 1 {
				p.Go(name, shard.Socket, func(ctx *platform.MemCtx) {
					proc := ctx.Proc()
					sc := newOpScratch(cfg)
					batch := make([]request, 0, cfg.BatchSize)
					fo := sh.fo
					for runErr == nil {
						if fo != nil && fo.blocked(proc.Now()) {
							// Shard storage is down or stalled: the pool
							// survives (the frontend lives on) but cannot
							// serve until promotion or the stall deadline.
							proc.Sleep(cfg.Poll)
							continue
						}
						batch = sh.popN(proc.Now(), cfg.BatchSize, batch[:0])
						if len(batch) == 0 {
							if st.closed {
								return
							}
							proc.Sleep(cfg.Poll)
							continue
						}
						// Linger for stragglers when the batch came up short —
						// but the linger deadline runs from the OLDEST drained
						// request's arrival, so a request is never held more
						// than BatchLinger past its arrival before execution
						// starts. Under backlog the oldest request has already
						// aged past the deadline and the group commits
						// immediately: linger adds latency only at light load,
						// and at most BatchLinger of it.
						if len(batch) < cfg.BatchSize && cfg.BatchLinger > 0 && !st.closed {
							if dl := batch[0].arrival + cfg.BatchLinger; dl > proc.Now() {
								proc.Sleep(dl - proc.Now())
								batch = sh.popN(proc.Now(), cfg.BatchSize-len(batch), batch)
							}
						}
						t0 := proc.Now()
						if err := executeBatch(ctx, cfg, shard, w, batch, sc, sh, st); err != nil {
							runErr = err
							return
						}
						sh.busy += proc.Now() - t0
					}
				})
				continue
			}
			p.Go(name, shard.Socket, func(ctx *platform.MemCtx) {
				proc := ctx.Proc()
				sc := newOpScratch(cfg)
				fo := sh.fo
				for runErr == nil {
					if fo != nil && fo.blocked(proc.Now()) {
						proc.Sleep(cfg.Poll)
						continue
					}
					req, ok := sh.pop(proc.Now())
					if !ok {
						if st.closed {
							return
						}
						proc.Sleep(cfg.Poll)
						continue
					}
					t0 := proc.Now()
					var hits0 int64
					if st.rec != nil && st.cacheStats != nil && req.op == OpGet {
						hits0, _ = st.cacheStats()
					}
					if err := execute(ctx, cfg, shard, w, req, sc); err != nil {
						runErr = err
						return
					}
					t1 := proc.Now()
					sh.busy += t1 - t0
					st.record(sh, req, t1)
					if st.rec != nil && req.measured {
						st.recordSpan(shard, sh.idx, w, req, t1, hits0)
					}
				}
			})
		}
	}
	if len(cfg.Faults) > 0 {
		runFaultDriver(p, cfg, shards, st, &runErr)
	}
	// Timeline sampler: a read-only proc waking at the recorder's fixed
	// sim-time interval over the measured window, snapshotting cumulative
	// counters. It mutates nothing the serving procs observe, so traced
	// results equal untraced ones; and everything it reads derives from
	// sim time, so traced output is byte-identical at any -parallel width.
	if st.rec != nil && st.rec.Interval() > 0 {
		iv := st.rec.Interval()
		p.Go("trace-sampler", cfg.Socket, func(ctx *platform.MemCtx) {
			proc := ctx.Proc()
			for t := warmEnd + iv; t <= deadline; t += iv {
				proc.AdvanceTo(t)
				st.sample(t-warmEnd, t)
			}
		})
	}

	p.Run()
	if runErr != nil {
		return nil, runErr
	}

	res := &Result{
		Tenants: st.tenants,
		Shards:  make([]ShardStats, len(st.shards)),
		Latency: stats.NewHistogram(),
		Window:  cfg.Duration,
	}
	for i := range st.shards {
		sh := &st.shards[i]
		res.Shards[i] = ShardStats{
			Offered: sh.offered, Dropped: sh.dropped, Completed: sh.completed,
			Latency: sh.latency, WorkerBusy: sh.busy,
			QueueResidency: sh.occ.OccupancyTime(), MaxQueueLen: sh.occ.MaxLen(),
		}
		res.WorkerBusy += sh.busy
		res.QueueResidency += sh.occ.OccupancyTime()
		if sh.occ.MaxLen() > res.MaxQueueLen {
			res.MaxQueueLen = sh.occ.MaxLen()
		}
	}
	for i := range st.tenants {
		res.Offered += st.tenants[i].Offered
		res.Dropped += st.tenants[i].Dropped
		res.Completed += st.tenants[i].Completed
		res.Latency.Merge(st.tenants[i].Latency)
	}
	res.OfferedRate = float64(res.Offered) / cfg.Duration.Seconds()
	res.AchievedRate = float64(res.Completed) / cfg.Duration.Seconds()
	if hasFaults {
		res.Failover = make([]FailoverStats, len(st.shards))
		for i := range st.shards {
			if fo := st.shards[i].fo; fo != nil {
				res.Failover[i] = fo.st
			} else {
				res.Failover[i] = FailoverStats{WindowLatency: stats.NewHistogram()}
			}
		}
	}
	return res, nil
}

// opScratch is one worker's reusable key/value rendering buffers: the
// dispatch hot path renders into these instead of allocating per op
// (backends copy on insert, so reuse across requests is safe). Pinned at
// zero allocations per op by TestDispatchZeroAlloc. edges is the traced
// batch path's per-op execution-interval buffer (nil when tracing is
// off), sized to the batch so the steady state never reallocates.
type opScratch struct {
	key, val []byte
	edges    []opEdge
}

// opEdge is one batched op's execution interval, buffered so logged PUTs'
// spans can be closed at the group's commit fence (traced runs only).
type opEdge struct {
	start, end sim.Time
}

func newOpScratch(cfg Config) *opScratch {
	sc := &opScratch{key: make([]byte, cfg.KeySize), val: make([]byte, cfg.ValSize)}
	if cfg.Recorder != nil && cfg.BatchSize > 1 {
		sc.edges = make([]opEdge, 0, cfg.BatchSize)
	}
	return sc
}

// record books one completed request at time end.
func (st *serveState) record(sh *shardState, req request, end sim.Time) {
	if fo := sh.fo; fo != nil && fo.inWindow {
		if fo.noteCompletion(req, end, sh.occ.Len() == 0) {
			st.event("caught-up", sh.idx, end)
		}
	}
	if !req.measured {
		return
	}
	lat := (end - req.arrival).Nanoseconds()
	st.tenants[req.tenant].Latency.Add(lat)
	st.tenants[req.tenant].Completed++
	sh.completed++
	sh.latency.Add(lat)
}

// recordSpan books one unbatched request's phase span: queue-wait is
// admission to worker drain, and the execution interval is service —
// except for a write-behind logged PUT, whose Append is one fused
// render-persist-fence sequence, attributed wholly to persist. Callers
// guard with st.rec != nil && req.measured, so the untraced hot path
// never builds a span.
func (st *serveState) recordSpan(shard *Shard, si, worker int, req request, end sim.Time, hits0 int64) {
	span := telemetry.OpSpan{
		Op: req.op.String(), Tenant: req.tenant, Shard: si, Worker: worker,
		Key: req.key, CacheHit: -1,
		Arrival: req.arrival, End: end,
		QueueWait: req.drained - req.arrival,
	}
	if req.op == OpPut && shard.PutLog != nil {
		span.Persist, span.HasPersist = end-req.drained, true
	} else {
		span.Service, span.HasService = end-req.drained, true
	}
	st.attributeCache(&span, req, hits0)
	st.rec.RecordOp(&span)
}

// attributeCache resolves a traced GET's DRAM-tier outcome from the
// cumulative hit counter snapshotted before the op executed.
func (st *serveState) attributeCache(span *telemetry.OpSpan, req request, hits0 int64) {
	if st.cacheStats == nil || req.op != OpGet {
		return
	}
	if h1, _ := st.cacheStats(); h1 > hits0 {
		span.CacheHit = 1
	} else {
		span.CacheHit = 0
	}
}

// sample snapshots one timeline instant at sim time now; rel is now
// relative to the measured window's start.
func (st *serveState) sample(rel, now sim.Time) {
	s := telemetry.Sample{TNS: int64(rel / sim.Nanosecond)}
	for i := range st.tenants {
		s.Offered += st.tenants[i].Offered
		s.Dropped += st.tenants[i].Dropped
		s.Completed += st.tenants[i].Completed
	}
	s.Shards = make([]telemetry.ShardSample, len(st.shards))
	for i := range st.shards {
		sh := &st.shards[i]
		s.Shards[i] = telemetry.ShardSample{
			Offered: sh.offered, Dropped: sh.dropped, Completed: sh.completed,
			QDepth: sh.occ.Len(), QOccNS: sh.occ.OccupancyTimeAt(now).Nanoseconds(),
		}
	}
	st.rec.Sample(s)
}

// execute runs one request against its shard's backend. A SCAN goes
// through Backend.Scan — lsmkv's native sorted merge walk, or the emulated
// consecutive point reads wrapping inside the tenant's keyspace shard.
// worker is the shard-local worker id (the PutLog appender index).
func execute(ctx *platform.MemCtx, cfg Config, shard *Shard, worker int, req request, sc *opScratch) error {
	KeyInto(sc.key, req.key)
	switch req.op {
	case OpGet:
		// Prefer the buffered read: same simulated cost as Get, but the
		// value lands in the worker's scratch instead of a fresh slice.
		if bg, ok := shard.Backend.(BufferGetter); ok {
			bg.GetInto(ctx, sc.key, sc.val)
			return nil
		}
		shard.Backend.Get(ctx, sc.key)
		return nil
	case OpPut:
		ValInto(sc.val, req.key+1)
		if shard.PutLog != nil {
			if err := shard.PutLog.Append(ctx, worker, sc.key, sc.val); err != nil {
				return err
			}
			if shard.Repl != nil {
				// Synchronous replication: the PUT completes only after
				// the shipment's fence retires on the standby's DIMMs.
				return shard.Repl.Record(ctx, worker, sc.key, sc.val)
			}
			return nil
		}
		return shard.Backend.Put(ctx, sc.key, sc.val)
	case OpDel:
		return shard.Backend.Delete(ctx, sc.key)
	default:
		shard.Backend.Scan(ctx, sc.key, cfg.ScanLen)
		return nil
	}
}

// executeBatch runs one drained group. Non-logged ops execute in arrival
// order and complete at their own execution time; logged PUTs are staged
// into the worker's group commit as they are reached and ALL complete at
// the commit fence — their records are not durable (and so the requests
// are not answerable) until the batch's single fence retires.
func executeBatch(ctx *platform.MemCtx, cfg Config, shard *Shard, worker int, batch []request, sc *opScratch, sh *shardState, st *serveState) error {
	proc := ctx.Proc()
	rec := st.rec
	var bid int64
	if rec != nil {
		bid = rec.NextBatch()
		sc.edges = sc.edges[:0]
	}
	// Pin the log (and its replication mirror) for the whole group: a
	// promotion swapping shard.PutLog mid-batch must not split one
	// Begin/Add/Commit across two logs.
	plog, repl := shard.PutLog, shard.Repl
	logging := false
	for i := range batch {
		req := &batch[i]
		if plog != nil && req.op == OpPut {
			if !logging {
				plog.Begin(worker)
				if repl != nil {
					repl.BatchBegin(worker)
				}
				logging = true
			}
			KeyInto(sc.key, req.key)
			ValInto(sc.val, req.key+1)
			var es sim.Time
			if rec != nil {
				es = proc.Now()
			}
			if err := plog.Add(ctx, worker, sc.key, sc.val); err != nil {
				return err
			}
			if repl != nil {
				if err := repl.BatchAdd(ctx, worker, sc.key, sc.val); err != nil {
					return err
				}
			}
			if rec != nil {
				// Buffer the staging interval: the span closes at the
				// group's single commit fence below.
				sc.edges = append(sc.edges, opEdge{start: es, end: proc.Now()})
			}
			continue // completes at the commit fence below
		}
		var es sim.Time
		var hits0 int64
		if rec != nil {
			es = proc.Now()
			if st.cacheStats != nil && req.op == OpGet {
				hits0, _ = st.cacheStats()
			}
		}
		if err := execute(ctx, cfg, shard, worker, *req, sc); err != nil {
			return err
		}
		end := proc.Now()
		st.record(sh, *req, end)
		if rec != nil && req.measured {
			span := telemetry.OpSpan{
				Op: req.op.String(), Tenant: req.tenant, Shard: sh.idx, Worker: worker,
				Key: req.key, Batch: bid, CacheHit: -1,
				Arrival: req.arrival, End: end,
				QueueWait: req.drained - req.arrival,
				BatchWait: es - req.drained, HasBatchWait: true,
				Service: end - es, HasService: true,
			}
			st.attributeCache(&span, *req, hits0)
			rec.RecordOp(&span)
		}
	}
	if logging {
		if err := plog.Commit(ctx, worker); err != nil {
			return err
		}
		if repl != nil {
			// The group's shipment seals with its own single fence on the
			// standby's DIMMs; every logged PUT in the batch completes
			// after it, so acked means replicated.
			if err := repl.BatchCommit(ctx, worker); err != nil {
				return err
			}
		}
		end := proc.Now()
		ei := 0
		for i := range batch {
			if batch[i].op == OpPut {
				st.record(sh, batch[i], end)
				if rec != nil {
					e := sc.edges[ei]
					ei++
					if req := &batch[i]; req.measured {
						span := telemetry.OpSpan{
							Op: req.op.String(), Tenant: req.tenant, Shard: sh.idx, Worker: worker,
							Key: req.key, Batch: bid, CacheHit: -1,
							Arrival: req.arrival, End: end,
							QueueWait: req.drained - req.arrival,
							BatchWait: e.start - req.drained, HasBatchWait: true,
							Service: e.end - e.start, HasService: true,
							Persist: end - e.end, HasPersist: true,
						}
						rec.RecordOp(&span)
					}
				}
			}
		}
	}
	return nil
}
