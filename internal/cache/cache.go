// Package cache models the CPU cache hierarchy as seen by persistent
// memory: a last-level cache tracking clean/dirty 64 B lines with random
// replacement, and per-thread write-combining buffers for non-temporal
// stores.
//
// Two properties matter for the study: dirty lines are *not* persistent
// (the ADR domain stops at the iMC), and natural evictions leave the cache
// in an order uncorrelated with program order — which is why un-flushed
// store streams reach the DIMMs scrambled and destroy write combining
// (Section 5.2).
package cache

import (
	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
)

// Config parameterizes the LLC model.
type Config struct {
	// Lines is the capacity in 64 B cache lines.
	Lines int
	// HitLatency is the load-to-use time for an LLC hit.
	HitLatency sim.Time
	// Seed feeds the replacement RNG.
	Seed uint64
}

// DefaultConfig returns the calibrated LLC: 12 MB effective capacity (the
// single-thread share of a Cascade Lake LLC) and ~20 ns hits.
func DefaultConfig() Config {
	return Config{
		Lines:      12 << 20 / mem.CacheLine,
		HitLatency: 20 * sim.Nanosecond,
		Seed:       0x11CC,
	}
}

// Victim describes an evicted line.
type Victim struct {
	Addr  int64
	Dirty bool
	Data  []byte // overlay contents if the line carried data, else nil
	Mask  uint64 // bitmask of valid overlay bytes
}

// LLC is a set of resident lines with random replacement. Addresses are
// global physical line addresses.
type LLC struct {
	cfg   Config
	rng   *sim.RNG
	lines map[int64]*line
	keys  []int64
	pos   map[int64]int
}

type line struct {
	dirty bool
	data  []byte // lazily allocated 64 B overlay for tracked stores
	mask  uint64 // which overlay bytes hold store data (coherence: only
	// these bytes may be written back; the rest belong to
	// durable storage or other writers)
}

// New returns an empty LLC.
func New(cfg Config) *LLC {
	if cfg.Lines < 16 {
		cfg.Lines = 16
	}
	return &LLC{
		cfg:   cfg,
		rng:   sim.NewRNG(cfg.Seed),
		lines: make(map[int64]*line),
		pos:   make(map[int64]int),
	}
}

// HitLatency returns the configured hit latency.
func (c *LLC) HitLatency() sim.Time { return c.cfg.HitLatency }

// Len returns the number of resident lines.
func (c *LLC) Len() int { return len(c.lines) }

// Present reports whether addr's line is resident.
func (c *LLC) Present(addr int64) bool {
	_, ok := c.lines[addr]
	return ok
}

// Dirty reports whether addr's line is resident and dirty.
func (c *LLC) Dirty(addr int64) bool {
	l, ok := c.lines[addr]
	return ok && l.dirty
}

// Data returns the overlay bytes and validity mask for a resident line.
func (c *LLC) Data(addr int64) ([]byte, uint64) {
	if l, ok := c.lines[addr]; ok {
		return l.data, l.mask
	}
	return nil, 0
}

func (c *LLC) insertKey(addr int64) {
	c.pos[addr] = len(c.keys)
	c.keys = append(c.keys, addr)
}

func (c *LLC) removeKey(addr int64) {
	i := c.pos[addr]
	last := len(c.keys) - 1
	c.keys[i] = c.keys[last]
	c.pos[c.keys[i]] = i
	c.keys = c.keys[:last]
	delete(c.pos, addr)
}

// Insert makes addr resident (clean unless marked dirty afterwards) and
// returns the victim if the insertion evicted a line.
func (c *LLC) Insert(addr int64) (Victim, bool) {
	if _, ok := c.lines[addr]; ok {
		return Victim{}, false
	}
	var v Victim
	evicted := false
	if len(c.lines) >= c.cfg.Lines {
		vaddr := c.keys[c.rng.Intn(len(c.keys))]
		vl := c.lines[vaddr]
		v = Victim{Addr: vaddr, Dirty: vl.dirty, Data: vl.data, Mask: vl.mask}
		delete(c.lines, vaddr)
		c.removeKey(vaddr)
		evicted = true
	}
	c.lines[addr] = &line{}
	c.insertKey(addr)
	return v, evicted
}

// MarkDirty sets the line dirty, inserting it if absent (the caller is
// responsible for any RFO timing). data, when non-nil, is copied into the
// line's overlay at byte offset off within the line and the corresponding
// mask bits are set.
func (c *LLC) MarkDirty(addr int64, off int, data []byte) (Victim, bool) {
	v, evicted := c.Insert(addr)
	l := c.lines[addr]
	l.dirty = true
	if data != nil {
		if l.data == nil {
			l.data = make([]byte, mem.CacheLine)
		}
		copy(l.data[off:], data)
		for i := 0; i < len(data); i++ {
			l.mask |= 1 << uint(off+i)
		}
	}
	return v, evicted
}

// WriteBack clears the line's dirty bit and overlay, returning the overlay
// data, its byte mask, and whether the line was dirty. The line stays
// resident (clwb semantics); after write-back the durable copy is
// authoritative, so the overlay is dropped.
func (c *LLC) WriteBack(addr int64) ([]byte, uint64, bool) {
	l, ok := c.lines[addr]
	if !ok || !l.dirty {
		return nil, 0, false
	}
	data, mask := l.data, l.mask
	l.dirty = false
	l.data, l.mask = nil, 0
	return data, mask, true
}

// Evict removes the line (clflush/clflushopt semantics), returning its
// overlay data, mask, and whether it was dirty.
func (c *LLC) Evict(addr int64) ([]byte, uint64, bool) {
	l, ok := c.lines[addr]
	if !ok {
		return nil, 0, false
	}
	delete(c.lines, addr)
	c.removeKey(addr)
	return l.data, l.mask, l.dirty
}

// DropAll empties the cache, discarding dirty data — the volatile half of a
// crash. It returns how many dirty lines were lost.
func (c *LLC) DropAll() int {
	lost := 0
	for _, l := range c.lines {
		if l.dirty {
			lost++
		}
	}
	c.lines = make(map[int64]*line)
	c.keys = c.keys[:0]
	c.pos = make(map[int64]int)
	return lost
}

// FlushAll empties the cache, handing every dirty line's overlay to fn —
// the eADR crash path, where residual energy drains the caches to the
// DIMMs. It returns how many dirty lines were flushed.
func (c *LLC) FlushAll(fn func(addr int64, data []byte, mask uint64)) int {
	flushed := 0
	for addr, l := range c.lines {
		if l.dirty {
			flushed++
			if l.data != nil {
				fn(addr, l.data, l.mask)
			}
		}
	}
	c.lines = make(map[int64]*line)
	c.keys = c.keys[:0]
	c.pos = make(map[int64]int)
	return flushed
}

// DirtyLines returns the addresses of all dirty lines (test hook; order is
// unspecified).
func (c *LLC) DirtyLines() []int64 {
	var out []int64
	for a, l := range c.lines {
		if l.dirty {
			out = append(out, a)
		}
	}
	return out
}

// WCBuffer is one thread's write-combining buffer set for non-temporal
// stores: partially-filled 64 B lines awaiting completion or a fence.
type WCBuffer struct {
	pending map[int64]*wcLine
	order   []int64
}

type wcLine struct {
	mask uint64 // bitmask of written bytes
	data []byte
}

// NewWCBuffer returns an empty write-combining buffer.
func NewWCBuffer() *WCBuffer {
	return &WCBuffer{pending: make(map[int64]*wcLine)}
}

// fullMask is the mask of a completely written 64 B line.
const fullMask = ^uint64(0)

// Write records sub-line non-temporal stores. It returns the line address
// and data if the line is now complete and must be posted, with ok=true.
// Complete 64 B stores should bypass the buffer entirely.
func (w *WCBuffer) Write(addr int64, data []byte) (flushAddr int64, flushData []byte, ok bool) {
	lineAddr := mem.LineAddr(addr)
	off := int(addr - lineAddr)
	l := w.pending[lineAddr]
	if l == nil {
		l = &wcLine{data: make([]byte, mem.CacheLine)}
		w.pending[lineAddr] = l
		w.order = append(w.order, lineAddr)
	}
	n := len(data)
	if data != nil {
		copy(l.data[off:], data)
	}
	for i := 0; i < n; i++ {
		l.mask |= 1 << uint(off+i)
	}
	if l.mask == fullMask {
		delete(w.pending, lineAddr)
		w.dropOrder(lineAddr)
		return lineAddr, l.data, true
	}
	return 0, nil, false
}

func (w *WCBuffer) dropOrder(addr int64) {
	for i, a := range w.order {
		if a == addr {
			w.order = append(w.order[:i], w.order[i+1:]...)
			return
		}
	}
}

// Flush drains all partial lines in fill order (an sfence does this),
// invoking post for each.
func (w *WCBuffer) Flush(post func(addr int64, data []byte, mask uint64)) {
	for _, addr := range w.order {
		l := w.pending[addr]
		post(addr, l.data, l.mask)
		delete(w.pending, addr)
	}
	w.order = w.order[:0]
}

// Drop discards all partial lines (crash semantics). Returns the count lost.
func (w *WCBuffer) Drop() int {
	n := len(w.pending)
	w.pending = make(map[int64]*wcLine)
	w.order = w.order[:0]
	return n
}

// Pending returns the number of partially-filled lines.
func (w *WCBuffer) Pending() int { return len(w.pending) }
