package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
)

func small(lines int) *LLC {
	cfg := DefaultConfig()
	cfg.Lines = lines
	return New(cfg)
}

func TestLLCInsertProbe(t *testing.T) {
	c := small(16)
	if c.Present(0) {
		t.Fatal("empty cache claims presence")
	}
	if _, ev := c.Insert(0); ev {
		t.Fatal("eviction from empty cache")
	}
	if !c.Present(0) || c.Dirty(0) {
		t.Fatal("inserted line missing or dirty")
	}
	// Duplicate insert is a no-op.
	if _, ev := c.Insert(0); ev {
		t.Fatal("duplicate insert evicted")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestLLCCapacityEviction(t *testing.T) {
	c := small(16)
	evictions := 0
	for i := int64(0); i < 64; i++ {
		if _, ev := c.Insert(i * mem.CacheLine); ev {
			evictions++
		}
	}
	if c.Len() != 16 {
		t.Fatalf("len = %d, want capacity 16", c.Len())
	}
	if evictions != 48 {
		t.Fatalf("evictions = %d, want 48", evictions)
	}
}

func TestLLCDirtyVictimCarriesData(t *testing.T) {
	c := small(16)
	payload := bytes.Repeat([]byte{0xAB}, 16)
	c.MarkDirty(0, 8, payload)
	// Fill to force eviction of line 0 eventually.
	sawDirtyVictim := false
	for i := int64(1); i < 200; i++ {
		v, ev := c.Insert(i * mem.CacheLine)
		if ev && v.Addr == 0 {
			if !v.Dirty {
				t.Fatal("line 0 evicted clean")
			}
			if !bytes.Equal(v.Data[8:24], payload) {
				t.Fatal("victim data lost")
			}
			sawDirtyVictim = true
			break
		}
	}
	if !sawDirtyVictim {
		t.Fatal("dirty line never evicted (random replacement should hit it)")
	}
}

func TestLLCWriteBack(t *testing.T) {
	c := small(16)
	c.MarkDirty(64, 0, []byte{1, 2, 3})
	data, mask, dirty := c.WriteBack(64)
	if !dirty || data[0] != 1 {
		t.Fatal("writeback lost data")
	}
	if mask != 0b111 {
		t.Fatalf("mask = %b, want low 3 bits", mask)
	}
	if c.Dirty(64) {
		t.Fatal("line still dirty after writeback")
	}
	if !c.Present(64) {
		t.Fatal("clwb must keep the line resident")
	}
	if _, _, dirty := c.WriteBack(64); dirty {
		t.Fatal("second writeback of clean line")
	}
	// After write-back, durable data is authoritative: overlay dropped.
	if d, _ := c.Data(64); d != nil {
		t.Fatal("overlay kept after writeback")
	}
}

func TestLLCEvict(t *testing.T) {
	c := small(16)
	c.MarkDirty(128, 2, []byte{9})
	data, mask, dirty := c.Evict(128)
	if !dirty || data[2] != 9 {
		t.Fatal("evict lost data")
	}
	if mask != 1<<2 {
		t.Fatalf("mask = %b", mask)
	}
	if c.Present(128) {
		t.Fatal("clflush must remove the line")
	}
	if _, _, dirty := c.Evict(128); dirty {
		t.Fatal("double evict reported dirty")
	}
}

func TestLLCDropAll(t *testing.T) {
	c := small(32)
	for i := int64(0); i < 10; i++ {
		c.MarkDirty(i*mem.CacheLine, 0, nil)
	}
	c.Insert(10 * mem.CacheLine)
	if lost := c.DropAll(); lost != 10 {
		t.Fatalf("lost = %d, want 10 dirty lines", lost)
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after crash")
	}
}

// Property: the key index stays consistent with the line map under random
// operations, and capacity is never exceeded.
func TestLLCIndexInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		c := small(32)
		r := sim.NewRNG(seed)
		for i := 0; i < 2000; i++ {
			addr := r.Int63n(128) * mem.CacheLine
			switch r.Intn(4) {
			case 0:
				c.Insert(addr)
			case 1:
				c.MarkDirty(addr, 0, nil)
			case 2:
				c.WriteBack(addr)
			case 3:
				c.Evict(addr)
			}
			if c.Len() > 32 || len(c.keys) != c.Len() || len(c.pos) != c.Len() {
				return false
			}
		}
		for i, k := range c.keys {
			if c.pos[k] != i || !c.Present(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWCBufferCompletesLine(t *testing.T) {
	w := NewWCBuffer()
	_, _, ok := w.Write(0, make([]byte, 32))
	if ok {
		t.Fatal("half-filled line flushed early")
	}
	addr, data, ok := w.Write(32, bytes.Repeat([]byte{7}, 32))
	if !ok || addr != 0 {
		t.Fatal("completed line not flushed")
	}
	if data[32] != 7 || len(data) != 64 {
		t.Fatal("flushed data wrong")
	}
	if w.Pending() != 0 {
		t.Fatal("pending after flush")
	}
}

func TestWCBufferFenceFlush(t *testing.T) {
	w := NewWCBuffer()
	w.Write(0, make([]byte, 8))
	w.Write(128, make([]byte, 8))
	var flushed []int64
	w.Flush(func(addr int64, data []byte, mask uint64) {
		flushed = append(flushed, addr)
		if mask == fullMask {
			t.Error("partial line reported full mask")
		}
	})
	if len(flushed) != 2 || flushed[0] != 0 || flushed[1] != 128 {
		t.Fatalf("flush order = %v", flushed)
	}
	if w.Pending() != 0 {
		t.Fatal("pending after fence")
	}
}

func TestWCBufferDrop(t *testing.T) {
	w := NewWCBuffer()
	w.Write(0, make([]byte, 8))
	w.Write(64, make([]byte, 8))
	if n := w.Drop(); n != 2 {
		t.Fatalf("dropped = %d", n)
	}
	if w.Pending() != 0 {
		t.Fatal("pending after drop")
	}
}

func TestWCBufferUnalignedSpans(t *testing.T) {
	w := NewWCBuffer()
	// Bytes 60..63 of line 0 — mask bits 60-63.
	_, _, ok := w.Write(60, []byte{1, 2, 3, 4})
	if ok {
		t.Fatal("partial flush")
	}
	// Complete the rest of line 0.
	addr, data, ok := w.Write(0, make([]byte, 60))
	if !ok || addr != 0 {
		t.Fatal("line not completed")
	}
	if data[60] != 1 || data[63] != 4 {
		t.Fatal("tail bytes lost")
	}
}
