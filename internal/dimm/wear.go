package dimm

import (
	"math"

	"optanestudy/internal/sim"
)

// wearModel produces the paper's Figure 3 tail-latency outliers: rare
// ~50 µs stalls attributed to wear-leveling / thermal remapping of heavily
// written lines.
//
// Each physical XPLine has a leaky bucket charged once per media write and
// decaying exponentially. Migration probability ramps linearly with bucket
// fill up to PMax at Threshold. A tiny (256 B) hotspot keeps one bucket
// saturated and sees outliers at rate ~PMax; spreading the same write rate
// over a larger region divides each line's fill level and the outliers fade
// smoothly, matching the measured 99.99%/99.999%/Max curves.
type wearModel struct {
	cfg     WearConfig
	buckets map[int64]*wearBucket
}

type wearBucket struct {
	level float64
	last  sim.Time
}

func newWearModel(cfg WearConfig) *wearModel {
	return &wearModel{cfg: cfg, buckets: make(map[int64]*wearBucket)}
}

// onWrite charges the bucket for physical line `phys` at time t and decides
// whether this write triggers a migration. It returns the media stall to
// apply and whether a migration occurred.
func (w *wearModel) onWrite(t sim.Time, phys int64, rng *sim.RNG) (sim.Time, bool) {
	if !w.cfg.Enabled {
		return 0, false
	}
	b := w.buckets[phys]
	if b == nil {
		b = &wearBucket{last: t}
		w.buckets[phys] = b
	}
	if t > b.last {
		halves := float64(t-b.last) / float64(w.cfg.HalfLife)
		b.level *= math.Exp2(-halves)
		b.last = t
	}
	b.level++
	fill := b.level / w.cfg.Threshold
	if fill > 1 {
		fill = 1
		b.level = w.cfg.Threshold // cap so cooling is bounded
	}
	if !rng.Bool(w.cfg.PMax * fill) {
		return 0, false
	}
	// Migration: reset the (new) line's wear and stall the media.
	b.level = 0
	span := w.cfg.StallMax - w.cfg.StallMin
	stall := w.cfg.StallMin
	if span > 0 {
		stall += sim.Time(rng.Int63n(int64(span)))
	}
	return stall, true
}

// tracked reports how many buckets exist (test hook).
func (w *wearModel) tracked() int { return len(w.buckets) }
