package dimm

import (
	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
)

// XPDIMM models one 3D XPoint DIMM: the XPController front end, the
// write-combining XPBuffer, the AIT, and the media behind them.
type XPDIMM struct {
	cfg XPConfig
	rng *sim.RNG

	media    mediaServer
	buf      xpBuffer
	streams  streamTracker
	ait      *AIT
	wear     *wearModel
	counters Counters
}

// NewXPDIMM constructs a DIMM with the given configuration.
func NewXPDIMM(cfg XPConfig) *XPDIMM {
	d := &XPDIMM{
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed),
		ait: NewAIT(),
	}
	d.media.turnaround = cfg.Turnaround
	d.buf.init(cfg.BufferLines)
	d.streams.init(cfg.StreamWindow)
	d.wear = newWearModel(cfg.Wear)
	return d
}

// Kind implements DIMM.
func (d *XPDIMM) Kind() Kind { return KindXP }

// Counters implements DIMM.
func (d *XPDIMM) Counters() *Counters { return &d.counters }

// AIT returns the DIMM's address indirection table.
func (d *XPDIMM) AIT() *AIT { return d.ait }

// mediaServer is the 3D XPoint array. Reads are prioritized over the write
// backlog (the iMC schedules the RPQ ahead of the WPQ), so reads queue only
// behind other reads — but they steal array capacity from writes, and
// switching directions costs a turnaround on the write pipeline.
type mediaServer struct {
	read       sim.Server
	write      sim.Server
	turnaround sim.Time
	lastWrite  bool
	started    bool
}

func (m *mediaServer) acquire(t, occ sim.Time, write bool) (start, end sim.Time) {
	if m.started && m.lastWrite != write && write {
		occ += m.turnaround
	}
	m.started = true
	m.lastWrite = write
	if write {
		return m.write.Acquire(t, occ)
	}
	start, end = m.read.Acquire(t, occ)
	// The array is one resource: read service consumes write-side capacity.
	m.write.Acquire(start, occ)
	return start, end
}

// mediaRead fetches one XPLine; returns when data is available.
func (d *XPDIMM) mediaRead(t sim.Time, line int64) sim.Time {
	d.counters.MediaReadBytes += mem.XPLine
	_, end := d.media.acquire(t, d.cfg.MediaReadOccupancy, false)
	return end + d.cfg.MediaReadLatency
}

// mediaWrite commits one XPLine; returns the completion time. useful is the
// number of new bytes carried (for EWR accounting); rmw indicates the write
// required reading the line first.
func (d *XPDIMM) mediaWrite(t sim.Time, line int64, useful int, rmw bool) sim.Time {
	occ := d.cfg.MediaWriteOccupancy
	if rmw {
		// Fetch the remainder of the line before overwriting it.
		d.counters.MediaReadBytes += mem.XPLine
		occ += d.cfg.MediaReadOccupancy
	}
	d.counters.MediaWriteBytes += mem.XPLine
	if useful < mem.XPLine {
		d.counters.PartialWrites++
	}
	phys := d.ait.Translate(line)
	if stall, ok := d.wear.onWrite(t, phys, d.rng); ok {
		// Wear-leveling migration: the controller copies the line to a
		// fresh physical location and updates the AIT, stalling the media.
		occ += stall
		d.ait.Remap(line)
		d.counters.Remaps++
	}
	_, end := d.media.acquire(t, occ, true)
	return end
}

// ReadLine implements DIMM. A hit in the XPBuffer is served at controller
// speed; a miss fetches the whole XPLine from media into the buffer
// (which is why sequential reads are cheap: one miss loads data for the
// next three cache lines).
func (d *XPDIMM) ReadLine(t sim.Time, addr int64) sim.Time {
	d.counters.CtrlReadBytes += mem.CacheLine
	line := mem.XPLineAddr(addr)
	if e := d.buf.lookup(line); e != nil {
		d.counters.BufferHits++
		d.buf.touch(e)
		return t + d.cfg.CtrlTime
	}
	d.counters.BufferMisses++
	done := d.mediaRead(t, line)
	// Cache the fetched XPLine if a slot is free (possibly by dropping a
	// clean victim); when the buffer is saturated with write-backs the
	// read bypasses it (read-around) rather than stalling behind writes.
	if e, ok := d.tryAllocate(t, line); ok {
		e.valid = true
	}
	return done + d.cfg.CtrlTime
}

// tryAllocate claims a slot without waiting: it succeeds if a slot is free
// or a clean victim can be dropped.
func (d *XPDIMM) tryAllocate(t sim.Time, line int64) (*xpEntry, bool) {
	if d.buf.full(t) {
		v := d.buf.lruClean()
		if v == nil {
			return nil, false
		}
		d.buf.remove(v)
	}
	return d.buf.insert(line), true
}

// WriteLine implements DIMM. Returns when the 64 B chunk has been ingested
// into the XPBuffer (persistent: the buffer is inside the ADR domain), at
// which point the WPQ entry frees.
func (d *XPDIMM) WriteLine(t sim.Time, addr int64) sim.Time {
	d.counters.CtrlWriteBytes += mem.CacheLine
	line := mem.XPLineAddr(addr)
	chunk := uint8(1) << uint((addr-line)/mem.CacheLine)

	if e := d.buf.lookup(line); e != nil {
		d.counters.BufferHits++
		e.dirty |= chunk
		d.buf.touch(e)
		d.maybeComplete(t, e)
		return t + d.cfg.IngestTime
	}
	d.counters.BufferMisses++

	// Write-stream pressure: with more concurrent write streams than
	// combining engines, the controller may close another stream's
	// partially-filled line early (see DESIGN.md).
	active := d.streams.observe(line)
	if over := active - d.cfg.StreamEngines; over > 0 {
		p := d.cfg.StreamPressure * float64(over) / float64(active)
		if d.rng.Bool(p) {
			if v := d.buf.lruPartial(line); v != nil {
				d.counters.EarlyCloses++
				d.evict(t, v)
			}
		}
	}

	e, ready := d.allocate(t, line)
	e.dirty |= chunk
	d.maybeComplete(ready, e)
	return ready + d.cfg.IngestTime
}

// maybeComplete eagerly writes back a line whose four chunks are all dirty:
// a fully-assembled XPLine streams straight to media, keeping sequential
// EWR at 1.0.
func (d *XPDIMM) maybeComplete(t sim.Time, e *xpEntry) {
	if e.dirty == 0xF {
		d.evict(t, e)
	}
}

// evict removes e from the live set. Dirty contents are written to media
// (RMW if partial and the line's old contents are not buffered); the slot
// stays occupied until the media write completes. Clean entries free
// immediately.
func (d *XPDIMM) evict(t sim.Time, e *xpEntry) {
	d.buf.remove(e)
	if e.dirty == 0 {
		return
	}
	useful := popcount4(e.dirty) * mem.CacheLine
	rmw := e.dirty != 0xF && !e.valid
	end := d.mediaWrite(t, e.line, useful, rmw)
	d.buf.addInflight(end)
}

// allocate obtains a buffer slot for line, evicting and waiting as
// necessary. It returns the new entry and the time it became available.
//
// Victim policy: drop the LRU clean entry if one exists (free); otherwise
// wait for an in-flight media writeback to release its slot rather than
// splitting a partially-combined line; only when the buffer is entirely
// dirty partial lines with nothing in flight — genuine capacity pressure,
// the Figure 10 regime — is the LRU dirty line force-evicted.
func (d *XPDIMM) allocate(t sim.Time, line int64) (*xpEntry, sim.Time) {
	if d.buf.full(t) {
		if v := d.buf.lruClean(); v != nil {
			d.buf.remove(v)
		} else if _, ok := d.buf.nextInflight(); !ok {
			if v := d.buf.lru(); v != nil {
				d.evict(t, v)
			}
		}
		// Wait for the oldest in-flight writeback if still full. This is
		// the backpressure that ultimately throttles WPQ drain to media
		// speed.
		for d.buf.full(t) {
			next, ok := d.buf.nextInflight()
			if !ok {
				panic("dimm: buffer full with no evictable entries")
			}
			if next > t {
				t = next
			}
			d.buf.trimInflight(t)
		}
	}
	return d.buf.insert(line), t
}

func popcount4(m uint8) int {
	n := 0
	for i := uint(0); i < 4; i++ {
		if m&(1<<i) != 0 {
			n++
		}
	}
	return n
}

// BufferOccupancy reports live and in-flight slots (for tests).
func (d *XPDIMM) BufferOccupancy(t sim.Time) (live, inflight int) {
	d.buf.trimInflight(t)
	return d.buf.liveCount, len(d.buf.inflight) - d.buf.inflightHead
}
