// Package dimm models the two kinds of memory modules on the platform's
// channels: Intel Optane DC ("3D XPoint") DIMMs and conventional DDR4 DRAM
// DIMMs.
//
// The 3D XPoint model implements the on-DIMM controller described in
// Section 2.1 of the paper: the XPController with its ~16 KB write-combining
// XPBuffer (inside the ADR persistence domain), the address indirection
// table (AIT) used for wear leveling, and 3D XPoint media accessed in 256 B
// XPLines. Small stores become read-modify-write operations; the Effective
// Write Ratio (EWR) — iMC bytes over media bytes — emerges from the buffer
// dynamics and is exported through Counters.
package dimm

import (
	"fmt"

	"optanestudy/internal/sim"
)

// Kind distinguishes module types.
type Kind int

// Module kinds.
const (
	KindDRAM Kind = iota
	KindXP
)

// DIMM is a memory module attached to one channel. The iMC calls ReadLine
// for 64 B reads and WriteLine when a 64 B write drains from the WPQ; both
// are invoked in nondecreasing time order (FIFO per channel).
type DIMM interface {
	// ReadLine performs a 64 B read beginning service at time t and returns
	// the time data is ready at the DIMM pins.
	ReadLine(t sim.Time, addr int64) sim.Time
	// WriteLine ingests a 64 B write at time t and returns the time the
	// corresponding WPQ entry can be released (the DIMM accepted the data
	// into its persistent domain).
	WriteLine(t sim.Time, addr int64) sim.Time
	// Kind reports the module type.
	Kind() Kind
	// Counters returns the module's hardware counters.
	Counters() *Counters
}

// Counters mirrors the DIMM hardware counters the paper reads: bytes moved
// on the DDR-T/DDR4 interface versus bytes moved to and from the media.
type Counters struct {
	CtrlReadBytes   int64 // 64 B reads received from the iMC
	CtrlWriteBytes  int64 // 64 B writes received from the iMC
	MediaReadBytes  int64 // bytes read from media (XPLine granularity)
	MediaWriteBytes int64 // bytes written to media (XPLine granularity)

	BufferHits    int64 // XPBuffer hits (reads and writes)
	BufferMisses  int64 // XPBuffer misses
	PartialWrites int64 // media writes carrying under one XPLine of new data
	EarlyCloses   int64 // partial lines closed by write-stream pressure
	Remaps        int64 // wear-leveling migrations
}

// EWR returns the Effective Write Ratio: bytes issued by the iMC divided by
// bytes written to media (the inverse of write amplification). Returns 1
// when no media writes occurred.
func (c *Counters) EWR() float64 {
	if c.MediaWriteBytes == 0 {
		return 1
	}
	return float64(c.CtrlWriteBytes) / float64(c.MediaWriteBytes)
}

// WriteAmplification returns media bytes written per byte issued, the
// inverse of EWR.
func (c *Counters) WriteAmplification() float64 {
	if c.CtrlWriteBytes == 0 {
		return 1
	}
	return float64(c.MediaWriteBytes) / float64(c.CtrlWriteBytes)
}

// Sub returns c - o, for measuring deltas over an experiment window.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		CtrlReadBytes:   c.CtrlReadBytes - o.CtrlReadBytes,
		CtrlWriteBytes:  c.CtrlWriteBytes - o.CtrlWriteBytes,
		MediaReadBytes:  c.MediaReadBytes - o.MediaReadBytes,
		MediaWriteBytes: c.MediaWriteBytes - o.MediaWriteBytes,
		BufferHits:      c.BufferHits - o.BufferHits,
		BufferMisses:    c.BufferMisses - o.BufferMisses,
		PartialWrites:   c.PartialWrites - o.PartialWrites,
		EarlyCloses:     c.EarlyCloses - o.EarlyCloses,
		Remaps:          c.Remaps - o.Remaps,
	}
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.CtrlReadBytes += o.CtrlReadBytes
	c.CtrlWriteBytes += o.CtrlWriteBytes
	c.MediaReadBytes += o.MediaReadBytes
	c.MediaWriteBytes += o.MediaWriteBytes
	c.BufferHits += o.BufferHits
	c.BufferMisses += o.BufferMisses
	c.PartialWrites += o.PartialWrites
	c.EarlyCloses += o.EarlyCloses
	c.Remaps += o.Remaps
}

// String summarizes the counters, including the XPBuffer dynamics
// (hits/misses, partial writes, early closes) that drive the EWR.
func (c *Counters) String() string {
	return fmt.Sprintf("ctrlR=%d ctrlW=%d mediaR=%d mediaW=%d EWR=%.3f hits=%d misses=%d partial=%d earlyClose=%d remaps=%d",
		c.CtrlReadBytes, c.CtrlWriteBytes, c.MediaReadBytes, c.MediaWriteBytes, c.EWR(),
		c.BufferHits, c.BufferMisses, c.PartialWrites, c.EarlyCloses, c.Remaps)
}
