package dimm

import "optanestudy/internal/sim"

// XPConfig holds the timing and structural parameters of one 3D XPoint
// DIMM. Defaults are calibrated so the assembled platform reproduces the
// paper's Figure 2 latencies and Section 3.4 bandwidths (see DESIGN.md).
type XPConfig struct {
	// CtrlTime is the XPController processing time added to every access
	// (buffer lookup, DDR-T handshake).
	CtrlTime sim.Time
	// MediaReadLatency is the 3D XPoint array access latency added to a
	// read miss, beyond the occupancy below.
	MediaReadLatency sim.Time
	// MediaReadOccupancy is the media service time per XPLine read; its
	// reciprocal bounds per-DIMM read bandwidth (~256 B / 36 ns ≈ 7 GB/s).
	MediaReadOccupancy sim.Time
	// MediaWriteOccupancy is the media service time per XPLine write
	// (~256 B / 100 ns ≈ 2.5 GB/s).
	MediaWriteOccupancy sim.Time
	// Turnaround is the extra media service time when switching between
	// reads and writes (DDR-T/media pipeline drain).
	Turnaround sim.Time
	// IngestTime is the controller time to accept one 64 B write into the
	// XPBuffer.
	IngestTime sim.Time

	// BufferLines is the XPBuffer capacity in 256 B XPLines (64 → 16 KB,
	// the capacity the paper infers in Figure 10).
	BufferLines int
	// StreamEngines is the number of write streams the controller can
	// combine without loss. Beyond it, partial lines are probabilistically
	// closed early (the Section 5.3 multi-writer EWR collapse). This is a
	// phenomenological knob; see DESIGN.md.
	StreamEngines int
	// StreamPressure scales the early-close probability.
	StreamPressure float64
	// StreamWindow is the number of recent 64 B writes over which
	// concurrent streams are counted.
	StreamWindow int

	// Wear configures the wear-leveling remap model behind the paper's
	// tail-latency outliers (Figure 3).
	Wear WearConfig

	// Seed feeds the DIMM's private RNG.
	Seed uint64
}

// DefaultXPConfig returns the calibrated 3D XPoint DIMM parameters.
func DefaultXPConfig() XPConfig {
	return XPConfig{
		CtrlTime:            64 * sim.Nanosecond,
		MediaReadLatency:    145 * sim.Nanosecond,
		MediaReadOccupancy:  36 * sim.Nanosecond,
		MediaWriteOccupancy: 100 * sim.Nanosecond,
		Turnaround:          20 * sim.Nanosecond,
		IngestTime:          2 * sim.Nanosecond,
		BufferLines:         64,
		StreamEngines:       2,
		StreamPressure:      1.0,
		StreamWindow:        128,
		Wear:                DefaultWearConfig(),
		Seed:                0x0C7A9E,
	}
}

// WearConfig parameterizes wear-leveling migrations. Each media write to an
// XPLine charges a leaky bucket; the fuller the bucket, the more likely the
// controller migrates the line, stalling the media for tens of
// microseconds. Hot small regions therefore see rare ~50 µs outliers that
// fade as the working set grows, matching Figure 3.
type WearConfig struct {
	Enabled bool
	// Threshold is the bucket level at which migration probability
	// saturates at PMax.
	Threshold float64
	// HalfLife is the bucket's exponential-decay half life.
	HalfLife sim.Time
	// PMax is the per-write migration probability at or above Threshold.
	PMax float64
	// StallMin and StallMax bound the media stall of one migration.
	StallMin sim.Time
	StallMax sim.Time
}

// DefaultWearConfig returns the calibrated wear model.
func DefaultWearConfig() WearConfig {
	return WearConfig{
		Enabled:   true,
		Threshold: 512,
		HalfLife:  500 * sim.Microsecond,
		PMax:      8e-4,
		StallMin:  30 * sim.Microsecond,
		StallMax:  80 * sim.Microsecond,
	}
}
