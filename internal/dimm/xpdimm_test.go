package dimm

import (
	"testing"
	"testing/quick"

	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
)

// seqWrite streams n bytes of sequential 64 B writes starting at base,
// pacing arrivals by the returned drain times (like a WPQ would).
func seqWrite(d *XPDIMM, base int64, n int64) {
	var t sim.Time
	for off := int64(0); off < n; off += mem.CacheLine {
		t = d.WriteLine(t, base+off)
	}
}

func TestXPSequentialWritesCombine(t *testing.T) {
	d := NewXPDIMM(DefaultXPConfig())
	seqWrite(d, 0, 1<<20)
	c := d.Counters()
	if ewr := c.EWR(); ewr < 0.95 || ewr > 1.05 {
		t.Fatalf("sequential EWR = %.3f, want ~1.0 (%v)", ewr, c)
	}
	if c.PartialWrites > c.MediaWriteBytes/mem.XPLine/20 {
		t.Fatalf("too many partial writes: %v", c)
	}
}

func TestXPRandom64BWritesAmplify(t *testing.T) {
	cfg := DefaultXPConfig()
	cfg.Wear.Enabled = false
	d := NewXPDIMM(cfg)
	r := sim.NewRNG(1)
	var tm sim.Time
	for i := 0; i < 50000; i++ {
		addr := r.Int63n(1<<26) &^ (mem.CacheLine - 1)
		tm = d.WriteLine(tm, addr)
	}
	ewr := d.Counters().EWR()
	// The paper measures 0.25 for random 64 B stores: every 64 B write
	// becomes a 256 B media write.
	if ewr < 0.2 || ewr > 0.35 {
		t.Fatalf("random 64B EWR = %.3f, want ~0.25", ewr)
	}
}

func TestXPRandom256BWritesEfficient(t *testing.T) {
	cfg := DefaultXPConfig()
	cfg.Wear.Enabled = false
	d := NewXPDIMM(cfg)
	r := sim.NewRNG(2)
	var tm sim.Time
	for i := 0; i < 20000; i++ {
		line := r.Int63n(1<<26) &^ (mem.XPLine - 1)
		for c := int64(0); c < 4; c++ {
			tm = d.WriteLine(tm, line+c*mem.CacheLine)
		}
	}
	ewr := d.Counters().EWR()
	// Paper: 0.98 for random 256 B accesses.
	if ewr < 0.9 {
		t.Fatalf("random 256B EWR = %.3f, want ~1.0", ewr)
	}
}

// TestXPRegionProbe reproduces the Figure 10 experiment at the DIMM level:
// write the first half of each XPLine in an N-line region, then the second
// half. Within the 64-line XPBuffer capacity the halves combine (WA ~1);
// beyond it, write amplification jumps toward 2.
func TestXPRegionProbe(t *testing.T) {
	wa := func(lines int64) float64 {
		cfg := DefaultXPConfig()
		cfg.Wear.Enabled = false
		d := NewXPDIMM(cfg)
		var tm sim.Time
		for round := 0; round < 4; round++ {
			for half := int64(0); half < 2; half++ {
				for i := int64(0); i < lines; i++ {
					base := i*mem.XPLine + half*2*mem.CacheLine
					tm = d.WriteLine(tm, base)
					tm = d.WriteLine(tm, base+mem.CacheLine)
				}
			}
		}
		return d.Counters().WriteAmplification()
	}
	small := wa(32)
	atCap := wa(64)
	big := wa(256)
	if small > 1.1 {
		t.Errorf("WA(32 lines) = %.3f, want ~1", small)
	}
	if atCap > 1.3 {
		t.Errorf("WA(64 lines) = %.3f, want near 1", atCap)
	}
	if big < 1.6 {
		t.Errorf("WA(256 lines) = %.3f, want ~2", big)
	}
	if big <= small {
		t.Errorf("WA must rise past buffer capacity: %.3f <= %.3f", big, small)
	}
}

// TestXPStreamPressure: interleaving many sequential write streams on one
// DIMM degrades EWR (paper: 0.98 at 1 thread, 0.62 at 8 threads).
func TestXPStreamPressure(t *testing.T) {
	ewrFor := func(streams int) float64 {
		cfg := DefaultXPConfig()
		cfg.Wear.Enabled = false
		d := NewXPDIMM(cfg)
		var tm sim.Time
		offs := make([]int64, streams)
		for i := range offs {
			offs[i] = int64(i) * (1 << 22) // private 4 MB regions
		}
		for n := 0; n < 200000/streams; n++ {
			for s := 0; s < streams; s++ {
				tm = d.WriteLine(tm, offs[s])
				offs[s] += mem.CacheLine
			}
		}
		return d.Counters().EWR()
	}
	one := ewrFor(1)
	two := ewrFor(2)
	four := ewrFor(4)
	eight := ewrFor(8)
	sixteen := ewrFor(16)
	if one < 0.95 {
		t.Errorf("EWR(1 stream) = %.3f, want ~1", one)
	}
	if two < 0.9 {
		t.Errorf("EWR(2 streams) = %.3f, want >= 0.9 (within engines)", two)
	}
	if four < 0.6 || four > 0.92 {
		t.Errorf("EWR(4 streams) = %.3f, want ~0.75", four)
	}
	if eight < 0.45 || eight > 0.78 {
		t.Errorf("EWR(8 streams) = %.3f, want ~0.62", eight)
	}
	if sixteen > eight+0.03 {
		t.Errorf("EWR must keep declining: EWR(16)=%.3f >> EWR(8)=%.3f", sixteen, eight)
	}
}

func TestXPReadHitAfterMiss(t *testing.T) {
	d := NewXPDIMM(DefaultXPConfig())
	// First read of an XPLine misses (media fetch), next three hit.
	t0 := d.ReadLine(0, 0)
	if t0 < 200*sim.Nanosecond {
		t.Fatalf("miss served in %v, expected media latency", t0)
	}
	t1 := d.ReadLine(t0, 64)
	hitLat := t1 - t0
	if hitLat > 100*sim.Nanosecond {
		t.Fatalf("hit latency %v, want controller-speed", hitLat)
	}
	c := d.Counters()
	if c.BufferMisses != 1 || c.BufferHits != 1 {
		t.Fatalf("hit/miss counters: %v", c)
	}
	if c.MediaReadBytes != mem.XPLine {
		t.Fatalf("media read bytes = %d", c.MediaReadBytes)
	}
}

func TestXPWriteAfterReadAvoidsRMW(t *testing.T) {
	cfg := DefaultXPConfig()
	cfg.Wear.Enabled = false
	d := NewXPDIMM(cfg)
	var tm sim.Time
	// Read the line first (RFO-like), then dirty one chunk and force
	// eviction by filling the buffer with other lines.
	tm = d.ReadLine(tm, 0)
	tm = d.WriteLine(tm, 0)
	before := d.Counters().MediaReadBytes
	for i := int64(1); i <= 80; i++ {
		tm = d.ReadLine(tm, i*mem.XPLine)
	}
	// Eviction of the valid dirty line must not have issued an RMW read.
	extraReads := d.Counters().MediaReadBytes - before
	if extraReads != 80*mem.XPLine {
		t.Fatalf("extra media reads = %d bytes, want exactly the 80 fetches", extraReads)
	}
}

func TestXPBufferCapacityInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultXPConfig()
		cfg.BufferLines = 16
		cfg.Wear.Enabled = false
		cfg.Seed = seed
		d := NewXPDIMM(cfg)
		r := sim.NewRNG(seed)
		var tm sim.Time
		for i := 0; i < 3000; i++ {
			addr := r.Int63n(1<<22) &^ (mem.CacheLine - 1)
			if r.Bool(0.5) {
				tm = d.WriteLine(tm, addr)
			} else {
				tm = d.ReadLine(tm, addr)
			}
			live, inflight := d.BufferOccupancy(tm)
			if live+inflight > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: EWR never exceeds 1 + epsilon for write-only workloads without
// rewrites of buffered lines (media writes are at least as large as the
// data accepted), and media write bytes are XPLine multiples.
func TestXPEWRBounds(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultXPConfig()
		cfg.Wear.Enabled = false
		cfg.Seed = seed
		d := NewXPDIMM(cfg)
		r := sim.NewRNG(seed ^ 0xABCD)
		var tm sim.Time
		for i := 0; i < 5000; i++ {
			addr := r.Int63n(1<<24) &^ (mem.CacheLine - 1)
			tm = d.WriteLine(tm, addr)
		}
		c := d.Counters()
		if c.MediaWriteBytes%mem.XPLine != 0 {
			return false
		}
		// Some data may still sit in the buffer, so EWR can exceed 1
		// slightly; bound it by capacity slack.
		slack := float64(cfg.BufferLines*mem.XPLine) / float64(c.MediaWriteBytes+1)
		return c.EWR() <= 1.05+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestWearModelHotspotOutliers(t *testing.T) {
	cfg := DefaultXPConfig()
	d := NewXPDIMM(cfg)
	// Hammer a single XPLine (4-chunk writes) and count remaps.
	var tm sim.Time
	const n = 400000
	for i := 0; i < n; i++ {
		for c := int64(0); c < 4; c++ {
			tm = d.WriteLine(tm, c*mem.CacheLine)
		}
	}
	remaps := d.Counters().Remaps
	rate := float64(remaps) / float64(n)
	if rate < 3e-4 || rate > 1.8e-3 {
		t.Errorf("hotspot remap rate = %.2e (%d events), want ~8e-4", rate, remaps)
	}
	if d.AIT().Remaps() == 0 {
		t.Error("AIT saw no remaps")
	}
}

func TestWearModelColdRegionClean(t *testing.T) {
	cfg := DefaultXPConfig()
	d := NewXPDIMM(cfg)
	// Spread the same write count over 64 MB: buckets never fill.
	var tm sim.Time
	const region = 64 << 20
	for i := 0; i < 400000; i++ {
		addr := (int64(i) * mem.XPLine) % region
		tm = d.WriteLine(tm, addr)
	}
	if remaps := d.Counters().Remaps; remaps > 2 {
		t.Errorf("cold region saw %d remaps, want ~0", remaps)
	}
}

func TestAIT(t *testing.T) {
	a := NewAIT()
	if a.Translate(256) != 256 {
		t.Fatal("identity translation broken")
	}
	p := a.Remap(256)
	if a.Translate(256) != p {
		t.Fatal("remap not visible")
	}
	if a.Translate(512) != 512 {
		t.Fatal("remap leaked to other lines")
	}
	p2 := a.Remap(256)
	if p2 == p {
		t.Fatal("remap reused physical line")
	}
	if a.Remaps() != 1 {
		t.Fatalf("remaps = %d, want 1 distinct line", a.Remaps())
	}
}

func TestStreamTracker(t *testing.T) {
	var s streamTracker
	s.init(128)
	// One sequential stream stays one stream even across 4 KB boundaries.
	for i := int64(0); i < 200; i++ {
		if got := s.observe(i * mem.XPLine); got != 1 {
			t.Fatalf("sequential stream counted as %d at step %d", got, i)
		}
	}
	// Four interleaved distant streams count as four.
	var s2 streamTracker
	s2.init(128)
	max := 0
	for i := int64(0); i < 200; i++ {
		for k := int64(0); k < 4; k++ {
			got := s2.observe(k*(1<<26) + i*mem.XPLine)
			if got > max {
				max = got
			}
		}
	}
	if max != 4 {
		t.Fatalf("4 interleaved streams counted as %d", max)
	}
}

func TestDRAMRowBuffer(t *testing.T) {
	d := NewDRAMDIMM(DefaultDRAMConfig())
	first := d.ReadLine(0, 0) // row miss
	second := d.ReadLine(first, 64) - first
	if first != 41*sim.Nanosecond {
		t.Fatalf("row miss = %v", first)
	}
	if second != 21*sim.Nanosecond {
		t.Fatalf("row hit = %v", second)
	}
	if d.Counters().EWR() != 1 {
		t.Fatal("DRAM EWR must be 1")
	}
}

func TestDRAMWriteThrottle(t *testing.T) {
	cfg := PMEPDRAMConfig()
	d := NewDRAMDIMM(cfg)
	var tm sim.Time
	n := 1000
	for i := 0; i < n; i++ {
		tm = d.WriteLine(tm, int64(i)*mem.CacheLine)
	}
	gbs := float64(n*mem.CacheLine) / tm.Seconds() / 1e9
	if gbs > 2.5 {
		t.Fatalf("PMEP write bandwidth = %.2f GB/s, want <= 2.3-ish", gbs)
	}
	// And reads carry the +300ns emulation penalty.
	done := d.ReadLine(tm, 0)
	if done-tm < 300*sim.Nanosecond {
		t.Fatalf("PMEP read latency = %v, want >= 300ns", done-tm)
	}
}

func TestCountersSubAdd(t *testing.T) {
	a := Counters{CtrlWriteBytes: 100, MediaWriteBytes: 200, Remaps: 3}
	b := Counters{CtrlWriteBytes: 40, MediaWriteBytes: 50, Remaps: 1}
	d := a.Sub(b)
	if d.CtrlWriteBytes != 60 || d.MediaWriteBytes != 150 || d.Remaps != 2 {
		t.Fatalf("sub = %+v", d)
	}
	var acc Counters
	acc.Add(a)
	acc.Add(b)
	if acc.CtrlWriteBytes != 140 {
		t.Fatalf("add = %+v", acc)
	}
	if ewr := d.EWR(); ewr != 0.4 {
		t.Fatalf("EWR = %v", ewr)
	}
}
