package dimm

// AIT is the address indirection table the XPController uses for wear
// leveling and bad-block management (Section 2.1.1). Logical XPLine
// addresses translate to physical line ids; a wear-leveling migration
// remaps a logical line to a fresh physical line.
//
// Translation is identity until the first remap, so the table stays sparse.
type AIT struct {
	remapped map[int64]int64 // logical line -> physical line id
	nextFree int64           // physical line id allocator (above address space)
}

// NewAIT returns an empty (identity) table.
func NewAIT() *AIT {
	return &AIT{remapped: make(map[int64]int64), nextFree: 1 << 50}
}

// Translate returns the physical line id backing a logical XPLine address.
func (a *AIT) Translate(line int64) int64 {
	if p, ok := a.remapped[line]; ok {
		return p
	}
	return line
}

// Remap migrates a logical line to a fresh physical line and returns the
// new physical id.
func (a *AIT) Remap(line int64) int64 {
	p := a.nextFree
	a.nextFree++
	a.remapped[line] = p
	return p
}

// Remaps returns how many lines have been migrated at least once.
func (a *AIT) Remaps() int { return len(a.remapped) }
