package dimm

import (
	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
)

// DRAMConfig holds the timing parameters of a DDR4 DRAM DIMM.
type DRAMConfig struct {
	// RowHit is the array access time when the target row is open.
	RowHit sim.Time
	// RowMiss is the access time on a row-buffer miss (precharge+activate).
	RowMiss sim.Time
	// WriteTime is the array time to retire a 64 B write.
	WriteTime sim.Time
	// Banks and RowBytes describe the bank/row-buffer geometry.
	Banks    int
	RowBytes int64

	// ExtraReadLatency models emulation platforms (PMEP adds ~300 ns).
	ExtraReadLatency sim.Time
	// WriteOccupancy throttles writes at the DIMM (PMEP caps write
	// bandwidth at 1/8 of DRAM); zero means unthrottled.
	WriteOccupancy sim.Time
}

// DefaultDRAMConfig returns timings calibrated to the paper's Figure 2
// (81 ns sequential / 101 ns random loads on the assembled platform).
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		RowHit:    21 * sim.Nanosecond,
		RowMiss:   41 * sim.Nanosecond,
		WriteTime: 10 * sim.Nanosecond,
		Banks:     16,
		RowBytes:  8192,
	}
}

// PMEPDRAMConfig returns the DRAM configuration used to emulate Intel's
// Persistent Memory Emulator Platform: +300 ns load latency and write
// bandwidth throttled to 1/8 of DRAM (Section 4.1).
func PMEPDRAMConfig() DRAMConfig {
	cfg := DefaultDRAMConfig()
	cfg.ExtraReadLatency = 300 * sim.Nanosecond
	cfg.WriteOccupancy = 28 * sim.Nanosecond // 64 B / 28 ns ≈ 2.3 GB/s/channel
	return cfg
}

// DRAMDIMM models a DRAM DIMM with per-bank open-row tracking. DRAM
// bandwidth is bounded by the channel bus (modeled in the imc package), so
// the DIMM itself only contributes latency.
type DRAMDIMM struct {
	cfg      DRAMConfig
	openRow  []int64
	writeSrv sim.Server
	counters Counters
}

// NewDRAMDIMM constructs a DRAM DIMM.
func NewDRAMDIMM(cfg DRAMConfig) *DRAMDIMM {
	if cfg.Banks < 1 {
		cfg.Banks = 1
	}
	if cfg.RowBytes < mem.CacheLine {
		cfg.RowBytes = 8192
	}
	rows := make([]int64, cfg.Banks)
	for i := range rows {
		rows[i] = -1
	}
	return &DRAMDIMM{cfg: cfg, openRow: rows}
}

// Kind implements DIMM.
func (d *DRAMDIMM) Kind() Kind { return KindDRAM }

// Counters implements DIMM.
func (d *DRAMDIMM) Counters() *Counters { return &d.counters }

func (d *DRAMDIMM) rowAccess(addr int64) sim.Time {
	row := addr / d.cfg.RowBytes
	bank := int(row % int64(d.cfg.Banks))
	if d.openRow[bank] == row {
		return d.cfg.RowHit
	}
	d.openRow[bank] = row
	return d.cfg.RowMiss
}

// ReadLine implements DIMM.
func (d *DRAMDIMM) ReadLine(t sim.Time, addr int64) sim.Time {
	d.counters.CtrlReadBytes += mem.CacheLine
	d.counters.MediaReadBytes += mem.CacheLine
	return t + d.rowAccess(addr) + d.cfg.ExtraReadLatency
}

// WriteLine implements DIMM.
func (d *DRAMDIMM) WriteLine(t sim.Time, addr int64) sim.Time {
	d.counters.CtrlWriteBytes += mem.CacheLine
	d.counters.MediaWriteBytes += mem.CacheLine
	end := t + d.rowAccess(addr) + d.cfg.WriteTime
	if d.cfg.WriteOccupancy > 0 {
		_, end = d.writeSrv.Acquire(t, d.cfg.WriteOccupancy)
	}
	return end
}
