package dimm

import "optanestudy/internal/sim"

// xpEntry is one 256 B XPLine slot in the XPBuffer.
type xpEntry struct {
	line  int64
	dirty uint8 // bitmask of dirty 64 B chunks
	valid bool  // line contents were fetched from media (no RMW needed)

	prev, next *xpEntry // LRU list links
}

// xpBuffer is the XPController's combining buffer: an LRU-ordered set of
// XPLine entries plus a FIFO of slots occupied by in-flight media
// writebacks. live + inflight never exceeds the configured capacity, which
// is what throttles WPQ drain when the media falls behind.
type xpBuffer struct {
	cap       int
	entries   map[int64]*xpEntry
	head      *xpEntry // most recently used
	tail      *xpEntry // least recently used
	liveCount int
	free      *xpEntry // recycled entries, chained through next

	inflight     []sim.Time
	inflightHead int
}

func (b *xpBuffer) init(capacity int) {
	if capacity < 2 {
		capacity = 2
	}
	b.cap = capacity
	b.entries = make(map[int64]*xpEntry, capacity)
}

func (b *xpBuffer) lookup(line int64) *xpEntry { return b.entries[line] }

// touch moves e to the MRU position.
func (b *xpBuffer) touch(e *xpEntry) {
	if b.head == e {
		return
	}
	b.unlink(e)
	b.pushFront(e)
}

func (b *xpBuffer) pushFront(e *xpEntry) {
	e.prev = nil
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	if b.tail == nil {
		b.tail = e
	}
}

func (b *xpBuffer) unlink(e *xpEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// insert adds a fresh entry at MRU, recycling a removed entry when one is
// available so steady-state buffer churn (the log workloads' insert/evict
// treadmill over ever-new XPLine addresses) allocates nothing. The caller
// must have ensured space.
func (b *xpBuffer) insert(line int64) *xpEntry {
	e := b.free
	if e != nil {
		b.free = e.next
		*e = xpEntry{line: line}
	} else {
		e = &xpEntry{line: line}
	}
	b.entries[line] = e
	b.pushFront(e)
	b.liveCount++
	return e
}

// remove deletes e from the live set (slot accounting is the caller's job:
// dirty evictions must be re-registered via addInflight) and parks it on
// the free list. Callers may still read e's fields until the next insert,
// which is when the slot is reused.
func (b *xpBuffer) remove(e *xpEntry) {
	delete(b.entries, e.line)
	b.unlink(e)
	b.liveCount--
	e.next, b.free = b.free, e
}

// lru returns the least-recently-used live entry.
func (b *xpBuffer) lru() *xpEntry { return b.tail }

// lruClean returns the least-recently-used entry with no dirty data, or nil.
func (b *xpBuffer) lruClean() *xpEntry {
	for e := b.tail; e != nil; e = e.prev {
		if e.dirty == 0 {
			return e
		}
	}
	return nil
}

// lruPartial returns the least-recently-used entry that holds a partially
// dirty line other than `except`, or nil.
func (b *xpBuffer) lruPartial(except int64) *xpEntry {
	for e := b.tail; e != nil; e = e.prev {
		if e.line != except && e.dirty != 0 && e.dirty != 0xF {
			return e
		}
	}
	return nil
}

// addInflight registers a slot occupied by a media writeback completing at
// the given time. Completion times are nondecreasing (media is FIFO).
func (b *xpBuffer) addInflight(done sim.Time) {
	b.inflight = append(b.inflight, done)
}

func (b *xpBuffer) trimInflight(t sim.Time) {
	for b.inflightHead < len(b.inflight) && b.inflight[b.inflightHead] <= t {
		b.inflightHead++
	}
	if b.inflightHead > 256 && b.inflightHead*2 >= len(b.inflight) {
		b.inflight = append(b.inflight[:0], b.inflight[b.inflightHead:]...)
		b.inflightHead = 0
	}
}

// nextInflight returns the earliest in-flight completion.
func (b *xpBuffer) nextInflight() (sim.Time, bool) {
	if b.inflightHead < len(b.inflight) {
		return b.inflight[b.inflightHead], true
	}
	return 0, false
}

// full reports whether no slot is available at time t.
func (b *xpBuffer) full(t sim.Time) bool {
	b.trimInflight(t)
	return b.liveCount+(len(b.inflight)-b.inflightHead) >= b.cap
}

// streamTracker estimates how many distinct write streams are concurrently
// active on the DIMM, using per-stream last-address matching over a sliding
// window of recent 64 B writes.
type streamTracker struct {
	window  int64
	counter int64
	slots   []streamSlot
}

type streamSlot struct {
	lastAddr int64
	lastSeen int64
	used     bool
}

func (s *streamTracker) init(window int) {
	if window < 8 {
		window = 8
	}
	s.window = int64(window)
	s.slots = make([]streamSlot, 32)
}

// observe records a write to an XPLine address and returns the number of
// active streams (including this one).
func (s *streamTracker) observe(line int64) int {
	s.counter++
	matched := -1
	victim := 0
	var victimSeen int64 = 1 << 62
	for i := range s.slots {
		sl := &s.slots[i]
		if sl.used && line >= sl.lastAddr-512 && line <= sl.lastAddr+4096 {
			matched = i
			break
		}
		if sl.lastSeen < victimSeen {
			victim, victimSeen = i, sl.lastSeen
		}
	}
	if matched < 0 {
		matched = victim
		s.slots[matched].used = true
	}
	s.slots[matched].lastAddr = line
	s.slots[matched].lastSeen = s.counter
	active := 0
	for i := range s.slots {
		if s.slots[i].used && s.counter-s.slots[i].lastSeen < s.window {
			active++
		}
	}
	return active
}
