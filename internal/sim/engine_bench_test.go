package sim

import "testing"

// BenchmarkYieldSoloProc measures the per-advance cost when one proc owns
// the timeline — the common case for single-threaded kernels, served by the
// in-goroutine fast path in Proc.yield.
func BenchmarkYieldSoloProc(b *testing.B) {
	eng := NewEngine()
	eng.Go("solo", 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(Nanosecond)
		}
	})
	b.ResetTimer()
	eng.Run()
}

// BenchmarkYieldContended measures the per-advance cost when two procs tick
// in lock-step, forcing the full park/resume handoff on every yield.
func BenchmarkYieldContended(b *testing.B) {
	eng := NewEngine()
	for w := 0; w < 2; w++ {
		eng.Go("w", 0, func(p *Proc) {
			for i := 0; i < b.N/2; i++ {
				p.Advance(Nanosecond)
			}
		})
	}
	b.ResetTimer()
	eng.Run()
}
