package sim

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64).
// Every simulated component that needs randomness owns its own RNG so that
// simulations are reproducible regardless of scheduling.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: RNG.Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator; useful for giving each simulated
// thread its own stream from a single experiment seed.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
