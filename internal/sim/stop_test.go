package sim

import (
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops to at most want, or
// the deadline passes; it returns the final count. Reaped goroutines need a
// moment to actually exit after their resume.
func waitGoroutines(want int) int {
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want || time.Now().After(deadline) {
			return n
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestStopReapsUnrunProcs covers the teardown contract: procs spawned but
// never run are parked on their resume channel; Stop must unblock and reap
// every one of them.
func TestStopReapsUnrunProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		e := NewEngine()
		for j := 0; j < 8; j++ {
			e.Go("parked", 0, func(p *Proc) {
				p.Advance(Microsecond)
			})
		}
		e.Stop()
	}
	if after := waitGoroutines(before); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestStopIdempotentAndAfterRun checks Stop after a completed Run is a
// no-op and double-Stop is safe.
func TestStopIdempotentAndAfterRun(t *testing.T) {
	e := NewEngine()
	e.Go("a", 0, func(p *Proc) { p.Advance(10 * Nanosecond) })
	if end := e.Run(); end != 10*Nanosecond {
		t.Fatalf("end = %v", end)
	}
	e.Stop()
	e.Stop()
}

// TestGoAfterStopPanics pins the misuse contract.
func TestGoAfterStopPanics(t *testing.T) {
	e := NewEngine()
	e.Stop()
	defer func() {
		if recover() == nil {
			t.Error("Go on a stopped engine did not panic")
		}
	}()
	e.Go("late", 0, func(p *Proc) {})
}
