// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine uses a process model: each simulated thread of execution is a
// Proc running on its own goroutine, but exactly one Proc executes at a time
// and control transfers only at explicit time-advancing operations. This
// yields deterministic, race-free simulations while letting simulated code
// (memory kernels, file systems, key-value stores) be written as ordinary
// straight-line Go.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulated timestamp or duration, in picoseconds. Picosecond
// resolution avoids rounding artifacts when dividing nanosecond-scale
// service times across 64-byte transfer units.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanos converts a floating-point number of nanoseconds to a Time.
func Nanos(ns float64) Time { return Time(math.Round(ns * float64(Nanosecond))) }

// Micros converts a floating-point number of microseconds to a Time.
func Micros(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// String formats t with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.2fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// BytesPerSecond expresses a transfer rate used to derive service times.
type BytesPerSecond float64

// GBs constructs a rate from gigabytes per second (decimal GB).
func GBs(g float64) BytesPerSecond { return BytesPerSecond(g * 1e9) }

// ServiceTime returns the time to transfer n bytes at rate r.
func (r BytesPerSecond) ServiceTime(n int) Time {
	if r <= 0 {
		return 0
	}
	return Time(math.Round(float64(n) / float64(r) * float64(Second)))
}
