package sim

import (
	"container/heap"
	"fmt"
)

// Proc is a simulated thread of execution. Procs advance simulated time via
// AdvanceTo/Sleep; between advances they run exclusively, so shared
// simulation state needs no locking.
type Proc struct {
	eng  *Engine
	name string
	id   int
	now  Time
	seq  uint64

	resume chan struct{}
	done   bool
}

// Now returns the proc's current simulated time.
func (p *Proc) Now() Time { return p.now }

// Name returns the proc's debug name.
func (p *Proc) Name() string { return p.name }

// ID returns the proc's unique id within its engine (0, 1, 2, ... in spawn
// order). Kernels use it to derive per-thread seeds and address partitions.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine this proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// AdvanceTo moves the proc's clock to t (no-op if t is in the past) and
// yields to the scheduler so that other procs with earlier clocks can run.
func (p *Proc) AdvanceTo(t Time) {
	if t > p.now {
		p.now = t
	}
	p.yield()
}

// Advance moves the proc's clock forward by d and yields.
func (p *Proc) Advance(d Time) { p.AdvanceTo(p.now + d) }

// Sleep is an alias for Advance, for readability in kernels.
func (p *Proc) Sleep(d Time) { p.Advance(d) }

func (p *Proc) yield() {
	e := p.eng
	// Fast path: if every parked proc is strictly later than this one, the
	// scheduler would hand control straight back, so skip the park/resume
	// channel round-trip entirely. Ties must park: FIFO order among equal
	// times is decided by the heap. Touching e.procs and e.now from the
	// proc's goroutine is safe because procs run exclusively — Run is
	// blocked on e.parked until this proc parks or finishes.
	if len(e.procs) == 0 || p.now < e.procs[0].now {
		if p.now > e.now {
			e.now = p.now
		}
		return
	}
	p.seq = e.nextSeq()
	e.parked <- p
	<-p.resume
	if e.stopped {
		panic(procStop{})
	}
}

// Engine schedules procs in global simulated-time order.
type Engine struct {
	procs   procHeap
	parked  chan *Proc
	seq     uint64
	nlive   int
	nextID  int
	now     Time
	stopped bool
}

// procStop is the sentinel panic Stop uses to unwind a parked proc's
// goroutine through its deferred handlers. Kernels must not recover it.
type procStop struct{}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{parked: make(chan *Proc)}
}

// Now returns the time of the most recently scheduled proc — the global
// simulation clock.
func (e *Engine) Now() Time { return e.now }

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

// Go spawns a new proc running fn, starting at time start. It may be called
// before Run or from within a running proc (in which case start is normally
// the caller's Now).
func (e *Engine) Go(name string, start Time, fn func(p *Proc)) *Proc {
	if e.stopped {
		panic("sim: Go on a stopped engine")
	}
	p := &Proc{
		eng:    e,
		name:   name,
		id:     e.nextID,
		now:    start,
		seq:    e.nextSeq(),
		resume: make(chan struct{}),
	}
	e.nextID++
	e.nlive++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procStop); !ok {
					panic(r)
				}
			}
			p.done = true
			e.parked <- p
		}()
		<-p.resume
		if !e.stopped {
			fn(p)
		}
	}()
	heap.Push(&e.procs, p)
	return p
}

// Run executes the simulation until every proc has finished. It returns the
// final simulated time.
func (e *Engine) Run() Time {
	if e.stopped {
		panic("sim: Run on a stopped engine")
	}
	for e.nlive > 0 {
		if e.procs.Len() == 0 {
			panic("sim: deadlock: live procs but none runnable")
		}
		p := heap.Pop(&e.procs).(*Proc)
		if p.now > e.now {
			e.now = p.now
		}
		p.resume <- struct{}{}
		back := <-e.parked
		if back.done {
			e.nlive--
			continue
		}
		heap.Push(&e.procs, back)
	}
	return e.now
}

// Stop tears the engine down: every live proc — spawned but never run, or
// parked mid-simulation — is resumed one final time and unwound via a
// sentinel panic so its goroutine exits without running further simulation
// work (deferred cleanup in kernels still executes). Stop is idempotent and
// a no-op after a completed Run; the engine must not be used afterwards.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	for e.nlive > 0 {
		if e.procs.Len() == 0 {
			panic("sim: Stop: live procs but none parked")
		}
		p := heap.Pop(&e.procs).(*Proc)
		p.resume <- struct{}{}
		back := <-e.parked
		if !back.done {
			heap.Push(&e.procs, back)
			continue
		}
		e.nlive--
	}
}

// String reports scheduler state for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%v live=%d}", e.now, e.nlive)
}

// procHeap orders procs by (now, seq): earliest time first, FIFO among ties.
type procHeap []*Proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].now != h[j].now {
		return h[i].now < h[j].now
	}
	return h[i].seq < h[j].seq
}
func (h procHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *procHeap) Push(x any)   { *h = append(*h, x.(*Proc)) }
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return p
}
