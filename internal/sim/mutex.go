package sim

// Mutex is a lock for simulated threads. Because the engine runs exactly
// one proc at a time, the lock needs no atomics; contended acquisition is
// modeled as polling with a small backoff, which both serializes critical
// sections in simulated time and charges a realistic handoff cost.
type Mutex struct {
	held    bool
	backoff Time
}

// Lock acquires the mutex on behalf of p, advancing p's clock while it
// waits.
func (m *Mutex) Lock(p *Proc) {
	b := m.backoff
	if b == 0 {
		b = 30 * Nanosecond
	}
	for m.held {
		p.Sleep(b)
	}
	m.held = true
}

// TryLock acquires the mutex if free.
func (m *Mutex) TryLock() bool {
	if m.held {
		return false
	}
	m.held = true
	return true
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	if !m.held {
		panic("sim: unlock of unlocked Mutex")
	}
	m.held = false
}

// Locked reports the current state (test hook).
func (m *Mutex) Locked() bool { return m.held }
