package sim

import (
	"testing"
	"testing/quick"
)

func TestServerFIFO(t *testing.T) {
	var s Server
	start, end := s.Acquire(0, 10*Nanosecond)
	if start != 0 || end != 10*Nanosecond {
		t.Fatalf("first acquire = (%v, %v)", start, end)
	}
	// Arrives while busy: queued behind.
	start, end = s.Acquire(5*Nanosecond, 10*Nanosecond)
	if start != 10*Nanosecond || end != 20*Nanosecond {
		t.Fatalf("second acquire = (%v, %v)", start, end)
	}
	// Arrives after idle gap: starts immediately.
	start, end = s.Acquire(100*Nanosecond, Nanosecond)
	if start != 100*Nanosecond || end != 101*Nanosecond {
		t.Fatalf("third acquire = (%v, %v)", start, end)
	}
	if s.BusyTime() != 21*Nanosecond {
		t.Fatalf("busy = %v, want 21ns", s.BusyTime())
	}
}

func TestServerBacklog(t *testing.T) {
	var s Server
	s.Acquire(0, 100*Nanosecond)
	if got := s.Backlog(40 * Nanosecond); got != 60*Nanosecond {
		t.Fatalf("backlog = %v, want 60ns", got)
	}
	if got := s.Backlog(200 * Nanosecond); got != 0 {
		t.Fatalf("backlog after drain = %v, want 0", got)
	}
	if got := s.FreeAt(40 * Nanosecond); got != 100*Nanosecond {
		t.Fatalf("FreeAt = %v, want 100ns", got)
	}
}

func TestBoundedQueueAdmitsUpToCap(t *testing.T) {
	q := NewBoundedQueue(3)
	for i := 0; i < 3; i++ {
		at := q.Admit(0)
		if at != 0 {
			t.Fatalf("entry %d admitted at %v, want 0", i, at)
		}
		q.Push(0, Time(100+i*10)*Nanosecond)
	}
	// Queue full: fourth entry waits for the oldest drain (100ns).
	at := q.Admit(0)
	if at != 100*Nanosecond {
		t.Fatalf("fourth admit at %v, want 100ns", at)
	}
}

func TestBoundedQueueDrainFrees(t *testing.T) {
	q := NewBoundedQueue(2)
	q.Push(0, 10*Nanosecond)
	q.Push(0, 20*Nanosecond)
	if got := q.Occupancy(5 * Nanosecond); got != 2 {
		t.Fatalf("occupancy@5 = %d", got)
	}
	if got := q.Occupancy(15 * Nanosecond); got != 1 {
		t.Fatalf("occupancy@15 = %d", got)
	}
	if at := q.Admit(15 * Nanosecond); at != 15*Nanosecond {
		t.Fatalf("admit@15 = %v", at)
	}
}

func TestBoundedQueueDeepBacklog(t *testing.T) {
	q := NewBoundedQueue(4)
	// 10 entries drain every 10ns starting at 10ns.
	for i := 1; i <= 4; i++ {
		q.Push(0, Time(i*10)*Nanosecond)
	}
	// Entry arriving at 0 with queue full of 4: admitted at first drain.
	if at := q.Admit(0); at != 10*Nanosecond {
		t.Fatalf("admit = %v, want 10ns", at)
	}
	q.Push(10*Nanosecond, 50*Nanosecond)
	// Now in-flight drains (after trim at 10ns): 20,30,40,50 — full again.
	if at := q.Admit(12 * Nanosecond); at != 20*Nanosecond {
		t.Fatalf("admit = %v, want 20ns", at)
	}
}

// Property: a bounded queue fed by a server never exceeds its capacity, and
// admit times are never before the request time.
func TestBoundedQueueInvariant(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		q := NewBoundedQueue(capacity)
		var srv Server
		r := NewRNG(seed)
		var now Time
		for i := 0; i < 500; i++ {
			now += Time(r.Intn(20)) * Nanosecond
			at := q.Admit(now)
			if at < now {
				return false
			}
			_, drain := srv.Acquire(at, Time(1+r.Intn(30))*Nanosecond)
			q.Push(at, drain)
			if q.Occupancy(at) > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBoundedQueueOccupancyTime(t *testing.T) {
	q := NewBoundedQueue(4)
	if q.OccupancyTime() != 0 {
		t.Fatal("fresh queue has nonzero occupancy time")
	}
	// Two entries resident 10ns and 30ns: 40ns of entry-residency.
	q.Push(0, 10*Nanosecond)
	q.Push(10*Nanosecond, 40*Nanosecond)
	if got := q.OccupancyTime(); got != 40*Nanosecond {
		t.Fatalf("occupancy time = %v, want 40ns", got)
	}
	// Zero-residency and inverted inputs contribute nothing.
	q.Push(50*Nanosecond, 50*Nanosecond)
	q.Push(70*Nanosecond, 60*Nanosecond)
	if got := q.OccupancyTime(); got != 40*Nanosecond {
		t.Fatalf("occupancy time after degenerate pushes = %v, want 40ns", got)
	}
	// Trimming drained entries must not disturb the accounting.
	if q.Occupancy(100*Nanosecond) != 0 {
		t.Fatal("queue should be empty at 100ns")
	}
	if got := q.OccupancyTime(); got != 40*Nanosecond {
		t.Fatalf("occupancy time after trim = %v, want 40ns", got)
	}
	q.Reset()
	if q.OccupancyTime() != 0 {
		t.Fatal("Reset must clear occupancy time")
	}
}

// An entry drains at exactly its drain timestamp: Occupancy at that instant
// excludes it and a full queue admits a new entry at that same instant.
func TestBoundedQueueEqualTimestamps(t *testing.T) {
	q := NewBoundedQueue(2)
	q.Push(0, 10*Nanosecond)
	q.Push(0, 10*Nanosecond) // two entries drain at the same instant
	if got := q.Occupancy(9 * Nanosecond); got != 2 {
		t.Fatalf("occupancy@9 = %d, want 2", got)
	}
	if got := q.Occupancy(10 * Nanosecond); got != 0 {
		t.Fatalf("occupancy@10 = %d, want 0 (drain boundary is inclusive)", got)
	}
	q.Push(10*Nanosecond, 20*Nanosecond)
	q.Push(10*Nanosecond, 20*Nanosecond)
	// Admit exactly at the drain instant of a full queue: no waiting.
	if at := q.Admit(20 * Nanosecond); at != 20*Nanosecond {
		t.Fatalf("admit@20 = %v, want 20ns", at)
	}
	// Admit strictly before: waits for the drain.
	q.Reset()
	q.Push(0, 20*Nanosecond)
	q.Push(0, 20*Nanosecond)
	if at := q.Admit(19 * Nanosecond); at != 20*Nanosecond {
		t.Fatalf("admit@19 = %v, want 20ns", at)
	}
}

// Pull mode: PushOpen/PopN must account residency exactly — the occupancy
// integral of a batch drain equals the sum of per-entry single pops.
func TestBoundedQueuePullMode(t *testing.T) {
	q := NewBoundedQueue(4)
	for _, at := range []Time{0, 5 * Nanosecond, 9 * Nanosecond} {
		if !q.PushOpen(at) {
			t.Fatalf("admit at %v refused below capacity", at)
		}
	}
	if q.Len() != 3 || q.MaxLen() != 3 {
		t.Fatalf("len/max = %d/%d, want 3/3", q.Len(), q.MaxLen())
	}
	// Batch-drain all three at t=20: residency 20 + 15 + 11 = 46ns.
	if got := q.PopN(20*Nanosecond, 8); got != 3 {
		t.Fatalf("PopN drained %d, want 3", got)
	}
	if got := q.OccupancyTime(); got != 46*Nanosecond {
		t.Fatalf("occupancy time = %v, want 46ns", got)
	}
	if q.Len() != 0 {
		t.Fatalf("len after drain = %d", q.Len())
	}
	// PopN caps at n and preserves FIFO order across partial drains.
	q.PushOpen(30 * Nanosecond)
	q.PushOpen(32 * Nanosecond)
	q.PushOpen(34 * Nanosecond)
	if got := q.PopN(40*Nanosecond, 2); got != 2 { // 10 + 8
		t.Fatalf("partial PopN drained %d, want 2", got)
	}
	if got := q.PopN(50*Nanosecond, 2); got != 1 { // 16
		t.Fatalf("tail PopN drained %d, want 1", got)
	}
	if got := q.OccupancyTime(); got != (46+10+8+16)*Nanosecond {
		t.Fatalf("occupancy time = %v, want 80ns", got)
	}
	// Admission control: a full queue refuses without stalling.
	q.Reset()
	for i := 0; i < 4; i++ {
		if !q.PushOpen(Time(i) * Nanosecond) {
			t.Fatalf("admit %d refused below capacity", i)
		}
	}
	if q.PushOpen(10 * Nanosecond) {
		t.Fatal("admit above capacity accepted")
	}
	if q.Len() != 4 || q.MaxLen() != 4 {
		t.Fatalf("full queue len/max = %d/%d", q.Len(), q.MaxLen())
	}
}

// The batch drain must be byte-for-byte equivalent to single pops: same
// occupancy integral for the same admit/pop schedule.
func TestBoundedQueuePopNMatchesSinglePops(t *testing.T) {
	r := NewRNG(11)
	batch := NewBoundedQueue(64)
	single := NewBoundedQueue(64)
	var now Time
	for round := 0; round < 200; round++ {
		now += Time(r.Intn(30)) * Nanosecond
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			at := now + Time(i)*Nanosecond
			if batch.PushOpen(at) != single.PushOpen(at) {
				t.Fatal("admission diverged")
			}
		}
		now += Time(r.Intn(50)) * Nanosecond
		k := 1 + r.Intn(10)
		got := batch.PopN(now, k)
		want := 0
		for i := 0; i < k; i++ {
			want += single.PopN(now, 1)
		}
		if got != want {
			t.Fatalf("round %d: PopN(%d) drained %d, singles drained %d", round, k, got, want)
		}
		if batch.OccupancyTime() != single.OccupancyTime() {
			t.Fatalf("round %d: occupancy integrals diverged: %v vs %v",
				round, batch.OccupancyTime(), single.OccupancyTime())
		}
	}
}

// Mixing drain-mode and pull-mode pushes on one queue corrupts the
// occupancy integral, so it must panic.
func TestBoundedQueueModeMixPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: mode mix did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("push-then-pushopen", func() {
		q := NewBoundedQueue(2)
		q.Push(0, 10*Nanosecond)
		q.PushOpen(0)
	})
	expectPanic("pushopen-then-push", func() {
		q := NewBoundedQueue(2)
		q.PushOpen(0)
		q.Push(0, 10*Nanosecond)
	})
	expectPanic("popn-on-drain", func() {
		q := NewBoundedQueue(2)
		q.Push(0, 10*Nanosecond)
		q.PopN(10*Nanosecond, 1)
	})
	// Reset clears the mode: reuse in the other mode is fine.
	q := NewBoundedQueue(2)
	q.Push(0, 10*Nanosecond)
	q.Reset()
	q.PushOpen(0)
	if q.Len() != 1 {
		t.Fatal("pull mode after Reset broken")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/100", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d = %d, expected ~%d", i, c, n/10)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(1)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if hits < n/4-n/50 || hits > n/4+n/50 {
		t.Errorf("Bool(0.25) hit rate %d/%d", hits, n)
	}
}

// OccupancyTimeAt reads the occupancy integral mid-flight without retiring
// anything: closed residency plus each still-open entry's accrual so far.
func TestBoundedQueueOccupancyTimeAt(t *testing.T) {
	q := NewBoundedQueue(4)
	if got := q.OccupancyTimeAt(100 * Nanosecond); got != 0 {
		t.Fatalf("fresh OccupancyTimeAt = %v, want 0", got)
	}
	q.PushOpen(0)
	q.PushOpen(10 * Nanosecond)
	// At t=30: 30ns from the first entry, 20ns from the second.
	if got := q.OccupancyTimeAt(30 * Nanosecond); got != 50*Nanosecond {
		t.Fatalf("open OccupancyTimeAt(30) = %v, want 50ns", got)
	}
	// Reading must not retire: the closed integral is still zero.
	if got := q.OccupancyTime(); got != 0 {
		t.Fatalf("OccupancyTime after read = %v, want 0", got)
	}
	if q.PopN(30*Nanosecond, 1) != 1 {
		t.Fatal("PopN failed")
	}
	// Closed 30ns + the remaining entry's (40−10)ns.
	if got := q.OccupancyTimeAt(40 * Nanosecond); got != 60*Nanosecond {
		t.Fatalf("OccupancyTimeAt(40) = %v, want 60ns", got)
	}
	// An entry admitted at the sample instant has accrued nothing yet.
	q.PushOpen(40 * Nanosecond)
	if got := q.OccupancyTimeAt(40 * Nanosecond); got != 60*Nanosecond {
		t.Fatalf("OccupancyTimeAt at admit instant = %v, want 60ns", got)
	}
}
