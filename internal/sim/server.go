package sim

// Server models a FIFO resource with a single service stream (a bus, a media
// bank group, a link direction). Requests are served in arrival order; a
// request arriving at t with service time svc completes at
// max(t, previous completion) + svc.
//
// Because the engine schedules procs in global time order, Acquire calls
// arrive in nondecreasing time order and the FIFO discipline is exact.
type Server struct {
	free Time // completion time of the last admitted request

	// Busy accounting for utilization reporting.
	busy Time
}

// Acquire requests svc units of service starting no earlier than t. It
// returns the service start and completion times and advances the server.
func (s *Server) Acquire(t, svc Time) (start, end Time) {
	start = t
	if s.free > start {
		start = s.free
	}
	end = start + svc
	s.free = end
	s.busy += svc
	return start, end
}

// FreeAt returns the earliest time a new request arriving at t would start
// service.
func (s *Server) FreeAt(t Time) Time {
	if s.free > t {
		return s.free
	}
	return t
}

// Backlog returns how far the server is booked beyond t.
func (s *Server) Backlog(t Time) Time {
	if s.free > t {
		return s.free - t
	}
	return 0
}

// BusyTime returns the cumulative service time granted.
func (s *Server) BusyTime() Time { return s.busy }

// Reset clears the server state.
func (s *Server) Reset() { s.free, s.busy = 0, 0 }

// BoundedQueue models a finite FIFO queue (such as an iMC write-pending
// queue) whose entries drain in order at times supplied by the caller. An
// entry can be admitted only when occupancy is below capacity; Admit returns
// the earliest time a slot frees up.
//
// The queue runs in one of two modes, fixed by the first push:
//
//   - Drain mode (Push): each entry carries its drain time up front, and
//     trimming against the clock retires entries. This is the
//     device-queue shape (WPQ, link buffers).
//   - Pull mode (PushOpen / PopN): entries are admitted open-ended and
//     retired explicitly when a consumer drains them, accruing exact
//     residency (pop − admit) per entry. This is the dispatcher shape —
//     a worker wakes and drains a batch of admitted requests.
//
// Mixing modes on one queue panics: the two retirements account occupancy
// differently and interleaving them would corrupt the integral.
type BoundedQueue struct {
	cap    int
	drains []Time // drain times of in-flight entries, FIFO, nondecreasing
	head   int    // index of the oldest in-flight entry

	// Pull-mode state: admit times of still-open entries, FIFO.
	opens    []Time
	openHead int
	maxLen   int
	mode     uint8 // 0 unset, 1 drain (Push), 2 pull (PushOpen/PopN)

	// Occupancy-time accounting for utilization reporting, the queue
	// counterpart of Server.BusyTime: cumulative entry-residency
	// (sum over entries of drain − admit).
	occ Time
}

// Queue modes (values of BoundedQueue.mode).
const (
	modeUnset = iota
	modeDrain
	modePull
)

// NewBoundedQueue returns a queue with the given entry capacity.
func NewBoundedQueue(capacity int) *BoundedQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &BoundedQueue{cap: capacity}
}

// Cap returns the queue capacity in entries.
func (q *BoundedQueue) Cap() int { return q.cap }

// Len returns the number of in-flight entries (including drained entries not
// yet garbage collected; call Admit or Occupancy to trim). In pull mode it is
// the number of admitted entries not yet popped — always exact.
func (q *BoundedQueue) Len() int {
	if q.mode == modePull {
		return len(q.opens) - q.openHead
	}
	return len(q.drains) - q.head
}

func (q *BoundedQueue) trim(t Time) {
	for q.head < len(q.drains) && q.drains[q.head] <= t {
		q.head++
	}
	if q.head > 1024 && q.head*2 >= len(q.drains) {
		q.drains = append(q.drains[:0], q.drains[q.head:]...)
		q.head = 0
	}
}

// Occupancy returns the number of entries still queued at time t.
func (q *BoundedQueue) Occupancy(t Time) int {
	q.trim(t)
	return q.Len()
}

// Admit returns the earliest time >= t at which a new entry can enter the
// queue. It does not insert the entry; call Push with the entry's drain time
// after computing it.
func (q *BoundedQueue) Admit(t Time) Time {
	q.trim(t)
	if q.Len() < q.cap {
		return t
	}
	// The entry is admitted when occupancy first drops below capacity:
	// after the (Len-cap+1)-th oldest in-flight entry drains.
	at := q.drains[q.head+q.Len()-q.cap]
	q.trim(at)
	return at
}

// Push records an entry admitted at time at that will drain at the given
// time. Drain times must be nondecreasing (FIFO drain), which holds when
// drains are produced by a Server. The entry's residency (drain − at) is
// accumulated into OccupancyTime.
func (q *BoundedQueue) Push(at, drain Time) {
	if q.mode == modePull {
		panic("sim: Push on a pull-mode BoundedQueue")
	}
	q.mode = modeDrain
	if drain > at {
		q.occ += drain - at
	}
	q.drains = append(q.drains, drain)
}

// PushOpen admits an entry at time at whose drain time is not yet known; a
// later PopN retires it and closes its residency. Returns false (a full
// queue) without admitting when occupancy is at capacity — pull-mode
// admission control is the caller's drop/shed decision, not a stall.
func (q *BoundedQueue) PushOpen(at Time) bool {
	if q.mode == modeDrain {
		panic("sim: PushOpen on a drain-mode BoundedQueue")
	}
	q.mode = modePull
	if q.Len() >= q.cap {
		return false
	}
	q.opens = append(q.opens, at)
	if n := q.Len(); n > q.maxLen {
		q.maxLen = n
	}
	return true
}

// PopN retires up to n of the oldest open entries at time now, accruing each
// entry's exact residency (now − admit) into OccupancyTime, and returns how
// many it retired. now must be ≥ every retired entry's admit time (FIFO
// consumers draining at their own clock satisfy this by construction).
func (q *BoundedQueue) PopN(now Time, n int) int {
	if q.mode == modeDrain {
		panic("sim: PopN on a drain-mode BoundedQueue")
	}
	k := q.Len()
	if n < k {
		k = n
	}
	for i := 0; i < k; i++ {
		q.occ += now - q.opens[q.openHead]
		q.openHead++
	}
	if q.openHead > 1024 && q.openHead*2 >= len(q.opens) {
		q.opens = append(q.opens[:0], q.opens[q.openHead:]...)
		q.openHead = 0
	}
	return k
}

// MaxLen returns the deepest occupancy a pull-mode queue reached (0 for
// drain mode, where depth is capacity-bounded by Admit instead).
func (q *BoundedQueue) MaxLen() int { return q.maxLen }

// OccupancyTime returns the cumulative entry-residency granted: the
// integral of Occupancy over time, in entry-time units. Dividing by
// Cap × elapsed gives the queue's utilization, the counterpart of
// Server.BusyTime for servers.
func (q *BoundedQueue) OccupancyTime() Time { return q.occ }

// OccupancyTimeAt returns the occupancy integral as of time now: the
// residency already closed by PopN plus each still-open pull-mode entry's
// accrued (now − admit). Read-only — nothing is retired — so a timeline
// sampler can difference successive calls into mean queue depth per
// interval without perturbing the queue.
func (q *BoundedQueue) OccupancyTimeAt(now Time) Time {
	t := q.occ
	for i := q.openHead; i < len(q.opens); i++ {
		if q.opens[i] < now {
			t += now - q.opens[i]
		}
	}
	return t
}

// Reset clears the queue (mode included).
func (q *BoundedQueue) Reset() {
	q.drains = q.drains[:0]
	q.head = 0
	q.opens = q.opens[:0]
	q.openHead = 0
	q.maxLen = 0
	q.mode = modeUnset
	q.occ = 0
}
