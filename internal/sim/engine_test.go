package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineSingleProc(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Go("a", 0, func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Advance(10 * Nanosecond)
			trace = append(trace, p.Now())
		}
	})
	end := e.Run()
	if end != 30*Nanosecond {
		t.Fatalf("end = %v, want 30ns", end)
	}
	want := []Time{10 * Nanosecond, 20 * Nanosecond, 30 * Nanosecond}
	for i, w := range want {
		if trace[i] != w {
			t.Errorf("trace[%d] = %v, want %v", i, trace[i], w)
		}
	}
}

func TestEngineInterleavesByTime(t *testing.T) {
	e := NewEngine()
	var order []string
	// Proc a ticks every 10ns, proc b every 25ns; events must appear in
	// global time order.
	e.Go("a", 0, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Advance(10 * Nanosecond)
			order = append(order, "a")
		}
	})
	e.Go("b", 0, func(p *Proc) {
		for i := 0; i < 2; i++ {
			p.Advance(25 * Nanosecond)
			order = append(order, "b")
		}
	})
	e.Run()
	want := []string{"a", "a", "b", "a", "a", "b", "a"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOAmongTies(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.Go("p", 0, func(p *Proc) {
			p.Advance(5 * Nanosecond)
			order = append(order, i)
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v, want spawn order", order)
		}
	}
}

func TestEngineNestedSpawn(t *testing.T) {
	e := NewEngine()
	var childTime Time
	e.Go("parent", 0, func(p *Proc) {
		p.Advance(100 * Nanosecond)
		p.Engine().Go("child", p.Now(), func(c *Proc) {
			c.Advance(Nanosecond)
			childTime = c.Now()
		})
		p.Advance(50 * Nanosecond)
	})
	e.Run()
	if childTime != 101*Nanosecond {
		t.Fatalf("child ran at %v, want 101ns", childTime)
	}
}

func TestEngineAdvanceToPastIsNoop(t *testing.T) {
	e := NewEngine()
	e.Go("p", 0, func(p *Proc) {
		p.AdvanceTo(50 * Nanosecond)
		p.AdvanceTo(10 * Nanosecond) // must not go backwards
		if p.Now() != 50*Nanosecond {
			t.Errorf("Now = %v after backwards AdvanceTo, want 50ns", p.Now())
		}
	})
	e.Run()
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		var stamps []Time
		srv := &Server{}
		for i := 0; i < 4; i++ {
			e.Go("w", 0, func(p *Proc) {
				r := NewRNG(uint64(p.ID()))
				for j := 0; j < 20; j++ {
					_, end := srv.Acquire(p.Now(), Time(r.Intn(100))*Nanosecond)
					p.AdvanceTo(end)
					stamps = append(stamps, p.Now())
				}
			})
		}
		e.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if Nanos(81).Nanoseconds() != 81 {
		t.Errorf("Nanos(81) = %v", Nanos(81))
	}
	if Micros(1.5) != 1500*Nanosecond {
		t.Errorf("Micros(1.5) = %v", Micros(1.5))
	}
	if got := GBs(1).ServiceTime(1000); got != Microsecond {
		t.Errorf("1GB/s for 1000B = %v, want 1us", got)
	}
	if got := GBs(2.5).ServiceTime(256); got != Nanos(102.4) {
		t.Errorf("2.5GB/s for 256B = %v, want 102.4ns", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{81 * Nanosecond, "81.00ns"},
		{1500 * Nanosecond, "1.500us"},
		{2 * Millisecond, "2.000ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestServiceTimeMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		r := GBs(6.6)
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return r.ServiceTime(x) <= r.ServiceTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
