package fio

import (
	"testing"

	"optanestudy/internal/daxfs"
	"optanestudy/internal/novafs"
	"optanestudy/internal/platform"
	"optanestudy/internal/vfs"
)

func newPlatform(t testing.TB) *platform.Platform {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	return platform.MustNew(cfg)
}

func TestFioOnNova(t *testing.T) {
	p := newPlatform(t)
	ns, _ := p.Optane("nova", 0, 128<<20)
	fs, err := novafs.Mount([]*platform.Namespace{ns}, novafs.DefaultOptions(novafs.Datalog))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Spec{
		Platform: p, FS: fs, Threads: 4, FileSize: 1 << 20, BS: 4096,
		RW: Write, Pattern: Rand, Sync: true, OpsPerThrd: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GBs <= 0 || res.Bytes != 4*64*4096 {
		t.Fatalf("result = %+v", res)
	}
}

func TestFioOnDax(t *testing.T) {
	p := newPlatform(t)
	ns, _ := p.Optane("dax", 0, 256<<20)
	fs, err := daxfs.Mount(ns, daxfs.DefaultConfig(daxfs.Ext4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Spec{
		Platform: p, FS: fs, Threads: 2, FileSize: 1 << 20, BS: 4096,
		RW: Read, Pattern: Seq, OpsPerThrd: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GBs <= 0 {
		t.Fatalf("no bandwidth: %+v", res)
	}
}

func TestFioReadsFasterThanSyncWrites(t *testing.T) {
	run := func(rw RW, sync bool) float64 {
		p := newPlatform(t)
		ns, _ := p.Optane("nova", 0, 128<<20)
		fs, _ := novafs.Mount([]*platform.Namespace{ns}, novafs.DefaultOptions(novafs.COW))
		res, err := Run(Spec{
			Platform: p, FS: fs, Threads: 4, FileSize: 1 << 20, BS: 4096,
			RW: rw, Pattern: Seq, Sync: sync, OpsPerThrd: 48, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GBs
	}
	read := run(Read, false)
	write := run(Write, true)
	if read <= write {
		t.Errorf("read %.2f GB/s should beat sync COW write %.2f GB/s", read, write)
	}
}

// TestMultiDIMMNovaComparison runs the Figure 17 configurations. Note a
// documented deviation (see EXPERIMENTS.md): the raw iMC-contention kernel
// reproduces the paper's pinning advantage (lattester.Spread), but through
// the full NOVA+FIO stack our simulator's cross-DIMM queue pooling gives
// the interleaved mount an edge at file-system op granularity. This test
// asserts what the model does claim: both mounts run correctly, deliver
// saturating bandwidth of the same order, and the gap stays bounded.
func TestMultiDIMMNovaComparison(t *testing.T) {
	interleaved := func() float64 {
		p := newPlatform(t)
		ns, _ := p.Optane("nova", 0, 512<<20)
		fs, _ := novafs.Mount([]*platform.Namespace{ns}, novafs.DefaultOptions(novafs.COW))
		res, err := Run(Spec{
			Platform: p, FS: fs, Threads: 12, FileSize: 1 << 20, BS: 4096,
			RW: Write, Pattern: Seq, Sync: true, OpsPerThrd: 48, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GBs
	}
	pinned := func() float64 {
		p := newPlatform(t)
		var nss []*platform.Namespace
		for i := 0; i < 6; i++ {
			ns, err := p.OptaneNI("z"+string(rune('0'+i)), 0, i, 128<<20)
			if err != nil {
				t.Fatal(err)
			}
			nss = append(nss, ns)
		}
		fs, _ := novafs.Mount(nss, novafs.DefaultOptions(novafs.COW))
		res, err := Run(Spec{
			Platform: p, FS: fs, Threads: 12, FileSize: 1 << 20, BS: 4096,
			RW: Write, Pattern: Seq, Sync: true, OpsPerThrd: 48, Seed: 4,
			CreateFile: func(ctx *platform.MemCtx, name string, thread int) (vfs.File, error) {
				return fs.CreateZone(ctx, name, thread%6)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.GBs
	}
	il := interleaved()
	ni := pinned()
	if il <= 0 || ni <= 0 {
		t.Fatalf("configs failed to run: interleaved=%.2f pinned=%.2f", il, ni)
	}
	ratio := il / ni
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("interleaved/pinned = %.2f (%.2f vs %.2f GB/s): gap out of band", ratio, il, ni)
	}
}
