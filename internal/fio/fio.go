// Package fio is a flexible IO tester in the spirit of fio, driving any
// vfs.FS with sequential/random read/write jobs across threads — the
// workload generator behind Figures 12 and 17.
package fio

import (
	"fmt"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
	"optanestudy/internal/vfs"
	"optanestudy/internal/workload"
)

// RW selects the operation.
type RW int

// Operations.
const (
	Read RW = iota
	Write
)

// Pattern selects the access pattern.
type Pattern int

// Patterns.
const (
	Seq Pattern = iota
	Rand
)

// Spec configures one job.
type Spec struct {
	Platform *platform.Platform
	FS       vfs.FS
	// CreateFile overrides file creation (e.g. novafs zone pinning);
	// nil uses FS.Create.
	CreateFile func(ctx *platform.MemCtx, name string, thread int) (vfs.File, error)

	Threads  int
	FileSize int64
	BS       int // block size per IO
	RW       RW
	Pattern  Pattern
	// Sync issues fsync after every write (the sync IO engine); otherwise
	// writes sync once per 32 IOs (libaio-style batching).
	Sync       bool
	OpsPerThrd int
	Seed       uint64
}

// Result reports aggregate bandwidth.
type Result struct {
	Bytes   int64
	Elapsed sim.Time
	GBs     float64
}

// Run lays out one file per thread, then measures the IO phase.
func Run(spec Spec) (Result, error) {
	p := spec.Platform
	if spec.Threads == 0 {
		spec.Threads = 1
	}
	if spec.BS == 0 {
		spec.BS = 4096
	}
	if spec.FileSize == 0 {
		spec.FileSize = 1 << 20
	}
	if spec.OpsPerThrd == 0 {
		spec.OpsPerThrd = 128
	}
	create := spec.CreateFile
	if create == nil {
		create = func(ctx *platform.MemCtx, name string, _ int) (vfs.File, error) {
			return spec.FS.Create(ctx, name)
		}
	}

	// Layout phase: create and fill each thread's file.
	files := make([]vfs.File, spec.Threads)
	errs := make([]error, spec.Threads)
	for th := 0; th < spec.Threads; th++ {
		th := th
		p.Go(fmt.Sprintf("layout%d", th), 0, func(ctx *platform.MemCtx) {
			f, err := create(ctx, fmt.Sprintf("fio.%d", th), th)
			if err != nil {
				errs[th] = err
				return
			}
			chunk := make([]byte, 64<<10)
			for off := int64(0); off < spec.FileSize; off += int64(len(chunk)) {
				n := int64(len(chunk))
				if off+n > spec.FileSize {
					n = spec.FileSize - off
				}
				if err := f.WriteAt(ctx, off, chunk[:n]); err != nil {
					errs[th] = err
					return
				}
			}
			if err := f.Sync(ctx); err != nil {
				errs[th] = err
				return
			}
			files[th] = f
		})
	}
	p.Run()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	// IO phase.
	start := p.Now()
	var bytes int64
	for th := 0; th < spec.Threads; th++ {
		th := th
		p.Go(fmt.Sprintf("io%d", th), 0, func(ctx *platform.MemCtx) {
			f := files[th]
			var pat workload.Pattern
			if spec.Pattern == Seq {
				pat = workload.NewSequential(spec.FileSize, spec.BS)
			} else {
				pat = workload.NewRandom(spec.FileSize, spec.BS, spec.Seed+uint64(th)*31+1)
			}
			buf := make([]byte, spec.BS)
			for i := 0; i < spec.OpsPerThrd; i++ {
				off := pat.Next()
				switch spec.RW {
				case Read:
					if err := f.ReadAt(ctx, off, buf); err != nil {
						errs[th] = err
						return
					}
				case Write:
					if err := f.WriteAt(ctx, off, buf); err != nil {
						errs[th] = err
						return
					}
					if spec.Sync || i%32 == 31 {
						if err := f.Sync(ctx); err != nil {
							errs[th] = err
							return
						}
					}
				}
				bytes += int64(spec.BS)
			}
		})
	}
	end := p.Run()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Bytes: bytes, Elapsed: end - start}
	if res.Elapsed > 0 {
		res.GBs = float64(bytes) / res.Elapsed.Seconds() / 1e9
	}
	return res, nil
}
