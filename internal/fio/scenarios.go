package fio

import (
	"fmt"

	"optanestudy/internal/harness"
	"optanestudy/internal/novafs"
	"optanestudy/internal/platform"
	"optanestudy/internal/vfs"
)

// Harness scenarios: the Figure 12/17 FIO jobs against NOVA, on either an
// interleaved mount or six per-DIMM zones with per-thread pinning.
func init() {
	presets := []struct {
		name, doc string
		params    map[string]string
	}{
		{"fio/seq-read", "sequential 4 KB reads over NOVA",
			map[string]string{"rw": "read", "pattern": "seq"}},
		{"fio/rand-read", "random 4 KB reads over NOVA",
			map[string]string{"rw": "read", "pattern": "rand"}},
		{"fio/seq-write", "sequential 4 KB synced writes over NOVA",
			map[string]string{"rw": "write", "pattern": "seq"}},
		{"fio/rand-write", "random 4 KB synced writes over NOVA",
			map[string]string{"rw": "write", "pattern": "rand"}},
	}
	for _, p := range presets {
		harness.Register(harness.Scenario{
			Name: p.name,
			Doc:  p.doc,
			Defaults: harness.Defaults{
				Threads: 24, Ops: 64, Seed: 17, Params: p.params,
			},
			Run: runFIO,
		})
	}
}

func runFIO(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	var rw RW
	switch v := r.Str("rw", "read"); v {
	case "read":
		rw = Read
	case "write":
		rw = Write
	default:
		return harness.Trial{}, fmt.Errorf("unknown rw %q", v)
	}
	var pat Pattern
	switch v := r.Str("pattern", "seq"); v {
	case "seq":
		pat = Seq
	case "rand":
		pat = Rand
	default:
		return harness.Trial{}, fmt.Errorf("unknown pattern %q", v)
	}
	pinned := r.Bool("pinned", false)
	sync := r.Bool("sync", true)
	bs := r.Int("bs", 4096)
	fileSize := r.Int64("filesize", 1<<20)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}

	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	defer p.Close()
	fs, create, err := mountNova(p, pinned)
	if err != nil {
		return harness.Trial{}, err
	}
	res, err := Run(Spec{
		Platform: p, FS: fs, CreateFile: create, Threads: spec.Threads,
		FileSize: fileSize, BS: bs, RW: rw, Pattern: pat, Sync: sync,
		OpsPerThrd: spec.Ops, Seed: spec.Seed,
	})
	if err != nil {
		return harness.Trial{}, err
	}
	return harness.Trial{
		Bytes: res.Bytes,
		Ops:   res.Bytes / int64(bs),
		Sim:   res.Elapsed,
	}, nil
}

// mountNova builds the Figure 17 mounts: one interleaved 1 GB namespace, or
// six per-DIMM 192 MB zones with files pinned round-robin by thread.
func mountNova(p *platform.Platform, pinned bool) (vfs.FS, func(ctx *platform.MemCtx, name string, thread int) (vfs.File, error), error) {
	if !pinned {
		ns, err := p.Optane("nova", 0, 1<<30)
		if err != nil {
			return nil, nil, err
		}
		fs, err := novafs.Mount([]*platform.Namespace{ns}, novafs.DefaultOptions(novafs.COW))
		return fs, nil, err
	}
	var nss []*platform.Namespace
	for i := 0; i < 6; i++ {
		ns, err := p.OptaneNI(fmt.Sprintf("nova%d", i), 0, i, 192<<20)
		if err != nil {
			return nil, nil, err
		}
		nss = append(nss, ns)
	}
	fs, err := novafs.Mount(nss, novafs.DefaultOptions(novafs.COW))
	if err != nil {
		return nil, nil, err
	}
	create := func(ctx *platform.MemCtx, name string, thread int) (vfs.File, error) {
		return fs.CreateZone(ctx, name, thread%6)
	}
	return fs, create, nil
}
