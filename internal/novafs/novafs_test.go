package novafs

import (
	"bytes"
	"testing"
	"testing/quick"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

func mounted(t testing.TB, mode Mode) (*platform.Platform, *FS) {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	ns, err := p.Optane("nova", 0, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Mount([]*platform.Namespace{ns}, DefaultOptions(mode))
	if err != nil {
		t.Fatal(err)
	}
	return p, fs
}

func TestWriteReadBack(t *testing.T) {
	for _, mode := range []Mode{COW, Datalog} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			p, fs := mounted(t, mode)
			p.Go("t", 0, func(ctx *platform.MemCtx) {
				f, err := fs.Create(ctx, "file")
				if err != nil {
					t.Fatal(err)
				}
				data := bytes.Repeat([]byte{0xAB}, 10000)
				if err := f.WriteAt(ctx, 0, data); err != nil {
					t.Fatal(err)
				}
				// Sub-page overwrite.
				small := []byte("hello, small write")
				if err := f.WriteAt(ctx, 100, small); err != nil {
					t.Fatal(err)
				}
				got := make([]byte, 200)
				if err := f.ReadAt(ctx, 0, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got[100:100+len(small)], small) {
					t.Error("small write lost")
				}
				if got[99] != 0xAB || got[100+len(small)] != 0xAB {
					t.Error("small write clobbered neighbors")
				}
				if f.Size() != 10000 {
					t.Errorf("size = %d", f.Size())
				}
			})
			p.Run()
		})
	}
}

func TestDatalogEmbedsSmallWrites(t *testing.T) {
	p, fs := mounted(t, Datalog)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		f, _ := fs.CreateZone(ctx, "f", 0)
		f.WriteAt(ctx, 0, make([]byte, 4096)) // base page via COW
		before := fs.zones[0].nextPage
		for i := 0; i < 10; i++ {
			f.WriteAt(ctx, int64(i*64), make([]byte, 64))
		}
		if fs.zones[0].nextPage != before {
			t.Error("small writes allocated data pages (should embed)")
		}
		if f.PatchCount() != 10 {
			t.Errorf("patches = %d", f.PatchCount())
		}
		// A big write folds the patches away.
		f.WriteAt(ctx, 0, make([]byte, 4096))
		if f.PatchCount() != 0 {
			t.Errorf("patches after COW = %d", f.PatchCount())
		}
	})
	p.Run()
}

func TestCOWNeverEmbeds(t *testing.T) {
	p, fs := mounted(t, COW)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		f, _ := fs.CreateZone(ctx, "f", 0)
		f.WriteAt(ctx, 0, make([]byte, 4096))
		before := fs.zones[0].nextPage
		f.WriteAt(ctx, 10, make([]byte, 64))
		if fs.zones[0].nextPage == before {
			t.Error("COW mode did not allocate a page for a small write")
		}
	})
	p.Run()
}

func TestDatalogFasterSmallWrites(t *testing.T) {
	latency := func(mode Mode) float64 {
		p, fs := mounted(t, mode)
		var total sim.Time
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			f, _ := fs.CreateZone(ctx, "f", 0)
			f.WriteAt(ctx, 0, make([]byte, 64<<10))
			r := sim.NewRNG(3)
			const n = 200
			for i := 0; i < n; i++ {
				off := r.Int63n(1000) * 64
				start := ctx.Proc().Now()
				f.WriteAt(ctx, off, make([]byte, 64))
				total += ctx.Proc().Now() - start
			}
		})
		p.Run()
		return total.Nanoseconds() / 200
	}
	cow := latency(COW)
	datalog := latency(Datalog)
	// Paper: 7x for 64 B random overwrites.
	if datalog*3 > cow {
		t.Errorf("datalog (%.0f ns) should be >=3x faster than COW (%.0f ns)", datalog, cow)
	}
}

func TestRecoverAfterCrash(t *testing.T) {
	p, fs := mounted(t, Datalog)
	var logHead int64
	payload := []byte("durable after crash")
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		f, _ := fs.CreateZone(ctx, "f", 0)
		f.WriteAt(ctx, 0, make([]byte, 8192))
		f.WriteAt(ctx, 4000, payload)
		logHead = f.logHead
	})
	p.Run()
	p.Crash()

	// Remount and recover from the durable log.
	fs2, err := Mount([]*platform.Namespace{fs.zones[0].ns}, DefaultOptions(Datalog))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.Recover("f", 0, logHead)
	if err != nil {
		t.Fatal(err)
	}
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		got := make([]byte, len(payload))
		if err := f2.ReadAt(ctx, 4000, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("recovered %q", got)
		}
		// And the file keeps working without clobbering old pages.
		if err := f2.WriteAt(ctx, 0, []byte("post-crash write")); err != nil {
			t.Fatal(err)
		}
		if err := f2.ReadAt(ctx, 4000, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Error("post-crash write clobbered recovered data")
		}
	})
	p.Run()
}

func TestMultiZonePinning(t *testing.T) {
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	var nss []*platform.Namespace
	for i := 0; i < 3; i++ {
		ns, err := p.OptaneNI("z"+string(rune('0'+i)), 0, i, 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		nss = append(nss, ns)
	}
	fs, err := Mount(nss, DefaultOptions(COW))
	if err != nil {
		t.Fatal(err)
	}
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		for i := 0; i < 3; i++ {
			f, err := fs.CreateZone(ctx, "file"+string(rune('0'+i)), i)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.WriteAt(ctx, 0, make([]byte, 16<<10)); err != nil {
				t.Fatal(err)
			}
		}
	})
	p.Run()
	// Every zone must have allocated pages: allocations were pinned.
	for i, z := range fs.zones {
		if z.nextPage < 4 {
			t.Errorf("zone %d barely used (nextPage=%d)", i, z.nextPage)
		}
	}
}

// Property: random small writes + reads agree with an in-memory model, in
// both modes.
func TestFileModelProperty(t *testing.T) {
	f := func(seed uint64, useDatalog bool) bool {
		mode := COW
		if useDatalog {
			mode = Datalog
		}
		p, fs := mounted(t, mode)
		const fileSize = 32 << 10
		model := make([]byte, fileSize)
		ok := true
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			fl, err := fs.CreateZone(ctx, "f", 0)
			if err != nil {
				ok = false
				return
			}
			fl.WriteAt(ctx, 0, make([]byte, fileSize))
			r := sim.NewRNG(seed)
			for i := 0; i < 40 && ok; i++ {
				off := r.Int63n(fileSize - 512)
				n := 1 + r.Intn(511)
				data := make([]byte, n)
				for j := range data {
					data[j] = byte(r.Uint64())
				}
				if err := fl.WriteAt(ctx, off, data); err != nil {
					ok = false
					return
				}
				copy(model[off:], data)
				checkOff := r.Int63n(fileSize - 512)
				got := make([]byte, 512)
				if err := fl.ReadAt(ctx, checkOff, got); err != nil {
					ok = false
					return
				}
				if !bytes.Equal(got, model[checkOff:checkOff+512]) {
					ok = false
				}
			}
		})
		p.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
