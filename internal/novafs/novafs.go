// Package novafs is a log-structured persistent-memory file system in the
// style of NOVA (FAST '16), including the paper's two optimizations:
//
//   - NOVA-datalog (Section 5.1.2): sub-page writes embed their data in the
//     inode log instead of copy-on-writing a whole 4 KB page, turning small
//     random writes into sequential log appends.
//   - Multi-DIMM awareness (Section 5.3.1): the file system can mount over
//     several non-interleaved namespaces ("zones") and pin each file's
//     allocations to one zone, keeping writer threads from spreading across
//     DIMMs.
//
// Data consistency: every write is committed by appending a log entry and
// atomically advancing the inode's persisted log tail; copy-on-write data
// pages and embedded data are persisted before the tail moves.
package novafs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"optanestudy/internal/mem"
	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/sim"
	"optanestudy/internal/vfs"
)

// Mode selects the write path.
type Mode int

// Write-path modes.
const (
	// COW always copy-on-writes full 4 KB pages (original NOVA).
	COW Mode = iota
	// Datalog embeds sub-page writes into the log (NOVA-datalog).
	Datalog
)

func (m Mode) String() string {
	if m == COW {
		return "NOVA"
	}
	return "NOVA-datalog"
}

// Options configures a mount.
type Options struct {
	Mode Mode
	// EmbedLimit is the largest write embedded in the log (Datalog mode).
	EmbedLimit int
	// SyscallCost is the kernel entry/VFS overhead per operation.
	SyscallCost sim.Time
	Seed        uint64
}

// DefaultOptions returns the calibrated defaults.
func DefaultOptions(mode Mode) Options {
	return Options{
		Mode:        mode,
		EmbedLimit:  1024,
		SyscallCost: 500 * sim.Nanosecond,
	}
}

// Log entry types.
const (
	entryWrite = 1 // COW page install
	entryEmbed = 2 // inline data
)

// Every log entry header is one cache line.
const entrySize = 64

// zone is one namespace with its own page allocator.
type zone struct {
	ns       *platform.Namespace
	reg      pmem.Region
	nextPage int64 // bump frontier, in page units
	pages    int64
}

// FS is a mounted novafs. Log entries and data pages stream through the
// non-temporal persister (log-structured appends of fresh bytes); the
// small log-page headers and chain pointers persist with store+clwb.
type FS struct {
	opt   Options
	zones []*zone
	files map[string]*File
	nt    *pmem.Persister
	meta  *pmem.Persister
	seq   uint64
}

// Mount formats a novafs over one or more namespaces. Passing several
// non-interleaved namespaces enables multi-DIMM-aware allocation.
func Mount(namespaces []*platform.Namespace, opt Options) (*FS, error) {
	if len(namespaces) == 0 {
		return nil, errors.New("novafs: need at least one namespace")
	}
	if opt.EmbedLimit == 0 {
		opt.EmbedLimit = 1024
	}
	fs := &FS{
		opt:   opt,
		files: make(map[string]*File),
		nt:    pmem.NewPersister(pmem.NTStream),
		meta:  pmem.NewPersister(pmem.StoreFlush),
	}
	for _, ns := range namespaces {
		if ns.Size < 1<<20 {
			return nil, errors.New("novafs: namespace too small")
		}
		fs.zones = append(fs.zones, &zone{
			ns:       ns,
			reg:      pmem.Whole(ns),
			nextPage: 1, // page 0 is the superblock
			pages:    ns.Size / mem.Page,
		})
	}
	return fs, nil
}

// Name implements vfs.FS.
func (fs *FS) Name() string { return fs.opt.Mode.String() }

func (z *zone) allocPage() (int64, error) {
	if z.nextPage >= z.pages {
		return 0, errors.New("novafs: zone out of pages")
	}
	p := z.nextPage
	z.nextPage++
	return p * mem.Page, nil
}

// File is an open novafs file. Its volatile index (extent map and embed
// patch lists) mirrors the persistent log.
type File struct {
	fs   *FS
	zone *zone
	name string

	logHead int64 // offset of the first log page
	logPage int64 // current log page
	logOff  int64 // append offset within the current page
	size    int64

	// extents maps page-aligned file offsets to data page offsets.
	extents map[int64]int64
	// patches lists embedded writes overlaying each file page, newest
	// last.
	patches map[int64][]patch
}

type patch struct {
	off  int64 // offset within the file page
	n    int
	data int64 // namespace offset of the inline data
}

// CreateZone makes a file whose pages all come from the given zone
// (multi-DIMM pinning). Zone -1 picks by name hash.
func (fs *FS) CreateZone(ctx *platform.MemCtx, name string, zoneIdx int) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("novafs: %q exists", name)
	}
	if zoneIdx < 0 {
		zoneIdx = int(hashName(name) % uint64(len(fs.zones)))
	}
	if zoneIdx >= len(fs.zones) {
		return nil, fmt.Errorf("novafs: zone %d out of range", zoneIdx)
	}
	z := fs.zones[zoneIdx]
	logPage, err := z.allocPage()
	if err != nil {
		return nil, err
	}
	f := &File{
		fs: fs, zone: z, name: name,
		logHead: logPage, logPage: logPage, logOff: 8,
		extents: make(map[int64]int64),
		patches: make(map[int64][]patch),
	}
	// Zero the log page header (next pointer) durably.
	var hdr [8]byte
	fs.meta.Persist(ctx, z.reg, logPage, len(hdr), hdr[:])
	fs.files[name] = f
	return f, nil
}

// Create implements vfs.FS (zone picked by name hash).
func (fs *FS) Create(ctx *platform.MemCtx, name string) (vfs.File, error) {
	return fs.CreateZone(ctx, name, -1)
}

// Open implements vfs.FS.
func (fs *FS) Open(_ *platform.MemCtx, name string) (vfs.File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("novafs: %q not found", name)
	}
	return f, nil
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// appendEntry reserves room in the log (chaining a fresh page if needed),
// writes the entry plus inline payload with non-temporal stores, and
// returns the entry's offset. The caller commits by fencing; ordering with
// the tail update makes it atomic.
func (f *File) appendEntry(ctx *platform.MemCtx, entry []byte, inline []byte) (int64, error) {
	need := int64(len(entry) + len(inline))
	if f.logOff+need > mem.Page {
		next, err := f.zone.allocPage()
		if err != nil {
			return 0, err
		}
		var hdr [8]byte
		f.fs.meta.Persist(ctx, f.zone.reg, next, len(hdr), hdr[:])
		// Link from the full page and start appending after the header.
		var ptr [8]byte
		binary.LittleEndian.PutUint64(ptr[:], uint64(next))
		f.fs.meta.Persist(ctx, f.zone.reg, f.logPage, len(ptr), ptr[:])
		f.logPage = next
		f.logOff = 8
	}
	off := f.logPage + f.logOff
	f.fs.nt.Write(ctx, f.zone.reg, off, len(entry), entry)
	if len(inline) > 0 {
		f.fs.nt.Write(ctx, f.zone.reg, off+int64(len(entry)), len(inline), inline)
	}
	f.fs.nt.Fence(ctx)
	f.logOff += need
	return off, nil
}

// WriteAt implements vfs.File.
func (f *File) WriteAt(ctx *platform.MemCtx, off int64, data []byte) error {
	ctx.Proc().Sleep(f.fs.opt.SyscallCost)
	if f.fs.opt.Mode == Datalog && len(data) <= f.fs.opt.EmbedLimit &&
		off/mem.Page == (off+int64(len(data))-1)/mem.Page {
		return f.writeEmbed(ctx, off, data)
	}
	return f.writeCOW(ctx, off, data)
}

// writeEmbed appends an embed entry carrying the data inline
// (Figure 11's mechanism).
func (f *File) writeEmbed(ctx *platform.MemCtx, off int64, data []byte) error {
	pgoff := mem.PageAddr(off)
	inline := make([]byte, (len(data)+entrySize-1)&^(entrySize-1))
	copy(inline, data)
	entry := make([]byte, entrySize)
	entry[0] = entryEmbed
	binary.LittleEndian.PutUint64(entry[8:], uint64(pgoff))
	binary.LittleEndian.PutUint32(entry[16:], uint32(off-pgoff))
	binary.LittleEndian.PutUint32(entry[20:], uint32(len(data)))
	entryOff, err := f.appendEntry(ctx, entry, inline)
	if err != nil {
		return err
	}
	f.patches[pgoff] = append(f.patches[pgoff], patch{
		off: off - pgoff, n: len(data), data: entryOff + entrySize,
	})
	if end := off + int64(len(data)); end > f.size {
		f.size = end
	}
	return nil
}

// writeCOW copies each touched page to a fresh page with the new data
// merged in, then logs the page installation.
func (f *File) writeCOW(ctx *platform.MemCtx, off int64, data []byte) error {
	for len(data) > 0 {
		pgoff := mem.PageAddr(off)
		lo := int(off - pgoff)
		n := mem.Page - lo
		if n > len(data) {
			n = len(data)
		}
		newPage, err := f.zone.allocPage()
		if err != nil {
			return err
		}
		page := make([]byte, mem.Page)
		f.readPage(ctx, pgoff, page)
		copy(page[lo:], data[:n])
		f.fs.nt.Write(ctx, f.zone.reg, newPage, mem.Page, page)
		entry := make([]byte, entrySize)
		entry[0] = entryWrite
		binary.LittleEndian.PutUint64(entry[8:], uint64(pgoff))
		binary.LittleEndian.PutUint64(entry[16:], uint64(newPage))
		if _, err := f.appendEntry(ctx, entry, nil); err != nil {
			return err
		}
		f.extents[pgoff] = newPage
		delete(f.patches, pgoff) // the install folds older patches in
		if end := off + int64(n); end > f.size {
			f.size = end
		}
		off += int64(n)
		data = data[n:]
	}
	return nil
}

// readPage materializes the current contents of one file page: the base
// extent plus any embedded patches, applied in log order.
func (f *File) readPage(ctx *platform.MemCtx, pgoff int64, buf []byte) {
	if base, ok := f.extents[pgoff]; ok {
		ctx.LoadStream(f.zone.ns, base, mem.Page)
		ctx.DrainLoads()
		ctx.Peek(f.zone.ns, base, buf)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	for _, p := range f.patches[pgoff] {
		ctx.Load(f.zone.ns, p.data, p.n)
		ctx.Peek(f.zone.ns, p.data, buf[p.off:p.off+int64(p.n)])
	}
}

// ReadAt implements vfs.File.
func (f *File) ReadAt(ctx *platform.MemCtx, off int64, buf []byte) error {
	ctx.Proc().Sleep(f.fs.opt.SyscallCost / 2)
	page := make([]byte, mem.Page)
	for i := 0; i < len(buf); {
		pgoff := mem.PageAddr(off + int64(i))
		lo := int(off + int64(i) - pgoff)
		n := mem.Page - lo
		if n > len(buf)-i {
			n = len(buf) - i
		}
		if len(f.patches[pgoff]) == 0 {
			// Fast path: read straight from the extent.
			if base, ok := f.extents[pgoff]; ok {
				ctx.Load(f.zone.ns, base+int64(lo), n)
				ctx.Peek(f.zone.ns, base+int64(lo), buf[i:i+n])
			} else {
				for j := i; j < i+n; j++ {
					buf[j] = 0
				}
			}
		} else {
			f.readPage(ctx, pgoff, page)
			copy(buf[i:i+n], page[lo:lo+n])
		}
		i += n
	}
	return nil
}

// Sync implements vfs.File. NOVA persists at write time, so fsync only
// fences.
func (f *File) Sync(ctx *platform.MemCtx) error {
	f.fs.nt.Fence(ctx)
	return nil
}

// Size implements vfs.File.
func (f *File) Size() int64 { return f.size }

// PatchCount reports outstanding embedded patches (test hook).
func (f *File) PatchCount() int {
	n := 0
	for _, ps := range f.patches {
		n += len(ps)
	}
	return n
}

// Recover rebuilds a file's volatile index from its durable log after a
// crash. Entries past the last fully-persisted one are ignored.
func (fs *FS) Recover(name string, zoneIdx int, logHead int64) (*File, error) {
	if zoneIdx < 0 || zoneIdx >= len(fs.zones) {
		return nil, errors.New("novafs: bad zone")
	}
	z := fs.zones[zoneIdx]
	f := &File{
		fs: fs, zone: z, name: name,
		logHead: logHead, logPage: logHead, logOff: 8,
		extents: make(map[int64]int64),
		patches: make(map[int64][]patch),
	}
	pageOff := logHead
	maxPage := logHead / mem.Page
	notePage := func(off int64) {
		if p := off / mem.Page; p > maxPage {
			maxPage = p
		}
	}
	for {
		var hdr [8]byte
		z.ns.ReadDurable(pageOff, hdr[:])
		next := int64(binary.LittleEndian.Uint64(hdr[:]))
		off := int64(8)
	entries:
		for off+entrySize <= mem.Page {
			var e [entrySize]byte
			z.ns.ReadDurable(pageOff+off, e[:])
			switch e[0] {
			case entryWrite:
				pgoff := int64(binary.LittleEndian.Uint64(e[8:]))
				dataPage := int64(binary.LittleEndian.Uint64(e[16:]))
				f.extents[pgoff] = dataPage
				delete(f.patches, pgoff)
				notePage(dataPage)
				if pgoff+mem.Page > f.size {
					f.size = pgoff + mem.Page
				}
				off += entrySize
			case entryEmbed:
				pgoff := int64(binary.LittleEndian.Uint64(e[8:]))
				at := int64(binary.LittleEndian.Uint32(e[16:]))
				n := int(binary.LittleEndian.Uint32(e[20:]))
				inline := (int64(n) + entrySize - 1) &^ (entrySize - 1)
				f.patches[pgoff] = append(f.patches[pgoff], patch{
					off: at, n: n, data: pageOff + off + entrySize,
				})
				if pgoff+at+int64(n) > f.size {
					f.size = pgoff + at + int64(n)
				}
				off += entrySize + inline
			default:
				break entries // end of valid entries in this page
			}
		}
		if next == 0 {
			f.logPage = pageOff
			f.logOff = off
			break
		}
		notePage(next)
		pageOff = next
	}
	// Keep the allocator clear of every page the log references.
	if maxPage+1 > z.nextPage {
		z.nextPage = maxPage + 1
	}
	fs.files[name] = f
	return f, nil
}
