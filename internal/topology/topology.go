// Package topology describes how the platform's memory is laid out: two
// sockets, six channels per socket, one DRAM and one 3D XPoint DIMM per
// channel, and pmem-style namespaces that map a contiguous logical space
// onto one or more DIMMs with 4 KB interleaving (Figure 1(c): 4 KB chunk,
// 24 KB stripe across six DIMMs).
package topology

import (
	"fmt"

	"optanestudy/internal/mem"
)

// Geometry is the machine shape. The paper's testbed has 2 sockets × 2 iMCs
// × 3 channels.
type Geometry struct {
	Sockets           int
	ChannelsPerSocket int
}

// DefaultGeometry returns the paper's testbed shape.
func DefaultGeometry() Geometry {
	return Geometry{Sockets: 2, ChannelsPerSocket: 6}
}

// Validate checks the geometry.
func (g Geometry) Validate() error {
	if g.Sockets < 1 || g.ChannelsPerSocket < 1 {
		return fmt.Errorf("topology: invalid geometry %+v", g)
	}
	return nil
}

// SLIT-style NUMA distances: accesses on the home socket cost DistanceLocal,
// accesses that cross the UPI link cost DistanceRemote (the ratio mirrors
// the kernel's conventional 10/21 table for two-socket Cascade Lake).
const (
	DistanceLocal  = 10
	DistanceRemote = 21
)

// Distance returns the SLIT-style distance between two sockets. Placement
// code uses it to rank candidate (socket, DIMM-set) homes for a shard
// relative to where its clients run.
func (g Geometry) Distance(from, to int) int {
	if from < 0 || from >= g.Sockets || to < 0 || to >= g.Sockets {
		panic(fmt.Sprintf("topology: socket pair (%d, %d) outside geometry %+v", from, to, g))
	}
	if from == to {
		return DistanceLocal
	}
	return DistanceRemote
}

// Remote reports whether an access from one socket to the other crosses the
// UPI link (the paper's fig. 18/19 penalty applies).
func (g Geometry) Remote(from, to int) bool {
	return g.Distance(from, to) > DistanceLocal
}

// ChannelIDs enumerates the socket-relative channel ids of one socket —
// one XP DIMM and one DRAM DIMM hang off each — in interleave order.
func (g Geometry) ChannelIDs() []int {
	ids := make([]int, g.ChannelsPerSocket)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// SocketIDs enumerates the socket ids.
func (g Geometry) SocketIDs() []int {
	ids := make([]int, g.Sockets)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Media selects which DIMM kind a namespace lives on.
type Media int

// Namespace media kinds.
const (
	MediaDRAM Media = iota
	MediaXP
)

func (m Media) String() string {
	if m == MediaDRAM {
		return "dram"
	}
	return "xp"
}

// Namespace is a contiguous logical byte range backed by one or more DIMMs
// on a single socket, in the style of Linux pmem namespaces (Section 2.3).
type Namespace struct {
	Name   string
	Socket int
	Media  Media
	Size   int64

	// Channels lists the participating channels on Socket, in interleave
	// order. One channel means non-interleaved (Optane-NI).
	Channels []int
	// Granularity is the interleave chunk size (4 KB on this platform).
	Granularity int64
	// Base is the namespace's offset in the global physical address space
	// (used to key caches and the backing data store).
	Base int64
	// DIMMBase, indexed like Channels, is the local offset this namespace
	// occupies on each participating DIMM.
	DIMMBase []int64
}

// Contains reports whether the offset lies inside the namespace.
func (ns *Namespace) Contains(off int64) bool { return off >= 0 && off < ns.Size }

// GlobalAddr converts a namespace offset into a global physical address.
func (ns *Namespace) GlobalAddr(off int64) int64 { return ns.Base + off }

// Resolve maps a namespace offset to the participating channel index (a
// position in Channels) and the address local to that channel's DIMM.
func (ns *Namespace) Resolve(off int64) (chanPos int, local int64) {
	n := int64(len(ns.Channels))
	if n == 1 {
		return 0, ns.DIMMBase[0] + off
	}
	chunk := off / ns.Granularity
	chanPos = int(chunk % n)
	local = ns.DIMMBase[chanPos] + (chunk/n)*ns.Granularity + off%ns.Granularity
	return chanPos, local
}

// Channel returns the socket-relative channel id for position pos.
func (ns *Namespace) Channel(pos int) int { return ns.Channels[pos] }

// StripeSize returns the full interleave stripe (granularity × ways).
func (ns *Namespace) StripeSize() int64 {
	return ns.Granularity * int64(len(ns.Channels))
}

// Layout allocates namespaces over the machine, tracking per-DIMM usage and
// assigning disjoint global address ranges.
type Layout struct {
	geom Geometry
	// used[socket][channel][media] = bytes allocated on that DIMM
	used     [][][2]int64
	nextBase int64
	names    map[string]bool
}

// NewLayout returns an empty layout for the geometry.
func NewLayout(geom Geometry) (*Layout, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	used := make([][][2]int64, geom.Sockets)
	for s := range used {
		used[s] = make([][2]int64, geom.ChannelsPerSocket)
	}
	return &Layout{geom: geom, used: used, names: make(map[string]bool)}, nil
}

// Spec describes a namespace to create.
type Spec struct {
	Name        string
	Socket      int
	Media       Media
	Size        int64
	Channels    []int // nil means all channels on the socket (interleaved)
	Granularity int64 // 0 means 4 KB
}

// Create allocates a namespace. Sizes round up to a full stripe.
func (l *Layout) Create(spec Spec) (*Namespace, error) {
	if spec.Name == "" || l.names[spec.Name] {
		return nil, fmt.Errorf("topology: invalid or duplicate namespace name %q", spec.Name)
	}
	if spec.Socket < 0 || spec.Socket >= l.geom.Sockets {
		return nil, fmt.Errorf("topology: socket %d out of range", spec.Socket)
	}
	if spec.Size <= 0 {
		return nil, fmt.Errorf("topology: namespace size must be positive")
	}
	channels := spec.Channels
	if channels == nil {
		channels = make([]int, l.geom.ChannelsPerSocket)
		for i := range channels {
			channels[i] = i
		}
	}
	seen := make(map[int]bool)
	for _, c := range channels {
		if c < 0 || c >= l.geom.ChannelsPerSocket || seen[c] {
			return nil, fmt.Errorf("topology: bad channel list %v", channels)
		}
		seen[c] = true
	}
	gran := spec.Granularity
	if gran == 0 {
		gran = mem.Page
	}
	stripe := gran * int64(len(channels))
	size := (spec.Size + stripe - 1) / stripe * stripe

	ns := &Namespace{
		Name:        spec.Name,
		Socket:      spec.Socket,
		Media:       spec.Media,
		Size:        size,
		Channels:    channels,
		Granularity: gran,
		Base:        l.nextBase,
		DIMMBase:    make([]int64, len(channels)),
	}
	perDIMM := size / int64(len(channels))
	for i, c := range channels {
		ns.DIMMBase[i] = l.used[spec.Socket][c][spec.Media]
		l.used[spec.Socket][c][spec.Media] += perDIMM
	}
	l.nextBase += size + mem.Page // guard page between namespaces
	l.names[spec.Name] = true
	return ns, nil
}
