package topology

import (
	"testing"
	"testing/quick"

	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
)

func layout(t *testing.T) *Layout {
	t.Helper()
	l, err := NewLayout(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestInterleavedMapping(t *testing.T) {
	l := layout(t)
	ns, err := l.Create(Spec{Name: "optane", Socket: 0, Media: MediaXP, Size: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// First 4 KB on channel 0, next on channel 1, ... (Figure 1(c)).
	for i := 0; i < 12; i++ {
		pos, local := ns.Resolve(int64(i) * mem.Page)
		if pos != i%6 {
			t.Fatalf("chunk %d on channel pos %d, want %d", i, pos, i%6)
		}
		wantLocal := int64(i/6) * mem.Page
		if local != wantLocal {
			t.Fatalf("chunk %d local = %d, want %d", i, local, wantLocal)
		}
	}
	if ns.StripeSize() != 24*1024 {
		t.Fatalf("stripe = %d, want 24KB", ns.StripeSize())
	}
}

func TestNonInterleavedMapping(t *testing.T) {
	l := layout(t)
	ns, err := l.Create(Spec{Name: "ni", Socket: 0, Media: MediaXP, Size: 1 << 20, Channels: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{0, 4096, 100000} {
		pos, local := ns.Resolve(off)
		if pos != 0 || local != off {
			t.Fatalf("NI resolve(%d) = (%d, %d)", off, pos, local)
		}
	}
	if ns.Channel(0) != 3 {
		t.Fatal("channel id lost")
	}
}

func TestMappingBijection(t *testing.T) {
	l := layout(t)
	ns, err := l.Create(Spec{Name: "x", Socket: 0, Media: MediaXP, Size: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		seen := make(map[[2]int64]bool)
		offs := make(map[int64]bool)
		for i := 0; i < 500; i++ {
			off := r.Int63n(ns.Size) &^ 63
			if offs[off] {
				continue
			}
			offs[off] = true
			pos, local := ns.Resolve(off)
			key := [2]int64{int64(pos), local}
			if seen[key] {
				return false // collision: two offsets map to one DIMM address
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMappingContiguityWithinChunk(t *testing.T) {
	l := layout(t)
	ns, _ := l.Create(Spec{Name: "x", Socket: 0, Media: MediaXP, Size: 1 << 24})
	// All addresses within one 4 KB chunk stay on one DIMM, contiguous.
	base := int64(7 * mem.Page)
	pos0, local0 := ns.Resolve(base)
	for off := int64(1); off < mem.Page; off += 64 {
		pos, local := ns.Resolve(base + off)
		if pos != pos0 || local != local0+off {
			t.Fatalf("intra-chunk split at +%d", off)
		}
	}
}

func TestLayoutStacksNamespacesOnDIMMs(t *testing.T) {
	l := layout(t)
	a, _ := l.Create(Spec{Name: "a", Socket: 0, Media: MediaXP, Size: 1 << 20, Channels: []int{0}})
	b, _ := l.Create(Spec{Name: "b", Socket: 0, Media: MediaXP, Size: 1 << 20, Channels: []int{0}})
	_, la := a.Resolve(0)
	_, lb := b.Resolve(0)
	if la == lb {
		t.Fatal("two namespaces overlap on the same DIMM")
	}
	if b.DIMMBase[0] != a.Size {
		t.Fatalf("b starts at %d, want after a (%d)", b.DIMMBase[0], a.Size)
	}
}

func TestLayoutDistinctGlobalRanges(t *testing.T) {
	l := layout(t)
	a, _ := l.Create(Spec{Name: "a", Socket: 0, Media: MediaDRAM, Size: 1 << 20})
	b, _ := l.Create(Spec{Name: "b", Socket: 1, Media: MediaXP, Size: 1 << 20})
	if a.GlobalAddr(a.Size-1) >= b.GlobalAddr(0) {
		t.Fatal("global ranges overlap")
	}
}

func TestLayoutRejectsBadSpecs(t *testing.T) {
	l := layout(t)
	if _, err := l.Create(Spec{Name: "", Socket: 0, Media: MediaXP, Size: 4096}); err == nil {
		t.Error("empty name accepted")
	}
	l.Create(Spec{Name: "dup", Socket: 0, Media: MediaXP, Size: 4096})
	if _, err := l.Create(Spec{Name: "dup", Socket: 0, Media: MediaXP, Size: 4096}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := l.Create(Spec{Name: "s", Socket: 9, Media: MediaXP, Size: 4096}); err == nil {
		t.Error("bad socket accepted")
	}
	if _, err := l.Create(Spec{Name: "c", Socket: 0, Media: MediaXP, Size: 4096, Channels: []int{0, 0}}); err == nil {
		t.Error("duplicate channels accepted")
	}
	if _, err := l.Create(Spec{Name: "z", Socket: 0, Media: MediaXP, Size: 0}); err == nil {
		t.Error("zero size accepted")
	}
}

// The enumeration and distance lookups are what placement policies build
// on: every socket and channel must be visible, and the local-vs-remote
// split must match the paper's two-socket UPI topology.

func TestGeometryEnumeration(t *testing.T) {
	g := DefaultGeometry()
	if got := g.SocketIDs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("SocketIDs() = %v, want [0 1]", got)
	}
	chans := g.ChannelIDs()
	if len(chans) != 6 {
		t.Fatalf("ChannelIDs() has %d entries, want 6", len(chans))
	}
	for i, c := range chans {
		if c != i {
			t.Fatalf("ChannelIDs()[%d] = %d, want %d (interleave order)", i, c, i)
		}
	}
	// Enumerations return fresh slices: mutating one must not corrupt the
	// geometry for the next caller.
	chans[0] = 99
	if g.ChannelIDs()[0] != 0 {
		t.Fatal("ChannelIDs aliases shared state")
	}
}

func TestDistanceLookups(t *testing.T) {
	g := DefaultGeometry()
	for _, s := range g.SocketIDs() {
		if d := g.Distance(s, s); d != DistanceLocal {
			t.Errorf("Distance(%d, %d) = %d, want local %d", s, s, d, DistanceLocal)
		}
		if g.Remote(s, s) {
			t.Errorf("Remote(%d, %d) = true on the home socket", s, s)
		}
	}
	if d := g.Distance(0, 1); d != DistanceRemote {
		t.Errorf("Distance(0, 1) = %d, want remote %d", d, DistanceRemote)
	}
	if g.Distance(0, 1) != g.Distance(1, 0) {
		t.Error("distance is not symmetric")
	}
	if !g.Remote(0, 1) || !g.Remote(1, 0) {
		t.Error("cross-socket access must be remote")
	}
	if DistanceRemote <= DistanceLocal {
		t.Error("remote distance must exceed local")
	}
}

func TestDistanceRejectsBadSockets(t *testing.T) {
	g := DefaultGeometry()
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Distance(%d, %d) accepted an out-of-range socket", pair[0], pair[1])
				}
			}()
			g.Distance(pair[0], pair[1])
		}()
	}
}

func TestSizeRoundsToStripe(t *testing.T) {
	l := layout(t)
	ns, _ := l.Create(Spec{Name: "r", Socket: 0, Media: MediaXP, Size: 1000})
	if ns.Size != 24*1024 {
		t.Fatalf("size = %d, want one 24KB stripe", ns.Size)
	}
}
