package topology

import (
	"testing"
	"testing/quick"

	"optanestudy/internal/mem"
	"optanestudy/internal/sim"
)

func layout(t *testing.T) *Layout {
	t.Helper()
	l, err := NewLayout(DefaultGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestInterleavedMapping(t *testing.T) {
	l := layout(t)
	ns, err := l.Create(Spec{Name: "optane", Socket: 0, Media: MediaXP, Size: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// First 4 KB on channel 0, next on channel 1, ... (Figure 1(c)).
	for i := 0; i < 12; i++ {
		pos, local := ns.Resolve(int64(i) * mem.Page)
		if pos != i%6 {
			t.Fatalf("chunk %d on channel pos %d, want %d", i, pos, i%6)
		}
		wantLocal := int64(i/6) * mem.Page
		if local != wantLocal {
			t.Fatalf("chunk %d local = %d, want %d", i, local, wantLocal)
		}
	}
	if ns.StripeSize() != 24*1024 {
		t.Fatalf("stripe = %d, want 24KB", ns.StripeSize())
	}
}

func TestNonInterleavedMapping(t *testing.T) {
	l := layout(t)
	ns, err := l.Create(Spec{Name: "ni", Socket: 0, Media: MediaXP, Size: 1 << 20, Channels: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{0, 4096, 100000} {
		pos, local := ns.Resolve(off)
		if pos != 0 || local != off {
			t.Fatalf("NI resolve(%d) = (%d, %d)", off, pos, local)
		}
	}
	if ns.Channel(0) != 3 {
		t.Fatal("channel id lost")
	}
}

func TestMappingBijection(t *testing.T) {
	l := layout(t)
	ns, err := l.Create(Spec{Name: "x", Socket: 0, Media: MediaXP, Size: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		seen := make(map[[2]int64]bool)
		offs := make(map[int64]bool)
		for i := 0; i < 500; i++ {
			off := r.Int63n(ns.Size) &^ 63
			if offs[off] {
				continue
			}
			offs[off] = true
			pos, local := ns.Resolve(off)
			key := [2]int64{int64(pos), local}
			if seen[key] {
				return false // collision: two offsets map to one DIMM address
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMappingContiguityWithinChunk(t *testing.T) {
	l := layout(t)
	ns, _ := l.Create(Spec{Name: "x", Socket: 0, Media: MediaXP, Size: 1 << 24})
	// All addresses within one 4 KB chunk stay on one DIMM, contiguous.
	base := int64(7 * mem.Page)
	pos0, local0 := ns.Resolve(base)
	for off := int64(1); off < mem.Page; off += 64 {
		pos, local := ns.Resolve(base + off)
		if pos != pos0 || local != local0+off {
			t.Fatalf("intra-chunk split at +%d", off)
		}
	}
}

func TestLayoutStacksNamespacesOnDIMMs(t *testing.T) {
	l := layout(t)
	a, _ := l.Create(Spec{Name: "a", Socket: 0, Media: MediaXP, Size: 1 << 20, Channels: []int{0}})
	b, _ := l.Create(Spec{Name: "b", Socket: 0, Media: MediaXP, Size: 1 << 20, Channels: []int{0}})
	_, la := a.Resolve(0)
	_, lb := b.Resolve(0)
	if la == lb {
		t.Fatal("two namespaces overlap on the same DIMM")
	}
	if b.DIMMBase[0] != a.Size {
		t.Fatalf("b starts at %d, want after a (%d)", b.DIMMBase[0], a.Size)
	}
}

func TestLayoutDistinctGlobalRanges(t *testing.T) {
	l := layout(t)
	a, _ := l.Create(Spec{Name: "a", Socket: 0, Media: MediaDRAM, Size: 1 << 20})
	b, _ := l.Create(Spec{Name: "b", Socket: 1, Media: MediaXP, Size: 1 << 20})
	if a.GlobalAddr(a.Size-1) >= b.GlobalAddr(0) {
		t.Fatal("global ranges overlap")
	}
}

func TestLayoutRejectsBadSpecs(t *testing.T) {
	l := layout(t)
	if _, err := l.Create(Spec{Name: "", Socket: 0, Media: MediaXP, Size: 4096}); err == nil {
		t.Error("empty name accepted")
	}
	l.Create(Spec{Name: "dup", Socket: 0, Media: MediaXP, Size: 4096})
	if _, err := l.Create(Spec{Name: "dup", Socket: 0, Media: MediaXP, Size: 4096}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := l.Create(Spec{Name: "s", Socket: 9, Media: MediaXP, Size: 4096}); err == nil {
		t.Error("bad socket accepted")
	}
	if _, err := l.Create(Spec{Name: "c", Socket: 0, Media: MediaXP, Size: 4096, Channels: []int{0, 0}}); err == nil {
		t.Error("duplicate channels accepted")
	}
	if _, err := l.Create(Spec{Name: "z", Socket: 0, Media: MediaXP, Size: 0}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestSizeRoundsToStripe(t *testing.T) {
	l := layout(t)
	ns, _ := l.Create(Spec{Name: "r", Socket: 0, Media: MediaXP, Size: 1000})
	if ns.Size != 24*1024 {
		t.Fatalf("size = %d, want one 24KB stripe", ns.Size)
	}
}
