// Package scenarios links every scenario-providing package into a binary:
// blank-importing it populates the harness registry with the lattester,
// fio, lsmkv, pmem, pmemkv, service, cluster and figures scenarios. The
// cmd/* CLIs and the top-level benchmarks import it so they all see one
// identical registry.
package scenarios

import (
	_ "optanestudy/internal/cluster"
	_ "optanestudy/internal/figures"
	_ "optanestudy/internal/fio"
	_ "optanestudy/internal/lattester"
	_ "optanestudy/internal/lsmkv"
	_ "optanestudy/internal/pmem"
	_ "optanestudy/internal/pmemkv"
	_ "optanestudy/internal/service"
)
