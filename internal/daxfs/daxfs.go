// Package daxfs models conventional DAX file systems (Ext4-DAX, XFS-DAX)
// as Figure 12 comparators: data writes go in place with cached stores;
// fsync flushes the dirty range and commits a metadata journal
// transaction. Unlike NOVA, these file systems do not provide data
// consistency across crashes — in-place writes can tear.
package daxfs

import (
	"errors"
	"fmt"

	"optanestudy/internal/mem"
	"optanestudy/internal/platform"
	"optanestudy/internal/pmem"
	"optanestudy/internal/sim"
	"optanestudy/internal/vfs"
)

// Variant selects the journal cost profile.
type Variant int

// File system variants.
const (
	Ext4 Variant = iota
	XFS
)

// Config holds the cost profile of one variant.
type Config struct {
	Variant Variant
	// WriteSyscall is the per-write() CPU cost (syscall, VFS, DAX lookup).
	WriteSyscall sim.Time
	// FsyncSyscall is the per-fsync() CPU cost before any IO.
	FsyncSyscall sim.Time
	// JournalDelay models the journal machinery (transaction batching,
	// commit scheduling) beyond the raw metadata writes.
	JournalDelay sim.Time
	// MaxFileBytes is each file's contiguous extent reservation.
	MaxFileBytes int64
}

// DefaultConfig returns the calibrated profile for a variant. The sync
// latencies land near the paper's Figure 12 annotations (Ext4-DAX-sync
// ≈ 57 µs, XFS-DAX-sync ≈ 40 µs for small overwrites).
func DefaultConfig(v Variant) Config {
	cfg := Config{
		Variant:      v,
		WriteSyscall: 900 * sim.Nanosecond,
		FsyncSyscall: 600 * sim.Nanosecond,
		MaxFileBytes: 16 << 20,
	}
	if v == Ext4 {
		cfg.JournalDelay = 50 * sim.Microsecond
	} else {
		cfg.JournalDelay = 34 * sim.Microsecond
	}
	return cfg
}

// FS is a mounted daxfs. Data writes stage with plain cached stores;
// fsync's dirty-range flush goes through the store+clwb persister and the
// journal blocks stream through the non-temporal persister.
type FS struct {
	cfg     Config
	reg     pmem.Region
	data    *pmem.Persister
	jnl     *pmem.Persister
	next    int64
	files   map[string]*file
	journal int64 // journal area offset
}

// Mount formats a daxfs over the namespace.
func Mount(ns *platform.Namespace, cfg Config) (*FS, error) {
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = 16 << 20
	}
	if ns.Size < cfg.MaxFileBytes+64<<10 {
		return nil, errors.New("daxfs: namespace too small")
	}
	return &FS{
		cfg:     cfg,
		reg:     pmem.Whole(ns),
		data:    pmem.NewPersister(pmem.StoreFlush),
		jnl:     pmem.NewPersister(pmem.NTStream),
		next:    64 << 10, // reserve a superblock/journal region
		files:   make(map[string]*file),
		journal: 4096,
	}, nil
}

// Name implements vfs.FS.
func (f *FS) Name() string {
	if f.cfg.Variant == Ext4 {
		return "Ext4-DAX"
	}
	return "XFS-DAX"
}

type file struct {
	fs   *FS
	base int64
	size int64
	// dirty tracks the unsynced byte range.
	dirtyLo, dirtyHi int64
	hasDirty         bool
}

// Create implements vfs.FS.
func (f *FS) Create(ctx *platform.MemCtx, name string) (vfs.File, error) {
	if fl, ok := f.files[name]; ok {
		fl.size = 0
		return fl, nil
	}
	if f.next+f.cfg.MaxFileBytes > f.reg.Size() {
		return nil, fmt.Errorf("daxfs: no space for %q", name)
	}
	fl := &file{fs: f, base: f.next}
	f.next += f.cfg.MaxFileBytes
	f.files[name] = fl
	// Persist the inode (one metadata block through the journal path).
	f.journalCommit(ctx)
	return fl, nil
}

// Open implements vfs.FS.
func (f *FS) Open(_ *platform.MemCtx, name string) (vfs.File, error) {
	fl, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("daxfs: %q not found", name)
	}
	return fl, nil
}

func (fl *file) check(off int64, n int) error {
	if off < 0 || off+int64(n) > fl.fs.cfg.MaxFileBytes {
		return errors.New("daxfs: IO beyond extent reservation")
	}
	return nil
}

// WriteAt implements vfs.File: in-place cached stores (no durability until
// Sync — and no atomicity, ever).
func (fl *file) WriteAt(ctx *platform.MemCtx, off int64, data []byte) error {
	if err := fl.check(off, len(data)); err != nil {
		return err
	}
	ctx.Proc().Sleep(fl.fs.cfg.WriteSyscall)
	fl.fs.reg.Store(ctx, fl.base+off, len(data), data)
	if end := off + int64(len(data)); end > fl.size {
		fl.size = end
	}
	if !fl.hasDirty || off < fl.dirtyLo {
		fl.dirtyLo = off
	}
	if end := off + int64(len(data)); !fl.hasDirty || end > fl.dirtyHi {
		fl.dirtyHi = off + int64(len(data))
	}
	fl.hasDirty = true
	return nil
}

// ReadAt implements vfs.File.
func (fl *file) ReadAt(ctx *platform.MemCtx, off int64, buf []byte) error {
	if err := fl.check(off, len(buf)); err != nil {
		return err
	}
	ctx.Proc().Sleep(fl.fs.cfg.WriteSyscall / 2)
	fl.fs.reg.LoadStream(ctx, fl.base+off, len(buf))
	ctx.DrainLoads()
	fl.fs.reg.Peek(ctx, fl.base+off, buf)
	return nil
}

// Sync implements vfs.File: flush the dirty data range, then commit the
// metadata journal.
func (fl *file) Sync(ctx *platform.MemCtx) error {
	ctx.Proc().Sleep(fl.fs.cfg.FsyncSyscall)
	if fl.hasDirty {
		lo := mem.LineAddr(fl.dirtyLo)
		fl.fs.data.Flush(ctx, fl.fs.reg, fl.base+lo, int(fl.dirtyHi-lo))
		fl.fs.data.Fence(ctx)
		fl.hasDirty = false
	}
	fl.fs.journalCommit(ctx)
	return nil
}

// Size implements vfs.File.
func (fl *file) Size() int64 { return fl.size }

// journalCommit writes a descriptor block, a metadata block and a commit
// record, with ordering fences, plus the journal scheduling delay.
func (f *FS) journalCommit(ctx *platform.MemCtx) {
	ctx.Proc().Sleep(f.cfg.JournalDelay)
	f.jnl.Write(ctx, f.reg, f.journal, 512, nil)
	f.jnl.Write(ctx, f.reg, f.journal+512, 512, nil)
	f.jnl.Fence(ctx)
	f.jnl.Persist(ctx, f.reg, f.journal+1024, 64, nil)
}
