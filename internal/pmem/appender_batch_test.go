package pmem

import (
	"bytes"
	"fmt"
	"testing"

	"optanestudy/internal/platform"
)

// A committed batch must be durable and replayable: contents exact, one
// fence per batch, and the amortization counters consistent.
func TestAppendBatchBasic(t *testing.T) {
	p, ns := testPlatform(t)
	reg, err := NewRegion(ns, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	w := NewPersister(NTStream)
	a := NewAppender(reg, w)
	var recs [][]byte
	var offs []int64
	p.Go("w", 0, func(ctx *platform.MemCtx) {
		for b := 0; b < 2; b++ {
			a.Begin()
			for i := 0; i < 3+b; i++ { // batches of 3 and 4
				rec := pattern(uint64(b*10+i), 100+i)
				recs = append(recs, rec)
				off, err := a.Add(ctx, rec)
				if err != nil {
					t.Error(err)
					return
				}
				offs = append(offs, off)
			}
			if err := a.Commit(ctx); err != nil {
				t.Error(err)
				return
			}
		}
		// API misuse must error without corrupting the stream.
		if _, err := a.Add(ctx, []byte("x")); err == nil {
			t.Error("Add without Begin accepted")
		}
		if err := a.Commit(ctx); err == nil {
			t.Error("Commit without Begin accepted")
		}
		a.Begin()
		if _, err := a.Append(ctx, []byte("x")); err == nil {
			t.Error("Append inside an open batch accepted")
		}
		if err := a.Commit(ctx); err != nil { // empty batch: no-op
			t.Error(err)
		}
	})
	p.Run()
	p.Crash()
	for i, rec := range recs {
		got := make([]byte, len(rec))
		reg.ReadDurable(offs[i], got)
		if !bytes.Equal(got, rec) {
			t.Fatalf("record %d not durable at %d", i, offs[i])
		}
	}
	var replayed [][]byte
	batches, n := RecoverBatches(reg, func(rec []byte) {
		replayed = append(replayed, append([]byte(nil), rec...))
	})
	if batches != 2 || n != len(recs) {
		t.Fatalf("recovered %d batches / %d records, want 2 / %d", batches, n, len(recs))
	}
	for i, rec := range replayed {
		if !bytes.Equal(rec, recs[i]) {
			t.Fatalf("replayed record %d differs", i)
		}
	}
	// One fence per batch; the empty commit must not have fenced.
	if w.C.Fences != 2 || w.C.Batches != 2 || w.C.BatchOps != 7 {
		t.Fatalf("fences/batches/ops = %d/%d/%d, want 2/2/7", w.C.Fences, w.C.Batches, w.C.BatchOps)
	}
	m := map[string]float64{}
	w.C.Metrics(m)
	if got := m["pmem_fence_per_op"]; got != 2.0/7.0 {
		t.Errorf("pmem_fence_per_op = %v, want %v", got, 2.0/7.0)
	}
}

// A batch that would cross the region end wraps as a whole at Commit so
// the committed frame sequence stays contiguous and durable.
func TestAppendBatchWrap(t *testing.T) {
	p, ns := testPlatform(t)
	reg, err := NewRegion(ns, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAppender(reg, NewPersister(NTStream))
	r0, r1 := pattern(1, 300), pattern(2, 300)
	var off0, off1 int64
	p.Go("w", 0, func(ctx *platform.MemCtx) {
		// First batch fills [0,768): two 304-byte frames plus the 64-byte
		// commit line, padded to whole XPLines.
		a.Begin()
		a.Add(ctx, pattern(8, 300))
		a.Add(ctx, pattern(9, 300))
		a.Commit(ctx)
		// Second batch stages at 768 (offsets provisional), but committing
		// its 768 XPLine-padded bytes there would overrun the region, so
		// the whole batch wraps to 0 and every staged record shifts down.
		a.Begin()
		staged := a.BatchStart()
		if staged != 768 {
			t.Errorf("provisional batch start = %d, want 768", staged)
		}
		if off0, err = a.Add(ctx, r0); err != nil {
			t.Error(err)
			return
		}
		if off0 != 772 {
			t.Errorf("pre-wrap provisional offset = %d, want 772", off0)
		}
		if off1, err = a.Add(ctx, r1); err != nil {
			t.Error(err)
			return
		}
		if err = a.Commit(ctx); err != nil {
			t.Error(err)
		}
		// Rebase the recorded offsets by how far Commit moved the batch.
		delta := a.BatchStart() - staged
		off0 += delta
		off1 += delta
		// An Add that cannot fit even after wrapping must error.
		a.Begin()
		if _, err := a.Add(ctx, make([]byte, 1024)); err == nil {
			t.Error("oversized batch accepted")
		}
		a.Commit(ctx)
	})
	p.Run()
	if off0 != 4 || off1 != 308 {
		t.Fatalf("wrapped payload offsets = %d, %d, want 4, 308", off0, off1)
	}
	if a.Wraps() != 1 {
		t.Fatalf("wraps = %d, want 1", a.Wraps())
	}
	p.Crash()
	for _, c := range []struct {
		off  int64
		want []byte
	}{{off0, r0}, {off1, r1}} {
		got := make([]byte, len(c.want))
		reg.ReadDurable(c.off, got)
		if !bytes.Equal(got, c.want) {
			t.Fatalf("wrapped record at %d not durable", c.off)
		}
	}
}

// Batches whose zero padding is 1-3 bytes put the padding sentinel and
// the commit record's magic inside the same 4-byte length-field read, so
// the recovery walk must probe the commit line at its aligned position
// instead of misreading the straddled bytes as a record length. Single
// records of 185/186/187 bytes pad with exactly 3/2/1 bytes; the final
// batch puts the 185-byte record mid-batch, so the same narrow gap
// appears where frames continue — the probe must miss and the walk
// resume on the next frame.
func TestAppendBatchShortPadding(t *testing.T) {
	p, ns := testPlatform(t)
	reg, err := NewRegion(ns, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	w := NewPersister(NTStream)
	a := NewAppender(reg, w)
	batchesIn := [][]int{{185}, {186}, {187}, {185, 50}}
	var recs [][]byte
	p.Go("w", 0, func(ctx *platform.MemCtx) {
		for b, sizes := range batchesIn {
			a.Begin()
			for i, sz := range sizes {
				rec := pattern(uint64(b*31+i)+11, sz)
				recs = append(recs, rec)
				if _, err := a.Add(ctx, rec); err != nil {
					t.Error(err)
					return
				}
			}
			if err := a.Commit(ctx); err != nil {
				t.Error(err)
				return
			}
		}
	})
	p.Run()
	p.Crash()
	var got [][]byte
	batches, n := RecoverBatches(reg, func(rec []byte) {
		got = append(got, append([]byte(nil), rec...))
	})
	if batches != len(batchesIn) || n != len(recs) {
		t.Fatalf("recovered %d batches / %d records, want %d / %d",
			batches, n, len(batchesIn), len(recs))
	}
	for i, rec := range got {
		if !bytes.Equal(rec, recs[i]) {
			t.Fatalf("replayed record %d differs", i)
		}
	}
}

// crashSentinel unwinds a simulated thread mid-protocol.
type crashSentinel struct{}

// Torn-batch recovery: crash an in-flight batch at every protocol stage,
// under every flush policy, and assert replay recovers exactly the
// fully-committed prefix. The one legitimate widening is the pre-fence
// stage under cached-store policies: clwb posts lines to the WPQ (the ADR
// domain), so a batch whose commit record was written but not yet fenced
// MAY be fully durable — recovery then sees a valid commit record and the
// batch counts as committed. Anything between (a torn payload or torn
// commit record) must fail the CRC and be discarded.
func TestTornBatchRecovery(t *testing.T) {
	const (
		committed = 3 // fully committed batches before the in-flight one
		perBatch  = 3
	)
	stages := []string{"staged", "partial", "pre-commit", "pre-fence"}
	// Two batch geometries: wide zero padding (175 bytes) and the narrow
	// 3-byte padding that makes the length-field read straddle into the
	// commit record's magic.
	profiles := []struct {
		name string
		size func(i int) int
	}{
		{"pad175", func(i int) int { return 80 + i*7 }},
		{"pad3", func(i int) int { return 58 + i }},
		// The replica ship-log record shape: fixed 8-byte key/val header
		// plus a 16-byte key and 128-byte value, the framing a primary
		// ships to its standby. A shipment torn by a primary crash must
		// replay as exactly the committed prefix — the promoted standby's
		// correctness contract.
		{"shipped", func(i int) int { return 8 + 16 + 128 }},
	}
	for _, prof := range profiles {
		for _, pol := range Policies() {
			for _, stage := range stages {
				prof, pol, stage := prof, pol, stage
				t.Run(fmt.Sprintf("%s/%s/%s", prof.name, pol, stage), func(t *testing.T) {
					p, ns := testPlatform(t)
					reg, err := NewRegion(ns, 0, 64<<10)
					if err != nil {
						t.Fatal(err)
					}
					w := NewPersister(pol)
					a := NewAppender(reg, w)
					var all [][]byte // every record staged, committed or not
					p.Go("w", 0, func(ctx *platform.MemCtx) {
						defer func() {
							if r := recover(); r != nil {
								if _, ok := r.(crashSentinel); !ok {
									panic(r)
								}
							}
						}()
						add := func(b, i int) {
							rec := pattern(uint64(b*97+i)+5, prof.size(i))
							all = append(all, rec)
							if _, err := a.Add(ctx, rec); err != nil {
								t.Error(err)
								panic(crashSentinel{})
							}
						}
						for b := 0; b < committed; b++ {
							a.Begin()
							for i := 0; i < perBatch; i++ {
								add(b, i)
							}
							if err := a.Commit(ctx); err != nil {
								t.Error(err)
								return
							}
						}
						a.CrashHook = func(s string) {
							if s == stage {
								panic(crashSentinel{})
							}
						}
						a.Begin()
						for i := 0; i < perBatch; i++ {
							add(committed, i)
						}
						a.Commit(ctx)
					})
					p.Run()
					p.Crash()
					var got [][]byte
					batches, n := RecoverBatches(reg, func(rec []byte) {
						got = append(got, append([]byte(nil), rec...))
					})
					switch stage {
					case "pre-fence":
						if batches != committed && batches != committed+1 {
							t.Fatalf("recovered %d batches, want %d or %d", batches, committed, committed+1)
						}
					default:
						if batches != committed {
							t.Fatalf("recovered %d batches, want exactly %d", batches, committed)
						}
					}
					if n != batches*perBatch || len(got) != n {
						t.Fatalf("recovered %d records over %d batches", n, batches)
					}
					for i, rec := range got {
						if !bytes.Equal(rec, all[i]) {
							t.Fatalf("replayed record %d differs from the append order", i)
						}
					}
				})
			}
		}
	}
}

// BenchmarkAppendBatch compares fence amortization across batch depths:
// fences/op is 1 at depth 1 and 1/depth for group commit.
func BenchmarkAppendBatch(b *testing.B) {
	for _, depth := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", depth), func(b *testing.B) {
			p, ns := testPlatform(b)
			reg := Whole(ns)
			w := NewPersister(NTStream)
			a := NewAppender(reg, w)
			rec := pattern(3, 120)
			b.ResetTimer()
			p.Go("w", 0, func(ctx *platform.MemCtx) {
				for i := 0; i < b.N; {
					if depth == 1 {
						if _, err := a.Append(ctx, rec); err != nil {
							b.Error(err)
							return
						}
						i++
						continue
					}
					a.Begin()
					for j := 0; j < depth && i < b.N; j++ {
						if _, err := a.Add(ctx, rec); err != nil {
							b.Error(err)
							return
						}
						i++
					}
					if err := a.Commit(ctx); err != nil {
						b.Error(err)
						return
					}
				}
			})
			p.Run()
			b.ReportMetric(float64(w.C.Fences)/float64(b.N), "fences/op")
		})
	}
}
