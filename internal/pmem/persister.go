package pmem

import (
	"optanestudy/internal/platform"
)

// Persister is a persistence policy object: it turns "make these bytes
// durable" into the concrete instruction sequence its Policy selects, and
// counts what it issued. The split into Write / Flush / Fence mirrors how
// real persistent software batches work: several writes can share one
// fence (an undo-log transaction, a skiplist node plus its link), and a
// file system can stage cached stores long before fsync flushes them.
//
// A Persister is owned by one simulated thread at a time (counters are not
// synchronized; simulated procs run exclusively, so sharing one persister
// across a stack's procs is safe under the sim's cooperative scheduler).
type Persister struct {
	policy Policy
	// C tallies issued traffic per effective policy.
	C Counters
}

// NewPersister returns a persister with the given policy.
func NewPersister(p Policy) *Persister { return &Persister{policy: p} }

// Policy returns the configured (possibly Auto) policy.
func (w *Persister) Policy() Policy { return w.policy }

// Effective resolves the policy for one access of size bytes: Auto picks
// NTStream at or above AutoThreshold and StoreFlush below it.
func (w *Persister) Effective(size int) Policy {
	if w.policy != Auto {
		return w.policy
	}
	if size >= AutoThreshold {
		return NTStream
	}
	return StoreFlush
}

// Write stages size bytes at off toward durability — written and flushed
// per the policy — without fencing. The bytes are durable only after the
// next Fence (or Persist) on the same thread.
func (w *Persister) Write(ctx *platform.MemCtx, r Region, off int64, size int, data []byte) {
	pol := w.Effective(size)
	switch pol {
	case NTStream:
		r.NTStore(ctx, off, size, data)
	case StoreFlush:
		r.Store(ctx, off, size, data)
		r.CLWB(ctx, off, size)
	case StoreFlushOpt:
		r.Store(ctx, off, size, data)
		r.CLFlushOpt(ctx, off, size)
	case CLFlush:
		r.Store(ctx, off, size, data)
		r.CLFlush(ctx, off, size)
	}
	w.C.add(pol, size)
}

// Flush writes back [off, off+size) with the policy's flush instruction,
// for bytes previously staged with plain cached stores (the write()-then-
// fsync() split). Under NTStream it is a no-op: non-temporal data needs no
// cache flush, only the fence. Auto always resolves to StoreFlush here —
// the bytes being flushed sit dirty in the cache by precondition, so the
// size-based NT branch can never apply.
func (w *Persister) Flush(ctx *platform.MemCtx, r Region, off int64, size int) {
	pol := w.policy
	if pol == Auto {
		pol = StoreFlush
	}
	switch pol {
	case NTStream:
		return
	case StoreFlush:
		r.CLWB(ctx, off, size)
	case StoreFlushOpt:
		r.CLFlushOpt(ctx, off, size)
	case CLFlush:
		r.CLFlush(ctx, off, size)
	}
	w.C.add(pol, size)
}

// Fence drains the thread's write-combining buffers and waits for every
// post since the last fence to reach the ADR domain.
func (w *Persister) Fence(ctx *platform.MemCtx) {
	ctx.SFence()
	w.C.Fences++
}

// Persist is Write followed by Fence: the bytes are durable on return.
func (w *Persister) Persist(ctx *platform.MemCtx, r Region, off int64, size int, data []byte) {
	w.Write(ctx, r, off, size, data)
	w.Fence(ctx)
}
