// Package pmem is the repository's persistence-primitive layer: a small,
// typed API over platform.MemCtx that makes the paper's persist-instruction
// best practices explicit instead of re-deriving them at every call site.
//
// The paper's guidance (Sections 5.1–5.2) boils down to a per-write choice
// of instruction sequence: non-temporal streams for large transfers, cached
// store + clwb for small updates of cache-resident data, and never clflush
// when anything else is available. Before this package, every software
// stack in the repository (pmemobj, lsmkv, pmemkv, novafs, daxfs,
// service/applog) hand-rolled its own NTStore/CLWB/SFence choreography
// against raw MemCtx — and PR 3 fixed a latent cross-namespace
// write-combining bug born of exactly that duplication.
//
// The layer has four pieces:
//
//   - Region: a bounds-checked window onto a Namespace. All primitive
//     operations are region-relative, so a software stack cannot scribble
//     outside its allocation.
//   - Persister: the policy object. Its Policy picks the instruction
//     sequence (NTStream, StoreFlush, StoreFlushOpt, CLFlush, or Auto,
//     which switches on the paper's 256 B XPLine granularity), and it
//     counts ops/bytes per effective policy for harness metadata.
//   - Appender: a sequential durable log stream with circular wrap and a
//     reusable scratch buffer (the write-behind-logging shape).
//   - Copier: bulk persist with cache-line-aligned chunking.
//
// Policies are deliberately swappable: the pmem/policy/* scenario family
// sweeps policy × access size × media, and the crash-consistency suites of
// pmemobj and lsmkv re-run under every policy.
package pmem

import (
	"fmt"

	"optanestudy/internal/mem"
)

// Policy selects the instruction sequence a Persister uses to make bytes
// durable.
type Policy uint8

// Persist policies. The first four are concrete instruction sequences;
// Auto resolves to one of them per access.
const (
	// NTStream writes with non-temporal stores (cache-bypassing, posted
	// straight toward the WPQ). The paper's recommendation for large
	// transfers: no ownership read of overwritten lines, cheap per-line
	// issue, at the price of a write-combining drain on the fence path.
	NTStream Policy = iota
	// StoreFlush writes with cached stores and writes the lines back with
	// clwb (no eviction). The recommendation for small updates of
	// cache-resident data: no ownership read when the line is warm, no
	// write-combining delay, and the line stays cached for the next use.
	StoreFlush
	// StoreFlushOpt writes with cached stores and flushes with clflushopt,
	// which evicts — the next touch of the line pays a cold ownership read.
	StoreFlushOpt
	// CLFlush writes with cached stores and flushes with the legacy,
	// serializing clflush. Strictly dominated; included as the paper's
	// cautionary baseline.
	CLFlush
	// Auto picks NTStream for accesses of AutoThreshold bytes or more and
	// StoreFlush below it, following the paper's 256 B media-granularity
	// guidance (Section 2.1: the 3D XPoint access unit; Section 5.1: avoid
	// small stores).
	Auto

	// NumPolicies counts the concrete instruction policies (Auto resolves
	// to one of them, so counters have NumPolicies slots).
	NumPolicies = int(Auto)
)

// AutoThreshold is the access size, in bytes, at which Auto switches from
// StoreFlush to NTStream: the 256 B XPLine, the 3D XPoint internal access
// granularity the paper's small-store guidance is phrased around.
const AutoThreshold = mem.XPLine

var policyNames = [...]string{
	NTStream:      "nt",
	StoreFlush:    "store-flush",
	StoreFlushOpt: "store-flush-opt",
	CLFlush:       "clflush",
	Auto:          "auto",
}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// slug returns the identifier-safe form used in metric keys.
func (p Policy) slug() string {
	switch p {
	case NTStream:
		return "nt"
	case StoreFlush:
		return "store_flush"
	case StoreFlushOpt:
		return "store_flush_opt"
	case CLFlush:
		return "clflush"
	default:
		return "auto"
	}
}

// ParsePolicy maps a scenario-param string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for p, name := range policyNames {
		if s == name {
			return Policy(p), nil
		}
	}
	return 0, fmt.Errorf("pmem: unknown policy %q (want nt, store-flush, store-flush-opt, clflush or auto)", s)
}

// Policies lists every policy, concrete ones first.
func Policies() []Policy {
	return []Policy{NTStream, StoreFlush, StoreFlushOpt, CLFlush, Auto}
}

// Counters tallies a Persister's traffic per effective policy (Auto
// resolves to the concrete policy it picked). They surface in harness
// metadata so policy sweeps can report what each trial actually issued.
type Counters struct {
	// Ops and Bytes count Write/Persist/Flush calls and the bytes they
	// covered, indexed by concrete Policy.
	Ops   [NumPolicies]int64
	Bytes [NumPolicies]int64
	// Fences counts explicit fence points (Fence and the fence inside
	// Persist).
	Fences int64
	// Batches and BatchOps count group commits (Appender Begin/Add/Commit
	// batches, one fence each) and the records they carried. Their ratio
	// is the fence amortization the batch path buys: fences per logged op
	// is Batches/BatchOps instead of 1.
	Batches  int64
	BatchOps int64
}

func (c *Counters) add(p Policy, bytes int) {
	c.Ops[p]++
	c.Bytes[p] += int64(bytes)
}

// Merge folds other into c.
func (c *Counters) Merge(other *Counters) {
	for i := 0; i < NumPolicies; i++ {
		c.Ops[i] += other.Ops[i]
		c.Bytes[i] += other.Bytes[i]
	}
	c.Fences += other.Fences
	c.Batches += other.Batches
	c.BatchOps += other.BatchOps
}

// Total returns the op and byte counts summed across policies.
func (c *Counters) Total() (ops, bytes int64) {
	for i := 0; i < NumPolicies; i++ {
		ops += c.Ops[i]
		bytes += c.Bytes[i]
	}
	return ops, bytes
}

// Metrics writes the non-zero counters into a harness metrics map under
// pmem_<policy>_{ops,bytes} keys, plus pmem_fences.
func (c *Counters) Metrics(m map[string]float64) {
	for i := 0; i < NumPolicies; i++ {
		if c.Ops[i] == 0 && c.Bytes[i] == 0 {
			continue
		}
		slug := Policy(i).slug()
		m["pmem_"+slug+"_ops"] = float64(c.Ops[i])
		m["pmem_"+slug+"_bytes"] = float64(c.Bytes[i])
	}
	if c.Fences > 0 {
		m["pmem_fences"] = float64(c.Fences)
	}
	if c.BatchOps > 0 {
		m["pmem_batches"] = float64(c.Batches)
		m["pmem_batch_ops"] = float64(c.BatchOps)
		// Batch commits issue exactly one fence each, so Batches IS the
		// batch path's fence count: the ratio stays the batch path's
		// amortization even when the same persister also issued unbatched
		// fenced persists (which Fences would fold in).
		m["pmem_fence_per_op"] = float64(c.Batches) / float64(c.BatchOps)
	}
}

// Gauges streams the cumulative counter totals into add — the timeline
// sampler's snapshot shape. Unlike Metrics (which gates keys on activity
// for byte-stable end-of-run metric maps), Gauges emits a FIXED set of
// names on every call so timeline columns are stable across samples:
// successive snapshots difference into per-interval fence and payload
// rates.
func (c *Counters) Gauges(add func(name string, v float64)) {
	ops, bytes := c.Total()
	add("pmem_ops", float64(ops))
	add("pmem_bytes", float64(bytes))
	add("pmem_fences", float64(c.Fences))
	add("pmem_batches", float64(c.Batches))
	add("pmem_batch_ops", float64(c.BatchOps))
}
