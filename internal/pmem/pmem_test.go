package pmem

import (
	"bytes"
	"testing"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

func testPlatform(t testing.TB) (*platform.Platform, *platform.Namespace) {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	t.Cleanup(p.Close)
	ns, err := p.Optane("pmem", 0, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	return p, ns
}

func pattern(seed uint64, n int) []byte {
	r := sim.NewRNG(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

// Every policy must persist byte-identical contents: after a crash, the
// durable bytes equal what was written, for aligned and unaligned ranges.
func TestPolicyEquivalentContents(t *testing.T) {
	type write struct {
		off  int64
		size int
	}
	writes := []write{{0, 64}, {64, 8}, {100, 200}, {4096, 1024}, {8191, 513}, {65536, 4096}}
	for _, pol := range Policies() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			p, ns := testPlatform(t)
			reg := Whole(ns)
			w := NewPersister(pol)
			var bufs [][]byte
			p.Go("w", 0, func(ctx *platform.MemCtx) {
				for i, wr := range writes {
					b := pattern(uint64(i)*977+3, wr.size)
					bufs = append(bufs, b)
					w.Persist(ctx, reg, wr.off, wr.size, b)
				}
			})
			p.Run()
			p.Crash()
			for i, wr := range writes {
				got := make([]byte, wr.size)
				reg.ReadDurable(wr.off, got)
				if !bytes.Equal(got, bufs[i]) {
					t.Fatalf("%s: write %d [%d,+%d) not durable", pol, i, wr.off, wr.size)
				}
			}
			ops, bs := w.C.Total()
			if ops != int64(len(writes)) {
				t.Errorf("counted %d ops, want %d", ops, len(writes))
			}
			var want int64
			for _, wr := range writes {
				want += int64(wr.size)
			}
			if bs != want {
				t.Errorf("counted %d bytes, want %d", bs, want)
			}
			if w.C.Fences != int64(len(writes)) {
				t.Errorf("counted %d fences, want %d", w.C.Fences, len(writes))
			}
		})
	}
}

// The write-then-flush-later split (POSIX write/fsync shape) must also be
// durable under every cached-store policy — including Auto, which must
// resolve Flush to the cached-store branch at any size (the staged bytes
// sit dirty in the cache; a size-based no-op would lose them).
func TestFlushSplitDurable(t *testing.T) {
	for _, pol := range []Policy{StoreFlush, StoreFlushOpt, CLFlush, Auto} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			p, ns := testPlatform(t)
			reg := Whole(ns)
			w := NewPersister(pol)
			data := pattern(9, 300)
			p.Go("w", 0, func(ctx *platform.MemCtx) {
				reg.Store(ctx, 128, len(data), data)
				w.Flush(ctx, reg, 128, len(data))
				w.Fence(ctx)
			})
			p.Run()
			p.Crash()
			got := make([]byte, len(data))
			reg.ReadDurable(128, got)
			if !bytes.Equal(got, data) {
				t.Fatalf("%s: flushed range not durable", pol)
			}
		})
	}
}

func TestAutoEffective(t *testing.T) {
	w := NewPersister(Auto)
	if got := w.Effective(AutoThreshold - 1); got != StoreFlush {
		t.Errorf("below threshold: %v", got)
	}
	if got := w.Effective(AutoThreshold); got != NTStream {
		t.Errorf("at threshold: %v", got)
	}
	if got := NewPersister(CLFlush).Effective(8); got != CLFlush {
		t.Errorf("concrete policy must not resolve: %v", got)
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, pol := range Policies() {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("round-trip %v: %v, %v", pol, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy must error")
	}
}

func TestRegionBounds(t *testing.T) {
	p, ns := testPlatform(t)
	if _, err := NewRegion(ns, -1, 10); err == nil {
		t.Error("negative base accepted")
	}
	if _, err := NewRegion(ns, 0, ns.Size+1); err == nil {
		t.Error("oversized region accepted")
	}
	reg, err := NewRegion(ns, 4096, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Sub(0, 8193); err == nil {
		t.Error("oversized subregion accepted")
	}
	sub, err := reg.Sub(1024, 512)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Base() != 4096+1024 || sub.Size() != 512 {
		t.Errorf("sub window = [%d,+%d)", sub.Base(), sub.Size())
	}
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: out-of-region access did not panic", name)
			}
		}()
		fn()
	}
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		expectPanic("store-past-end", func() { reg.Store(ctx, 8190, 3, nil) })
		expectPanic("nt-negative", func() { reg.NTStore(ctx, -1, 2, nil) })
		expectPanic("load-past-end", func() { reg.Load(ctx, 8192, 1) })
		expectPanic("readdurable", func() { reg.ReadDurable(8000, make([]byte, 200)) })
		// An in-bounds region access near the end must NOT panic even
		// though the namespace extends further.
		reg.Store(ctx, 8128, 64, nil)
		reg.CLWB(ctx, 8128, 64)
		reg.SFence(ctx)
	})
	p.Run()
}

func TestAppenderWrapAndScratch(t *testing.T) {
	p, ns := testPlatform(t)
	reg, err := NewRegion(ns, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAppender(reg, NewPersister(NTStream))
	var offs []int64
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		for i := 0; i < 5; i++ {
			rec := a.Scratch(300)
			for j := range rec {
				rec[j] = byte(i)
			}
			off, err := a.Append(ctx, rec)
			if err != nil {
				t.Error(err)
				return
			}
			offs = append(offs, off)
		}
		if _, err := a.Append(ctx, make([]byte, 2048)); err == nil {
			t.Error("oversized record accepted")
		}
	})
	p.Run()
	// 1024/300: records at 0, 300, 600, then wrap to 0, 300.
	want := []int64{0, 300, 600, 0, 300}
	for i, off := range offs {
		if off != want[i] {
			t.Fatalf("append %d at %d, want %d", i, off, want[i])
		}
	}
	if a.Wraps() != 1 {
		t.Errorf("wraps = %d, want 1", a.Wraps())
	}
	p.Crash()
	// The last full write of each surviving slot: slot 0 holds record 3,
	// slot 300 holds record 4, slot 600 holds record 2.
	for _, c := range []struct {
		off  int64
		want byte
	}{{0, 3}, {300, 4}, {600, 2}} {
		got := make([]byte, 300)
		reg.ReadDurable(c.off, got)
		for _, b := range got {
			if b != c.want {
				t.Fatalf("slot %d byte = %d, want %d", c.off, b, c.want)
			}
		}
	}
}

// Chunked and unchunked copies must persist identical contents in
// identical simulated time under NTStream (chunk boundaries are
// line-aligned, so the posted line sequence is the same).
func TestCopierChunkEquivalence(t *testing.T) {
	run := func(chunk int, off int64) (sim.Time, []byte) {
		p, ns := testPlatform(t)
		reg := Whole(ns)
		c := NewCopier(NewPersister(NTStream), chunk)
		data := pattern(77, 10000)
		var elapsed sim.Time
		p.Go("t", 0, func(ctx *platform.MemCtx) {
			start := ctx.Proc().Now()
			c.Persist(ctx, reg, off, data)
			elapsed = ctx.Proc().Now() - start
		})
		p.Run()
		p.Crash()
		got := make([]byte, len(data))
		reg.ReadDurable(off, got)
		return elapsed, got
	}
	for _, off := range []int64{0, 24} { // aligned and unaligned starts
		t0, d0 := run(0, off)
		for _, chunk := range []int{256, 1000, 4096} {
			tc, dc := run(chunk, off)
			if !bytes.Equal(d0, dc) {
				t.Fatalf("chunk %d @%d: contents differ", chunk, off)
			}
			if t0 != tc {
				t.Fatalf("chunk %d @%d: %v != unchunked %v", chunk, off, tc, t0)
			}
		}
	}
}
