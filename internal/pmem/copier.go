package pmem

import (
	"optanestudy/internal/mem"
	"optanestudy/internal/platform"
)

// Copier persists bulk buffers (memtable flushes, SST installs, page
// copies) through a Persister, optionally splitting the transfer into
// cache-line-aligned chunks. Chunk boundaries always fall on 64 B line
// boundaries, so a chunked non-temporal stream posts exactly the same
// per-line sequence as an unchunked one — chunking changes where issue
// costs are charged only for the cached-store policies, which interleave
// store and flush passes per chunk.
type Copier struct {
	w *Persister
	// chunk is the per-Write byte bound, rounded down to a line multiple;
	// 0 means unchunked.
	chunk int64
}

// NewCopier makes a copier over w. chunk bounds the bytes per underlying
// Write call (0 = whole buffer at once).
func NewCopier(w *Persister, chunk int) *Copier {
	c := int64(chunk) &^ (mem.CacheLine - 1)
	return &Copier{w: w, chunk: c}
}

// Persister returns the copier's policy object.
func (c *Copier) Persister() *Persister { return c.w }

// Write stages the buffer at off without fencing.
func (c *Copier) Write(ctx *platform.MemCtx, r Region, off int64, data []byte) {
	n := int64(len(data))
	if n == 0 {
		return
	}
	if c.chunk <= 0 || n <= c.chunk {
		c.w.Write(ctx, r, off, len(data), data)
		return
	}
	end := off + n
	cur := off
	for cur < end {
		// Each chunk ends on a line boundary (the first chunk may be short
		// when off is unaligned), so per-line write segmentation matches an
		// unchunked transfer.
		next := mem.LineAddr(cur) + c.chunk
		if next <= cur {
			next = mem.LineAddr(cur) + c.chunk + mem.CacheLine
		}
		if next > end {
			next = end
		}
		c.w.Write(ctx, r, cur, int(next-cur), data[cur-off:next-off])
		cur = next
	}
}

// Persist is Write followed by one fence for the whole transfer.
func (c *Copier) Persist(ctx *platform.MemCtx, r Region, off int64, data []byte) {
	c.Write(ctx, r, off, data)
	c.w.Fence(ctx)
}
