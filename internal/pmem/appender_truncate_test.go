package pmem

import (
	"testing"

	"optanestudy/internal/platform"
)

// Truncate must start a genuinely fresh recovery era: every byte of the
// old stream durably zeroed, head/wraps/sequence rewound, and a new
// stream's replay must see ONLY new-era batches. The whole-prefix erase
// matters: a new era writing fewer bytes than the old one would
// otherwise run its recovery walk off its own tail and straight into a
// stale old-era batch whose sequence, count and CRC still verify.
func TestTruncateFreshEra(t *testing.T) {
	p, ns := testPlatform(t)
	reg, err := NewRegion(ns, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	w := NewPersister(NTStream)
	a := NewAppender(reg, w)
	var newRecs [][]byte
	p.Go("w", 0, func(ctx *platform.MemCtx) {
		// Old era: three committed batches.
		for b := 0; b < 3; b++ {
			a.Begin()
			for i := 0; i < 2; i++ {
				if _, err := a.Add(ctx, pattern(uint64(b*7+i), 120)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := a.Commit(ctx); err != nil {
				t.Error(err)
				return
			}
		}
		fences := w.C.Fences
		if err := a.Truncate(ctx); err != nil {
			t.Error(err)
			return
		}
		if w.C.Fences != fences+1 {
			t.Errorf("truncate issued %d fences, want 1", w.C.Fences-fences)
		}
		if a.Head() != 0 || a.Wraps() != 0 {
			t.Errorf("post-truncate head/wraps = %d/%d, want 0/0", a.Head(), a.Wraps())
		}
		// New era: ONE batch, shorter than the old stream. Its recovery
		// walk must stop at its own tail, not resurrect old-era batches.
		a.Begin()
		if got := a.BatchStart(); got != 0 {
			t.Errorf("post-truncate batch start = %d, want 0", got)
		}
		rec := pattern(99, 120)
		newRecs = append(newRecs, rec)
		if _, err := a.Add(ctx, rec); err != nil {
			t.Error(err)
			return
		}
		if err := a.Commit(ctx); err != nil {
			t.Error(err)
		}
	})
	p.Run()
	p.Crash()
	var got [][]byte
	batches, n := RecoverBatches(reg, func(rec []byte) {
		got = append(got, append([]byte(nil), rec...))
	})
	if batches != 1 || n != 1 {
		t.Fatalf("recovered %d batches / %d records after truncate, want 1 / 1 (stale era resurrected?)", batches, n)
	}
	if string(got[0]) != string(newRecs[0]) {
		t.Fatal("recovered record is not the new era's")
	}
}

// An empty truncate (nothing ever written) must not write or fence, and
// truncating a wrapped stream must rewind the wrap count so the next
// era's batches place like a fresh log's.
func TestTruncateWrapAndEmpty(t *testing.T) {
	p, ns := testPlatform(t)
	reg, err := NewRegion(ns, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	w := NewPersister(NTStream)
	a := NewAppender(reg, w)
	p.Go("w", 0, func(ctx *platform.MemCtx) {
		if err := a.Truncate(ctx); err != nil {
			t.Error(err)
			return
		}
		if w.C.Fences != 0 {
			t.Errorf("empty truncate fenced (%d fences)", w.C.Fences)
		}
		// Three 512-byte batches in a 1 KiB region force a wrap.
		for b := 0; b < 3; b++ {
			a.Begin()
			if _, err := a.Add(ctx, pattern(uint64(b), 400)); err != nil {
				t.Error(err)
				return
			}
			if err := a.Commit(ctx); err != nil {
				t.Error(err)
				return
			}
		}
		if a.Wraps() == 0 {
			t.Error("stream never wrapped; geometry assumption broken")
		}
		if err := a.Truncate(ctx); err != nil {
			t.Error(err)
			return
		}
		if a.Head() != 0 || a.Wraps() != 0 {
			t.Errorf("post-truncate head/wraps = %d/%d, want 0/0", a.Head(), a.Wraps())
		}
		// The next era recovers cleanly from sequence 1.
		a.Begin()
		if _, err := a.Add(ctx, pattern(42, 100)); err != nil {
			t.Error(err)
			return
		}
		if err := a.Commit(ctx); err != nil {
			t.Error(err)
		}
	})
	p.Run()
	p.Crash()
	if batches, n := RecoverBatches(reg, func([]byte) {}); batches != 1 || n != 1 {
		t.Fatalf("post-wrap truncate era recovered %d/%d, want 1/1", batches, n)
	}
}

// Truncating with a batch open must error (the staged records would have
// no home once the sequence rewinds); Reset must NOT erase — its stale
// bytes stay readable, which is exactly why batched recovery streams use
// Truncate.
func TestTruncateOpenBatchAndResetContrast(t *testing.T) {
	p, ns := testPlatform(t)
	reg, err := NewRegion(ns, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAppender(reg, NewPersister(NTStream))
	rec := pattern(7, 64)
	p.Go("w", 0, func(ctx *platform.MemCtx) {
		a.Begin()
		if _, err := a.Add(ctx, rec); err != nil {
			t.Error(err)
			return
		}
		if err := a.Truncate(ctx); err == nil {
			t.Error("Truncate inside an open batch accepted")
		}
		if err := a.Commit(ctx); err != nil {
			t.Error(err)
			return
		}
		a.Reset()
		got := make([]byte, len(rec))
		reg.ReadDurable(4, got) // payload sits after its 4-byte frame
		if string(got) != string(rec) {
			t.Error("Reset erased the stream; it must only rewind the head")
		}
		if err := a.Truncate(ctx); err != nil {
			t.Error(err)
			return
		}
		reg.ReadDurable(4, got)
		for i, b := range got {
			if b != 0 {
				t.Errorf("byte %d still %#x after Truncate", i, b)
				break
			}
		}
	})
	p.Run()
}
