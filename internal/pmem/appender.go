package pmem

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"optanestudy/internal/platform"
)

// Appender is a sequential durable log stream over a region: records are
// persisted back-to-back at a moving head, and a record that would cross
// the region end wraps to the start (the stream restart is rare and costs
// one combining miss). This is the write-behind-logging shape the paper's
// threads-per-DIMM study is built on — one appender per worker is one
// sequential write stream.
//
// Beyond the one-fence-per-record Append, the appender supports group
// commit (Begin / Add / Commit): records are staged in a volatile DRAM
// mirror (a memcpy, negligible next to media time and not costed) and the
// whole batch is streamed in ONE cache-line-aligned write at Commit,
// sealed by ONE fence. Fence-bearing persists are the unit of cost on
// Optane (every sfence closes partially-filled XPLines and stalls on the
// WPQ ack), so amortizing the fence across a batch is the single biggest
// serving-path win the paper's model predicts.
//
// Deferring media traffic to Commit is not just bookkeeping: streaming the
// batch as one dense aligned burst keeps the XPBuffer combining perfectly —
// every 256 B XPLine fills in four back-to-back posts and streams to media
// whole (EWR ≈ 1). Writing records to media as they arrive instead leaves
// each batch's tail as a partially-filled XPLine that lingers across the
// inter-batch pause; under write-stream pressure the controller closes
// those partials early into read-modify-write media ops, and the fence
// amortization is eaten by media write amplification (the Section 5.3
// effect). For the same reason batches are placed on XPLine boundaries
// and zero-padded so that frames, padding and the embedded commit line
// together fill whole XPLines: the stream never leaves a torn XPLine
// behind, trading a little padding bandwidth for EWR ≈ 1 — the paper's
// 256 B-granularity best practice applied to group commit.
//
// Batched records are framed for recovery: each record is prefixed with a
// 4-byte length, and Commit seals the group with a 64-byte commit record
// (the last line of the batch's final XPLine) carrying a magic, the batch
// sequence number, the record count, the unpadded payload size and a CRC
// over the frames-plus-padding prefix as streamed.
// RecoverBatches replays exactly the fully-committed prefix: a batch whose
// payload is torn (some lines durable, some not — the pre-fence crash
// shape under non-temporal staging) fails its CRC and is discarded along
// with everything after it.
//
// The appender carries a reusable scratch buffer so record assembly on a
// latency path does not allocate per call; the batch path reuses its
// mirror the same way, so steady-state group commit is allocation-free.
type Appender struct {
	r       Region
	w       *Persister
	head    int64
	wraps   int64
	hiWater int64 // farthest byte ever written (the Truncate erase bound)
	scratch []byte

	// Group-commit state. mirror holds the open batch's framed payload,
	// staged volatile until Commit streams it; commit is the commit-record
	// image.
	inBatch    bool
	seq        uint64
	batchStart int64
	batchCount int
	mirror     []byte
	commit     [batchCommitSize]byte

	// CrashHook, when set, is called at the commit protocol's stages
	// ("staged" before anything is written, "partial" midway through the
	// payload stream, "pre-commit" before the commit record is written,
	// "pre-fence" after it is written but before the fence) so crash tests
	// can kill the thread mid-protocol. Nil in production use.
	CrashHook func(stage string)
}

// Batch framing constants. The commit record is one cache line, embedded
// as the final 64 bytes of the batch's last XPLine:
//
//	magic(4) | seq(8) | count(4) | payload(4) | crc(4) | pad(40)
//
// where payload is the framed batch size in bytes before padding and crc
// is the IEEE CRC-32 of the frames-plus-padding prefix as streamed. The
// magic doubles as a length-field sentinel: record lengths are bounded by
// the region size, so a real record can never alias it.
const (
	batchCommitMagic = 0xB47CC017
	batchCommitSize  = 64
	// batchAlign is the media write unit (the 256 B XPLine): batches are
	// placed and sized in whole XPLines so the commit stream never leaves
	// a partially-written XPLine behind.
	batchAlign = 256
)

// alignXP rounds n up to the next XPLine boundary.
func alignXP(n int64) int64 { return (n + batchAlign - 1) &^ (batchAlign - 1) }

// NewAppender makes an appender over r persisting with w (NTStream is the
// natural policy for a sequential log stream; any policy works).
func NewAppender(r Region, w *Persister) *Appender {
	return &Appender{r: r, w: w, seq: 1}
}

// Scratch returns a reused buffer of n bytes for record assembly. The
// buffer is valid until the next Scratch call; its contents are
// unspecified (callers overwrite every byte of their record).
func (a *Appender) Scratch(n int) []byte {
	if cap(a.scratch) < n {
		a.scratch = make([]byte, n)
	}
	return a.scratch[:n]
}

// Append durably writes rec at the head, wrapping first if the record
// would cross the region end, and returns the record's region offset. A
// record larger than the whole region is an error, as is appending while
// a group commit is open (the batch frame must stay contiguous).
func (a *Appender) Append(ctx *platform.MemCtx, rec []byte) (int64, error) {
	if a.inBatch {
		return 0, fmt.Errorf("pmem: Append inside an open batch (commit or abandon it first)")
	}
	n := int64(len(rec))
	if n > a.r.Size() {
		return 0, fmt.Errorf("pmem: %d-byte record exceeds the %d-byte append region", n, a.r.Size())
	}
	head := a.head
	if head+n > a.r.Size() {
		head = 0
		a.wraps++
	}
	a.w.Persist(ctx, a.r, head, len(rec), rec)
	a.head = head + n
	if a.head > a.hiWater {
		a.hiWater = a.head
	}
	return head, nil
}

// Begin opens a group commit. Records staged with Add are held volatile
// and written as one stream at Commit, sharing ONE fence. The batch is
// placed at the head rounded up to an XPLine boundary so every batch
// stream starts media-aligned.
func (a *Appender) Begin() {
	if a.inBatch {
		panic("pmem: Begin with a batch already open")
	}
	a.inBatch = true
	a.batchStart = alignXP(a.head)
	a.batchCount = 0
	a.mirror = a.mirror[:0]
}

// Add stages rec as the next record of the open batch: a 4-byte length
// frame plus the payload, appended to the volatile batch mirror. Nothing
// reaches the media until Commit streams the whole batch. Returns the
// payload's region offset, provisional until Commit: a batch that does
// not fit at the current head wraps as a whole to the region start,
// shifting every staged record down by the batch's start offset.
//
// Callers that record the returned offsets can rebase them after Commit
// by the change in BatchStart between staging and commit.
//
// Empty records are rejected — a zero length is the padding sentinel the
// recovery walk uses to find the commit line.
func (a *Appender) Add(ctx *platform.MemCtx, rec []byte) (int64, error) {
	if !a.inBatch {
		return 0, fmt.Errorf("pmem: Add without Begin")
	}
	if len(rec) == 0 {
		return 0, fmt.Errorf("pmem: empty record in batch")
	}
	need := alignXP(int64(len(a.mirror)) + 4 + int64(len(rec)) + batchCommitSize)
	if need > a.r.Size() {
		return 0, fmt.Errorf("pmem: %d-byte batch exceeds the %d-byte append region", need, a.r.Size())
	}
	off := a.batchStart + int64(len(a.mirror)) + 4
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	a.mirror = append(a.mirror, hdr[:]...)
	a.mirror = append(a.mirror, rec...)
	a.batchCount++
	return off, nil
}

// Commit seals the open batch: the staged frames are zero-padded so that
// frames, padding and the 64-byte commit record (sequence, count, payload
// size, CRC) together fill whole XPLines, the batch streams to the media
// as ONE aligned write, and ONE fence makes the whole group durable. A
// batch that would cross the region end wraps whole to the region start
// before streaming. An empty batch (no Adds) commits to nothing: no
// write, no commit record, no fence.
func (a *Appender) Commit(ctx *platform.MemCtx) error {
	if !a.inBatch {
		return fmt.Errorf("pmem: Commit without Begin")
	}
	a.inBatch = false
	if a.batchCount == 0 {
		return nil
	}
	framed := int64(len(a.mirror))
	total := alignXP(framed + batchCommitSize)
	for int64(len(a.mirror)) < total-batchCommitSize {
		a.mirror = append(a.mirror, 0)
	}
	c := a.commit[:]
	for i := range c {
		c[i] = 0
	}
	binary.LittleEndian.PutUint32(c[0:], batchCommitMagic)
	binary.LittleEndian.PutUint64(c[4:], a.seq)
	binary.LittleEndian.PutUint32(c[12:], uint32(a.batchCount))
	binary.LittleEndian.PutUint32(c[16:], uint32(framed))
	binary.LittleEndian.PutUint32(c[20:], crc32.ChecksumIEEE(a.mirror))
	a.mirror = append(a.mirror, c...)
	if a.batchStart+total > a.r.Size() {
		a.batchStart = 0
		a.wraps++
	}
	if a.CrashHook == nil {
		a.w.Write(ctx, a.r, a.batchStart, int(total), a.mirror)
	} else {
		// Split the stream at the crash stages: "partial" models a torn
		// payload, "pre-commit" a payload without its commit line.
		a.CrashHook("staged")
		half := ((total - batchCommitSize) / 2) &^ 63
		if half > 0 {
			a.w.Write(ctx, a.r, a.batchStart, int(half), a.mirror[:half])
		}
		a.CrashHook("partial")
		a.w.Write(ctx, a.r, a.batchStart+half, int(total-batchCommitSize-half), a.mirror[half:total-batchCommitSize])
		a.CrashHook("pre-commit")
		a.w.Write(ctx, a.r, a.batchStart+total-batchCommitSize, batchCommitSize, a.mirror[total-batchCommitSize:])
		a.CrashHook("pre-fence")
	}
	a.w.Fence(ctx)
	a.head = a.batchStart + total
	if a.head > a.hiWater {
		a.hiWater = a.head
	}
	a.w.C.Batches++
	a.w.C.BatchOps += int64(a.batchCount)
	a.seq++
	return nil
}

// BatchStart returns the region offset the open batch is staged at
// (provisional — Commit may wrap the whole batch to the region start) or,
// once Commit returns, the offset the batch actually streamed to. Callers
// that recorded Add's provisional offsets rebase them by the difference
// between the post- and pre-commit values.
func (a *Appender) BatchStart() int64 { return a.batchStart }

// BatchLen returns how many records the open batch holds (0 when no
// batch is open).
func (a *Appender) BatchLen() int {
	if !a.inBatch {
		return 0
	}
	return a.batchCount
}

// RecoverBatches replays the committed prefix of a batched append stream:
// it walks record frames from the region start, locates each batch's
// commit line (the final 64 bytes of the batch's last XPLine, directly
// after the frames or one padding hop away), and on each commit record whose sequence,
// count, payload size and CRC all verify, delivers that batch's records
// to fn in append order. The walk stops at the first frame that does not
// verify — a torn payload, a missing or torn commit record, or a
// sequence break — so exactly the fully-committed prefix is replayed and
// any trailing in-flight batch is discarded. Returns the batch and
// record counts delivered.
//
// A batch whose zero padding is 1-3 bytes puts the padding and the commit
// record's magic inside the same 4-byte length-field read, so the zero
// sentinel can never match there. The walk handles the narrow gap by
// probing the commit line at its XPLine-aligned position directly; the
// probe is speculative — the same gap appears at record boundaries in the
// middle of longer batches — and falls back to the ordinary frame walk
// when the commit record does not verify.
//
// Recovery covers an unwrapped stream era: once the stream wraps, the
// overwritten region start no longer begins at sequence 1 and replay
// stops there (checkpoint-and-truncate before wrap is the caller's
// contract, as with any circular WAL).
func RecoverBatches(r Region, fn func(rec []byte)) (batches, recs int) {
	var (
		off      int64
		start    int64  // current batch's frame start
		expected uint64 = 1
		pend     [][2]int64
		hdr      [batchCommitSize]byte
	)
	for off+4 <= r.Size() {
		// Where the commit line would sit if off ended this batch's frames:
		// zero padding (possibly none) closes the batch's last XPLine, and
		// the commit record is that line's final 64 bytes.
		padEnd := start + alignXP(off-start+batchCommitSize) - batchCommitSize
		commitOff := int64(-1)
		speculative := false
		if padEnd-off < 4 {
			// Fewer than 4 bytes before the candidate commit line: a length
			// field cannot fit, and a batch ending here pads with 0-3 zero
			// bytes that straddle into the commit record's magic. Probe the
			// commit line directly — speculatively, because off may equally
			// be a record boundary mid-batch with frames continuing past
			// padEnd.
			commitOff = padEnd
			speculative = true
		} else {
			r.ReadDurable(off, hdr[:4])
			switch binary.LittleEndian.Uint32(hdr[:4]) {
			case batchCommitMagic:
				commitOff = off
			case 0:
				// Padding: the commit line closes the batch's last XPLine.
				commitOff = padEnd
			}
		}
		if commitOff >= 0 {
			ok := commitOff+batchCommitSize <= r.Size()
			if ok {
				r.ReadDurable(commitOff, hdr[:])
				seq := binary.LittleEndian.Uint64(hdr[4:])
				count := binary.LittleEndian.Uint32(hdr[12:])
				payload := binary.LittleEndian.Uint32(hdr[16:])
				ok = binary.LittleEndian.Uint32(hdr[:4]) == batchCommitMagic &&
					seq == expected && int(count) == len(pend) && int64(payload) == off-start
				if ok {
					crc := binary.LittleEndian.Uint32(hdr[20:])
					padded := make([]byte, commitOff-start)
					r.ReadDurable(start, padded)
					ok = crc32.ChecksumIEEE(padded) == crc
				}
			}
			if ok {
				for _, p := range pend {
					rec := make([]byte, p[1])
					r.ReadDurable(p[0], rec)
					fn(rec)
				}
				batches++
				recs += len(pend)
				pend = pend[:0]
				expected++
				off = commitOff + batchCommitSize
				start = off
				continue
			}
			if !speculative {
				// An explicit sentinel (zero length or magic) without a
				// valid commit record is the torn tail.
				break
			}
			// The speculative probe missed: off is an ordinary frame start.
			r.ReadDurable(off, hdr[:4])
		}
		n := int64(binary.LittleEndian.Uint32(hdr[:4]))
		if n == 0 || off+4+n+batchCommitSize > r.Size() {
			break
		}
		pend = append(pend, [2]int64{off + 4, n})
		off += 4 + n
	}
	return batches, recs
}

// Head returns the next append offset.
func (a *Appender) Head() int64 { return a.head }

// Wraps returns how many times the stream restarted at the region start.
func (a *Appender) Wraps() int64 { return a.wraps }

// Region returns the appender's backing region (replica promotion walks
// it with RecoverBatches).
func (a *Appender) Region() Region { return a.r }

// Persister returns the appender's policy object (for counter readout).
func (a *Appender) Persister() *Persister { return a.w }

// Reset rewinds the head without touching durable contents: the next
// Append overwrites the old stream in place. Stale bytes stay readable
// until overwritten, so a batched stream meant for recovery must use
// Truncate instead — RecoverBatches cannot tell a stale committed batch
// from a live one.
func (a *Appender) Reset() { a.head, a.wraps = 0, 0 }

// truncateChunk bounds the zeroing stream's write granularity.
const truncateChunk = 256 << 10

// Truncate durably erases the stream and rewinds it to a fresh log: every
// byte the appender ever wrote is zeroed with the persister's policy and
// ONE fence, and head, wrap count and batch sequence all reset. A rebuilt
// replica reuses its region through Truncate instead of reallocating.
//
// The whole written prefix is erased, not just the first frame: a new era
// writing same-shaped batches at the same offsets could otherwise run its
// recovery walk off the end of its own stream and straight into a stale
// old-era batch whose sequence, count and CRC still verify — replaying
// records that were never written in this era. Zeroing pays real media
// bandwidth (hiWater bytes of non-temporal stream on the log's DIMMs),
// which is exactly the rebuild cost the failover scenarios measure.
//
// Truncating with a batch open is an error — the staged records have no
// home once the sequence rewinds.
func (a *Appender) Truncate(ctx *platform.MemCtx) error {
	if a.inBatch {
		return fmt.Errorf("pmem: Truncate inside an open batch (commit or abandon it first)")
	}
	if a.hiWater > 0 {
		n := a.hiWater
		if n > truncateChunk {
			n = truncateChunk
		}
		zero := a.Scratch(int(n))
		for i := range zero {
			zero[i] = 0
		}
		for off := int64(0); off < a.hiWater; off += int64(len(zero)) {
			n := int64(len(zero))
			if off+n > a.hiWater {
				n = a.hiWater - off
			}
			a.w.Write(ctx, a.r, off, int(n), zero[:n])
		}
		a.w.Fence(ctx)
	}
	a.head, a.wraps, a.hiWater = 0, 0, 0
	a.seq = 1
	return nil
}
