package pmem

import (
	"fmt"

	"optanestudy/internal/platform"
)

// Appender is a sequential durable log stream over a region: records are
// persisted back-to-back at a moving head, and a record that would cross
// the region end wraps to the start (the stream restart is rare and costs
// one combining miss). This is the write-behind-logging shape the paper's
// threads-per-DIMM study is built on — one appender per worker is one
// sequential write stream.
//
// The appender carries a reusable scratch buffer so record assembly on a
// latency path does not allocate per call.
type Appender struct {
	r       Region
	w       *Persister
	head    int64
	wraps   int64
	scratch []byte
}

// NewAppender makes an appender over r persisting with w (NTStream is the
// natural policy for a sequential log stream; any policy works).
func NewAppender(r Region, w *Persister) *Appender {
	return &Appender{r: r, w: w}
}

// Scratch returns a reused buffer of n bytes for record assembly. The
// buffer is valid until the next Scratch call; its contents are
// unspecified (callers overwrite every byte of their record).
func (a *Appender) Scratch(n int) []byte {
	if cap(a.scratch) < n {
		a.scratch = make([]byte, n)
	}
	return a.scratch[:n]
}

// Append durably writes rec at the head, wrapping first if the record
// would cross the region end, and returns the record's region offset. A
// record larger than the whole region is an error.
func (a *Appender) Append(ctx *platform.MemCtx, rec []byte) (int64, error) {
	n := int64(len(rec))
	if n > a.r.Size() {
		return 0, fmt.Errorf("pmem: %d-byte record exceeds the %d-byte append region", n, a.r.Size())
	}
	head := a.head
	if head+n > a.r.Size() {
		head = 0
		a.wraps++
	}
	a.w.Persist(ctx, a.r, head, len(rec), rec)
	a.head = head + n
	return head, nil
}

// Head returns the next append offset.
func (a *Appender) Head() int64 { return a.head }

// Wraps returns how many times the stream restarted at the region start.
func (a *Appender) Wraps() int64 { return a.wraps }

// Persister returns the appender's policy object (for counter readout).
func (a *Appender) Persister() *Persister { return a.w }

// Reset rewinds the head without touching durable contents.
func (a *Appender) Reset() { a.head, a.wraps = 0, 0 }
