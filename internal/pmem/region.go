package pmem

import (
	"fmt"

	"optanestudy/internal/platform"
)

// Region is a bounds-checked window onto a namespace: [base, base+size) in
// namespace offsets. Every primitive operation takes region-relative
// offsets and panics (programmer error, like the platform's own range
// check) when an access would leave the window — so a software stack
// operating on a carved-out region cannot corrupt its neighbors, the
// failure mode behind PR 3's cross-namespace write-combining bug.
//
// Region is a small value type; copy it freely.
type Region struct {
	ns   *platform.Namespace
	base int64
	size int64
}

// NewRegion makes the window [base, base+size) of ns.
func NewRegion(ns *platform.Namespace, base, size int64) (Region, error) {
	if ns == nil {
		return Region{}, fmt.Errorf("pmem: nil namespace")
	}
	if base < 0 || size < 0 || base+size > ns.Size {
		return Region{}, fmt.Errorf("pmem: region [%d,+%d) outside namespace %q (size %d)",
			base, size, ns.Name, ns.Size)
	}
	return Region{ns: ns, base: base, size: size}, nil
}

// Whole returns the region covering all of ns.
func Whole(ns *platform.Namespace) Region {
	r, err := NewRegion(ns, 0, ns.Size)
	if err != nil {
		panic(err)
	}
	return r
}

// Sub carves the window [off, off+size) out of r.
func (r Region) Sub(off, size int64) (Region, error) {
	if off < 0 || size < 0 || off+size > r.size {
		return Region{}, fmt.Errorf("pmem: subregion [%d,+%d) outside region of %d bytes", off, size, r.size)
	}
	return Region{ns: r.ns, base: r.base + off, size: size}, nil
}

// Size returns the window length in bytes.
func (r Region) Size() int64 { return r.size }

// Base returns the window's namespace offset.
func (r Region) Base() int64 { return r.base }

// Namespace returns the backing namespace.
func (r Region) Namespace() *platform.Namespace { return r.ns }

func (r Region) check(off int64, size int) {
	if size < 0 || off < 0 || off+int64(size) > r.size {
		panic(fmt.Sprintf("pmem: access [%d,+%d) outside region [%d,+%d) of namespace %q",
			off, size, r.base, r.size, r.ns.Name))
	}
}

// ---- Bounds-checked primitive wrappers (region-relative offsets) ----

// Load synchronously reads size bytes (see MemCtx.Load).
func (r Region) Load(ctx *platform.MemCtx, off int64, size int) {
	r.check(off, size)
	ctx.Load(r.ns, r.base+off, size)
}

// LoadInto reads into buf (see MemCtx.LoadInto).
func (r Region) LoadInto(ctx *platform.MemCtx, off int64, buf []byte) {
	r.check(off, len(buf))
	ctx.LoadInto(r.ns, r.base+off, buf)
}

// LoadStream issues pipelined reads (see MemCtx.LoadStream).
func (r Region) LoadStream(ctx *platform.MemCtx, off int64, size int) {
	r.check(off, size)
	ctx.LoadStream(r.ns, r.base+off, size)
}

// Peek copies coherent contents without advancing time (see MemCtx.Peek).
func (r Region) Peek(ctx *platform.MemCtx, off int64, buf []byte) {
	r.check(off, len(buf))
	ctx.Peek(r.ns, r.base+off, buf)
}

// Store issues cached stores (see MemCtx.Store).
func (r Region) Store(ctx *platform.MemCtx, off int64, size int, data []byte) {
	r.check(off, size)
	ctx.Store(r.ns, r.base+off, size, data)
}

// NTStore issues non-temporal stores (see MemCtx.NTStore).
func (r Region) NTStore(ctx *platform.MemCtx, off int64, size int, data []byte) {
	r.check(off, size)
	ctx.NTStore(r.ns, r.base+off, size, data)
}

// CLWB writes back dirty lines without evicting.
func (r Region) CLWB(ctx *platform.MemCtx, off int64, size int) {
	r.check(off, size)
	ctx.CLWB(r.ns, r.base+off, size)
}

// CLFlushOpt writes back and evicts (unordered flush).
func (r Region) CLFlushOpt(ctx *platform.MemCtx, off int64, size int) {
	r.check(off, size)
	ctx.CLFlushOpt(r.ns, r.base+off, size)
}

// CLFlush writes back and evicts with the legacy serializing cost.
func (r Region) CLFlush(ctx *platform.MemCtx, off int64, size int) {
	r.check(off, size)
	ctx.CLFlush(r.ns, r.base+off, size)
}

// SFence fences the owning thread (see MemCtx.SFence).
func (r Region) SFence(ctx *platform.MemCtx) { ctx.SFence() }

// ReadDurable reads the ADR-durable bytes (recovery path, untimed).
func (r Region) ReadDurable(off int64, buf []byte) {
	r.check(off, len(buf))
	r.ns.ReadDurable(r.base+off, buf)
}

// WriteDurable writes durable bytes directly (mkfs-style, untimed).
func (r Region) WriteDurable(off int64, data []byte) {
	r.check(off, len(data))
	r.ns.WriteDurable(r.base+off, data)
}
