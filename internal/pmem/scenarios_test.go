package pmem

import (
	"fmt"
	"math"
	"testing"

	"optanestudy/internal/harness"
)

// policyCurve runs one pmem/policy scenario and returns ns/record per size.
func policyCurve(t *testing.T, policy string, sizes []int) map[int]float64 {
	t.Helper()
	csv := ""
	for i, s := range sizes {
		if i > 0 {
			csv += ","
		}
		csv += fmt.Sprint(s)
	}
	res, err := harness.Run(harness.Spec{
		Scenario: "pmem/policy/" + policy,
		Params:   map[string]string{"sizes": csv},
		Ops:      200,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]float64, len(sizes))
	for _, s := range sizes {
		v, ok := res.Trials[0].Metrics[fmt.Sprintf("ns@%d", s)]
		if !ok || v <= 0 {
			t.Fatalf("%s: missing ns@%d metric", policy, s)
		}
		out[s] = v
	}
	return out
}

// TestPolicyCrossoverShape pins the paper's small-store guidance in the
// pmem/policy family: store+clwb wins below the 256 B XPLine granularity,
// non-temporal streams win at and above it, and clflush is worst at every
// size (Sections 2.1, 5.1 and 5.2).
func TestPolicyCrossoverShape(t *testing.T) {
	sizes := []int{64, 128, 256, 512, 1024, 4096}
	nt := policyCurve(t, "nt", sizes)
	sf := policyCurve(t, "store-flush", sizes)
	cf := policyCurve(t, "clflush", sizes)
	for _, s := range sizes {
		if s < AutoThreshold {
			if sf[s] >= nt[s] {
				t.Errorf("%d B: store+clwb (%.1f ns) must beat ntstore (%.1f ns) below the XPLine", s, sf[s], nt[s])
			}
		} else {
			if nt[s] >= sf[s] {
				t.Errorf("%d B: ntstore (%.1f ns) must beat store+clwb (%.1f ns) at/above the XPLine", s, nt[s], sf[s])
			}
		}
		if cf[s] <= nt[s] || cf[s] <= sf[s] {
			t.Errorf("%d B: clflush (%.1f ns) must be worst (nt %.1f, store+clwb %.1f)", s, cf[s], nt[s], sf[s])
		}
	}
}

// TestAutoTracksWinner: the Auto policy must reproduce the winning
// concrete policy exactly at every size — the measured loop is RNG-free,
// so the envelope match is exact, not approximate.
func TestAutoTracksWinner(t *testing.T) {
	sizes := []int{64, 128, 256, 1024, 4096}
	nt := policyCurve(t, "nt", sizes)
	sf := policyCurve(t, "store-flush", sizes)
	auto := policyCurve(t, "auto", sizes)
	for _, s := range sizes {
		want := nt[s]
		if s < AutoThreshold {
			want = sf[s]
		}
		if math.Abs(auto[s]-want) > 1e-9 {
			t.Errorf("%d B: auto = %.3f ns, want %.3f (the %s branch)", s, auto[s], want,
				map[bool]string{true: "store-flush", false: "nt"}[s < AutoThreshold])
		}
	}
}
