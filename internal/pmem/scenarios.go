package pmem

import (
	"fmt"
	"strconv"
	"strings"

	"optanestudy/internal/harness"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

// Harness scenarios: the pmem/policy family sweeps persist policy × access
// size × media. Each trial runs the transaction-shaped persist loop —
// `batch` record writes through one Persister followed by a single fence,
// over a cache-resident region that is pre-warmed once (the paper warms
// lines before its store+clwb measurements, lattester.IdleLatency does the
// same) — for every access size on the grid, and reports per-size latency
// and bandwidth plus the persister's per-policy op/byte counters.
//
// The shape this family pins (scenarios_test.go) is the paper's
// small-store guidance: store+clwb wins below the 256 B XPLine
// granularity, non-temporal streams win at and above it, and clflush is
// worst throughout.
func init() {
	for _, pol := range Policies() {
		pol := pol
		harness.Register(harness.Scenario{
			Name: "pmem/policy/" + pol.String(),
			Doc:  fmt.Sprintf("persist latency/bandwidth across access sizes under the %s policy", pol),
			Defaults: harness.Defaults{
				Threads: 1, Ops: 400, Seed: 41,
				Params: map[string]string{"policy": pol.String()},
			},
			Run: runPolicyScenario,
		})
	}
}

func runPolicyScenario(spec harness.Spec) (harness.Trial, error) {
	r := harness.NewParamReader(spec.Params)
	polName := r.Str("policy", "auto")
	media := r.Str("media", "optane")
	sizesCSV := r.Str("sizes", "64,128,256,512,1024,2048,4096")
	batch := r.Int("batch", 4)
	regionBytes := r.Int64("region", 256<<10)
	warm := r.Bool("warm", true)
	if err := r.Err(); err != nil {
		return harness.Trial{}, err
	}
	pol, err := ParsePolicy(polName)
	if err != nil {
		return harness.Trial{}, err
	}
	var sizes []int
	for _, s := range strings.Split(sizesCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return harness.Trial{}, fmt.Errorf("param sizes=%q: want comma-separated positive ints", sizesCSV)
		}
		sizes = append(sizes, n)
	}
	if batch < 1 || regionBytes < 4096 {
		return harness.Trial{}, fmt.Errorf("pmem: bad batch (%d) or region (%d)", batch, regionBytes)
	}
	for _, s := range sizes {
		if int64(s) > regionBytes {
			return harness.Trial{}, fmt.Errorf("pmem: access size %d exceeds region %d", s, regionBytes)
		}
	}

	cfg := platform.DefaultConfig()
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	defer p.Close()
	total := regionBytes * int64(len(sizes))
	var ns *platform.Namespace
	switch media {
	case "optane":
		ns, err = p.Optane("policy", 0, total)
	case "optane-ni":
		ns, err = p.OptaneNI("policy", 0, 0, total)
	case "dram":
		ns, err = p.DRAM("policy", 0, total)
	default:
		return harness.Trial{}, fmt.Errorf("unknown media %q (want optane, optane-ni or dram)", media)
	}
	if err != nil {
		return harness.Trial{}, err
	}

	tr := harness.Trial{Metrics: make(map[string]float64)}
	var counters Counters
	whole := Whole(ns)
	for i, size := range sizes {
		reg, err := whole.Sub(int64(i)*regionBytes, regionBytes)
		if err != nil {
			return harness.Trial{}, err
		}
		pers := NewPersister(pol)
		var window sim.Time
		// One fresh proc per size: each grid point starts from a clean
		// thread state (WPQ windows, load pipeline).
		p.Go(fmt.Sprintf("policy-%d", size), spec.Socket, func(ctx *platform.MemCtx) {
			if warm {
				for off := int64(0); off < reg.Size(); off += 64 {
					reg.Load(ctx, off, 8)
				}
			}
			var off int64
			start := ctx.Proc().Now()
			for op := 0; op < spec.Ops; op++ {
				for j := 0; j < batch; j++ {
					if off+int64(size) > reg.Size() {
						off = 0
					}
					pers.Write(ctx, reg, off, size, nil)
					off += int64(size)
				}
				pers.Fence(ctx)
			}
			window = ctx.Proc().Now() - start
		})
		p.Run()
		records := int64(spec.Ops) * int64(batch)
		bytes := records * int64(size)
		tr.Ops += records
		tr.Bytes += bytes
		tr.Sim += window
		tr.Metrics[fmt.Sprintf("ns@%d", size)] = window.Nanoseconds() / float64(records)
		tr.Metrics[fmt.Sprintf("gbs@%d", size)] = float64(bytes) / window.Seconds() / 1e9
		counters.Merge(&pers.C)
	}
	counters.Metrics(tr.Metrics)
	return tr, nil
}
