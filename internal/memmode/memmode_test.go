package memmode

import (
	"bytes"
	"testing"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

func newMM(t testing.TB, nearSize, farSize int64) (*platform.Platform, *Memory) {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	m, err := New(p, "mm", 0, nearSize, farSize)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestMemoryModeRoundTrip(t *testing.T) {
	p, m := newMM(t, 1<<20, 16<<20)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		msg := []byte("memory mode is volatile far memory")
		m.Store(ctx, 12345, len(msg), msg)
		got := make([]byte, len(msg))
		m.Load(ctx, 12345, len(got), got)
		if !bytes.Equal(got, msg) {
			t.Errorf("got %q", got)
		}
	})
	p.Run()
}

func TestMemoryModeCacheHitsForHotSet(t *testing.T) {
	p, m := newMM(t, 1<<20, 64<<20)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		// Touch a 64 KB working set twice: second pass must hit.
		for pass := 0; pass < 2; pass++ {
			for off := int64(0); off < 64<<10; off += 64 {
				m.Load(ctx, off, 8, nil)
			}
		}
	})
	p.Run()
	hits, misses, _ := m.Stats()
	if hits < misses {
		t.Errorf("hot set: hits=%d misses=%d, want mostly hits", hits, misses)
	}
}

func TestMemoryModeConflictEviction(t *testing.T) {
	p, m := newMM(t, 4096, 1<<20) // tiny near memory: conflicts guaranteed
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		// Two far lines mapping to the same set (one full wrap apart).
		a := int64(0)
		b := m.sets * 64
		m.Store(ctx, a, 8, []byte("aaaaaaaa"))
		m.Store(ctx, b, 8, []byte("bbbbbbbb")) // evicts a (dirty writeback)
		got := make([]byte, 8)
		m.Load(ctx, a, 8, got) // refills a from far
		if string(got) != "aaaaaaaa" {
			t.Errorf("dirty writeback lost data: %q", got)
		}
	})
	p.Run()
	_, _, wb := m.Stats()
	if wb == 0 {
		t.Error("no writebacks despite conflict evictions")
	}
}

func TestMemoryModeHidesXPLatencyWhenHot(t *testing.T) {
	p, m := newMM(t, 1<<20, 64<<20)
	var hot, cold sim.Time
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		r := sim.NewRNG(3)
		// Cold pass over 16 MB (mostly misses).
		start := ctx.Proc().Now()
		const n = 1500
		for i := 0; i < n; i++ {
			m.Load(ctx, r.Int63n(16<<20)&^63, 8, nil)
		}
		cold = (ctx.Proc().Now() - start) / n
		// Hot pass over 256 KB (fits in near memory).
		for off := int64(0); off < 256<<10; off += 64 {
			m.Load(ctx, off, 8, nil)
		}
		start = ctx.Proc().Now()
		for i := 0; i < n; i++ {
			m.Load(ctx, r.Int63n(256<<10)&^63, 8, nil)
		}
		hot = (ctx.Proc().Now() - start) / n
	})
	p.Run()
	if hot*2 > cold {
		t.Errorf("hot loads (%v) should be far cheaper than cold (%v)", hot, cold)
	}
}

func TestMemoryModeIsVolatile(t *testing.T) {
	p, m := newMM(t, 1<<20, 16<<20)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		m.Store(ctx, 0, 4, []byte("gone"))
	})
	p.Run()
	p.Crash()
	// Far memory never saw the write (it is buffered dirty in near DRAM),
	// and near DRAM is volatile by definition.
	buf := make([]byte, 4)
	m.far.ReadDurable(0, buf)
	if string(buf) == "gone" {
		t.Error("memory-mode store reached far media before eviction")
	}
}

func TestMemoryModeRejectsBadSizes(t *testing.T) {
	cfg := platform.DefaultConfig()
	p := platform.MustNew(cfg)
	if _, err := New(p, "x", 0, 0, 1<<20); err == nil {
		t.Error("zero near size accepted")
	}
	if _, err := New(p, "y", 0, 1<<20, 1<<10); err == nil {
		t.Error("far smaller than near accepted")
	}
}
