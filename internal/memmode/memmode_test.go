package memmode

import (
	"bytes"
	"testing"

	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

func newMM(t testing.TB, nearSize, farSize int64) (*platform.Platform, *Memory) {
	t.Helper()
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	m, err := New(p, "mm", 0, nearSize, farSize)
	if err != nil {
		t.Fatal(err)
	}
	return p, m
}

func TestMemoryModeRoundTrip(t *testing.T) {
	p, m := newMM(t, 1<<20, 16<<20)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		msg := []byte("memory mode is volatile far memory")
		m.Store(ctx, 12345, len(msg), msg)
		got := make([]byte, len(msg))
		m.Load(ctx, 12345, len(got), got)
		if !bytes.Equal(got, msg) {
			t.Errorf("got %q", got)
		}
	})
	p.Run()
}

func TestMemoryModeCacheHitsForHotSet(t *testing.T) {
	p, m := newMM(t, 1<<20, 64<<20)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		// Touch a 64 KB working set twice: second pass must hit.
		for pass := 0; pass < 2; pass++ {
			for off := int64(0); off < 64<<10; off += 64 {
				m.Load(ctx, off, 8, nil)
			}
		}
	})
	p.Run()
	hits, misses, _ := m.Stats()
	if hits < misses {
		t.Errorf("hot set: hits=%d misses=%d, want mostly hits", hits, misses)
	}
}

func TestMemoryModeConflictEviction(t *testing.T) {
	p, m := newMM(t, 4096, 1<<20) // tiny near memory: conflicts guaranteed
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		// Two far lines mapping to the same set (one full wrap apart).
		a := int64(0)
		b := m.sets * 64
		m.Store(ctx, a, 8, []byte("aaaaaaaa"))
		m.Store(ctx, b, 8, []byte("bbbbbbbb")) // evicts a (dirty writeback)
		got := make([]byte, 8)
		m.Load(ctx, a, 8, got) // refills a from far
		if string(got) != "aaaaaaaa" {
			t.Errorf("dirty writeback lost data: %q", got)
		}
	})
	p.Run()
	_, _, wb := m.Stats()
	if wb == 0 {
		t.Error("no writebacks despite conflict evictions")
	}
}

// Direct-mapped conflict sequence a,b,c,a (one wrap apart, same set): every
// access after the first replaces the previous resident, and the eviction
// counter tracks exactly that order — clean replacements count as evictions
// but never as writebacks.
func TestMemoryModeConflictEvictionOrder(t *testing.T) {
	p, m := newMM(t, 4096, 1<<20)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		wrap := m.sets * 64
		lines := []int64{0, wrap, 2 * wrap, 0}
		want := []int64{0, 1, 2, 3} // evictions after each access
		for i, addr := range lines {
			m.Load(ctx, addr, 8, nil)
			if m.Evictions() != want[i] {
				t.Errorf("after access %d: evictions=%d, want %d", i, m.Evictions(), want[i])
			}
			if m.tags[m.set(addr)] != addr {
				t.Errorf("after access %d: set holds %d, want %d", i, m.tags[m.set(addr)], addr)
			}
		}
	})
	p.Run()
	hits, misses, wb := m.Stats()
	if hits != 0 || misses != 4 {
		t.Errorf("hits=%d misses=%d, want 0/4 (every conflict access misses)", hits, misses)
	}
	if wb != 0 {
		t.Errorf("writebacks=%d, want 0 (clean lines are dropped, not written back)", wb)
	}
}

// Writebacks are the dirty subset of evictions: a dirty victim is written
// to far memory, a clean one is dropped. The far image must only change at
// the writeback, never at the store.
func TestMemoryModeWritebackAccounting(t *testing.T) {
	p, m := newMM(t, 4096, 1<<20)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		wrap := m.sets * 64
		m.Store(ctx, 0, 8, []byte("dirtyabc")) // a resident dirty
		m.Load(ctx, wrap, 8, nil)              // evicts dirty a: writeback
		m.Load(ctx, 0, 8, nil)                 // evicts clean b: no writeback
		m.Load(ctx, wrap, 8, nil)              // evicts clean a: no writeback
	})
	p.Run()
	_, _, wb := m.Stats()
	if wb != 1 {
		t.Errorf("writebacks=%d, want exactly 1 (only the dirty victim)", wb)
	}
	if ev := m.Evictions(); ev != 3 {
		t.Errorf("evictions=%d, want 3", ev)
	}
	buf := make([]byte, 8)
	m.far.ReadDurable(0, buf)
	if string(buf) != "dirtyabc" {
		t.Errorf("far memory after writeback holds %q, want the dirty line", buf)
	}
}

// Repeated access to one resident line is all hits after the first fill —
// the counters must not drift under rereads or rewrites of a cached line.
func TestMemoryModeRepeatedLineCounters(t *testing.T) {
	p, m := newMM(t, 1<<20, 16<<20)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		for i := 0; i < 10; i++ {
			m.Load(ctx, 4096, 8, nil)
		}
		for i := 0; i < 5; i++ {
			m.Store(ctx, 4096, 8, []byte("rewrites"))
		}
	})
	p.Run()
	hits, misses, wb := m.Stats()
	if misses != 1 || hits != 14 {
		t.Errorf("hits=%d misses=%d, want 14/1 (one fill, then resident)", hits, misses)
	}
	if wb != 0 || m.Evictions() != 0 {
		t.Errorf("writebacks=%d evictions=%d, want 0/0 (line never displaced)", wb, m.Evictions())
	}
}

func TestMemoryModeHidesXPLatencyWhenHot(t *testing.T) {
	p, m := newMM(t, 1<<20, 64<<20)
	var hot, cold sim.Time
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		r := sim.NewRNG(3)
		// Cold pass over 16 MB (mostly misses).
		start := ctx.Proc().Now()
		const n = 1500
		for i := 0; i < n; i++ {
			m.Load(ctx, r.Int63n(16<<20)&^63, 8, nil)
		}
		cold = (ctx.Proc().Now() - start) / n
		// Hot pass over 256 KB (fits in near memory).
		for off := int64(0); off < 256<<10; off += 64 {
			m.Load(ctx, off, 8, nil)
		}
		start = ctx.Proc().Now()
		for i := 0; i < n; i++ {
			m.Load(ctx, r.Int63n(256<<10)&^63, 8, nil)
		}
		hot = (ctx.Proc().Now() - start) / n
	})
	p.Run()
	if hot*2 > cold {
		t.Errorf("hot loads (%v) should be far cheaper than cold (%v)", hot, cold)
	}
}

func TestMemoryModeIsVolatile(t *testing.T) {
	p, m := newMM(t, 1<<20, 16<<20)
	p.Go("t", 0, func(ctx *platform.MemCtx) {
		m.Store(ctx, 0, 4, []byte("gone"))
	})
	p.Run()
	p.Crash()
	// Far memory never saw the write (it is buffered dirty in near DRAM),
	// and near DRAM is volatile by definition.
	buf := make([]byte, 4)
	m.far.ReadDurable(0, buf)
	if string(buf) == "gone" {
		t.Error("memory-mode store reached far media before eviction")
	}
}

func TestMemoryModeRejectsBadSizes(t *testing.T) {
	cfg := platform.DefaultConfig()
	p := platform.MustNew(cfg)
	if _, err := New(p, "x", 0, 0, 1<<20); err == nil {
		t.Error("zero near size accepted")
	}
	if _, err := New(p, "y", 0, 1<<20, 1<<10); err == nil {
		t.Error("far smaller than near accepted")
	}
}
