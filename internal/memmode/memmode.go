// Package memmode implements the platform's Memory Mode (Section 2.1.2):
// 3D XPoint serves as large volatile "far memory" behind a direct-mapped
// DRAM cache ("near memory") managed by the memory controller at 64 B
// granularity. Software sees one large volatile address space; persistence
// is not provided.
//
// The cache model explains two of the paper's observations: Memory-Mode
// systems hide most 3D XPoint pathologies behind the DRAM cache (Section
// 6), and DIMM-level EWR can exceed 1 because the DRAM cache absorbs
// rewrites before they reach the media.
package memmode

import (
	"errors"
	"fmt"

	"optanestudy/internal/mem"
	"optanestudy/internal/platform"
)

// Memory is one Memory-Mode region: far 3D XPoint fronted by near DRAM.
type Memory struct {
	near *platform.Namespace
	far  *platform.Namespace

	sets int64
	// tags[set] holds the far line address cached in the set, -1 if empty.
	tags  []int64
	dirty []bool

	hits, misses, writebacks, evictions int64
}

// New builds a Memory-Mode region on the socket: farSize bytes of 3D XPoint
// cached by nearSize bytes of DRAM (both rounded to the platform's stripe).
func New(p *platform.Platform, name string, socket int, nearSize, farSize int64) (*Memory, error) {
	if nearSize < mem.CacheLine || farSize < nearSize {
		return nil, errors.New("memmode: need nearSize >= 64B and farSize >= nearSize")
	}
	near, err := p.DRAM(name+"-near", socket, nearSize)
	if err != nil {
		return nil, err
	}
	far, err := p.Optane(name+"-far", socket, farSize)
	if err != nil {
		return nil, err
	}
	sets := near.Size / mem.CacheLine
	tags := make([]int64, sets)
	for i := range tags {
		tags[i] = -1
	}
	return &Memory{near: near, far: far, sets: sets, tags: tags, dirty: make([]bool, sets)}, nil
}

// Size returns the visible (far) capacity.
func (m *Memory) Size() int64 { return m.far.Size }

// Stats reports cache hits, misses and writebacks.
func (m *Memory) Stats() (hits, misses, writebacks int64) {
	return m.hits, m.misses, m.writebacks
}

// Evictions reports how many valid near-memory lines were replaced by a
// conflicting fill (writebacks are the dirty subset of these).
func (m *Memory) Evictions() int64 { return m.evictions }

func (m *Memory) set(lineAddr int64) int64 {
	return (lineAddr / mem.CacheLine) % m.sets
}

// access brings one far line into the near cache (if absent) and returns
// its offset in the near namespace. makeDirty marks the cached line
// modified.
func (m *Memory) access(ctx *platform.MemCtx, lineAddr int64, makeDirty bool) int64 {
	set := m.set(lineAddr)
	nearOff := set * mem.CacheLine
	if m.tags[set] == lineAddr {
		m.hits++
	} else {
		m.misses++
		if m.tags[set] >= 0 {
			m.evictions++
		}
		if m.tags[set] >= 0 && m.dirty[set] {
			// Write the victim back to far memory.
			m.writebacks++
			var victim [mem.CacheLine]byte
			ctx.LoadInto(m.near, nearOff, victim[:])
			ctx.NTStore(m.far, m.tags[set], mem.CacheLine, victim[:])
		}
		// Fill from far memory.
		var line [mem.CacheLine]byte
		ctx.LoadInto(m.far, lineAddr, line[:])
		ctx.Store(m.near, nearOff, mem.CacheLine, line[:])
		m.tags[set] = lineAddr
		m.dirty[set] = false
	}
	if makeDirty {
		m.dirty[set] = true
	}
	return nearOff
}

func (m *Memory) checkRange(off int64, size int) {
	if off < 0 || off+int64(size) > m.far.Size {
		panic(fmt.Sprintf("memmode: access [%d,+%d) out of range", off, size))
	}
}

// Load reads size bytes at off into buf (buf may be nil for timing-only).
func (m *Memory) Load(ctx *platform.MemCtx, off int64, size int, buf []byte) {
	m.checkRange(off, size)
	for i := 0; i < size; {
		addr := off + int64(i)
		line := mem.LineAddr(addr)
		lo := int(addr - line)
		n := mem.CacheLine - lo
		if n > size-i {
			n = size - i
		}
		nearOff := m.access(ctx, line, false)
		ctx.Load(m.near, nearOff+int64(lo), n)
		if buf != nil {
			ctx.Peek(m.near, nearOff+int64(lo), buf[i:i+n])
		}
		i += n
	}
}

// Store writes size bytes at off (data may be nil for timing-only).
func (m *Memory) Store(ctx *platform.MemCtx, off int64, size int, data []byte) {
	m.checkRange(off, size)
	for i := 0; i < size; {
		addr := off + int64(i)
		line := mem.LineAddr(addr)
		lo := int(addr - line)
		n := mem.CacheLine - lo
		if n > size-i {
			n = size - i
		}
		nearOff := m.access(ctx, line, true)
		var chunk []byte
		if data != nil {
			chunk = data[i : i+n]
		}
		ctx.Store(m.near, nearOff+int64(lo), n, chunk)
		i += n
	}
}
