// Command xpstat renders an optanestudy-trace/v1 JSONL stream (the -trace
// output of the bench CLIs) as a per-DIMM utilization table over time —
// the simulator's answer to `ipmctl show -performance`. For every run in
// the stream it differences the timeline's cumulative per-DIMM device
// gauges into per-interval rates: effective bandwidth, windowed EWR,
// XPBuffer hit rate, media write bandwidth and WPQ stall fraction, one row
// per active DIMM per interval.
//
// Everything rendered derives from the trace's sim-time samples, so the
// output is byte-identical at any -parallel width of the producing run.
//
// Usage:
//
//	xpstat trace.jsonl
//	xpstat -every 4 trace.jsonl
//	clusterbench -trace=/dev/stdout cluster/hotspot | xpstat -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"optanestudy/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xpstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "xpstat: per-DIMM utilization over time from an %s stream\n\n", telemetry.TraceSchema)
		fmt.Fprintf(stderr, "usage: xpstat [flags] <trace.jsonl | ->\n\nflags:\n")
		fs.PrintDefaults()
	}
	every := fs.Int("every", 1, "render every Nth timeline interval")
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 || *every < 1 {
		fs.Usage()
		return 2
	}
	var in io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "xpstat: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	entries, err := telemetry.ReadJSONL(in)
	if err != nil {
		fmt.Fprintf(stderr, "xpstat: %v\n", err)
		return 1
	}
	for _, e := range entries {
		for _, rn := range e.Trace.Runs {
			title := fmt.Sprintf("%s trial %d", e.Scenario, e.Trial)
			if rn.Label != "" {
				title += " [" + rn.Label + "]"
			}
			renderRun(stdout, title, rn, *every)
		}
	}
	return 0
}

type dimmKey struct{ s, c int }

// renderRun prints one run's per-DIMM utilization rows, one per active
// DIMM per rendered interval. DIMM activity is decided from the final
// sample's cumulative controller bytes — a measured result, so the row
// set is deterministic.
func renderRun(w io.Writer, title string, rn *telemetry.Run, every int) {
	if len(rn.Samples) == 0 {
		return
	}
	gv := func(s telemetry.Sample, name string) (float64, bool) {
		for _, g := range s.Gauges {
			if g.Name == name {
				return g.Value, true
			}
		}
		return 0, false
	}
	first := rn.Samples[0]
	has := func(name string) bool { _, ok := gv(first, name); return ok }
	var dimms []dimmKey
	for s := 0; ; s++ {
		if !has(fmt.Sprintf("xp_ctrl_write_bytes_s%dc0", s)) {
			break
		}
		for c := 0; ; c++ {
			if !has(fmt.Sprintf("xp_ctrl_write_bytes_s%dc%d", s, c)) {
				break
			}
			dimms = append(dimms, dimmKey{s, c})
		}
	}
	if len(dimms) == 0 {
		fmt.Fprintf(w, "== %s: no per-DIMM device gauges in trace\n\n", title)
		return
	}
	last := rn.Samples[len(rn.Samples)-1]
	var active []dimmKey
	for _, d := range dimms {
		r, _ := gv(last, fmt.Sprintf("xp_ctrl_read_bytes_s%dc%d", d.s, d.c))
		wr, _ := gv(last, fmt.Sprintf("xp_ctrl_write_bytes_s%dc%d", d.s, d.c))
		if r+wr > 0 {
			active = append(active, d)
		}
	}
	fmt.Fprintf(w, "== %s  samples=%d dimms=%d active=%d\n", title, len(rn.Samples), len(dimms), len(active))
	if len(active) == 0 {
		fmt.Fprintln(w)
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "t_us\tdimm\tbw_gbs\twr_gbs\tmedia_wr_gbs\tewr\thit_rate\tstall")
	ratio := func(num, den float64) float64 {
		if den == 0 {
			return 0
		}
		return num / den
	}
	prev := telemetry.Sample{} // window opens at t=0 with zero counters
	for i, s := range rn.Samples {
		dtNS := float64(s.TNS - prev.TNS)
		if dtNS <= 0 {
			prev = s
			continue
		}
		if i%every == 0 {
			dg := func(name string) float64 {
				cur, _ := gv(s, name)
				old, _ := gv(prev, name)
				return cur - old
			}
			for _, d := range active {
				suffix := fmt.Sprintf("_s%dc%d", d.s, d.c)
				ctrlR := dg("xp_ctrl_read_bytes" + suffix)
				ctrlW := dg("xp_ctrl_write_bytes" + suffix)
				mediaW := dg("xp_media_write_bytes" + suffix)
				hits := dg("xp_buffer_hits" + suffix)
				misses := dg("xp_buffer_misses" + suffix)
				stall := dg("xp_wpq_stall_ns" + suffix)
				fmt.Fprintf(tw, "%.3f\ts%dc%d\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\n",
					float64(s.TNS)/1e3, d.s, d.c,
					(ctrlR+ctrlW)/dtNS, ctrlW/dtNS, mediaW/dtNS,
					ratio(ctrlW, mediaW), ratio(hits, hits+misses), stall/dtNS)
			}
		}
		prev = s
	}
	tw.Flush()
	fmt.Fprintln(w)
}
