// Command benchdiff compares two optanestudy-bench/v1 JSON result files
// and reports per-scenario, per-metric relative deltas — the regression
// harness for bench sweeps. Scenarios are matched by name; each scenario
// compares the headline aggregates (throughput_gbs, ops_per_sec, p50_ns,
// p99_ns) plus every key in the metrics maps.
//
// By default benchdiff is report-only (exit 0) so it can run as an
// informational CI step; -fail turns threshold violations into exit 1.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 0.10 -all old.json new.json
//	benchdiff -format json -fail ci/sweep_baseline.json sweep-new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"text/tabwriter"
)

// envelope mirrors the harness's optanestudy-bench/v1 schema, keeping only
// the fields benchdiff compares.
type envelope struct {
	Schema  string   `json:"schema"`
	Results []result `json:"results"`
}

type result struct {
	Name          string             `json:"name"`
	ThroughputGBs float64            `json:"throughput_gbs"`
	OpsPerSec     float64            `json:"ops_per_sec"`
	P50NS         float64            `json:"p50_ns"`
	P99NS         float64            `json:"p99_ns"`
	Metrics       map[string]float64 `json:"metrics"`
}

const benchSchema = "optanestudy-bench/v1"

// delta is one compared value pair. Rel is (new-old)/|old|; NaN marks a
// metric present on only one side.
type delta struct {
	Scenario string  `json:"scenario"`
	Metric   string  `json:"metric"`
	Old      float64 `json:"old"`
	New      float64 `json:"new"`
	Rel      float64 `json:"rel"`
	Flagged  bool    `json:"flagged"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "benchdiff: per-scenario metric deltas between two %s files\n\n", benchSchema)
		fmt.Fprintf(stderr, "usage: benchdiff [flags] <old.json> <new.json>\n\nflags:\n")
		fs.PrintDefaults()
	}
	threshold := fs.Float64("threshold", 0.05, "relative delta beyond which a metric is flagged")
	all := fs.Bool("all", false, "print every compared metric, not just flagged ones")
	format := fs.String("format", "table", "output format: table or json")
	failOn := fs.Bool("fail", false, "exit 1 when any metric is flagged (default: report-only)")
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 || *threshold < 0 {
		fs.Usage()
		return 2
	}
	oldEnv, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newEnv, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	deltas, onlyOld, onlyNew := diff(oldEnv, newEnv, *threshold)
	flagged := 0
	for _, d := range deltas {
		if d.Flagged {
			flagged++
		}
	}

	switch *format {
	case "table", "":
		shown := deltas
		if !*all {
			shown = shown[:0:0]
			for _, d := range deltas {
				if d.Flagged {
					shown = append(shown, d)
				}
			}
		}
		tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "scenario\tmetric\told\tnew\tdelta")
		for _, d := range shown {
			mark := ""
			if d.Flagged {
				mark = " !"
			}
			rel := "n/a"
			if !math.IsNaN(d.Rel) {
				rel = fmt.Sprintf("%+.2f%%", d.Rel*100)
			}
			fmt.Fprintf(tw, "%s\t%s\t%.6g\t%.6g\t%s%s\n", d.Scenario, d.Metric, d.Old, d.New, rel, mark)
		}
		tw.Flush()
		for _, name := range onlyOld {
			fmt.Fprintf(stdout, "# scenario only in old: %s\n", name)
		}
		for _, name := range onlyNew {
			fmt.Fprintf(stdout, "# scenario only in new: %s\n", name)
		}
		fmt.Fprintf(stdout, "# %d metrics compared, %d beyond %.0f%% threshold\n",
			len(deltas), flagged, *threshold*100)
	case "json":
		out := struct {
			Schema    string   `json:"schema"`
			Threshold float64  `json:"threshold"`
			Compared  int      `json:"compared"`
			Flagged   int      `json:"flagged"`
			Deltas    []delta  `json:"deltas"`
			OnlyOld   []string `json:"only_old,omitempty"`
			OnlyNew   []string `json:"only_new,omitempty"`
		}{"optanestudy-benchdiff/v1", *threshold, len(deltas), flagged, deltas, onlyOld, onlyNew}
		if !*all {
			out.Deltas = out.Deltas[:0:0]
			for _, d := range deltas {
				if d.Flagged {
					out.Deltas = append(out.Deltas, d)
				}
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintf(stderr, "benchdiff: unknown format %q (want table or json)\n", *format)
		return 2
	}
	if *failOn && flagged > 0 {
		return 1
	}
	return 0
}

func load(path string) (*envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if env.Schema != benchSchema {
		return nil, fmt.Errorf("%s: unknown schema %q (want %s)", path, env.Schema, benchSchema)
	}
	return &env, nil
}

// diff compares the two envelopes scenario by scenario. Output order is
// old-file result order, then metric name order, so two runs over the
// same inputs render byte-identically.
func diff(oldEnv, newEnv *envelope, threshold float64) (deltas []delta, onlyOld, onlyNew []string) {
	newBy := make(map[string]*result, len(newEnv.Results))
	for i := range newEnv.Results {
		newBy[newEnv.Results[i].Name] = &newEnv.Results[i]
	}
	seen := make(map[string]bool, len(oldEnv.Results))
	for i := range oldEnv.Results {
		or := &oldEnv.Results[i]
		seen[or.Name] = true
		nr, ok := newBy[or.Name]
		if !ok {
			onlyOld = append(onlyOld, or.Name)
			continue
		}
		deltas = append(deltas, compare(or, nr, threshold)...)
	}
	for i := range newEnv.Results {
		if !seen[newEnv.Results[i].Name] {
			onlyNew = append(onlyNew, newEnv.Results[i].Name)
		}
	}
	sort.Strings(onlyNew)
	return deltas, onlyOld, onlyNew
}

func compare(or, nr *result, threshold float64) []delta {
	var out []delta
	add := func(metric string, ov, nv float64, inBoth bool) {
		rel := math.NaN()
		flagged := true
		switch {
		case !inBoth:
			// present on one side only: always worth flagging
		case ov == nv:
			rel, flagged = 0, false
		case ov == 0:
			// 0 -> nonzero has no finite relative delta; flag it
		default:
			rel = (nv - ov) / math.Abs(ov)
			flagged = math.Abs(rel) > threshold
		}
		out = append(out, delta{or.Name, metric, ov, nv, rel, flagged})
	}
	add("throughput_gbs", or.ThroughputGBs, nr.ThroughputGBs, true)
	add("ops_per_sec", or.OpsPerSec, nr.OpsPerSec, true)
	add("p50_ns", or.P50NS, nr.P50NS, true)
	add("p99_ns", or.P99NS, nr.P99NS, true)
	keys := make(map[string]bool, len(or.Metrics)+len(nr.Metrics))
	for k := range or.Metrics {
		keys[k] = true
	}
	for k := range nr.Metrics {
		keys[k] = true
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		ov, okOld := or.Metrics[k]
		nv, okNew := nr.Metrics[k]
		add(k, ov, nv, okOld && okNew)
	}
	return out
}
