// Command fiobench runs the FIO-style workloads of Figures 12 and 17
// against the simulated file systems.
package main

import (
	"flag"
	"fmt"
	"log"

	"optanestudy/internal/fio"
	"optanestudy/internal/novafs"
	"optanestudy/internal/platform"
	"optanestudy/internal/vfs"
)

func main() {
	threads := flag.Int("threads", 24, "worker threads")
	bs := flag.Int("bs", 4096, "block size")
	ops := flag.Int("ops", 64, "IOs per thread")
	flag.Parse()

	for _, pinned := range []bool{false, true} {
		for _, rw := range []fio.RW{fio.Read, fio.Write} {
			for _, pat := range []fio.Pattern{fio.Seq, fio.Rand} {
				gbs, err := run(pinned, rw, pat, *threads, *bs, *ops)
				if err != nil {
					log.Fatal(err)
				}
				mount := "interleaved"
				if pinned {
					mount = "per-DIMM"
				}
				rwName := map[fio.RW]string{fio.Read: "read", fio.Write: "write"}[rw]
				patName := map[fio.Pattern]string{fio.Seq: "seq", fio.Rand: "rand"}[pat]
				fmt.Printf("%-12s %-5s %-5s %8.2f GB/s\n", mount, rwName, patName, gbs)
			}
		}
	}
}

func run(pinned bool, rw fio.RW, pat fio.Pattern, threads, bs, ops int) (float64, error) {
	cfg := platform.DefaultConfig()
	cfg.TrackData = true
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)
	var fs *novafs.FS
	var create func(ctx *platform.MemCtx, name string, thread int) (vfs.File, error)
	var err error
	if pinned {
		var nss []*platform.Namespace
		for i := 0; i < 6; i++ {
			ns, nerr := p.OptaneNI(fmt.Sprintf("z%d", i), 0, i, 192<<20)
			if nerr != nil {
				return 0, nerr
			}
			nss = append(nss, ns)
		}
		fs, err = novafs.Mount(nss, novafs.DefaultOptions(novafs.COW))
		create = func(ctx *platform.MemCtx, name string, thread int) (vfs.File, error) {
			return fs.CreateZone(ctx, name, thread%6)
		}
	} else {
		ns, nerr := p.Optane("nova", 0, 1<<30)
		if nerr != nil {
			return 0, nerr
		}
		fs, err = novafs.Mount([]*platform.Namespace{ns}, novafs.DefaultOptions(novafs.COW))
	}
	if err != nil {
		return 0, err
	}
	res, err := fio.Run(fio.Spec{
		Platform: p, FS: fs, CreateFile: create, Threads: threads,
		FileSize: 1 << 20, BS: bs, RW: rw, Pattern: pat, Sync: true,
		OpsPerThrd: ops, Seed: 17,
	})
	return res.GBs, err
}
