// Command fiobench runs the FIO-style NOVA workloads of Figures 12 and 17
// through the unified harness.
//
// Usage:
//
//	fiobench -list
//	fiobench -format=json -p pinned=true 'fio/*'
package main

import (
	"os"

	"optanestudy/internal/harness"
	_ "optanestudy/internal/scenarios"
)

func main() {
	os.Exit(harness.CLIMain(os.Args[1:], harness.CLIOptions{
		Command:      "fiobench",
		Doc:          "FIO-style file IO benchmarks over the simulated NOVA file system",
		DefaultGlobs: []string{"fio/*"},
	}))
}
