// Command servebench drives open-loop traffic against the KV backends
// through the unified harness: single load points (service/kv/pmemkv,
// service/kv/lsmkv), load sweeps that trace the throughput-vs-tail-
// latency curve and its saturation knee (service/kv/sweep-*), and the
// group-commit batch family (service/batch/*) that amortizes one fence
// across a whole drained batch of PUTs.
//
// Usage:
//
//	servebench -list
//	servebench 'service/kv/sweep-pmemkv'
//	servebench -threads 4 -p arrival=burst -p offered=2000 service/kv/pmemkv
//	servebench -batch 8 -linger 1000 service/batch/point
//	servebench -format=json -deterministic 'service/kv/*'
package main

import (
	"os"

	"optanestudy/internal/harness"
	_ "optanestudy/internal/scenarios"
)

func main() {
	os.Exit(harness.CLIMain(os.Args[1:], harness.CLIOptions{
		Command:      "servebench",
		Doc:          "open-loop KV serving: latency-under-load points and sweep curves",
		DefaultGlobs: []string{"service/kv/*"},
	}))
}
