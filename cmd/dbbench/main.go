// Command dbbench runs the RocksDB-style SET benchmark of Figure 8 across
// the three persistence strategies, on DRAM-emulated persistent memory and
// on the simulated 3D XPoint.
package main

import (
	"flag"
	"fmt"
	"log"

	"optanestudy/internal/lsmkv"
	"optanestudy/internal/platform"
)

func main() {
	ops := flag.Int("ops", 4000, "measured SET operations")
	prepop := flag.Int("prepopulate", 20000, "records loaded before measuring")
	flag.Parse()

	modes := []lsmkv.Mode{lsmkv.ModeWALPOSIX, lsmkv.ModeWALFLEX, lsmkv.ModePersistentMemtable}
	fmt.Printf("%-22s %12s %12s\n", "mode", "DRAM KOps/s", "3DXP KOps/s")
	for _, mode := range modes {
		var row [2]float64
		for i, onDRAM := range []bool{true, false} {
			cfg := platform.DefaultConfig()
			cfg.TrackData = true
			cfg.XP.Wear.Enabled = false
			cfg.LLC.Lines = (512 << 10) / 64
			p := platform.MustNew(cfg)
			res, err := lsmkv.RunSetBench(lsmkv.BenchSpec{
				Platform: p, PMOnDRAM: onDRAM, Mode: mode,
				Ops: *ops, Prepopulate: *prepop, Seed: 8,
			})
			if err != nil {
				log.Fatal(err)
			}
			row[i] = res.KOpsSec
		}
		fmt.Printf("%-22s %12.0f %12.0f\n", mode, row[0], row[1])
	}
}
