// Command dbbench runs the RocksDB-style SET benchmark of Figure 8 through
// the unified harness: three persistence strategies, on DRAM-emulated
// persistent memory (-p dram=true) or simulated 3D XPoint.
//
// Usage:
//
//	dbbench -list
//	dbbench -format=json -ops 4000 'lsmkv/*'
package main

import (
	"os"

	"optanestudy/internal/harness"
	_ "optanestudy/internal/scenarios"
)

func main() {
	os.Exit(harness.CLIMain(os.Args[1:], harness.CLIOptions{
		Command:      "dbbench",
		Doc:          "RocksDB-style LSM SET benchmarks across persistence strategies",
		DefaultGlobs: []string{"lsmkv/*"},
	}))
}
