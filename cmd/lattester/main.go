// Command lattester runs the LATTester microbenchmark scenarios against
// the simulated platform through the unified harness.
//
// Usage:
//
//	lattester -list
//	lattester lattester/seq-read lattester/rand-ntstore
//	lattester -format=json -threads 4 -p op=ntstore -p system=optane-ni 'lattester/kernel'
package main

import (
	"os"

	"optanestudy/internal/harness"
	_ "optanestudy/internal/scenarios"
)

func main() {
	os.Exit(harness.CLIMain(os.Args[1:], harness.CLIOptions{
		Command:      "lattester",
		Doc:          "LATTester microbenchmarks on the simulated platform",
		DefaultGlobs: []string{"lattester/*"},
	}))
}
