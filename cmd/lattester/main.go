// Command lattester runs individual microbenchmark measurements against
// the simulated platform, mirroring the paper's LATTester toolkit.
//
// Usage:
//
//	lattester -op ntstore -pattern seq -size 256 -threads 4 -system optane-ni
package main

import (
	"flag"
	"fmt"
	"log"

	"optanestudy/internal/lattester"
	"optanestudy/internal/platform"
	"optanestudy/internal/sim"
)

func main() {
	op := flag.String("op", "read", "operation: read, ntstore, store+clwb, store")
	pattern := flag.String("pattern", "seq", "pattern: seq or rand")
	size := flag.Int("size", 256, "access size in bytes")
	threads := flag.Int("threads", 1, "thread count")
	system := flag.String("system", "optane", "memory: optane, optane-ni, dram, optane-remote")
	durUS := flag.Int("duration", 200, "measured window in simulated microseconds")
	latency := flag.Bool("latency", false, "collect a latency histogram")
	flag.Parse()

	cfg := platform.DefaultConfig()
	cfg.XP.Wear.Enabled = false
	p := platform.MustNew(cfg)

	var ns *platform.Namespace
	var err error
	socket := 0
	switch *system {
	case "optane":
		ns, err = p.Optane("pm", 0, 2<<30)
	case "optane-ni":
		ns, err = p.OptaneNI("pm", 0, 0, 1<<30)
	case "optane-remote":
		ns, err = p.Optane("pm", 0, 2<<30)
		socket = 1
	case "dram":
		ns, err = p.DRAM("pm", 0, 1<<30)
	default:
		log.Fatalf("unknown system %q", *system)
	}
	if err != nil {
		log.Fatal(err)
	}

	var opKind lattester.Op
	switch *op {
	case "read":
		opKind = lattester.OpRead
	case "ntstore":
		opKind = lattester.OpNTStore
	case "store+clwb":
		opKind = lattester.OpStoreCLWB
	case "store":
		opKind = lattester.OpStore
	default:
		log.Fatalf("unknown op %q", *op)
	}
	pat := lattester.Sequential
	if *pattern == "rand" {
		pat = lattester.Random
	}

	res := lattester.Run(lattester.Spec{
		NS: ns, Socket: socket, Op: opKind, Pattern: pat,
		AccessSize: *size, Threads: *threads,
		Duration:      sim.Time(*durUS) * sim.Microsecond,
		RecordLatency: *latency,
	})
	fmt.Printf("system=%s op=%s pattern=%s size=%dB threads=%d\n",
		*system, opKind, pat, *size, *threads)
	fmt.Printf("bandwidth: %.3f GB/s over %v\n", res.GBs, res.Elapsed)
	fmt.Printf("EWR: %.3f (%s)\n", res.EWR(), res.XP.String())
	if res.Latency != nil {
		fmt.Printf("latency ns: mean=%.1f p50=%.1f p99=%.1f p99.99=%.1f max=%.1f\n",
			res.Latency.Mean(), res.Latency.Percentile(0.5),
			res.Latency.Percentile(0.99), res.Latency.Percentile(0.9999), res.Latency.Max())
	}
}
